// Hot-path memory discipline (docs/PERF.md): the steady-state eager
// submit -> schedule -> emit -> deliver path must not touch the allocator,
// requests must recycle through the slab pool with advancing generations,
// events must stay in the queue's inline storage, the destination grouping
// must preserve pack-list order, and the memoized strategy-decision cache
// must be bit-for-bit equivalent to planning fresh.
//
// This binary links src/perf/alloc_hook.cpp (see tests/CMakeLists.txt), so
// rails::perf::t_alloc_count counts every operator-new on this thread —
// the same counter the rails-bench allocs_per_msg metric and the benchdiff
// allocation gate are built on.
#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/request_pool.hpp"
#include "core/world.hpp"
#include "fabric/event_queue.hpp"
#include "fabric/fault.hpp"
#include "fabric/presets.hpp"
#include "topo/topology.hpp"
#include "perf/profiler.hpp"
#include "qos/arbiter.hpp"
#include "trace/tracer.hpp"

namespace rails::core {
namespace {

// --- allocation budgets ------------------------------------------------------

TEST(HotPathAlloc, SteadyEagerPathIsAllocationFree) {
  perf::Profiler::set_enabled(false);
  World world(paper_testbed("aggregate-fastest"));

  constexpr unsigned kFlows = 8;
  constexpr std::size_t kSize = 2048;
  std::vector<std::uint8_t> tx(kSize, 0x5a);
  std::vector<std::vector<std::uint8_t>> rx(kFlows,
                                            std::vector<std::uint8_t>(kSize));
  std::vector<RecvHandle> recvs;
  recvs.reserve(kFlows);

  const auto burst = [&] {
    recvs.clear();
    for (unsigned f = 0; f < kFlows; ++f) {
      recvs.push_back(world.engine(1).irecv(0, static_cast<Tag>(f),
                                            rx[f].data(), kSize));
    }
    for (unsigned f = 0; f < kFlows; ++f) {
      (void)world.engine(0).isend(1, static_cast<Tag>(f), tx.data(), kSize);
    }
    for (const auto& r : recvs) world.wait(r);
  };

  // Warm every recycling structure: request pool slabs, event-queue slot
  // arena, payload buffer pool, scratch vectors, the decision cache.
  for (int i = 0; i < 4; ++i) burst();

  const std::uint64_t before = perf::t_alloc_count;
  constexpr int kMeasured = 16;
  for (int i = 0; i < kMeasured; ++i) burst();
  const std::uint64_t delta = perf::t_alloc_count - before;

  EXPECT_EQ(delta, 0u) << delta << " allocations across " << kMeasured
                       << " bursts of " << kFlows
                       << " messages on the steady eager path";
}

TEST(HotPathAlloc, ReliableEagerPathIsAllocationFreeAtZeroFaultRate) {
  // Reliability on, fault rate zero: the CRC + seq + parked-copy machinery
  // must ride the same recycled structures as the bare path. The warm-up is
  // longer than the eager test above because the retransmit ring's parked
  // payload buffers warm per slot — only a full cycle of the 64-slot ring
  // touches them all.
  perf::Profiler::set_enabled(false);
  WorldConfig cfg = paper_testbed("aggregate-fastest");
  cfg.engine.reliability.enabled = true;
  World world(std::move(cfg));

  constexpr unsigned kFlows = 8;
  constexpr std::size_t kSize = 2048;
  std::vector<std::uint8_t> tx(kSize, 0x5a);
  std::vector<std::vector<std::uint8_t>> rx(kFlows,
                                            std::vector<std::uint8_t>(kSize));
  std::vector<RecvHandle> recvs;
  recvs.reserve(kFlows);

  const auto burst = [&] {
    recvs.clear();
    for (unsigned f = 0; f < kFlows; ++f) {
      recvs.push_back(world.engine(1).irecv(0, static_cast<Tag>(f),
                                            rx[f].data(), kSize));
    }
    for (unsigned f = 0; f < kFlows; ++f) {
      (void)world.engine(0).isend(1, static_cast<Tag>(f), tx.data(), kSize);
    }
    for (const auto& r : recvs) world.wait(r);
    world.fabric().events().run_all();  // drain delayed ACKs + stale timeouts
  };
  for (int i = 0; i < 80; ++i) burst();

  const std::uint64_t before = perf::t_alloc_count;
  constexpr int kMeasured = 16;
  for (int i = 0; i < kMeasured; ++i) burst();
  const std::uint64_t delta = perf::t_alloc_count - before;

  EXPECT_EQ(delta, 0u) << delta << " allocations across " << kMeasured
                       << " bursts with reliability enabled";
  EXPECT_GT(world.engine(0).stats().rel_segments, 0u);
  EXPECT_EQ(world.engine(0).stats().rel_retransmits, 0u);
  EXPECT_EQ(world.engine(0).reliable_in_flight(), 0u);
}

TEST(HotPathAlloc, RendezvousSteadyStateStaysWithinBudget) {
  perf::Profiler::set_enabled(false);
  World world(paper_testbed("hetero-split"));

  constexpr std::size_t kSize = 1_MiB;
  std::vector<std::uint8_t> tx(kSize, 0x66);
  std::vector<std::uint8_t> rx(kSize, 0);

  const auto transfer = [&](Tag tag) {
    auto recv = world.engine(1).irecv(0, tag, rx.data(), kSize);
    auto send = world.engine(0).isend(1, tag, tx.data(), kSize);
    world.wait(recv);
    world.wait(send);
  };
  for (Tag t = 0; t < 3; ++t) transfer(t);  // warm-up

  const std::uint64_t before = perf::t_alloc_count;
  constexpr std::uint64_t kMsgs = 8;
  for (Tag t = 3; t < 3 + kMsgs; ++t) transfer(t);
  const std::uint64_t per_msg = (perf::t_alloc_count - before) / kMsgs;

  // Rendezvous still pays for its bookkeeping maps (rdv_sends_,
  // inbound_rdv_ with its coverage intervals, live_chunks_) and the solver's
  // plan — but the payload buffers, requests, and event closures all
  // recycle. This pins the budget so a new per-chunk or per-message
  // allocation cannot land unnoticed.
  EXPECT_LE(per_msg, 24u) << per_msg << " allocations per rendezvous message";
}

// --- request pool ------------------------------------------------------------

TEST(RequestPool, RecyclesSlotsAndBumpsGeneration) {
  auto& pool = RequestPool<SendRequest>::instance();

  SendHandle a = make_send_request();
  a->id = 77;
  a->len = 123;
  a->staging.reserve(64);
  SendRequest* slot = a.get();
  const std::uint32_t gen = a.generation();
  const std::uint64_t recycled_before = pool.recycled();

  a.reset();
  EXPECT_EQ(pool.recycled(), recycled_before + 1);

  // LIFO freelist: the very next acquire reuses the slot, with the
  // generation advanced and the fields reset — but owned capacity kept.
  SendHandle b = make_send_request();
  ASSERT_EQ(b.get(), slot);
  EXPECT_EQ(b.generation(), gen + 1);
  EXPECT_EQ(b->id, 0u);
  EXPECT_EQ(b->len, 0u);
  EXPECT_EQ(b->state, SendState::kQueued);
  EXPECT_TRUE(b->staging.empty());
  EXPECT_GE(b->staging.capacity(), 64u);
}

TEST(RequestPool, CopiedHandlesShareOneSlotUntilTheLastRelease) {
  auto& pool = RequestPool<RecvRequest>::instance();
  const std::uint64_t recycled_before = pool.recycled();

  RecvHandle a = make_recv_request();
  a->id = 5;
  RecvHandle b = a;  // refcount 2
  a.reset();
  EXPECT_EQ(pool.recycled(), recycled_before);  // b still owns the slot
  EXPECT_EQ(b->id, 5u);
  b.reset();
  EXPECT_EQ(pool.recycled(), recycled_before + 1);
}

TEST(RequestPool, FailoverReSplitReleasesEveryRequest) {
  // A rendezvous send whose chunks fail over mid-flight exercises the
  // retry/re-split ownership paths; afterwards every handle must have come
  // back to the pools (no leak through rdv_sends_/live_chunks_).
  auto& sends = RequestPool<SendRequest>::instance();
  auto& recvs = RequestPool<RecvRequest>::instance();
  const std::size_t send_live = sends.live();
  const std::size_t recv_live = recvs.live();
  const std::uint64_t send_recycled = sends.recycled();
  {
    World world(paper_testbed("hetero-split"));
    const std::size_t size = 4_MiB;
    std::vector<std::uint8_t> tx(size, 0x42);
    std::vector<std::uint8_t> rx(size, 0);
    fabric::FaultSpec fault;
    fault.kind = fabric::FaultKind::kFailStop;
    fault.at = usec(20);  // rail 0 dies while chunks are in flight
    world.fabric().nic(0, 0).inject_fault(fault);

    auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
    auto send = world.engine(0).isend(1, 1, tx.data(), size);
    world.wait(recv);
    world.wait(send);
    EXPECT_EQ(rx, tx);
    EXPECT_GE(world.engine(0).stats().failovers, 1u);
  }
  EXPECT_EQ(sends.live(), send_live);
  EXPECT_EQ(recvs.live(), recv_live);
  EXPECT_GT(sends.recycled(), send_recycled);
}

// --- event queue inline storage ----------------------------------------------

TEST(EventQueueInline, SmallHandlersStayInline) {
  fabric::EventQueue q;
  int hits = 0;
  q.after(1, [&hits] { ++hits; });
  q.run_all();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(q.handler_spills(), 0u);
}

TEST(EventQueueInline, OversizeHandlerSpillsToHeapAndStillRuns) {
  fabric::EventQueue q;
  std::array<std::uint8_t, 160> big{};  // past the inline-storage bound
  big[0] = 7;
  int result = 0;
  q.after(1, [big, &result] { result = big[0]; });
  q.run_all();
  EXPECT_EQ(result, 7);
  EXPECT_EQ(q.handler_spills(), 1u);
}

// --- submit-path accounting (the try_isend ordering fix) ---------------------

TEST(QosAccounting, DowngradeThatWouldBeShedLeavesNoResidue) {
  WorldConfig cfg = paper_testbed("hetero-split");
  cfg.engine.qos.enabled = true;
  cfg.engine.qos.deadline_downgrade = true;
  auto classes = qos::builtin_classes();
  classes[qos::kBackground].queue_capacity = 2;
  cfg.engine.qos.classes = std::move(classes);
  World world(cfg);
  auto& sender = world.engine(0);

  std::vector<std::uint8_t> tx(512, 0x77);
  Engine::SendOptions opts;
  opts.deadline = world.now() + 1;  // infeasible: every submission downgrades

  // Fill the BACKGROUND queue to capacity with downgraded sends (same
  // virtual instant, so no grant round drains it in between).
  for (unsigned i = 0; i < 2; ++i) {
    auto s = sender.try_isend(1, static_cast<Tag>(i), tx.data(), tx.size(), opts);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->qos_class, qos::kBackground);
  }
  EXPECT_EQ(sender.stats().qos_admission_downgrades, 2u);

  // The third would downgrade into a full queue, so try_isend sheds it. The
  // shed must leave no admission accounting behind — this pins the ordering
  // bug where the downgrade counters were mutated before the capacity check.
  EXPECT_EQ(sender.try_isend(1, 9, tx.data(), tx.size(), opts), nullptr);
  EXPECT_EQ(sender.stats().qos_admission_downgrades, 2u);
  EXPECT_EQ(sender.qos()->counters(qos::kLatency).admission_downgrades, 2u);
  EXPECT_EQ(sender.qos()->counters(qos::kBackground).rejected_full, 1u);
}

// --- destination grouping ----------------------------------------------------

TEST(EagerGrouping, BurstPreservesPackListOrderAcrossDestinations) {
  // Interleaved submissions to 8 destinations, all at one virtual instant:
  // the (single-pass) grouping must emit destination groups in first-
  // appearance order and keep the submission order within each group —
  // identical to the pack-list semantics the O(n^2) scan produced.
  WorldConfig cfg = paper_testbed("single-rail:0");
  cfg.fabric.node_count = 9;
  World world(cfg);
  trace::Tracer tracer;
  world.engine(0).set_tracer(&tracer);

  constexpr unsigned kDsts = 8;
  constexpr unsigned kRounds = 32;
  std::vector<std::uint8_t> tx(64, 0x11);
  std::vector<std::vector<std::uint64_t>> per_dst(kDsts);
  for (unsigned r = 0; r < kRounds; ++r) {
    for (unsigned d = 0; d < kDsts; ++d) {
      auto s = world.engine(0).isend(d + 1, static_cast<Tag>(r), tx.data(),
                                     tx.size());
      per_dst[d].push_back(s->id);
    }
  }
  world.fabric().events().run_all();

  std::vector<std::uint64_t> expected;
  for (const auto& ids : per_dst) {
    expected.insert(expected.end(), ids.begin(), ids.end());
  }
  std::vector<std::uint64_t> emitted;
  for (const auto& e : tracer.of_kind(trace::EventKind::kEagerEmit)) {
    emitted.push_back(e.msg_id);
  }
  EXPECT_EQ(emitted, expected);
}

TEST(EagerGrouping, LargeManyDestinationBurstCompletes) {
  // Stress the epoch-stamped grouping across many re-activations: 8192
  // pending sends to 64 destinations in one instant. The single-pass
  // grouping keeps each activation linear in the pack-list length (and the
  // steady-state allocation test above pins that it allocates nothing).
  WorldConfig cfg = paper_testbed("aggregate-fastest");
  cfg.fabric.node_count = 65;
  World world(cfg);

  constexpr unsigned kDsts = 64;
  constexpr unsigned kRounds = 128;
  std::vector<std::uint8_t> tx(64, 0x22);
  std::vector<SendHandle> sends;
  sends.reserve(kDsts * kRounds);
  for (unsigned r = 0; r < kRounds; ++r) {
    for (unsigned d = 0; d < kDsts; ++d) {
      sends.push_back(world.engine(0).isend(d + 1, static_cast<Tag>(r),
                                            tx.data(), tx.size()));
    }
  }
  world.fabric().events().run_all();

  for (const auto& s : sends) EXPECT_TRUE(s->done());
  EXPECT_EQ(world.engine(0).stats().sends, kDsts * kRounds);
}

TEST(HotPathAlloc, RoutedBurstAt256NodesStaysAllocationFree) {
  // The PR 1–9 invariants (0 allocs/msg, 0 handler spills) must survive the
  // jump from a 2-node flat world to a 256-node routed torus with the
  // sharded event queue: hop-forwarding closures must stay inside
  // InlineHandler's inline bytes and the route cache must be warm after the
  // first pass so steady-state forwarding never allocates.
  perf::Profiler::set_enabled(false);
  WorldConfig cfg = paper_testbed("aggregate-fastest");
  cfg.fabric.node_count = 256;
  cfg.fabric.net = topo::TopologySpec::torus(16, 16);
  cfg.fabric.event_sharding = true;
  cfg.fabric.rails = {fabric::seastar_torus(), fabric::seastar_torus()};
  World world(cfg);
  ASSERT_EQ(world.fabric().events().shard_count(), 256u);

  constexpr std::size_t kSize = 2048;
  // Transpose pairs: (x, y) -> (y, x) is multi-hop for every off-diagonal
  // node, the classic dimension-order stress pattern.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::uint32_t n = 0; n < 32; ++n) {
    const std::uint32_t x = n % 16;
    const std::uint32_t y = n / 16;
    if (x == y) continue;
    pairs.emplace_back(y * 16 + x, x * 16 + y);
  }
  std::vector<std::uint8_t> tx(kSize, 0x77);
  std::vector<std::vector<std::uint8_t>> rx(pairs.size(),
                                            std::vector<std::uint8_t>(kSize));
  std::vector<RecvHandle> recvs;
  recvs.reserve(pairs.size());
  Tag tag = 0;
  const auto burst = [&] {
    recvs.clear();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      recvs.push_back(world.engine(pairs[i].second)
                          .irecv(pairs[i].first, tag, rx[i].data(), kSize));
    }
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      (void)world.engine(pairs[i].first)
          .isend(pairs[i].second, tag, tx.data(), kSize);
    }
    for (const auto& r : recvs) world.wait(r);
    ++tag;
  };

  for (int i = 0; i < 4; ++i) burst();  // warm pools, slots, route cache

  const std::uint64_t spills_before = world.fabric().events().handler_spills();
  const std::uint64_t before = perf::t_alloc_count;
  constexpr int kMeasured = 16;
  for (int i = 0; i < kMeasured; ++i) burst();
  const std::uint64_t delta = perf::t_alloc_count - before;

  EXPECT_EQ(delta, 0u) << delta << " allocations across " << kMeasured
                       << " routed bursts of " << pairs.size()
                       << " messages on the 256-node torus";
  EXPECT_EQ(world.fabric().events().handler_spills(), spills_before);
  EXPECT_EQ(world.fabric().events().handler_spills(), 0u);
  EXPECT_GT(world.fabric().forwarded_segments(), 0u);
}

// --- strategy-decision cache -------------------------------------------------

std::vector<SimTime> run_traffic(const std::string& strategy, bool cache,
                                 EngineStats* stats_out = nullptr) {
  WorldConfig cfg = paper_testbed(strategy);
  cfg.engine.strategy_cache = cache;
  World world(cfg);

  // Repeating bursts of mixed sizes: aggregation-sized runs, a lone medium
  // message (the multicore-split shape), and repeats that a warm cache
  // replays from its memoized plans.
  const std::size_t sizes[] = {64, 512, 2048, 8192};
  std::vector<std::uint8_t> tx(8192, 0x33);
  std::vector<std::vector<std::uint8_t>> rx;
  std::vector<SimTime> completions;
  Tag tag = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<RecvHandle> recvs;
    for (const std::size_t size : sizes) {
      rx.emplace_back(size, 0);
      recvs.push_back(
          world.engine(1).irecv(0, tag, rx.back().data(), size));
      (void)world.engine(0).isend(1, tag, tx.data(), size);
      ++tag;
    }
    for (const auto& r : recvs) {
      completions.push_back(world.wait(r));
    }
  }
  if (stats_out != nullptr) *stats_out = world.engine(0).stats();
  return completions;
}

TEST(StrategyCache, CachedWorldsMatchUncachedWorldsExactly) {
  for (const char* strategy :
       {"aggregate-fastest", "greedy-balance", "multicore-hetero-split",
        "batch-spread"}) {
    EngineStats cached_stats;
    const auto cached = run_traffic(strategy, /*cache=*/true, &cached_stats);
    const auto fresh = run_traffic(strategy, /*cache=*/false);
    EXPECT_EQ(cached, fresh) << "strategy " << strategy
                             << ": cached plans diverged from fresh plans";
    EXPECT_GT(cached_stats.strategy_cache_hits, 0u)
        << "strategy " << strategy << " never hit its decision cache";
  }
}

TEST(StrategyCache, DisabledCacheNeverCounts) {
  EngineStats stats;
  run_traffic("aggregate-fastest", /*cache=*/false, &stats);
  EXPECT_EQ(stats.strategy_cache_hits, 0u);
  EXPECT_EQ(stats.strategy_cache_misses, 0u);
}

TEST(StrategyCache, StrategySwapInvalidatesMemoizedPlans) {
  WorldConfig cfg = paper_testbed("aggregate-fastest");
  World world(cfg);
  std::vector<std::uint8_t> tx(1024, 0x44);
  std::vector<std::uint8_t> rx(1024, 0);

  const auto transfer = [&](Tag tag) {
    auto recv = world.engine(1).irecv(0, tag, rx.data(), rx.size());
    (void)world.engine(0).isend(1, tag, tx.data(), tx.size());
    world.wait(recv);
  };
  for (Tag t = 0; t < 4; ++t) transfer(t);
  const auto& stats = world.engine(0).stats();
  EXPECT_GT(stats.strategy_cache_hits, 0u);
  const std::uint64_t misses_before = stats.strategy_cache_misses;

  // Installing a strategy — even the same kind — bumps the decision epoch:
  // the next identical burst must plan fresh, not replay the old plans.
  world.set_strategy("aggregate-fastest");
  transfer(100);
  EXPECT_GT(stats.strategy_cache_misses, misses_before);
}

}  // namespace
}  // namespace rails::core
