// Gathered (iovec) sends and the gather/scatter capability (§II-B).
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/presets.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

std::vector<Engine::IoSlice> slices_of(const std::vector<std::uint8_t>& buf,
                                       std::initializer_list<std::size_t> cuts) {
  std::vector<Engine::IoSlice> slices;
  std::size_t pos = 0;
  for (std::size_t len : cuts) {
    slices.push_back({buf.data() + pos, len});
    pos += len;
  }
  slices.push_back({buf.data() + pos, buf.size() - pos});
  return slices;
}

TEST(Iovec, EagerGatheredIntegrity) {
  core::World world(paper_testbed("hetero-split"));
  const auto tx = test::make_pattern(6000, 1);
  const auto slices = slices_of(tx, {100, 900, 3000});
  std::vector<std::uint8_t> rx(tx.size());
  auto recv = world.engine(1).irecv(0, 1, rx.data(), rx.size());
  auto send = world.engine(0).isendv(1, 1, slices);
  world.wait(recv);
  EXPECT_TRUE(send->done());
  EXPECT_EQ(rx, tx);
}

TEST(Iovec, RendezvousGatheredIntegrity) {
  core::World world(paper_testbed("hetero-split"));
  const auto tx = test::make_pattern(2_MiB, 2);
  const auto slices = slices_of(tx, {1_MiB, 512_KiB});
  std::vector<std::uint8_t> rx(tx.size());
  auto recv = world.engine(1).irecv(0, 1, rx.data(), rx.size());
  auto send = world.engine(0).isendv(1, 1, slices);
  world.wait(send);
  (void)recv;
  EXPECT_TRUE(send->rendezvous);
  EXPECT_EQ(rx, tx);
}

TEST(Iovec, SingleSliceEquivalentToIsend) {
  core::World a(paper_testbed("hetero-split"));
  core::World b(paper_testbed("hetero-split"));
  const auto tx = test::make_pattern(8_KiB, 3);
  std::vector<std::uint8_t> rx(tx.size());

  auto recv_a = a.engine(1).irecv(0, 1, rx.data(), rx.size());
  const SimTime start_a = a.now();
  a.engine(0).isendv(1, 1, std::vector<Engine::IoSlice>{{tx.data(), tx.size()}});
  const SimDuration ta = a.wait(recv_a) - start_a;

  auto recv_b = b.engine(1).irecv(0, 1, rx.data(), rx.size());
  const SimTime start_b = b.now();
  b.engine(0).isend(1, 1, tx.data(), tx.size());
  const SimDuration tb = b.wait(recv_b) - start_b;

  // Both testbed rails support gather/scatter: no coalescing charge.
  EXPECT_EQ(ta, tb);
}

TEST(Iovec, CoalescingChargedWithoutGatherSupport) {
  // IB-DDR's verbs preset lacks gather/scatter: the engine must pay a
  // staging memcpy on the scheduler core, visibly delaying the emission.
  core::WorldConfig no_gather = paper_testbed("single-rail:0");
  no_gather.fabric.rails[1] = fabric::ib_ddr();
  ASSERT_FALSE(no_gather.fabric.rails[1].gather_scatter);

  core::World gather(paper_testbed("single-rail:0"));
  core::World copy_world(no_gather);

  const auto tx = test::make_pattern(16_KiB, 4);
  const std::vector<Engine::IoSlice> slices = {{tx.data(), 8_KiB},
                                               {tx.data() + 8_KiB, 8_KiB}};
  std::vector<std::uint8_t> rx(tx.size());

  auto run = [&](core::World& world) {
    world.fabric().events().run_all();
    auto recv = world.engine(1).irecv(0, 1, rx.data(), rx.size());
    const SimTime start = world.now();
    world.engine(0).isendv(1, 1, slices);
    return world.wait(recv) - start;
  };
  const SimDuration free_gather = run(gather);
  const SimDuration coalesced = run(copy_world);
  const SimDuration expected_copy =
      wire_time(tx.size(), gather.engine(0).config().host_copy_mbps);
  EXPECT_EQ(coalesced - free_gather, expected_copy);
  EXPECT_EQ(rx, tx);
}

TEST(Iovec, EmptySliceListSendsZeroBytes) {
  core::World world(paper_testbed("hetero-split"));
  auto recv = world.engine(1).irecv(0, 1, nullptr, 0);
  auto send = world.engine(0).isendv(1, 1, {});
  world.wait(recv);
  EXPECT_TRUE(send->done());
  EXPECT_EQ(recv->bytes_received, 0u);
}

TEST(Iovec, ManySmallSlices) {
  core::World world(paper_testbed("hetero-split"));
  const auto tx = test::make_pattern(4096, 5);
  std::vector<Engine::IoSlice> slices;
  for (std::size_t pos = 0; pos < tx.size(); pos += 64) {
    slices.push_back({tx.data() + pos, 64});
  }
  std::vector<std::uint8_t> rx(tx.size());
  auto recv = world.engine(1).irecv(0, 1, rx.data(), rx.size());
  world.engine(0).isendv(1, 1, slices);
  world.wait(recv);
  EXPECT_EQ(rx, tx);
}

}  // namespace
}  // namespace rails::core
