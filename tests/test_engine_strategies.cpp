#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/presets.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

TEST(StrategyFactory, KnownNames) {
  for (const char* name :
       {"single-rail:0", "single-rail:1", "greedy-balance", "aggregate-fastest",
        "iso-split", "fixed-ratio-split", "hetero-split", "multicore-hetero-split"}) {
    auto s = make_strategy(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name(), name);
  }
}

TEST(StrategyFactoryDeath, UnknownNameAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(make_strategy("does-not-exist"), "unknown strategy");
}

TEST(GreedyStrategy, NeverAggregates) {
  core::World world(paper_testbed("greedy-balance"));
  const auto tx = test::make_pattern(256, 1);
  std::vector<std::vector<std::uint8_t>> rx(6, std::vector<std::uint8_t>(256));
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < 6; ++i) {
    recvs.push_back(world.engine(1).irecv(0, 10 + i, rx[i].data(), 256));
  }
  for (int i = 0; i < 6; ++i) world.engine(0).isend(1, 10 + i, tx.data(), 256);
  for (auto& r : recvs) world.wait(r);
  const auto& stats = world.engine(0).stats();
  // One segment per message: greedy balancing does not aggregate.
  EXPECT_EQ(stats.eager_segments, 6u);
  EXPECT_EQ(stats.aggregated_packets, 0u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(rx[i], tx);
}

TEST(GreedyStrategy, SpreadsAcrossRails) {
  core::World world(paper_testbed("greedy-balance"));
  const auto tx = test::make_pattern(1024, 2);
  std::vector<std::vector<std::uint8_t>> rx(4, std::vector<std::uint8_t>(1024));
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < 4; ++i) {
    recvs.push_back(world.engine(1).irecv(0, i, rx[i].data(), 1024));
  }
  for (int i = 0; i < 4; ++i) world.engine(0).isend(1, i, tx.data(), 1024);
  for (auto& r : recvs) world.wait(r);
  const auto& per_rail = world.engine(0).stats().payload_bytes_per_rail;
  EXPECT_GT(per_rail[0], 0u);
  EXPECT_GT(per_rail[1], 0u);
}

TEST(SingleRailStrategy, OnlyUsesItsRail) {
  core::World world(paper_testbed("single-rail:0"));
  const auto tx = test::make_pattern(2048, 3);
  std::vector<std::uint8_t> rx(2048);
  for (int i = 0; i < 3; ++i) {
    auto recv = world.engine(1).irecv(0, i, rx.data(), 2048);
    world.engine(0).isend(1, i, tx.data(), 2048);
    world.wait(recv);
  }
  EXPECT_EQ(world.engine(0).stats().payload_bytes_per_rail[1], 0u);
}

TEST(MulticoreStrategy, MediumEagerIsSplitAndOffloaded) {
  core::World world(paper_testbed("multicore-hetero-split"));
  const std::size_t size = 16_KiB;  // below rdv threshold, big enough to split
  ASSERT_LT(size, world.engine(0).rdv_threshold());
  const auto tx = test::make_pattern(size, 4);
  std::vector<std::uint8_t> rx(size);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.wait(recv);
  EXPECT_EQ(rx, tx);
  EXPECT_GE(send->chunk_count, 2u);
  EXPECT_EQ(send->offloaded_chunks, send->chunk_count);
  EXPECT_GE(world.engine(0).stats().split_eager_msgs, 1u);
  EXPECT_GE(world.engine(0).stats().offloaded_chunks, 2u);
}

TEST(MulticoreStrategy, TinyEagerIsNotSplit) {
  core::World world(paper_testbed("multicore-hetero-split"));
  const auto tx = test::make_pattern(64, 5);
  std::vector<std::uint8_t> rx(64);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), 64);
  auto send = world.engine(0).isend(1, 1, tx.data(), 64);
  world.wait(recv);
  EXPECT_EQ(send->chunk_count, 1u);
  EXPECT_EQ(send->offloaded_chunks, 0u);
  EXPECT_EQ(rx, tx);
}

TEST(MulticoreStrategy, FasterThanSingleRailAtMediumSizes) {
  core::World multicore(paper_testbed("multicore-hetero-split"));
  core::World single(paper_testbed("aggregate-fastest"));
  const std::size_t size = 16_KiB;
  const SimDuration split_time = multicore.measure_one_way(size);
  const SimDuration single_time = single.measure_one_way(size);
  EXPECT_LT(split_time, single_time);
}

TEST(MulticoreStrategy, OffloadDelayVisibleInTimeline) {
  // With TO = 3 µs, a split 16 KiB send cannot arrive sooner than TO.
  core::World world(paper_testbed("multicore-hetero-split"));
  const SimDuration t = world.measure_one_way(16_KiB);
  EXPECT_GE(t, world.engine(0).config().offload.signal_cost);
}

TEST(MulticoreStrategy, BatchOfTinyMessagesAggregates) {
  core::World world(paper_testbed("multicore-hetero-split"));
  const auto tx = test::make_pattern(128, 6);
  std::vector<std::vector<std::uint8_t>> rx(5, std::vector<std::uint8_t>(128));
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < 5; ++i) {
    recvs.push_back(world.engine(1).irecv(0, i, rx[i].data(), 128));
  }
  for (int i = 0; i < 5; ++i) world.engine(0).isend(1, i, tx.data(), 128);
  for (auto& r : recvs) world.wait(r);
  // Multiple pending tiny packets fall back to aggregation, not offload.
  EXPECT_GT(world.engine(0).stats().aggregated_packets, 0u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rx[i], tx);
}

TEST(HeteroStrategy, BeatsIsoOnHeterogeneousRails) {
  core::World hetero(paper_testbed("hetero-split"));
  core::World iso(paper_testbed("iso-split"));
  for (std::size_t size : {1_MiB, 4_MiB, 8_MiB}) {
    EXPECT_LT(hetero.measure_pingpong(size, 2), iso.measure_pingpong(size, 2))
        << "size " << size;
  }
}

TEST(HeteroStrategy, MatchesIsoOnHomogeneousRails) {
  // On two identical rails the equal-finish split *is* the equal split.
  WorldConfig cfg;
  cfg.fabric.rails = {fabric::myri10g(), fabric::myri10g()};
  cfg.strategy = "hetero-split";
  core::World hetero(cfg);
  cfg.strategy = "iso-split";
  core::World iso(cfg);
  const SimDuration th = hetero.measure_pingpong(4_MiB, 2);
  const SimDuration ti = iso.measure_pingpong(4_MiB, 2);
  EXPECT_NEAR(static_cast<double>(th), static_cast<double>(ti),
              static_cast<double>(ti) * 0.02);
}

TEST(ControlRail, DefaultPrefersLowLatencyRail) {
  core::World world(paper_testbed("hetero-split"));
  StrategyContext ctx;
  ctx.now = 0;
  ctx.estimator = &world.estimator();
  std::vector<fabric::SimNic*> nics = {&world.fabric().nic(0, 0),
                                       &world.fabric().nic(0, 1)};
  ctx.nics = std::span<fabric::SimNic* const>(nics.data(), nics.size());
  // QsNetII (rail 1) has the lower zero-byte latency.
  EXPECT_EQ(world.engine(0).strategy().control_rail(ctx), 1u);
}

}  // namespace
}  // namespace rails::core
