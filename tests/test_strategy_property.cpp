// Randomized optimality properties of the split solver: on arbitrary rail
// mixes, busy states and sizes, the busy-aware equal-finish plan must never
// lose to any of the baselines it replaces.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fabric/presets.hpp"
#include "strategy/rail_cost.hpp"
#include "strategy/split_solver.hpp"

namespace rails::strategy {
namespace {

struct RandomScenario {
  std::vector<fabric::NetworkModel> models;
  std::vector<ModelCost> costs;
  std::vector<SolverRail> rails;
  std::size_t total = 0;
};

RandomScenario make_scenario(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  RandomScenario sc;
  const unsigned rail_count = 2 + static_cast<unsigned>(rng.below(3));  // 2..4
  sc.models.reserve(rail_count);
  for (unsigned r = 0; r < rail_count; ++r) {
    // Random affine rails: latency 1..30 us, bandwidth 100..2000 MB/s.
    const double lat = 1.0 + rng.uniform() * 29.0;
    const double bw = 100.0 + rng.uniform() * 1900.0;
    sc.models.emplace_back(fabric::affine(lat, bw));
  }
  sc.costs.reserve(rail_count);
  for (unsigned r = 0; r < rail_count; ++r) {
    sc.costs.emplace_back(&sc.models[r], fabric::Protocol::kRendezvous);
  }
  for (unsigned r = 0; r < rail_count; ++r) {
    // Half the rails start busy, up to 2 ms.
    const SimDuration busy =
        rng.below(2) == 0 ? 0 : static_cast<SimDuration>(rng.below(2'000'000));
    sc.rails.push_back({r, &sc.costs[r], busy});
  }
  sc.total = 1 + rng.below(8u << 20);
  return sc;
}

SimDuration plan_makespan(const RandomScenario& sc, const std::vector<Chunk>& chunks) {
  SimDuration worst = 0;
  for (const auto& c : chunks) {
    if (c.bytes == 0) continue;
    worst = std::max(worst, sc.rails[c.rail].ready_offset +
                                sc.costs[c.rail].duration(c.bytes));
  }
  return worst;
}

std::vector<Chunk> iso_chunks(const RandomScenario& sc) {
  std::vector<Chunk> chunks;
  const std::size_t n = sc.rails.size();
  std::size_t offset = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t bytes = r + 1 < n ? sc.total / n : sc.total - offset;
    chunks.push_back({static_cast<RailId>(r), offset, bytes});
    offset += bytes;
  }
  return chunks;
}

std::vector<Chunk> fixed_ratio_chunks(const RandomScenario& sc) {
  std::vector<Chunk> chunks;
  double sum = 0;
  for (const auto& m : sc.models) sum += m.params().dma_bw_mbps;
  std::size_t offset = 0;
  for (std::size_t r = 0; r < sc.rails.size(); ++r) {
    const std::size_t bytes =
        r + 1 < sc.rails.size()
            ? static_cast<std::size_t>(static_cast<double>(sc.total) *
                                       sc.models[r].params().dma_bw_mbps / sum)
            : sc.total - offset;
    chunks.push_back({static_cast<RailId>(r), offset, bytes});
    offset += bytes;
  }
  return chunks;
}

class RandomSplit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSplit, EqualFinishDominatesEveryBaseline) {
  const RandomScenario sc = make_scenario(GetParam());
  const auto solved = solve_equal_finish(sc.rails, sc.total);

  // Plan validity: tiles the message with consecutive offsets.
  std::size_t covered = 0;
  std::size_t expected_offset = 0;
  for (const auto& c : solved.chunks) {
    EXPECT_EQ(c.offset, expected_offset);
    expected_offset += c.bytes;
    covered += c.bytes;
  }
  EXPECT_EQ(covered, sc.total);

  // Reported makespan matches recomputation from the cost curves.
  EXPECT_EQ(solved.makespan, plan_makespan(sc, solved.chunks));

  // Dominance: never worse than the best single rail, the iso split, or the
  // bandwidth-ratio split (small slack for integer rounding).
  const SimDuration best_single =
      single_rail_time(sc.rails[best_single_rail(sc.rails, sc.total)], sc.total);
  EXPECT_LE(solved.makespan, best_single);
  EXPECT_LE(solved.makespan, plan_makespan(sc, iso_chunks(sc)) + 10);
  EXPECT_LE(solved.makespan, plan_makespan(sc, fixed_ratio_chunks(sc)) + 10);
}

TEST_P(RandomSplit, UsedRailsFinishTogether) {
  const RandomScenario sc = make_scenario(GetParam() + 1000);
  const auto solved = solve_equal_finish(sc.rails, sc.total);
  if (solved.chunks.size() < 2) return;  // single-rail solutions are exempt
  // Every used rail's finish is within 1% (+1 us) of the makespan — the
  // Fig. 1c equal-finish property. The final chunk can be trimmed short by
  // allocation order, so allow one outlier.
  unsigned laggards = 0;
  for (const auto& c : solved.chunks) {
    const SimDuration finish =
        sc.rails[c.rail].ready_offset + sc.costs[c.rail].duration(c.bytes);
    if (static_cast<double>(finish) <
        static_cast<double>(solved.makespan) * 0.99 - 1000.0) {
      ++laggards;
    }
  }
  EXPECT_LE(laggards, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSplit, ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace rails::strategy
