#include "common/topology.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace rails {
namespace {

TEST(Topology, OpteronCounts) {
  const auto topo = MachineTopology::opteron_2x2();
  EXPECT_EQ(topo.core_count(), 4u);
  EXPECT_EQ(topo.socket_of(0), 0u);
  EXPECT_EQ(topo.socket_of(1), 0u);
  EXPECT_EQ(topo.socket_of(2), 1u);
  EXPECT_EQ(topo.socket_of(3), 1u);
}

TEST(Topology, SameSocket) {
  const auto topo = MachineTopology::opteron_2x2();
  EXPECT_TRUE(topo.same_socket(0, 1));
  EXPECT_FALSE(topo.same_socket(1, 2));
  EXPECT_TRUE(topo.same_socket(2, 3));
}

TEST(Topology, NeighboursSameSocketFirst) {
  const auto topo = MachineTopology::opteron_2x2();
  const auto n = topo.neighbours_by_distance(0);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 1u);  // same socket first
  // Remote socket cores follow in id order.
  EXPECT_EQ(n[1], 2u);
  EXPECT_EQ(n[2], 3u);
}

TEST(Topology, NeighboursExcludeSelf) {
  const auto topo = MachineTopology::t2k_4x4();
  for (CoreId c = 0; c < topo.core_count(); ++c) {
    const auto n = topo.neighbours_by_distance(c);
    EXPECT_EQ(n.size(), topo.core_count() - 1);
    EXPECT_EQ(std::find(n.begin(), n.end(), c), n.end());
  }
}

TEST(Topology, NeighboursCoverAllCoresOnce) {
  const auto topo = MachineTopology::t2k_4x4();
  auto n = topo.neighbours_by_distance(5);
  std::sort(n.begin(), n.end());
  for (std::size_t i = 1; i < n.size(); ++i) EXPECT_NE(n[i - 1], n[i]);
}

TEST(Topology, T2kSameSocketPrefix) {
  const auto topo = MachineTopology::t2k_4x4();
  const auto n = topo.neighbours_by_distance(5);  // socket 1 (cores 4..7)
  // First three neighbours are the same-socket peers.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(topo.socket_of(n[i]), 1u);
  // Next sockets follow in ring order: 2, 3, 0.
  EXPECT_EQ(topo.socket_of(n[3]), 2u);
  EXPECT_EQ(topo.socket_of(n[7]), 3u);
  EXPECT_EQ(topo.socket_of(n[11]), 0u);
}

TEST(Topology, Describe) {
  EXPECT_EQ(MachineTopology::opteron_2x2().describe(), "2 socket(s) x 2 core(s) = 4 cores");
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(2_MiB, 2u * 1024u * 1024u);
}

TEST(Units, TimeLiteralsAndConversions) {
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(2_ms, 2'000'000);
  EXPECT_EQ(usec(2.5), 2500);
  EXPECT_DOUBLE_EQ(to_usec(1500), 1.5);
}

TEST(Units, WireTimeAndBandwidth) {
  // 1 MB at 1000 MB/s = 1 ms.
  EXPECT_EQ(wire_time(1'000'000, 1000.0), 1_ms);
  EXPECT_DOUBLE_EQ(mbps(1'000'000, 1_ms), 1000.0);
  EXPECT_DOUBLE_EQ(mbps(1024, 0), 0.0);
}

}  // namespace
}  // namespace rails
