#include "strategy/split_solver.hpp"

#include <gtest/gtest.h>

#include "fabric/presets.hpp"
#include "sampling/sampler.hpp"

namespace rails::strategy {
namespace {

using fabric::NetworkModel;
using fabric::Protocol;

/// Affine rail: duration = latency + bytes/bw.
struct AffineFixture {
  NetworkModel model;
  ModelCost cost;
  AffineFixture(double lat_us, double bw)
      : model(fabric::affine(lat_us, bw)), cost(&model, Protocol::kRendezvous) {}
};

TEST(ModelCost, InverseMatchesDuration) {
  AffineFixture f(5.0, 1000.0);
  for (std::size_t bytes : {0ul, 100ul, 4096ul, 1000000ul}) {
    const SimDuration d = f.cost.duration(bytes);
    const std::size_t inv = f.cost.max_bytes_within(d);
    EXPECT_GE(inv, bytes);
    EXPECT_LE(f.cost.duration(inv), d);
  }
}

TEST(ModelCost, ZeroOrNegativeBudgetFitsNothing) {
  // Regression: with a (degenerate) zero-latency model, a zero budget used
  // to send the doubling search all the way to its ceiling and report ~1 TiB
  // as "fitting" in no time at all.
  AffineFixture f(0.0, 1e15);
  EXPECT_EQ(f.cost.max_bytes_within(0), 0u);
  EXPECT_EQ(f.cost.max_bytes_within(-1), 0u);
  EXPECT_EQ(f.cost.max_bytes_within(usec(-5.0)), 0u);
  AffineFixture g(5.0, 1000.0);
  EXPECT_EQ(g.cost.max_bytes_within(0), 0u);
  EXPECT_EQ(g.cost.max_bytes_within(usec(4.9)), 0u);  // below the latency
}

TEST(ModelCost, SearchClampsAtCeilingInsteadOfOverflowing) {
  // A near-infinite-bandwidth rail: everything "fits", so the search must
  // stop at its documented 1 TiB ceiling rather than doubling forever.
  AffineFixture f(0.0, 1e15);
  EXPECT_EQ(f.cost.max_bytes_within(usec(1.0)), std::size_t{1} << 40);
}

TEST(Dichotomy, EqualRailsSplitInHalf) {
  AffineFixture a(2.0, 1000.0);
  AffineFixture b(2.0, 1000.0);
  const SolverRail ra{0, &a.cost, 0};
  const SolverRail rb{1, &b.cost, 0};
  const auto result = dichotomy_split(ra, rb, 1_MiB);
  ASSERT_EQ(result.chunks.size(), 2u);
  EXPECT_NEAR(static_cast<double>(result.chunks[0].bytes), 1_MiB / 2.0, 1_MiB * 0.01);
  EXPECT_LE(result.imbalance, usec(1.0));
}

TEST(Dichotomy, HeterogeneousRailsMatchBandwidthRatio) {
  // With zero latency the equal-finish ratio is exactly bw0/(bw0+bw1).
  AffineFixture fast(0.0, 1170.0);
  AffineFixture slow(0.0, 837.0);
  const SolverRail ra{0, &fast.cost, 0};
  const SolverRail rb{1, &slow.cost, 0};
  const std::size_t total = 4_MiB;
  const auto result = dichotomy_split(ra, rb, total);
  const double expected = 1170.0 / (1170.0 + 837.0) * static_cast<double>(total);
  EXPECT_NEAR(static_cast<double>(result.chunks[0].bytes), expected, total * 0.01);
}

TEST(Dichotomy, StartsAtHalfAndConverges) {
  AffineFixture fast(0.0, 2000.0);
  AffineFixture slow(0.0, 500.0);
  const SolverRail ra{0, &fast.cost, 0};
  const SolverRail rb{1, &slow.cost, 0};
  DichotomyConfig cfg;
  cfg.max_iterations = 1;  // forced to stop right after the initial 50/50
  const auto one = dichotomy_split(ra, rb, 1_MiB, cfg);
  EXPECT_EQ(one.chunks[0].bytes, 1_MiB / 2);

  cfg.max_iterations = 30;
  cfg.tolerance = 100;
  const auto converged = dichotomy_split(ra, rb, 1_MiB, cfg);
  EXPECT_LT(converged.imbalance, one.imbalance);
  EXPECT_NEAR(static_cast<double>(converged.chunks[0].bytes), 0.8 * 1_MiB, 0.01 * 1_MiB);
}

TEST(Dichotomy, BusyOffsetShiftsShare) {
  AffineFixture a(1.0, 1000.0);
  AffineFixture b(1.0, 1000.0);
  const SolverRail ra{0, &a.cost, usec(500.0)};  // rail 0 busy for 500 us
  const SolverRail rb{1, &b.cost, 0};
  const auto result = dichotomy_split(ra, rb, 1_MiB);
  // Equal speeds but rail 0 starts late: it must carry less.
  ASSERT_EQ(result.chunks.size(), 2u);
  EXPECT_LT(result.chunks[0].bytes, result.chunks[1].bytes);
  EXPECT_LE(result.imbalance, usec(1.0));
}

TEST(Dichotomy, IterationsBoundedByConfig) {
  AffineFixture a(0.0, 1234.0);
  AffineFixture b(0.0, 567.0);
  DichotomyConfig cfg;
  cfg.max_iterations = 7;
  cfg.tolerance = 0;  // unreachable: always runs to the iteration cap
  const auto result =
      dichotomy_split({0, &a.cost, 0}, {1, &b.cost, 0}, 1_MiB, cfg);
  EXPECT_EQ(result.iterations, 7u);
}

TEST(EqualFinish, MatchesDichotomyOnTwoRails) {
  AffineFixture a(3.0, 1170.0);
  AffineFixture b(2.0, 837.0);
  const std::vector<SolverRail> rails = {{0, &a.cost, 0}, {1, &b.cost, 0}};
  const auto dich = dichotomy_split(rails[0], rails[1], 4_MiB);
  const auto ef = solve_equal_finish(rails, 4_MiB);
  ASSERT_EQ(ef.chunks.size(), 2u);
  EXPECT_NEAR(static_cast<double>(ef.chunks[0].bytes),
              static_cast<double>(dich.chunks[0].bytes), 4_MiB * 0.005);
  EXPECT_NEAR(static_cast<double>(ef.makespan), static_cast<double>(dich.makespan),
              static_cast<double>(dich.makespan) * 0.005);
}

TEST(EqualFinish, ChunksTileTheMessage) {
  AffineFixture a(1.0, 900.0);
  AffineFixture b(2.0, 600.0);
  AffineFixture c(3.0, 300.0);
  const std::vector<SolverRail> rails = {{0, &a.cost, 0}, {1, &b.cost, 0}, {2, &c.cost, 0}};
  for (std::size_t total : {4096ul, 100000ul, 1048576ul, 8388608ul}) {
    const auto result = solve_equal_finish(rails, total);
    std::size_t sum = 0;
    std::size_t expected_offset = 0;
    for (const auto& chunk : result.chunks) {
      EXPECT_EQ(chunk.offset, expected_offset);
      expected_offset += chunk.bytes;
      sum += chunk.bytes;
    }
    EXPECT_EQ(sum, total);
  }
}

TEST(EqualFinish, NeverWorseThanBestSingleRail) {
  AffineFixture a(2.0, 1170.0);
  AffineFixture b(1.0, 837.0);
  const std::vector<SolverRail> rails = {{0, &a.cost, 0}, {1, &b.cost, 0}};
  for (std::size_t total = 1_KiB; total <= 8_MiB; total <<= 1) {
    const auto split = solve_equal_finish(rails, total);
    const auto best = single_rail_time(rails[best_single_rail(rails, total)], total);
    EXPECT_LE(split.makespan, best) << "total " << total;
  }
}

TEST(EqualFinish, HopelesslyBusyRailGetsNothing) {
  // Fig. 2: a NIC that stays busy past the other rail's completion is
  // discarded from the transfer.
  AffineFixture a(1.0, 1000.0);
  AffineFixture b(1.0, 1000.0);
  const SimDuration solo = a.cost.duration(64_KiB);
  const std::vector<SolverRail> rails = {
      {0, &a.cost, 0},
      {1, &b.cost, solo * 2},  // busy until well past rail 0's solo finish
  };
  const auto result = solve_equal_finish(rails, 64_KiB);
  ASSERT_EQ(result.chunks.size(), 1u);
  EXPECT_EQ(result.chunks[0].rail, 0u);
  EXPECT_EQ(result.chunks[0].bytes, 64_KiB);
}

TEST(EqualFinish, BrieflyBusyRailStillUsed) {
  // Fig. 2's other case: a busy NIC that frees soon enough still joins.
  AffineFixture a(1.0, 1000.0);
  AffineFixture b(1.0, 1000.0);
  const std::vector<SolverRail> rails = {
      {0, &a.cost, 0},
      {1, &b.cost, usec(50.0)},  // busy 50 us; message takes ~1000 us
  };
  const auto result = solve_equal_finish(rails, 1_MiB);
  ASSERT_EQ(result.chunks.size(), 2u);
  EXPECT_GT(result.chunks[1].bytes, 0u);
  EXPECT_LT(result.chunks[1].bytes, result.chunks[0].bytes);
}

TEST(EqualFinish, SingleRailDegenerate) {
  AffineFixture a(1.0, 500.0);
  const std::vector<SolverRail> rails = {{0, &a.cost, 0}};
  const auto result = solve_equal_finish(rails, 1_MiB);
  ASSERT_EQ(result.chunks.size(), 1u);
  EXPECT_EQ(result.chunks[0].bytes, 1_MiB);
  EXPECT_EQ(result.makespan, a.cost.duration(1_MiB));
}

TEST(EqualFinish, SingleSurvivorSplitHasZeroImbalance) {
  // The failover path re-splits a lost range over the survivors; with one
  // survivor that is a single chunk, and imbalance must read 0.
  AffineFixture a(1.0, 500.0);
  const std::vector<SolverRail> rails = {{3, &a.cost, usec(2.0)}};
  const auto result = solve_equal_finish(rails, 256_KiB);
  ASSERT_EQ(result.chunks.size(), 1u);
  EXPECT_EQ(result.chunks[0].rail, 3u);
  EXPECT_EQ(result.imbalance, 0);
}

TEST(EqualFinish, PrunedToOneRailReportsZeroImbalance) {
  // Regression: imbalance is a cross-rail quantity. When every byte lands on
  // one rail (here because the other rail is hopelessly busy), the result
  // must not report the makespan-vs-nothing difference as imbalance.
  AffineFixture fast(1.0, 1000.0);
  AffineFixture busy(1.0, 1000.0);
  const std::vector<SolverRail> rails = {
      {0, &fast.cost, 0},
      {1, &busy.cost, usec(100000.0)},  // busy far beyond the transfer time
  };
  const auto result = solve_equal_finish(rails, 64_KiB);
  ASSERT_EQ(result.chunks.size(), 1u);
  EXPECT_EQ(result.chunks[0].rail, 0u);
  EXPECT_EQ(result.imbalance, 0);
}

TEST(Dichotomy, SameRailTwiceReportsZeroImbalance) {
  // Two solver entries can alias one physical rail; the chunks then finish
  // sequentially on that rail and "imbalance" between them is meaningless.
  AffineFixture a(2.0, 1000.0);
  const SolverRail ra{0, &a.cost, 0};
  const SolverRail rb{0, &a.cost, 0};
  const auto result = dichotomy_split(ra, rb, 1_MiB);
  EXPECT_EQ(result.imbalance, 0);
}

TEST(EqualFinish, FourRailAggregationApproachesSum) {
  // Four equal rails: the makespan approaches a quarter of the single-rail
  // time (latency amortised at 8 MiB).
  std::vector<AffineFixture> fixtures;
  fixtures.reserve(4);
  for (int i = 0; i < 4; ++i) fixtures.emplace_back(2.0, 1400.0);
  std::vector<SolverRail> rails;
  for (RailId r = 0; r < 4; ++r) rails.push_back({r, &fixtures[r].cost, 0});
  const auto result = solve_equal_finish(rails, 8_MiB);
  ASSERT_EQ(result.chunks.size(), 4u);
  const double solo = static_cast<double>(fixtures[0].cost.duration(8_MiB));
  EXPECT_NEAR(static_cast<double>(result.makespan), solo / 4.0, solo * 0.02);
}

// -- property sweep with sampled (non-affine) profiles ----------------------

class SampledSplitProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SampledSplitProperty, SampledCurvesProduceValidSplits) {
  static const auto profiles = sampling::sample_rails(
      {fabric::myri10g(), fabric::qsnet2()}, {1, 8u * 1024u * 1024u, 1, 1});
  const ProfileCost myri(&profiles[0].rdv_chunk);
  const ProfileCost qs(&profiles[1].rdv_chunk);
  const std::vector<SolverRail> rails = {{0, &myri, 0}, {1, &qs, 0}};
  const std::size_t total = GetParam();

  const auto result = solve_equal_finish(rails, total);
  std::size_t sum = 0;
  for (const auto& chunk : result.chunks) sum += chunk.bytes;
  EXPECT_EQ(sum, total);
  EXPECT_LE(result.makespan,
            single_rail_time(rails[best_single_rail(rails, total)], total));
  if (result.chunks.size() == 2) {
    // Myri-10G is the faster DMA rail: it must carry the bigger share.
    EXPECT_GT(result.chunks[0].bytes, result.chunks[1].bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SampledSplitProperty,
                         ::testing::Values(64_KiB, 256_KiB, 1_MiB, 4_MiB, 8_MiB),
                         [](const auto& info) { return std::to_string(info.param); });

}  // namespace
}  // namespace rails::strategy
