// Randomized end-to-end property test: arbitrary mixes of message sizes,
// tags and directions must be delivered intact under every strategy, and
// the bytes put on the wire must cover exactly the payload sent.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/world.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

struct Scenario {
  const char* strategy;
  int seed;
};

class RandomTraffic : public ::testing::TestWithParam<Scenario> {};

TEST_P(RandomTraffic, AllMessagesArriveIntact) {
  core::World world(paper_testbed(GetParam().strategy));
  Xoshiro256 rng(GetParam().seed);

  struct Flow {
    std::vector<std::uint8_t> tx;
    std::vector<std::uint8_t> rx;
    SendHandle send;
    RecvHandle recv;
    std::uint64_t seed;
  };
  std::vector<Flow> flows;
  const unsigned count = 12;

  std::size_t total_payload = 0;
  for (unsigned i = 0; i < count; ++i) {
    Flow f;
    f.seed = rng();
    // Mix of eager and rendezvous sizes, including odd lengths.
    const std::size_t size = 1 + rng.below(i % 3 == 0 ? 2_MiB : 8_KiB);
    f.tx = test::make_pattern(size, f.seed);
    f.rx.assign(size, 0);
    total_payload += size;
    flows.push_back(std::move(f));
  }

  // Post receives for even flows up front (expected); odd flows post late
  // (unexpected path).
  for (unsigned i = 0; i < count; i += 2) {
    flows[i].recv =
        world.engine(1).irecv(0, i, flows[i].rx.data(), flows[i].rx.size());
  }
  for (unsigned i = 0; i < count; ++i) {
    flows[i].send = world.engine(0).isend(1, i, flows[i].tx.data(), flows[i].tx.size());
  }
  world.fabric().events().run_all();
  for (unsigned i = 1; i < count; i += 2) {
    flows[i].recv =
        world.engine(1).irecv(0, i, flows[i].rx.data(), flows[i].rx.size());
  }
  for (auto& f : flows) world.wait(f.recv);
  for (auto& f : flows) world.wait(f.send);

  for (unsigned i = 0; i < count; ++i) {
    EXPECT_EQ(flows[i].rx, flows[i].tx) << "flow " << i;
  }

  // Conservation: the fabric delivered at least the application payload
  // (headers and control extra), and the engine's per-rail accounting sums
  // to everything it posted.
  const auto& stats = world.engine(0).stats();
  std::size_t accounted = 0;
  for (auto b : stats.payload_bytes_per_rail) accounted += b;
  EXPECT_GE(accounted, total_payload);
}

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  std::string s = info.param.strategy;
  for (char& c : s) {
    if (c == '-' || c == ':') c = '_';
  }
  return s + "_seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Mix, RandomTraffic,
    ::testing::Values(Scenario{"hetero-split", 1}, Scenario{"hetero-split", 2},
                      Scenario{"multicore-hetero-split", 1},
                      Scenario{"multicore-hetero-split", 3},
                      Scenario{"iso-split", 1}, Scenario{"greedy-balance", 1},
                      Scenario{"aggregate-fastest", 2},
                      Scenario{"fixed-ratio-split", 1}, Scenario{"single-rail:0", 1},
                      Scenario{"single-rail:1", 4}),
    scenario_name);

TEST(PropertyBidirectional, CrossTrafficIntegrity) {
  core::World world(paper_testbed("multicore-hetero-split"));
  Xoshiro256 rng(77);
  for (int round = 0; round < 5; ++round) {
    const std::size_t s01 = 1 + rng.below(1_MiB);
    const std::size_t s10 = 1 + rng.below(1_MiB);
    const auto tx01 = test::make_pattern(s01, round * 2);
    const auto tx10 = test::make_pattern(s10, round * 2 + 1);
    std::vector<std::uint8_t> rx01(s01), rx10(s10);
    auto r1 = world.engine(1).irecv(0, 1, rx01.data(), s01);
    auto r0 = world.engine(0).irecv(1, 2, rx10.data(), s10);
    auto send0 = world.engine(0).isend(1, 1, tx01.data(), s01);
    auto send1 = world.engine(1).isend(0, 2, tx10.data(), s10);
    world.wait(r1);
    world.wait(r0);
    world.wait(send0);
    world.wait(send1);
    EXPECT_EQ(rx01, tx01) << "round " << round;
    EXPECT_EQ(rx10, tx10) << "round " << round;
  }
}

}  // namespace
}  // namespace rails::core
