#include "trace/tracer.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "test_util.hpp"

namespace rails::trace {
namespace {

TEST(Tracer, StartsEmpty) {
  Tracer tracer;
  EXPECT_TRUE(tracer.empty());
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_FALSE(tracer.message(0, 1).has_value());
}

TEST(Tracer, RecordAndFilter) {
  Tracer tracer;
  tracer.record({100, 0, EventKind::kSubmit, 1, 5, 0, 0, 64, 0});
  tracer.record({200, 0, EventKind::kEagerEmit, 1, 5, 1, 2, 64, 300});
  tracer.record({400, 0, EventKind::kSendComplete, 1, 5, 0, 0, 64, 0});
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.of_kind(EventKind::kEagerEmit).size(), 1u);
  EXPECT_EQ(tracer.of_kind(EventKind::kRecvComplete).size(), 0u);
}

TEST(Tracer, MessageTimelineReconstruction) {
  Tracer tracer;
  tracer.record({100, 0, EventKind::kSubmit, 7, 1, 0, 0, 1000, 0});
  tracer.record({250, 0, EventKind::kOffloadSignal, 7, 1, 0, 1, 0, 0});
  tracer.record({300, 0, EventKind::kEagerEmit, 7, 1, 0, 1, 600, 900});
  tracer.record({320, 0, EventKind::kEagerEmit, 7, 1, 1, 2, 400, 800});
  tracer.record({900, 0, EventKind::kSendComplete, 7, 1, 0, 0, 1000, 0});
  const auto tl = tracer.message(0, 7);
  ASSERT_TRUE(tl.has_value());
  EXPECT_EQ(tl->submit, 100);
  EXPECT_EQ(tl->first_emission, 300);
  EXPECT_EQ(tl->complete, 900);
  EXPECT_EQ(tl->chunks, 2u);
  EXPECT_EQ(tl->offloaded, 1u);
  EXPECT_EQ(tl->bytes, 1000u);
  ASSERT_TRUE(tl->queueing_delay().has_value());
  ASSERT_TRUE(tl->total_latency().has_value());
  EXPECT_EQ(*tl->queueing_delay(), 200);
  EXPECT_EQ(*tl->total_latency(), 800);
}

TEST(Tracer, BytesAndBusyPerRail) {
  Tracer tracer;
  tracer.record({0, 0, EventKind::kChunkPosted, 1, 0, 0, 0, 100, 50});
  tracer.record({10, 0, EventKind::kChunkPosted, 1, 0, 2, 0, 300, 110});
  tracer.record({20, 0, EventKind::kSubmit, 2, 0, 1, 0, 999, 0});  // not NIC activity
  const auto bytes = tracer.bytes_per_rail();
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 100u);
  EXPECT_EQ(bytes[1], 0u);
  EXPECT_EQ(bytes[2], 300u);
  const auto busy = tracer.rail_busy_time();
  EXPECT_EQ(busy[0], 50);
  EXPECT_EQ(busy[2], 100);
}

TEST(Tracer, CsvExport) {
  Tracer tracer;
  tracer.record({100, 1, EventKind::kRtsSent, 3, 9, 1, 0, 2048, 0});
  std::ostringstream os;
  tracer.dump_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_ns,node,kind"), std::string::npos);
  EXPECT_NE(csv.find("100,1,rts,3,9,1,0,2048,0"), std::string::npos);
}

TEST(Tracer, GanttRendersLanes) {
  Tracer tracer;
  tracer.record({0, 0, EventKind::kChunkPosted, 1, 0, 0, 0, 100, 1000});
  tracer.record({500, 0, EventKind::kChunkPosted, 1, 0, 1, 0, 100, 1000});
  std::ostringstream os;
  tracer.render_gantt(os, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("rail 0 |"), std::string::npos);
  EXPECT_NE(out.find("rail 1 |"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Tracer, IncompleteTimelineHasNoDerivedDurations) {
  Tracer tracer;
  tracer.record({100, 0, EventKind::kSubmit, 7, 1, 0, 0, 1000, 0});
  const auto tl = tracer.message(0, 7);
  ASSERT_TRUE(tl.has_value());
  // Still queued: neither delay is defined — an incomplete message must not
  // read as an instant one.
  EXPECT_FALSE(tl->queueing_delay().has_value());
  EXPECT_FALSE(tl->total_latency().has_value());
}

TEST(Tracer, RingBufferKeepsMostRecentWindow) {
  Tracer tracer(4);
  EXPECT_EQ(tracer.capacity(), 4u);
  for (SimTime t = 0; t < 7; ++t) {
    tracer.record({t * 100, 0, EventKind::kSubmit, static_cast<std::uint64_t>(t + 1),
                   0, 0, 0, 64, 0});
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 3u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest three evicted; the window is chronological.
  EXPECT_EQ(events.front().time, 300);
  EXPECT_EQ(events.back().time, 600);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].time, events[i].time);
  }
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.empty());
}

TEST(Tracer, RingBufferQueriesSeeOnlyRetainedEvents) {
  Tracer tracer(2);
  tracer.record({0, 0, EventKind::kChunkPosted, 1, 0, 0, 0, 100, 50});
  tracer.record({10, 0, EventKind::kChunkPosted, 1, 0, 1, 0, 200, 60});
  tracer.record({20, 0, EventKind::kChunkPosted, 1, 0, 1, 0, 300, 70});  // evicts rail 0
  const auto bytes = tracer.bytes_per_rail();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0u);
  EXPECT_EQ(bytes[1], 500u);
  EXPECT_EQ(tracer.of_kind(EventKind::kChunkPosted).size(), 2u);
}

TEST(Tracer, UnboundedTracerNeverDrops) {
  Tracer tracer;
  EXPECT_EQ(tracer.capacity(), 0u);
  for (int i = 0; i < 1000; ++i) {
    tracer.record({i, 0, EventKind::kSubmit, 1, 0, 0, 0, 1, 0});
  }
  EXPECT_EQ(tracer.size(), 1000u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// -- Chrome-trace export -----------------------------------------------------

namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Structural JSON check: braces and brackets balance outside string
/// literals and never go negative. Catches truncated or mis-nested output
/// without needing a JSON parser.
bool json_balanced(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': if (--braces < 0) return false; break;
      case '[': ++brackets; break;
      case ']': if (--brackets < 0) return false; break;
      default: break;
    }
  }
  return braces == 0 && brackets == 0 && !in_string;
}

}  // namespace

TEST(ChromeTrace, GoldenSyntheticTrace) {
  Tracer tracer;
  tracer.record({1000, 0, EventKind::kSubmit, 7, 1, 0, 0, 1000, 0});
  tracer.record({1200, 0, EventKind::kOffloadSignal, 7, 1, 0, 1, 0, 0});
  tracer.record({1500, 0, EventKind::kEagerEmit, 7, 1, 0, 1, 600, 2500});
  tracer.record({1500, 0, EventKind::kChunkPosted, 7, 1, 1, 2, 400, 3000});
  tracer.record({3000, 0, EventKind::kSendComplete, 7, 1, 0, 0, 1000, 0});
  std::ostringstream os;
  tracer.dump_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // NIC activity -> complete spans; each X span carries a duration.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), 2u);
  // Submit / signal / completion -> instants.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 3u);
  // One process (node 0), two rail tracks -> 1 + 2 metadata records.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 3u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // ts is in microseconds: the 1500 ns emission lands at 1.500 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  // The eager span runs 1500->2500 ns = 1 us.
  EXPECT_NE(json.find("\"dur\":1.000"), std::string::npos);
}

TEST(Tracer, GanttHandlesEmptyTrace) {
  Tracer tracer;
  std::ostringstream os;
  tracer.render_gantt(os);
  EXPECT_NE(os.str().find("no NIC activity"), std::string::npos);
}

// -- engine integration ------------------------------------------------------

class EngineTracing : public ::testing::Test {
 protected:
  EngineTracing() : world_(core::paper_testbed("hetero-split")) {
    world_.engine(0).set_tracer(&tracer_);
  }
  ~EngineTracing() override { world_.engine(0).set_tracer(nullptr); }

  core::World world_;
  Tracer tracer_;
};

TEST_F(EngineTracing, RendezvousLifecycleRecorded) {
  const std::size_t size = 2_MiB;
  const auto tx = test::make_pattern(size, 1);
  std::vector<std::uint8_t> rx(size);
  auto recv = world_.engine(1).irecv(0, 4, rx.data(), size);
  auto send = world_.engine(0).isend(1, 4, tx.data(), size);
  world_.wait(send);
  (void)recv;

  EXPECT_EQ(tracer_.of_kind(EventKind::kSubmit).size(), 1u);
  EXPECT_EQ(tracer_.of_kind(EventKind::kRtsSent).size(), 1u);
  EXPECT_EQ(tracer_.of_kind(EventKind::kChunkPosted).size(), 2u);  // hetero: 2 rails
  EXPECT_EQ(tracer_.of_kind(EventKind::kSendComplete).size(), 1u);

  const auto tl = tracer_.message(0, send->id);
  ASSERT_TRUE(tl.has_value());
  EXPECT_EQ(tl->chunks, 2u);
  EXPECT_EQ(tl->complete, send->complete_time);
  ASSERT_TRUE(tl->total_latency().has_value());
  EXPECT_GT(*tl->total_latency(), 0);

  const auto bytes = tracer_.bytes_per_rail();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0] + bytes[1], size);
}

TEST_F(EngineTracing, EagerOffloadRecorded) {
  world_.set_strategy("multicore-hetero-split");
  world_.engine(0).set_tracer(&tracer_);  // set_strategy does not touch tracers
  const std::size_t size = 16_KiB;
  const auto tx = test::make_pattern(size, 2);
  std::vector<std::uint8_t> rx(size);
  auto recv = world_.engine(1).irecv(0, 5, rx.data(), size);
  world_.engine(0).isend(1, 5, tx.data(), size);
  world_.wait(recv);

  EXPECT_GE(tracer_.of_kind(EventKind::kOffloadSignal).size(), 2u);
  EXPECT_GE(tracer_.of_kind(EventKind::kEagerEmit).size(), 2u);
  // Offloaded emissions run on distinct non-scheduler cores.
  for (const auto& e : tracer_.of_kind(EventKind::kEagerEmit)) {
    EXPECT_NE(e.core, world_.engine(0).config().scheduler_core);
  }
}

TEST_F(EngineTracing, ChromeTraceFromRealTransferIsLoadable) {
  const std::size_t size = 2_MiB;
  const auto tx = test::make_pattern(size, 9);
  std::vector<std::uint8_t> rx(size);
  auto recv = world_.engine(1).irecv(0, 8, rx.data(), size);
  auto send = world_.engine(0).isend(1, 8, tx.data(), size);
  world_.wait(send);
  world_.wait(recv);

  std::ostringstream os;
  tracer_.dump_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json));
  // Every NIC chunk must appear as a complete span.
  const auto chunks = tracer_.of_kind(EventKind::kChunkPosted).size();
  EXPECT_GE(chunks, 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), chunks);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""),
            count_occurrences(json, "\"dur\":"));
}

TEST_F(EngineTracing, DetachStopsRecording) {
  world_.engine(0).set_tracer(nullptr);
  const auto tx = test::make_pattern(256, 3);
  std::vector<std::uint8_t> rx(256);
  auto recv = world_.engine(1).irecv(0, 6, rx.data(), 256);
  world_.engine(0).isend(1, 6, tx.data(), 256);
  world_.wait(recv);
  EXPECT_TRUE(tracer_.empty());
}

}  // namespace
}  // namespace rails::trace
