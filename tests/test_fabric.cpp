#include "fabric/fabric.hpp"

#include <gtest/gtest.h>

#include "fabric/presets.hpp"

namespace rails::fabric {
namespace {

FabricConfig two_node_two_rail() {
  FabricConfig cfg;
  cfg.node_count = 2;
  cfg.rails = {myri10g(), qsnet2()};
  return cfg;
}

Segment eager_seg(NodeId src, NodeId dst, RailId rail, std::size_t len) {
  Segment s;
  s.kind = SegKind::kEager;
  s.src = src;
  s.dst = dst;
  s.rail = rail;
  s.payload.assign(len, 0x42);
  return s;
}

TEST(Fabric, Construction) {
  Fabric fab(two_node_two_rail());
  EXPECT_EQ(fab.node_count(), 2u);
  EXPECT_EQ(fab.rail_count(), 2u);
  EXPECT_EQ(fab.nic(0, 0).model().name(), "myri10g");
  EXPECT_EQ(fab.nic(1, 1).model().name(), "qsnet2");
  EXPECT_EQ(fab.cores(0).count(), 4u);
}

TEST(Fabric, DeliversToDestinationHandler) {
  Fabric fab(two_node_two_rail());
  int delivered = 0;
  Segment got;
  fab.set_rx_handler(1, [&](Segment&& s) {
    ++delivered;
    got = std::move(s);
  });
  fab.nic(0, 0).post(eager_seg(0, 1, 0, 256), 0);
  fab.events().run_all();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(got.payload.size(), 256u);
  EXPECT_EQ(got.src, 0u);
  EXPECT_EQ(got.rail, 0u);
}

TEST(Fabric, DeliveryTimeMatchesModel) {
  Fabric fab(two_node_two_rail());
  SimTime arrival = -1;
  fab.set_rx_handler(1, [&](Segment&&) { arrival = fab.now(); });
  const NetworkModel& m = fab.nic(0, 0).model();
  fab.nic(0, 0).post(eager_seg(0, 1, 0, 4096), 0);
  fab.events().run_all();
  EXPECT_EQ(arrival, m.eager(4096).total);
}

TEST(Fabric, NicBusySerializesPosts) {
  Fabric fab(two_node_two_rail());
  std::vector<SimTime> arrivals;
  fab.set_rx_handler(1, [&](Segment&&) { arrivals.push_back(fab.now()); });
  auto& nic = fab.nic(0, 0);
  const auto t1 = nic.post(eager_seg(0, 1, 0, 4096), 0);
  const auto t2 = nic.post(eager_seg(0, 1, 0, 4096), 0);
  // Second post queues behind the first at the injection port.
  EXPECT_EQ(t2.host_start, t1.nic_end);
  fab.events().run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1], arrivals[0]);
}

TEST(Fabric, RailsAreIndependent) {
  Fabric fab(two_node_two_rail());
  fab.set_rx_handler(1, [](Segment&&) {});
  const auto t0 = fab.nic(0, 0).post(eager_seg(0, 1, 0, 4096), 0);
  const auto t1 = fab.nic(0, 1).post(eager_seg(0, 1, 1, 4096), 0);
  // Both injections start immediately: different ports.
  EXPECT_EQ(t0.host_start, 0);
  EXPECT_EQ(t1.host_start, 0);
}

TEST(Fabric, PreviewDoesNotCommit) {
  Fabric fab(two_node_two_rail());
  auto& nic = fab.nic(0, 0);
  const Segment seg = eager_seg(0, 1, 0, 1024);
  const auto preview = nic.preview(seg, 0);
  EXPECT_EQ(nic.busy_until(), 0);
  EXPECT_TRUE(fab.events().empty());
  fab.set_rx_handler(1, [](Segment&&) {});
  const auto posted = nic.post(eager_seg(0, 1, 0, 1024), 0);
  EXPECT_EQ(preview.deliver_at, posted.deliver_at);
}

TEST(Fabric, StatsCountPayloadAndHeaders) {
  Fabric fab(two_node_two_rail());
  fab.set_rx_handler(1, [](Segment&&) {});
  fab.nic(0, 0).post(eager_seg(0, 1, 0, 100), 0);
  fab.nic(0, 0).post(eager_seg(0, 1, 0, 200), 0);
  fab.events().run_all();
  EXPECT_EQ(fab.nic(0, 0).segments_sent(), 2u);
  EXPECT_EQ(fab.nic(0, 0).payload_bytes_sent(), 300u);
  EXPECT_EQ(fab.nic(0, 0).bytes_sent(), 300u + 2 * Segment::kHeaderBytes);
  EXPECT_EQ(fab.delivered_payload(0), 300u);
  EXPECT_EQ(fab.delivered_payload(1), 0u);
}

TEST(Fabric, MultiNodeRouting) {
  FabricConfig cfg;
  cfg.node_count = 4;
  cfg.rails = {myri10g()};
  Fabric fab(cfg);
  std::vector<int> received(4, 0);
  for (NodeId n = 0; n < 4; ++n) {
    fab.set_rx_handler(n, [&received, n](Segment&&) { ++received[n]; });
  }
  // Node 0 sends one segment to each peer.
  for (NodeId dst = 1; dst < 4; ++dst) {
    fab.nic(0, 0).post(eager_seg(0, dst, 0, 64), fab.now());
  }
  fab.events().run_all();
  EXPECT_EQ(received[0], 0);
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 1);
  EXPECT_EQ(received[3], 1);
}

TEST(FabricDeath, WrongRailAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fabric fab(two_node_two_rail());
  fab.set_rx_handler(1, [](Segment&&) {});
  EXPECT_DEATH(fab.nic(0, 0).post(eager_seg(0, 1, 1, 64), 0), "wrong rail");
}

TEST(FabricDeath, MissingHandlerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fabric fab(two_node_two_rail());
  fab.nic(0, 0).post(eager_seg(0, 1, 0, 64), 0);
  EXPECT_DEATH(fab.events().run_all(), "rx handler");
}

TEST(RxContention, SingleStreamNeverDelayed) {
  // Back-to-back segments from one sender are already spaced by their wire
  // occupancy: the receive port must not add anything.
  Fabric fab(two_node_two_rail());
  std::vector<SimTime> arrivals;
  fab.set_rx_handler(1, [&](Segment&&) { arrivals.push_back(fab.now()); });
  const auto t1 = fab.nic(0, 0).post(eager_seg(0, 1, 0, 8192), 0);
  const auto t2 = fab.nic(0, 0).post(eager_seg(0, 1, 0, 8192), 0);
  fab.events().run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], t1.deliver_at);
  EXPECT_EQ(arrivals[1], t2.deliver_at);
}

TEST(RxContention, ConvergingFlowsSerialise) {
  // Two senders hitting the same receive port at the same instant: the
  // second delivery waits out the first segment's drain.
  FabricConfig cfg;
  cfg.node_count = 3;
  cfg.rails = {myri10g()};
  Fabric fab(cfg);
  std::vector<SimTime> arrivals;
  fab.set_rx_handler(0, [&](Segment&&) { arrivals.push_back(fab.now()); });
  const std::size_t size = 256u * 1024u;
  fab.nic(1, 0).post(eager_seg(1, 0, 0, size), 0);
  fab.nic(2, 0).post(eager_seg(2, 0, 0, size), 0);
  fab.events().run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  const SimDuration drain = wire_time(size, myri10g().dma_bw_mbps);
  EXPECT_EQ(arrivals[1] - arrivals[0], drain);
}

TEST(RxContention, DifferentRailsDoNotContend) {
  FabricConfig cfg;
  cfg.node_count = 3;
  cfg.rails = {myri10g(), myri10g()};
  Fabric fab(cfg);
  std::vector<SimTime> arrivals;
  fab.set_rx_handler(0, [&](Segment&&) { arrivals.push_back(fab.now()); });
  fab.nic(1, 0).post(eager_seg(1, 0, 0, 256u * 1024u), 0);
  fab.nic(2, 1).post(eager_seg(2, 0, 1, 256u * 1024u), 0);
  fab.events().run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);  // separate ports, identical timing
}

TEST(RxContention, TinyControlAfterBigSegmentNotDelayed) {
  // Regression: a big segment's drain ends at its arrival; a later tiny
  // segment must not inherit a phantom busy window.
  Fabric fab(two_node_two_rail());
  std::vector<SimTime> arrivals;
  fab.set_rx_handler(1, [&](Segment&&) { arrivals.push_back(fab.now()); });
  fab.nic(0, 0).post(eager_seg(0, 1, 0, 64u * 1024u), 0);
  fab.events().run_all();
  const auto tiny = fab.nic(0, 0).post(eager_seg(0, 1, 0, 8), fab.now());
  fab.events().run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1], tiny.deliver_at);
}

TEST(SimCores, OccupyAndIdle) {
  SimCores cores(MachineTopology::opteron_2x2());
  EXPECT_EQ(cores.idle_count(0), 4u);
  const SimTime free_at = cores.occupy(1, 100, 50);
  EXPECT_EQ(free_at, 150);
  EXPECT_FALSE(cores.idle(1, 120));
  EXPECT_TRUE(cores.idle(1, 150));
  EXPECT_EQ(cores.idle_count(120), 3u);
  EXPECT_EQ(cores.idle_count(120, CoreId{0}), 2u);
}

TEST(SimCores, OccupyQueuesBehindBusy) {
  SimCores cores;
  cores.occupy(0, 0, 100);
  const SimTime free_at = cores.occupy(0, 50, 10);  // starts at 100, not 50
  EXPECT_EQ(free_at, 110);
}

TEST(SimCores, PickOffloadPrefersSameSocketIdle) {
  SimCores cores(MachineTopology::opteron_2x2());
  // All idle: core 1 (same socket as 0) wins.
  EXPECT_EQ(cores.pick_offload_core(0, 0, std::nullopt), 1u);
  // Core 1 busy: earliest-idle remote core wins.
  cores.occupy(1, 0, 1000);
  EXPECT_EQ(cores.pick_offload_core(500, 0, std::nullopt), 2u);
}

TEST(SimCores, Reset) {
  SimCores cores;
  cores.occupy(0, 0, 100);
  cores.reset();
  EXPECT_TRUE(cores.idle(0, 0));
}

}  // namespace
}  // namespace rails::fabric
