// Causal span reconstruction and critical-path attribution (trace/spans).
//
// The attribution invariant under test is structural: the six layers are
// deltas of a monotone cursor, so for every complete message they must each
// be non-negative and sum EXACTLY to the end-to-end latency — no epsilon.
// The eviction tests pin the other contract: a bounded tracer that lost a
// message's head yields an *incomplete* span, never a fabricated one.
#include <algorithm>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "trace/spans.hpp"
#include "trace/tracer.hpp"

namespace rails {
namespace {

/// One rendezvous transfer on the hetero testbed with a tracer attached to
/// the sender; waits on BOTH sides so the FIN lands and the span completes.
trace::SpanAnalysis traced_transfer(const char* strategy, std::size_t size) {
  core::World world(core::paper_testbed(strategy));
  trace::Tracer tracer;
  world.engine(0).set_tracer(&tracer);
  std::vector<std::uint8_t> tx(size, 0x42);
  std::vector<std::uint8_t> rx(size);
  auto recv = world.engine(1).irecv(0, 7, rx.data(), size);
  auto send = world.engine(0).isend(1, 7, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  world.engine(0).set_tracer(nullptr);
  return trace::analyze_spans(tracer);
}

TEST(Spans, AttributionTilesTheMessageLifetime) {
  const auto analysis = traced_transfer("hetero-split", 4 << 20);
  ASSERT_EQ(analysis.complete_count, 1u);
  const trace::MessageSpans& m = analysis.messages.front();
  ASSERT_TRUE(m.complete);
  EXPECT_TRUE(m.rendezvous);
  EXPECT_GE(m.chunks.size(), 2u);  // hetero-split across both rails

  // Exact tiling: layers sum to the total, which is finish - submit.
  EXPECT_EQ(m.path.sum(), m.path.total);
  EXPECT_EQ(m.path.total, m.finish - m.submit);
  EXPECT_GE(m.path.queueing, 0);
  EXPECT_GE(m.path.handshake, 0);
  EXPECT_GE(m.path.stagger, 0);
  EXPECT_GE(m.path.offload_sync, 0);
  EXPECT_GE(m.path.wire, 0);
  EXPECT_GE(m.path.completion_sync, 0);
  // A rendezvous transfer spends real time in handshake and on the wire.
  EXPECT_GT(m.path.handshake, 0);
  EXPECT_GT(m.path.wire, 0);
}

TEST(Spans, EqualFinishSkewIsMeasuredAndSmall) {
  const auto analysis = traced_transfer("hetero-split", 4 << 20);
  const trace::MessageSpans& m = analysis.messages.front();
  ASSERT_TRUE(m.finish_skew.has_value());
  // The split solver targets equal finishes; on pristine profiles the skew
  // must be a small fraction of the transfer (< 10% is generous).
  EXPECT_LT(*m.finish_skew, m.path.total / 10);
  EXPECT_EQ(analysis.skew_samples.size(), 1u);
}

TEST(Spans, OffloadedEagerMessageMeasuresTo) {
  // A lone medium eager message under the multicore strategy takes the
  // Fig. 7 path: one offload signal per chunk, TO = signal_cost when the
  // remote core was idle (usec(3) in the testbed config).
  core::World world(core::paper_testbed("multicore-hetero-split"));
  trace::Tracer tracer;
  world.engine(0).set_tracer(&tracer);
  std::vector<std::uint8_t> tx(24 << 10, 0x24);
  std::vector<std::uint8_t> rx(tx.size());
  auto recv = world.engine(1).irecv(0, 9, rx.data(), rx.size());
  auto send = world.engine(0).isend(1, 9, tx.data(), tx.size());
  world.wait(recv);
  world.wait(send);
  world.engine(0).set_tracer(nullptr);

  const auto analysis = trace::analyze_spans(tracer);
  ASSERT_EQ(analysis.complete_count, 1u);
  const trace::MessageSpans& m = analysis.messages.front();
  EXPECT_GT(m.offload_signals, 0u);
  ASSERT_FALSE(analysis.to_samples.empty());
  for (const SimDuration to : analysis.to_samples) {
    EXPECT_GE(to, usec(3.0));  // at least the idle-core signalling cost
    EXPECT_LE(to, usec(6.0));  // at most the preemption cost
  }
  // The critical chunk's TO shows up as the offload_sync layer.
  EXPECT_GT(m.path.offload_sync, 0);
  EXPECT_EQ(m.path.sum(), m.path.total);
}

// -- eviction / incompleteness ----------------------------------------------

trace::TraceEvent ev(trace::EventKind kind, SimTime t, std::uint64_t msg,
                     std::size_t bytes = 0, SimTime nic_end = 0) {
  trace::TraceEvent e;
  e.kind = kind;
  e.time = t;
  e.node = 0;
  e.msg_id = msg;
  e.bytes = bytes;
  e.nic_end = nic_end;
  return e;
}

TEST(Spans, EvictedHeadIsIncompleteNeverFabricated) {
  // The window starts mid-message: chunk + completion but no submit, as a
  // bounded tracer would retain after wrapping.
  std::vector<trace::TraceEvent> window = {
      ev(trace::EventKind::kChunkPosted, usec(10), 42, 1 << 20, usec(500)),
      ev(trace::EventKind::kSendComplete, usec(510), 42),
  };
  const auto analysis = trace::analyze_spans(window);
  ASSERT_EQ(analysis.messages.size(), 1u);
  const trace::MessageSpans& m = analysis.messages.front();
  EXPECT_FALSE(m.complete);
  EXPECT_TRUE(m.head_evicted);
  EXPECT_EQ(analysis.complete_count, 0u);
  EXPECT_EQ(analysis.incomplete_count, 1u);
  // No attribution and no skew may be synthesised from a partial window.
  EXPECT_EQ(analysis.totals.total, 0);
  EXPECT_FALSE(m.finish_skew.has_value());
  EXPECT_TRUE(analysis.skew_samples.empty());
}

TEST(Spans, BoundedTracerEvictionReportsIncomplete) {
  // End-to-end variant: a tracer too small for the whole run loses the first
  // messages' submits; the analyzer must degrade to "incomplete", and the
  // retained-window messages must still tile exactly.
  core::World world(core::paper_testbed("hetero-split"));
  trace::Tracer tracer(16);  // far smaller than the event stream
  world.engine(0).set_tracer(&tracer);
  std::vector<std::uint8_t> tx(1 << 20, 0x66);
  std::vector<std::uint8_t> rx(tx.size());
  for (Tag tag = 0; tag < 6; ++tag) {
    auto recv = world.engine(1).irecv(0, tag, rx.data(), rx.size());
    auto send = world.engine(0).isend(1, tag, tx.data(), tx.size());
    world.wait(recv);
    world.wait(send);
  }
  world.engine(0).set_tracer(nullptr);
  ASSERT_GT(tracer.dropped(), 0u);

  const auto analysis = trace::analyze_spans(tracer);
  EXPECT_GT(analysis.incomplete_count, 0u);
  for (const trace::MessageSpans& m : analysis.messages) {
    if (!m.complete) continue;
    EXPECT_EQ(m.path.sum(), m.path.total);
    EXPECT_EQ(m.path.total, m.finish - m.submit);
  }
}

TEST(Spans, InFlightMessageIsIncompleteWithoutHeadEviction) {
  std::vector<trace::TraceEvent> window = {
      ev(trace::EventKind::kSubmit, usec(1), 7, 4096),
      ev(trace::EventKind::kEagerEmit, usec(2), 7, 4096, usec(40)),
  };
  const auto analysis = trace::analyze_spans(window);
  ASSERT_EQ(analysis.messages.size(), 1u);
  EXPECT_FALSE(analysis.messages.front().complete);
  EXPECT_FALSE(analysis.messages.front().head_evicted);  // still in flight
}

TEST(Spans, ReportAndChromeExportAreWellFormed) {
  const auto analysis = traced_transfer("hetero-split", 4 << 20);

  std::ostringstream report;
  analysis.dump(report);
  EXPECT_NE(report.str().find("critical-path"), std::string::npos);
  EXPECT_NE(report.str().find("finish-skew"), std::string::npos);
  EXPECT_NE(report.str().find("measured TO"), std::string::npos);

  std::ostringstream chrome;
  {
    trace::ChromeTraceSink sink(chrome);
    trace::emit_chrome_spans(sink, analysis);
    sink.close();
  }
  const std::string json = chrome.str();
  // Balanced braces/brackets make a cheap structural JSON check that does
  // not depend on a parser being available in the test image.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"cp\""), std::string::npos);      // span category
  EXPECT_NE(json.find("\"cpflow\""), std::string::npos);  // flow arrows
}

}  // namespace
}  // namespace rails
