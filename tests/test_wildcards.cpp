// Receive-side wildcards: kAnySource / kAnyTag matching semantics.
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/presets.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

core::WorldConfig three_nodes() {
  core::WorldConfig cfg = paper_testbed("hetero-split");
  cfg.fabric.node_count = 3;
  return cfg;
}

TEST(Wildcards, AnyTagMatchesFirstArrival) {
  core::World world(three_nodes());
  const auto tx = test::make_pattern(512, 1);
  std::vector<std::uint8_t> rx(512);
  auto recv = world.engine(1).irecv(0, kAnyTag, rx.data(), rx.size());
  world.engine(0).isend(1, /*tag=*/777, tx.data(), tx.size());
  world.wait(recv);
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(recv->tag, 777u);  // bound to the actual tag
  EXPECT_EQ(recv->src, 0u);
}

TEST(Wildcards, AnySourceMatchesEitherSender) {
  core::World world(three_nodes());
  const auto tx = test::make_pattern(256, 2);
  std::vector<std::uint8_t> rx(256);
  auto recv = world.engine(1).irecv(kAnySource, 5, rx.data(), rx.size());
  world.engine(2).isend(1, 5, tx.data(), tx.size());
  world.wait(recv);
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(recv->src, 2u);
}

TEST(Wildcards, FullyWildRecvTakesUnexpected) {
  core::World world(three_nodes());
  const auto tx = test::make_pattern(1024, 3);
  world.engine(2).isend(1, 99, tx.data(), tx.size());
  world.fabric().events().run_all();  // parks in the unexpected store
  std::vector<std::uint8_t> rx(1024);
  auto recv = world.engine(1).irecv(kAnySource, kAnyTag, rx.data(), rx.size());
  EXPECT_TRUE(recv->done());
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(recv->src, 2u);
  EXPECT_EQ(recv->tag, 99u);
}

TEST(Wildcards, WildcardRendezvousFromUnexpectedRts) {
  core::World world(three_nodes());
  const auto tx = test::make_pattern(1_MiB, 4);
  auto send = world.engine(2).isend(1, 50, tx.data(), tx.size());
  world.fabric().events().run_all();  // RTS parked
  std::vector<std::uint8_t> rx(tx.size());
  auto recv = world.engine(1).irecv(kAnySource, kAnyTag, rx.data(), rx.size());
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(recv->src, 2u);
  EXPECT_EQ(recv->tag, 50u);
}

TEST(Wildcards, PostedWildcardCatchesRendezvousRts) {
  core::World world(three_nodes());
  const auto tx = test::make_pattern(2_MiB, 5);
  std::vector<std::uint8_t> rx(tx.size());
  auto recv = world.engine(1).irecv(kAnySource, kAnyTag, rx.data(), rx.size());
  auto send = world.engine(0).isend(1, 8, tx.data(), tx.size());
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(recv->src, 0u);
}

TEST(Wildcards, ExactRecvStillMatchesOnlyItsSource) {
  core::World world(three_nodes());
  const auto tx0 = test::make_pattern(128, 6);
  const auto tx2 = test::make_pattern(128, 7);
  std::vector<std::uint8_t> rx_exact(128), rx_wild(128);
  // Exact recv for node 2 posted first; wildcard second. A message from
  // node 0 must skip the exact recv and land in the wildcard.
  auto exact = world.engine(1).irecv(2, 1, rx_exact.data(), 128);
  auto wild = world.engine(1).irecv(kAnySource, 1, rx_wild.data(), 128);
  world.engine(0).isend(1, 1, tx0.data(), 128);
  world.wait(wild);
  EXPECT_EQ(rx_wild, tx0);
  EXPECT_FALSE(exact->done());
  world.engine(2).isend(1, 1, tx2.data(), 128);
  world.wait(exact);
  EXPECT_EQ(rx_exact, tx2);
}

TEST(Wildcards, FifoAcrossWildcardAndExact) {
  core::World world(three_nodes());
  const auto tx_a = test::make_pattern(64, 8);
  const auto tx_b = test::make_pattern(64, 9);
  std::vector<std::uint8_t> rx1(64), rx2(64);
  // Wildcard posted before exact: first matching message goes to it.
  auto wild = world.engine(1).irecv(kAnySource, kAnyTag, rx1.data(), 64);
  auto exact = world.engine(1).irecv(0, 3, rx2.data(), 64);
  world.engine(0).isend(1, 3, tx_a.data(), 64);
  world.engine(0).isend(1, 3, tx_b.data(), 64);
  world.wait(wild);
  world.wait(exact);
  EXPECT_EQ(rx1, tx_a);
  EXPECT_EQ(rx2, tx_b);
}

}  // namespace
}  // namespace rails::core
