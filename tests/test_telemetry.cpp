#include "telemetry/metrics.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "telemetry/engine_metrics.hpp"
#include "telemetry/prediction.hpp"
#include "test_util.hpp"

// -- allocation counting -----------------------------------------------------
//
// The whole binary routes operator new through this counter so the
// zero-cost-when-detached contract can be asserted directly: a detached
// EngineMetrics hook must not allocate.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rails::telemetry {
namespace {

// -- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exact zeros; bucket i >= 1 spans [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), 64u);

  EXPECT_EQ(Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_lower(2), 2u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_lower(11), 1024u);
  EXPECT_EQ(Histogram::bucket_upper(11), 2047u);
  EXPECT_EQ(Histogram::bucket_upper(64), UINT64_MAX);

  // Every power of two starts a fresh bucket; its predecessor ends one.
  for (unsigned k = 1; k < 63; ++k) {
    const std::uint64_t pow2 = std::uint64_t{1} << k;
    EXPECT_EQ(Histogram::bucket_index(pow2), k + 1) << "v=2^" << k;
    EXPECT_EQ(Histogram::bucket_index(pow2 - 1), k) << "v=2^" << k << "-1";
    EXPECT_EQ(Histogram::bucket_lower(k + 1), pow2);
  }
}

TEST(Histogram, ObserveTracksStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(95.0), 0u);
  h.observe(0);
  h.observe(5);
  h.observe(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 105u);
  EXPECT_DOUBLE_EQ(h.mean(), 35.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(0), 1u);                            // the zero
  EXPECT_EQ(h.bucket(Histogram::bucket_index(5)), 1u);   // [4,8)
  EXPECT_EQ(h.bucket(Histogram::bucket_index(100)), 1u); // [64,128)
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  // Uniform 1..100: the 50th percentile lands inside [32,64) and linear
  // interpolation puts it at ~51 (true value 50.5) instead of the bucket's
  // upper bound 63.
  EXPECT_EQ(h.percentile(50.0), 51u);
  // p95 lands in [64,128); the bucket is clipped to the observed max (100),
  // interpolating to ~96 (true value 95) instead of reporting 100.
  EXPECT_EQ(h.percentile(95.0), 96u);
  EXPECT_EQ(h.percentile(100.0), 100u);
}

TEST(Histogram, PercentilePinnedAtPowerOfTwoBoundaries) {
  // A population concentrated on an exact power of two sits on a log2
  // bucket boundary — the worst case for bucket-upper-bound reporting,
  // which would have said 2047 for 1024. Clipping the bucket to the
  // observed [min, max] pins the exact value at every percentile.
  for (const std::uint64_t v : {1024ull, 4096ull, 1ull << 20}) {
    Histogram h;
    for (int i = 0; i < 1000; ++i) h.observe(v);
    EXPECT_EQ(h.percentile(50.0), v) << "p50 of constant " << v;
    EXPECT_EQ(h.percentile(99.0), v) << "p99 of constant " << v;
    EXPECT_EQ(h.percentile(100.0), v) << "p100 of constant " << v;
  }
  // Two adjacent powers of two in distinct buckets: every percentile must
  // stay within the observed [min, max] (the old upper-bound reporting
  // said 4095 for p99 here), and the top tail is pinned exactly because
  // the upper bucket clips to the max.
  Histogram two;
  for (int i = 0; i < 500; ++i) two.observe(1024);
  for (int i = 0; i < 500; ++i) two.observe(2048);
  EXPECT_EQ(two.percentile(99.0), 2048u);
  for (const double p : {10.0, 50.0, 75.0, 90.0}) {
    EXPECT_GE(two.percentile(p), 1024u) << "p" << p;
    EXPECT_LE(two.percentile(p), 2048u) << "p" << p;
  }
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.observe(10);
  a.observe(20);
  b.observe(1);
  b.observe(4000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 4031u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 4000u);
  // Merging an empty histogram must not disturb min/max.
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 1u);
}

// -- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter* c = reg.counter("engine.sends");
  EXPECT_EQ(reg.counter("engine.sends"), c);  // find-or-create, same storage
  c->inc(3);
  EXPECT_EQ(reg.find_counter("engine.sends")->value(), 3u);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
  EXPECT_EQ(reg.counter_count(), 1u);
  reg.gauge("g")->update_max(7);
  reg.gauge("g")->update_max(4);  // high-water: lower value is ignored
  EXPECT_EQ(reg.find_gauge("g")->value(), 7);
}

TEST(MetricsRegistry, CrossThreadMerge) {
  // The RunningStats::merge idiom at registry scope: one registry per
  // worker, folded into a main registry after the join.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::unique_ptr<MetricsRegistry>> locals;
  for (int t = 0; t < kThreads; ++t) locals.push_back(std::make_unique<MetricsRegistry>());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&local = *locals[t], t] {
      Counter* ops = local.counter("worker.ops");
      Histogram* lat = local.histogram("worker.latency_ns");
      for (int i = 0; i < kPerThread; ++i) {
        ops->inc();
        lat->observe(static_cast<std::uint64_t>(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& th : threads) th.join();

  MetricsRegistry main_reg;
  main_reg.counter("worker.ops")->inc(5);  // pre-existing value survives merge
  for (const auto& local : locals) main_reg.merge(*local);

  EXPECT_EQ(main_reg.find_counter("worker.ops")->value(),
            static_cast<std::uint64_t>(kThreads * kPerThread + 5));
  const Histogram* lat = main_reg.find_histogram("worker.latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(lat->min(), 1u);
  EXPECT_EQ(lat->max(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistry, ConcurrentObserversOnSharedHistogram) {
  // Handles may also be shared directly across threads: the buckets are
  // per-slot atomics. (This is the TSan-exercised path.)
  MetricsRegistry reg;
  Histogram* h = reg.histogram("shared");
  Counter* c = reg.counter("shared.ops");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, c] {
      for (int i = 1; i <= kPerThread; ++i) {
        h->observe(static_cast<std::uint64_t>(i));
        c->inc();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistry, SnapshotWhileObserve) {
  // The health sampler snapshots (dump_json / per-name reads) while engines
  // keep publishing. Writers hammer shared handles while the main thread
  // renders snapshots; totals must still be exact after the join. (This is
  // the TSan-exercised path for the read side.)
  MetricsRegistry reg;
  Counter* ops = reg.counter("storm.ops");
  Histogram* lat = reg.histogram("storm.latency_ns");
  Gauge* depth = reg.gauge("storm.depth");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([ops, lat, depth, t] {
      for (int i = 1; i <= kPerThread; ++i) {
        ops->inc();
        lat->observe(static_cast<std::uint64_t>(i));
        depth->set(static_cast<std::int64_t>(t * kPerThread + i));
      }
    });
  }
  std::uint64_t snapshots = 0;
  while (!done.load(std::memory_order_relaxed)) {
    std::ostringstream json;
    reg.dump_json(json);
    EXPECT_NE(json.str().find("storm.ops"), std::string::npos);
    std::ostringstream text;
    reg.dump_text(text);
    // Mid-flight reads through the lookup API must also be safe.
    EXPECT_LE(reg.find_counter("storm.ops")->value(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    if (++snapshots >= 64) done.store(true, std::memory_order_relaxed);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ops->value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(lat->count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GE(snapshots, 64u);
}

TEST(MetricsRegistry, DumpFormats) {
  MetricsRegistry reg;
  reg.counter("a.count")->inc(2);
  reg.gauge("b.depth")->set(9);
  reg.histogram("c.lat")->observe(42);
  std::ostringstream text;
  reg.dump_text(text);
  EXPECT_NE(text.str().find("a.count = 2"), std::string::npos);
  EXPECT_NE(text.str().find("b.depth = 9"), std::string::npos);
  EXPECT_NE(text.str().find("c.lat: count 1"), std::string::npos);

  std::ostringstream json;
  reg.dump_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"counters\":{\"a.count\":2}"), std::string::npos);
  EXPECT_NE(j.find("\"gauges\":{\"b.depth\":9}"), std::string::npos);
  EXPECT_NE(j.find("\"c.lat\":{\"count\":1"), std::string::npos);
  EXPECT_NE(j.find("\"buckets\":[[32,1]]"), std::string::npos);  // 42 in [32,64)
}

// -- PredictionTracker -------------------------------------------------------

TEST(PredictionTracker, TwoRailSyntheticResiduals) {
  // Rail 0: perfect predictions. Rail 1: consistently 10% optimistic
  // (predicted 10% below actual).
  PredictionTracker tracker(2);
  for (int i = 1; i <= 50; ++i) {
    const SimDuration actual = 1000 * i;
    tracker.record(0, actual, actual);
    tracker.record(1, (actual * 9) / 10, actual);
  }
  EXPECT_EQ(tracker.samples(0), 50u);
  EXPECT_EQ(tracker.samples(1), 50u);
  EXPECT_EQ(tracker.total_samples(), 100u);

  const auto r0 = tracker.accuracy(0);
  EXPECT_DOUBLE_EQ(r0.mean_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(r0.p95_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(r0.mean_bias, 0.0);

  const auto r1 = tracker.accuracy(1);
  EXPECT_NEAR(r1.mean_rel_error, 0.1, 1e-3);
  EXPECT_NEAR(r1.p95_rel_error, 0.1, 1e-3);
  EXPECT_NEAR(r1.max_rel_error, 0.1, 1e-3);
  EXPECT_GT(r1.mean_bias, 0.0);  // actual > predicted: prediction optimistic
}

TEST(PredictionTracker, MergeAndBounds) {
  PredictionTracker a(2), b(2);
  a.record(0, 900, 1000);
  b.record(0, 1100, 1000);
  b.record(1, 500, 500);
  b.record(5, 1, 1);  // out of range: ignored
  a.merge(b);
  EXPECT_EQ(a.samples(0), 2u);
  EXPECT_EQ(a.samples(1), 1u);
  EXPECT_EQ(a.total_samples(), 3u);
  EXPECT_NEAR(a.accuracy(0).mean_rel_error, 0.1, 1e-9);
  // Symmetric +/-10% misses cancel in the signed bias.
  EXPECT_NEAR(a.accuracy(0).mean_bias, 0.0, 1e-9);

  std::ostringstream os;
  a.dump(os);
  EXPECT_NE(os.str().find("rail"), std::string::npos);
}

TEST(PredictionTracker, ReservoirBoundsMemoryWithExactPercentilesBelowCap) {
  PredictionTracker tracker(1, /*reservoir_cap=*/64, /*recent_window=*/16);
  EXPECT_EQ(tracker.reservoir_capacity(), 64u);
  EXPECT_EQ(tracker.recent_window(), 16u);

  // Below the cap every sample is stored, so the percentile is exact.
  for (int i = 1; i <= 50; ++i) {
    tracker.record(0, 1000 - 10 * i, 1000);  // rel error i%
  }
  EXPECT_EQ(tracker.reservoir_size(0), 50u);
  EXPECT_NEAR(tracker.accuracy(0).p95_rel_error, 0.48, 0.015);

  // Past the cap the store stays bounded while the lifetime count grows.
  for (int i = 0; i < 10'000; ++i) tracker.record(0, 900, 1000);
  EXPECT_EQ(tracker.reservoir_size(0), 64u);
  EXPECT_EQ(tracker.samples(0), 10'050u);
  // The reservoir is dominated by the 10% regime by now.
  EXPECT_NEAR(tracker.accuracy(0).p95_rel_error, 0.1, 0.4);
}

TEST(PredictionTracker, RecentAccuracySeesARegimeChange) {
  PredictionTracker tracker(1, 4096, /*recent_window=*/32);
  // A long perfect history...
  for (int i = 0; i < 500; ++i) tracker.record(0, 1000, 1000);
  // ...then the rail degrades: the last window is 50% optimistic.
  for (int i = 0; i < 32; ++i) tracker.record(0, 500, 1000);

  const auto lifetime = tracker.accuracy(0);
  const auto recent = tracker.recent_accuracy(0);
  EXPECT_EQ(recent.samples, 32u);
  EXPECT_NEAR(recent.mean_rel_error, 0.5, 1e-9);
  EXPECT_NEAR(recent.mean_bias, 0.5, 1e-9);
  EXPECT_NEAR(recent.p95_rel_error, 0.5, 1e-9);
  // The lifetime mean barely moved: this is why the drift detector reads
  // the recent view, not the lifetime stats.
  EXPECT_LT(lifetime.mean_rel_error, 0.05);
  EXPECT_GT(recent.mean_rel_error, 10 * lifetime.mean_rel_error);
}

TEST(PredictionTracker, MergeReplaysRecentWindowChronologically) {
  PredictionTracker a(1, 64, /*recent_window=*/8);
  PredictionTracker b(1, 64, /*recent_window=*/8);
  for (int i = 0; i < 20; ++i) b.record(0, 1000, 1000);  // wraps b's ring
  for (int i = 0; i < 8; ++i) b.record(0, 750, 1000);    // newest regime: 25%
  a.merge(b);
  // The merged window must end with b's newest residuals.
  EXPECT_NEAR(a.recent_accuracy(0).mean_rel_error, 0.25, 1e-9);
}

// -- EngineMetrics sink ------------------------------------------------------

TEST(EngineMetrics, DetachedHooksDoNotAllocate) {
  EngineMetrics sink;
  ASSERT_FALSE(sink.attached());
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    sink.on_submit(i % 2 == 0);
    sink.on_recv_posted();
    sink.on_progress();
    sink.on_plan_eager();
    sink.on_plan_rendezvous();
    sink.on_eager_emit(0, 4096, true);
    sink.on_chunk_posted(1, 65536);
    sink.on_rdv_complete();
    sink.on_send_complete(1234);
    sink.on_queueing(56);
    sink.on_recv_complete(789);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "detached telemetry hooks must be allocation-free";
}

TEST(EngineMetrics, AttachedHooksHitNamedMetrics) {
  MetricsRegistry reg;
  EngineMetrics sink;
  sink.attach(&reg, 2);
  sink.set_strategy_name("hetero-split");
  ASSERT_TRUE(sink.attached());

  sink.on_submit(false);
  sink.on_submit(true);
  sink.on_eager_emit(0, 512, false);
  sink.on_eager_emit(1, 512, true);
  sink.on_chunk_posted(0, 4096);
  sink.on_plan_eager();
  sink.on_plan_rendezvous();
  sink.on_send_complete(1000);

  EXPECT_EQ(reg.find_counter("engine.sends")->value(), 2u);
  EXPECT_EQ(reg.find_counter("engine.eager_msgs")->value(), 1u);
  EXPECT_EQ(reg.find_counter("engine.rdv_msgs")->value(), 1u);
  EXPECT_EQ(reg.find_counter("engine.eager_segments")->value(), 2u);
  EXPECT_EQ(reg.find_counter("engine.offload_signals")->value(), 1u);
  EXPECT_EQ(reg.find_counter("engine.rdv_chunks")->value(), 1u);
  EXPECT_EQ(reg.find_counter("engine.rail0.payload_bytes")->value(), 512u + 4096u);
  EXPECT_EQ(reg.find_counter("engine.rail1.payload_bytes")->value(), 512u);
  EXPECT_EQ(reg.find_counter("strategy.hetero-split.plan_eager")->value(), 1u);
  EXPECT_EQ(reg.find_counter("strategy.hetero-split.plan_rendezvous")->value(), 1u);
  EXPECT_EQ(reg.find_histogram("engine.send_latency_ns")->count(), 1u);

  // After attach, the hooks themselves are allocation-free too: every
  // handle was resolved up front.
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sink.on_submit(false);
  sink.on_eager_emit(0, 64, false);
  sink.on_send_complete(10);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);

  sink.attach(nullptr, 0);
  EXPECT_FALSE(sink.attached());
}

// -- engine integration ------------------------------------------------------

TEST(EngineIntegration, MetricsAndPredictionsFromRealTraffic) {
  core::World world(core::paper_testbed("multicore-hetero-split"));
  const std::size_t rail_count = world.fabric().rail_count();
  MetricsRegistry reg;
  PredictionTracker predictions(rail_count);
  world.engine(0).set_metrics(&reg);
  world.engine(0).set_prediction_tracker(&predictions);

  // Eager burst + one rendezvous transfer.
  const std::size_t small_size = 2_KiB;
  const std::size_t big_size = 2_MiB;
  const auto small_tx = test::make_pattern(small_size, 1);
  const auto big_tx = test::make_pattern(big_size, 2);
  std::vector<std::vector<std::uint8_t>> rx_small(4);
  std::vector<core::RecvHandle> recvs;
  for (int i = 0; i < 4; ++i) {
    rx_small[i].resize(small_size);
    recvs.push_back(world.engine(1).irecv(0, 10 + i, rx_small[i].data(), small_size));
  }
  std::vector<std::uint8_t> rx_big(big_size);
  recvs.push_back(world.engine(1).irecv(0, 50, rx_big.data(), big_size));
  std::vector<core::SendHandle> sends;
  for (int i = 0; i < 4; ++i) {
    sends.push_back(world.engine(0).isend(1, 10 + i, small_tx.data(), small_size));
  }
  sends.push_back(world.engine(0).isend(1, 50, big_tx.data(), big_size));
  for (auto& r : recvs) world.wait(r);
  for (auto& s : sends) world.wait(s);

  EXPECT_EQ(reg.find_counter("engine.sends")->value(), 5u);
  EXPECT_EQ(reg.find_counter("engine.eager_msgs")->value(), 4u);
  EXPECT_EQ(reg.find_counter("engine.rdv_msgs")->value(), 1u);
  EXPECT_EQ(reg.find_counter("engine.rdv_roundtrips")->value(), 1u);
  EXPECT_GE(reg.find_counter("engine.rdv_chunks")->value(), 2u);
  const Histogram* latency = reg.find_histogram("engine.send_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 5u);
  EXPECT_GT(latency->max(), 0u);
  // Split strategies spread bytes across rails; every rail counter exists.
  std::uint64_t rail_bytes = 0;
  for (std::size_t r = 0; r < rail_count; ++r) {
    const Counter* c =
        reg.find_counter("engine.rail" + std::to_string(r) + ".payload_bytes");
    ASSERT_NE(c, nullptr);
    rail_bytes += c->value();
  }
  EXPECT_GT(rail_bytes, big_size);  // payload plus eager framing

  // The estimator's per-chunk completion predictions were checked against
  // what the fabric actually delivered.
  EXPECT_GT(predictions.total_samples(), 0u);
  for (std::size_t r = 0; r < rail_count; ++r) {
    const auto acc = predictions.accuracy(r);
    if (acc.samples == 0) continue;
    // On an uncontended two-node run the linear model should be close;
    // generous bound so the test stays robust to profile tweaks.
    EXPECT_LT(acc.mean_rel_error, 0.5) << "rail " << r;
  }

  world.engine(0).set_metrics(nullptr);
  world.engine(0).set_prediction_tracker(nullptr);

  // Detached again: traffic leaves the registry untouched.
  const std::uint64_t sends_before = reg.find_counter("engine.sends")->value();
  std::vector<std::uint8_t> rx2(small_size);
  auto r2 = world.engine(1).irecv(0, 99, rx2.data(), small_size);
  world.engine(0).isend(1, 99, small_tx.data(), small_size);
  world.wait(r2);
  EXPECT_EQ(reg.find_counter("engine.sends")->value(), sends_before);
}

}  // namespace
}  // namespace rails::telemetry
