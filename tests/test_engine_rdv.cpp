#include <gtest/gtest.h>

#include "core/world.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

class RdvEngineTest : public ::testing::TestWithParam<const char*> {
 protected:
  RdvEngineTest() : world_(paper_testbed(GetParam())) {}
  core::World world_;
};

TEST_P(RdvEngineTest, LargeMessageIntegrity) {
  const std::size_t size = 2_MiB;
  const auto tx = test::make_pattern(size, 99);
  std::vector<std::uint8_t> rx(size, 0);
  auto recv = world_.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world_.engine(0).isend(1, 1, tx.data(), size);
  world_.wait(recv);
  world_.wait(send);
  EXPECT_TRUE(send->rendezvous);
  EXPECT_EQ(rx, tx);
}

TEST_P(RdvEngineTest, OddSizesIntegrity) {
  for (std::size_t size : {65537ul, 100001ul, 1048577ul}) {
    const auto tx = test::make_pattern(size, size);
    std::vector<std::uint8_t> rx(size, 0);
    auto recv = world_.engine(1).irecv(0, 2, rx.data(), size);
    auto send = world_.engine(0).isend(1, 2, tx.data(), size);
    world_.wait(recv);
    world_.wait(send);
    EXPECT_EQ(rx, tx) << "size " << size;
  }
}

TEST_P(RdvEngineTest, UnexpectedRtsWaitsForRecv) {
  const std::size_t size = 1_MiB;
  const auto tx = test::make_pattern(size, 5);
  std::vector<std::uint8_t> rx(size, 0);
  auto send = world_.engine(0).isend(1, 3, tx.data(), size);
  world_.fabric().events().run_all();  // RTS arrives, no recv posted
  EXPECT_FALSE(send->done());
  auto recv = world_.engine(1).irecv(0, 3, rx.data(), size);
  world_.wait(recv);
  world_.wait(send);
  EXPECT_EQ(rx, tx);
}

TEST_P(RdvEngineTest, SenderCompletesOnlyAfterDelivery) {
  // Rendezvous completion is remote: the FIN arrives after the receiver got
  // every byte, so the receiver can never still be incomplete when the
  // sender finishes.
  const std::size_t size = 4_MiB;
  const auto tx = test::make_pattern(size, 6);
  std::vector<std::uint8_t> rx(size, 0);
  auto recv = world_.engine(1).irecv(0, 4, rx.data(), size);
  auto send = world_.engine(0).isend(1, 4, tx.data(), size);
  world_.wait(send);
  EXPECT_TRUE(recv->done());
  EXPECT_GE(send->complete_time, recv->complete_time);
}

TEST_P(RdvEngineTest, ConcurrentRendezvous) {
  const std::size_t size = 512_KiB;
  std::vector<std::vector<std::uint8_t>> tx;
  std::vector<std::vector<std::uint8_t>> rx(4, std::vector<std::uint8_t>(size));
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < 4; ++i) {
    tx.push_back(test::make_pattern(size, 50 + i));
    recvs.push_back(world_.engine(1).irecv(0, 10 + i, rx[i].data(), size));
  }
  for (int i = 0; i < 4; ++i) {
    sends.push_back(world_.engine(0).isend(1, 10 + i, tx[i].data(), size));
  }
  for (auto& r : recvs) world_.wait(r);
  for (auto& s : sends) world_.wait(s);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rx[i], tx[i]) << "message " << i;
}

TEST_P(RdvEngineTest, StatsCountRendezvous) {
  const std::size_t size = 1_MiB;
  const auto tx = test::make_pattern(size, 1);
  std::vector<std::uint8_t> rx(size);
  auto recv = world_.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world_.engine(0).isend(1, 1, tx.data(), size);
  world_.wait(send);
  (void)recv;
  const auto& stats = world_.engine(0).stats();
  EXPECT_EQ(stats.rdv_msgs, 1u);
  EXPECT_GE(stats.rdv_chunks, 1u);
  EXPECT_EQ(send->chunk_count, stats.rdv_chunks);
}

INSTANTIATE_TEST_SUITE_P(Strategies, RdvEngineTest,
                         ::testing::Values("single-rail:0", "single-rail:1",
                                           "greedy-balance", "aggregate-fastest",
                                           "iso-split", "fixed-ratio-split",
                                           "hetero-split", "multicore-hetero-split"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == ':') c = '_';
                           }
                           return name;
                         });

TEST(RdvChunks, HeteroSplitUsesBothRailsWithMyriMajority) {
  core::World world(paper_testbed("hetero-split"));
  const std::size_t size = 4_MiB;
  const auto tx = test::make_pattern(size, 1);
  std::vector<std::uint8_t> rx(size);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.wait(send);
  (void)recv;
  EXPECT_EQ(send->chunk_count, 2u);
  const auto& per_rail = world.engine(0).stats().payload_bytes_per_rail;
  // Rail 0 (Myri-10G, faster DMA) carries the larger share — the §IV-A
  // example splits 4 MB into roughly 2437 KB / 1757 KB.
  EXPECT_GT(per_rail[0], per_rail[1]);
  EXPECT_GT(per_rail[1], size / 3);
}

TEST(RdvChunks, IsoSplitIsEqual) {
  core::World world(paper_testbed("iso-split"));
  const std::size_t size = 4_MiB;
  const auto tx = test::make_pattern(size, 2);
  std::vector<std::uint8_t> rx(size);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.wait(send);
  (void)recv;
  const auto& per_rail = world.engine(0).stats().payload_bytes_per_rail;
  EXPECT_EQ(per_rail[0], per_rail[1]);
}

TEST(RdvChunks, SingleRailKeepsEverythingOnOneRail) {
  core::World world(paper_testbed("single-rail:1"));
  const std::size_t size = 2_MiB;
  const auto tx = test::make_pattern(size, 3);
  std::vector<std::uint8_t> rx(size);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.wait(send);
  (void)recv;
  const auto& per_rail = world.engine(0).stats().payload_bytes_per_rail;
  EXPECT_EQ(per_rail[0], 0u);
  EXPECT_EQ(per_rail[1], size);
}

}  // namespace
}  // namespace rails::core
