// Direct tests of strategy plan outputs under controlled NIC/core states —
// the engine-independent view of each plug-in's decision logic.
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/presets.hpp"

namespace rails::core {
namespace {

/// Harness: a real world provides the context; we interrogate strategies
/// directly with hand-made pending lists and NIC occupancy.
class DecisionHarness : public ::testing::Test {
 protected:
  DecisionHarness() : world_(paper_testbed("hetero-split")) {}

  StrategyContext ctx() {
    StrategyContext c;
    c.now = world_.fabric().now();
    c.estimator = &world_.estimator();
    nics_ = {&world_.fabric().nic(0, 0), &world_.fabric().nic(0, 1)};
    c.nics = std::span<fabric::SimNic* const>(nics_.data(), nics_.size());
    c.cores = &world_.fabric().cores(0);
    c.config = &world_.engine(0).config();
    return c;
  }

  SendRequest make_send(std::size_t len, Tag tag = 1) {
    SendRequest s;
    s.id = next_id_++;
    s.dst = 1;
    s.tag = tag;
    s.data = buffer_.data();
    s.len = len;
    return s;
  }

  /// Occupies rail `r`'s injection port for `us` microseconds from now.
  void occupy_rail(RailId r, double us) {
    fabric::Segment seg;
    seg.kind = fabric::SegKind::kData;
    seg.src = 0;
    seg.dst = 1;
    seg.rail = r;
    const double bw = world_.fabric().nic(0, r).model().params().dma_bw_mbps;
    seg.payload.assign(static_cast<std::size_t>(us * bw), 0);
    world_.fabric().set_rx_handler(1, [](fabric::Segment&&) {});
    world_.fabric().nic(0, r).post(std::move(seg), world_.fabric().now());
  }

  core::World world_;
  std::vector<fabric::SimNic*> nics_;
  std::vector<std::uint8_t> buffer_ = std::vector<std::uint8_t>(64_KiB, 0x77);
  std::uint64_t next_id_ = 1;
};

TEST_F(DecisionHarness, HeteroRendezvousSplitsFavourMyri) {
  HeteroSplit strategy;
  const auto plan = strategy.plan_rendezvous(ctx(), 4_MiB);
  ASSERT_EQ(plan.chunks.size(), 2u);
  EXPECT_EQ(plan.chunks[0].rail, 0u);
  EXPECT_GT(plan.chunks[0].bytes, plan.chunks[1].bytes);
  EXPECT_EQ(plan.chunks[0].bytes + plan.chunks[1].bytes, 4_MiB);
}

TEST_F(DecisionHarness, HeteroDropsABusyRail) {
  occupy_rail(0, 50'000.0);  // Myri busy for ~50 ms
  HeteroSplit strategy;
  const auto plan = strategy.plan_rendezvous(ctx(), 1_MiB);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].rail, 1u);
}

TEST_F(DecisionHarness, FixedRatioIgnoresBusyState) {
  FixedRatioSplit strategy;
  const auto idle_plan = strategy.plan_rendezvous(ctx(), 1_MiB);
  occupy_rail(0, 50'000.0);
  const auto busy_plan = strategy.plan_rendezvous(ctx(), 1_MiB);
  ASSERT_EQ(idle_plan.chunks.size(), busy_plan.chunks.size());
  for (std::size_t i = 0; i < idle_plan.chunks.size(); ++i) {
    EXPECT_EQ(idle_plan.chunks[i].bytes, busy_plan.chunks[i].bytes)
        << "fixed ratio must be state-blind (that is its defect)";
  }
}

TEST_F(DecisionHarness, AggregateFastestPacksEverythingOnOneRail) {
  AggregateFastest strategy;
  const auto s1 = make_send(1000);
  const auto s2 = make_send(2000, 2);
  const auto s3 = make_send(500, 3);
  const std::vector<const SendRequest*> pending = {&s1, &s2, &s3};
  const auto schedule = strategy.plan_eager(ctx(), pending);
  ASSERT_EQ(schedule.emissions.size(), 1u);
  EXPECT_EQ(schedule.emissions[0].pieces.size(), 3u);
  EXPECT_FALSE(schedule.emissions[0].offload_core.has_value());
}

TEST_F(DecisionHarness, AggregateFastestDefersWhenAllRailsBusy) {
  occupy_rail(0, 100.0);
  occupy_rail(1, 100.0);
  AggregateFastest strategy;
  const auto s1 = make_send(1000);
  const std::vector<const SendRequest*> pending = {&s1};
  EXPECT_TRUE(strategy.plan_eager(ctx(), pending).empty());
}

TEST_F(DecisionHarness, GreedyAssignsRoundRobinOverIdleRails) {
  GreedyBalance strategy;
  const auto s1 = make_send(100);
  const auto s2 = make_send(100, 2);
  const auto s3 = make_send(100, 3);
  const auto s4 = make_send(100, 4);
  const std::vector<const SendRequest*> pending = {&s1, &s2, &s3, &s4};
  const auto schedule = strategy.plan_eager(ctx(), pending);
  ASSERT_EQ(schedule.emissions.size(), 4u);
  EXPECT_EQ(schedule.emissions[0].rail, 0u);
  EXPECT_EQ(schedule.emissions[1].rail, 1u);
  EXPECT_EQ(schedule.emissions[2].rail, 0u);
  EXPECT_EQ(schedule.emissions[3].rail, 1u);
}

TEST_F(DecisionHarness, MulticoreSplitsOnlyWithIdleCores) {
  MulticoreHeteroSplit strategy;
  const auto send = make_send(16_KiB);
  const std::vector<const SendRequest*> pending = {&send};

  auto c = ctx();
  auto split = strategy.plan_eager(c, pending);
  ASSERT_EQ(split.emissions.size(), 2u);
  EXPECT_TRUE(split.emissions[0].offload_core.has_value());
  EXPECT_TRUE(split.emissions[1].offload_core.has_value());
  EXPECT_NE(*split.emissions[0].offload_core, *split.emissions[1].offload_core);

  // Occupy every non-scheduler core: the strategy must fall back to
  // single-core aggregation (min{idle NICs, idle cores} = 0 remote cores).
  for (CoreId core = 1; core < world_.fabric().cores(0).count(); ++core) {
    world_.fabric().cores(0).occupy(core, world_.fabric().now(), usec(1000.0));
  }
  auto fallback = strategy.plan_eager(ctx(), pending);
  ASSERT_EQ(fallback.emissions.size(), 1u);
  EXPECT_FALSE(fallback.emissions[0].offload_core.has_value());
}

TEST_F(DecisionHarness, SingleRailControlRailIsItsOwn) {
  SingleRail r0(0);
  SingleRail r1(1);
  EXPECT_EQ(r0.control_rail(ctx()), 0u);
  EXPECT_EQ(r1.control_rail(ctx()), 1u);
}

TEST_F(DecisionHarness, IsoSplitChunksAreEqualAndOrdered) {
  IsoSplit strategy;
  const auto plan = strategy.plan_rendezvous(ctx(), 1_MiB);
  ASSERT_EQ(plan.chunks.size(), 2u);
  EXPECT_EQ(plan.chunks[0].bytes, plan.chunks[1].bytes);
  EXPECT_EQ(plan.chunks[0].offset, 0u);
  EXPECT_EQ(plan.chunks[1].offset, 512_KiB);
}

}  // namespace
}  // namespace rails::core
