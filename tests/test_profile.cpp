#include "sampling/profile.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rails::sampling {
namespace {

PerfProfile linear_profile() {
  // duration = 1000 + 2 * size, sampled at powers of two.
  std::vector<SamplePoint> pts;
  for (std::size_t s = 1; s <= 1024; s <<= 1) {
    pts.push_back({s, static_cast<SimDuration>(1000 + 2 * s)});
  }
  return PerfProfile(std::move(pts));
}

TEST(PerfProfile, ExactAtSamplePoints) {
  const auto p = linear_profile();
  for (std::size_t s = 1; s <= 1024; s <<= 1) {
    EXPECT_EQ(p.estimate(s), static_cast<SimDuration>(1000 + 2 * s));
  }
}

TEST(PerfProfile, InterpolatesBetweenPoints) {
  const auto p = linear_profile();
  // Between 256 and 512 the underlying curve is linear, so interpolation is
  // exact at any intermediate size.
  EXPECT_EQ(p.estimate(384), 1000 + 2 * 384);
  EXPECT_EQ(p.estimate(300), 1000 + 2 * 300);
}

TEST(PerfProfile, ExtrapolatesBeyondEnds) {
  const auto p = linear_profile();
  EXPECT_EQ(p.estimate(2048), 1000 + 2 * 2048);  // beyond last point
  EXPECT_EQ(p.estimate(0), 1000);                // below first point
}

TEST(PerfProfile, SinglePointIsConstant) {
  PerfProfile p({{64, 500}});
  EXPECT_EQ(p.estimate(1), 500);
  EXPECT_EQ(p.estimate(64), 500);
  EXPECT_EQ(p.estimate(1024), 500);
}

TEST(PerfProfile, DuplicateSizesKeepLatest) {
  PerfProfile p;
  p.add(100, 10);
  p.add(200, 20);
  p.add(100, 12);
  EXPECT_EQ(p.point_count(), 2u);
  EXPECT_EQ(p.estimate(100), 12);
}

TEST(PerfProfile, NoiseInversionsClamped) {
  // A larger size measured faster than a smaller one (noise) must not
  // produce a non-monotone estimate.
  PerfProfile p({{100, 50}, {200, 40}, {400, 80}});
  EXPECT_GE(p.estimate(200), p.estimate(100));
  EXPECT_GE(p.estimate(300), p.estimate(200));
}

TEST(PerfProfile, LatencyIsZeroSizeIntercept) {
  EXPECT_EQ(linear_profile().latency(), 1000);
}

TEST(PerfProfile, AsymptoticBandwidth) {
  // Slope 2 ns/byte -> 500 MB/s.
  EXPECT_NEAR(linear_profile().asymptotic_bandwidth(), 500.0, 1e-9);
}

TEST(PerfProfile, MaxBytesWithinBasics) {
  const auto p = linear_profile();
  EXPECT_EQ(p.max_bytes_within(999), 0u);          // below latency
  EXPECT_EQ(p.max_bytes_within(1000), 0u);         // exactly latency -> 0 bytes
  EXPECT_EQ(p.max_bytes_within(1000 + 2 * 100), 100u);
  EXPECT_EQ(p.max_bytes_within(1000 + 2 * 5000), 5000u);  // beyond last sample
}

TEST(PerfProfile, InverseRoundTripProperty) {
  const auto p = linear_profile();
  Xoshiro256 rng(42);
  for (int i = 0; i < 200; ++i) {
    const SimDuration budget = 1000 + static_cast<SimDuration>(rng.below(10000));
    const std::size_t bytes = p.max_bytes_within(budget);
    // The returned size fits the budget...
    EXPECT_LE(p.estimate(bytes), budget);
    // ...and one more byte would not.
    EXPECT_GT(p.estimate(bytes + 1), budget);
  }
}

TEST(PerfProfile, SaveLoadRoundTrip) {
  const auto p = linear_profile();
  std::stringstream ss;
  p.save(ss);
  const auto q = PerfProfile::load(ss);
  ASSERT_EQ(q.point_count(), p.point_count());
  for (std::size_t i = 0; i < p.points().size(); ++i) {
    EXPECT_EQ(q.points()[i].size, p.points()[i].size);
    EXPECT_EQ(q.points()[i].duration, p.points()[i].duration);
  }
}

TEST(PerfProfile, LoadSkipsCommentsAndBlanks) {
  std::stringstream ss("# header\n\n10 100\n# mid\n20 200\n");
  const auto p = PerfProfile::load(ss);
  EXPECT_EQ(p.point_count(), 2u);
  EXPECT_EQ(p.estimate(15), 150);
}

class ProfileRandomized : public ::testing::TestWithParam<int> {};

TEST_P(ProfileRandomized, EstimateMonotoneForMonotoneSamples) {
  Xoshiro256 rng(GetParam());
  PerfProfile p;
  SimDuration d = 100;
  for (std::size_t s = 4; s <= 1_MiB; s <<= 1) {
    d += static_cast<SimDuration>(rng.below(5000)) + 1;
    p.add(s, d);
  }
  SimDuration prev = -1;
  for (std::size_t s = 1; s <= 2_MiB; s = s * 3 / 2 + 1) {
    const SimDuration est = p.estimate(s);
    EXPECT_GE(est, prev) << "size " << s;
    prev = est;
  }
}

TEST_P(ProfileRandomized, InversePropertyOnRandomProfiles) {
  Xoshiro256 rng(GetParam() + 100);
  PerfProfile p;
  SimDuration d = 50;
  for (std::size_t s = 1; s <= 64_KiB; s <<= 1) {
    d += static_cast<SimDuration>(rng.below(2000)) + 10;
    p.add(s, d);
  }
  for (int i = 0; i < 100; ++i) {
    const SimDuration budget = 50 + static_cast<SimDuration>(rng.below(40000));
    const std::size_t bytes = p.max_bytes_within(budget);
    if (bytes > 0) {
      // The returned size fits, and the next byte is at the budget boundary
      // or beyond (integer durations can plateau, hence GE rather than GT).
      EXPECT_LE(p.estimate(bytes), budget);
      EXPECT_GE(p.estimate(bytes + 1), budget);
    } else {
      // Nothing fits only when even the smallest sampled message is over
      // budget (the zero-size extrapolation may dip below it).
      EXPECT_GT(p.estimate(p.min_size()), budget);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileRandomized, ::testing::Range(1, 9));

}  // namespace
}  // namespace rails::sampling
