#include <numeric>

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "fabric/presets.hpp"
#include "mpi/communicator.hpp"
#include "test_util.hpp"

namespace rails::mpi {
namespace {

core::WorldConfig cluster(std::uint32_t nodes, const char* strategy = "hetero-split") {
  core::WorldConfig cfg;
  cfg.fabric.node_count = nodes;
  cfg.fabric.rails = {fabric::myri10g(), fabric::qsnet2()};
  cfg.strategy = strategy;
  return cfg;
}

/// Node-count sweep: collectives must be correct for 1, 2, powers of two
/// and awkward odd sizes alike.
class CollectiveSweep : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  std::uint32_t nodes() const { return GetParam(); }
};

TEST_P(CollectiveSweep, BarrierCompletes) {
  core::World world(cluster(nodes()));
  std::uint32_t seq = 1;
  const SimDuration t = collective(world, seq, [](Communicator comm, std::uint32_t s) {
    return make_barrier(comm, s);
  });
  EXPECT_GE(t, 0);
  if (nodes() > 1) {
    EXPECT_GT(t, 0);
  }
}

TEST_P(CollectiveSweep, BcastDeliversToAll) {
  core::World world(cluster(nodes()));
  const std::size_t len = 12_KiB;
  const auto payload = test::make_pattern(len, 7);
  std::vector<std::vector<std::uint8_t>> bufs(nodes(), std::vector<std::uint8_t>(len));
  const int root = static_cast<int>(nodes() / 2);
  bufs[static_cast<std::size_t>(root)] = payload;

  collective(world, 2, [&](Communicator comm, std::uint32_t s) {
    return make_bcast(comm, s, bufs[static_cast<std::size_t>(comm.rank())].data(), len,
                      root);
  });
  for (std::uint32_t r = 0; r < nodes(); ++r) EXPECT_EQ(bufs[r], payload) << "rank " << r;
}

TEST_P(CollectiveSweep, ReduceSumsAtRoot) {
  core::World world(cluster(nodes()));
  const std::size_t count = 512;
  std::vector<std::vector<double>> contrib(nodes(), std::vector<double>(count));
  for (std::uint32_t r = 0; r < nodes(); ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      contrib[r][i] = static_cast<double>(r + 1) * static_cast<double>(i);
    }
  }
  std::vector<double> result(count, -1.0);
  const int root = 0;
  collective(world, 3, [&](Communicator comm, std::uint32_t s) {
    return make_reduce(comm, s, contrib[static_cast<std::size_t>(comm.rank())].data(),
                       result.data(), count, DType::kDouble, ReduceOp::kSum, root);
  });
  const double rank_sum =
      static_cast<double>(nodes()) * static_cast<double>(nodes() + 1) / 2.0;
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_DOUBLE_EQ(result[i], rank_sum * static_cast<double>(i)) << "element " << i;
  }
}

TEST_P(CollectiveSweep, ReduceAtNonzeroRoot) {
  core::World world(cluster(nodes()));
  const std::size_t count = 64;
  std::vector<std::vector<std::int64_t>> contrib(nodes(),
                                                 std::vector<std::int64_t>(count));
  for (std::uint32_t r = 0; r < nodes(); ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      contrib[r][i] = static_cast<std::int64_t>(r * 100 + i);
    }
  }
  std::vector<std::int64_t> result(count, -1);
  const int root = static_cast<int>(nodes() - 1);
  collective(world, 4, [&](Communicator comm, std::uint32_t s) {
    return make_reduce(comm, s, contrib[static_cast<std::size_t>(comm.rank())].data(),
                       result.data(), count, DType::kInt64, ReduceOp::kMax, root);
  });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(result[i], static_cast<std::int64_t>((nodes() - 1) * 100 + i));
  }
}

TEST_P(CollectiveSweep, AllreduceEveryRankHasSum) {
  core::World world(cluster(nodes()));
  const std::size_t count = 256;
  std::vector<std::vector<double>> in(nodes(), std::vector<double>(count));
  std::vector<std::vector<double>> out(nodes(), std::vector<double>(count, -1.0));
  for (std::uint32_t r = 0; r < nodes(); ++r) {
    for (std::size_t i = 0; i < count; ++i) in[r][i] = static_cast<double>(r) + 0.5;
  }
  collective(world, 5, [&](Communicator comm, std::uint32_t s) {
    const auto me = static_cast<std::size_t>(comm.rank());
    return make_allreduce(comm, s, in[me].data(), out[me].data(), count, DType::kDouble,
                          ReduceOp::kSum);
  });
  const double expected =
      static_cast<double>(nodes()) * (static_cast<double>(nodes()) - 1.0) / 2.0 +
      0.5 * static_cast<double>(nodes());
  for (std::uint32_t r = 0; r < nodes(); ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_DOUBLE_EQ(out[r][i], expected) << "rank " << r << " element " << i;
    }
  }
}

TEST_P(CollectiveSweep, GatherCollectsInRankOrder) {
  core::World world(cluster(nodes()));
  const std::size_t len = 1_KiB;
  std::vector<std::vector<std::uint8_t>> in;
  for (std::uint32_t r = 0; r < nodes(); ++r) in.push_back(test::make_pattern(len, r));
  std::vector<std::uint8_t> out(len * nodes(), 0);
  const int root = 0;
  collective(world, 6, [&](Communicator comm, std::uint32_t s) {
    return make_gather(comm, s, in[static_cast<std::size_t>(comm.rank())].data(), len,
                       out.data(), root);
  });
  for (std::uint32_t r = 0; r < nodes(); ++r) {
    const std::vector<std::uint8_t> block(out.begin() + r * len,
                                          out.begin() + (r + 1) * len);
    EXPECT_EQ(block, in[r]) << "rank " << r;
  }
}

TEST_P(CollectiveSweep, ScatterDistributesInRankOrder) {
  core::World world(cluster(nodes()));
  const std::size_t len = 2_KiB;
  std::vector<std::uint8_t> in(len * nodes());
  for (std::uint32_t r = 0; r < nodes(); ++r) {
    const auto block = test::make_pattern(len, r + 50);
    std::copy(block.begin(), block.end(), in.begin() + r * len);
  }
  std::vector<std::vector<std::uint8_t>> out(nodes(), std::vector<std::uint8_t>(len));
  const int root = static_cast<int>(nodes() - 1);
  collective(world, 7, [&](Communicator comm, std::uint32_t s) {
    return make_scatter(comm, s, in.data(), len,
                        out[static_cast<std::size_t>(comm.rank())].data(), root);
  });
  for (std::uint32_t r = 0; r < nodes(); ++r) {
    EXPECT_EQ(out[r], test::make_pattern(len, r + 50)) << "rank " << r;
  }
}

TEST_P(CollectiveSweep, AllgatherEveryoneSeesEveryBlock) {
  core::World world(cluster(nodes()));
  const std::size_t len = 1_KiB;
  std::vector<std::vector<std::uint8_t>> in;
  for (std::uint32_t r = 0; r < nodes(); ++r) in.push_back(test::make_pattern(len, r + 9));
  std::vector<std::vector<std::uint8_t>> out(nodes(),
                                             std::vector<std::uint8_t>(len * nodes()));
  collective(world, 8, [&](Communicator comm, std::uint32_t s) {
    const auto me = static_cast<std::size_t>(comm.rank());
    return make_allgather(comm, s, in[me].data(), len, out[me].data());
  });
  for (std::uint32_t viewer = 0; viewer < nodes(); ++viewer) {
    for (std::uint32_t r = 0; r < nodes(); ++r) {
      const std::vector<std::uint8_t> block(out[viewer].begin() + r * len,
                                            out[viewer].begin() + (r + 1) * len);
      EXPECT_EQ(block, in[r]) << "viewer " << viewer << " block " << r;
    }
  }
}

TEST_P(CollectiveSweep, AlltoallTransposesBlocks) {
  core::World world(cluster(nodes()));
  const std::size_t len = 512;
  const std::uint32_t n = nodes();
  // in[r] block d is pattern(seed = r * n + d); after alltoall, out[d] block
  // r must hold that pattern.
  std::vector<std::vector<std::uint8_t>> in(n, std::vector<std::uint8_t>(len * n));
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t d = 0; d < n; ++d) {
      const auto block = test::make_pattern(len, r * n + d);
      std::copy(block.begin(), block.end(), in[r].begin() + d * len);
    }
  }
  std::vector<std::vector<std::uint8_t>> out(n, std::vector<std::uint8_t>(len * n));
  collective(world, 9, [&](Communicator comm, std::uint32_t s) {
    const auto me = static_cast<std::size_t>(comm.rank());
    return make_alltoall(comm, s, in[me].data(), len, out[me].data());
  });
  for (std::uint32_t d = 0; d < n; ++d) {
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::vector<std::uint8_t> block(out[d].begin() + r * len,
                                            out[d].begin() + (r + 1) * len);
      EXPECT_EQ(block, test::make_pattern(len, r * n + d))
          << "dest " << d << " from " << r;
    }
  }
}

TEST_P(CollectiveSweep, ReduceScatterBlocks) {
  core::World world(cluster(nodes()));
  const std::size_t count = 128;
  const std::uint32_t n = nodes();
  // in[r] block b element i = (r+1) * (b * count + i); the reduced block b
  // is sum over r = (b*count+i) * n(n+1)/2.
  std::vector<std::vector<std::int64_t>> in(n, std::vector<std::int64_t>(count * n));
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t b = 0; b < n; ++b) {
      for (std::size_t i = 0; i < count; ++i) {
        in[r][b * count + i] =
            static_cast<std::int64_t>((r + 1) * (b * count + i));
      }
    }
  }
  std::vector<std::vector<std::int64_t>> out(n, std::vector<std::int64_t>(count, -1));
  collective(world, 13, [&](Communicator comm, std::uint32_t s) {
    const auto me = static_cast<std::size_t>(comm.rank());
    return make_reduce_scatter(comm, s, in[me].data(), out[me].data(), count,
                               DType::kInt64, ReduceOp::kSum);
  });
  const std::int64_t rank_sum = static_cast<std::int64_t>(n) * (n + 1) / 2;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[r][i],
                rank_sum * static_cast<std::int64_t>(r * count + i))
          << "rank " << r << " element " << i;
    }
  }
}

TEST_P(CollectiveSweep, InclusiveScanPrefixes) {
  core::World world(cluster(nodes()));
  const std::size_t count = 64;
  const std::uint32_t n = nodes();
  std::vector<std::vector<double>> in(n, std::vector<double>(count));
  std::vector<std::vector<double>> out(n, std::vector<double>(count, -1.0));
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) in[r][i] = static_cast<double>(r + 1);
  }
  collective(world, 14, [&](Communicator comm, std::uint32_t s) {
    const auto me = static_cast<std::size_t>(comm.rank());
    return make_scan(comm, s, in[me].data(), out[me].data(), count, DType::kDouble,
                     ReduceOp::kSum);
  });
  for (std::uint32_t r = 0; r < n; ++r) {
    const double prefix = static_cast<double>(r + 1) * static_cast<double>(r + 2) / 2.0;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_DOUBLE_EQ(out[r][i], prefix) << "rank " << r;
    }
  }
}

TEST(ReduceScatter, EquivalentToReduceThenScatter) {
  // Cross-check against the composition it replaces.
  const std::uint32_t n = 4;
  const std::size_t count = 32;
  core::World world(cluster(n));
  std::vector<std::vector<std::int64_t>> in(n, std::vector<std::int64_t>(count * n));
  Xoshiro256 rng(9);
  for (auto& v : in) {
    for (auto& x : v) x = static_cast<std::int64_t>(rng.below(1000));
  }
  // Path A: reduce_scatter.
  std::vector<std::vector<std::int64_t>> direct(n, std::vector<std::int64_t>(count));
  collective(world, 15, [&](Communicator comm, std::uint32_t s) {
    const auto me = static_cast<std::size_t>(comm.rank());
    return make_reduce_scatter(comm, s, in[me].data(), direct[me].data(), count,
                               DType::kInt64, ReduceOp::kSum);
  });
  // Path B: reduce to root 0, then scatter.
  std::vector<std::int64_t> reduced(count * n, 0);
  collective(world, 16, [&](Communicator comm, std::uint32_t s) {
    const auto me = static_cast<std::size_t>(comm.rank());
    return make_reduce(comm, s, in[me].data(), reduced.data(), count * n,
                       DType::kInt64, ReduceOp::kSum, 0);
  });
  std::vector<std::vector<std::int64_t>> scattered(n, std::vector<std::int64_t>(count));
  collective(world, 17, [&](Communicator comm, std::uint32_t s) {
    const auto me = static_cast<std::size_t>(comm.rank());
    return make_scatter(comm, s, reduced.data(), count * sizeof(std::int64_t),
                        scattered[me].data(), 0);
  });
  for (std::uint32_t r = 0; r < n; ++r) EXPECT_EQ(direct[r], scattered[r]) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(Nodes, CollectiveSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(CollectiveTiming, BcastScalesLogarithmically) {
  // Binomial bcast: doubling the node count adds ~one tree level, far less
  // than doubling the time a flat send loop would need.
  const std::size_t len = 256_KiB;
  std::vector<std::uint8_t> payload(len, 0x3C);
  auto time_bcast = [&](std::uint32_t n) {
    core::World world(cluster(n));
    std::vector<std::vector<std::uint8_t>> bufs(n, std::vector<std::uint8_t>(len));
    bufs[0] = payload;
    return collective(world, 11, [&](Communicator comm, std::uint32_t s) {
      return make_bcast(comm, s, bufs[static_cast<std::size_t>(comm.rank())].data(), len,
                        0);
    });
  };
  const SimDuration t2 = time_bcast(2);
  const SimDuration t8 = time_bcast(8);
  // 8 ranks = 3 levels vs 1 level: at most ~3.5x, not 7x.
  EXPECT_LT(t8, t2 * 4);
}

TEST(CollectiveTiming, MultirailSpeedsUpLargeBcast) {
  const std::size_t len = 4_MiB;
  std::vector<std::uint8_t> payload(len, 0x3C);
  auto time_bcast = [&](const char* strategy) {
    core::WorldConfig cfg = cluster(4, strategy);
    core::World world(cfg);
    std::vector<std::vector<std::uint8_t>> bufs(4, std::vector<std::uint8_t>(len));
    bufs[0] = payload;
    return collective(world, 12, [&](Communicator comm, std::uint32_t s) {
      return make_bcast(comm, s, bufs[static_cast<std::size_t>(comm.rank())].data(), len,
                        0);
    });
  };
  const SimDuration single = time_bcast("single-rail:0");
  const SimDuration multi = time_bcast("hetero-split");
  EXPECT_LT(multi, single);
  EXPECT_LT(multi, static_cast<SimDuration>(static_cast<double>(single) * 0.75));
}

}  // namespace
}  // namespace rails::mpi
