// Topology invariants and the sharded event queue's exactness.
//
// The routing claims (dimension-order determinism, up-down loop-freedom)
// are checked structurally over every pair, not spot-checked; the sharded
// EventQueue is held to the strongest possible standard — a bit-identical
// delivery log against the single-queue run of the same world.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "fabric/event_queue.hpp"
#include "fabric/fabric.hpp"
#include "fabric/presets.hpp"
#include "topo/topology.hpp"

using namespace rails;
using topo::Coord;
using topo::Hop;
using topo::Path;
using topo::TopoKind;
using topo::Topology;
using topo::TopologySpec;

namespace {

TEST(TopologySpec, PresetNodeCounts) {
  EXPECT_EQ(TopologySpec::mesh(4, 4).preset_nodes(), 16u);
  EXPECT_EQ(TopologySpec::torus(16, 16).preset_nodes(), 256u);
  EXPECT_EQ(TopologySpec::flat().preset_nodes(), 0u);
  EXPECT_EQ(TopologySpec::fat_tree(16, 8).preset_nodes(), 0u);
}

TEST(Mesh, CoordinateRoundTrip) {
  const Topology t(TopologySpec::mesh(5, 3), 15);
  for (NodeId n = 0; n < 15; ++n) {
    const Coord c = t.coord_of(n);
    EXPECT_LT(c.x, 5u);
    EXPECT_LT(c.y, 3u);
    EXPECT_EQ(t.node_at(c), n);
  }
  // x is the fast dimension: node 7 of a 5-wide grid sits at (2, 1).
  EXPECT_EQ(t.coord_of(7).x, 2u);
  EXPECT_EQ(t.coord_of(7).y, 1u);
}

TEST(Torus, CoordinateRoundTrip) {
  const Topology t(TopologySpec::torus(4, 4), 16);
  for (NodeId n = 0; n < 16; ++n) EXPECT_EQ(t.node_at(t.coord_of(n)), n);
}

// Manhattan distance on the mesh; wrap-aware distance on the torus.
std::uint32_t grid_distance(const Topology& t, NodeId a, NodeId b) {
  const Coord ca = t.coord_of(a);
  const Coord cb = t.coord_of(b);
  const auto axis = [&](std::uint32_t from, std::uint32_t to, std::uint32_t extent) {
    const std::uint32_t d = from > to ? from - to : to - from;
    return t.kind() == TopoKind::kTorus2D ? std::min(d, extent - d) : d;
  };
  return axis(ca.x, cb.x, t.spec().width) + axis(ca.y, cb.y, t.spec().height);
}

TEST(Mesh, DimensionOrderRoutesAreMinimalAndXFirst) {
  const Topology t(TopologySpec::mesh(4, 4), 16);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      const Path& p = t.route(s, d);
      EXPECT_EQ(p.size(), grid_distance(t, s, d)) << s << "->" << d;
      EXPECT_EQ(p.back().to, d);
      EXPECT_LE(p.size(), t.diameter_hops());
      // X resolves before Y ever moves: once the y coordinate changes, the
      // x coordinate must already match the destination's.
      const std::uint32_t src_y = t.coord_of(s).y;
      for (const Hop& h : p) {
        const Coord c = t.coord_of(h.to);
        if (c.y != src_y) {
          EXPECT_EQ(c.x, t.coord_of(d).x);
        }
      }
    }
  }
}

TEST(Mesh, RoutesAreDeterministicAndCached) {
  const Topology t(TopologySpec::mesh(4, 4), 16);
  const Path& a = t.route(1, 14);
  const Path& b = t.route(1, 14);
  EXPECT_EQ(&a, &b);  // cached: same object, no recompute, no allocation
  const Path first(a);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(t.route(1, 14), first);
}

TEST(Torus, WrapAroundTakesTheShortWay) {
  const Topology t(TopologySpec::torus(4, 4), 16);
  // (0,0) -> (3,0): one -x wrap hop, not three +x hops.
  EXPECT_EQ(t.route(0, 3).size(), 1u);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      EXPECT_EQ(t.route(s, d).size(), grid_distance(t, s, d));
      EXPECT_LE(t.route(s, d).size(), t.diameter_hops());
    }
  }
}

TEST(FatTree, UpDownRoutesAreLoopFree) {
  const std::uint32_t nodes = 32;
  const Topology t(TopologySpec::fat_tree(8, 4), nodes);
  EXPECT_EQ(t.switch_count(), 4u + 4u);  // 4 leaves + 4 roots
  // Vertex level: node = 0, leaf = 1, root = 2. Up-down means the level
  // profile along a path climbs, then only descends — no valley, no loop.
  const auto level = [&](std::uint32_t v) {
    if (v < nodes) return 0;
    return v < nodes + 4 ? 1 : 2;
  };
  for (NodeId s = 0; s < nodes; ++s) {
    for (NodeId d = 0; d < nodes; ++d) {
      if (s == d) continue;
      const Path& p = t.route(s, d);
      EXPECT_EQ(p.back().to, d);
      EXPECT_LE(p.size(), t.diameter_hops());
      std::set<std::uint32_t> seen{s};
      bool descending = false;
      std::uint32_t cur_level = 0;
      for (const Hop& h : p) {
        EXPECT_TRUE(seen.insert(h.to).second) << "vertex revisited " << s << "->" << d;
        const std::uint32_t l = static_cast<std::uint32_t>(level(h.to));
        if (l < cur_level) descending = true;
        EXPECT_FALSE(descending && l > cur_level) << "up after down " << s << "->" << d;
        cur_level = l;
      }
      // Same leaf: 2 hops through it. Different leaf: 4 hops via one root.
      EXPECT_EQ(p.size(), s / 8 == d / 8 ? 2u : 4u);
    }
  }
}

TEST(FatTree, RootChoiceSpreadsByDestination) {
  const Topology t(TopologySpec::fat_tree(8, 4), 32);
  // Destinations in different residue classes cross different roots.
  std::set<std::uint32_t> roots;
  for (NodeId d = 8; d < 12; ++d) {  // same leaf, four residues
    const Path& p = t.route(0, d);
    ASSERT_EQ(p.size(), 4u);
    roots.insert(p[1].to);
  }
  EXPECT_EQ(roots.size(), 4u);
}

TEST(EventQueue, ShardedPopsInGlobalTimeSeqOrder) {
  // The same schedule fed to a single-shard and an 8-shard queue must pop
  // identically: global (time, seq) order, ties by insertion.
  const auto run = [](std::uint32_t shards) {
    fabric::EventQueue q;
    if (shards > 1) q.configure_shards(shards, /*horizon=*/100);
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
      const SimTime when = (i * 37) % 19;  // clustered, with many ties
      q.at_node(when, static_cast<NodeId>(i % 11), [i, &order] { order.push_back(i); });
    }
    q.run_all();
    return order;
  };
  const std::vector<int> single = run(1);
  const std::vector<int> sharded = run(8);
  EXPECT_EQ(single, sharded);
  ASSERT_EQ(single.size(), 64u);
}

// Self-rescheduling ticker: re-arms through at(), so with a sharded queue
// it stays on the shard it started on without ever naming it.
struct Ticker {
  fabric::EventQueue* q;
  std::vector<std::pair<SimTime, int>>* log;
  int n;
  SimDuration period;
  int remaining;
  void operator()() {
    log->emplace_back(q->now(), n);
    if (--remaining > 0) q->after(period, *this);
  }
};

TEST(EventQueue, ShardedSelfSchedulingStaysOrdered) {
  fabric::EventQueue q;
  q.configure_shards(4, 10);
  std::vector<std::pair<SimTime, int>> log;
  for (int n = 0; n < 4; ++n) {
    q.at_node(0, static_cast<NodeId>(n), Ticker{&q, &log, n, 3 + n, 50});
  }
  q.run_all();
  ASSERT_EQ(log.size(), 200u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].first, log[i].first);
  }
  EXPECT_GT(q.shard_switches(), 0u);
}

// One delivery observation, bit-exact comparable across runs.
using RxRecord = std::tuple<SimTime, std::uint64_t, NodeId, NodeId, RailId, std::size_t>;

std::vector<RxRecord> run_routed_world(bool sharded) {
  fabric::FabricConfig cfg;
  cfg.node_count = 16;
  cfg.rails = {fabric::seastar_torus(), fabric::qsnet2()};
  cfg.net = TopologySpec::torus(4, 4);
  cfg.event_sharding = sharded;
  cfg.fault_seed = 42;  // fixed seed: the replay must be bit-identical
  // A little data-plane chaos so the log is not trivially ordered.
  fabric::FabricConfig::RailFault f;
  f.rail = 0;
  f.spec.kind = fabric::FaultKind::kReorder;
  f.spec.rate = 0.2;
  f.spec.reorder_window = 3;
  cfg.faults.push_back(f);

  fabric::Fabric fab(std::move(cfg));
  std::vector<RxRecord> log;
  for (NodeId n = 0; n < 16; ++n) {
    fab.set_rx_handler(n, [&log, &fab, n](fabric::Segment&& seg) {
      log.emplace_back(fab.now(), seg.msg_id, seg.src, n, seg.rail,
                       seg.payload.size());
    });
  }
  std::uint64_t msg_id = 1;
  for (int round = 0; round < 3; ++round) {
    for (NodeId src = 0; src < 16; ++src) {
      for (std::uint32_t k = 1; k <= 5; k += 2) {
        fabric::Segment seg;
        seg.kind = fabric::SegKind::kEager;
        seg.src = src;
        seg.dst = (src + k + round) % 16;
        if (seg.dst == src) continue;
        seg.rail = static_cast<RailId>(k % 2);
        seg.msg_id = msg_id++;
        seg.payload.assign(64 + 512 * (round + 1), static_cast<std::uint8_t>(src));
        fab.nic(src, seg.rail).post(std::move(seg), fab.now());
      }
    }
    fab.events().run_all();
  }
  EXPECT_GT(fab.forwarded_segments(), 0u);  // routes really were multi-hop
  EXPECT_EQ(fab.events().handler_spills(), 0u);
  if (sharded) {
    EXPECT_EQ(fab.events().shard_count(), 16u);
    EXPECT_GT(fab.events().horizon(), 0);
  }
  return log;
}

TEST(ShardedQueue, BitIdenticalReplayAgainstSingleQueue) {
  const std::vector<RxRecord> single = run_routed_world(false);
  const std::vector<RxRecord> sharded = run_routed_world(true);
  ASSERT_FALSE(single.empty());
  EXPECT_EQ(single, sharded);
}

TEST(RoutedFabric, ExtraPathLatencyMatchesHopCount) {
  fabric::FabricConfig cfg;
  cfg.node_count = 16;
  cfg.rails = {fabric::seastar_torus()};
  cfg.net = TopologySpec::mesh(4, 4);
  fabric::Fabric fab(std::move(cfg));
  // 0 -> 15 crosses 6 links on the 4x4 mesh: 5 beyond the NIC's own hop.
  EXPECT_EQ(fab.path_hops(0, 15), 6u);
  EXPECT_EQ(fab.extra_path_latency(0, 15, 0),
            5 * usec(fabric::seastar_torus().wire_latency_us));
  EXPECT_EQ(fab.path_hops(0, 1), 1u);
  EXPECT_EQ(fab.extra_path_latency(0, 1, 0), 0);
}

TEST(RoutedFabric, FarDeliveriesArriveLaterThanNear) {
  const auto one_way = [](NodeId dst) {
    fabric::FabricConfig cfg;
    cfg.node_count = 16;
    cfg.rails = {fabric::seastar_torus()};
    cfg.net = TopologySpec::mesh(4, 4);
    fabric::Fabric fab(std::move(cfg));
    SimTime arrival = 0;
    for (NodeId n = 0; n < 16; ++n) {
      fab.set_rx_handler(n, [&arrival, &fab](fabric::Segment&&) { arrival = fab.now(); });
    }
    fabric::Segment seg;
    seg.kind = fabric::SegKind::kEager;
    seg.src = 0;
    seg.dst = dst;
    seg.payload.assign(256, 0xab);
    fab.nic(0, 0).post(std::move(seg), fab.now());
    fab.events().run_all();
    return arrival;
  };
  const SimTime near = one_way(1);    // 1 hop
  const SimTime far = one_way(15);    // 6 hops
  ASSERT_GT(near, 0);
  // Cut-through: exactly the 5 extra link latencies, serialization unpaid.
  EXPECT_EQ(far - near, 5 * usec(fabric::seastar_torus().wire_latency_us));
}

}  // namespace
