// Online profile drift detection and adaptive recalibration.
//
// Unit level: the trust state machine (demotion, correction, hysteresis,
// escalation, the re-sampling protocol) driven with hand-fed residuals.
// Strategy level: trust penalties and the iso fallback through a hand-built
// StrategyContext. System level: a degrade fault on a live World fires the
// detector, and a background sweep restores near-fresh bandwidth where a
// disabled run reproduces the stale decay.
#include <gtest/gtest.h>

#include <vector>

#include "core/world.hpp"
#include "fabric/fault.hpp"
#include "fabric/presets.hpp"
#include "sampling/recalibration.hpp"

namespace rails::core {
namespace {

using sampling::RecalibrationConfig;
using sampling::Recalibrator;
using sampling::TrustState;

sampling::Estimator make_estimator() {
  return sampling::Estimator(
      sampling::sample_rails({fabric::myri10g(), fabric::qsnet2()}, {}));
}

/// Small-window config so unit tests converge in a handful of residuals.
RecalibrationConfig unit_config() {
  RecalibrationConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 3;
  cfg.drift_patience = 3;
  cfg.recover_patience = 3;
  cfg.window = 8;
  cfg.correction_holdoff = 0;
  return cfg;
}

/// Feeds `n` residuals with a fixed signed relative bias; `now` advances
/// 1 ms per observation so holdoffs and rate limits are never the variable
/// under test unless a case wants them to be.
Recalibrator::Outcome feed(Recalibrator& recal, RailId rail, double bias, int n,
                           SimTime& now) {
  Recalibrator::Outcome last;
  for (int i = 0; i < n; ++i) {
    const SimDuration actual = 30'000;
    const auto predicted = static_cast<SimDuration>(
        static_cast<double>(actual) * (1.0 - bias));
    last = recal.observe(rail, predicted, actual, now);
    now += 1'000'000;
  }
  return last;
}

TEST(Recalibration, StartsTrustedWithIdentityScale) {
  auto est = make_estimator();
  Recalibrator recal(&est, unit_config());
  ASSERT_EQ(recal.rail_count(), 2u);
  for (RailId r = 0; r < 2; ++r) {
    EXPECT_EQ(recal.trust(r), TrustState::kTrusted);
    EXPECT_FALSE(recal.compromised(r));
    EXPECT_DOUBLE_EQ(recal.cost_penalty(r), 1.0);
    EXPECT_DOUBLE_EQ(recal.scale(r), 1.0);
    EXPECT_DOUBLE_EQ(recal.drift_score(r), 0.0);
  }
  EXPECT_STREQ(to_string(TrustState::kTrusted), "TRUSTED");
  EXPECT_STREQ(to_string(TrustState::kSuspect), "SUSPECT");
  EXPECT_STREQ(to_string(TrustState::kUntrusted), "UNTRUSTED");
  EXPECT_STREQ(to_string(TrustState::kResampling), "RESAMPLING");
}

TEST(Recalibration, DisabledConfigObservesWithoutVerdicts) {
  auto est = make_estimator();
  RecalibrationConfig cfg = unit_config();
  cfg.enabled = false;
  Recalibrator recal(&est, cfg);
  SimTime now = 0;
  feed(recal, 0, 0.75, 40, now);
  EXPECT_EQ(recal.trust(0), TrustState::kTrusted);
  EXPECT_EQ(recal.stats().corrections, 0u);
  EXPECT_EQ(recal.stats().demotions, 0u);
}

TEST(Recalibration, SustainedDriftDemotesAndScaleCorrects) {
  auto est = make_estimator();
  Recalibrator recal(&est, unit_config());
  const SimDuration pristine = est.profile(0).rdv_chunk.estimate(1_MiB);

  // actual = 3x predicted: bias 2/3, well past the drift threshold.
  SimTime now = 0;
  feed(recal, 0, 2.0 / 3.0, 8, now);

  EXPECT_EQ(recal.trust(0), TrustState::kSuspect);
  EXPECT_EQ(recal.stats().demotions, 1u);
  EXPECT_EQ(recal.stats().corrections, 1u);
  // scale = 1 / (1 - 2/3) = 3: the corrected tables predict 3x the time.
  EXPECT_NEAR(recal.scale(0), 3.0, 0.05);
  EXPECT_NEAR(static_cast<double>(est.profile(0).rdv_chunk.estimate(1_MiB)),
              3.0 * static_cast<double>(pristine), 0.05 * 3.0 * static_cast<double>(pristine));
  // The untouched rail is unaffected.
  EXPECT_EQ(recal.trust(1), TrustState::kTrusted);
  EXPECT_DOUBLE_EQ(recal.scale(1), 1.0);
}

TEST(Recalibration, InBandResidualsPromoteBackToTrusted) {
  auto est = make_estimator();
  Recalibrator recal(&est, unit_config());
  SimTime now = 0;
  feed(recal, 0, 2.0 / 3.0, 8, now);
  ASSERT_EQ(recal.trust(0), TrustState::kSuspect);
  EXPECT_DOUBLE_EQ(recal.cost_penalty(0), unit_config().suspect_penalty);

  // Corrected predictions now land on target: bias 0 re-earns trust.
  feed(recal, 0, 0.0, 10, now);
  EXPECT_EQ(recal.trust(0), TrustState::kTrusted);
  EXPECT_GE(recal.stats().promotions, 1u);
  EXPECT_DOUBLE_EQ(recal.cost_penalty(0), 1.0);
  EXPECT_LT(recal.drift_score(0), unit_config().recover_threshold);
}

TEST(Recalibration, DeadBandResidualsNeverFlipTheState) {
  auto est = make_estimator();
  Recalibrator recal(&est, unit_config());
  // 0.18 sits between recover (0.10) and drift (0.25): pure hysteresis.
  SimTime now = 0;
  feed(recal, 0, 0.18, 60, now);
  EXPECT_EQ(recal.trust(0), TrustState::kTrusted);
  EXPECT_EQ(recal.stats().demotions, 0u);
  EXPECT_EQ(recal.stats().corrections, 0u);
}

TEST(Recalibration, TransientFlapsNeverReachPatience) {
  auto est = make_estimator();
  RecalibrationConfig cfg = unit_config();
  cfg.ewma_alpha = 1.0;  // ewma == latest bias: the flap hits the detector raw
  Recalibrator recal(&est, cfg);
  // Two drifting residuals, then one clean one, repeatedly: the drift streak
  // resets before the patience of 3 is ever met.
  SimTime now = 0;
  for (int round = 0; round < 20; ++round) {
    feed(recal, 0, 0.6, 2, now);
    feed(recal, 0, 0.0, 1, now);
  }
  EXPECT_EQ(recal.trust(0), TrustState::kTrusted);
  EXPECT_EQ(recal.stats().demotions, 0u);
}

TEST(Recalibration, PersistentDriftEscalatesToUntrustedAndRequestsSweep) {
  auto est = make_estimator();
  Recalibrator recal(&est, unit_config());  // max_corrections = 2
  // The bias survives every correction (as if the curve's shape changed, not
  // its scale — the unit test controls the residuals directly).
  SimTime now = 0;
  Recalibrator::Outcome last;
  for (int i = 0; i < 40 && recal.trust(0) != TrustState::kUntrusted; ++i) {
    last = feed(recal, 0, 2.0 / 3.0, 1, now);
  }
  EXPECT_EQ(recal.trust(0), TrustState::kUntrusted);
  EXPECT_TRUE(last.resample_requested);
  EXPECT_TRUE(recal.compromised(0));
  EXPECT_EQ(recal.stats().corrections, 2u);
  EXPECT_GE(recal.stats().demotions, 2u);  // TRUSTED->SUSPECT, SUSPECT->UNTRUSTED
  EXPECT_TRUE(recal.resample_due(0, now));
}

TEST(Recalibration, ResampleProtocolRateLimitsAndSpendsBudget) {
  auto est = make_estimator();
  RecalibrationConfig cfg = unit_config();
  cfg.resample_budget = 2;
  Recalibrator recal(&est, cfg);
  const sampling::RailProfile fresh = est.profile(0);

  recal.force_resample(0);
  EXPECT_TRUE(recal.resample_due(0, 0));
  EXPECT_EQ(recal.earliest_resample(0), 0);

  recal.begin_resample(0, 0);
  EXPECT_EQ(recal.trust(0), TrustState::kResampling);
  EXPECT_TRUE(recal.compromised(0));
  EXPECT_EQ(recal.resample_budget_left(), 1u);
  EXPECT_FALSE(recal.resample_due(0, 0));  // sweep already in flight

  recal.complete_resample(0, fresh, 0);
  EXPECT_EQ(recal.trust(0), TrustState::kSuspect);  // trust is re-earned
  EXPECT_EQ(recal.stats().resamples, 1u);

  // Wanting another sweep immediately is rate-limited by the interval...
  recal.force_resample(0);
  EXPECT_FALSE(recal.resample_due(0, 0));
  EXPECT_EQ(recal.earliest_resample(0), cfg.resample_interval);
  // ...and due again once the interval has passed.
  EXPECT_TRUE(recal.resample_due(0, cfg.resample_interval));

  // Spending the last budget slot closes the protocol for good.
  recal.begin_resample(0, cfg.resample_interval);
  recal.complete_resample(0, fresh, cfg.resample_interval);
  EXPECT_EQ(recal.resample_budget_left(), 0u);
  recal.force_resample(0);
  EXPECT_FALSE(recal.resample_due(0, 10 * cfg.resample_interval));
}

TEST(Recalibration, CompleteResampleInstallsFreshBaseAndResetsScale) {
  auto est = make_estimator();
  Recalibrator recal(&est, unit_config());
  SimTime now = 0;
  feed(recal, 0, 2.0 / 3.0, 8, now);  // corrected: scale ~3
  ASSERT_GT(recal.scale(0), 2.0);

  sampling::RailProfile fresh = est.base_profile(0);
  const SimDuration fresh_estimate = fresh.rdv_chunk.estimate(1_MiB);
  recal.force_resample(0);
  recal.begin_resample(0, now);
  recal.complete_resample(0, fresh, now);

  EXPECT_DOUBLE_EQ(recal.scale(0), 1.0);
  EXPECT_EQ(est.profile(0).rdv_chunk.estimate(1_MiB), fresh_estimate);
  EXPECT_EQ(recal.trust(0), TrustState::kSuspect);
}

TEST(Recalibration, StatusLineNamesTheState) {
  auto est = make_estimator();
  Recalibrator recal(&est, unit_config());
  SimTime now = 0;
  feed(recal, 0, 2.0 / 3.0, 8, now);
  const std::string line = recal.status(0);
  EXPECT_NE(line.find("SUSPECT"), std::string::npos);
  EXPECT_NE(line.find("corrections 1"), std::string::npos);
  EXPECT_NE(recal.status(1).find("TRUSTED"), std::string::npos);
}

// -- strategy consumption of trust ------------------------------------------

/// DecisionHarness-style fixture: a real World provides estimator and NIC
/// state; trust inputs are injected by hand.
class TrustDecisionTest : public ::testing::Test {
 protected:
  TrustDecisionTest() : world_(paper_testbed("hetero-split")) {}

  StrategyContext ctx() {
    StrategyContext c;
    c.now = world_.fabric().now();
    c.estimator = &world_.estimator();
    nics_ = {&world_.fabric().nic(0, 0), &world_.fabric().nic(0, 1)};
    c.nics = std::span<fabric::SimNic* const>(nics_.data(), nics_.size());
    c.cores = &world_.fabric().cores(0);
    c.config = &world_.engine(0).config();
    c.trust_penalty = std::span<const double>(penalty_.data(), penalty_.size());
    c.trust_compromised = compromised_;
    return c;
  }

  core::World world_;
  std::vector<fabric::SimNic*> nics_;
  std::vector<double> penalty_ = {1.0, 1.0};
  bool compromised_ = false;
};

TEST_F(TrustDecisionTest, CompromisedTrustForcesIsoFallback) {
  HeteroSplit hetero;
  IsoSplit iso;
  const auto knowing = hetero.plan_rendezvous(ctx(), 4_MiB);
  compromised_ = true;
  const auto fallback = hetero.plan_rendezvous(ctx(), 4_MiB);
  const auto iso_plan = iso.plan_rendezvous(ctx(), 4_MiB);

  // With trusted knowledge the split is skewed; compromised, it degrades to
  // exactly the knowledge-free iso plan.
  ASSERT_EQ(knowing.chunks.size(), 2u);
  EXPECT_NE(knowing.chunks[0].bytes, knowing.chunks[1].bytes);
  ASSERT_EQ(fallback.chunks.size(), iso_plan.chunks.size());
  for (std::size_t i = 0; i < fallback.chunks.size(); ++i) {
    EXPECT_EQ(fallback.chunks[i].rail, iso_plan.chunks[i].rail);
    EXPECT_EQ(fallback.chunks[i].bytes, iso_plan.chunks[i].bytes);
  }
}

TEST_F(TrustDecisionTest, SuspectPenaltyShiftsBytesOffTheRail) {
  HeteroSplit hetero;
  const auto trusted = hetero.plan_rendezvous(ctx(), 4_MiB);
  penalty_ = {4.0, 1.0};  // rail 0 SUSPECT with an exaggerated penalty
  const auto penalized = hetero.plan_rendezvous(ctx(), 4_MiB);

  ASSERT_EQ(trusted.chunks.size(), 2u);
  ASSERT_EQ(penalized.chunks.size(), 2u);
  std::size_t trusted_r0 = 0, penalized_r0 = 0;
  for (const auto& c : trusted.chunks) {
    if (c.rail == 0) trusted_r0 += c.bytes;
  }
  for (const auto& c : penalized.chunks) {
    if (c.rail == 0) penalized_r0 += c.bytes;
  }
  EXPECT_LT(penalized_r0, trusted_r0);
}

// -- system level -----------------------------------------------------------

/// Profiles matching a Myri-10G rail that is `scale` times slower (what a
/// full re-sample on the degraded network would return).
std::vector<sampling::RailProfile> degraded_profiles(double scale) {
  fabric::NetworkModelParams myri = fabric::myri10g();
  myri.pio_bw_mbps /= scale;
  myri.pio_bw_large_mbps /= scale;
  myri.dma_bw_mbps /= scale;
  myri.post_us *= scale;
  myri.wire_latency_us *= scale;
  myri.rdv_handshake_us *= scale;
  myri.dma_setup_us *= scale;
  myri.per_packet_us *= scale;
  return sampling::sample_rails({myri, fabric::qsnet2()}, {});
}

TEST(RecalibrationWorld, DegradeFaultFiresDriftDetection) {
  WorldConfig cfg = paper_testbed("hetero-split");
  cfg.engine.recalibration.enabled = true;
  World world(cfg);
  fabric::FaultSpec slow;
  slow.kind = fabric::FaultKind::kDegrade;
  slow.at = 0;
  slow.duration = 0;  // forever
  slow.factor = 3.0;
  world.fabric().nic(0, 0).inject_fault(slow);

  for (int i = 0; i < 15; ++i) world.measure_one_way(4_MiB);

  const auto& stats = world.engine(0).stats();
  EXPECT_GE(stats.trust_demotions, 1u);
  EXPECT_GE(stats.recal_corrections, 1u);
  ASSERT_NE(world.recalibrator(), nullptr);
  // A 3x degrade should correct to roughly a 3x scale.
  EXPECT_GT(world.recalibrator()->scale(0), 2.0);
  EXPECT_LT(world.recalibrator()->scale(0), 5.0);
  // The healthy rail keeps its identity scale and its trust.
  EXPECT_DOUBLE_EQ(world.recalibrator()->scale(1), 1.0);
  EXPECT_EQ(world.recalibrator()->trust(1), TrustState::kTrusted);
}

TEST(RecalibrationWorld, AdaptiveRunRecoversWhereDisabledRunDecays) {
  const auto pristine =
      sampling::sample_rails({fabric::myri10g(), fabric::qsnet2()}, {});
  const double kScale = 4.0;

  // Fresh optimum: profiles that already describe the degraded network.
  auto fresh_bw = [&] {
    WorldConfig cfg = paper_testbed("hetero-split");
    cfg.profile_override = degraded_profiles(kScale);
    World world(cfg);
    world.fabric().nic(0, 0).set_perf_scale(kScale);
    world.fabric().nic(1, 0).set_perf_scale(kScale);
    return mbps(4_MiB, world.measure_one_way(4_MiB));
  }();

  // Stale knowledge with recalibration off: today's decay.
  auto stale_bw = [&] {
    WorldConfig cfg = paper_testbed("hetero-split");
    cfg.profile_override = pristine;
    World world(cfg);
    world.fabric().nic(0, 0).set_perf_scale(kScale);
    world.fabric().nic(1, 0).set_perf_scale(kScale);
    for (int i = 0; i < 10; ++i) world.measure_one_way(4_MiB);
    return mbps(4_MiB, world.measure_one_way(4_MiB));
  }();

  // Stale knowledge with the recalibrator on, including a forced background
  // sweep so the full resample path (not just scale correction) runs.
  WorldConfig cfg = paper_testbed("hetero-split");
  cfg.profile_override = pristine;
  cfg.engine.recalibration.enabled = true;
  World world(cfg);
  world.fabric().nic(0, 0).set_perf_scale(kScale);
  world.fabric().nic(1, 0).set_perf_scale(kScale);
  for (int i = 0; i < 2; ++i) world.measure_one_way(4_MiB);
  world.engine(0).force_recalibrate(0);
  for (int i = 0; i < 28; ++i) world.measure_one_way(4_MiB);
  const double adaptive_bw = mbps(4_MiB, world.measure_one_way(4_MiB));

  EXPECT_GE(world.engine(0).stats().recal_resamples, 1u);
  EXPECT_GE(adaptive_bw, 0.9 * fresh_bw);
  EXPECT_LT(stale_bw, 0.9 * fresh_bw);  // the decay the adaptive run escapes
}

TEST(RecalibrationWorld, PreviewResampleSeesTheLivePerfScale) {
  World world(paper_testbed("hetero-split"));
  const sampling::RailProfile& pristine = world.estimator().profile(0);
  world.fabric().nic(0, 0).set_perf_scale(2.0);

  sampling::SamplerConfig sweep;
  sweep.min_size = 1024;
  sweep.max_size = 2_MiB;
  const sampling::RailProfile rp = sampling::resample_rail_via_preview(
      world.fabric().nic(0, 0), world.now(), sweep);

  EXPECT_EQ(rp.name, pristine.name);
  const auto measured = static_cast<double>(rp.rdv_chunk.estimate(1_MiB));
  const auto base = static_cast<double>(pristine.rdv_chunk.estimate(1_MiB));
  EXPECT_NEAR(measured, 2.0 * base, 0.1 * 2.0 * base);
  // Eager previews scale too, and the threshold stays a sane size.
  EXPECT_GT(rp.eager.estimate(16_KiB), pristine.eager.estimate(16_KiB));
  EXPECT_GT(rp.rdv_threshold, 0u);
  EXPECT_LE(rp.rdv_threshold, rp.max_eager);
}

}  // namespace
}  // namespace rails::core
