#include "sampling/estimator.hpp"

#include <gtest/gtest.h>

#include "fabric/presets.hpp"

namespace rails::sampling {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  static Estimator make() {
    SamplerConfig cfg;
    cfg.max_size = 2_MiB;
    return Estimator(sample_rails({fabric::myri10g(), fabric::qsnet2()}, cfg));
  }
};

TEST_F(EstimatorTest, RailCountAndProfiles) {
  const auto est = make();
  EXPECT_EQ(est.rail_count(), 2u);
  EXPECT_EQ(est.profile(0).name, "myri10g");
  EXPECT_EQ(est.profile(1).name, "qsnet2");
}

TEST_F(EstimatorTest, ProtocolSelection) {
  const auto est = make();
  for (RailId r = 0; r < 2; ++r) {
    EXPECT_EQ(est.protocol_for(r, 64), fabric::Protocol::kEager);
    EXPECT_EQ(est.protocol_for(r, 1_MiB), fabric::Protocol::kRendezvous);
  }
}

TEST_F(EstimatorTest, ProtocolExactlyAtThresholdStaysEager) {
  // Regression: protocol_for used `>=` while the engine compares with `>`,
  // so a message of exactly rdv_threshold bytes was predicted rendezvous
  // but sent eager. Both sides now treat the threshold itself as eager.
  const auto est = make();
  for (RailId r = 0; r < 2; ++r) {
    const std::size_t th = est.profile(r).rdv_threshold;
    ASSERT_GT(th, 0u);
    if (th <= est.profile(r).max_eager) {
      EXPECT_EQ(est.protocol_for(r, th), fabric::Protocol::kEager) << "rail " << r;
    }
    EXPECT_EQ(est.protocol_for(r, th + 1), fabric::Protocol::kRendezvous)
        << "rail " << r;
  }
}

TEST_F(EstimatorTest, EngineThresholdIsMaxOfRails) {
  const auto est = make();
  const std::size_t th = est.engine_rdv_threshold();
  EXPECT_EQ(th, std::max(est.profile(0).rdv_threshold, est.profile(1).rdv_threshold));
}

TEST_F(EstimatorTest, CompletionAddsBusyOffset) {
  const auto est = make();
  const SimTime now = 1000;
  const RailState idle{0, 0};
  const RailState busy{0, now + usec(50.0)};
  const SimTime t_idle = est.completion(idle, now, 4_KiB, fabric::Protocol::kEager);
  const SimTime t_busy = est.completion(busy, now, 4_KiB, fabric::Protocol::kEager);
  // "the time remaining before it becomes idle is added to its predicted
  // transfer time."
  EXPECT_EQ(t_busy - t_idle, usec(50.0));
}

TEST_F(EstimatorTest, CompletionIgnoresStaleBusyTimes) {
  const auto est = make();
  const SimTime now = usec(100.0);
  const RailState stale{0, usec(10.0)};  // freed long ago
  const RailState fresh{0, 0};
  EXPECT_EQ(est.completion(stale, now, 1_KiB, fabric::Protocol::kEager),
            est.completion(fresh, now, 1_KiB, fabric::Protocol::kEager));
}

TEST_F(EstimatorTest, MaxChunkByZeroWhenDeadlineBeforeReady) {
  const auto est = make();
  const RailState busy{0, usec(100.0)};
  EXPECT_EQ(est.max_chunk_by(busy, 0, usec(50.0), fabric::Protocol::kRendezvous), 0u);
  // Deadline equal to the ready time leaves no room either.
  EXPECT_EQ(est.max_chunk_by(busy, 0, usec(100.0), fabric::Protocol::kRendezvous), 0u);
}

TEST_F(EstimatorTest, MaxChunkByGrowsWithDeadline) {
  const auto est = make();
  const RailState idle{0, 0};
  const std::size_t small =
      est.max_chunk_by(idle, 0, usec(100.0), fabric::Protocol::kRendezvous);
  const std::size_t large =
      est.max_chunk_by(idle, 0, usec(1000.0), fabric::Protocol::kRendezvous);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0u);
}

TEST_F(EstimatorTest, ChunkDurationExcludesHandshake) {
  const auto est = make();
  EXPECT_LT(est.chunk_duration(0, 1_MiB),
            est.duration(0, 1_MiB, fabric::Protocol::kRendezvous));
}

TEST_F(EstimatorTest, EagerHostTimeBelowTotal) {
  const auto est = make();
  for (std::size_t s = 64; s <= 32_KiB; s <<= 2) {
    EXPECT_LT(est.eager_host_time(0, s), est.duration(0, s, fabric::Protocol::kEager));
    EXPECT_GT(est.eager_host_time(0, s), 0);
  }
}

// -- scaled profiles (runtime recalibration) --------------------------------

TEST_F(EstimatorTest, ScaledProfileKeepsDeadlineEdgeCases) {
  auto est = make();
  est.set_profile_scale(0, 3.0);
  // A deadline at or before the rail's ready time still yields zero bytes —
  // scaling the duration tables must not open a negative budget.
  const RailState busy{0, usec(100.0)};
  EXPECT_EQ(est.max_chunk_by(busy, 0, usec(50.0), fabric::Protocol::kRendezvous), 0u);
  EXPECT_EQ(est.max_chunk_by(busy, 0, usec(100.0), fabric::Protocol::kRendezvous), 0u);
  // And with a real budget, the 3x-slower rail fits fewer bytes.
  Estimator pristine = make();
  const std::size_t scaled =
      est.max_chunk_by({0, 0}, 0, usec(1000.0), fabric::Protocol::kRendezvous);
  const std::size_t base =
      pristine.max_chunk_by({0, 0}, 0, usec(1000.0), fabric::Protocol::kRendezvous);
  EXPECT_GT(scaled, 0u);
  EXPECT_LT(scaled, base);
}

TEST_F(EstimatorTest, ScaleCorrectionPreservesChunkMonotonicity) {
  auto est = make();
  est.set_profile_scale(0, 3.0);
  SimDuration prev = 0;
  for (std::size_t s = 4_KiB; s <= 2_MiB; s <<= 1) {
    const SimDuration d = est.chunk_duration(0, s);
    EXPECT_GT(d, prev) << "size " << s;
    prev = d;
  }
  // The scaled curve tracks 3x the pristine one across the range.
  const auto pristine = make();
  for (std::size_t s = 64_KiB; s <= 2_MiB; s <<= 1) {
    const auto scaled = static_cast<double>(est.chunk_duration(0, s));
    const auto base = static_cast<double>(pristine.chunk_duration(0, s));
    EXPECT_NEAR(scaled, 3.0 * base, 0.02 * 3.0 * base) << "size " << s;
  }
}

TEST_F(EstimatorTest, RescalingOneRailLeavesThresholdsStable) {
  auto est = make();
  const std::size_t engine_th = est.engine_rdv_threshold();
  const std::size_t rail_th = est.profile(0).rdv_threshold;
  est.set_profile_scale(0, 4.0);
  // Scale corrections stretch durations uniformly; the eager/rendezvous
  // switch points are sizes and must not move (no protocol flapping while
  // SUSPECT).
  EXPECT_EQ(est.profile(0).rdv_threshold, rail_th);
  EXPECT_EQ(est.engine_rdv_threshold(), engine_th);
  EXPECT_EQ(est.protocol_for(0, 64), fabric::Protocol::kEager);
  EXPECT_EQ(est.protocol_for(0, 1_MiB), fabric::Protocol::kRendezvous);
}

TEST_F(EstimatorTest, ReplaceProfileResetsScaleToIdentity) {
  auto est = make();
  est.set_profile_scale(0, 2.5);
  EXPECT_DOUBLE_EQ(est.profile_scale(0), 2.5);
  RailProfile fresh = est.base_profile(0);
  const SimDuration fresh_estimate = fresh.rdv_chunk.estimate(1_MiB);
  est.replace_profile(0, std::move(fresh));
  EXPECT_DOUBLE_EQ(est.profile_scale(0), 1.0);
  EXPECT_EQ(est.profile(0).rdv_chunk.estimate(1_MiB), fresh_estimate);
  // The other rail's scale is untouched.
  EXPECT_DOUBLE_EQ(est.profile_scale(1), 1.0);
}

}  // namespace
}  // namespace rails::sampling
