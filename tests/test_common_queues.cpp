#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mpmc_queue.hpp"
#include "common/spsc_queue.hpp"

namespace rails {
namespace {

TEST(SpscQueue, PushPopSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, FullRejectsPush) {
  SpscQueue<int> q(4);  // capacity rounds to 4, holds 3
  int pushed = 0;
  while (q.try_push(pushed)) ++pushed;
  EXPECT_EQ(pushed, static_cast<int>(q.capacity()));
  EXPECT_FALSE(q.try_push(99));
  EXPECT_TRUE(q.try_pop().has_value());
  EXPECT_TRUE(q.try_push(99));
}

TEST(SpscQueue, CapacityRoundsToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 7u);  // ring of 8, one slot sacrificed
}

TEST(SpscQueue, WrapAroundPreservesOrder) {
  SpscQueue<int> q(4);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (q.try_push(next_push)) ++next_push;
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, next_pop++);
  }
}

TEST(SpscQueue, TwoThreadStress) {
  SpscQueue<std::uint64_t> q(1024);
  constexpr std::uint64_t kCount = 200'000;
  std::atomic<bool> fail{false};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    auto v = q.try_pop();
    if (!v) {
      std::this_thread::yield();
      continue;
    }
    if (*v != expected) {
      fail.store(true);
      break;
    }
    ++expected;
  }
  producer.join();
  EXPECT_FALSE(fail.load()) << "out-of-order or corrupted element";
  EXPECT_EQ(expected, kCount);
}

TEST(SpscQueue, MoveOnlyElements) {
  SpscQueue<std::unique_ptr<int>> q(8);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(7)));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(SpscQueue, FailedPushDoesNotConsumeTheValue) {
  // Regression: a retry loop `while (!q.try_push(std::move(x)))` must not
  // lose x's contents when the ring is momentarily full.
  SpscQueue<std::vector<int>> q(2);  // capacity 1
  ASSERT_TRUE(q.try_push(std::vector<int>{1}));
  std::vector<int> payload = {4, 5, 6};
  ASSERT_FALSE(q.try_push(std::move(payload)));
  EXPECT_EQ(payload, (std::vector<int>{4, 5, 6})) << "value consumed on failure";
  ASSERT_TRUE(q.try_pop().has_value());
  ASSERT_TRUE(q.try_push(std::move(payload)));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (std::vector<int>{4, 5, 6}));
}

TEST(MpmcQueue, TryPopOnEmpty) {
  MpmcQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(MpmcQueue, FifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcQueue, BlockingPopWakesOnPush) {
  MpmcQueue<int> q;
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(5);
  });
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
  t.join();
}

TEST(MpmcQueue, CloseDrainsThenReturnsNull) {
  MpmcQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_TRUE(q.closed());
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  MpmcQueue<int> q;
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      auto v = q.pop();
      if (!v.has_value()) woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 10'000;
  constexpr int kProducers = 4;
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.pop();
        if (!v.has_value()) return;
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  const long long n = static_cast<long long>(kProducers) * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace rails
