// Tests for the post-reproduction extensions: the patient (delay-tolerant)
// strategy of §II-B, runtime rail degradation, and profile overrides.
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/presets.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

TEST(PatientStrategy, FactoryKnowsIt) {
  auto s = make_strategy("patient-aggregate");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "patient-aggregate");
}

TEST(PatientStrategy, WaitsForTheBetterBusyRail) {
  // Make QsNetII busy briefly, then submit a tiny message. QsNetII's 1.7 µs
  // latency beats Myri-10G's 3 µs even after a ~0.5 µs wait, so the patient
  // strategy defers while aggregate-fastest settles for the idle Myri rail.
  auto run = [](const char* strategy) {
    core::World world(paper_testbed(strategy));
    static std::vector<std::uint8_t> warm(256, 1), tiny(16, 2), rx(256);
    // Warm-up message occupies QsNetII (rail 1, the fast-latency rail).
    auto warm_recv = world.engine(1).irecv(0, 1, rx.data(), warm.size());
    world.engine(0).isend(1, 1, warm.data(), warm.size());
    // Submit the measured message 0.6 µs before rail 1 frees up: the wait
    // is shorter than the ~1.3 µs latency gap to Myri-10G, so waiting wins.
    world.fabric().events().run_until(
        [&] { return !world.fabric().nic(0, 1).idle(world.fabric().now()); });
    world.fabric().events().run_to(world.fabric().nic(0, 1).busy_until() - usec(0.6));
    const SimTime start = world.fabric().now();
    auto recv = world.engine(1).irecv(0, 2, rx.data(), tiny.size());
    world.engine(0).isend(1, 2, tiny.data(), tiny.size());
    world.wait(recv);
    world.wait(warm_recv);
    return std::pair<SimDuration, std::uint64_t>(
        recv->complete_time - start, world.engine(0).stats().payload_bytes_per_rail[0]);
  };
  const auto [patient_time, patient_rail0] = run("patient-aggregate");
  const auto [eager_time, eager_rail0] = run("aggregate-fastest");
  // aggregate-fastest pushed the tiny message onto idle Myri (rail 0);
  // patient waited for QsNetII.
  EXPECT_GT(eager_rail0, patient_rail0);
  EXPECT_LE(patient_time, eager_time);
}

TEST(PatientStrategy, BehavesLikeAggregateWhenAllIdle) {
  core::World patient(paper_testbed("patient-aggregate"));
  core::World eager(paper_testbed("aggregate-fastest"));
  for (std::size_t size : {64ul, 4096ul, 16384ul}) {
    EXPECT_EQ(patient.measure_one_way(size), eager.measure_one_way(size))
        << "size " << size;
  }
}

TEST(BatchSpread, FactoryKnowsIt) {
  auto s = make_strategy("batch-spread");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "batch-spread");
}

TEST(BatchSpread, BurstIntegrityAcrossRails) {
  core::World world(paper_testbed("batch-spread"));
  constexpr unsigned kFlows = 16;
  const std::size_t size = 2_KiB;
  std::vector<std::vector<std::uint8_t>> tx;
  std::vector<std::vector<std::uint8_t>> rx(kFlows, std::vector<std::uint8_t>(size));
  std::vector<RecvHandle> recvs;
  for (unsigned i = 0; i < kFlows; ++i) {
    tx.push_back(test::make_pattern(size, i));
    recvs.push_back(world.engine(1).irecv(0, i, rx[i].data(), size));
  }
  for (unsigned i = 0; i < kFlows; ++i) world.engine(0).isend(1, i, tx[i].data(), size);
  for (auto& r : recvs) world.wait(r);
  for (unsigned i = 0; i < kFlows; ++i) EXPECT_EQ(rx[i], tx[i]) << "flow " << i;

  const auto& stats = world.engine(0).stats();
  // The burst was spread: both rails carried payload, emissions were
  // aggregated, and the remote-core submissions were used.
  EXPECT_GT(stats.payload_bytes_per_rail[0], 0u);
  EXPECT_GT(stats.payload_bytes_per_rail[1], 0u);
  EXPECT_GT(stats.aggregated_packets, 0u);
  EXPECT_GT(stats.offloaded_chunks, 0u);
}

TEST(BatchSpread, RaisesBurstThroughputOverAggregation) {
  core::World spread(paper_testbed("batch-spread"));
  core::World aggregate(paper_testbed("aggregate-fastest"));
  const SimDuration t_spread = spread.measure_one_way_batch(2_KiB, 32);
  const SimDuration t_agg = aggregate.measure_one_way_batch(2_KiB, 32);
  EXPECT_LT(t_spread, t_agg);
}

TEST(BatchSpread, TinyBurstFallsBackToAggregation) {
  core::World spread(paper_testbed("batch-spread"));
  core::World aggregate(paper_testbed("aggregate-fastest"));
  // 64 B messages: the TO signalling dwarfs the copies; predictions send
  // both strategies down the identical aggregation path.
  EXPECT_EQ(spread.measure_one_way_batch(64, 8), aggregate.measure_one_way_batch(64, 8));
}

TEST(BatchSpread, SingleMessageBehavesLikeMulticoreSplit) {
  core::World spread(paper_testbed("batch-spread"));
  core::World multicore(paper_testbed("multicore-hetero-split"));
  EXPECT_EQ(spread.measure_one_way(16_KiB), multicore.measure_one_way(16_KiB));
}

TEST(Degradation, ScalesTransferTimes) {
  fabric::Fabric fab({2, {fabric::myri10g()}});
  SimTime arrival = 0;
  fab.set_rx_handler(1, [&](fabric::Segment&&) { arrival = fab.now(); });
  fabric::Segment seg;
  seg.kind = fabric::SegKind::kEager;
  seg.src = 0;
  seg.dst = 1;
  seg.rail = 0;
  seg.payload.assign(4096, 1);
  fab.nic(0, 0).post(seg, 0);
  fab.events().run_all();
  const SimTime clean = arrival;

  fabric::Fabric fab2({2, {fabric::myri10g()}});
  fab2.set_rx_handler(1, [&](fabric::Segment&&) { arrival = fab2.now(); });
  fab2.nic(0, 0).set_perf_scale(2.0);
  fab2.nic(0, 0).post(std::move(seg), 0);
  fab2.events().run_all();
  EXPECT_EQ(arrival, clean * 2);
}

TEST(Degradation, DefaultScaleIsIdentity) {
  fabric::Fabric fab({2, {fabric::qsnet2()}});
  EXPECT_DOUBLE_EQ(fab.nic(0, 0).perf_scale(), 1.0);
}

TEST(DegradationDeath, RejectsSpeedup) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  fabric::Fabric fab({2, {fabric::qsnet2()}});
  EXPECT_DEATH(fab.nic(0, 0).set_perf_scale(0.5), "scale");
}

TEST(Degradation, EndToEndBandwidthDrops) {
  core::World world(paper_testbed("single-rail:0"));
  const double clean = world.measure_bandwidth(2_MiB, 1);
  world.fabric().nic(0, 0).set_perf_scale(2.0);
  world.fabric().nic(1, 0).set_perf_scale(2.0);
  const double degraded = world.measure_bandwidth(2_MiB, 1);
  EXPECT_NEAR(degraded, clean / 2.0, clean * 0.03);
}

TEST(ProfileOverride, SkipsSamplingAndMatchesSampledRun) {
  const auto profiles =
      sampling::sample_rails({fabric::myri10g(), fabric::qsnet2()}, {});
  core::WorldConfig with_override = paper_testbed("hetero-split");
  with_override.profile_override = profiles;
  core::World a(with_override);
  core::World b(paper_testbed("hetero-split"));
  EXPECT_EQ(a.measure_pingpong(1_MiB, 2), b.measure_pingpong(1_MiB, 2));
  EXPECT_EQ(a.engine(0).rdv_threshold(), b.engine(0).rdv_threshold());
}

TEST(ProfileOverrideDeath, WrongRailCountRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::WorldConfig cfg = paper_testbed("hetero-split");
  cfg.profile_override = sampling::sample_rails({fabric::myri10g()}, {});
  EXPECT_DEATH(core::World world(cfg), "profile override");
}

TEST(ProfileOverride, OnDiskSamplingCacheRoundTrip) {
  // The full deployment workflow: sample once, persist per-rail profiles,
  // reload them in a fresh process (world) and skip startup sampling — the
  // engine must behave identically to a freshly-sampled one.
  const auto profiles =
      sampling::sample_rails({fabric::myri10g(), fabric::qsnet2()}, {});
  std::vector<std::string> paths;
  for (const auto& rp : profiles) {
    paths.push_back(::testing::TempDir() + "/" + rp.name + ".rails-profile");
    rp.save_file(paths.back());
  }

  core::WorldConfig cfg = paper_testbed("hetero-split");
  for (const auto& path : paths) {
    cfg.profile_override.push_back(sampling::RailProfile::load_file(path));
  }
  core::World cached(cfg);
  core::World fresh(paper_testbed("hetero-split"));
  EXPECT_EQ(cached.measure_pingpong(2_MiB, 2), fresh.measure_pingpong(2_MiB, 2));
  EXPECT_EQ(cached.measure_one_way(16_KiB), fresh.measure_one_way(16_KiB));
  for (const auto& path : paths) std::remove(path.c_str());
}

TEST(ProfileOverride, StaleProfilesMisallocate) {
  // The A5 ablation in miniature: degrade Myri-10G 3x at runtime; the stale
  // estimator keeps over-feeding it and loses to re-sampled knowledge.
  const auto pristine =
      sampling::sample_rails({fabric::myri10g(), fabric::qsnet2()}, {});
  fabric::NetworkModelParams slow_myri = fabric::myri10g();
  slow_myri.dma_bw_mbps /= 3.0;
  const auto fresh = sampling::sample_rails({slow_myri, fabric::qsnet2()}, {});

  auto run = [](const std::vector<sampling::RailProfile>& profiles) {
    core::WorldConfig cfg = paper_testbed("hetero-split");
    cfg.profile_override = profiles;
    core::World world(cfg);
    world.fabric().nic(0, 0).set_perf_scale(3.0);
    world.fabric().nic(1, 0).set_perf_scale(3.0);
    return world.measure_one_way(4_MiB);
  };
  EXPECT_GT(run(pristine), run(fresh));
}

}  // namespace
}  // namespace rails::core
