#include "common/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rails {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(7);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(SampleSet, MedianAndPercentiles) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(75.0), 4.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(10.0), 1.0);
}

TEST(SampleSet, SingleSampleEveryPercentile) {
  SampleSet s;
  s.add(7.5);
  for (double p : {0.0, 25.0, 50.0, 99.0, 100.0}) EXPECT_DOUBLE_EQ(s.percentile(p), 7.5);
}

TEST(SampleSet, AddAfterQueryKeepsSorted) {
  SampleSet s;
  s.add(2.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
}

TEST(SampleSet, MeanOfEmptyIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

class PercentileSweep : public ::testing::TestWithParam<int> {};

TEST_P(PercentileSweep, MonotoneInP) {
  Xoshiro256 rng(GetParam());
  SampleSet s;
  for (int i = 0; i < 200; ++i) s.add(rng.uniform());
  double prev = -1.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double v = s.percentile(p);
    EXPECT_GE(v, prev) << "percentile must be monotone in p";
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Xoshiro, DeterministicAcrossInstances) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, RangeBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace rails
