#include "sampling/sampler.hpp"

#include <cstdio>

#include <gtest/gtest.h>

#include "fabric/presets.hpp"

namespace rails::sampling {
namespace {

TEST(SampleSizes, PowersOfTwoLadder) {
  SamplerConfig cfg;
  cfg.min_size = 1;
  cfg.max_size = 16;
  const auto sizes = sample_sizes(cfg);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 4, 8, 16}));
}

TEST(SampleSizes, AlwaysIncludesMax) {
  SamplerConfig cfg;
  cfg.min_size = 1;
  cfg.max_size = 1000;  // not a power of two
  const auto sizes = sample_sizes(cfg);
  EXPECT_EQ(sizes.back(), 1000u);
}

TEST(SampleSizes, FinerGrid) {
  SamplerConfig cfg;
  cfg.min_size = 16;
  cfg.max_size = 64;
  cfg.steps_per_octave = 2;
  const auto sizes = sample_sizes(cfg);
  // 16, ~23, 32, ~45, 64 — strictly increasing, 5 points.
  EXPECT_EQ(sizes.size(), 5u);
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(Sampler, EagerSamplesMatchModelExactly) {
  // The DES is deterministic: a sampled duration equals the model's
  // prediction for that exact size.
  const auto params = fabric::myri10g();
  const fabric::NetworkModel model(params);
  SamplerConfig cfg;
  cfg.max_size = 64_KiB;
  const RailProfile rp = sample_rail(params, cfg);
  for (std::size_t s = 1; s <= params.max_eager; s <<= 1) {
    EXPECT_EQ(rp.eager.estimate(s), model.eager(s).total) << "size " << s;
  }
}

TEST(Sampler, RendezvousSamplesIncludeHandshake) {
  const auto params = fabric::qsnet2();
  const fabric::NetworkModel model(params);
  SamplerConfig cfg;
  cfg.max_size = 1_MiB;
  const RailProfile rp = sample_rail(params, cfg);
  // The measured rendezvous includes the RTS/CTS round: it must exceed the
  // bare chunk duration at every sampled size.
  for (std::size_t s = 1; s <= 1_MiB; s <<= 1) {
    EXPECT_GT(rp.rendezvous.estimate(s), rp.rdv_chunk.estimate(s)) << "size " << s;
  }
  // And at large sizes the total is dominated by the DMA stream.
  EXPECT_NEAR(static_cast<double>(rp.rendezvous.estimate(1_MiB)),
              static_cast<double>(model.rendezvous(1_MiB, true).total),
              static_cast<double>(model.rendezvous(1_MiB, true).total) * 0.05);
}

TEST(Sampler, ThresholdIsEagerRdvCrossover) {
  const auto params = fabric::myri10g();
  SamplerConfig cfg;
  cfg.max_size = 256_KiB;
  const RailProfile rp = sample_rail(params, cfg);
  ASSERT_GT(rp.rdv_threshold, 1u);
  ASSERT_LE(rp.rdv_threshold, params.max_eager);
  // Below the threshold eager wins, at/above rendezvous wins.
  EXPECT_LT(rp.eager.estimate(rp.rdv_threshold / 2),
            rp.rendezvous.estimate(rp.rdv_threshold / 2));
  EXPECT_LE(rp.rendezvous.estimate(rp.rdv_threshold),
            rp.eager.estimate(rp.rdv_threshold));
}

TEST(Sampler, AsymptoticBandwidthMatchesDmaRate) {
  for (const auto& params : {fabric::myri10g(), fabric::qsnet2()}) {
    SamplerConfig cfg;
    cfg.max_size = 8_MiB;
    const RailProfile rp = sample_rail(params, cfg);
    EXPECT_NEAR(rp.rdv_chunk.asymptotic_bandwidth(), params.dma_bw_mbps,
                params.dma_bw_mbps * 0.01)
        << params.name;
  }
}

TEST(Sampler, SampleRailsCoversEveryRail) {
  const auto profiles =
      sample_rails({fabric::myri10g(), fabric::qsnet2(), fabric::gige_tcp()}, {1, 4_KiB, 1, 1});
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "myri10g");
  EXPECT_EQ(profiles[1].name, "qsnet2");
  EXPECT_EQ(profiles[2].name, "gige-tcp");
}

TEST(Sampler, RailProfileFileRoundTrip) {
  const auto params = fabric::qsnet2();
  SamplerConfig cfg;
  cfg.max_size = 64_KiB;
  const RailProfile rp = sample_rail(params, cfg);

  const std::string path = ::testing::TempDir() + "/qsnet2.rails-profile";
  rp.save_file(path);
  const RailProfile loaded = RailProfile::load_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.name, rp.name);
  EXPECT_EQ(loaded.rdv_threshold, rp.rdv_threshold);
  EXPECT_EQ(loaded.max_eager, rp.max_eager);
  ASSERT_EQ(loaded.eager.point_count(), rp.eager.point_count());
  ASSERT_EQ(loaded.rendezvous.point_count(), rp.rendezvous.point_count());
  ASSERT_EQ(loaded.rdv_chunk.point_count(), rp.rdv_chunk.point_count());
  for (std::size_t s = 1; s <= 64_KiB; s <<= 1) {
    EXPECT_EQ(loaded.eager.estimate(s), rp.eager.estimate(s));
    EXPECT_EQ(loaded.rendezvous.estimate(s), rp.rendezvous.estimate(s));
  }
}

TEST(Sampler, RepetitionsAreStableInSimulation) {
  const auto params = fabric::myri10g();
  SamplerConfig one{1, 16_KiB, 1, 1};
  SamplerConfig five{1, 16_KiB, 1, 5};
  const RailProfile a = sample_rail(params, one);
  const RailProfile b = sample_rail(params, five);
  for (std::size_t s = 1; s <= 16_KiB; s <<= 1) {
    EXPECT_EQ(a.eager.estimate(s), b.eager.estimate(s));
  }
}

}  // namespace
}  // namespace rails::sampling
