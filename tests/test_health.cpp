// Health plane unit tests (telemetry/timeseries.hpp, telemetry/slo.hpp):
// the downsampling Series ring, percentile-over-bucket-deltas, the
// HealthSampler's counter differencing, the SLO monitor's multi-window
// burn-rate alerting with hysteresis, and the Scorecard's counter-exact
// collection.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/timeseries.hpp"

namespace rails::telemetry {
namespace {

// -- Series ------------------------------------------------------------------

TEST(Series, RetainsAllPointsUnderCapacity) {
  Series s("x", SeriesAgg::kMean, 8);
  for (int i = 0; i < 8; ++i) s.push(usec(i), static_cast<double>(i));
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.stride(), 1u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s.at(i).time, usec(i));
    EXPECT_DOUBLE_EQ(s.at(i).value, static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.last(), 7.0);
}

TEST(Series, CompactsMeanPairsAndDoublesStride) {
  // Capacity 4: the 5th append merges adjacent pairs in place and doubles
  // the stride; later raw samples fold pairwise into pending points.
  Series s("x", SeriesAgg::kMean, 4);
  for (int i = 1; i <= 8; ++i) s.push(usec(i), static_cast<double>(i));
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.stride(), 2u);
  // (1,2) and (3,4) merged at compaction; 5 appended raw (the compaction
  // happened mid-append); (6,7) folded through the pending point; 8 is
  // still pending. Each stored point keeps its span's start time.
  EXPECT_EQ(s.at(0).time, usec(1));
  EXPECT_DOUBLE_EQ(s.at(0).value, 1.5);
  EXPECT_EQ(s.at(1).time, usec(3));
  EXPECT_DOUBLE_EQ(s.at(1).value, 3.5);
  EXPECT_DOUBLE_EQ(s.at(2).value, 5.0);
  EXPECT_EQ(s.at(3).time, usec(6));
  EXPECT_DOUBLE_EQ(s.at(3).value, 6.5);
  EXPECT_DOUBLE_EQ(s.last(), 8.0);
}

TEST(Series, MaxAndLastAggregation) {
  Series mx("m", SeriesAgg::kMax, 4);
  for (double v : {1.0, 5.0, 2.0, 4.0, 3.0}) mx.push(usec(1), v);
  ASSERT_EQ(mx.size(), 3u);
  EXPECT_DOUBLE_EQ(mx.at(0).value, 5.0);  // max(1, 5)
  EXPECT_DOUBLE_EQ(mx.at(1).value, 4.0);  // max(2, 4)
  EXPECT_DOUBLE_EQ(mx.at(2).value, 3.0);

  Series last("l", SeriesAgg::kLast, 4);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) last.push(usec(1), v);
  ASSERT_EQ(last.size(), 3u);
  EXPECT_DOUBLE_EQ(last.at(0).value, 2.0);  // newer of (1, 2)
  EXPECT_DOUBLE_EQ(last.at(1).value, 4.0);
  EXPECT_DOUBLE_EQ(last.at(2).value, 5.0);
}

TEST(Series, BoundedForever) {
  // However many samples arrive, the buffer never exceeds its capacity and
  // still spans the whole run (first point keeps the earliest time).
  Series s("x", SeriesAgg::kMean, 16);
  for (int i = 0; i < 10'000; ++i) s.push(usec(i), 1.0);
  EXPECT_LE(s.size(), 16u);
  EXPECT_GT(s.stride(), 1u);
  EXPECT_EQ(s.at(0).time, usec(0));
  EXPECT_DOUBLE_EQ(s.at(0).value, 1.0);  // mean of a constant stays exact
}

TEST(Series, WriteJsonShape) {
  Series s("engine.msg_rate", SeriesAgg::kMean, 4);
  s.push(usec(1), 2.5);
  std::ostringstream os;
  s.write_json(os);
  EXPECT_NE(os.str().find("\"name\":\"engine.msg_rate\""), std::string::npos);
  EXPECT_NE(os.str().find("\"agg\":\"mean\""), std::string::npos);
  EXPECT_NE(os.str().find("\"points\":[[1000,2.5]]"), std::string::npos);
}

// -- percentile_from_buckets -------------------------------------------------

TEST(PercentileFromBuckets, EmptyIsZero) {
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 99), 0.0);
}

TEST(PercentileFromBuckets, InterpolatesWithinBucketBounds) {
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
  buckets[Histogram::bucket_index(1000)] = 100;  // all mass in [512, 1023]
  const double p50 = percentile_from_buckets(buckets, 50);
  const double p99 = percentile_from_buckets(buckets, 99);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p99, 1023.0);
  EXPECT_LE(p50, p99);
}

TEST(PercentileFromBuckets, SplitsAcrossBuckets) {
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
  buckets[Histogram::bucket_index(10)] = 10;    // [8, 15]
  buckets[Histogram::bucket_index(1500)] = 10;  // [1024, 2047]
  // p50's target (10 of 20) is fully covered by the low bucket; p99 lands
  // deep in the high one.
  EXPECT_LE(percentile_from_buckets(buckets, 50), 15.0);
  const double p99 = percentile_from_buckets(buckets, 99);
  EXPECT_GE(p99, 1024.0);
  EXPECT_LE(p99, 2047.0);
}

// -- HealthSampler -----------------------------------------------------------

TEST(HealthSampler, DetachedSamplerIsInert) {
  HealthSampler sampler(TimeseriesConfig{});
  sampler.attach(nullptr, {}, 0);
  const auto& ticks = sampler.sample(usec(100));
  EXPECT_TRUE(ticks.empty());
  EXPECT_EQ(sampler.ticks(), 0u);
  EXPECT_EQ(sampler.series_count(), 0u);
}

TEST(HealthSampler, DifferencesCountersIntoRates) {
  MetricsRegistry registry;
  Counter* sends = registry.counter("engine.sends");
  TimeseriesConfig cfg;
  cfg.enabled = true;
  HealthSampler sampler(cfg);
  sampler.attach(&registry, {}, 0);

  sends->inc(10);
  sampler.sample(usec(100));
  const Series* rate = sampler.find("engine.msg_rate");
  ASSERT_NE(rate, nullptr);
  // 10 sends over the first 100 us tick = 100 msgs/ms.
  EXPECT_DOUBLE_EQ(rate->last(), 100.0);

  sends->inc(5);
  sampler.sample(usec(200));
  EXPECT_DOUBLE_EQ(rate->last(), 50.0);  // delta, not cumulative
  EXPECT_EQ(sampler.ticks(), 2u);
}

TEST(HealthSampler, PerClassTicksCarryHitsMissesAndWindowedPercentiles) {
  MetricsRegistry registry;
  Counter* hits = registry.counter("qos.gold.deadline_hits");
  Counter* misses = registry.counter("qos.gold.deadline_misses");
  Histogram* lat = registry.histogram("qos.gold.latency_ns");
  TimeseriesConfig cfg;
  cfg.enabled = true;
  HealthSampler sampler(cfg);
  sampler.attach(&registry, {"gold"}, 0);

  hits->inc(3);
  misses->inc(1);
  for (int i = 0; i < 4; ++i) lat->observe(1'000'000);  // 1 ms
  const auto& ticks = sampler.sample(usec(100));
  ASSERT_EQ(ticks.size(), 1u);
  EXPECT_EQ(ticks[0].hits, 3u);
  EXPECT_EQ(ticks[0].misses, 1u);
  EXPECT_EQ(ticks[0].completions, 4u);
  EXPECT_GT(ticks[0].p99_us, 0.0);

  const Series* hit_rate = sampler.find("qos.gold.hit_rate");
  ASSERT_NE(hit_rate, nullptr);
  EXPECT_DOUBLE_EQ(hit_rate->last(), 0.75);

  // An idle tick reports a healthy 1.0, not an outage.
  const auto& idle = sampler.sample(usec(200));
  EXPECT_EQ(idle[0].hits, 0u);
  EXPECT_DOUBLE_EQ(hit_rate->last(), 1.0);
}

TEST(HealthSampler, WriteJsonOmitsEmptySeries) {
  MetricsRegistry registry;
  registry.counter("engine.sends");
  TimeseriesConfig cfg;
  cfg.enabled = true;
  HealthSampler sampler(cfg);
  sampler.attach(&registry, {}, 0);
  sampler.sample(usec(100));
  std::ostringstream os;
  sampler.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ticks\":1"), std::string::npos);
  EXPECT_NE(json.find("engine.msg_rate"), std::string::npos);
  // perf gauges never resolved (profiler off) — their series stay out.
  EXPECT_EQ(json.find("perf.submit_self"), std::string::npos);
}

// -- SloMonitor --------------------------------------------------------------

SloSpec burn_spec() {
  SloSpec spec;
  spec.cls = "gold";
  spec.hit_rate = 0.99;
  spec.window = usec(1'200);
  spec.fast_window = usec(300);
  return spec;
}

std::vector<ClassTick> one_tick(std::uint64_t hits, std::uint64_t misses) {
  ClassTick tick;
  tick.hits = hits;
  tick.misses = misses;
  return {tick};
}

TEST(SloMonitor, FiresOnSustainedBurnAndClearsWithHysteresis) {
  SloMonitor monitor({burn_spec()});
  monitor.bind({"gold"});

  // 100% miss rate burns the 1% budget at 100x — but the fast window must
  // first accumulate min_events (8) deadline-tagged completions.
  std::vector<AlertEvent> events = monitor.observe(usec(100), one_tick(0, 4));
  EXPECT_TRUE(events.empty());
  events = monitor.observe(usec(200), one_tick(0, 4));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].firing);
  EXPECT_EQ(events[0].name, "gold.hit_rate");
  EXPECT_TRUE(monitor.any_firing());
  EXPECT_EQ(monitor.alerts_fired(), 1u);
  EXPECT_NE(events[0].detail.find("burning error budget"), std::string::npos);

  // Healthy ticks: the alert clears only after clear_patience (3)
  // consecutive healthy evaluations — and only once the misses have aged
  // out of the fast window.
  bool cleared = false;
  SimTime t = usec(200);
  for (int i = 0; i < 20 && !cleared; ++i) {
    t += usec(100);
    for (const AlertEvent& ev : monitor.observe(t, one_tick(50, 0))) {
      if (!ev.firing) cleared = true;
    }
  }
  EXPECT_TRUE(cleared);
  EXPECT_FALSE(monitor.any_firing());
  EXPECT_EQ(monitor.alerts_fired(), 1u);  // fired once, recovered once
}

TEST(SloMonitor, MinEventsGuardsIdleClasses) {
  SloMonitor monitor({burn_spec()});
  monitor.bind({"gold"});
  // Every tagged send misses, but the fast window never sees min_events
  // completions — a trickle is not an outage.
  SimTime t = 0;
  for (int i = 0; i < 12; ++i) {
    t += usec(150);
    EXPECT_TRUE(monitor.observe(t, one_tick(0, 1)).empty());
  }
  EXPECT_FALSE(monitor.any_firing());
  EXPECT_EQ(monitor.alerts_fired(), 0u);
}

TEST(SloMonitor, LatencyObjectiveFiresOnWindowedP99) {
  SloSpec spec;
  spec.cls = "gold";
  spec.p99_us = 100;  // fire when the windowed p99 exceeds 100 us
  spec.window = usec(1'200);
  spec.fast_window = usec(300);
  SloMonitor monitor({spec});
  monitor.bind({"gold"});

  ClassTick slow_tick;
  slow_tick.completions = 10;
  slow_tick.buckets[Histogram::bucket_index(300'000)] = 10;  // ~300 us
  const std::vector<AlertEvent> events = monitor.observe(usec(100), {slow_tick});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].firing);
  EXPECT_EQ(events[0].name, "gold.p99");
}

TEST(SloMonitor, UnboundSpecNeverEvaluates) {
  SloSpec spec = burn_spec();
  spec.cls = "platinum";  // no such class
  SloMonitor monitor({spec});
  monitor.bind({"gold"});
  for (int i = 1; i <= 10; ++i) {
    EXPECT_TRUE(monitor.observe(usec(100 * i), one_tick(0, 100)).empty());
  }
  EXPECT_FALSE(monitor.any_firing());
}

TEST(SloMonitor, OneSpecYieldsHitRateAndLatencyObjectives) {
  SloSpec spec = burn_spec();
  spec.p99_us = 500;
  SloMonitor monitor({spec});
  ASSERT_EQ(monitor.alerts().size(), 2u);
  EXPECT_EQ(monitor.alerts()[0].name, "gold.hit_rate");
  EXPECT_EQ(monitor.alerts()[1].name, "gold.p99");
  std::ostringstream os;
  monitor.write_json(os);
  EXPECT_NE(os.str().find("\"name\":\"gold.p99\""), std::string::npos);
}

// -- Scorecard ---------------------------------------------------------------

TEST(Scorecard, CollectIsTheCounters) {
  MetricsRegistry registry;
  registry.counter("qos.gold.granted")->inc(5);
  registry.counter("qos.gold.granted_bytes")->inc(6000);
  registry.counter("qos.gold.deadline_hits")->inc(4);
  registry.counter("qos.gold.deadline_misses")->inc(1);
  registry.counter("qos.gold.rejected_full")->inc(2);
  registry.counter("qos.gold.admission_rejects")->inc(3);
  registry.counter("qos.silver.granted_bytes")->inc(2000);

  const std::vector<ScorecardRow> rows =
      Scorecard::collect(registry, {"gold", "silver"});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].granted, 5u);
  EXPECT_EQ(rows[0].granted_bytes, 6000u);
  EXPECT_EQ(rows[0].deadline_hits, 4u);
  EXPECT_EQ(rows[0].deadline_misses, 1u);
  EXPECT_EQ(rows[0].shed, 2u);
  EXPECT_EQ(rows[0].rejects, 3u);
  EXPECT_DOUBLE_EQ(rows[0].hit_rate, 0.8);
  EXPECT_DOUBLE_EQ(rows[0].goodput_share, 0.75);
  // Deadline-free silver reads as perfectly healthy, never divides by zero.
  EXPECT_DOUBLE_EQ(rows[1].hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(rows[1].goodput_share, 0.25);

  std::ostringstream os;
  Scorecard::write_json(os, rows);
  EXPECT_NE(os.str().find("\"class\":\"gold\""), std::string::npos);
  std::ostringstream table;
  Scorecard::render(table, rows);
  EXPECT_NE(table.str().find("gold"), std::string::npos);
}

}  // namespace
}  // namespace rails::telemetry
