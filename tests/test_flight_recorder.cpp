// Flight recorder: lock-free ring semantics, postmortem bundle round trip,
// rate limiting, the CHECK-failure hook, and — under TSan in CI — genuinely
// concurrent producers on worker-pool threads (the *Concurrent* tests).
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/minijson.hpp"
#include "core/world.hpp"
#include "fabric/fault.hpp"
#include "rt/worker_pool.hpp"
#include "telemetry/metrics.hpp"
#include "threaded/offload_channel.hpp"
#include "trace/flight_recorder.hpp"

namespace rails {
namespace {

trace::FlightRecord rec(SimTime t, std::uint64_t msg, std::int64_t a = 0,
                        std::int64_t b = 0) {
  trace::FlightRecord r;
  r.time = t;
  r.kind = trace::FlightKind::kSubmit;
  r.msg_id = msg;
  r.a = a;
  r.b = b;
  return r;
}

TEST(FlightRecorder, RingWrapsAndCountsEvictions) {
  trace::FlightRecorder fr(8);
  EXPECT_EQ(fr.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) fr.record(rec(usec(i), i));
  EXPECT_EQ(fr.total_recorded(), 20u);
  EXPECT_EQ(fr.evictions(), 12u);
  EXPECT_EQ(fr.last_time(), usec(19));

  const auto window = fr.snapshot();
  ASSERT_EQ(window.size(), 8u);
  // Oldest first, and only the most recent window survives the wrap.
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].msg_id, 12 + i);
  }
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  trace::FlightRecorder fr(100);
  EXPECT_EQ(fr.capacity(), 128u);
}

// Worker-pool producers hammer the ring while the main thread snapshots.
// Records are self-checking (a == b == msg_id), so a torn read would be
// visible; the seqlock must instead skip in-flight slots. TSan CI runs this.
TEST(FlightRecorder, ConcurrentProducersNeverTearRecords) {
  trace::FlightRecorder fr(64);
  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 5000;
  rt::WorkerPool pool(kWorkers);
  std::atomic<int> done{0};
  for (int w = 0; w < kWorkers; ++w) {
    pool.submit_to(w, rt::Tasklet(
                          [&fr, &done, w] {
                            for (int i = 0; i < kPerWorker; ++i) {
                              const std::uint64_t v =
                                  static_cast<std::uint64_t>(w) * kPerWorker + i;
                              fr.record(rec(static_cast<SimTime>(v), v,
                                            static_cast<std::int64_t>(v),
                                            static_cast<std::int64_t>(v)));
                            }
                            done.fetch_add(1, std::memory_order_release);
                          },
                          rt::TaskPriority::kTasklet));
  }
  while (done.load(std::memory_order_acquire) < kWorkers) {
    for (const trace::FlightRecord& r : fr.snapshot()) {
      EXPECT_EQ(r.a, static_cast<std::int64_t>(r.msg_id));
      EXPECT_EQ(r.b, static_cast<std::int64_t>(r.msg_id));
    }
  }
  pool.drain();
  EXPECT_EQ(fr.total_recorded(),
            static_cast<std::uint64_t>(kWorkers) * kPerWorker);
  const auto window = fr.snapshot();
  EXPECT_EQ(window.size(), fr.capacity());
  for (const trace::FlightRecord& r : window) {
    EXPECT_EQ(r.a, static_cast<std::int64_t>(r.msg_id));
  }
}

// The real-thread wiring: offload workers append kOffloadPush records from
// their own tasklets while sends race each other. TSan CI runs this too.
TEST(FlightRecorder, ConcurrentOffloadChannelProducers) {
  trace::FlightRecorder fr(256);
  threaded::OffloadChannelConfig config;
  config.rails = 2;
  config.workers = 2;
  threaded::OffloadChannel channel(config);
  channel.set_flight_recorder(&fr);
  std::atomic<int> received{0};
  channel.start([&received](Tag, std::vector<std::uint8_t>&&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kSends = 16;
  std::vector<std::uint8_t> data(64 << 10, 0xAB);
  std::vector<std::shared_ptr<threaded::SendTicket>> tickets;
  for (int i = 0; i < kSends; ++i) {
    tickets.push_back(channel.send(7, data.data(), data.size()));
  }
  for (const auto& t : tickets) t->wait();
  while (received.load(std::memory_order_relaxed) < kSends) {
    std::this_thread::yield();
  }
  channel.stop();

  // 64 KiB over 2 rails/2 workers splits into 2 chunks per send.
  EXPECT_EQ(fr.total_recorded(), static_cast<std::uint64_t>(kSends) * 2);
  unsigned pushes = 0;
  for (const trace::FlightRecord& r : fr.snapshot()) {
    ASSERT_EQ(r.kind, trace::FlightKind::kOffloadPush);
    EXPECT_LT(r.rail, 2u);
    EXPECT_GT(r.a, 0);   // chunk bytes
    EXPECT_GE(r.time, 0);  // wall-clock ns since the first record
    ++pushes;
  }
  EXPECT_EQ(pushes, static_cast<unsigned>(kSends) * 2);
}

TEST(FlightRecorder, BundleRoundTripsThroughRenderer) {
  trace::FlightRecorder fr(32);
  telemetry::MetricsRegistry registry;
  registry.counter("engine.failovers")->inc();
  fr.set_metrics(&registry);
  fr.set_state_writer([](std::ostream& os) {
    os << "{\"node\":0,\"rails\":[{\"rail\":0,\"quarantined\":false}]}";
  });
  for (int i = 0; i < 5; ++i) fr.record(rec(usec(i * 10), i, 512));

  std::stringstream bundle;
  fr.write_bundle(bundle, "failover", "msg 3 re-split off rail 1", usec(40));

  std::ostringstream rendered;
  ASSERT_TRUE(trace::FlightRecorder::render_postmortem(bundle, rendered));
  const std::string out = rendered.str();
  EXPECT_NE(out.find("reason: failover"), std::string::npos);
  EXPECT_NE(out.find("msg 3 re-split off rail 1"), std::string::npos);
  EXPECT_NE(out.find("submit"), std::string::npos);          // event kinds
  EXPECT_NE(out.find("engine.failovers"), std::string::npos);  // metrics
  EXPECT_NE(out.find("quarantined"), std::string::npos);       // state
}

TEST(FlightRecorder, RendererRejectsNonBundles) {
  std::istringstream garbage("this is not a bundle");
  std::ostringstream out;
  EXPECT_FALSE(trace::FlightRecorder::render_postmortem(garbage, out));

  std::istringstream wrong_shape("{\"hello\":1}");
  std::ostringstream out2;
  EXPECT_FALSE(trace::FlightRecorder::render_postmortem(wrong_shape, out2));
}

TEST(FlightRecorder, TriggerWritesFileAndRateLimits) {
  const std::string dir = ::testing::TempDir();
  trace::FlightRecorder fr(32);
  fr.set_output(dir, "fr-test");
  fr.set_rate_limit(1, 0);  // one bundle, ever
  fr.record(rec(usec(1), 1));

  const std::string path = fr.trigger("quarantine", "rail 0 out", usec(2));
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(fr.bundles_written(), 1u);
  EXPECT_EQ(fr.last_bundle_path(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream rendered;
  EXPECT_TRUE(trace::FlightRecorder::render_postmortem(in, rendered));
  EXPECT_NE(rendered.str().find("rail 0 out"), std::string::npos);

  // Rate limited: the second trigger records a kTrigger event but writes
  // nothing.
  EXPECT_TRUE(fr.trigger("quarantine", "again", usec(3)).empty());
  EXPECT_EQ(fr.bundles_written(), 1u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, TriggerWithoutOutputDirWritesNothing) {
  trace::FlightRecorder fr(8);
  fr.record(rec(usec(1), 1));
  EXPECT_TRUE(fr.trigger("failover", "no dir configured", usec(2)).empty());
  EXPECT_EQ(fr.bundles_written(), 0u);
  // The attempt itself is still on the record.
  const auto window = fr.snapshot();
  ASSERT_FALSE(window.empty());
  EXPECT_EQ(window.back().kind, trace::FlightKind::kTrigger);
}

// The acceptance path: an injected rail fault must leave behind a bundle
// that `railsctl postmortem` (the same renderer) parses and renders.
TEST(FlightRecorder, EngineFailoverProducesRenderablePostmortem) {
  const std::string dir = ::testing::TempDir();
  core::World world(core::paper_testbed("hetero-split"));
  telemetry::MetricsRegistry registry;
  trace::FlightRecorder fr;
  fr.set_output(dir, "fr-failover");
  fr.set_metrics(&registry);
  world.engine(0).set_metrics(&registry);
  world.engine(0).set_flight_recorder(&fr);

  fabric::FaultSpec dead;
  dead.kind = fabric::FaultKind::kFailStop;
  dead.at = usec(20);
  world.fabric().nic(0, 0).inject_fault(dead);

  const std::size_t size = 4 << 20;
  std::vector<std::uint8_t> tx(size, 0x7E);
  std::vector<std::uint8_t> rx(size);
  auto recv = world.engine(1).irecv(0, 5, rx.data(), size);
  auto send = world.engine(0).isend(1, 5, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);

  ASSERT_GE(fr.bundles_written(), 1u);
  std::ifstream in(fr.last_bundle_path());
  ASSERT_TRUE(in.good());
  std::ostringstream rendered;
  ASSERT_TRUE(trace::FlightRecorder::render_postmortem(in, rendered));
  const std::string out = rendered.str();
  // The bundle autopsy names the failure and carries the engine state.
  EXPECT_TRUE(out.find("failover") != std::string::npos ||
              out.find("quarantine") != std::string::npos)
      << out;
  EXPECT_NE(out.find("tx-error"), std::string::npos);
  EXPECT_NE(out.find("engine state at dump"), std::string::npos);

  world.engine(0).set_flight_recorder(nullptr);
  world.engine(0).set_metrics(nullptr);
  std::remove(fr.last_bundle_path().c_str());
}

using FlightRecorderDeathTest = ::testing::Test;

TEST(FlightRecorderDeathTest, CheckFailureDumpsOneFinalBundle) {
  const std::string dir = ::testing::TempDir();
  const std::string marker = dir + "/fr-check-marker";
  std::remove(marker.c_str());
  EXPECT_DEATH(
      {
        trace::FlightRecorder fr(16);
        fr.set_output(dir, "fr-check");
        fr.record(rec(usec(5), 1));
        fr.install_check_hook();
        RAILS_CHECK_MSG(false, "deliberate check failure");
      },
      "deliberate check failure");
  // The death ran in a child process; find the bundle it left behind.
  bool found = false;
  for (unsigned seq = 0; seq < 16 && !found; ++seq) {
    const std::string path =
        dir + "/fr-check-" + std::to_string(seq) + "-check-failure.json";
    std::ifstream in(path);
    if (!in.good()) continue;
    std::ostringstream rendered;
    found = trace::FlightRecorder::render_postmortem(in, rendered);
    EXPECT_NE(rendered.str().find("check-failure"), std::string::npos);
    std::remove(path.c_str());
  }
  EXPECT_TRUE(found);
  trace::FlightRecorder::uninstall_check_hook();
}

// -- minijson (the parser behind the postmortem renderer and benchdiff) ------

TEST(MiniJson, EscapedStringsRoundTrip) {
  // escape() -> parse() must reproduce the original bytes, including
  // quotes, backslashes, newlines, and control characters.
  const std::string original = "line1\nline2\t\"quoted\\path\"\x01\x1f end";
  std::string doc = "\"";
  doc += minijson::escape(original);
  doc += '"';
  minijson::JsonValue v;
  ASSERT_TRUE(minijson::parse(doc, v));
  ASSERT_EQ(v.type, minijson::JsonValue::Type::kString);
  EXPECT_EQ(v.str, original);
}

TEST(MiniJson, NestedObjectsAndArrays) {
  minijson::JsonValue root;
  ASSERT_TRUE(minijson::parse(
      R"({"a": {"b": [1, 2.5, -3e2], "c": {"deep": true}}, "d": [[], [null]]})",
      root));
  const minijson::JsonValue* b = root.find("a")->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_DOUBLE_EQ(b->array[1].num_or(0), 2.5);
  EXPECT_DOUBLE_EQ(b->array[2].num_or(0), -300.0);
  EXPECT_TRUE(root.find("a")->find("c")->find("deep")->bool_or(false));
  ASSERT_EQ(root.find("d")->array.size(), 2u);
  EXPECT_EQ(root.find("d")->array[0].array.size(), 0u);
  EXPECT_EQ(root.find("d")->array[1].array[0].type,
            minijson::JsonValue::Type::kNull);
}

TEST(MiniJson, UnicodeEscapesDecodeAscii) {
  // The emitters only use \uXXXX for control characters; code points that
  // fit one byte decode exactly, anything larger renders as '?'.
  minijson::JsonValue v;
  ASSERT_TRUE(minijson::parse("\"\\u0041\\u000a\\u00e9\"", v));
  EXPECT_EQ(v.str, "A\n?");
  EXPECT_FALSE(minijson::parse(R"("\uZZZZ")", v));
  EXPECT_FALSE(minijson::parse(R"("\u00)", v));
  EXPECT_FALSE(minijson::parse(R"("\q")", v));
}

TEST(MiniJson, RejectsMalformedInput) {
  minijson::JsonValue v;
  EXPECT_FALSE(minijson::parse("", v));
  EXPECT_FALSE(minijson::parse("{", v));
  EXPECT_FALSE(minijson::parse("{\"a\": }", v));
  EXPECT_FALSE(minijson::parse("[1, 2", v));
  EXPECT_FALSE(minijson::parse("\"unterminated", v));
  EXPECT_FALSE(minijson::parse("truthy", v));
  EXPECT_FALSE(minijson::parse("{} trailing", v));
  EXPECT_FALSE(minijson::parse("{\"a\" 1}", v));
}

TEST(MiniJson, ParsesABenchBundleSchema) {
  // The shape benchdiff consumes (bench_support/bench_json.hpp).
  const char* doc = R"({
    "schema": "rails-bench", "schema_version": 1, "generator": "t",
    "commit": "deadbeef", "quick": true, "generated_unix": 1700000000,
    "benches": [{"name": "msgrate", "config": {"flows": "64"},
                 "metrics": [{"name": "msgs_per_ms/a", "value": 512.25,
                              "unit": "msgs/ms", "higher_is_better": true,
                              "headline": true}]}]
  })";
  minijson::JsonValue root;
  ASSERT_TRUE(minijson::parse(doc, root));
  EXPECT_EQ(root.find("schema")->str_or(""), "rails-bench");
  const minijson::JsonValue& m =
      root.find("benches")->array.at(0).find("metrics")->array.at(0);
  EXPECT_DOUBLE_EQ(m.find("value")->num_or(0), 512.25);
  EXPECT_TRUE(m.find("headline")->bool_or(false));
}

}  // namespace
}  // namespace rails
