// Cross-component validation: ties the layers together.
//
//  * the sampled estimator must predict what the engine then measures;
//  * the equal-finish solver must match brute force on coarse grids;
//  * full experiment pipelines must be bit-deterministic, including traces.
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/presets.hpp"
#include "strategy/rail_cost.hpp"
#include "strategy/split_solver.hpp"
#include "test_util.hpp"
#include "trace/tracer.hpp"

namespace rails {
namespace {

class PredictionConsistency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PredictionConsistency, EstimatorMatchesEngineOnIdleFabric) {
  core::World world(core::paper_testbed("single-rail:1"));
  const std::size_t size = GetParam();
  const auto proto = size <= world.engine(0).rdv_threshold()
                         ? fabric::Protocol::kEager
                         : fabric::Protocol::kRendezvous;
  const SimDuration predicted = world.estimator().duration(1, size, proto);
  const SimDuration measured = world.measure_one_way(size);
  // Within 3% + 1 µs: interpolation plus engine progress-event latency.
  EXPECT_NEAR(static_cast<double>(predicted), static_cast<double>(measured),
              static_cast<double>(measured) * 0.03 + 1000.0)
      << "size " << size;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PredictionConsistency,
                         ::testing::Values(100ul, 1500ul, 12_KiB, 100000ul, 1_MiB,
                                           6_MiB),
                         [](const auto& info) { return std::to_string(info.param); });

TEST(SolverOptimality, MatchesBruteForceOnCoarseGrid) {
  // Brute-force the 2-rail split at 4 KiB granularity and verify the
  // equal-finish solver is never worse (it works at byte granularity).
  const auto profiles =
      sampling::sample_rails({fabric::myri10g(), fabric::qsnet2()}, {});
  const strategy::ProfileCost myri(&profiles[0].rdv_chunk);
  const strategy::ProfileCost qs(&profiles[1].rdv_chunk);

  for (SimDuration busy_offset : {0_us, 200_us, 900_us}) {
    const std::vector<strategy::SolverRail> rails = {{0, &myri, busy_offset},
                                                     {1, &qs, 0}};
    for (std::size_t total : {256_KiB, 1_MiB, 4_MiB}) {
      SimDuration best_brute = kSimTimeNever;
      for (std::size_t a = 0; a <= total; a += 4_KiB) {
        const SimDuration t =
            std::max(busy_offset + myri.duration(a), qs.duration(total - a));
        best_brute = std::min(best_brute, t);
      }
      const auto solved = strategy::solve_equal_finish(rails, total);
      EXPECT_LE(solved.makespan, best_brute)
          << "total " << total << " busy " << busy_offset;
    }
  }
}

TEST(SolverOptimality, DichotomyWithinHalfPercentOfEqualFinish) {
  const auto profiles =
      sampling::sample_rails({fabric::myri10g(), fabric::qsnet2()}, {});
  const strategy::ProfileCost myri(&profiles[0].rdv_chunk);
  const strategy::ProfileCost qs(&profiles[1].rdv_chunk);
  const std::vector<strategy::SolverRail> rails = {{0, &myri, 0}, {1, &qs, 0}};
  for (std::size_t total = 128_KiB; total <= 8_MiB; total <<= 1) {
    const auto dich = strategy::dichotomy_split(rails[0], rails[1], total);
    const auto ef = strategy::solve_equal_finish(rails, total);
    EXPECT_LE(static_cast<double>(dich.makespan),
              static_cast<double>(ef.makespan) * 1.005)
        << "total " << total;
  }
}

TEST(Determinism, IdenticalTracesAcrossRuns) {
  auto run = [] {
    core::World world(core::paper_testbed("multicore-hetero-split"));
    trace::Tracer tracer;
    world.engine(0).set_tracer(&tracer);
    const auto tx1 = test::make_pattern(20_KiB, 1);
    const auto tx2 = test::make_pattern(3_MiB, 2);
    std::vector<std::uint8_t> rx1(tx1.size()), rx2(tx2.size());
    auto r1 = world.engine(1).irecv(0, 1, rx1.data(), rx1.size());
    auto r2 = world.engine(1).irecv(0, 2, rx2.data(), rx2.size());
    world.engine(0).isend(1, 1, tx1.data(), tx1.size());
    world.engine(0).isend(1, 2, tx2.data(), tx2.size());
    world.wait(r1);
    world.wait(r2);
    world.engine(0).set_tracer(nullptr);
    std::ostringstream csv;
    tracer.dump_csv(csv);
    return csv.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Determinism, SamplerIsBitStable) {
  const auto a = sampling::sample_rail(fabric::ib_ddr(), {});
  const auto b = sampling::sample_rail(fabric::ib_ddr(), {});
  ASSERT_EQ(a.eager.point_count(), b.eager.point_count());
  for (std::size_t i = 0; i < a.eager.points().size(); ++i) {
    EXPECT_EQ(a.eager.points()[i].duration, b.eager.points()[i].duration);
  }
  EXPECT_EQ(a.rdv_threshold, b.rdv_threshold);
}

TEST(Conservation, FabricDeliversExactlyWhatEnginesPost) {
  core::World world(core::paper_testbed("hetero-split"));
  const auto tx = test::make_pattern(3_MiB, 9);
  std::vector<std::uint8_t> rx(tx.size());
  auto recv = world.engine(1).irecv(0, 1, rx.data(), rx.size());
  auto send = world.engine(0).isend(1, 1, tx.data(), tx.size());
  world.wait(send);
  (void)recv;
  world.fabric().events().run_all();
  std::uint64_t delivered = 0;
  for (RailId r = 0; r < world.fabric().rail_count(); ++r) {
    delivered += world.fabric().delivered_payload(r);
  }
  std::uint64_t posted = 0;
  for (RailId r = 0; r < world.fabric().rail_count(); ++r) {
    posted += world.fabric().nic(0, r).payload_bytes_sent() +
              world.fabric().nic(1, r).payload_bytes_sent();
  }
  EXPECT_EQ(delivered, posted);
  EXPECT_GE(delivered, tx.size());  // payload + control/framing overhead
}

}  // namespace
}  // namespace rails
