// Deterministic fault-injection tests (docs/FAULTS.md): fail-stop failover,
// quarantine masking, flap recovery, straggler timeouts, and the telemetry
// counters that observe all of it. Everything runs in virtual time on the
// paper's two-rail testbed, so every scenario is exactly reproducible.
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/fault.hpp"
#include "telemetry/metrics.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

fabric::FaultSpec fail_stop_at(SimTime at) {
  fabric::FaultSpec f;
  f.kind = fabric::FaultKind::kFailStop;
  f.at = at;
  return f;
}

// -- fail-stop mid-transfer --------------------------------------------------

TEST(FaultInjection, FailStopMidTransferCompletesViaSurvivor) {
  core::World world(paper_testbed("hetero-split"));
  const std::size_t size = 4_MiB;
  const auto tx = test::make_pattern(size, 7);
  std::vector<std::uint8_t> rx(size, 0);

  // Rail 0 fail-stops while the rendezvous chunks are in flight.
  world.fabric().nic(0, 0).inject_fault(fail_stop_at(usec(20)));

  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.wait(recv);
  world.wait(send);

  EXPECT_EQ(rx, tx);
  const auto& stats = world.engine(0).stats();
  EXPECT_GT(world.fabric().nic(0, 0).segments_dropped(), 0u);
  EXPECT_GE(stats.tx_errors, 1u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_TRUE(world.engine(0).rail_quarantined(0));
  EXPECT_FALSE(world.engine(0).rail_quarantined(1));
}

TEST(FaultInjection, FailStopBeforeTransferStillCompletes) {
  // The whole handshake (RTS included) must survive a rail that was already
  // dead at submission time.
  core::World world(paper_testbed("hetero-split"));
  const std::size_t size = 1_MiB;
  const auto tx = test::make_pattern(size, 8);
  std::vector<std::uint8_t> rx(size, 0);
  world.fabric().nic(0, 0).inject_fault(fail_stop_at(0));

  auto recv = world.engine(1).irecv(0, 2, rx.data(), size);
  auto send = world.engine(0).isend(1, 2, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);
}

TEST(FaultInjection, ZeroByteMessageSurvivesFailStop) {
  core::World world(paper_testbed("aggregate-fastest"));
  world.fabric().nic(0, 0).inject_fault(fail_stop_at(0));
  auto recv = world.engine(1).irecv(0, 3, nullptr, 0);
  auto send = world.engine(0).isend(1, 3, nullptr, 0);
  world.wait(recv);
  world.wait(send);
  EXPECT_TRUE(recv->done());
  EXPECT_EQ(recv->bytes_received, 0u);
}

// -- quarantine --------------------------------------------------------------

TEST(FaultInjection, QuarantinedRailSkippedByStrategy) {
  core::World world(paper_testbed("hetero-split"));
  const std::size_t size = 2_MiB;
  const auto tx = test::make_pattern(size, 9);
  std::vector<std::uint8_t> rx(size, 0);
  world.fabric().nic(0, 0).inject_fault(fail_stop_at(usec(10)));

  // First transfer trips the fault and quarantines rail 0.
  auto recv = world.engine(1).irecv(0, 4, rx.data(), size);
  auto send = world.engine(0).isend(1, 4, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  ASSERT_TRUE(world.engine(0).rail_quarantined(0));

  // Subsequent planning must not touch rail 0 at all.
  world.engine(0).reset_stats();
  std::fill(rx.begin(), rx.end(), 0);
  auto recv2 = world.engine(1).irecv(0, 5, rx.data(), size);
  auto send2 = world.engine(0).isend(1, 5, tx.data(), size);
  world.wait(recv2);
  world.wait(send2);
  EXPECT_EQ(rx, tx);
  const auto& stats = world.engine(0).stats();
  ASSERT_EQ(stats.payload_bytes_per_rail.size(), 2u);
  EXPECT_EQ(stats.payload_bytes_per_rail[0], 0u);
  EXPECT_EQ(stats.payload_bytes_per_rail[1], size);
  EXPECT_EQ(stats.tx_errors, 0u);  // nothing was offered to the dead rail
}

TEST(FaultInjection, FlapRecoversAndReprobeLiftsQuarantine) {
  core::World world(paper_testbed("hetero-split"));
  const std::size_t size = 2_MiB;
  const auto tx = test::make_pattern(size, 10);
  std::vector<std::uint8_t> rx(size, 0);

  fabric::FaultSpec flap;
  flap.kind = fabric::FaultKind::kFlap;
  flap.at = usec(10);
  flap.duration = usec(200);
  world.fabric().nic(0, 0).inject_fault(flap);

  auto recv = world.engine(1).irecv(0, 6, rx.data(), size);
  auto send = world.engine(0).isend(1, 6, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);
  ASSERT_GE(world.engine(0).stats().quarantines, 1u);

  // Once the flap window passes, the scheduled re-probe finds the link up
  // and lifts the quarantine; the probe chain then stops, so run_all drains.
  world.fabric().events().run_all();
  EXPECT_FALSE(world.engine(0).rail_quarantined(0));
  EXPECT_GE(world.engine(0).stats().reprobe_successes, 1u);
}

TEST(FaultInjection, FailStopProbeChainTerminates) {
  // A permanently dead rail must not keep the event queue alive forever:
  // the re-probe backoff saturates and gives up, leaving the rail
  // quarantined. (If this regresses, run_all() here never returns.)
  core::World world(paper_testbed("hetero-split"));
  const std::size_t size = 1_MiB;
  const auto tx = test::make_pattern(size, 11);
  std::vector<std::uint8_t> rx(size, 0);
  world.fabric().nic(0, 0).inject_fault(fail_stop_at(usec(10)));

  auto recv = world.engine(1).irecv(0, 7, rx.data(), size);
  auto send = world.engine(0).isend(1, 7, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  world.fabric().events().run_all();
  EXPECT_TRUE(world.engine(0).rail_quarantined(0));
  EXPECT_GE(world.engine(0).stats().reprobes, 1u);
  EXPECT_EQ(world.engine(0).stats().reprobe_successes, 0u);
}

// -- stragglers (degraded rails, no drops) ----------------------------------

TEST(FaultInjection, DegradedRailTriggersTimeoutAndReceiverDedupes) {
  core::World world(paper_testbed("hetero-split"));
  const std::size_t size = 4_MiB;
  const auto tx = test::make_pattern(size, 12);
  std::vector<std::uint8_t> rx(size, 0);

  // Rail 0 silently runs 50x slower than its sampled profile: chunks become
  // stragglers, the predicted-completion timeout fires, and the range is
  // re-split. The original chunk still arrives (degrade never drops), so the
  // receiver must de-duplicate.
  fabric::FaultSpec degrade;
  degrade.kind = fabric::FaultKind::kDegrade;
  degrade.factor = 50.0;
  world.fabric().nic(0, 0).inject_fault(degrade);

  auto recv = world.engine(1).irecv(0, 8, rx.data(), size);
  auto send = world.engine(0).isend(1, 8, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  // Let the straggling original chunk land (long after completion).
  world.fabric().events().run_all();

  EXPECT_EQ(rx, tx);
  EXPECT_EQ(world.fabric().nic(0, 0).segments_dropped(), 0u);
  EXPECT_GE(world.engine(0).stats().chunk_timeouts, 1u);
  EXPECT_GE(world.engine(0).stats().failovers, 1u);
  // Exactly as many duplicate bytes as the straggler carried; at least the
  // counter must have seen it.
  EXPECT_GE(world.engine(1).stats().duplicate_chunks, 1u);
  EXPECT_EQ(recv->bytes_received, size);
}

TEST(FaultInjection, ElevatedLatencyDeliversWithoutLoss) {
  core::World world(paper_testbed("hetero-split"));
  const std::size_t size = 1_MiB;
  const auto tx = test::make_pattern(size, 13);
  std::vector<std::uint8_t> rx(size, 0);

  fabric::FaultSpec lat;
  lat.kind = fabric::FaultKind::kLatency;
  lat.extra_latency = usec(80);
  world.fabric().nic(0, 0).inject_fault(lat);

  auto recv = world.engine(1).irecv(0, 9, rx.data(), size);
  auto send = world.engine(0).isend(1, 9, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(world.fabric().nic(0, 0).segments_dropped(), 0u);
}

// -- failover disabled -------------------------------------------------------

TEST(FaultInjection, DisabledFailoverStillCountsErrors) {
  core::WorldConfig cfg = paper_testbed("hetero-split");
  cfg.engine.failover.enabled = false;
  core::World world(std::move(cfg));
  const std::size_t size = 2_MiB;
  const auto tx = test::make_pattern(size, 14);
  std::vector<std::uint8_t> rx(size, 0);
  world.fabric().nic(0, 0).inject_fault(fail_stop_at(usec(20)));

  auto recv = world.engine(1).irecv(0, 10, rx.data(), size);
  auto send = world.engine(0).isend(1, 10, tx.data(), size);
  world.fabric().events().run_all();

  // Without failover the dropped bytes never arrive — but the engine must
  // not crash, and the error is still visible in the stats.
  EXPECT_FALSE(recv->done());
  EXPECT_GE(world.engine(0).stats().tx_errors, 1u);
  EXPECT_EQ(world.engine(0).stats().failovers, 0u);
  EXPECT_FALSE(world.engine(0).rail_quarantined(0));
}

// -- telemetry ---------------------------------------------------------------

TEST(FaultInjection, TelemetryCountersMatchEngineStats) {
  core::World world(paper_testbed("hetero-split"));
  telemetry::MetricsRegistry registry;
  world.engine(0).set_metrics(&registry);

  const std::size_t size = 4_MiB;
  const auto tx = test::make_pattern(size, 15);
  std::vector<std::uint8_t> rx(size, 0);
  world.fabric().nic(0, 0).inject_fault(fail_stop_at(usec(20)));

  auto recv = world.engine(1).irecv(0, 11, rx.data(), size);
  auto send = world.engine(0).isend(1, 11, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);

  const auto& stats = world.engine(0).stats();
  const auto counter = [&](const char* name) {
    const telemetry::Counter* c = registry.find_counter(name);
    return c != nullptr ? c->value() : ~0ull;
  };
  EXPECT_EQ(counter("engine.tx_errors"), stats.tx_errors);
  EXPECT_EQ(counter("engine.failovers"), stats.failovers);
  EXPECT_EQ(counter("engine.failover_retries"), stats.retries);
  EXPECT_EQ(counter("engine.quarantines"), stats.quarantines);
  EXPECT_EQ(counter("engine.chunk_timeouts"), stats.chunk_timeouts);
  EXPECT_GE(stats.tx_errors, 1u);
  EXPECT_GE(stats.failovers, 1u);

  // Per-rail health gauges mirror the quarantine state.
  const telemetry::Gauge* h0 = registry.find_gauge("engine.rail0.healthy");
  const telemetry::Gauge* h1 = registry.find_gauge("engine.rail1.healthy");
  ASSERT_NE(h0, nullptr);
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h0->value(), 0);
  EXPECT_EQ(h1->value(), 1);

  world.engine(0).set_metrics(nullptr);
}

// -- NIC-level fault mechanics ----------------------------------------------

TEST(FaultInjection, FlapWindowOnlyDropsOverlappingFlights) {
  // A flap covers [at, at + duration); only flights overlapping the window
  // are dropped. Flights wholly before or after it are untouched.
  core::World world(paper_testbed("single-rail:0"));
  auto& nic = world.fabric().nic(0, 0);
  fabric::FaultSpec flap;
  flap.kind = fabric::FaultKind::kFlap;
  flap.at = usec(50);
  flap.duration = usec(30);
  nic.inject_fault(flap);

  EXPECT_TRUE(nic.link_up(usec(49)));
  EXPECT_FALSE(nic.link_up(usec(50)));
  EXPECT_FALSE(nic.link_up(usec(79)));
  EXPECT_TRUE(nic.link_up(usec(81)));
  EXPECT_FALSE(nic.down_overlaps(usec(0), usec(49)));   // before the window
  EXPECT_TRUE(nic.down_overlaps(usec(40), usec(60)));   // straddles the start
  EXPECT_TRUE(nic.down_overlaps(usec(60), usec(70)));   // inside
  EXPECT_TRUE(nic.down_overlaps(usec(10), usec(200)));  // spans the window
  EXPECT_FALSE(nic.down_overlaps(usec(81), usec(90)));  // after the window

  // Traffic before the window is untouched.
  const std::size_t size = 512;
  const auto tx = test::make_pattern(size, 16);
  std::vector<std::uint8_t> rx(size, 0);
  auto recv = world.engine(1).irecv(0, 12, rx.data(), size);
  auto send = world.engine(0).isend(1, 12, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  EXPECT_LT(recv->complete_time, usec(50));
  EXPECT_EQ(nic.segments_dropped(), 0u);
  EXPECT_EQ(rx, tx);
}

TEST(FaultInjection, ClearFaultsRestoresHealth) {
  core::World world(paper_testbed("single-rail:0"));
  auto& nic = world.fabric().nic(0, 0);
  nic.inject_fault(fail_stop_at(0));
  EXPECT_FALSE(nic.link_up(usec(1)));
  nic.clear_faults();
  EXPECT_TRUE(nic.link_up(usec(1)));
}

}  // namespace
}  // namespace rails::core
