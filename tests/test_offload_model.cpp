#include "strategy/offload_model.hpp"

#include <gtest/gtest.h>

#include "fabric/presets.hpp"
#include "sampling/sampler.hpp"

namespace rails::strategy {
namespace {

class OffloadFixture : public ::testing::Test {
 protected:
  static const std::vector<sampling::RailProfile>& profiles() {
    static const auto p = sampling::sample_rails(
        {fabric::myri10g(), fabric::qsnet2()}, {1, 64u * 1024u, 1, 1});
    return p;
  }

  std::vector<SolverRail> rails() {
    costs_.clear();
    costs_.emplace_back(&profiles()[0].eager);
    costs_.emplace_back(&profiles()[1].eager);
    return {{0, &costs_[0], 0}, {1, &costs_[1], 0}};
  }

  std::vector<ProfileCost> costs_;
};

TEST_F(OffloadFixture, ParallelTimeIsEq1) {
  const auto r = rails();
  const std::vector<Chunk> chunks = {{0, 0, 30000}, {1, 30000, 20000}};
  const SimDuration to = usec(3.0);
  const SimDuration expected =
      to + std::max(r[0].cost->duration(30000), r[1].cost->duration(20000));
  EXPECT_EQ(parallel_eager_time(r, chunks, to), expected);
}

TEST_F(OffloadFixture, ParallelTimeIncludesReadyOffsets) {
  auto r = rails();
  r[1].ready_offset = usec(100.0);
  const std::vector<Chunk> chunks = {{0, 0, 1000}, {1, 1000, 1000}};
  const SimDuration t = parallel_eager_time(r, chunks, 0);
  EXPECT_GE(t, usec(100.0));
}

TEST_F(OffloadFixture, TinyMessagesNeverSplit) {
  // §III-D: "Transmitting tiny eager packets in parallel is thus
  // inappropriate."
  const auto plan = plan_eager(rails(), 512, /*idle_cores=*/4);
  EXPECT_FALSE(plan.split);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].bytes, 512u);
}

TEST_F(OffloadFixture, MediumMessagesSplitWithEnoughCores) {
  const auto plan = plan_eager(rails(), 64_KiB, /*idle_cores=*/3);
  EXPECT_TRUE(plan.split);
  EXPECT_EQ(plan.chunks.size(), 2u);
  EXPECT_LT(plan.predicted, plan.single_rail_predicted);
}

TEST_F(OffloadFixture, GainApproachesPaperEstimate) {
  // Fig. 9: up to ~30 % latency reduction at 64 KiB.
  const auto plan = plan_eager(rails(), 64_KiB, 3);
  ASSERT_TRUE(plan.split);
  const double gain = 1.0 - static_cast<double>(plan.predicted) /
                                static_cast<double>(plan.single_rail_predicted);
  EXPECT_GT(gain, 0.20);
  EXPECT_LT(gain, 0.55);
}

TEST_F(OffloadFixture, NoIdleCoresMeansNoSplit) {
  // Each chunk needs its own core; with fewer than 2 idle cores the copies
  // would serialise (Fig. 4a) and splitting loses.
  for (unsigned cores : {0u, 1u}) {
    const auto plan = plan_eager(rails(), 64_KiB, cores);
    EXPECT_FALSE(plan.split) << cores << " idle cores";
  }
}

TEST_F(OffloadFixture, HigherSignalCostRaisesBreakEven) {
  OffloadConfig cheap;
  cheap.signal_cost = 0;
  OffloadConfig costly;
  costly.signal_cost = usec(30.0);

  // Find the smallest power-of-two size that splits under each config.
  auto break_even = [&](const OffloadConfig& cfg) {
    for (std::size_t s = 1_KiB; s <= 64_KiB; s <<= 1) {
      if (plan_eager(rails(), s, 3, cfg).split) return s;
    }
    return std::size_t{0};
  };
  const std::size_t be_cheap = break_even(cheap);
  const std::size_t be_costly = break_even(costly);
  ASSERT_NE(be_cheap, 0u);
  ASSERT_NE(be_costly, 0u);
  EXPECT_LT(be_cheap, be_costly);
}

TEST_F(OffloadFixture, PreemptCostUsedWhenPreempting) {
  OffloadConfig cfg;
  cfg.signal_cost = usec(3.0);
  cfg.preempt_cost = usec(6.0);
  const auto signalled = plan_eager(rails(), 64_KiB, 3, cfg, /*preempt=*/false);
  const auto preempted = plan_eager(rails(), 64_KiB, 3, cfg, /*preempt=*/true);
  ASSERT_TRUE(signalled.split);
  ASSERT_TRUE(preempted.split);
  EXPECT_EQ(preempted.predicted - signalled.predicted, usec(3.0));
}

TEST_F(OffloadFixture, MinSplitSizeRespected) {
  OffloadConfig cfg;
  cfg.min_split_size = 32_KiB;
  EXPECT_FALSE(plan_eager(rails(), 16_KiB, 3, cfg).split);
}

TEST_F(OffloadFixture, FallbackPicksBestSingleRail) {
  const auto plan = plan_eager(rails(), 256, 4);
  ASSERT_FALSE(plan.split);
  // At 256 bytes QsNetII (rail 1) has the lower eager latency.
  EXPECT_EQ(plan.chunks[0].rail, 1u);
}

class CoreCapSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CoreCapSweep, ChunkCountNeverExceedsMinNicsCores) {
  static const auto profiles = sampling::sample_rails(
      {fabric::myri10g(), fabric::qsnet2(), fabric::ib_ddr()}, {1, 32u * 1024u, 1, 1});
  std::vector<ProfileCost> costs;
  costs.emplace_back(&profiles[0].eager);
  costs.emplace_back(&profiles[1].eager);
  costs.emplace_back(&profiles[2].eager);
  const std::vector<SolverRail> rails = {
      {0, &costs[0], 0}, {1, &costs[1], 0}, {2, &costs[2], 0}};
  const unsigned idle_cores = GetParam();
  const auto plan = plan_eager(rails, 32_KiB, idle_cores);
  const unsigned cap = std::min<unsigned>(3, idle_cores);
  EXPECT_LE(plan.chunks.size(), std::max(1u, cap));
  std::size_t sum = 0;
  for (const auto& c : plan.chunks) sum += c.bytes;
  EXPECT_EQ(sum, 32_KiB);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCapSweep, ::testing::Values(0u, 1u, 2u, 3u, 4u, 8u));

}  // namespace
}  // namespace rails::strategy
