// Shared helpers for the rails test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace rails::test {

/// Deterministic byte pattern derived from (seed, index): catches both
/// missing fragments and fragments written at the wrong offset.
inline std::vector<std::uint8_t> make_pattern(std::size_t size, std::uint64_t seed) {
  std::vector<std::uint8_t> buf(size);
  for (std::size_t i = 0; i < size; ++i) {
    buf[i] = static_cast<std::uint8_t>((seed * 1315423911u + i * 2654435761u) >> 24);
  }
  return buf;
}

inline bool matches_pattern(const std::vector<std::uint8_t>& buf, std::uint64_t seed) {
  const auto expect = make_pattern(buf.size(), seed);
  return buf == expect;
}

}  // namespace rails::test
