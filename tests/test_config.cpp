#include "core/config.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace rails::core {
namespace {

TEST(ClusterConfig, ParsesPresetsAndDirectives) {
  std::istringstream is(R"(
# the paper testbed
nodes 2
topology 2x2
strategy hetero-split
offload_signal_us 3.0
rail preset myri10g
rail preset qsnet2
)");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_EQ(cfg.fabric.node_count, 2u);
  EXPECT_EQ(cfg.fabric.topology.core_count(), 4u);
  EXPECT_EQ(cfg.strategy, "hetero-split");
  EXPECT_EQ(cfg.engine.offload.signal_cost, usec(3.0));
  ASSERT_EQ(cfg.fabric.rails.size(), 2u);
  EXPECT_EQ(cfg.fabric.rails[0].name, "myri10g");
  EXPECT_EQ(cfg.fabric.rails[1].name, "qsnet2");
}

TEST(ClusterConfig, ParsesCustomRail) {
  std::istringstream is(R"(
nodes 2
rail custom name=lab-net post_us=2.5 wire_latency_us=7 pio_bw=800 dma_bw=300 rdma=0
)");
  const WorldConfig cfg = parse_world_config(is);
  ASSERT_EQ(cfg.fabric.rails.size(), 1u);
  const auto& r = cfg.fabric.rails[0];
  EXPECT_EQ(r.name, "lab-net");
  EXPECT_DOUBLE_EQ(r.post_us, 2.5);
  EXPECT_DOUBLE_EQ(r.wire_latency_us, 7.0);
  EXPECT_DOUBLE_EQ(r.pio_bw_mbps, 800.0);
  EXPECT_DOUBLE_EQ(r.dma_bw_mbps, 300.0);
  EXPECT_FALSE(r.rdma);
  // Unspecified parameters keep their defaults.
  EXPECT_TRUE(r.gather_scatter);
}

TEST(ClusterConfig, CommentsAndBlanksIgnored) {
  std::istringstream is("rail preset ib-ddr # inline comment\n\n   \n# full line\n");
  const WorldConfig cfg = parse_world_config(is);
  ASSERT_EQ(cfg.fabric.rails.size(), 1u);
  EXPECT_EQ(cfg.fabric.rails[0].name, "ib-ddr");
}

TEST(ClusterConfig, RoundTripThroughSave) {
  std::istringstream is(R"(
nodes 4
topology 4x4
strategy iso-split
rdv_threshold 16384
rail preset myri10g
rail preset gige-tcp
)");
  const WorldConfig cfg = parse_world_config(is);
  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_EQ(again.fabric.node_count, 4u);
  EXPECT_EQ(again.fabric.topology.sockets, 4u);
  EXPECT_EQ(again.strategy, "iso-split");
  EXPECT_EQ(again.engine.rdv_threshold_override, 16384u);
  ASSERT_EQ(again.fabric.rails.size(), 2u);
  EXPECT_EQ(again.fabric.rails[0].name, "myri10g");
  EXPECT_DOUBLE_EQ(again.fabric.rails[0].dma_bw_mbps, cfg.fabric.rails[0].dma_bw_mbps);
  EXPECT_DOUBLE_EQ(again.fabric.rails[1].rdv_handshake_us,
                   cfg.fabric.rails[1].rdv_handshake_us);
}

TEST(ClusterConfig, RecalibrationDirectivesRoundTrip) {
  std::istringstream is(R"(
nodes 2
recalibration 1
recal_alpha 0.5
recal_window 48
recal_min_samples 9
recal_drift_threshold 0.3
recal_recover_threshold 0.05
recal_suspect_penalty 1.5
recal_resample_budget 3
recal_resample_interval_us 750
rail preset myri10g
rail preset qsnet2
)");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_TRUE(cfg.engine.recalibration.enabled);
  EXPECT_DOUBLE_EQ(cfg.engine.recalibration.ewma_alpha, 0.5);
  EXPECT_EQ(cfg.engine.recalibration.window, 48u);
  EXPECT_EQ(cfg.engine.recalibration.min_samples, 9u);
  EXPECT_DOUBLE_EQ(cfg.engine.recalibration.drift_threshold, 0.3);
  EXPECT_DOUBLE_EQ(cfg.engine.recalibration.recover_threshold, 0.05);
  EXPECT_DOUBLE_EQ(cfg.engine.recalibration.suspect_penalty, 1.5);
  EXPECT_EQ(cfg.engine.recalibration.resample_budget, 3u);
  EXPECT_EQ(cfg.engine.recalibration.resample_interval, usec(750.0));

  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_TRUE(again.engine.recalibration.enabled);
  EXPECT_DOUBLE_EQ(again.engine.recalibration.ewma_alpha, 0.5);
  EXPECT_EQ(again.engine.recalibration.window, 48u);
  EXPECT_EQ(again.engine.recalibration.min_samples, 9u);
  EXPECT_DOUBLE_EQ(again.engine.recalibration.drift_threshold, 0.3);
  EXPECT_DOUBLE_EQ(again.engine.recalibration.recover_threshold, 0.05);
  EXPECT_DOUBLE_EQ(again.engine.recalibration.suspect_penalty, 1.5);
  EXPECT_EQ(again.engine.recalibration.resample_budget, 3u);
  EXPECT_EQ(again.engine.recalibration.resample_interval, usec(750.0));
}

TEST(ClusterConfig, QosDirectivesRoundTrip) {
  std::istringstream is(R"(
nodes 2
qos 1
qos_quantum 32768
qos_bulk_chunk 131072
qos_aging_us 750
qos_latency_cutoff 16384
qos_deadline_downgrade 1
qos_class name=latency weight=8 strict=1 capacity=512 deadline_us=500
qos_class name=gold weight=3 capacity=2048 high=1536 low=256
qos_class name=background weight=0.5 capacity=64
rail preset myri10g
rail preset qsnet2
)");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_TRUE(cfg.engine.qos.enabled);
  EXPECT_EQ(cfg.engine.qos.quantum, 32768u);
  EXPECT_EQ(cfg.engine.qos.bulk_chunk, 131072u);
  EXPECT_EQ(cfg.engine.qos.aging, usec(750.0));
  EXPECT_EQ(cfg.engine.qos.latency_cutoff, 16384u);
  EXPECT_TRUE(cfg.engine.qos.deadline_downgrade);
  ASSERT_EQ(cfg.engine.qos.classes.size(), 3u);  // declared set replaces built-ins
  EXPECT_EQ(cfg.engine.qos.classes[0].name, "latency");
  EXPECT_DOUBLE_EQ(cfg.engine.qos.classes[0].weight, 8.0);
  EXPECT_TRUE(cfg.engine.qos.classes[0].strict_priority);
  EXPECT_EQ(cfg.engine.qos.classes[0].queue_capacity, 512u);
  EXPECT_EQ(cfg.engine.qos.classes[0].default_deadline, usec(500.0));
  EXPECT_EQ(cfg.engine.qos.classes[1].name, "gold");
  EXPECT_DOUBLE_EQ(cfg.engine.qos.classes[1].weight, 3.0);
  EXPECT_FALSE(cfg.engine.qos.classes[1].strict_priority);
  EXPECT_EQ(cfg.engine.qos.classes[1].high_watermark, 1536u);
  EXPECT_EQ(cfg.engine.qos.classes[1].low_watermark, 256u);
  EXPECT_DOUBLE_EQ(cfg.engine.qos.classes[2].weight, 0.5);

  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_TRUE(again.engine.qos.enabled);
  EXPECT_EQ(again.engine.qos.quantum, 32768u);
  EXPECT_EQ(again.engine.qos.bulk_chunk, 131072u);
  EXPECT_EQ(again.engine.qos.aging, usec(750.0));
  EXPECT_EQ(again.engine.qos.latency_cutoff, 16384u);
  EXPECT_TRUE(again.engine.qos.deadline_downgrade);
  ASSERT_EQ(again.engine.qos.classes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(again.engine.qos.classes[i].name, cfg.engine.qos.classes[i].name);
    EXPECT_DOUBLE_EQ(again.engine.qos.classes[i].weight,
                     cfg.engine.qos.classes[i].weight);
    EXPECT_EQ(again.engine.qos.classes[i].strict_priority,
              cfg.engine.qos.classes[i].strict_priority);
    EXPECT_EQ(again.engine.qos.classes[i].queue_capacity,
              cfg.engine.qos.classes[i].queue_capacity);
    EXPECT_EQ(again.engine.qos.classes[i].high_watermark,
              cfg.engine.qos.classes[i].high_watermark);
    EXPECT_EQ(again.engine.qos.classes[i].low_watermark,
              cfg.engine.qos.classes[i].low_watermark);
    EXPECT_EQ(again.engine.qos.classes[i].default_deadline,
              cfg.engine.qos.classes[i].default_deadline);
  }
}

TEST(ClusterConfig, ReliabilityDirectivesRoundTrip) {
  std::istringstream is(R"(
nodes 2
reliability 1
reliability_checksum 0
reliability_max_retransmits 4
reliability_ack_slack 3.5
reliability_min_timeout_us 80
reliability_backoff 1.5
reliability_ack_delay_us 10
reliability_loss_streak 5
rail preset myri10g
rail preset qsnet2
)");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_TRUE(cfg.engine.reliability.enabled);
  EXPECT_FALSE(cfg.engine.reliability.checksum);
  EXPECT_EQ(cfg.engine.reliability.max_retransmits, 4u);
  EXPECT_DOUBLE_EQ(cfg.engine.reliability.ack_timeout_slack, 3.5);
  EXPECT_EQ(cfg.engine.reliability.min_ack_timeout, usec(80.0));
  EXPECT_DOUBLE_EQ(cfg.engine.reliability.backoff, 1.5);
  EXPECT_EQ(cfg.engine.reliability.ack_delay, usec(10.0));
  EXPECT_EQ(cfg.engine.reliability.loss_streak_quarantine, 5u);

  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_TRUE(again.engine.reliability.enabled);
  EXPECT_FALSE(again.engine.reliability.checksum);
  EXPECT_EQ(again.engine.reliability.max_retransmits, 4u);
  EXPECT_DOUBLE_EQ(again.engine.reliability.ack_timeout_slack, 3.5);
  EXPECT_EQ(again.engine.reliability.min_ack_timeout, usec(80.0));
  EXPECT_DOUBLE_EQ(again.engine.reliability.backoff, 1.5);
  EXPECT_EQ(again.engine.reliability.ack_delay, usec(10.0));
  EXPECT_EQ(again.engine.reliability.loss_streak_quarantine, 5u);
}

TEST(ClusterConfig, FaultDirectivesRoundTrip) {
  std::istringstream is(R"(
nodes 2
fault_seed 42
fault rail=1 drop=0.02 corrupt=0.001 dup=0.01 reorder=4
fault rail=0 node=1 at_us=50 duration_us=200 drop=0.5
rail preset myri10g
rail preset qsnet2
)");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_EQ(cfg.fabric.fault_seed, 42u);
  // The first line fans out into one RailFault per kind present.
  ASSERT_EQ(cfg.fabric.faults.size(), 5u);
  EXPECT_EQ(cfg.fabric.faults[0].rail, 1);
  EXPECT_EQ(cfg.fabric.faults[0].node, -1);  // every node
  EXPECT_EQ(cfg.fabric.faults[0].spec.kind, fabric::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(cfg.fabric.faults[0].spec.rate, 0.02);
  EXPECT_EQ(cfg.fabric.faults[1].spec.kind, fabric::FaultKind::kCorrupt);
  EXPECT_DOUBLE_EQ(cfg.fabric.faults[1].spec.rate, 0.001);
  EXPECT_EQ(cfg.fabric.faults[2].spec.kind, fabric::FaultKind::kDup);
  EXPECT_DOUBLE_EQ(cfg.fabric.faults[2].spec.rate, 0.01);
  EXPECT_EQ(cfg.fabric.faults[3].spec.kind, fabric::FaultKind::kReorder);
  EXPECT_EQ(cfg.fabric.faults[3].spec.reorder_window, 4u);
  EXPECT_EQ(cfg.fabric.faults[4].rail, 0);
  EXPECT_EQ(cfg.fabric.faults[4].node, 1);
  EXPECT_EQ(cfg.fabric.faults[4].spec.at, usec(50.0));
  EXPECT_EQ(cfg.fabric.faults[4].spec.duration, usec(200.0));
  EXPECT_DOUBLE_EQ(cfg.fabric.faults[4].spec.rate, 0.5);

  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_EQ(again.fabric.fault_seed, 42u);
  ASSERT_EQ(again.fabric.faults.size(), cfg.fabric.faults.size());
  for (std::size_t i = 0; i < again.fabric.faults.size(); ++i) {
    EXPECT_EQ(again.fabric.faults[i].rail, cfg.fabric.faults[i].rail) << i;
    EXPECT_EQ(again.fabric.faults[i].node, cfg.fabric.faults[i].node) << i;
    EXPECT_EQ(again.fabric.faults[i].spec.kind, cfg.fabric.faults[i].spec.kind) << i;
    EXPECT_DOUBLE_EQ(again.fabric.faults[i].spec.rate,
                     cfg.fabric.faults[i].spec.rate)
        << i;
    EXPECT_EQ(again.fabric.faults[i].spec.reorder_window,
              cfg.fabric.faults[i].spec.reorder_window)
        << i;
    EXPECT_EQ(again.fabric.faults[i].spec.at, cfg.fabric.faults[i].spec.at) << i;
    EXPECT_EQ(again.fabric.faults[i].spec.duration,
              cfg.fabric.faults[i].spec.duration)
        << i;
  }
}

TEST(ClusterConfig, ReliabilityDefaultsStayInert) {
  std::istringstream is("nodes 2\nrail preset myri10g\n");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_FALSE(cfg.engine.reliability.enabled);
  EXPECT_TRUE(cfg.fabric.faults.empty());
  EXPECT_EQ(cfg.fabric.fault_seed, 0u);
}

TEST(ClusterConfig, QosDefaultsStayInert) {
  std::istringstream is("nodes 2\nrail preset myri10g\n");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_FALSE(cfg.engine.qos.enabled);
  EXPECT_TRUE(cfg.engine.qos.classes.empty());  // built-ins apply lazily
}

TEST(ClusterConfig, ConfigBuildsWorkingWorld) {
  std::istringstream is(R"(
nodes 2
strategy hetero-split
sampler_max_size 1048576
rail preset myri10g
rail preset qsnet2
)");
  core::World world(parse_world_config(is));
  EXPECT_EQ(world.fabric().rail_count(), 2u);
  EXPECT_GT(world.measure_bandwidth(512_KiB, 1), 1000.0);
}

TEST(ClusterConfig, NetworkTopologyDirectivesRoundTrip) {
  std::istringstream is(R"(
topology 2x2
topology torus 4x4
event_sharding 1
strategy hetero-split
rail preset seastar-torus
rail preset qsnet2
)");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_EQ(cfg.fabric.net.kind, topo::TopoKind::kTorus2D);
  EXPECT_EQ(cfg.fabric.net.width, 4u);
  EXPECT_EQ(cfg.fabric.net.height, 4u);
  EXPECT_EQ(cfg.fabric.node_count, 16u);  // the grid implies the node count
  EXPECT_TRUE(cfg.fabric.event_sharding);
  EXPECT_EQ(cfg.fabric.topology.sockets, 2u);  // machine form still parses

  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_EQ(again.fabric.net.kind, topo::TopoKind::kTorus2D);
  EXPECT_EQ(again.fabric.net.width, 4u);
  EXPECT_EQ(again.fabric.node_count, 16u);
  EXPECT_TRUE(again.fabric.event_sharding);
}

TEST(ClusterConfig, FatTreeDirectiveRoundTrip) {
  std::istringstream is(R"(
nodes 64
topology fattree 16x8
strategy hetero-split
rail preset ib-ddr
)");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_EQ(cfg.fabric.net.kind, topo::TopoKind::kFatTree2L);
  EXPECT_EQ(cfg.fabric.net.down_ports, 16u);
  EXPECT_EQ(cfg.fabric.net.up_ports, 8u);
  EXPECT_EQ(cfg.fabric.node_count, 64u);  // `nodes` stays authoritative

  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_EQ(again.fabric.net.down_ports, 16u);
  EXPECT_EQ(again.fabric.net.up_ports, 8u);
  EXPECT_FALSE(again.fabric.event_sharding);  // off stays implicit
}

TEST(ClusterConfig, MeshExampleConfigBuildsWorkingWorld) {
  const WorldConfig cfg =
      load_world_config(std::string(RAILS_REPO_CONFIG_DIR) + "/mesh.rails");
  EXPECT_EQ(cfg.fabric.net.kind, topo::TopoKind::kMesh2D);
  EXPECT_EQ(cfg.fabric.node_count, 16u);
  EXPECT_TRUE(cfg.fabric.event_sharding);
  core::World world(cfg);
  EXPECT_EQ(world.fabric().node_count(), 16u);
  EXPECT_EQ(world.fabric().events().shard_count(), 16u);
  EXPECT_GT(world.measure_bandwidth(512_KiB, 1), 500.0);
}

TEST(ClusterConfigDeath, TopologyBadKind) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("topology ring 8\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "topology");
}

TEST(ClusterConfigDeath, MeshMissingDims) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("topology mesh 16\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "WxH");
}

TEST(ClusterConfigDeath, UnknownDirective) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("bogus 7\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, UnknownPreset) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("rail preset carrier-pigeon\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, NoRails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("nodes 2\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, RecalAlphaOutOfRange) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("recal_alpha 1.5\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, BadKeyValue) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("rail custom name\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, QosQuantumZero) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("qos_quantum 0\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, QosClassMissingName) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("qos_class weight=2\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, QosClassNonPositiveWeight) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("qos_class name=x weight=0\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, QosClassUnknownParameter) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("qos_class name=x color=red\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, FaultRateOutOfRange) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("fault rail=0 drop=1.5\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, FaultWithoutRail) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("fault drop=0.1\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, FaultWithoutAnyKind) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("fault rail=0 at_us=10\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, ReliabilityZeroRetransmits) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("reliability_max_retransmits 0\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfig, HealthPlaneDirectivesRoundTrip) {
  std::istringstream is(R"(
nodes 2
qos 1
timeseries 1
timeseries_interval_us 250
timeseries_capacity 128
slo latency hit_rate=0.995 window_us=8000 fast_window_us=2000
slo gold p99_us=1500 hit_rate=0.95 window_us=12000 fast_burn=10 slow_burn=4 patience=5 min_events=16
rail preset myri10g
rail preset qsnet2
)");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_TRUE(cfg.engine.timeseries.enabled);
  EXPECT_EQ(cfg.engine.timeseries.interval, usec(250.0));
  EXPECT_EQ(cfg.engine.timeseries.capacity, 128u);
  ASSERT_EQ(cfg.engine.slos.size(), 2u);
  EXPECT_EQ(cfg.engine.slos[0].cls, "latency");
  EXPECT_DOUBLE_EQ(cfg.engine.slos[0].hit_rate, 0.995);
  EXPECT_DOUBLE_EQ(cfg.engine.slos[0].p99_us, 0.0);
  EXPECT_EQ(cfg.engine.slos[0].window, usec(8000.0));
  EXPECT_EQ(cfg.engine.slos[0].fast_window, usec(2000.0));
  EXPECT_EQ(cfg.engine.slos[1].cls, "gold");
  EXPECT_DOUBLE_EQ(cfg.engine.slos[1].p99_us, 1500.0);
  EXPECT_DOUBLE_EQ(cfg.engine.slos[1].fast_burn, 10.0);
  EXPECT_DOUBLE_EQ(cfg.engine.slos[1].slow_burn, 4.0);
  EXPECT_EQ(cfg.engine.slos[1].clear_patience, 5u);
  EXPECT_EQ(cfg.engine.slos[1].min_events, 16u);

  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_TRUE(again.engine.timeseries.enabled);
  EXPECT_EQ(again.engine.timeseries.interval, usec(250.0));
  EXPECT_EQ(again.engine.timeseries.capacity, 128u);
  ASSERT_EQ(again.engine.slos.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(again.engine.slos[i].cls, cfg.engine.slos[i].cls);
    EXPECT_DOUBLE_EQ(again.engine.slos[i].p99_us, cfg.engine.slos[i].p99_us);
    EXPECT_DOUBLE_EQ(again.engine.slos[i].hit_rate, cfg.engine.slos[i].hit_rate);
    EXPECT_EQ(again.engine.slos[i].window, cfg.engine.slos[i].window);
    EXPECT_EQ(again.engine.slos[i].fast_window, cfg.engine.slos[i].fast_window);
    EXPECT_DOUBLE_EQ(again.engine.slos[i].fast_burn, cfg.engine.slos[i].fast_burn);
    EXPECT_DOUBLE_EQ(again.engine.slos[i].slow_burn, cfg.engine.slos[i].slow_burn);
    EXPECT_EQ(again.engine.slos[i].clear_patience, cfg.engine.slos[i].clear_patience);
    EXPECT_EQ(again.engine.slos[i].min_events, cfg.engine.slos[i].min_events);
  }
}

TEST(ClusterConfig, HealthPlaneDefaultsStayInert) {
  std::istringstream is("nodes 2\nrail preset myri10g\n");
  const WorldConfig cfg = parse_world_config(is);
  EXPECT_FALSE(cfg.engine.timeseries.enabled);
  EXPECT_TRUE(cfg.engine.slos.empty());
}

TEST(ClusterConfig, SloExampleConfigRoundTrips) {
  // The checked-in example the docs and railsctl smokes use must load,
  // round-trip through save, and build a working world.
  const WorldConfig cfg =
      load_world_config(std::string(RAILS_REPO_CONFIG_DIR) + "/slo.rails");
  EXPECT_TRUE(cfg.engine.qos.enabled);
  EXPECT_TRUE(cfg.engine.timeseries.enabled);
  ASSERT_EQ(cfg.engine.slos.size(), 2u);
  EXPECT_EQ(cfg.engine.slos[0].cls, "latency");
  EXPECT_EQ(cfg.engine.slos[1].cls, "gold");

  std::stringstream ss;
  save_world_config(cfg, ss);
  const WorldConfig again = parse_world_config(ss);
  EXPECT_EQ(again.engine.slos.size(), cfg.engine.slos.size());
  EXPECT_EQ(again.engine.timeseries.capacity, cfg.engine.timeseries.capacity);
  EXPECT_EQ(again.engine.qos.classes.size(), cfg.engine.qos.classes.size());
}

TEST(ClusterConfigDeath, TimeseriesIntervalNonPositive) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("timeseries_interval_us 0\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, TimeseriesCapacityTooSmall) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("timeseries_capacity 2\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, SloWithoutObjective) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("slo gold window_us=5000\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, SloHitRateOutOfRange) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("slo gold hit_rate=1.0\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

TEST(ClusterConfigDeath, SloUnknownParameter) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::istringstream is("slo gold hit_rate=0.9 color=red\nrail preset myri10g\n");
  EXPECT_DEATH(parse_world_config(is), "malformed");
}

}  // namespace
}  // namespace rails::core
