// End-to-end reliable delivery (docs/FAULTS.md, "Data-plane faults &
// reliable delivery"): CRC32C verification, the per-link sequence window,
// coalesced ACK / NACK feedback, bounded retransmit with backoff, and the
// escalation into the PR 2 failover/quarantine machinery when the retry
// budget runs dry. Every scenario runs in virtual time with a seeded fault
// RNG, so the storms are exactly reproducible.
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/fault.hpp"
#include "trace/flight_recorder.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

WorldConfig reliable_testbed(const char* strategy) {
  WorldConfig cfg = paper_testbed(strategy);
  cfg.engine.reliability.enabled = true;
  return cfg;
}

fabric::FaultSpec rate_fault(fabric::FaultKind kind, double rate) {
  fabric::FaultSpec f;
  f.kind = kind;
  f.rate = rate;
  return f;
}

fabric::FaultSpec reorder_fault(unsigned window) {
  fabric::FaultSpec f;
  f.kind = fabric::FaultKind::kReorder;
  f.reorder_window = window;
  f.rate = 1.0;
  return f;
}

/// Applies `spec` to every NIC of `node` (both directions of a fault storm
/// need the faults on the sender of the traffic in question).
void fault_all_rails(World& world, NodeId node, const fabric::FaultSpec& spec) {
  for (RailId r = 0; r < static_cast<RailId>(world.fabric().rail_count()); ++r) {
    world.fabric().nic(node, r).inject_fault(spec);
  }
}

/// `count` patterned eager messages plus one patterned rendezvous transfer,
/// node 0 -> node 1, all submitted up front; drains the event queue and
/// checks byte-exact exactly-once delivery.
void run_mixed_and_verify(World& world, unsigned count, std::size_t eager_size,
                          std::size_t rdv_size) {
  std::vector<std::vector<std::uint8_t>> tx, rx;
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (unsigned i = 0; i < count; ++i) {
    tx.push_back(test::make_pattern(eager_size, i));
    rx.emplace_back(eager_size, 0);
  }
  tx.push_back(test::make_pattern(rdv_size, 999));
  rx.emplace_back(rdv_size, 0);
  for (unsigned i = 0; i <= count; ++i) {
    recvs.push_back(world.engine(1).irecv(0, static_cast<Tag>(i), rx[i].data(),
                                          rx[i].size()));
  }
  for (unsigned i = 0; i <= count; ++i) {
    sends.push_back(
        world.engine(0).isend(1, static_cast<Tag>(i), tx[i].data(), tx[i].size()));
  }
  world.fabric().events().run_all();

  for (unsigned i = 0; i <= count; ++i) {
    ASSERT_TRUE(recvs[i]->done()) << "message " << i << " never completed";
    EXPECT_TRUE(sends[i]->done());
    EXPECT_EQ(recvs[i]->bytes_received, tx[i].size()) << "message " << i;
    EXPECT_EQ(rx[i], tx[i]) << "message " << i << " is not byte-exact";
  }
}

// -- zero fault rate: the reliable path must be invisible --------------------

TEST(Reliability, ZeroFaultPathIsCleanAndDrains) {
  World world(reliable_testbed("hetero-split"));
  run_mixed_and_verify(world, 16, 2048, 1_MiB);

  const auto& tx_stats = world.engine(0).stats();
  const auto& rx_stats = world.engine(1).stats();
  EXPECT_GT(tx_stats.rel_segments, 0u);
  EXPECT_GT(rx_stats.rel_acks, 0u);
  EXPECT_EQ(tx_stats.rel_retransmits, 0u);
  EXPECT_EQ(tx_stats.rel_drops_inferred, 0u);
  EXPECT_EQ(tx_stats.rel_retry_exhausted, 0u);
  EXPECT_EQ(rx_stats.rel_corruptions, 0u);
  EXPECT_EQ(rx_stats.rel_dup_suppressed, 0u);
  EXPECT_EQ(rx_stats.rel_nacks, 0u);
  // Every parked retransmit copy was retired by the ACK stream.
  EXPECT_EQ(world.engine(0).reliable_in_flight(), 0u);
  EXPECT_EQ(world.engine(1).reliable_in_flight(), 0u);
}

TEST(Reliability, AcksAreCoalesced) {
  World world(reliable_testbed("aggregate-fastest"));
  run_mixed_and_verify(world, 32, 512, 256_KiB);
  // One delayed ACK covers a run of sequence numbers: far fewer ACKs than
  // sequenced segments, or the feedback channel would double segment load.
  EXPECT_GT(world.engine(1).stats().rel_acks, 0u);
  EXPECT_LT(world.engine(1).stats().rel_acks, world.engine(0).stats().rel_segments);
}

// -- single fault kinds ------------------------------------------------------

TEST(Reliability, SilentDropsAreInferredAndRetransmitted) {
  World world(reliable_testbed("hetero-split"));
  // Every rail out of node 0 eats a quarter of what it sends: wherever the
  // strategy routes a segment, its loss is only repairable by the ACK
  // timeout inferring the drop and retransmitting from the parked copy.
  // Sequential rounds (not one burst) so aggregation cannot collapse the
  // whole workload into a handful of giant segments that happen to survive.
  fault_all_rails(world, 0, rate_fault(fabric::FaultKind::kDrop, 0.25));

  for (unsigned round = 0; round < 16; ++round) {
    const auto tx = test::make_pattern(2048, round);
    std::vector<std::uint8_t> rx(2048, 0);
    auto recv = world.engine(1).irecv(0, static_cast<Tag>(round), rx.data(), 2048);
    auto send =
        world.engine(0).isend(1, static_cast<Tag>(round), tx.data(), tx.size());
    world.fabric().events().run_all();
    ASSERT_TRUE(recv->done()) << "round " << round;
    ASSERT_TRUE(send->done()) << "round " << round;
    EXPECT_EQ(rx, tx) << "round " << round;
  }
  run_mixed_and_verify(world, 8, 2048, 1_MiB);

  const auto& stats = world.engine(0).stats();
  EXPECT_GT(world.fabric().nic(0, 0).segments_silently_dropped() +
                world.fabric().nic(0, 1).segments_silently_dropped(),
            0u);
  EXPECT_GT(stats.rel_drops_inferred, 0u);
  EXPECT_GT(stats.rel_retransmits, 0u);
  EXPECT_EQ(stats.rel_retry_exhausted, 0u);
  EXPECT_EQ(world.engine(0).reliable_in_flight(), 0u);
}

TEST(Reliability, CorruptionIsDetectedNackedAndRepaired) {
  World world(reliable_testbed("hetero-split"));
  fault_all_rails(world, 0, rate_fault(fabric::FaultKind::kCorrupt, 0.5));

  run_mixed_and_verify(world, 24, 2048, 512_KiB);

  EXPECT_GT(world.fabric().nic(0, 0).segments_corrupted() +
                world.fabric().nic(0, 1).segments_corrupted(),
            0u);
  // The receiver's CRC caught every flipped bit (the payloads verified
  // byte-exact above), NACKed, and the sender repaired from its parked copy.
  EXPECT_GT(world.engine(1).stats().rel_corruptions, 0u);
  EXPECT_GT(world.engine(1).stats().rel_nacks, 0u);
  EXPECT_GT(world.engine(0).stats().rel_retransmits, 0u);
  EXPECT_EQ(world.engine(0).reliable_in_flight(), 0u);
}

TEST(Reliability, DuplicatesAreSuppressedExactlyOnce) {
  World world(reliable_testbed("hetero-split"));
  // EVERY data segment arrives twice; bytes_received checked by the helper
  // pins that no duplicate was counted into a completion.
  fault_all_rails(world, 0, rate_fault(fabric::FaultKind::kDup, 1.0));

  run_mixed_and_verify(world, 16, 2048, 512_KiB);

  EXPECT_GT(world.fabric().nic(0, 0).segments_duplicated(), 0u);
  EXPECT_GT(world.engine(1).stats().rel_dup_suppressed, 0u);
  EXPECT_EQ(world.engine(1).stats().rel_corruptions, 0u);
}

TEST(Reliability, ReorderingIsToleratedByTheSequenceWindow) {
  World world(reliable_testbed("aggregate-fastest"));
  fault_all_rails(world, 0, reorder_fault(4));

  run_mixed_and_verify(world, 32, 1024, 256_KiB);

  EXPECT_GT(world.fabric().nic(0, 0).segments_reordered() +
                world.fabric().nic(0, 1).segments_reordered(),
            0u);
  EXPECT_EQ(world.engine(0).stats().rel_retry_exhausted, 0u);
  EXPECT_EQ(world.engine(0).reliable_in_flight(), 0u);
}

// -- mixed storm -------------------------------------------------------------

TEST(Reliability, MixedFaultStormStillDeliversExactlyOnce) {
  World world(reliable_testbed("hetero-split"));
  // Faults on every NIC of both nodes: the ACK/NACK feedback path suffers
  // the same storm as the data it acknowledges.
  for (NodeId n = 0; n < 2; ++n) {
    fault_all_rails(world, n, rate_fault(fabric::FaultKind::kDrop, 0.02));
    fault_all_rails(world, n, rate_fault(fabric::FaultKind::kCorrupt, 0.01));
    fault_all_rails(world, n, rate_fault(fabric::FaultKind::kDup, 0.05));
    fault_all_rails(world, n, reorder_fault(4));
  }

  run_mixed_and_verify(world, 48, 2048, 1_MiB);

  EXPECT_EQ(world.engine(0).stats().rel_retry_exhausted, 0u);
  EXPECT_EQ(world.engine(1).stats().rel_retry_exhausted, 0u);
  EXPECT_EQ(world.engine(0).reliable_in_flight(), 0u);
  EXPECT_EQ(world.engine(1).reliable_in_flight(), 0u);
}

TEST(Reliability, FaultStormIsDeterministicUnderAFixedSeed) {
  const auto run_once = [](std::uint64_t seed) {
    WorldConfig cfg = reliable_testbed("hetero-split");
    cfg.fabric.fault_seed = seed;
    World world(std::move(cfg));
    fault_all_rails(world, 0, rate_fault(fabric::FaultKind::kDrop, 0.1));
    fault_all_rails(world, 0, rate_fault(fabric::FaultKind::kDup, 0.1));
    run_mixed_and_verify(world, 24, 2048, 512_KiB);
    return std::tuple{world.now(), world.engine(0).stats().rel_retransmits,
                      world.engine(0).stats().rel_drops_inferred,
                      world.engine(1).stats().rel_dup_suppressed};
  };
  EXPECT_EQ(run_once(7), run_once(7));
  // A different seed draws a different storm (same workload, so any
  // divergence must come from the fault RNG).
  EXPECT_NE(run_once(7), run_once(8));
}

// -- escalation into PR 2 failover/quarantine --------------------------------

TEST(Reliability, LossStreakHandsTheSickRailToQuarantine) {
  World world(reliable_testbed("hetero-split"));
  // Rail 0 is a black hole for data; the link itself reports "up", so only
  // the loss-streak escalation can take it out of service.
  world.fabric().nic(0, 0).inject_fault(rate_fault(fabric::FaultKind::kDrop, 1.0));

  run_mixed_and_verify(world, 12, 2048, 512_KiB);

  EXPECT_GE(world.engine(0).stats().quarantines, 1u);
  EXPECT_GT(world.engine(0).stats().rel_retransmits, 0u);
  EXPECT_EQ(world.engine(0).stats().rel_retry_exhausted, 0u);
}

TEST(Reliability, RetryBudgetExhaustionFailsTheSendInsteadOfHanging) {
  WorldConfig cfg = reliable_testbed("hetero-split");
  cfg.engine.reliability.max_retransmits = 2;
  World world(std::move(cfg));
  trace::FlightRecorder recorder;
  world.engine(0).set_flight_recorder(&recorder);
  // Every rail out of node 0 drops everything: no handshake can ever land,
  // so the retry budget must fire and fail the send outright.
  fault_all_rails(world, 0, rate_fault(fabric::FaultKind::kDrop, 1.0));

  const std::size_t size = 256_KiB;
  const auto tx = test::make_pattern(size, 3);
  std::vector<std::uint8_t> rx(size, 0);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.fabric().events().run_all();  // must terminate — pin for the no-hang guarantee

  EXPECT_TRUE(send->failed());
  EXPECT_FALSE(recv->done());
  const auto& stats = world.engine(0).stats();
  EXPECT_GE(stats.rel_retry_exhausted, 1u);
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_EQ(world.engine(0).reliable_in_flight(), 0u);

  // The exhaustion left a postmortem trail in the flight recorder.
  bool saw_exhaustion = false;
  for (const auto& r : recorder.snapshot()) {
    if (r.kind == trace::FlightKind::kRetryExhausted) saw_exhaustion = true;
  }
  EXPECT_TRUE(saw_exhaustion);
  world.engine(0).set_flight_recorder(nullptr);
}

TEST(Reliability, TxErrorOnSequencedSegmentRetransmitsWithoutResplit) {
  World world(reliable_testbed("hetero-split"));
  // Fail-stop mid-transfer: in-flight chunks surface as completion-queue
  // errors. With reliability on, the parked-copy retransmit owns recovery —
  // the PR 2 byte-range re-split must stay out of the way (one repair path,
  // not two competing ones).
  fabric::FaultSpec fail;
  fail.kind = fabric::FaultKind::kFailStop;
  fail.at = usec(20);
  world.fabric().nic(0, 0).inject_fault(fail);

  const std::size_t size = 4_MiB;
  const auto tx = test::make_pattern(size, 4);
  std::vector<std::uint8_t> rx(size, 0);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.fabric().events().run_all();

  ASSERT_TRUE(recv->done());
  EXPECT_TRUE(send->done());
  EXPECT_EQ(rx, tx);
  const auto& stats = world.engine(0).stats();
  EXPECT_GE(stats.tx_errors, 1u);
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_GE(stats.rel_retransmits, 1u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.chunk_timeouts, 0u);  // the ACK timeout owns loss detection
}

// -- receiver dedup with reliability OFF (the PR 2 audit) --------------------

TEST(Reliability, DuplicatedControlSegmentsAreToleratedWithoutReliability) {
  // The sequence window is off, so raw wire duplicates reach the protocol
  // handlers: a duplicate RTS must not double-match, a duplicate CTS must
  // not restart streaming, a duplicate FIN must not double-complete a
  // recycled send, and duplicate DATA must not double-count bytes.
  World world(paper_testbed("hetero-split"));
  ASSERT_FALSE(world.engine(0).config().reliability.enabled);
  fault_all_rails(world, 0, rate_fault(fabric::FaultKind::kDup, 1.0));
  fault_all_rails(world, 1, rate_fault(fabric::FaultKind::kDup, 1.0));

  const std::size_t size = 1_MiB;
  const auto tx = test::make_pattern(size, 5);
  std::vector<std::uint8_t> rx(size, 0);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.fabric().events().run_all();

  ASSERT_TRUE(recv->done());
  EXPECT_TRUE(send->done());
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(recv->bytes_received, size);
  // Every duplicate was absorbed by a dedup path and counted, not crashed on.
  EXPECT_GT(world.engine(1).stats().duplicate_chunks, 0u);
  EXPECT_GT(world.engine(0).stats().stale_control +
                world.engine(1).stats().stale_control,
            0u);
}

}  // namespace
}  // namespace rails::core
