#include <gtest/gtest.h>

#include "core/world.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

class EagerEngineTest : public ::testing::Test {
 protected:
  // One world per fixture instance keeps NIC/core state isolated per test.
  EagerEngineTest() : world_(paper_testbed("aggregate-fastest")) {}

  core::World world_;
};

TEST_F(EagerEngineTest, SmallMessageIntegrity) {
  const auto tx = test::make_pattern(1024, 7);
  std::vector<std::uint8_t> rx(1024, 0);
  auto recv = world_.engine(1).irecv(0, 5, rx.data(), rx.size());
  auto send = world_.engine(0).isend(1, 5, tx.data(), tx.size());
  world_.wait(recv);
  EXPECT_TRUE(send->done());
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(recv->bytes_received, 1024u);
}

TEST_F(EagerEngineTest, ZeroByteMessage) {
  auto recv = world_.engine(1).irecv(0, 1, nullptr, 0);
  auto send = world_.engine(0).isend(1, 1, nullptr, 0);
  world_.wait(recv);
  EXPECT_TRUE(recv->done());
  EXPECT_TRUE(send->done());
  EXPECT_EQ(recv->bytes_received, 0u);
}

TEST_F(EagerEngineTest, UnexpectedMessageBuffered) {
  const auto tx = test::make_pattern(512, 3);
  std::vector<std::uint8_t> rx(512, 0);
  auto send = world_.engine(0).isend(1, 9, tx.data(), tx.size());
  world_.fabric().events().run_all();  // arrives before any recv is posted
  EXPECT_TRUE(send->done());
  auto recv = world_.engine(1).irecv(0, 9, rx.data(), rx.size());
  // Matched immediately from the unexpected store.
  EXPECT_TRUE(recv->done());
  EXPECT_EQ(rx, tx);
}

TEST_F(EagerEngineTest, TagsMatchIndependently) {
  const auto tx_a = test::make_pattern(100, 1);
  const auto tx_b = test::make_pattern(200, 2);
  std::vector<std::uint8_t> rx_a(100), rx_b(200);
  // Post receives in the opposite order of the sends.
  auto recv_b = world_.engine(1).irecv(0, 22, rx_b.data(), rx_b.size());
  auto recv_a = world_.engine(1).irecv(0, 11, rx_a.data(), rx_a.size());
  world_.engine(0).isend(1, 11, tx_a.data(), tx_a.size());
  world_.engine(0).isend(1, 22, tx_b.data(), tx_b.size());
  world_.wait(recv_a);
  world_.wait(recv_b);
  EXPECT_EQ(rx_a, tx_a);
  EXPECT_EQ(rx_b, tx_b);
}

TEST_F(EagerEngineTest, SameTagMatchesInOrder) {
  const auto tx1 = test::make_pattern(64, 10);
  const auto tx2 = test::make_pattern(64, 20);
  std::vector<std::uint8_t> rx1(64), rx2(64);
  auto recv1 = world_.engine(1).irecv(0, 7, rx1.data(), 64);
  auto recv2 = world_.engine(1).irecv(0, 7, rx2.data(), 64);
  world_.engine(0).isend(1, 7, tx1.data(), 64);
  world_.engine(0).isend(1, 7, tx2.data(), 64);
  world_.wait(recv1);
  world_.wait(recv2);
  // FIFO semantics: first posted recv gets the first send.
  EXPECT_EQ(rx1, tx1);
  EXPECT_EQ(rx2, tx2);
}

TEST_F(EagerEngineTest, AggregationSharesOneSegment) {
  // While the NIC is busy with the first message, subsequent submissions
  // accumulate in the pack list and leave in one aggregated segment.
  const auto tx = test::make_pattern(256, 4);
  std::vector<std::vector<std::uint8_t>> rx(8, std::vector<std::uint8_t>(256));
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < 8; ++i) {
    recvs.push_back(world_.engine(1).irecv(0, 100 + i, rx[i].data(), 256));
  }
  std::vector<SendHandle> sends;
  for (int i = 0; i < 8; ++i) {
    sends.push_back(world_.engine(0).isend(1, 100 + i, tx.data(), 256));
  }
  for (auto& r : recvs) world_.wait(r);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rx[i], tx);

  const auto& stats = world_.engine(0).stats();
  EXPECT_EQ(stats.eager_msgs, 8u);
  // Message 1 leaves alone immediately; 2..8 are queued behind the busy NIC
  // and leave aggregated: strictly fewer segments than messages.
  EXPECT_LT(stats.eager_segments, 8u);
  EXPECT_GT(stats.aggregated_packets, 0u);
}

TEST_F(EagerEngineTest, ManySizesIntegrity) {
  for (std::size_t size : {1ul, 3ul, 64ul, 1000ul, 4096ul, 16384ul, 32768ul}) {
    const auto tx = test::make_pattern(size, size);
    std::vector<std::uint8_t> rx(size, 0);
    auto recv = world_.engine(1).irecv(0, size, rx.data(), size);
    world_.engine(0).isend(1, size, tx.data(), size);
    world_.wait(recv);
    EXPECT_EQ(rx, tx) << "size " << size;
  }
}

TEST_F(EagerEngineTest, BidirectionalTraffic) {
  const auto tx0 = test::make_pattern(2048, 1);
  const auto tx1 = test::make_pattern(2048, 2);
  std::vector<std::uint8_t> rx0(2048), rx1(2048);
  auto recv0 = world_.engine(0).irecv(1, 1, rx0.data(), 2048);
  auto recv1 = world_.engine(1).irecv(0, 1, rx1.data(), 2048);
  world_.engine(0).isend(1, 1, tx0.data(), 2048);
  world_.engine(1).isend(0, 1, tx1.data(), 2048);
  world_.wait(recv0);
  world_.wait(recv1);
  EXPECT_EQ(rx1, tx0);
  EXPECT_EQ(rx0, tx1);
}

TEST_F(EagerEngineTest, SendCompletionIsLocal) {
  // Eager sends complete at host release (buffered semantics), before the
  // receiver ever posts a matching recv.
  const auto tx = test::make_pattern(128, 5);
  auto send = world_.engine(0).isend(1, 3, tx.data(), tx.size());
  world_.fabric().events().run_all();
  EXPECT_TRUE(send->done());
  EXPECT_EQ(world_.engine(1).stats().recvs, 0u);
}

TEST_F(EagerEngineTest, StatsCountMessages) {
  const auto tx = test::make_pattern(64, 1);
  std::vector<std::uint8_t> rx(64);
  auto recv = world_.engine(1).irecv(0, 1, rx.data(), 64);
  world_.engine(0).isend(1, 1, tx.data(), 64);
  world_.wait(recv);
  EXPECT_EQ(world_.engine(0).stats().sends, 1u);
  EXPECT_EQ(world_.engine(0).stats().eager_msgs, 1u);
  EXPECT_EQ(world_.engine(0).stats().rdv_msgs, 0u);
  EXPECT_EQ(world_.engine(1).stats().recvs, 1u);
}

TEST_F(EagerEngineTest, PendingSendsDrain) {
  const auto tx = test::make_pattern(4096, 2);
  for (int i = 0; i < 16; ++i) world_.engine(0).isend(1, 50 + i, tx.data(), tx.size());
  world_.fabric().events().run_all();
  EXPECT_EQ(world_.engine(0).pending_sends(), 0u);
}

TEST_F(EagerEngineTest, ThresholdFromSampling) {
  // The engine derives its eager/rendezvous switch from the sampled
  // profiles; for the paper testbed this lands in the tens of KiB.
  EXPECT_GE(world_.engine(0).rdv_threshold(), 8_KiB);
  EXPECT_LE(world_.engine(0).rdv_threshold(), 64_KiB);
}

}  // namespace
}  // namespace rails::core
