#include "bench_support/table.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace rails::bench {
namespace {

TEST(SeriesTable, StoresAndRetrievesValues) {
  SeriesTable t("demo", "x", {"a", "b"});
  t.add_row("1", {10.0, 20.0});
  t.add_row("2", {30.0, 40.0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_DOUBLE_EQ(t.value(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(t.value(1, 1), 40.0);
}

TEST(SeriesTable, PrintsAlignedColumns) {
  SeriesTable t("demo title", "size", {"first", "second"});
  t.add_row("4K", {1.5, 2.25});
  std::ostringstream os;
  t.print(os, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo title"), std::string::npos);
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(SeriesTable, NanRendersAsDash) {
  SeriesTable t("demo", "x", {"a"});
  t.add_row("1", {std::nan("")});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('-'), std::string::npos);
}

TEST(SeriesTableDeath, RowWidthMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SeriesTable t("demo", "x", {"a", "b"});
  EXPECT_DEATH(t.add_row("1", {1.0}), "");
}

TEST(FormatSize, HumanReadable) {
  EXPECT_EQ(format_size(4), "4");
  EXPECT_EQ(format_size(1023), "1023");
  EXPECT_EQ(format_size(1024), "1K");
  EXPECT_EQ(format_size(16384), "16K");
  EXPECT_EQ(format_size(1048576), "1M");
  EXPECT_EQ(format_size(8u << 20), "8M");
  // Non-multiples stay exact rather than rounding.
  EXPECT_EQ(format_size(1025), "1025");
}

TEST(Pow2Sizes, InclusiveLadder) {
  EXPECT_EQ(pow2_sizes(4, 32), (std::vector<std::size_t>{4, 8, 16, 32}));
  EXPECT_EQ(pow2_sizes(8, 8), (std::vector<std::size_t>{8}));
}

TEST(ShapeCheck, PrintsAndCounts) {
  const int before = shape_failures();
  std::ostringstream os;
  EXPECT_TRUE(shape_check(os, "always true", true));
  EXPECT_FALSE(shape_check(os, "always false", false));
  EXPECT_NE(os.str().find("[shape PASS] always true"), std::string::npos);
  EXPECT_NE(os.str().find("[shape FAIL] always false"), std::string::npos);
  EXPECT_EQ(shape_failures(), before + 1);
}

}  // namespace
}  // namespace rails::bench
