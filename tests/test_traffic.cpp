#include "bench_support/traffic.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"

namespace rails::bench {
namespace {

TEST(Traffic, LowLoadAchievesOfferedRate) {
  core::World world(core::paper_testbed("hetero-split"));
  TrafficConfig cfg;
  cfg.offered_mbps = 300.0;  // well below the ~2 GB/s capacity
  cfg.message_count = 100;
  const auto result = run_open_loop(world, cfg);
  EXPECT_NEAR(result.achieved_mbps, cfg.offered_mbps, cfg.offered_mbps * 0.35);
  EXPECT_GT(result.total_bytes, 0u);
  EXPECT_GT(result.p99_latency_us, result.p50_latency_us);
}

TEST(Traffic, DeterministicForFixedSeed) {
  TrafficConfig cfg;
  cfg.offered_mbps = 800.0;
  cfg.message_count = 60;
  core::World a(core::paper_testbed("iso-split"));
  core::World b(core::paper_testbed("iso-split"));
  const auto ra = run_open_loop(a, cfg);
  const auto rb = run_open_loop(b, cfg);
  EXPECT_DOUBLE_EQ(ra.mean_latency_us, rb.mean_latency_us);
  EXPECT_DOUBLE_EQ(ra.p99_latency_us, rb.p99_latency_us);
  EXPECT_EQ(ra.total_bytes, rb.total_bytes);
}

TEST(Traffic, DifferentSeedsDifferentSchedules) {
  TrafficConfig a;
  a.seed = 1;
  TrafficConfig b;
  b.seed = 2;
  core::World wa(core::paper_testbed("hetero-split"));
  core::World wb(core::paper_testbed("hetero-split"));
  EXPECT_NE(run_open_loop(wa, a).total_bytes, run_open_loop(wb, b).total_bytes);
}

TEST(Traffic, LatencyGrowsWithLoad) {
  auto mean_at = [](double load) {
    core::World world(core::paper_testbed("single-rail:0"));
    TrafficConfig cfg;
    cfg.offered_mbps = load;
    cfg.message_count = 100;
    return run_open_loop(world, cfg).mean_latency_us;
  };
  const double low = mean_at(200.0);
  const double high = mean_at(1400.0);  // beyond the 1.17 GB/s plateau
  EXPECT_GT(high, low * 3.0);
}

TEST(Traffic, SizesRespectBounds) {
  core::World world(core::paper_testbed("hetero-split"));
  TrafficConfig cfg;
  cfg.min_size = 1000;
  cfg.max_size = 2000;
  cfg.message_count = 50;
  const auto result = run_open_loop(world, cfg);
  EXPECT_GE(result.total_bytes, 50u * 1000u);
  EXPECT_LE(result.total_bytes, 50u * 2000u);
}

}  // namespace
}  // namespace rails::bench
