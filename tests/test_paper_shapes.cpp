// Integration tests pinning the qualitative results of the paper's
// evaluation section — the same checks the bench harness prints, kept here
// so a regression fails CI rather than only changing a table.
#include <gtest/gtest.h>

#include "core/world.hpp"

namespace rails::core {
namespace {

class PaperShapes : public ::testing::Test {
 protected:
  static core::World& world() {
    static core::World w(paper_testbed());
    return w;
  }
};

TEST_F(PaperShapes, Fig8BandwidthOrdering) {
  // hetero-split > iso-split > Myri-10G > Quadrics at 8 MiB.
  auto& w = world();
  w.set_strategy("single-rail:0");
  const double myri = w.measure_bandwidth(8_MiB, 2);
  w.set_strategy("single-rail:1");
  const double qsnet = w.measure_bandwidth(8_MiB, 2);
  w.set_strategy("iso-split");
  const double iso = w.measure_bandwidth(8_MiB, 2);
  w.set_strategy("hetero-split");
  const double hetero = w.measure_bandwidth(8_MiB, 2);

  EXPECT_GT(myri, qsnet);
  EXPECT_GT(iso, myri);
  EXPECT_GT(hetero, iso);
  // "the sampling-based hetero-split reaches ... very close to the
  // theoretical maximum bandwidth."
  EXPECT_GT(hetero, (myri + qsnet) * 0.97);
}

TEST_F(PaperShapes, Fig8IsoSplitLimitedByslowerRail) {
  // Iso-split is pinned at twice the slower rail's effective rate.
  auto& w = world();
  w.set_strategy("single-rail:1");
  const double qsnet = w.measure_bandwidth(8_MiB, 2);
  w.set_strategy("iso-split");
  const double iso = w.measure_bandwidth(8_MiB, 2);
  EXPECT_NEAR(iso, 2 * qsnet, 2 * qsnet * 0.03);
}

TEST_F(PaperShapes, Fig9SplitGainAtMediumEagerSize) {
  // "permits to reduce by up to 30% the transfer duration" towards the top
  // of the eager range (the engine's sampled threshold caps it here).
  auto& w = world();
  const std::size_t size = 24_KiB;
  ASSERT_LT(size, w.engine(0).rdv_threshold());
  w.set_strategy("aggregate-fastest");
  const SimDuration best_single = w.measure_one_way(size);
  w.set_strategy("multicore-hetero-split");
  const SimDuration split = w.measure_one_way(size);
  const double gain = 1.0 - static_cast<double>(split) / static_cast<double>(best_single);
  EXPECT_GT(gain, 0.20);
}

TEST_F(PaperShapes, Fig9SplittingTinyMessagesIsCostly) {
  // Below ~4 KiB the TO signalling dominates: the multicore strategy falls
  // back to aggregation and matches the single-rail latency.
  auto& w = world();
  w.set_strategy("aggregate-fastest");
  const SimDuration agg = w.measure_one_way(256);
  w.set_strategy("multicore-hetero-split");
  const SimDuration mc = w.measure_one_way(256);
  EXPECT_EQ(mc, agg);
}

TEST_F(PaperShapes, Fig3GreedyNeverBeatsBestAggregation) {
  auto& w = world();
  for (std::size_t total : {8ul, 64ul, 1024ul, 4096ul, 16384ul}) {
    w.set_strategy("single-rail:0");
    const SimDuration myri = w.measure_one_way_batch(total / 2, 2);
    w.set_strategy("single-rail:1");
    const SimDuration qsnet = w.measure_one_way_batch(total / 2, 2);
    w.set_strategy("greedy-balance");
    const SimDuration greedy = w.measure_one_way_batch(total / 2, 2);
    EXPECT_GE(greedy, std::min(myri, qsnet)) << "total " << total;
  }
}

TEST_F(PaperShapes, SectionIVAExampleChunkSplit) {
  // §IV-A: 4 MB hetero-split sends ~2437 KB over Myri-10G and ~1757 KB over
  // Quadrics, finishing within a few µs of each other around ~2000 µs.
  auto& w = world();
  w.set_strategy("hetero-split");
  w.engine(0).reset_stats();
  const SimDuration t = w.measure_one_way(4_MiB);
  const auto& per_rail = w.engine(0).stats().payload_bytes_per_rail;
  EXPECT_NEAR(static_cast<double>(per_rail[0]), 2437.0 * 1024, 80.0 * 1024);
  EXPECT_NEAR(static_cast<double>(per_rail[1]), 1757.0 * 1024, 80.0 * 1024);
  EXPECT_NEAR(to_usec(t), 2000.0, 120.0);
}

TEST_F(PaperShapes, FixedRatioMatchesHeteroOnIdleRails) {
  // §II-A: the OpenMPI-style fixed ratio is fine for large idle-rail
  // transfers; sampling's edge appears under busy NICs (Fig. 2 bench).
  auto& w = world();
  w.set_strategy("fixed-ratio-split");
  const double fixed = w.measure_bandwidth(8_MiB, 2);
  w.set_strategy("hetero-split");
  const double hetero = w.measure_bandwidth(8_MiB, 2);
  EXPECT_NEAR(hetero, fixed, fixed * 0.02);
  EXPECT_GE(hetero, fixed * 0.999);
}

}  // namespace
}  // namespace rails::core
