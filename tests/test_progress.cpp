#include "progress/progress_engine.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "progress/queue_source.hpp"

namespace rails::progress {
namespace {

TEST(ChooseMethod, PollingWhenNoBlockingSupport) {
  Context ctx;
  ctx.sources_support_blocking = false;
  ctx.idle_cores = 0;
  ctx.computing_threads = 8;
  EXPECT_EQ(choose_method(ctx), Method::kPolling);
}

TEST(ChooseMethod, PollingWithSpareCore) {
  Context ctx;
  ctx.sources_support_blocking = true;
  ctx.idle_cores = 1;
  ctx.computing_threads = 8;
  EXPECT_EQ(choose_method(ctx), Method::kPolling);
}

TEST(ChooseMethod, BlockingWhenSaturated) {
  // "depending on the context (number of computing threads, available
  // CPUs...)": no spare core + computing threads -> blocking.
  Context ctx;
  ctx.sources_support_blocking = true;
  ctx.idle_cores = 0;
  ctx.computing_threads = 4;
  EXPECT_EQ(choose_method(ctx), Method::kBlocking);
}

TEST(ChooseMethod, PollingWhenMachineIsEmpty) {
  Context ctx;
  ctx.sources_support_blocking = true;
  ctx.idle_cores = 0;
  ctx.computing_threads = 0;
  EXPECT_EQ(choose_method(ctx), Method::kPolling);
}

TEST(ToString, Methods) {
  EXPECT_STREQ(to_string(Method::kPolling), "polling");
  EXPECT_STREQ(to_string(Method::kBlocking), "blocking");
}

class CountingSource final : public EventSource {
 public:
  explicit CountingSource(unsigned events_per_poll, bool blocking = false)
      : per_poll_(events_per_poll), blocking_(blocking) {}
  std::string name() const override { return "counting"; }
  unsigned poll() override {
    ++polled_;
    return per_poll_;
  }
  bool supports_blocking() const override { return blocking_; }
  unsigned block(std::uint64_t) override {
    ++blocked_;
    return per_poll_;
  }
  unsigned polled_ = 0;
  unsigned blocked_ = 0;

 private:
  unsigned per_poll_;
  bool blocking_;
};

TEST(ProgressEngine, TickPollsEverySource) {
  ProgressEngine engine;
  CountingSource a(2), b(3);
  engine.add_source(&a);
  engine.add_source(&b);
  Context ctx;
  EXPECT_EQ(engine.tick(ctx), 5u);
  EXPECT_EQ(a.polled_, 1u);
  EXPECT_EQ(b.polled_, 1u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.events, 5u);
  EXPECT_EQ(stats.polls, 2u);
}

TEST(ProgressEngine, BlockingContextUsesBlockingCalls) {
  ProgressEngine engine;
  CountingSource blocking(1, true);
  CountingSource polling_only(1, false);
  engine.add_source(&blocking);
  engine.add_source(&polling_only);
  Context ctx;
  ctx.sources_support_blocking = true;
  ctx.idle_cores = 0;
  ctx.computing_threads = 2;
  engine.tick(ctx);
  EXPECT_EQ(blocking.blocked_, 1u);
  EXPECT_EQ(blocking.polled_, 0u);
  // A source without blocking support still gets polled in blocking mode.
  EXPECT_EQ(polling_only.polled_, 1u);
  EXPECT_EQ(engine.stats().blocking_waits, 1u);
}

TEST(ProgressEngine, RemoveSource) {
  ProgressEngine engine;
  CountingSource a(1);
  engine.add_source(&a);
  EXPECT_EQ(engine.source_count(), 1u);
  engine.remove_source(&a);
  EXPECT_EQ(engine.source_count(), 0u);
  EXPECT_EQ(engine.tick({}), 0u);
}

TEST(ProgressEngine, QueueSourceDrainsMessages) {
  SpscQueue<QueueSource::Message> ring(64);
  std::vector<QueueSource::Message> received;
  QueueSource source("rx", &ring, [&](QueueSource::Message&& m) {
    received.push_back(std::move(m));
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.try_push(QueueSource::Message(static_cast<std::size_t>(i + 1), 0xEE)));
  }
  EXPECT_EQ(source.poll(), 10u);
  EXPECT_EQ(source.poll(), 0u);
  ASSERT_EQ(received.size(), 10u);
  EXPECT_EQ(received[3].size(), 4u);
}

TEST(ProgressEngine, QueueSourceBoundedDrainPerPoll) {
  SpscQueue<QueueSource::Message> ring(256);
  unsigned handled = 0;
  QueueSource source("rx", &ring, [&](QueueSource::Message&&) { ++handled; });
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(ring.try_push(QueueSource::Message(1, 0)));
  // One poll handles at most its bound (64), leaving the rest for the next.
  EXPECT_EQ(source.poll(), 64u);
  EXPECT_EQ(source.poll(), 36u);
  EXPECT_EQ(handled, 100u);
}

TEST(ProgressEngine, BackgroundPumpDetectsTraffic) {
  rt::WorkerPool pool(2);
  ProgressEngine engine;
  SpscQueue<QueueSource::Message> ring(64);
  std::atomic<unsigned> received{0};
  QueueSource source("rx", &ring, [&](QueueSource::Message&&) {
    received.fetch_add(1);
  });
  engine.add_source(&source);
  engine.start(&pool, 0, Context{});

  for (int i = 0; i < 20; ++i) {
    while (!ring.try_push(QueueSource::Message(8, 0x11))) std::this_thread::yield();
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received.load() < 20 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  engine.stop();
  EXPECT_EQ(received.load(), 20u);
  EXPECT_GT(engine.stats().ticks, 0u);
}

TEST(ProgressEngine, ThreadedPingPongOverQueues) {
  // Two "nodes" exchanging real bytes through SPSC rings driven by the
  // progression engine — the threaded-mode analogue of the DES ping-pong.
  rt::WorkerPool pool(2);
  SpscQueue<QueueSource::Message> to_b(64), to_a(64);
  std::atomic<int> rounds{0};
  constexpr int kRounds = 50;

  ProgressEngine engine_a;
  ProgressEngine engine_b;
  QueueSource src_a("a-rx", &to_a, [&](QueueSource::Message&& m) {
    if (rounds.load() < kRounds) {
      rounds.fetch_add(1);
      while (!to_b.try_push(std::move(m))) std::this_thread::yield();
    }
  });
  QueueSource src_b("b-rx", &to_b, [&](QueueSource::Message&& m) {
    while (!to_a.try_push(std::move(m))) std::this_thread::yield();
  });
  engine_a.add_source(&src_a);
  engine_b.add_source(&src_b);
  engine_a.start(&pool, 0, Context{});
  engine_b.start(&pool, 1, Context{});

  while (!to_b.try_push(QueueSource::Message(16, 0x42))) std::this_thread::yield();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rounds.load() < kRounds && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  engine_a.stop();
  engine_b.stop();
  EXPECT_GE(rounds.load(), kRounds);
}

}  // namespace
}  // namespace rails::progress
