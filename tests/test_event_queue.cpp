#include "fabric/event_queue.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace rails::fabric {
namespace {

TEST(EventQueue, StartsAtZero) {
  EventQueue eq;
  EXPECT_EQ(eq.now(), 0);
  EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.at(30, [&] { order.push_back(3); });
  eq.at(10, [&] { order.push_back(1); });
  eq.at(20, [&] { order.push_back(2); });
  eq.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) eq.at(100, [&order, i] { order.push_back(i); });
  eq.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, AfterIsRelative) {
  EventQueue eq;
  SimTime seen = -1;
  eq.at(50, [&] { eq.after(25, [&] { seen = eq.now(); }); });
  eq.run_all();
  EXPECT_EQ(seen, 75);
}

TEST(EventQueue, EventsCanScheduleAtSameTime) {
  EventQueue eq;
  int count = 0;
  eq.at(10, [&] {
    ++count;
    eq.at(10, [&] { ++count; });
  });
  eq.run_all();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(eq.now(), 10);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.step());
  eq.at(1, [] {});
  EXPECT_TRUE(eq.step());
  EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilPredicate) {
  EventQueue eq;
  int fired = 0;
  for (SimTime t = 1; t <= 10; ++t) eq.at(t, [&] { ++fired; });
  const bool satisfied = eq.run_until([&] { return fired == 4; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(eq.now(), 4);
  EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunUntilReturnsFalseIfDrained) {
  EventQueue eq;
  eq.at(5, [] {});
  EXPECT_FALSE(eq.run_until([] { return false; }));
}

TEST(EventQueue, RunToAdvancesClockPastLastEvent) {
  EventQueue eq;
  int fired = 0;
  eq.at(10, [&] { ++fired; });
  eq.at(30, [&] { ++fired; });
  eq.run_to(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eq.now(), 20);
  eq.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueDeath, SchedulingInThePastAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EventQueue eq;
  eq.at(10, [] {});
  eq.run_all();
  EXPECT_DEATH(eq.at(5, [] {}), "past");
}

TEST(EventQueue, RunAllHonoursBudget) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EventQueue eq;
  // Self-perpetuating event chain: the budget must stop it.
  std::function<void()> reschedule = [&] { eq.after(1, reschedule); };
  eq.after(1, reschedule);
  EXPECT_DEATH(eq.run_all(1000), "budget");
}

}  // namespace
}  // namespace rails::fabric
