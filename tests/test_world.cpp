#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/presets.hpp"

namespace rails::core {
namespace {

TEST(World, PaperTestbedShape) {
  core::World world(paper_testbed());
  EXPECT_EQ(world.fabric().node_count(), 2u);
  EXPECT_EQ(world.fabric().rail_count(), 2u);
  EXPECT_EQ(world.estimator().rail_count(), 2u);
  EXPECT_EQ(world.estimator().profile(0).name, "myri10g");
}

TEST(World, BandwidthMatchesPaperPlateaus) {
  core::World world(paper_testbed("single-rail:0"));
  EXPECT_NEAR(world.measure_bandwidth(8_MiB, 2), 1170.0, 25.0);
  world.set_strategy("single-rail:1");
  EXPECT_NEAR(world.measure_bandwidth(8_MiB, 2), 837.0, 20.0);
  world.set_strategy("hetero-split");
  EXPECT_NEAR(world.measure_bandwidth(8_MiB, 2), 1987.0, 60.0);
}

TEST(World, PingPongScalesWithSize) {
  core::World world(paper_testbed());
  const SimDuration t1 = world.measure_pingpong(64_KiB, 2);
  const SimDuration t2 = world.measure_pingpong(1_MiB, 2);
  const SimDuration t3 = world.measure_pingpong(8_MiB, 2);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(World, OneWayBatchLaterCompletion) {
  core::World world(paper_testbed("aggregate-fastest"));
  const SimDuration one = world.measure_one_way(4_KiB);
  const SimDuration four = world.measure_one_way_batch(4_KiB, 4);
  EXPECT_GT(four, one);
}

TEST(World, MeasurementsAreDeterministic) {
  core::World a(paper_testbed("hetero-split"));
  core::World b(paper_testbed("hetero-split"));
  EXPECT_EQ(a.measure_pingpong(1_MiB, 3), b.measure_pingpong(1_MiB, 3));
  EXPECT_EQ(a.measure_one_way(4_KiB), b.measure_one_way(4_KiB));
}

TEST(World, RepeatedMeasurementsStable) {
  // Back-to-back measurements on one world quiesce in between; the second
  // run must match the first (no state leaks across measurements).
  core::World world(paper_testbed("hetero-split"));
  const SimDuration first = world.measure_pingpong(2_MiB, 2);
  const SimDuration second = world.measure_pingpong(2_MiB, 2);
  EXPECT_EQ(first, second);
}

TEST(World, FourRailT2kStyleAggregation) {
  WorldConfig cfg;
  cfg.fabric.rails = {fabric::ib_ddr(), fabric::ib_ddr(), fabric::ib_ddr(),
                      fabric::ib_ddr()};
  cfg.fabric.topology = MachineTopology::t2k_4x4();
  cfg.strategy = "hetero-split";
  core::World world(cfg);
  const double bw = world.measure_bandwidth(8_MiB, 2);
  // Four 1400 MB/s rails: aggregate should exceed 3.8x one rail.
  EXPECT_GT(bw, 4 * 1400.0 * 0.95);
  EXPECT_LT(bw, 4 * 1400.0 * 1.02);
}

TEST(World, ThreeHeterogeneousRails) {
  WorldConfig cfg;
  cfg.fabric.rails = {fabric::myri10g(), fabric::qsnet2(), fabric::ib_ddr()};
  cfg.strategy = "hetero-split";
  core::World world(cfg);
  const double bw = world.measure_bandwidth(8_MiB, 2);
  const double sum = 1170.0 + 837.0 + 1400.0;
  EXPECT_GT(bw, sum * 0.93);
}

TEST(World, GigeOutlierIsMostlyExcludedFromSmallSplits) {
  // A GigE rail next to Myri-10G: for a 256 KiB message the equal-finish
  // solver gives the slow rail only a sliver (or nothing).
  WorldConfig cfg;
  cfg.fabric.rails = {fabric::myri10g(), fabric::gige_tcp()};
  cfg.strategy = "hetero-split";
  core::World world(cfg);
  world.measure_one_way(256_KiB);
  const auto& per_rail = world.engine(0).stats().payload_bytes_per_rail;
  EXPECT_LT(per_rail[1], per_rail[0] / 4);
}

}  // namespace
}  // namespace rails::core
