#include "core/wire_format.hpp"

#include <cstring>

#include <gtest/gtest.h>

#include "common/crc32c.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

TEST(WireFormat, SingleSubPacketRoundTrip) {
  const auto data = test::make_pattern(100, 1);
  std::vector<std::uint8_t> payload;
  append_subpacket(payload, {7, 42, 100, 0, data.data(), 100});
  EXPECT_EQ(payload.size(), framed_size(100));

  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].msg_id, 7u);
  EXPECT_EQ(parsed[0].tag, 42u);
  EXPECT_EQ(parsed[0].msg_total, 100u);
  EXPECT_EQ(parsed[0].offset, 0u);
  ASSERT_EQ(parsed[0].len, 100u);
  EXPECT_EQ(std::vector<std::uint8_t>(parsed[0].bytes, parsed[0].bytes + 100), data);
}

TEST(WireFormat, AggregatedSubPacketsPreserveOrder) {
  std::vector<std::uint8_t> payload;
  std::vector<std::vector<std::uint8_t>> bodies;
  for (std::uint64_t i = 0; i < 5; ++i) {
    bodies.push_back(test::make_pattern(10 + i * 7, i));
    append_subpacket(payload, {i, i * 2, bodies[i].size(), 0, bodies[i].data(),
                               static_cast<std::uint32_t>(bodies[i].size())});
  }
  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(parsed[i].msg_id, i);
    EXPECT_EQ(parsed[i].tag, i * 2);
    EXPECT_EQ(std::vector<std::uint8_t>(parsed[i].bytes, parsed[i].bytes + parsed[i].len),
              bodies[i]);
  }
}

TEST(WireFormat, ZeroLengthFragment) {
  std::vector<std::uint8_t> payload;
  append_subpacket(payload, {1, 2, 0, 0, nullptr, 0});
  EXPECT_EQ(payload.size(), SubPacket::kHeaderBytes);
  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].len, 0u);
  EXPECT_EQ(parsed[0].bytes, nullptr);
}

TEST(WireFormat, FragmentWithOffset) {
  const auto data = test::make_pattern(64, 3);
  std::vector<std::uint8_t> payload;
  append_subpacket(payload, {9, 1, 4096, 2048, data.data(), 64});
  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].msg_total, 4096u);
  EXPECT_EQ(parsed[0].offset, 2048u);
}

TEST(WireFormat, EmptyPayloadParsesToNothing) {
  EXPECT_TRUE(parse_subpackets({}).empty());
}

TEST(WireFormat, LargeFieldValuesSurvive) {
  const std::uint64_t big = 0xFEDCBA9876543210ULL;
  std::vector<std::uint8_t> payload;
  append_subpacket(payload, {big, big - 1, big - 2, big - 3, nullptr, 0});
  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].msg_id, big);
  EXPECT_EQ(parsed[0].tag, big - 1);
  EXPECT_EQ(parsed[0].msg_total, big - 2);
  EXPECT_EQ(parsed[0].offset, big - 3);
}

// -- corruption-tolerant parsing (reliability PR) ----------------------------

TEST(WireFormatTolerant, AcceptsWhatTheAbortingParserAccepts) {
  std::vector<std::uint8_t> payload;
  std::vector<std::vector<std::uint8_t>> bodies;
  for (std::uint64_t i = 0; i < 4; ++i) {
    bodies.push_back(test::make_pattern(32 + i * 11, i));
    append_subpacket(payload, {i, i, bodies[i].size(), 0, bodies[i].data(),
                               static_cast<std::uint32_t>(bodies[i].size())});
  }
  std::vector<SubPacket> out;
  ASSERT_TRUE(try_parse_subpackets(payload, out));
  const auto reference = parse_subpackets(payload);
  ASSERT_EQ(out.size(), reference.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].msg_id, reference[i].msg_id);
    EXPECT_EQ(out[i].len, reference[i].len);
    EXPECT_EQ(out[i].bytes, reference[i].bytes);
  }
}

TEST(WireFormatTolerant, RejectsTruncatedHeader) {
  std::vector<std::uint8_t> payload(SubPacket::kHeaderBytes - 1, 0);
  std::vector<SubPacket> out;
  EXPECT_FALSE(try_parse_subpackets(payload, out));
  EXPECT_TRUE(out.empty());
}

TEST(WireFormatTolerant, RejectsTruncatedBody) {
  std::vector<std::uint8_t> payload;
  const auto body = test::make_pattern(16, 1);
  append_subpacket(payload, {1, 1, 16, 0, body.data(), 16});
  payload.pop_back();
  std::vector<SubPacket> out;
  EXPECT_FALSE(try_parse_subpackets(payload, out));
}

TEST(WireFormatTolerant, RejectsFragmentOverrunningItsMessage) {
  // offset + len > msg_total: the shape a flipped header bit produces, and
  // exactly what a receiver must not scribble into its buffer.
  std::vector<std::uint8_t> payload;
  const auto body = test::make_pattern(64, 2);
  append_subpacket(payload, {1, 1, /*msg_total=*/32, /*offset=*/0, body.data(), 64});
  std::vector<SubPacket> out;
  EXPECT_FALSE(try_parse_subpackets(payload, out));
}

TEST(WireFormatTolerant, RejectsOffsetWraparound) {
  std::vector<std::uint8_t> payload;
  const auto body = test::make_pattern(8, 3);
  append_subpacket(payload,
                   {1, 1, 64, /*offset=*/~std::uint64_t{0} - 3, body.data(), 8});
  std::vector<SubPacket> out;
  EXPECT_FALSE(try_parse_subpackets(payload, out));
}

TEST(WireFormatTolerant, EmptyPayloadIsValid) {
  std::vector<SubPacket> out{SubPacket{}};
  EXPECT_TRUE(try_parse_subpackets({}, out));
  EXPECT_TRUE(out.empty());
}

// -- CRC32C ------------------------------------------------------------------

TEST(Crc32c, KnownAnswerVectors) {
  // RFC 3720 appendix B.4 test vectors (Castagnoli polynomial).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  const std::uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, 32), 0x8A9136AAu);
  std::uint8_t ones[32];
  std::memset(ones, 0xFF, 32);
  EXPECT_EQ(crc32c(ones, 32), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalEqualsOneShotAtEverySplit) {
  const auto data = test::make_pattern(253, 9);  // odd length: exercises the
                                                 // slice-by-8 tail loop
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t head = crc32c_extend(0, data.data(), split);
    const std::uint32_t full =
        crc32c_extend(head, data.data() + split, data.size() - split);
    ASSERT_EQ(full, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsEverySingleBitFlip) {
  auto data = test::make_pattern(64, 10);
  const std::uint32_t clean = crc32c(data.data(), data.size());
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ASSERT_NE(crc32c(data.data(), data.size()), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

TEST(WireFormatDeath, TruncatedHeaderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint8_t> payload(SubPacket::kHeaderBytes - 1, 0);
  EXPECT_DEATH(parse_subpackets(payload), "truncated");
}

TEST(WireFormatDeath, TruncatedBodyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint8_t> payload;
  const std::uint8_t byte = 0xAA;
  append_subpacket(payload, {1, 1, 8, 0, &byte, 1});
  payload.pop_back();  // drop the body byte
  EXPECT_DEATH(parse_subpackets(payload), "truncated");
}

}  // namespace
}  // namespace rails::core
