#include "core/wire_format.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rails::core {
namespace {

TEST(WireFormat, SingleSubPacketRoundTrip) {
  const auto data = test::make_pattern(100, 1);
  std::vector<std::uint8_t> payload;
  append_subpacket(payload, {7, 42, 100, 0, data.data(), 100});
  EXPECT_EQ(payload.size(), framed_size(100));

  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].msg_id, 7u);
  EXPECT_EQ(parsed[0].tag, 42u);
  EXPECT_EQ(parsed[0].msg_total, 100u);
  EXPECT_EQ(parsed[0].offset, 0u);
  ASSERT_EQ(parsed[0].len, 100u);
  EXPECT_EQ(std::vector<std::uint8_t>(parsed[0].bytes, parsed[0].bytes + 100), data);
}

TEST(WireFormat, AggregatedSubPacketsPreserveOrder) {
  std::vector<std::uint8_t> payload;
  std::vector<std::vector<std::uint8_t>> bodies;
  for (std::uint64_t i = 0; i < 5; ++i) {
    bodies.push_back(test::make_pattern(10 + i * 7, i));
    append_subpacket(payload, {i, i * 2, bodies[i].size(), 0, bodies[i].data(),
                               static_cast<std::uint32_t>(bodies[i].size())});
  }
  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(parsed[i].msg_id, i);
    EXPECT_EQ(parsed[i].tag, i * 2);
    EXPECT_EQ(std::vector<std::uint8_t>(parsed[i].bytes, parsed[i].bytes + parsed[i].len),
              bodies[i]);
  }
}

TEST(WireFormat, ZeroLengthFragment) {
  std::vector<std::uint8_t> payload;
  append_subpacket(payload, {1, 2, 0, 0, nullptr, 0});
  EXPECT_EQ(payload.size(), SubPacket::kHeaderBytes);
  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].len, 0u);
  EXPECT_EQ(parsed[0].bytes, nullptr);
}

TEST(WireFormat, FragmentWithOffset) {
  const auto data = test::make_pattern(64, 3);
  std::vector<std::uint8_t> payload;
  append_subpacket(payload, {9, 1, 4096, 2048, data.data(), 64});
  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].msg_total, 4096u);
  EXPECT_EQ(parsed[0].offset, 2048u);
}

TEST(WireFormat, EmptyPayloadParsesToNothing) {
  EXPECT_TRUE(parse_subpackets({}).empty());
}

TEST(WireFormat, LargeFieldValuesSurvive) {
  const std::uint64_t big = 0xFEDCBA9876543210ULL;
  std::vector<std::uint8_t> payload;
  append_subpacket(payload, {big, big - 1, big - 2, big - 3, nullptr, 0});
  const auto parsed = parse_subpackets(payload);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].msg_id, big);
  EXPECT_EQ(parsed[0].tag, big - 1);
  EXPECT_EQ(parsed[0].msg_total, big - 2);
  EXPECT_EQ(parsed[0].offset, big - 3);
}

TEST(WireFormatDeath, TruncatedHeaderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint8_t> payload(SubPacket::kHeaderBytes - 1, 0);
  EXPECT_DEATH(parse_subpackets(payload), "truncated");
}

TEST(WireFormatDeath, TruncatedBodyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint8_t> payload;
  const std::uint8_t byte = 0xAA;
  append_subpacket(payload, {1, 1, 8, 0, &byte, 1});
  payload.pop_back();  // drop the body byte
  EXPECT_DEATH(parse_subpackets(payload), "truncated");
}

}  // namespace
}  // namespace rails::core
