// Real-thread tests of the Fig. 7 offload machinery.
#include "threaded/offload_channel.hpp"

#include <atomic>
#include <chrono>
#include <mutex>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace rails::threaded {
namespace {

struct Inbox {
  std::mutex mutex;
  std::vector<std::pair<Tag, std::vector<std::uint8_t>>> messages;
  std::atomic<unsigned> count{0};

  OffloadChannel::RecvHandler handler() {
    return [this](Tag tag, std::vector<std::uint8_t>&& bytes) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        messages.emplace_back(tag, std::move(bytes));
      }
      count.fetch_add(1, std::memory_order_release);
    };
  }

  bool wait_for(unsigned n, std::chrono::seconds timeout = std::chrono::seconds(10)) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (count.load(std::memory_order_acquire) < n) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  }
};

TEST(OffloadChannel, SmallMessageSingleChunk) {
  OffloadChannel channel({2, 2, 4096, 256});
  Inbox inbox;
  channel.start(inbox.handler());
  const auto tx = test::make_pattern(128, 1);
  auto ticket = channel.send(7, tx.data(), tx.size());
  ticket->wait();
  ASSERT_TRUE(inbox.wait_for(1));
  channel.stop();
  ASSERT_EQ(inbox.messages.size(), 1u);
  EXPECT_EQ(inbox.messages[0].first, 7u);
  EXPECT_EQ(inbox.messages[0].second, tx);
}

TEST(OffloadChannel, LargeMessageSplitsAcrossWorkers) {
  OffloadChannel channel({2, 2, 4096, 256});
  Inbox inbox;
  channel.start(inbox.handler());
  const auto tx = test::make_pattern(64u * 1024u, 2);
  auto ticket = channel.send(1, tx.data(), tx.size());
  ticket->wait();
  ASSERT_TRUE(inbox.wait_for(1));
  channel.stop();
  EXPECT_EQ(inbox.messages[0].second, tx);
  // Both submission cores took a chunk (Fig. 7's parallel copies).
  const auto per_worker = channel.chunks_per_worker();
  ASSERT_EQ(per_worker.size(), 2u);
  EXPECT_EQ(per_worker[0], 1u);
  EXPECT_EQ(per_worker[1], 1u);
}

TEST(OffloadChannel, DisabledRailSkippedBySplit) {
  OffloadChannel channel({2, 2, 4096, 256});
  EXPECT_TRUE(channel.rail_enabled(0));
  EXPECT_TRUE(channel.rail_enabled(1));
  channel.set_rail_enabled(1, false);
  EXPECT_FALSE(channel.rail_enabled(1));

  Inbox inbox;
  channel.start(inbox.handler());
  const auto tx = test::make_pattern(64u * 1024u, 5);
  channel.send(1, tx.data(), tx.size())->wait();
  ASSERT_TRUE(inbox.wait_for(1));

  // One usable rail left: the message stays whole instead of splitting.
  auto per_worker = channel.chunks_per_worker();
  EXPECT_EQ(per_worker[0] + per_worker[1], 1u);

  // Re-enabling restores the two-chunk split.
  channel.set_rail_enabled(1, true);
  channel.send(2, tx.data(), tx.size())->wait();
  ASSERT_TRUE(inbox.wait_for(2));
  per_worker = channel.chunks_per_worker();
  EXPECT_EQ(per_worker[0] + per_worker[1], 3u);
  channel.stop();
  EXPECT_EQ(inbox.messages[0].second, tx);
  EXPECT_EQ(inbox.messages[1].second, tx);
}

TEST(OffloadChannel, AllRailsDisabledFallsBackToAll) {
  OffloadChannel channel({2, 2, 4096, 256});
  channel.set_rail_enabled(0, false);
  channel.set_rail_enabled(1, false);

  Inbox inbox;
  channel.start(inbox.handler());
  const auto tx = test::make_pattern(64u * 1024u, 6);
  channel.send(3, tx.data(), tx.size())->wait();
  ASSERT_TRUE(inbox.wait_for(1));
  channel.stop();
  // Refusing to send is never better than trying: the split uses all rails.
  const auto per_worker = channel.chunks_per_worker();
  EXPECT_EQ(per_worker[0] + per_worker[1], 2u);
  EXPECT_EQ(inbox.messages[0].second, tx);
}

TEST(OffloadChannel, DefaultWeightsSplitBytesEqually) {
  OffloadChannel channel({2, 2, 4096, 256});
  EXPECT_DOUBLE_EQ(channel.rail_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(channel.rail_weight(1), 1.0);

  Inbox inbox;
  channel.start(inbox.handler());
  const auto tx = test::make_pattern(64u * 1024u, 10);
  for (int i = 0; i < 8; ++i) {
    channel.send(static_cast<Tag>(i), tx.data(), tx.size())->wait();
  }
  ASSERT_TRUE(inbox.wait_for(8));
  channel.stop();
  const auto bytes = channel.bytes_per_rail();
  EXPECT_EQ(bytes[0], bytes[1]);
  EXPECT_EQ(bytes[0] + bytes[1], 8u * tx.size());
}

TEST(OffloadChannel, DownWeightedRailGetsProportionallyFewerBytes) {
  OffloadChannel channel({2, 2, 4096, 256});
  channel.set_rail_weight(0, 0.25);  // the trust penalty analogue: rail 0 SUSPECT
  EXPECT_DOUBLE_EQ(channel.rail_weight(0), 0.25);

  Inbox inbox;
  channel.start(inbox.handler());
  const auto tx = test::make_pattern(64u * 1024u, 11);
  for (int i = 0; i < 8; ++i) {
    channel.send(static_cast<Tag>(i), tx.data(), tx.size())->wait();
  }
  ASSERT_TRUE(inbox.wait_for(8));
  channel.stop();
  const auto bytes = channel.bytes_per_rail();
  // weight 0.25 vs 1.0: rail 0 carries 1/5 of the payload, rail 1 carries 4/5.
  EXPECT_EQ(bytes[0] + bytes[1], 8u * tx.size());
  const double share =
      static_cast<double>(bytes[0]) / static_cast<double>(bytes[0] + bytes[1]);
  EXPECT_NEAR(share, 0.2, 0.01);
  // Every message still reassembles intact.
  for (const auto& [tag, payload] : inbox.messages) EXPECT_EQ(payload, tx);

  // Weights clamp to [0, 1] and can be restored at runtime.
  channel.set_rail_weight(0, 7.5);
  EXPECT_DOUBLE_EQ(channel.rail_weight(0), 1.0);
  channel.set_rail_weight(0, -2.0);
  EXPECT_DOUBLE_EQ(channel.rail_weight(0), 0.0);
}

TEST(OffloadChannel, ZeroByteMessage) {
  OffloadChannel channel({1, 1, 4096, 64});
  Inbox inbox;
  channel.start(inbox.handler());
  auto ticket = channel.send(9, nullptr, 0);
  ticket->wait();
  ASSERT_TRUE(inbox.wait_for(1));
  channel.stop();
  EXPECT_EQ(inbox.messages[0].first, 9u);
  EXPECT_TRUE(inbox.messages[0].second.empty());
}

TEST(OffloadChannel, ManyMessagesIntegrityUnderConcurrency) {
  OffloadChannel channel({2, 2, 2048, 64});
  Inbox inbox;
  channel.start(inbox.handler());

  Xoshiro256 rng(5);
  constexpr unsigned kCount = 100;
  std::vector<std::vector<std::uint8_t>> tx;
  std::vector<std::shared_ptr<SendTicket>> tickets;
  for (unsigned i = 0; i < kCount; ++i) {
    tx.push_back(test::make_pattern(1 + rng.below(16u * 1024u), i));
  }
  for (unsigned i = 0; i < kCount; ++i) {
    tickets.push_back(channel.send(i, tx[i].data(), tx[i].size()));
  }
  for (auto& t : tickets) t->wait();
  ASSERT_TRUE(inbox.wait_for(kCount));
  channel.stop();

  ASSERT_EQ(inbox.messages.size(), kCount);
  // Delivery order may interleave across rails: match by tag.
  std::vector<bool> seen(kCount, false);
  for (const auto& [tag, bytes] : inbox.messages) {
    ASSERT_LT(tag, kCount);
    EXPECT_FALSE(seen[tag]) << "duplicate delivery of tag " << tag;
    seen[tag] = true;
    EXPECT_EQ(bytes, tx[tag]) << "corrupted message tag " << tag;
  }
}

TEST(OffloadChannel, BackpressureOnTinyRings) {
  // Ring depth 4: the workers must spin on full rings without losing or
  // reordering chunk data.
  OffloadChannel channel({1, 1, 1u << 30, 4});
  Inbox inbox;
  channel.start(inbox.handler());
  std::vector<std::vector<std::uint8_t>> tx;
  std::vector<std::shared_ptr<SendTicket>> tickets;
  for (unsigned i = 0; i < 64; ++i) {
    tx.push_back(test::make_pattern(512, 1000 + i));
    tickets.push_back(channel.send(i, tx[i].data(), tx[i].size()));
  }
  for (auto& t : tickets) t->wait();
  ASSERT_TRUE(inbox.wait_for(64));
  channel.stop();
  for (const auto& [tag, bytes] : inbox.messages) EXPECT_EQ(bytes, tx[tag]);
}

TEST(OffloadChannel, MetricsCoverOffloadPipeline) {
  telemetry::MetricsRegistry registry;
  OffloadChannel channel({2, 2, 4096, 256});
  channel.set_metrics(&registry);
  Inbox inbox;
  channel.start(inbox.handler());
  const auto big = test::make_pattern(64u * 1024u, 11);
  const auto small = test::make_pattern(128, 12);
  auto t1 = channel.send(1, big.data(), big.size());    // splits into 2 chunks
  auto t2 = channel.send(2, small.data(), small.size());  // single chunk
  t1->wait();
  t2->wait();
  ASSERT_TRUE(inbox.wait_for(2));
  channel.stop();

  EXPECT_EQ(registry.find_counter("offload.sends")->value(), 2u);
  EXPECT_EQ(registry.find_counter("offload.chunks")->value(), 3u);
  EXPECT_GE(registry.find_gauge("offload.ring_hwm")->value(), 1);
  // The TO histogram saw one wall-clock signal delay per chunk tasklet.
  const telemetry::Histogram* to_cost =
      registry.find_histogram("offload.signal_delay_ns");
  ASSERT_NE(to_cost, nullptr);
  EXPECT_EQ(to_cost->count(), 3u);
  // Forwarded sinks: the sender pool and the progression engine report too.
  EXPECT_GE(registry.find_counter("rt.signals")->value(), 3u);
  EXPECT_GE(registry.find_counter("progress.ticks")->value(), 1u);
  EXPECT_GE(registry.find_counter("progress.polls")->value(), 1u);
}

TEST(OffloadChannel, StopIsIdempotent) {
  OffloadChannel channel({2, 2, 4096, 64});
  Inbox inbox;
  channel.start(inbox.handler());
  channel.stop();
  channel.stop();
}

TEST(OffloadChannelDeath, SendBeforeStartAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OffloadChannel channel({1, 1, 4096, 64});
  std::uint8_t byte = 0;
  EXPECT_DEATH(channel.send(1, &byte, 1), "not started");
}

}  // namespace
}  // namespace rails::threaded
