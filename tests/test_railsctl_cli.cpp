// railsctl's command table (tools/railsctl_cli.hpp) is the single source of
// truth for dispatch AND the usage text; these tests pin the consistency
// the binary's static_assert can't: unique names, complete usage, and the
// lookup used by main().
#include "../tools/railsctl_cli.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace railsctl {
namespace {

TEST(RailsctlCli, CommandNamesAreUnique) {
  std::set<std::string> names;
  for (const CommandInfo& cmd : kCommands) {
    EXPECT_TRUE(names.insert(cmd.name).second) << "duplicate command " << cmd.name;
  }
  EXPECT_EQ(names.size(), kCommandCount);
}

TEST(RailsctlCli, FindCommandResolvesEveryRowAndRejectsUnknown) {
  for (const CommandInfo& cmd : kCommands) {
    const CommandInfo* found = find_command(cmd.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &cmd);
  }
  EXPECT_EQ(find_command("bogus"), nullptr);
  EXPECT_EQ(find_command(""), nullptr);
  EXPECT_EQ(find_command("watchx"), nullptr);
}

TEST(RailsctlCli, UsageTextIsGeneratedFromTheDispatchTable) {
  const std::string usage = usage_text();
  EXPECT_EQ(usage.rfind("usage: railsctl ", 0), 0u);
  for (const CommandInfo& cmd : kCommands) {
    // Every command appears in the <a|b|...> summary and as its own line
    // ("  name " when it has an args synopsis, "  name\n" when it doesn't).
    EXPECT_NE(usage.find(cmd.name), std::string::npos) << cmd.name;
    const std::string head = std::string("  ") + cmd.name;
    EXPECT_TRUE(usage.find(head + " ") != std::string::npos ||
                usage.find(head + "\n") != std::string::npos)
        << cmd.name << " has no usage line";
    // Continuation lines of the help body are re-indented by usage_text(),
    // so pin the first line only.
    const std::string first_help =
        std::string(cmd.help).substr(0, std::string(cmd.help).find('\n'));
    EXPECT_NE(usage.find(first_help), std::string::npos)
        << cmd.name << " help text missing";
  }
}

TEST(RailsctlCli, HealthPlaneCommandsArePresent) {
  ASSERT_NE(find_command("watch"), nullptr);
  ASSERT_NE(find_command("slo"), nullptr);
  EXPECT_TRUE(find_command("watch")->takes_cluster_file);
  EXPECT_TRUE(find_command("slo")->takes_cluster_file);
  // postmortem renders a bundle file, not a cluster config.
  ASSERT_NE(find_command("postmortem"), nullptr);
  EXPECT_FALSE(find_command("postmortem")->takes_cluster_file);
}

}  // namespace
}  // namespace railsctl
