// Tests for the hot-path cycle profiler (src/perf) and the rails-bench
// bundle schema (src/bench_support/bench_json.hpp).
//
// This binary links src/perf/alloc_hook.cpp (see tests/CMakeLists.txt), so
// allocation attribution is live here; binaries without the hook simply
// report zero allocs.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/bench_json.hpp"
#include "common/minijson.hpp"
#include "core/world.hpp"
#include "perf/profiler.hpp"

using namespace rails;

namespace {

/// Restores profiler globals on scope exit so tests cannot leak state, and
/// drains the per-thread sampling countdown on entry so each test starts
/// from a freshly-armed sampler regardless of what ran before it.
struct ProfilerGuard {
  ProfilerGuard() {
    perf::Profiler::set_enabled(true);
    perf::Profiler::set_sample_every(1);
    for (int i = 0; i < 64; ++i) {
      RAILS_PERF_SCOPE(perf::Layer::kProgress);
    }
    perf::Profiler::set_enabled(false);
    perf::Profiler::reset();
  }
  ~ProfilerGuard() {
    perf::Profiler::set_enabled(false);
    perf::Profiler::set_sample_every(16);
    perf::Profiler::reset();
  }
};

/// A small mixed workload: an eager burst plus one rendezvous transfer,
/// touching submit/strategy/emit/completion on the instrumented path.
void run_workload(core::World& world) {
  std::vector<std::uint8_t> small(512, 0x11);
  std::vector<std::uint8_t> large(1_MiB, 0x33);
  std::vector<std::uint8_t> rx_small(8 * 512);
  std::vector<std::uint8_t> rx_large(large.size());

  std::vector<core::RecvHandle> recvs;
  for (int i = 0; i < 8; ++i) {
    recvs.push_back(world.engine(1).irecv(0, 100 + i, rx_small.data() + i * 512, 512));
  }
  recvs.push_back(world.engine(1).irecv(0, 300, rx_large.data(), rx_large.size()));
  for (int i = 0; i < 8; ++i) {
    world.engine(0).isend(1, 100 + i, small.data(), small.size());
  }
  world.engine(0).isend(1, 300, large.data(), large.size());
  for (auto& r : recvs) world.wait(r);
}

TEST(PerfProfiler, DisabledRecordsNothing) {
  ProfilerGuard guard;
  perf::Profiler::set_enabled(false);
  perf::Profiler::reset();
  core::World world(core::paper_testbed("multicore-hetero-split"));
  run_workload(world);
  const perf::Snapshot snap = perf::Profiler::snapshot();
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.total_self_cycles(), 0u);
  EXPECT_EQ(snap.root_cycles, 0u);
  for (const auto& l : snap.layers) EXPECT_EQ(l.calls, 0u);
}

TEST(PerfProfiler, EnablingDoesNotChangeSimulatedResults) {
  // The profiler observes host time only; virtual-clock results and engine
  // counters must be bit-identical with it on or off. This is the runtime
  // half of the "disabled build is behaviorally identical" guarantee, and
  // it runs in compiled-out builds too.
  ProfilerGuard guard;
  const auto run = [](bool profiled) {
    perf::Profiler::set_enabled(profiled);
    perf::Profiler::set_sample_every(1);
    perf::Profiler::reset();
    core::World world(core::paper_testbed("multicore-hetero-split"));
    run_workload(world);
    return std::pair<SimTime, std::uint64_t>(
        world.now(), world.engine(0).stats().eager_segments +
                         world.engine(0).stats().rdv_chunks);
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.first, on.first);
  EXPECT_EQ(off.second, on.second);
}

// The tests below assert that scopes actually record, so they only exist
// when the profiler is compiled in (the default). An OFF build still runs
// the behavioral-identity and disabled-state tests.
#if defined(RAILS_PERF_PROFILER) && RAILS_PERF_PROFILER

TEST(PerfProfiler, LayerSelfTimesSumToRootCycles) {
  ProfilerGuard guard;
  perf::Profiler::set_enabled(true);
  perf::Profiler::set_sample_every(1);
  perf::Profiler::reset();
  core::World world(core::paper_testbed("multicore-hetero-split"));
  run_workload(world);
  const perf::Snapshot snap = perf::Profiler::snapshot();

  // The Breaking Band attribution property: exclusive per-layer times
  // partition the root-scope total exactly — uint64 arithmetic, not a
  // tolerance check.
  EXPECT_GT(snap.root_cycles, 0u);
  EXPECT_EQ(snap.total_self_cycles(), snap.root_cycles);
  // The workload exercises at least submit, emit, and completion.
  EXPECT_GT(snap.layers[static_cast<unsigned>(perf::Layer::kSubmit)].calls, 0u);
  EXPECT_GT(snap.layers[static_cast<unsigned>(perf::Layer::kEmit)].calls, 0u);
  EXPECT_GT(snap.layers[static_cast<unsigned>(perf::Layer::kCompletion)].calls, 0u);
}

TEST(PerfProfiler, ScopesNestAndDeductChildTime) {
  ProfilerGuard guard;
  perf::Profiler::set_enabled(true);
  perf::Profiler::set_sample_every(1);
  perf::Profiler::reset();
  {
    RAILS_PERF_SCOPE(perf::Layer::kSubmit);
    {
      RAILS_PERF_SCOPE(perf::Layer::kStrategy);
      // Burn a little time so the child records non-zero cycles.
      volatile std::uint64_t sink = 0;
      for (int i = 0; i < 10000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  const perf::Snapshot snap = perf::Profiler::snapshot();
  const auto& submit = snap.layers[static_cast<unsigned>(perf::Layer::kSubmit)];
  const auto& strategy = snap.layers[static_cast<unsigned>(perf::Layer::kStrategy)];
  EXPECT_EQ(submit.calls, 1u);
  EXPECT_EQ(strategy.calls, 1u);
  EXPECT_GT(strategy.self_cycles, 0u);
  // Parent self-time excludes the child's elapsed; the partition is exact.
  EXPECT_EQ(snap.total_self_cycles(), snap.root_cycles);
}

TEST(PerfProfiler, SamplingRecordsEveryNthRootScope) {
  ProfilerGuard guard;
  perf::Profiler::set_enabled(true);
  perf::Profiler::set_sample_every(4);
  // The sampling countdown is per-thread state that survives across tests;
  // 16 warmup roots realign it to the new period before we count.
  for (int i = 0; i < 16; ++i) {
    RAILS_PERF_SCOPE(perf::Layer::kProgress);
  }
  perf::Profiler::reset();
  for (int i = 0; i < 16; ++i) {
    RAILS_PERF_SCOPE(perf::Layer::kProgress);
  }
  const perf::Snapshot snap = perf::Profiler::snapshot();
  EXPECT_EQ(snap.sample_every, 4u);
  // 16 roots at 1-in-4 sampling: exactly 4 recorded (phase-independent over
  // a whole number of periods), and the invariant holds over the sampled
  // population.
  EXPECT_EQ(snap.layers[static_cast<unsigned>(perf::Layer::kProgress)].calls, 4u);
  EXPECT_EQ(snap.total_self_cycles(), snap.root_cycles);
}

TEST(PerfProfiler, AllocationAttributedToEnclosingScope) {
  ProfilerGuard guard;
  perf::Profiler::set_enabled(true);
  perf::Profiler::set_sample_every(1);
  perf::Profiler::reset();
  {
    RAILS_PERF_SCOPE(perf::Layer::kEmit);
    std::vector<std::uint8_t>* v = new std::vector<std::uint8_t>(1024, 0x5A);
    delete v;
  }
  const perf::Snapshot snap = perf::Profiler::snapshot();
  // alloc_hook.cpp is linked into this binary: the new above must be
  // attributed to the emit scope (the vector's buffer may add more).
  EXPECT_GE(snap.layers[static_cast<unsigned>(perf::Layer::kEmit)].allocs, 1u);
}

#endif  // RAILS_PERF_PROFILER

TEST(PerfProfiler, WriteJsonIsParsableAndCarriesTheInvariant) {
  ProfilerGuard guard;
  perf::Profiler::set_enabled(true);
  perf::Profiler::set_sample_every(1);
  perf::Profiler::reset();
  core::World world(core::paper_testbed("multicore-hetero-split"));
  run_workload(world);
  const perf::Snapshot snap = perf::Profiler::snapshot();

  std::ostringstream os;
  perf::Profiler::write_json(os, snap, 9.0);
  minijson::JsonValue root;
  ASSERT_TRUE(minijson::parse(os.str(), root));
  const minijson::JsonValue* layers = root.find("layers");
  ASSERT_NE(layers, nullptr);
  ASSERT_EQ(layers->array.size(), perf::kLayerCount);
  double sum = 0.0;
  for (const auto& layer : layers->array) {
    sum += layer.find("self_cycles")->num_or(0.0);
  }
  EXPECT_EQ(sum, root.find("root_cycles")->num_or(-1.0));
  EXPECT_EQ(root.find("sample_every")->num_or(0.0), 1.0);
}

TEST(BenchJson, BundleRoundTripsThroughMinijson) {
  bench::BenchBundle bundle;
  bundle.generator = "test";
  bundle.commit = "abc123";
  bundle.quick = true;
  bundle.generated_unix = 1700000000;
  bench::BenchResult result;
  result.name = "fake \"bench\"";  // quotes must survive the round trip
  result.config = {{"flows", "64"}, {"note", "line\nbreak"}};
  result.metrics.push_back({"msgs_per_ms/a", 123.456, "msgs/ms", true, true});
  result.metrics.push_back({"p99_us", 7.0, "us", false, false});
  bundle.benches.push_back(result);

  std::ostringstream os;
  bench::write_bundle(os, bundle);
  minijson::JsonValue root;
  ASSERT_TRUE(minijson::parse(os.str(), root));
  EXPECT_EQ(root.find("schema")->str_or(""), "rails-bench");
  EXPECT_EQ(root.find("schema_version")->num_or(0),
            static_cast<double>(bench::kBenchSchemaVersion));
  EXPECT_EQ(root.find("commit")->str_or(""), "abc123");
  EXPECT_TRUE(root.find("quick")->bool_or(false));

  const minijson::JsonValue& b = root.find("benches")->array.at(0);
  EXPECT_EQ(b.find("name")->str_or(""), "fake \"bench\"");
  EXPECT_EQ(b.find("config")->find("note")->str_or(""), "line\nbreak");
  const minijson::JsonValue& m0 = b.find("metrics")->array.at(0);
  EXPECT_EQ(m0.find("name")->str_or(""), "msgs_per_ms/a");
  EXPECT_DOUBLE_EQ(m0.find("value")->num_or(0.0), 123.456);
  EXPECT_TRUE(m0.find("higher_is_better")->bool_or(false));
  EXPECT_TRUE(m0.find("headline")->bool_or(false));
  const minijson::JsonValue& m1 = b.find("metrics")->array.at(1);
  EXPECT_FALSE(m1.find("higher_is_better")->bool_or(true));
  EXPECT_FALSE(m1.find("headline")->bool_or(true));
}

TEST(BenchJson, EmptyBenchesAndPerfEmbedding) {
  bench::BenchBundle bundle;
  bundle.generator = "g";
  bundle.commit = "c";
  bundle.generated_unix = 1;
  bundle.perf_json = "{\"enabled\":true,\"layers\":[]}";
  std::ostringstream os;
  bench::write_bundle(os, bundle);
  minijson::JsonValue root;
  ASSERT_TRUE(minijson::parse(os.str(), root));
  EXPECT_EQ(root.find("benches")->array.size(), 0u);
  const minijson::JsonValue* perf = root.find("perf");
  ASSERT_NE(perf, nullptr);
  EXPECT_TRUE(perf->find("enabled")->bool_or(false));
}

}  // namespace
