// Traffic-class QoS subsystem (docs/QOS.md): DRR weight shares, the
// auto-classification boundary, strict-priority preemption, deadline
// admission control, backpressure watermarks, starvation aging, and the
// arbiter's thread safety under concurrent producers.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "qos/arbiter.hpp"

namespace rails {
namespace {

core::SendHandle make_send(std::size_t len, std::uint64_t id = 0) {
  core::SendHandle send = core::make_send_request();
  send->id = id;
  send->len = len;
  return send;
}

// --- arbiter unit tests ----------------------------------------------------

TEST(QosArbiter, DrrHoldsWeightSharesUnderSaturation) {
  qos::QosConfig cfg;
  cfg.quantum = 8_KiB;
  cfg.aging = usec(1'000'000);  // no starvation promotion in this test
  qos::ClassSpec gold;
  gold.name = "gold";
  gold.weight = 3.0;
  gold.queue_capacity = 4096;
  qos::ClassSpec silver = gold;
  silver.name = "silver";
  silver.weight = 1.0;
  cfg.classes = {gold, silver};
  qos::QosArbiter arb(cfg, 32_KiB);

  constexpr unsigned kMsgs = 120;
  constexpr std::size_t kLen = 8_KiB;
  for (unsigned i = 0; i < kMsgs; ++i) {
    arb.enqueue(0, make_send(kLen), 0);
    arb.enqueue(1, make_send(kLen), 0);
  }

  // Pace the rounds explicitly (the engine paces them on NIC-idle events)
  // and read the shares at the last instant both classes are backlogged.
  double ratio = 0;
  for (unsigned round = 0; round < 10 * kMsgs; ++round) {
    if (arb.depth(0) == 0 || arb.depth(1) == 0) break;
    arb.grant(usec(round + 1), [](core::SendHandle) {});
    const auto gold_bytes = arb.counters(0).granted_bytes;
    const auto silver_bytes = arb.counters(1).granted_bytes;
    if (arb.depth(0) > 0 && arb.depth(1) > 0 && silver_bytes > 0) {
      ratio = static_cast<double>(gold_bytes) / static_cast<double>(silver_bytes);
    }
  }
  EXPECT_NEAR(ratio, 3.0, 0.3);  // the ±10% acceptance bound
  EXPECT_EQ(arb.depth(0), 0u);   // gold drained 3x faster
  EXPECT_GT(arb.depth(1), 0u);
}

TEST(QosArbiter, StrictPriorityGrantsBeforeDrr) {
  qos::QosConfig cfg;
  cfg.quantum = 1_MiB;  // bulk could drain fully in its DRR pass
  cfg.classes = qos::builtin_classes();
  qos::QosArbiter arb(cfg, 32_KiB);

  for (std::uint64_t i = 0; i < 5; ++i) {
    arb.enqueue(qos::kBulk, make_send(64_KiB, 100 + i), 0);
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    arb.enqueue(qos::kLatency, make_send(512, 200 + i), 0);
  }

  std::vector<std::uint64_t> order;
  arb.grant(usec(1), [&](core::SendHandle s) { order.push_back(s->id); });
  ASSERT_GE(order.size(), 3u);
  // The strict pass drains LATENCY fully before any bulk deficit is spent,
  // even though bulk was enqueued first.
  EXPECT_EQ(order[0], 200u);
  EXPECT_EQ(order[1], 201u);
  EXPECT_EQ(order[2], 202u);
}

TEST(QosArbiter, WatermarkCallbacksPauseAndResume) {
  qos::QosConfig cfg;
  cfg.quantum = 1_MiB;
  qos::ClassSpec only;
  only.name = "only";
  only.queue_capacity = 8;
  only.high_watermark = 6;
  only.low_watermark = 2;
  cfg.classes = {only};
  qos::QosArbiter arb(cfg, 32_KiB);

  std::vector<std::pair<qos::ClassId, bool>> events;
  arb.set_backpressure([&](qos::ClassId cls, bool paused) {
    events.emplace_back(cls, paused);
  });

  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(arb.has_capacity(0));
    arb.enqueue(0, make_send(1_KiB, i), 0);
  }
  ASSERT_EQ(events.size(), 1u);  // one pause on the high crossing, not six
  EXPECT_TRUE(events[0].second);
  EXPECT_TRUE(arb.paused(0));

  arb.enqueue(0, make_send(1_KiB, 6), 0);
  arb.enqueue(0, make_send(1_KiB, 7), 0);
  EXPECT_FALSE(arb.has_capacity(0));  // at the 8-message bound
  arb.note_rejected_full(0);
  EXPECT_EQ(arb.counters(0).rejected_full, 1u);

  unsigned drained = 0;
  while (arb.backlog()) {
    arb.grant(usec(1), [&](core::SendHandle) { ++drained; });
  }
  EXPECT_EQ(drained, 8u);
  ASSERT_EQ(events.size(), 2u);  // one resume on the low crossing
  EXPECT_FALSE(events[1].second);
  EXPECT_FALSE(arb.paused(0));
  EXPECT_EQ(arb.counters(0).depth_hwm, 8u);
}

TEST(QosArbiter, AgingPromotesStarvedHead) {
  qos::QosConfig cfg;
  cfg.quantum = 1024;
  cfg.aging = usec(100);
  qos::ClassSpec latency;
  latency.name = "latency";
  latency.weight = 8.0;
  latency.strict_priority = true;
  qos::ClassSpec starved;
  starved.name = "starved";
  starved.weight = 0.001;  // ~1 byte of credit per round: never fits 8 KiB
  cfg.classes = {latency, starved};
  qos::QosArbiter arb(cfg, 32_KiB);

  arb.enqueue(1, make_send(8_KiB), 0);
  unsigned granted = 0;
  for (unsigned round = 0; round < 16; ++round) {
    arb.grant(usec(50), [&](core::SendHandle) { ++granted; });
  }
  EXPECT_EQ(granted, 0u);  // DRR alone starves the head

  arb.grant(usec(150), [&](core::SendHandle) { ++granted; });
  EXPECT_EQ(granted, 1u);  // past the aging threshold the strict pass takes it
  EXPECT_EQ(arb.counters(1).aged_grants, 1u);
}

// --- classification boundary (regression: `>=` on the eager/rdv threshold) -

TEST(QosEngine, AutoClassBoundaryMatchesRdvThreshold) {
  core::WorldConfig cfg = core::paper_testbed("hetero-split");
  cfg.engine.qos.enabled = true;
  core::World world(cfg);
  const auto* arb = world.engine(0).qos();
  ASSERT_NE(arb, nullptr);

  const std::size_t threshold = world.engine(0).rdv_threshold();
  ASSERT_GT(threshold, 0u);
  EXPECT_EQ(arb->cutoff(), threshold);
  // A message exactly at the threshold is the largest still-eager size
  // (protocol_for goes rendezvous strictly above it) and must classify as
  // BULK; one byte below stays LATENCY. This pins the `>=` boundary.
  EXPECT_EQ(arb->classify(threshold), qos::kBulk);
  EXPECT_EQ(arb->classify(threshold - 1), qos::kLatency);
  EXPECT_EQ(arb->classify(0), qos::kLatency);
}

// --- engine integration ----------------------------------------------------

TEST(QosEngine, TryIsendShedsWhenClassQueueFull) {
  core::WorldConfig cfg = core::paper_testbed("hetero-split");
  cfg.engine.qos.enabled = true;
  auto classes = qos::builtin_classes();
  classes[qos::kLatency].queue_capacity = 4;
  cfg.engine.qos.classes = std::move(classes);
  core::World world(cfg);
  auto& sender = world.engine(0);
  auto& receiver = world.engine(1);

  std::vector<std::uint8_t> tx(512, 0x22);
  std::vector<std::vector<std::uint8_t>> rx(4, std::vector<std::uint8_t>(512));
  std::vector<core::RecvHandle> recvs;
  for (unsigned i = 0; i < 4; ++i) {
    recvs.push_back(receiver.irecv(0, static_cast<Tag>(i), rx[i].data(), 512));
  }
  // Five back-to-back submissions at the same virtual instant: no grant
  // round can run in between, so the 4-deep queue sheds the fifth.
  std::vector<core::SendHandle> sends;
  for (unsigned i = 0; i < 4; ++i) {
    auto s = sender.try_isend(1, static_cast<Tag>(i), tx.data(), tx.size());
    ASSERT_NE(s, nullptr);
    sends.push_back(std::move(s));
  }
  EXPECT_EQ(sender.try_isend(1, 4, tx.data(), tx.size()), nullptr);
  EXPECT_EQ(sender.qos()->counters(qos::kLatency).rejected_full, 1u);

  for (unsigned i = 0; i < 4; ++i) {
    world.wait(recvs[i]);
    world.wait(sends[i]);
    EXPECT_EQ(rx[i], tx);
  }
}

TEST(QosEngine, FeasibleDeadlineAcceptedAndHit) {
  core::WorldConfig cfg = core::paper_testbed("hetero-split");
  cfg.engine.qos.enabled = true;
  core::World world(cfg);

  std::vector<std::uint8_t> tx(512, 0x33);
  std::vector<std::uint8_t> rx(512);
  auto recv = world.engine(1).irecv(0, 7, rx.data(), rx.size());
  core::Engine::SendOptions opts;
  opts.deadline = world.now() + usec(10'000);
  auto send = world.engine(0).isend(1, 7, tx.data(), tx.size(), opts);
  ASSERT_NE(send, nullptr);
  EXPECT_FALSE(send->rejected());
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(world.engine(0).stats().qos_deadline_hits, 1u);
  EXPECT_EQ(world.engine(0).stats().qos_deadline_misses, 0u);
  EXPECT_EQ(world.engine(0).qos()->counters(qos::kLatency).deadline_hits, 1u);
}

TEST(QosEngine, InfeasibleDeadlineRejectedAtSubmit) {
  core::WorldConfig cfg = core::paper_testbed("hetero-split");
  cfg.engine.qos.enabled = true;
  core::World world(cfg);

  std::vector<std::uint8_t> tx(1_MiB, 0x44);
  core::Engine::SendOptions opts;
  opts.deadline = world.now() + 1;  // no rail can land 1 MiB in one ns
  auto send = world.engine(0).isend(1, 8, tx.data(), tx.size(), opts);
  ASSERT_NE(send, nullptr);
  EXPECT_TRUE(send->rejected());
  EXPECT_TRUE(send->failed());
  EXPECT_EQ(world.engine(0).stats().qos_admission_rejects, 1u);
  EXPECT_EQ(world.engine(0).qos()->counters(qos::kBulk).admission_rejects, 1u);
}

TEST(QosEngine, InfeasibleDeadlineDowngradedWhenConfigured) {
  core::WorldConfig cfg = core::paper_testbed("hetero-split");
  cfg.engine.qos.enabled = true;
  cfg.engine.qos.deadline_downgrade = true;
  core::World world(cfg);

  std::vector<std::uint8_t> tx(1_MiB, 0x55);
  std::vector<std::uint8_t> rx(1_MiB);
  auto recv = world.engine(1).irecv(0, 9, rx.data(), rx.size());
  core::Engine::SendOptions opts;
  opts.deadline = world.now() + 1;
  auto send = world.engine(0).isend(1, 9, tx.data(), tx.size(), opts);
  ASSERT_NE(send, nullptr);
  EXPECT_FALSE(send->rejected());
  EXPECT_EQ(send->qos_class, qos::kBackground);  // demoted, deadline waived
  EXPECT_EQ(send->deadline, 0);
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(world.engine(0).stats().qos_admission_downgrades, 1u);
}

TEST(QosEngine, StrictPreemptionProtectsPingUnderBulkFlood) {
  // A 512 B ping submitted mid-4 MiB-flood: with QoS off it waits out the
  // queued wire time; with QoS on the bulk transfer is windowed and the
  // strict LATENCY class slips into the chunk boundaries.
  const auto run = [](bool qos_on) {
    core::WorldConfig cfg = core::paper_testbed("hetero-split");
    cfg.engine.qos.enabled = qos_on;
    core::World world(cfg);
    std::vector<std::uint8_t> bulk_tx(4_MiB, 0x66);
    std::vector<std::uint8_t> bulk_rx(4_MiB);
    std::vector<std::uint8_t> ping_tx(512, 0x77);
    std::vector<std::uint8_t> ping_rx(512);
    auto bulk_recv = world.engine(1).irecv(0, 1, bulk_rx.data(), 4_MiB);
    auto ping_recv = world.engine(1).irecv(0, 2, ping_rx.data(), 512);
    auto bulk_send = world.engine(0).isend(1, 1, bulk_tx.data(), 4_MiB);
    SimTime ping_submit = 0;
    core::SendHandle ping_send;
    world.fabric().events().after(usec(50), [&] {
      ping_submit = world.now();
      ping_send = world.engine(0).isend(1, 2, ping_tx.data(), 512);
    });
    world.wait(bulk_recv);
    world.wait(bulk_send);
    world.wait(ping_recv);
    EXPECT_EQ(bulk_rx, bulk_tx);
    EXPECT_EQ(ping_rx, ping_tx);
    if (qos_on) {
      EXPECT_GT(world.engine(0).stats().qos_stream_chunks, 0u);
    }
    return to_usec(ping_recv->complete_time - ping_submit);
  };
  const double off_us = run(false);
  const double on_us = run(true);
  EXPECT_GE(off_us / on_us, 5.0);  // the isolation acceptance bound
}

TEST(QosEngine, DisabledEngineHasNoArbiter) {
  core::World world(core::paper_testbed("hetero-split"));
  EXPECT_EQ(world.engine(0).qos(), nullptr);
  // Default-off: plain sends behave exactly as before the subsystem.
  std::vector<std::uint8_t> tx(2_KiB, 0x11);
  std::vector<std::uint8_t> rx(2_KiB);
  auto recv = world.engine(1).irecv(0, 3, rx.data(), rx.size());
  auto send = world.engine(0).isend(1, 3, tx.data(), tx.size());
  world.wait(recv);
  world.wait(send);
  EXPECT_EQ(rx, tx);
  EXPECT_EQ(world.engine(0).stats().qos_grants, 0u);
}

// --- thread safety (runs under TSan in CI) ---------------------------------

TEST(QosConcurrency, ConcurrentEnqueueAndDrain) {
  qos::QosConfig cfg;
  qos::ClassSpec a;
  a.name = "a";
  a.weight = 2.0;
  a.queue_capacity = 100'000;
  qos::ClassSpec b = a;
  b.name = "b";
  b.weight = 1.0;
  cfg.classes = {a, b};
  qos::QosArbiter arb(cfg, 32_KiB);

  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 500;
  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  for (unsigned t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (unsigned i = 0; i < kPerThread; ++i) {
        arb.enqueue(t % 2, make_send(1_KiB, t * kPerThread + i), 0);
        if (i % 64 == 0) {
          (void)arb.has_capacity(t % 2);
          (void)arb.depth(t % 2);
        }
      }
    });
  }

  start.store(true, std::memory_order_release);
  std::atomic<unsigned> drained{0};
  while (drained.load(std::memory_order_relaxed) < kThreads * kPerThread) {
    arb.grant(usec(1), [&](core::SendHandle s) {
      ASSERT_NE(s, nullptr);
      drained.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& p : producers) p.join();

  EXPECT_EQ(arb.counters(0).granted + arb.counters(1).granted,
            kThreads * kPerThread);
  EXPECT_FALSE(arb.backlog());
}

}  // namespace
}  // namespace rails
