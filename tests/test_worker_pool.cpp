#include "rt/worker_pool.hpp"

#include <atomic>
#include <chrono>

#include <gtest/gtest.h>

namespace rails::rt {
namespace {

TEST(WorkerPool, RunsSubmittedWork) {
  WorkerPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit(Tasklet([&] { counter.fetch_add(1); }, TaskPriority::kNormal));
  }
  pool.drain();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.executed(), 100u);
}

TEST(WorkerPool, SubmitToTargetsSpecificWorker) {
  WorkerPool pool(3);
  std::atomic<int> ran_on{-1};
  std::atomic<bool> done{false};
  pool.submit_to(2, Tasklet(
                        [&] {
                          ran_on.store(2);
                          done.store(true);
                        },
                        TaskPriority::kTasklet));
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(ran_on.load(), 2);
}

TEST(WorkerPool, SameWorkerPreservesFifoWithinPriority) {
  WorkerPool pool(1);
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 50; ++i) {
    pool.submit_to(0, Tasklet(
                          [&, i] {
                            std::lock_guard<std::mutex> lock(m);
                            order.push_back(i);
                          },
                          TaskPriority::kNormal));
  }
  pool.drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPool, TaskletsJumpAheadOfNormalWork) {
  WorkerPool pool(1);
  std::vector<int> order;
  std::mutex m;
  std::atomic<bool> gate{false};

  // Occupy the single worker so the queue builds behind it.
  pool.submit_to(0, Tasklet(
                        [&] {
                          while (!gate.load()) std::this_thread::yield();
                        },
                        TaskPriority::kNormal));
  for (int i = 0; i < 3; ++i) {
    pool.submit_to(0, Tasklet(
                          [&, i] {
                            std::lock_guard<std::mutex> lock(m);
                            order.push_back(i);
                          },
                          TaskPriority::kNormal));
  }
  pool.submit_to(0, Tasklet(
                        [&] {
                          std::lock_guard<std::mutex> lock(m);
                          order.push_back(99);
                        },
                        TaskPriority::kTasklet));
  gate.store(true);
  pool.drain();
  ASSERT_EQ(order.size(), 4u);
  // The tasklet was submitted last but runs first.
  EXPECT_EQ(order[0], 99);
  EXPECT_EQ(order[1], 0);
}

TEST(WorkerPool, IdleCountSettles) {
  WorkerPool pool(4);
  pool.drain();
  // All workers parked once quiescent.
  for (int attempt = 0; attempt < 100 && pool.idle_count() != 4; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.idle_count(), 4u);
  EXPECT_LT(pool.pick_idle(), 4u);
}

TEST(WorkerPool, SignalCostCalibrationIsPlausible) {
  WorkerPool pool(2);
  const double to_us = pool.calibrate_signal_cost_us(32);
  // The paper measured 3 µs on 2008 Opterons; on any sane host the condvar
  // round trip lands between 0.05 µs and 5 ms.
  EXPECT_GT(to_us, 0.01);
  EXPECT_LT(to_us, 5000.0);
}

TEST(WorkerPool, ManyWorkersStress) {
  WorkerPool pool(4);
  std::atomic<long long> sum{0};
  constexpr int kCount = 5000;
  for (int i = 0; i < kCount; ++i) {
    pool.submit(Tasklet([&sum, i] { sum.fetch_add(i); }, i % 2 == 0
                                                             ? TaskPriority::kTasklet
                                                             : TaskPriority::kNormal));
  }
  pool.drain();
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(WorkerPool, MetricsCountSignalsAndExecution) {
  telemetry::MetricsRegistry registry;
  WorkerPool pool(2);
  pool.set_metrics(&registry);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit(Tasklet([&] { counter.fetch_add(1); }, TaskPriority::kNormal));
  }
  pool.drain();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(registry.find_counter("rt.signals")->value(), 50u);
  EXPECT_EQ(registry.find_counter("rt.executed")->value(), 50u);
  EXPECT_GE(registry.find_gauge("rt.queue_depth_hwm")->value(), 1);

  // Detached again: further work leaves the registry untouched.
  pool.set_metrics(nullptr);
  pool.submit(Tasklet([&] { counter.fetch_add(1); }, TaskPriority::kNormal));
  pool.drain();
  EXPECT_EQ(registry.find_counter("rt.signals")->value(), 50u);
  EXPECT_EQ(registry.find_counter("rt.executed")->value(), 50u);
}

TEST(WorkerPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit(Tasklet([&] { counter.fetch_add(1); }, TaskPriority::kNormal));
    }
    pool.drain();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace rails::rt
