// Edge cases of the engine's protocol machinery: segment caps, threshold
// boundaries, capacity guards, multi-destination scheduling, overrides.
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "fabric/presets.hpp"
#include "test_util.hpp"

namespace rails::core {
namespace {

TEST(EngineEdge, MessageExactlyAtThresholdStaysEager) {
  core::World world(paper_testbed("aggregate-fastest"));
  const std::size_t th = world.engine(0).rdv_threshold();
  const auto tx = test::make_pattern(th, 1);
  std::vector<std::uint8_t> rx(th);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), th);
  auto send = world.engine(0).isend(1, 1, tx.data(), th);
  world.wait(recv);
  EXPECT_FALSE(send->rendezvous);
  EXPECT_EQ(rx, tx);
}

TEST(EngineEdge, MessageOneOverThresholdGoesRendezvous) {
  core::World world(paper_testbed("aggregate-fastest"));
  const std::size_t size = world.engine(0).rdv_threshold() + 1;
  const auto tx = test::make_pattern(size, 2);
  std::vector<std::uint8_t> rx(size);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), size);
  auto send = world.engine(0).isend(1, 1, tx.data(), size);
  world.wait(recv);
  world.wait(send);
  EXPECT_TRUE(send->rendezvous);
  EXPECT_EQ(rx, tx);
}

TEST(EngineEdge, ThresholdOverrideForcesRendezvous) {
  core::WorldConfig cfg = paper_testbed("hetero-split");
  cfg.engine.rdv_threshold_override = 256;
  core::World world(cfg);
  EXPECT_EQ(world.engine(0).rdv_threshold(), 256u);
  const auto tx = test::make_pattern(1024, 3);
  std::vector<std::uint8_t> rx(1024);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), 1024);
  auto send = world.engine(0).isend(1, 1, tx.data(), 1024);
  world.wait(send);
  (void)recv;
  EXPECT_TRUE(send->rendezvous);
  EXPECT_EQ(rx, tx);
}

TEST(EngineEdge, BurstLargerThanSegmentCapSplitsSegments) {
  // 3 x 24 KiB aggregates to 72 KiB, above the 64 KiB max_eager: the packer
  // must produce multiple segments, all delivered intact.
  core::World world(paper_testbed("single-rail:0"));
  const std::size_t size = 24_KiB;
  std::vector<std::vector<std::uint8_t>> tx;
  std::vector<std::vector<std::uint8_t>> rx(3, std::vector<std::uint8_t>(size));
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < 3; ++i) {
    tx.push_back(test::make_pattern(size, 70 + i));
    recvs.push_back(world.engine(1).irecv(0, i, rx[i].data(), size));
  }
  for (int i = 0; i < 3; ++i) world.engine(0).isend(1, i, tx[i].data(), size);
  for (auto& r : recvs) world.wait(r);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(rx[i], tx[i]);
  EXPECT_GE(world.engine(0).stats().eager_segments, 2u);
}

TEST(EngineEdge, InterleavedDestinationsScheduleIndependently) {
  core::WorldConfig cfg = paper_testbed("aggregate-fastest");
  cfg.fabric.node_count = 3;
  core::World world(cfg);
  const auto tx = test::make_pattern(4_KiB, 4);
  std::vector<std::uint8_t> rx1(4_KiB), rx2(4_KiB);
  auto recv1 = world.engine(1).irecv(0, 1, rx1.data(), rx1.size());
  auto recv2 = world.engine(2).irecv(0, 1, rx2.data(), rx2.size());
  world.engine(0).isend(1, 1, tx.data(), tx.size());
  world.engine(0).isend(2, 1, tx.data(), tx.size());
  world.wait(recv1);
  world.wait(recv2);
  EXPECT_EQ(rx1, tx);
  EXPECT_EQ(rx2, tx);
}

TEST(EngineEdgeDeath, RecvBufferTooSmallAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::World world(paper_testbed("aggregate-fastest"));
  const auto tx = test::make_pattern(1024, 5);
  std::vector<std::uint8_t> rx(64);
  world.engine(1).irecv(0, 1, rx.data(), rx.size());
  world.engine(0).isend(1, 1, tx.data(), tx.size());
  EXPECT_DEATH(world.fabric().events().run_all(), "too small");
}

TEST(EngineEdgeDeath, SelfSendAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::World world(paper_testbed("aggregate-fastest"));
  std::uint8_t byte = 0;
  EXPECT_DEATH(world.engine(0).isend(0, 1, &byte, 1), "self-send");
}

TEST(EngineEdge, ManyTinyMessagesOneTagFifo) {
  core::World world(paper_testbed("aggregate-fastest"));
  constexpr int kCount = 32;
  std::vector<std::vector<std::uint8_t>> tx;
  std::vector<std::vector<std::uint8_t>> rx(kCount, std::vector<std::uint8_t>(64));
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < kCount; ++i) {
    tx.push_back(test::make_pattern(64, 100 + i));
    recvs.push_back(world.engine(1).irecv(0, 9, rx[i].data(), 64));
  }
  for (int i = 0; i < kCount; ++i) world.engine(0).isend(1, 9, tx[i].data(), 64);
  for (auto& r : recvs) world.wait(r);
  // Same tag throughout: matching must stay FIFO even across aggregation.
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(rx[i], tx[i]) << "message " << i;
}

TEST(EngineEdge, RecvPostedLongAfterTraffic) {
  core::World world(paper_testbed("hetero-split"));
  const auto tx = test::make_pattern(512, 6);
  auto send = world.engine(0).isend(1, 1, tx.data(), tx.size());
  world.fabric().events().run_all();
  EXPECT_TRUE(send->done());
  // A full quiesce later, the unexpected store still delivers.
  std::vector<std::uint8_t> rx(512);
  auto recv = world.engine(1).irecv(0, 1, rx.data(), rx.size());
  EXPECT_TRUE(recv->done());
  EXPECT_EQ(rx, tx);
}

TEST(EngineEdge, StatsResetClearsCounters) {
  core::World world(paper_testbed("hetero-split"));
  world.measure_one_way(4_KiB);
  EXPECT_GT(world.engine(0).stats().sends, 0u);
  world.engine(0).reset_stats();
  EXPECT_EQ(world.engine(0).stats().sends, 0u);
  ASSERT_EQ(world.engine(0).stats().payload_bytes_per_rail.size(), 2u);
  EXPECT_EQ(world.engine(0).stats().payload_bytes_per_rail[0], 0u);
}

}  // namespace
}  // namespace rails::core
