#include <gtest/gtest.h>

#include "fabric/presets.hpp"
#include "mpi/communicator.hpp"
#include "test_util.hpp"

namespace rails::mpi {
namespace {

core::WorldConfig four_nodes(const char* strategy = "hetero-split") {
  core::WorldConfig cfg;
  cfg.fabric.node_count = 4;
  cfg.fabric.rails = {fabric::myri10g(), fabric::qsnet2()};
  cfg.strategy = strategy;
  return cfg;
}

TEST(MpiPt2pt, RankAndSize) {
  core::World world(four_nodes());
  Communicator comm(&world, 2);
  EXPECT_EQ(comm.rank(), 2);
  EXPECT_EQ(comm.size(), 4);
}

TEST(MpiPt2pt, BlockingSendRecv) {
  core::World world(four_nodes());
  Communicator c0(&world, 0);
  Communicator c1(&world, 1);
  const auto tx = test::make_pattern(8_KiB, 1);
  std::vector<std::uint8_t> rx(8_KiB);
  // Post the receive nonblocking, then the blocking send drives the fabric.
  auto r = c1.irecv(0, 5, rx.data(), rx.size());
  c0.send(1, 5, tx.data(), tx.size());
  world.wait(r);
  EXPECT_EQ(rx, tx);
}

TEST(MpiPt2pt, SendrecvExchange) {
  core::World world(four_nodes());
  Communicator c0(&world, 0);
  Communicator c1(&world, 1);
  const auto tx0 = test::make_pattern(4_KiB, 10);
  const auto tx1 = test::make_pattern(4_KiB, 20);
  std::vector<std::uint8_t> rx0(4_KiB), rx1(4_KiB);
  // Both sides can call sendrecv "simultaneously" without deadlock.
  auto r0 = c0.irecv(1, 2, rx0.data(), rx0.size());
  auto s0 = c0.isend(1, 1, tx0.data(), tx0.size());
  c1.sendrecv(0, 2, tx1.data(), tx1.size(), 0, 1, rx1.data(), rx1.size());
  world.wait(r0);
  world.wait(s0);
  EXPECT_EQ(rx0, tx1);
  EXPECT_EQ(rx1, tx0);
}

TEST(MpiPt2pt, LargeMessagesUseMultirail) {
  core::World world(four_nodes("hetero-split"));
  Communicator c0(&world, 0);
  Communicator c3(&world, 3);
  const auto tx = test::make_pattern(2_MiB, 3);
  std::vector<std::uint8_t> rx(2_MiB);
  auto r = c3.irecv(0, 9, rx.data(), rx.size());
  c0.send(3, 9, tx.data(), tx.size());
  world.wait(r);
  EXPECT_EQ(rx, tx);
  const auto& per_rail = world.engine(0).stats().payload_bytes_per_rail;
  EXPECT_GT(per_rail[0], 0u);
  EXPECT_GT(per_rail[1], 0u);
}

TEST(MpiDeath, SelfSendRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::World world(four_nodes());
  Communicator c0(&world, 0);
  std::uint8_t byte = 0;
  EXPECT_DEATH(c0.isend(0, 1, &byte, 1), "");
}

TEST(MpiOps, ApplyOpDouble) {
  double acc[3] = {1.0, 5.0, -2.0};
  const double in[3] = {2.0, 3.0, -4.0};
  apply_op(ReduceOp::kSum, DType::kDouble, acc, in, 3);
  EXPECT_DOUBLE_EQ(acc[0], 3.0);
  EXPECT_DOUBLE_EQ(acc[1], 8.0);
  EXPECT_DOUBLE_EQ(acc[2], -6.0);

  double mn[2] = {1.0, 5.0};
  const double mn_in[2] = {0.5, 7.0};
  apply_op(ReduceOp::kMin, DType::kDouble, mn, mn_in, 2);
  EXPECT_DOUBLE_EQ(mn[0], 0.5);
  EXPECT_DOUBLE_EQ(mn[1], 5.0);
}

TEST(MpiOps, ApplyOpInt64) {
  std::int64_t acc[2] = {10, -3};
  const std::int64_t in[2] = {-20, 4};
  apply_op(ReduceOp::kMax, DType::kInt64, acc, in, 2);
  EXPECT_EQ(acc[0], 10);
  EXPECT_EQ(acc[1], 4);
}

TEST(MpiOps, DtypeSizes) {
  EXPECT_EQ(dtype_size(DType::kDouble), 8u);
  EXPECT_EQ(dtype_size(DType::kInt64), 8u);
}

}  // namespace
}  // namespace rails::mpi
