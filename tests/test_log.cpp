#include "common/log.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

namespace rails::log {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(level()) {}
  ~LogLevelGuard() { set_level(saved_); }

 private:
  Level saved_;
};

TEST(Log, LevelThresholding) {
  LogLevelGuard guard;
  set_level(Level::kWarn);
  EXPECT_FALSE(enabled(Level::kTrace));
  EXPECT_FALSE(enabled(Level::kDebug));
  EXPECT_FALSE(enabled(Level::kInfo));
  EXPECT_TRUE(enabled(Level::kWarn));
  EXPECT_TRUE(enabled(Level::kError));
}

TEST(Log, OffDisablesEverything) {
  LogLevelGuard guard;
  set_level(Level::kOff);
  EXPECT_FALSE(enabled(Level::kError));
}

TEST(Log, InitFromEnvParsesNames) {
  LogLevelGuard guard;
  ::setenv("RAILS_LOG", "debug", 1);
  init_from_env();
  EXPECT_EQ(level(), Level::kDebug);
  ::setenv("RAILS_LOG", "error", 1);
  init_from_env();
  EXPECT_EQ(level(), Level::kError);
  ::unsetenv("RAILS_LOG");
}

TEST(Log, InitFromEnvIgnoresGarbage) {
  LogLevelGuard guard;
  set_level(Level::kInfo);
  ::setenv("RAILS_LOG", "shouting", 1);
  init_from_env();
  EXPECT_EQ(level(), Level::kInfo);  // unchanged
  ::unsetenv("RAILS_LOG");
}

TEST(Log, MacroEvaluatesLazily) {
  LogLevelGuard guard;
  set_level(Level::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  RAILS_ERROR("test", "value %d", expensive());
  EXPECT_EQ(evaluations, 0) << "disabled log must not evaluate its arguments";
}

}  // namespace
}  // namespace rails::log
