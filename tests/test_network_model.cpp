#include "fabric/network_model.hpp"

#include <gtest/gtest.h>

#include "fabric/presets.hpp"

namespace rails::fabric {
namespace {

TEST(NetworkModel, PioPiecewiseMarginalRates) {
  NetworkModelParams p;
  p.pio_bw_mbps = 1000.0;        // 1 ns per byte
  p.pio_bw_large_mbps = 500.0;   // 2 ns per byte
  p.pio_cache_limit = 1024;
  NetworkModel m(p);
  EXPECT_EQ(m.pio_time(0), 0);
  EXPECT_EQ(m.pio_time(1024), 1024);             // all fast
  EXPECT_EQ(m.pio_time(2048), 1024 + 2048);      // 1024 fast + 1024 slow
}

TEST(NetworkModel, PacketCount) {
  NetworkModelParams p;
  p.mtu = 4096;
  NetworkModel m(p);
  EXPECT_EQ(m.packet_count(0), 1u);  // header-only packet
  EXPECT_EQ(m.packet_count(1), 1u);
  EXPECT_EQ(m.packet_count(4096), 1u);
  EXPECT_EQ(m.packet_count(4097), 2u);
  EXPECT_EQ(m.packet_count(16384), 4u);
}

TEST(NetworkModel, EagerTimingDecomposition) {
  NetworkModelParams p;
  p.post_us = 1.0;
  p.wire_latency_us = 2.0;
  p.pio_bw_mbps = 1000.0;
  p.pio_bw_large_mbps = 1000.0;
  p.per_packet_us = 0.5;
  p.mtu = 1024;
  NetworkModel m(p);
  const auto t = m.eager(2048);
  // host = post (1us) + copy (2048ns) + 2 packets (1us)
  EXPECT_EQ(t.host, usec(1.0) + 2048 + usec(1.0));
  EXPECT_EQ(t.nic, t.host);
  EXPECT_EQ(t.total, t.host + usec(2.0));
}

TEST(NetworkModel, RendezvousTimingDecomposition) {
  NetworkModelParams p;
  p.post_us = 1.0;
  p.dma_setup_us = 2.0;
  p.dma_bw_mbps = 1000.0;
  p.rdv_handshake_us = 10.0;
  p.wire_latency_us = 1.0;
  NetworkModel m(p);
  const auto with = m.rendezvous(1000, true);
  const auto without = m.rendezvous(1000, false);
  EXPECT_EQ(with.total - without.total, usec(10.0));
  EXPECT_EQ(without.host, usec(3.0));
  EXPECT_EQ(without.nic, usec(3.0) + 1000);
  EXPECT_EQ(without.total, without.nic + usec(1.0));
}

TEST(NetworkModel, DmaDoesNotOccupyHostForStream) {
  // The host share of a rendezvous chunk is constant — DMA frees the core
  // (this is why large-message splitting needs no multicore help).
  const NetworkModel m{myri10g()};
  EXPECT_EQ(m.rendezvous(1_MiB).host, m.rendezvous(8_MiB).host);
  EXPECT_GT(m.eager(32_KiB).host, m.eager(1_KiB).host);
}

TEST(NetworkModel, BestDurationPicksCheaperProtocol) {
  const NetworkModel m{myri10g()};
  const std::size_t th = m.natural_rdv_threshold();
  EXPECT_EQ(m.best_duration(th / 4), m.eager(th / 4).total);
  EXPECT_EQ(m.best_duration(8_MiB), m.rendezvous(8_MiB).total);
}

// -- calibration against the paper's §IV numbers ---------------------------

TEST(Presets, MyriLargeMessageBandwidth) {
  const NetworkModel m{myri10g()};
  EXPECT_NEAR(m.bandwidth_at(8_MiB), 1170.0, 15.0);
}

TEST(Presets, QsnetLargeMessageBandwidth) {
  const NetworkModel m{qsnet2()};
  EXPECT_NEAR(m.bandwidth_at(8_MiB), 837.0, 10.0);
}

TEST(Presets, TwoMiBChunkTimesMatchPaper) {
  // §IV-A: a 2 MB chunk streams in ~1730 µs over Myri-10G and ~2400 µs over
  // Quadrics (these are DMA chunk times without the handshake).
  const NetworkModel myri{myri10g()};
  const NetworkModel qs{qsnet2()};
  EXPECT_NEAR(to_usec(myri.rendezvous(2_MiB, false).total), 1730.0, 80.0);
  EXPECT_NEAR(to_usec(qs.rendezvous(2_MiB, false).total), 2400.0, 110.0);
}

TEST(Presets, SmallMessageLatency) {
  // Fig. 9: ~2.9 µs for Myri-10G, ~1.6 µs for QsNetII at 4 bytes.
  const NetworkModel myri{myri10g()};
  const NetworkModel qs{qsnet2()};
  EXPECT_NEAR(to_usec(myri.eager(4).total), 2.9, 0.4);
  EXPECT_NEAR(to_usec(qs.eager(4).total), 1.6, 0.3);
}

TEST(Presets, QsnetWinsTinyMyriWinsMedium) {
  // Fig. 3's two aggregated curves cross: Quadrics is faster for tiny
  // payloads, Myri-10G for larger eager payloads.
  const NetworkModel myri{myri10g()};
  const NetworkModel qs{qsnet2()};
  EXPECT_LT(qs.eager(4).total, myri.eager(4).total);
  EXPECT_LT(myri.eager(32_KiB).total, qs.eager(32_KiB).total);
}

TEST(Presets, Myri2000IsThePreviousGeneration) {
  const NetworkModel old{myri2000()};
  const NetworkModel modern{myri10g()};
  EXPECT_NEAR(old.bandwidth_at(8_MiB), 245.0, 5.0);
  // Strictly slower than its successor everywhere.
  for (std::size_t s = 4; s <= 8_MiB; s <<= 2) {
    EXPECT_GT(old.best_duration(s), modern.best_duration(s)) << "size " << s;
  }
}

TEST(Presets, NaturalThresholdIsMediumSized) {
  for (const auto& params : {myri10g(), qsnet2(), ib_ddr()}) {
    const NetworkModel m{params};
    const std::size_t th = m.natural_rdv_threshold();
    EXPECT_GE(th, 4_KiB) << params.name;
    EXPECT_LE(th, 64_KiB) << params.name;
  }
}

TEST(Presets, AffineModelIsExactlyAffine) {
  const NetworkModel m{affine(5.0, 1000.0)};
  const SimDuration d1 = m.eager(1000).total;
  const SimDuration d2 = m.eager(2000).total;
  const SimDuration d3 = m.eager(3000).total;
  EXPECT_EQ(d2 - d1, d3 - d2);
  EXPECT_EQ(m.eager(0).total, usec(5.0));
}

// -- property sweeps over all presets ---------------------------------------

class ModelProperty : public ::testing::TestWithParam<const char*> {
 protected:
  static NetworkModelParams params_for(const std::string& name) {
    if (name == "myri10g") return myri10g();
    if (name == "qsnet2") return qsnet2();
    if (name == "ib-ddr") return ib_ddr();
    if (name == "myri2000") return myri2000();
    return gige_tcp();
  }
};

TEST_P(ModelProperty, DurationsMonotoneInSize) {
  const NetworkModel m{params_for(GetParam())};
  SimDuration prev_eager = -1;
  SimDuration prev_rdv = -1;
  for (std::size_t s = 1; s <= 8_MiB; s <<= 1) {
    if (s <= m.params().max_eager) {
      const SimDuration e = m.eager(s).total;
      EXPECT_GT(e, prev_eager) << GetParam() << " size " << s;
      prev_eager = e;
    }
    const SimDuration r = m.rendezvous(s).total;
    EXPECT_GT(r, prev_rdv) << GetParam() << " size " << s;
    prev_rdv = r;
  }
}

TEST_P(ModelProperty, HostNeverExceedsTotal) {
  const NetworkModel m{params_for(GetParam())};
  for (std::size_t s = 1; s <= 8_MiB; s <<= 1) {
    if (s <= m.params().max_eager) {
      const auto e = m.eager(s);
      EXPECT_LE(e.host, e.total);
      EXPECT_LE(e.host, e.nic);
    }
    const auto r = m.rendezvous(s);
    EXPECT_LE(r.host, r.nic);
    EXPECT_LE(r.nic, r.total);
  }
}

TEST_P(ModelProperty, BandwidthApproachesAsymptote) {
  const NetworkModel m{params_for(GetParam())};
  // At 8 MiB the achieved bandwidth is within 2% of the DMA rate.
  EXPECT_NEAR(m.bandwidth_at(8_MiB), m.params().dma_bw_mbps,
              m.params().dma_bw_mbps * 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, ModelProperty,
                         ::testing::Values("myri10g", "qsnet2", "ib-ddr", "gige-tcp",
                                           "myri2000"));

}  // namespace
}  // namespace rails::fabric
