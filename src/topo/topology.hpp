// Inter-node network topology: shapes, coordinates, links and routes.
//
// PR 1–9 worlds were flat: every node pair is one wire apart and "rail r"
// means "NIC r". That cannot express the path-diversity arguments the
// multirail literature actually makes (Nezha spreads traffic across
// *paths*, RailS picks paths per destination), so this subsystem turns the
// fabric into a graph:
//
//   * vertices  = nodes [0, N) plus switches [N, N+S) (meshes and tori are
//     direct networks — every node is its own router — so S = 0 there;
//     the fat-tree adds leaf and root switches),
//   * links     = directed edges with dense ids, so per-(rail, link)
//     occupancy state is a flat array lookup in the fabric,
//   * routes    = deterministic shortest paths: dimension-order (X then Y)
//     for mesh/torus, up-down through a per-destination root for the
//     2-level fat-tree. Deterministic routing keeps the DES bit-identical
//     run to run; path diversity comes from the rail dimension (each rail
//     is a parallel copy of the topology — a "plane"), so a (NIC, path)
//     pair is what the estimator/split-solver stack actually schedules.
//
// Routes are cached per (src, dst) on first use: steady-state forwarding
// never allocates, which is what lets the 256-node hot-path test keep the
// 0 allocs/msg invariant with routing enabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rails::topo {

enum class TopoKind : std::uint8_t {
  kFlat,      ///< every pair one wire apart; rails are independent NICs
  kMesh2D,    ///< W x H grid, no wraparound; dimension-order routing
  kTorus2D,   ///< W x H grid with wraparound; dimension-order, shorter way
  kFatTree2L  ///< 2-level fat-tree (leaf + root switches); up-down routing
};

const char* to_string(TopoKind kind);

/// Declarative shape description; Topology materialises it for a concrete
/// node count. Parsed from the `topology <kind> ...` config directive.
struct TopologySpec {
  TopoKind kind = TopoKind::kFlat;
  std::uint32_t width = 0;       ///< mesh/torus X extent
  std::uint32_t height = 0;      ///< mesh/torus Y extent
  std::uint32_t down_ports = 0;  ///< fat-tree: nodes per leaf switch
  std::uint32_t up_ports = 0;    ///< fat-tree: uplinks per leaf = root count

  static TopologySpec flat() { return {}; }
  static TopologySpec mesh(std::uint32_t w, std::uint32_t h) {
    return {TopoKind::kMesh2D, w, h, 0, 0};
  }
  static TopologySpec torus(std::uint32_t w, std::uint32_t h) {
    return {TopoKind::kTorus2D, w, h, 0, 0};
  }
  static TopologySpec fat_tree(std::uint32_t down, std::uint32_t up) {
    return {TopoKind::kFatTree2L, 0, 0, down, up};
  }

  /// Node count implied by the shape (mesh/torus: W*H); 0 = any count fits.
  std::uint32_t preset_nodes() const {
    return (kind == TopoKind::kMesh2D || kind == TopoKind::kTorus2D)
               ? width * height
               : 0;
  }
};

struct Coord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  bool operator==(const Coord&) const = default;
};

/// One routing step: traverse `link` and arrive at vertex `to`.
struct Hop {
  std::uint32_t to = 0;
  std::uint32_t link = 0;
  bool operator==(const Hop&) const = default;
};

using Path = std::vector<Hop>;

class Topology {
 public:
  /// Sentinel link id for the flat topology's direct "hop" (no link table).
  static constexpr std::uint32_t kNoLink = 0xffffffffu;

  Topology(const TopologySpec& spec, std::uint32_t node_count);

  const TopologySpec& spec() const { return spec_; }
  TopoKind kind() const { return spec_.kind; }
  /// Flat worlds deliver point-to-point with no forwarding events.
  bool direct() const { return spec_.kind == TopoKind::kFlat; }

  std::uint32_t node_count() const { return node_count_; }
  std::uint32_t switch_count() const { return switch_count_; }
  std::uint32_t vertex_count() const { return node_count_ + switch_count_; }
  /// Dense directed-link id space (per rail plane); 0 for flat.
  std::uint32_t link_count() const { return link_count_; }

  /// Mesh/torus coordinate of a node (x fastest): n = y*W + x.
  Coord coord_of(NodeId n) const;
  NodeId node_at(Coord c) const;

  /// The deterministic route src -> dst as a hop list. The first hop leaves
  /// the source NIC (its latency is already part of the NIC wire model);
  /// the last hop's `to` is always `dst`. Cached per (src, dst): repeat
  /// calls return the same vector with no allocation.
  const Path& route(NodeId src, NodeId dst) const;

  /// Number of links on route(src, dst); 1 for flat or src == dst.
  std::uint32_t hops(NodeId src, NodeId dst) const;

  /// Longest shortest-path in links (analytic, not enumerated).
  std::uint32_t diameter_hops() const;

  std::string describe() const;

 private:
  Path compute_route(NodeId src, NodeId dst) const;
  Path route_mesh(NodeId src, NodeId dst) const;
  Path route_fat_tree(NodeId src, NodeId dst) const;

  TopologySpec spec_;
  std::uint32_t node_count_ = 0;
  std::uint32_t switch_count_ = 0;
  std::uint32_t link_count_ = 0;
  std::uint32_t leaves_ = 0;  ///< fat-tree leaf switch count

  // Lazily-filled (src, dst) route cache; index = src * node_count + dst.
  mutable std::vector<Path> route_cache_;
  mutable std::vector<std::uint8_t> route_ready_;
};

}  // namespace rails::topo
