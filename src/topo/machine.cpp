#include "topo/machine.hpp"

#include <sstream>

namespace rails {

std::vector<CoreId> MachineTopology::neighbours_by_distance(CoreId from) const {
  std::vector<CoreId> out;
  out.reserve(core_count() - 1);
  const std::uint32_t home = socket_of(from);
  // Same-socket cores first.
  for (CoreId c = 0; c < core_count(); ++c) {
    if (c != from && socket_of(c) == home) out.push_back(c);
  }
  // Then remote sockets in increasing socket distance (ring order).
  for (std::uint32_t d = 1; d < sockets; ++d) {
    const std::uint32_t s = (home + d) % sockets;
    for (CoreId c = s * cores_per_socket; c < (s + 1) * cores_per_socket; ++c) {
      out.push_back(c);
    }
  }
  return out;
}

std::string MachineTopology::describe() const {
  std::ostringstream os;
  os << sockets << " socket(s) x " << cores_per_socket << " core(s) = " << core_count()
     << " cores";
  return os.str();
}

}  // namespace rails
