#include "topo/topology.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace rails::topo {

namespace {

// Mesh/torus directed-link directions. Each vertex owns four outgoing link
// slots (edge vertices in a mesh simply never use the ones that would fall
// off the grid), so link id = vertex * 4 + dir stays dense and branch-free.
enum Dir : std::uint32_t { kPlusX = 0, kMinusX = 1, kPlusY = 2, kMinusY = 3 };

}  // namespace

const char* to_string(TopoKind kind) {
  switch (kind) {
    case TopoKind::kFlat: return "flat";
    case TopoKind::kMesh2D: return "mesh";
    case TopoKind::kTorus2D: return "torus";
    case TopoKind::kFatTree2L: return "fattree";
  }
  return "?";
}

Topology::Topology(const TopologySpec& spec, std::uint32_t node_count)
    : spec_(spec), node_count_(node_count) {
  RAILS_CHECK(node_count_ >= 1);
  switch (spec_.kind) {
    case TopoKind::kFlat:
      break;
    case TopoKind::kMesh2D:
    case TopoKind::kTorus2D:
      RAILS_CHECK(spec_.width >= 1 && spec_.height >= 1);
      RAILS_CHECK_MSG(spec_.width * spec_.height == node_count_,
                      "mesh/torus extent does not match the node count");
      link_count_ = node_count_ * 4;
      break;
    case TopoKind::kFatTree2L: {
      RAILS_CHECK(spec_.down_ports >= 1 && spec_.up_ports >= 1);
      leaves_ = (node_count_ + spec_.down_ports - 1) / spec_.down_ports;
      switch_count_ = leaves_ + spec_.up_ports;
      link_count_ = 2 * node_count_ + 2 * leaves_ * spec_.up_ports;
      break;
    }
  }
  if (!direct()) {
    route_cache_.resize(static_cast<std::size_t>(node_count_) * node_count_);
    route_ready_.assign(route_cache_.size(), 0);
  }
}

Coord Topology::coord_of(NodeId n) const {
  RAILS_CHECK(spec_.kind == TopoKind::kMesh2D || spec_.kind == TopoKind::kTorus2D);
  RAILS_CHECK(n < node_count_);
  return {n % spec_.width, n / spec_.width};
}

NodeId Topology::node_at(Coord c) const {
  RAILS_CHECK(spec_.kind == TopoKind::kMesh2D || spec_.kind == TopoKind::kTorus2D);
  RAILS_CHECK(c.x < spec_.width && c.y < spec_.height);
  return c.y * spec_.width + c.x;
}

const Path& Topology::route(NodeId src, NodeId dst) const {
  RAILS_CHECK(!direct());
  RAILS_CHECK(src < node_count_ && dst < node_count_);
  const std::size_t idx = static_cast<std::size_t>(src) * node_count_ + dst;
  if (!route_ready_[idx]) {
    route_cache_[idx] = compute_route(src, dst);
    route_ready_[idx] = 1;
  }
  return route_cache_[idx];
}

std::uint32_t Topology::hops(NodeId src, NodeId dst) const {
  if (direct() || src == dst) return 1;
  return static_cast<std::uint32_t>(route(src, dst).size());
}

std::uint32_t Topology::diameter_hops() const {
  switch (spec_.kind) {
    case TopoKind::kFlat:
      return 1;
    case TopoKind::kMesh2D:
      return (spec_.width - 1) + (spec_.height - 1);
    case TopoKind::kTorus2D:
      return spec_.width / 2 + spec_.height / 2;
    case TopoKind::kFatTree2L:
      return leaves_ > 1 ? 4 : 2;
  }
  return 1;
}

Path Topology::compute_route(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  switch (spec_.kind) {
    case TopoKind::kFlat:
      return {Hop{dst, kNoLink}};
    case TopoKind::kMesh2D:
    case TopoKind::kTorus2D:
      return route_mesh(src, dst);
    case TopoKind::kFatTree2L:
      return route_fat_tree(src, dst);
  }
  return {};
}

Path Topology::route_mesh(NodeId src, NodeId dst) const {
  // Dimension-order: resolve X fully, then Y. Deterministic and minimal;
  // on the torus the shorter way around wins, ties broken toward +.
  const bool wrap = spec_.kind == TopoKind::kTorus2D;
  const std::uint32_t W = spec_.width;
  const std::uint32_t H = spec_.height;
  Path path;
  Coord cur = coord_of(src);
  const Coord goal = coord_of(dst);

  auto step = [&](std::uint32_t extent, std::uint32_t from, std::uint32_t to,
                  Dir plus, Dir minus) {
    const std::uint32_t fwd = (to + extent - from) % extent;
    const bool positive = wrap ? fwd <= extent - fwd : to > from;
    return positive ? plus : minus;
  };

  while (cur.x != goal.x) {
    const Dir d = step(W, cur.x, goal.x, kPlusX, kMinusX);
    const std::uint32_t link = node_at(cur) * 4 + d;
    cur.x = d == kPlusX ? (cur.x + 1) % W : (cur.x + W - 1) % W;
    path.push_back(Hop{node_at(cur), link});
  }
  while (cur.y != goal.y) {
    const Dir d = step(H, cur.y, goal.y, kPlusY, kMinusY);
    const std::uint32_t link = node_at(cur) * 4 + d;
    cur.y = d == kPlusY ? (cur.y + 1) % H : (cur.y + H - 1) % H;
    path.push_back(Hop{node_at(cur), link});
  }
  return path;
}

Path Topology::route_fat_tree(NodeId src, NodeId dst) const {
  // Up-down through the 2-level tree: loop-free by construction (every path
  // climbs, crosses at most one root, and descends — never up again). The
  // crossing root is picked per destination (dst mod roots), the RailS
  // idiom: different destinations exercise different roots, so all-to-all
  // traffic spreads across the core without adaptive state.
  const std::uint32_t N = node_count_;
  const std::uint32_t L = leaves_;
  const std::uint32_t R = spec_.up_ports;
  const std::uint32_t src_leaf = src / spec_.down_ports;
  const std::uint32_t dst_leaf = dst / spec_.down_ports;
  const auto leaf_vertex = [&](std::uint32_t l) { return N + l; };
  const auto root_vertex = [&](std::uint32_t r) { return N + L + r; };

  Path path;
  path.push_back(Hop{leaf_vertex(src_leaf), /*node-up link*/ src});
  if (src_leaf != dst_leaf) {
    const std::uint32_t root = dst % R;
    path.push_back(Hop{root_vertex(root), N + src_leaf * R + root});
    path.push_back(Hop{leaf_vertex(dst_leaf), N + L * R + root * L + dst_leaf});
  }
  path.push_back(Hop{dst, N + 2 * L * R + dst});
  return path;
}

std::string Topology::describe() const {
  std::ostringstream os;
  switch (spec_.kind) {
    case TopoKind::kFlat:
      os << "flat: " << node_count_ << " node(s), all pairs 1 wire apart";
      break;
    case TopoKind::kMesh2D:
    case TopoKind::kTorus2D:
      os << to_string(spec_.kind) << " " << spec_.width << "x" << spec_.height
         << ": " << node_count_ << " node(s), " << link_count_
         << " directed link slot(s), diameter " << diameter_hops() << " hop(s)";
      break;
    case TopoKind::kFatTree2L:
      os << "fattree " << spec_.down_ports << "x" << spec_.up_ports << ": "
         << node_count_ << " node(s), " << leaves_ << " leaf + " << spec_.up_ports
         << " root switch(es), " << link_count_ << " directed link(s), diameter "
         << diameter_hops() << " hop(s)";
      break;
  }
  return os.str();
}

}  // namespace rails::topo
