// Machine topology description (intra-node: sockets × cores).
//
// The paper's testbed is a pair of dual-socket dual-core Opteron boxes; the
// Marcel scheduler exploits this hierarchy. We describe a machine as
// sockets × cores and derive neighbour relations from it so that the runtime
// can prefer offloading PIO copies to a core on the same socket (cheaper
// signal) before falling back to a remote socket.
//
// This is the *intra-node* half of the topology story; the inter-node
// network (meshes, tori, fat-trees and the routes across them) lives in
// topo/topology.hpp. Keeping both under src/topo/ makes it one subsystem
// with one source of truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rails {

struct MachineTopology {
  std::uint32_t sockets = 2;
  std::uint32_t cores_per_socket = 2;

  std::uint32_t core_count() const { return sockets * cores_per_socket; }
  std::uint32_t socket_of(CoreId core) const { return core / cores_per_socket; }

  bool same_socket(CoreId a, CoreId b) const { return socket_of(a) == socket_of(b); }

  /// Cores ordered by signalling cost from `from`: same socket first (skipping
  /// `from` itself), then remote sockets.
  std::vector<CoreId> neighbours_by_distance(CoreId from) const;

  /// The paper's evaluation machine: dual-socket, dual-core Opteron.
  static MachineTopology opteron_2x2() { return MachineTopology{2, 2}; }
  /// A T2K-style 16-core node (4 sockets of quad-core).
  static MachineTopology t2k_4x4() { return MachineTopology{4, 4}; }

  std::string describe() const;
};

}  // namespace rails
