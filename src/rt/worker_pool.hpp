// Worker pool with per-worker tasklet queues (Marcel analogue).
//
// The pool mirrors what the engine needs from Marcel:
//  * submit work to a *specific* core ("idle cores are signaled that some
//    requests need to be sent", §III-D) with a measurable signalling cost;
//  * tasklet priority — a worker drains its tasklet queue before taking
//    shared work;
//  * idle tracking, so a strategy can ask how many cores are available for
//    offloaded PIO submissions.
//
// Following CP.42, idle workers block on a condition variable (no spinning);
// the signalling cost measured by calibrate_signal_cost() therefore includes
// a real wakeup, which is exactly the TO the paper measures at 3–6 µs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "rt/tasklet.hpp"
#include "telemetry/metrics.hpp"

namespace rails::rt {

class WorkerPool {
 public:
  explicit WorkerPool(unsigned worker_count);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues onto a specific worker and wakes it.
  void submit_to(unsigned worker, Tasklet tasklet);

  /// Enqueues onto the least-loaded worker.
  void submit(Tasklet tasklet);

  /// Number of workers currently parked (no queued work, waiting).
  unsigned idle_count() const;

  /// Lowest-indexed idle worker, or worker_count() when none is idle.
  unsigned pick_idle() const;

  /// Blocks until every queued tasklet has run and all workers are parked.
  void drain();

  /// Measures the host's real strategy-to-remote-core signalling cost: the
  /// median round trip of submit_to(worker, no-op) / completion-flag wait,
  /// halved. This is the empirical TO of §III-D.
  double calibrate_signal_cost_us(unsigned round_trips = 64);

  std::uint64_t executed() const { return executed_.load(std::memory_order_relaxed); }

  /// Attaches a metrics registry (nullptr detaches): "rt.signals" /
  /// "rt.executed" counters and an "rt.queue_depth_hwm" high-water gauge.
  /// Must be called while no tasklets are queued or executing — the handles
  /// are read from worker threads without further synchronisation.
  void set_metrics(telemetry::MetricsRegistry* registry);

 private:
  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Tasklet> tasklets;  ///< TaskPriority::kTasklet
    std::deque<Tasklet> normal;    ///< TaskPriority::kNormal
    std::atomic<bool> idle{true};
    std::thread thread;
  };

  void run_worker(unsigned index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> pending_{0};

  telemetry::Counter* m_signals_ = nullptr;
  telemetry::Counter* m_executed_ = nullptr;
  telemetry::Gauge* m_queue_hwm_ = nullptr;
};

}  // namespace rails::rt
