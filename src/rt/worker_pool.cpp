#include "rt/worker_pool.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace rails::rt {

WorkerPool::WorkerPool(unsigned worker_count) {
  RAILS_CHECK(worker_count >= 1);
  workers_.reserve(worker_count);
  for (unsigned i = 0; i < worker_count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (unsigned i = 0; i < worker_count; ++i) {
    workers_[i]->thread = std::thread([this, i] { run_worker(i); });
  }
}

WorkerPool::~WorkerPool() {
  stopping_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void WorkerPool::submit_to(unsigned worker, Tasklet tasklet) {
  RAILS_CHECK(worker < workers_.size());
  RAILS_CHECK(tasklet.fn != nullptr);
  Worker& w = *workers_[worker];
  pending_.fetch_add(1, std::memory_order_relaxed);
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(w.mutex);
    if (tasklet.priority == TaskPriority::kTasklet) {
      w.tasklets.push_back(std::move(tasklet));
    } else {
      w.normal.push_back(std::move(tasklet));
    }
    depth = w.tasklets.size() + w.normal.size();
  }
  w.cv.notify_one();
  if (m_signals_ != nullptr) {
    m_signals_->inc();
    m_queue_hwm_->update_max(depth);
  }
}

void WorkerPool::submit(Tasklet tasklet) {
  // Prefer a parked worker; otherwise the one with the shortest queue.
  const unsigned idle = pick_idle();
  if (idle < workers_.size()) {
    submit_to(idle, std::move(tasklet));
    return;
  }
  unsigned best = 0;
  std::size_t best_depth = ~std::size_t{0};
  for (unsigned i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    std::lock_guard<std::mutex> lock(w.mutex);
    const std::size_t depth = w.tasklets.size() + w.normal.size();
    if (depth < best_depth) {
      best_depth = depth;
      best = i;
    }
  }
  submit_to(best, std::move(tasklet));
}

unsigned WorkerPool::idle_count() const {
  unsigned n = 0;
  for (const auto& w : workers_) {
    if (w->idle.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

unsigned WorkerPool::pick_idle() const {
  for (unsigned i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->idle.load(std::memory_order_acquire)) return i;
  }
  return worker_count();
}

void WorkerPool::drain() {
  while (pending_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void WorkerPool::run_worker(unsigned index) {
  Worker& w = *workers_[index];
  std::unique_lock<std::mutex> lock(w.mutex);
  while (true) {
    // Tasklets first — they carry I/O progression and offloaded PIO
    // submissions and must not sit behind bulk work.
    if (!w.tasklets.empty() || !w.normal.empty()) {
      auto& queue = !w.tasklets.empty() ? w.tasklets : w.normal;
      Tasklet t = std::move(queue.front());
      queue.pop_front();
      w.idle.store(false, std::memory_order_release);
      lock.unlock();
      t.fn();
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (m_executed_ != nullptr) m_executed_->inc();
      pending_.fetch_sub(1, std::memory_order_release);
      lock.lock();
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    w.idle.store(true, std::memory_order_release);
    w.cv.wait(lock, [&] {
      return stopping_.load(std::memory_order_acquire) || !w.tasklets.empty() ||
             !w.normal.empty();
    });
  }
}

void WorkerPool::set_metrics(telemetry::MetricsRegistry* registry) {
  RAILS_CHECK_MSG(pending_.load(std::memory_order_acquire) == 0,
                  "attach/detach metrics while the pool is quiescent");
  if (registry == nullptr) {
    m_signals_ = nullptr;
    m_executed_ = nullptr;
    m_queue_hwm_ = nullptr;
    return;
  }
  m_signals_ = registry->counter("rt.signals");
  m_executed_ = registry->counter("rt.executed");
  m_queue_hwm_ = registry->gauge("rt.queue_depth_hwm");
}

double WorkerPool::calibrate_signal_cost_us(unsigned round_trips) {
  RAILS_CHECK(round_trips >= 1);
  RAILS_CHECK(worker_count() >= 1);
  SampleSet samples;
  for (unsigned i = 0; i < round_trips; ++i) {
    std::atomic<bool> done{false};
    const auto start = std::chrono::steady_clock::now();
    submit_to(0, Tasklet([&done] { done.store(true, std::memory_order_release); },
                         TaskPriority::kTasklet));
    while (!done.load(std::memory_order_acquire)) {
      // Busy-wait: the measurement targets the signalling latency itself.
    }
    const auto end = std::chrono::steady_clock::now();
    samples.add(std::chrono::duration<double, std::micro>(end - start).count() / 2.0);
  }
  return samples.median();
}

}  // namespace rails::rt
