// Tasklets: high-priority deferred work items (Marcel analogue, §III-A).
//
// "Tasklets have been introduced in operating systems to defer treatments
// that cannot be performed within an interrupt handler. Tasklets have a very
// high priority, meaning that they are executed as soon as the scheduler
// reaches a point where it is safe to let them run."
//
// In this runtime a tasklet is a small callable with a priority class; the
// worker pool always drains pending tasklets before ordinary work items.
#pragma once

#include <functional>
#include <utility>

namespace rails::rt {

enum class TaskPriority : int {
  kTasklet = 0,  ///< drained before anything else (I/O detection, PIO submits)
  kNormal = 1,   ///< ordinary deferred work
};

struct Tasklet {
  std::function<void()> fn;
  TaskPriority priority = TaskPriority::kNormal;

  Tasklet() = default;
  Tasklet(std::function<void()> f, TaskPriority p) : fn(std::move(f)), priority(p) {}
};

}  // namespace rails::rt
