// Always-on flight recorder: a black box for the communication engine.
//
// The Tracer is an opt-in debugging aid; the FlightRecorder is the opposite
// contract — cheap enough to leave on in every run, so that when something
// goes wrong (rail failover, quarantine, trust demotion, CHECK failure)
// there is always a recent-history window to autopsy. It is a bounded
// lock-free ring of fixed-size structured records: producers (the scheduler
// core, offload workers, fault handlers) stamp records with a single
// fetch_add ticket plus per-field relaxed atomic stores guarded by a
// per-slot seqlock, so no producer ever blocks and a torn snapshot read is
// detected and discarded rather than returned.
//
// On a trigger event the recorder dumps a *postmortem bundle* — one JSON
// file holding the retained record window, a metrics-registry snapshot, and
// an engine-supplied state object (per-rail trust/scale, config) — which
// `railsctl postmortem <file>` renders for humans. Bundle writes are rate
// limited (count + minimum virtual-time spacing) so a flapping rail cannot
// fill a disk, and a CHECK-failure hook dumps one final bundle on the way
// to abort().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rails::telemetry {
class MetricsRegistry;
}

namespace rails::trace {

/// What happened. Data-plane kinds mirror the Tracer's EventKind; the rest
/// are control-plane transitions that only the flight recorder sees.
enum class FlightKind : std::uint8_t {
  kSubmit,
  kEagerEmit,
  kChunkPosted,
  kSendComplete,
  kRecvComplete,
  kOffloadSignal,
  kOffloadPush,      ///< offload worker copied + pushed a chunk to its ring
  kTxError,          ///< completion-queue error on a posted segment
  kChunkTimeout,     ///< chunk exceeded predicted completion + slack
  kFailover,         ///< byte range re-split onto surviving rails
  kQuarantine,       ///< rail removed from service
  kReprobe,          ///< quarantined rail probed (a: 1 = recovered)
  kTrustDemotion,    ///< recalibration demoted a rail's trust (a: new state)
  kTrustPromotion,   ///< recalibration promoted a rail's trust (a: new state)
  kScaleCorrection,  ///< profile scale correction (a: scale x1000)
  kResample,         ///< background re-sample installed a profile (a: scale x1000)
  kTrigger,          ///< a postmortem bundle was written
  kCorruptDetected,  ///< wire checksum mismatch on receive (a: seq)
  kRetransmit,       ///< sequenced segment retransmitted (a: seq, b: count)
  kRetryExhausted,   ///< seq ran out of retransmit budget (a: seq, b: count)
  kDupSuppressed,    ///< sequence window swallowed a duplicate (a: seq)
  kSloAlert,         ///< SLO alert transition (a: 1 firing / 0 cleared,
                     ///  b: fast burn/p99 x1000)
};

const char* to_string(FlightKind kind);

/// One fixed-size flight record. `a` and `b` are kind-specific operands
/// (bytes, attempt counts, scaled gauges) so the record stays POD.
struct FlightRecord {
  SimTime time = 0;
  FlightKind kind = FlightKind::kSubmit;
  NodeId node = 0;
  RailId rail = 0;
  std::uint64_t msg_id = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two; the ring keeps the most
  /// recent `capacity` records.
  explicit FlightRecorder(std::size_t capacity = 1024);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Lock-free, wait-free on the fast path; safe from any thread.
  void record(const FlightRecord& r);

  std::size_t capacity() const { return mask_ + 1; }
  /// Records ever written (monotonic).
  std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Records evicted by ring wrap-around (telemetry satellite: surfaced as
  /// the engine.flight_evictions gauge so bounded-buffer loss is visible).
  std::uint64_t evictions() const {
    const std::uint64_t n = total_recorded();
    return n > capacity() ? n - capacity() : 0;
  }
  /// Latest record timestamp seen (used to stamp check-failure bundles).
  SimTime last_time() const { return last_time_.load(std::memory_order_acquire); }

  /// Best-effort consistent copy of the retained window, oldest first.
  /// Records being overwritten concurrently are skipped, never torn.
  std::vector<FlightRecord> snapshot() const;

  // -- postmortem bundles ----------------------------------------------------

  /// Bundles are written to `<dir>/<prefix>-<seq>-<reason>.json`.
  void set_output(std::string dir, std::string prefix = "postmortem");
  /// Metrics snapshot embedded in each bundle (may be nullptr).
  void set_metrics(const telemetry::MetricsRegistry* registry);
  /// Engine-supplied state — the writer must emit ONE valid JSON object
  /// (per-rail trust/scale, failover config, ...).
  using StateWriter = std::function<void(std::ostream&)>;
  void set_state_writer(StateWriter writer);
  /// Health-plane time series embedded under the bundle's "timeseries" key
  /// (docs/OBSERVABILITY.md): the writer must emit ONE valid JSON value —
  /// typically HealthSampler::write_json — so an SLO postmortem carries the
  /// offending series, not just the moment of the page. Unset = the key is
  /// omitted, keeping pre-health-plane bundles byte-identical.
  void set_series_writer(StateWriter writer);
  /// At most `max_bundles` bundles per process, spaced at least
  /// `min_interval` of virtual time apart (a flapping rail must not fill a
  /// disk). Defaults: 8 bundles, 0 spacing.
  void set_rate_limit(unsigned max_bundles, SimDuration min_interval);

  /// Dumps a bundle (unless rate-limited or no output dir is configured).
  /// Returns the bundle path, or "" when nothing was written. Also appends
  /// a kTrigger record to the ring either way.
  std::string trigger(const char* reason, const std::string& detail, SimTime now);

  unsigned bundles_written() const { return bundles_written_; }
  const std::string& last_bundle_path() const { return last_bundle_path_; }

  /// Serialises a bundle to `os` (the format `render_postmortem` parses).
  void write_bundle(std::ostream& os, const char* reason,
                    const std::string& detail, SimTime now) const;

  /// Arms the RAILS_CHECK failure hook: the next CHECK death writes one
  /// bundle (reason "check-failure") through this recorder before abort().
  /// Only one recorder can be armed at a time; destruction disarms.
  void install_check_hook();
  static void uninstall_check_hook();

  /// Parses a bundle produced by write_bundle and renders it for humans.
  /// Returns false (with a diagnostic on `os`) when `is` is not a bundle.
  static bool render_postmortem(std::istream& is, std::ostream& os);

 private:
  struct Slot;

  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<SimTime> last_time_{0};

  mutable std::mutex bundle_mu_;
  std::string dir_;
  std::string prefix_ = "postmortem";
  const telemetry::MetricsRegistry* metrics_ = nullptr;
  StateWriter state_writer_;
  StateWriter series_writer_;
  unsigned max_bundles_ = 8;
  SimDuration min_interval_ = 0;
  unsigned bundles_written_ = 0;
  SimTime last_bundle_time_ = kSimTimeNever;
  std::string last_bundle_path_;
};

}  // namespace rails::trace
