#include "trace/tracer.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"

namespace rails::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSubmit: return "submit";
    case EventKind::kRecvPosted: return "recv-posted";
    case EventKind::kEagerEmit: return "eager-emit";
    case EventKind::kOffloadSignal: return "offload-signal";
    case EventKind::kRtsSent: return "rts";
    case EventKind::kCtsSent: return "cts";
    case EventKind::kChunkPosted: return "chunk";
    case EventKind::kSendComplete: return "send-complete";
    case EventKind::kRecvComplete: return "recv-complete";
  }
  return "?";
}

void Tracer::record(const TraceEvent& event) { events_.push_back(event); }

std::vector<TraceEvent> Tracer::of_kind(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::optional<MessageTimeline> Tracer::message(NodeId node, std::uint64_t msg_id) const {
  MessageTimeline tl;
  tl.msg_id = msg_id;
  bool seen = false;
  for (const auto& e : events_) {
    if (e.node != node || e.msg_id != msg_id) continue;
    seen = true;
    switch (e.kind) {
      case EventKind::kSubmit:
        tl.submit = e.time;
        tl.bytes = e.bytes;
        break;
      case EventKind::kEagerEmit:
      case EventKind::kChunkPosted:
        if (tl.first_emission < 0) tl.first_emission = e.time;
        ++tl.chunks;
        break;
      case EventKind::kOffloadSignal:
        ++tl.offloaded;
        break;
      case EventKind::kSendComplete:
        tl.complete = e.time;
        break;
      default:
        break;
    }
  }
  if (!seen) return std::nullopt;
  return tl;
}

std::vector<std::uint64_t> Tracer::bytes_per_rail() const {
  std::vector<std::uint64_t> out;
  for (const auto& e : events_) {
    if (e.kind != EventKind::kEagerEmit && e.kind != EventKind::kChunkPosted) continue;
    if (e.rail >= out.size()) out.resize(e.rail + 1, 0);
    out[e.rail] += e.bytes;
  }
  return out;
}

std::vector<SimDuration> Tracer::rail_busy_time() const {
  std::vector<SimDuration> out;
  for (const auto& e : events_) {
    if (e.kind != EventKind::kEagerEmit && e.kind != EventKind::kChunkPosted) continue;
    if (e.rail >= out.size()) out.resize(e.rail + 1, 0);
    out[e.rail] += std::max<SimDuration>(0, e.nic_end - e.time);
  }
  return out;
}

void Tracer::dump_csv(std::ostream& os) const {
  os << "time_ns,node,kind,msg_id,tag,rail,core,bytes,nic_end_ns\n";
  for (const auto& e : events_) {
    os << e.time << ',' << e.node << ',' << to_string(e.kind) << ',' << e.msg_id << ','
       << e.tag << ',' << e.rail << ',' << e.core << ',' << e.bytes << ',' << e.nic_end
       << '\n';
  }
}

void Tracer::render_gantt(std::ostream& os, unsigned width) const {
  RAILS_CHECK(width >= 8);
  SimTime begin = kSimTimeNever;
  SimTime end = 0;
  std::size_t rails = 0;
  for (const auto& e : events_) {
    if (e.kind != EventKind::kEagerEmit && e.kind != EventKind::kChunkPosted) continue;
    begin = std::min(begin, e.time);
    end = std::max(end, e.nic_end);
    rails = std::max<std::size_t>(rails, e.rail + 1);
  }
  if (rails == 0 || end <= begin) {
    os << "(no NIC activity recorded)\n";
    return;
  }
  const double scale = static_cast<double>(width) / static_cast<double>(end - begin);
  for (std::size_t r = 0; r < rails; ++r) {
    std::string lane(width, '.');
    for (const auto& e : events_) {
      if (e.rail != r) continue;
      if (e.kind != EventKind::kEagerEmit && e.kind != EventKind::kChunkPosted) continue;
      const auto from = static_cast<std::size_t>(
          static_cast<double>(e.time - begin) * scale);
      auto to = static_cast<std::size_t>(static_cast<double>(e.nic_end - begin) * scale);
      to = std::min<std::size_t>(std::max(to, from + 1), width);
      const char mark = e.kind == EventKind::kChunkPosted ? '#' : '=';
      for (std::size_t c = from; c < to; ++c) lane[c] = mark;
    }
    os << "rail " << r << " |" << lane << "|\n";
  }
  os << "        " << to_usec(begin) << " us";
  os << std::string(width > 24 ? width - 24 : 1, ' ');
  os << to_usec(end) << " us\n";
}

}  // namespace rails::trace
