#include "trace/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace rails::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSubmit: return "submit";
    case EventKind::kRecvPosted: return "recv-posted";
    case EventKind::kEagerEmit: return "eager-emit";
    case EventKind::kOffloadSignal: return "offload-signal";
    case EventKind::kRtsSent: return "rts";
    case EventKind::kCtsSent: return "cts";
    case EventKind::kChunkPosted: return "chunk";
    case EventKind::kSendComplete: return "send-complete";
    case EventKind::kRecvComplete: return "recv-complete";
    case EventKind::kFailover: return "failover";
  }
  return "?";
}

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(os) {
  os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

void ChromeTraceSink::emit(const char* record) {
  RAILS_CHECK_MSG(!closed_, "emit() on a closed ChromeTraceSink");
  if (!first_) os_ << ',';
  first_ = false;
  os_ << record;
}

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  os_ << "]}";
}

void Tracer::record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_events_ != 0 && events_.size() == max_events_) {
    events_[ring_pos_] = event;
    ring_pos_ = (ring_pos_ + 1) % max_events_;
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  ring_pos_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for_each([&](const TraceEvent& e) { out.push_back(e); });
  return out;
}

std::vector<TraceEvent> Tracer::of_kind(EventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for_each([&](const TraceEvent& e) {
    if (e.kind == kind) out.push_back(e);
  });
  return out;
}

std::optional<MessageTimeline> Tracer::message(NodeId node, std::uint64_t msg_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  MessageTimeline tl;
  tl.msg_id = msg_id;
  bool seen = false;
  for_each([&](const TraceEvent& e) {
    if (e.node != node || e.msg_id != msg_id) return;
    seen = true;
    switch (e.kind) {
      case EventKind::kSubmit:
        tl.submit = e.time;
        tl.bytes = e.bytes;
        break;
      case EventKind::kEagerEmit:
      case EventKind::kChunkPosted:
        if (tl.first_emission < 0 || e.time < tl.first_emission) {
          tl.first_emission = e.time;
        }
        ++tl.chunks;
        break;
      case EventKind::kOffloadSignal:
        ++tl.offloaded;
        break;
      case EventKind::kSendComplete:
        tl.complete = e.time;
        break;
      default:
        break;
    }
  });
  if (!seen) return std::nullopt;
  return tl;
}

std::vector<std::uint64_t> Tracer::bytes_per_rail() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  for_each([&](const TraceEvent& e) {
    if (e.kind != EventKind::kEagerEmit && e.kind != EventKind::kChunkPosted) return;
    if (e.rail >= out.size()) out.resize(e.rail + 1, 0);
    out[e.rail] += e.bytes;
  });
  return out;
}

std::vector<SimDuration> Tracer::rail_busy_time() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SimDuration> out;
  for_each([&](const TraceEvent& e) {
    if (e.kind != EventKind::kEagerEmit && e.kind != EventKind::kChunkPosted) return;
    if (e.rail >= out.size()) out.resize(e.rail + 1, 0);
    out[e.rail] += std::max<SimDuration>(0, e.nic_end - e.time);
  });
  return out;
}

void Tracer::dump_csv(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "time_ns,node,kind,msg_id,tag,rail,core,bytes,nic_end_ns,class\n";
  for_each([&](const TraceEvent& e) {
    os << e.time << ',' << e.node << ',' << to_string(e.kind) << ',' << e.msg_id << ','
       << e.tag << ',' << e.rail << ',' << e.core << ',' << e.bytes << ',' << e.nic_end
       << ',' << e.cls << '\n';
  });
}

void Tracer::dump_chrome_trace(std::ostream& os) const {
  ChromeTraceSink sink(os);
  dump_chrome_trace_events(sink);
  sink.close();
}

void Tracer::dump_chrome_trace_events(ChromeTraceSink& sink) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Chrome-trace JSON records: timestamps/durations in microseconds.
  // pid = node, tid = rail, so Perfetto renders one lane per (node, rail) —
  // the same layout as render_gantt, but zoomable and with args attached.
  char buf[256];

  // Name the tracks: one process record per node, one thread record per
  // (node, rail) pair seen in the trace.
  std::vector<NodeId> nodes;
  std::vector<std::pair<NodeId, RailId>> tracks;
  for_each([&](const TraceEvent& e) {
    if (std::find(nodes.begin(), nodes.end(), e.node) == nodes.end()) {
      nodes.push_back(e.node);
    }
    const std::pair<NodeId, RailId> key{e.node, e.rail};
    if (std::find(tracks.begin(), tracks.end(), key) == tracks.end()) {
      tracks.push_back(key);
    }
  });
  for (const NodeId node : nodes) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"node %u\"}}",
                  node, node);
    sink.emit(buf);
  }
  for (const auto& [node, rail] : tracks) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                  "\"args\":{\"name\":\"rail %u\"}}",
                  node, rail, rail);
    sink.emit(buf);
  }

  for_each([&](const TraceEvent& e) {
    const double ts = static_cast<double>(e.time) / 1e3;
    if (e.kind == EventKind::kEagerEmit || e.kind == EventKind::kChunkPosted) {
      const double dur =
          static_cast<double>(std::max<SimDuration>(0, e.nic_end - e.time)) / 1e3;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":%u,\"tid\":%u,\"args\":{\"msg_id\":%llu,\"bytes\":%zu,"
                    "\"core\":%u,\"class\":%u}}",
                    to_string(e.kind), ts, dur, e.node, e.rail,
                    static_cast<unsigned long long>(e.msg_id), e.bytes, e.core, e.cls);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                    "\"pid\":%u,\"tid\":%u,\"args\":{\"msg_id\":%llu,\"bytes\":%zu,"
                    "\"class\":%u}}",
                    to_string(e.kind), ts, e.node, e.rail,
                    static_cast<unsigned long long>(e.msg_id), e.bytes, e.cls);
    }
    sink.emit(buf);
  });
}

void Tracer::render_gantt(std::ostream& os, unsigned width) const {
  RAILS_CHECK(width >= 8);
  std::lock_guard<std::mutex> lock(mu_);
  SimTime begin = kSimTimeNever;
  SimTime end = 0;
  std::size_t rails = 0;
  for_each([&](const TraceEvent& e) {
    if (e.kind != EventKind::kEagerEmit && e.kind != EventKind::kChunkPosted) return;
    begin = std::min(begin, e.time);
    end = std::max(end, e.nic_end);
    rails = std::max<std::size_t>(rails, e.rail + 1);
  });
  if (rails == 0 || end <= begin) {
    os << "(no NIC activity recorded)\n";
    return;
  }
  const double scale = static_cast<double>(width) / static_cast<double>(end - begin);
  for (std::size_t r = 0; r < rails; ++r) {
    std::string lane(width, '.');
    for_each([&](const TraceEvent& e) {
      if (e.rail != r) return;
      if (e.kind != EventKind::kEagerEmit && e.kind != EventKind::kChunkPosted) return;
      const auto from = static_cast<std::size_t>(
          static_cast<double>(e.time - begin) * scale);
      auto to = static_cast<std::size_t>(static_cast<double>(e.nic_end - begin) * scale);
      to = std::min<std::size_t>(std::max(to, from + 1), width);
      const char mark = e.kind == EventKind::kChunkPosted ? '#' : '=';
      for (std::size_t c = from; c < to; ++c) lane[c] = mark;
    });
    os << "rail " << r << " |" << lane << "|\n";
  }
  os << "        " << to_usec(begin) << " us";
  os << std::string(width > 24 ? width - 24 : 1, ' ');
  os << to_usec(end) << " us\n";
}

}  // namespace rails::trace
