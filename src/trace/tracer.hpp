// Execution tracing for the communication engine.
//
// NewMadeleine ships with trace-based visualisation of its scheduling
// decisions; this is the equivalent observability layer. When a Tracer is
// attached to an Engine, every scheduling-relevant event (submission,
// emission, chunk post, completion) is recorded with its virtual timestamp,
// rail, core and byte count. Traces are queryable in-process (per-message
// timelines, per-rail utilisation) and exportable as CSV or as Chrome-trace
// JSON (chrome://tracing / Perfetto).
//
// Capacity: an unbounded tracer keeps every event; constructing with
// Tracer{max_events} bounds memory with a ring buffer — once full, each new
// event overwrites the oldest and dropped() counts the evictions, so long
// benchmark runs keep the most recent window instead of exhausting memory.
//
// Thread safety: record() and every query are serialised on an internal
// mutex, so offload workers may emit concurrently with the scheduler core.
// The lock is uncontended in the single-threaded DES configurations and a
// handful of nanoseconds when it is not; the flight recorder (see
// flight_recorder.hpp) is the lock-free path for truly hot producers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rails::trace {

enum class EventKind : std::uint8_t {
  kSubmit,        ///< application called isend
  kRecvPosted,    ///< application called irecv
  kEagerEmit,     ///< eager segment handed to a NIC
  kOffloadSignal, ///< emission routed to a remote core (TO charged)
  kRtsSent,       ///< rendezvous request out
  kCtsSent,       ///< rendezvous acknowledged by the receiver
  kChunkPosted,   ///< one DMA chunk handed to a NIC
  kSendComplete,  ///< send request finished
  kRecvComplete,  ///< receive request finished
  kFailover,      ///< chunk re-split onto surviving rails after an error/timeout
};

const char* to_string(EventKind kind);

struct TraceEvent {
  SimTime time = 0;
  NodeId node = 0;
  EventKind kind = EventKind::kSubmit;
  std::uint64_t msg_id = 0;
  Tag tag = 0;
  RailId rail = 0;
  CoreId core = 0;
  std::size_t bytes = 0;
  /// For emissions/chunks: when the transfer is predicted to leave the NIC.
  SimTime nic_end = 0;
  /// QoS traffic class of the owning send (docs/QOS.md); 0 when QoS is off.
  std::uint32_t cls = 0;
};

/// Per-message summary reconstructed from a trace.
struct MessageTimeline {
  std::uint64_t msg_id = 0;
  SimTime submit = -1;
  SimTime first_emission = -1;
  SimTime complete = -1;
  unsigned chunks = 0;
  unsigned offloaded = 0;
  std::size_t bytes = 0;

  /// Submission-to-first-emission delay. nullopt when either endpoint was
  /// not recorded (message still queued, or its events were evicted from a
  /// bounded tracer) — an incomplete message is NOT an instant one.
  std::optional<SimDuration> queueing_delay() const {
    if (first_emission < 0 || submit < 0) return std::nullopt;
    return first_emission - submit;
  }
  /// Submission-to-completion latency; nullopt when incomplete (see above).
  std::optional<SimDuration> total_latency() const {
    if (complete < 0 || submit < 0) return std::nullopt;
    return complete - submit;
  }
};

/// Incremental Chrome-trace JSON writer. Opens the trace envelope on
/// construction; each emit() appends one complete record object (no
/// trailing comma — the sink manages separators); close() writes the
/// closing brackets. Lets several producers (raw tracer events, span
/// overlays) share a single valid trace file.
class ChromeTraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& os);
  ~ChromeTraceSink() { close(); }
  ChromeTraceSink(const ChromeTraceSink&) = delete;
  ChromeTraceSink& operator=(const ChromeTraceSink&) = delete;

  /// Appends one JSON record object (e.g. `{"name":...,"ph":"X",...}`).
  void emit(const char* record);
  /// Idempotent; also invoked by the destructor.
  void close();

 private:
  std::ostream& os_;
  bool first_ = true;
  bool closed_ = false;
};

class Tracer {
 public:
  Tracer() = default;
  /// Bounded tracer: keeps the most recent `max_events` events in a ring.
  explicit Tracer(std::size_t max_events) : max_events_(max_events) {}

  void record(const TraceEvent& event);

  bool empty() const { return size() == 0; }
  std::size_t size() const;
  /// Ring capacity; 0 means unbounded.
  std::size_t capacity() const { return max_events_; }
  /// Events evicted from a bounded tracer since the last clear().
  std::uint64_t dropped() const;
  /// Copy of the retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Events of one kind, oldest first.
  std::vector<TraceEvent> of_kind(EventKind kind) const;

  /// Reconstructs the timeline of one sender-side message.
  std::optional<MessageTimeline> message(NodeId node, std::uint64_t msg_id) const;

  /// Payload bytes handed to each rail (emissions + chunks), highest rail
  /// index observed defines the vector length.
  std::vector<std::uint64_t> bytes_per_rail() const;

  /// Busy time per rail within [begin, end], from emission nic_end spans.
  std::vector<SimDuration> rail_busy_time() const;

  /// CSV export: one event per line with a header row, oldest first.
  void dump_csv(std::ostream& os) const;

  /// Chrome-trace (chrome://tracing / Perfetto) JSON export. NIC activity
  /// (eager emissions, DMA chunks) becomes complete "X" spans on a
  /// per-node/per-rail track; everything else becomes instant events.
  /// Timestamps are virtual microseconds.
  void dump_chrome_trace(std::ostream& os) const;

  /// Same records, but onto a caller-owned sink so additional record
  /// streams (span overlays, flow arrows) can share the trace file.
  void dump_chrome_trace_events(ChromeTraceSink& sink) const;

  /// ASCII per-rail Gantt chart of NIC activity, `width` columns wide.
  void render_gantt(std::ostream& os, unsigned width = 72) const;

 private:
  /// Invokes `fn` on every retained event, oldest first. Caller holds mu_.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (dropped_ == 0) {
      for (const auto& e : events_) fn(e);
      return;
    }
    const std::size_t n = events_.size();
    for (std::size_t i = 0; i < n; ++i) fn(events_[(ring_pos_ + i) % n]);
  }

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t max_events_ = 0;  ///< 0 = unbounded
  std::size_t ring_pos_ = 0;    ///< next overwrite slot once full
  std::uint64_t dropped_ = 0;
};

}  // namespace rails::trace
