// Execution tracing for the communication engine.
//
// NewMadeleine ships with trace-based visualisation of its scheduling
// decisions; this is the equivalent observability layer. When a Tracer is
// attached to an Engine, every scheduling-relevant event (submission,
// emission, chunk post, completion) is recorded with its virtual timestamp,
// rail, core and byte count. Traces are queryable in-process (per-message
// timelines, per-rail utilisation) and exportable as CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rails::trace {

enum class EventKind : std::uint8_t {
  kSubmit,        ///< application called isend
  kRecvPosted,    ///< application called irecv
  kEagerEmit,     ///< eager segment handed to a NIC
  kOffloadSignal, ///< emission routed to a remote core (TO charged)
  kRtsSent,       ///< rendezvous request out
  kCtsSent,       ///< rendezvous acknowledged by the receiver
  kChunkPosted,   ///< one DMA chunk handed to a NIC
  kSendComplete,  ///< send request finished
  kRecvComplete,  ///< receive request finished
};

const char* to_string(EventKind kind);

struct TraceEvent {
  SimTime time = 0;
  NodeId node = 0;
  EventKind kind = EventKind::kSubmit;
  std::uint64_t msg_id = 0;
  Tag tag = 0;
  RailId rail = 0;
  CoreId core = 0;
  std::size_t bytes = 0;
  /// For emissions/chunks: when the transfer is predicted to leave the NIC.
  SimTime nic_end = 0;
};

/// Per-message summary reconstructed from a trace.
struct MessageTimeline {
  std::uint64_t msg_id = 0;
  SimTime submit = -1;
  SimTime first_emission = -1;
  SimTime complete = -1;
  unsigned chunks = 0;
  unsigned offloaded = 0;
  std::size_t bytes = 0;

  SimDuration queueing_delay() const {
    return first_emission >= 0 && submit >= 0 ? first_emission - submit : 0;
  }
  SimDuration total_latency() const {
    return complete >= 0 && submit >= 0 ? complete - submit : 0;
  }
};

class Tracer {
 public:
  void record(const TraceEvent& event);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one kind, in record order.
  std::vector<TraceEvent> of_kind(EventKind kind) const;

  /// Reconstructs the timeline of one sender-side message.
  std::optional<MessageTimeline> message(NodeId node, std::uint64_t msg_id) const;

  /// Payload bytes handed to each rail (emissions + chunks), highest rail
  /// index observed defines the vector length.
  std::vector<std::uint64_t> bytes_per_rail() const;

  /// Busy time per rail within [begin, end], from emission nic_end spans.
  std::vector<SimDuration> rail_busy_time() const;

  /// CSV export: one event per line with a header row.
  void dump_csv(std::ostream& os) const;

  /// ASCII per-rail Gantt chart of NIC activity, `width` columns wide.
  void render_gantt(std::ostream& os, unsigned width = 72) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace rails::trace
