#include "trace/spans.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

namespace rails::trace {

namespace {

// Only sender-side kinds participate in span reconstruction. Receiver-side
// records (kRecvPosted, kRecvComplete, and kCtsSent — which is logged on the
// RECEIVER node but carries the sender's msg_id) must not leak into a send
// span keyed (node, msg_id).
bool send_side(EventKind kind) {
  switch (kind) {
    case EventKind::kSubmit:
    case EventKind::kRtsSent:
    case EventKind::kOffloadSignal:
    case EventKind::kEagerEmit:
    case EventKind::kChunkPosted:
    case EventKind::kSendComplete:
    case EventKind::kFailover:
      return true;
    default:
      return false;
  }
}

struct Builder {
  MessageSpans m;
  // Offload signal awaiting its emission, per rail. The engine logs the
  // signal at decision time and the emission at PIO start; matching them
  // recovers the measured TO.
  std::map<RailId, SimTime> pending_signal;
};

// Walks the six layers as successive deltas of a monotone cursor clamped to
// [submit, finish]: each delta is non-negative and the deltas tile the
// interval exactly, so sum() == total even for odd timelines (e.g. eager
// sends whose host-side completion precedes the predicted wire departure).
void attribute(MessageSpans& m) {
  const auto& chunks = m.chunks;
  SimTime first_activity = m.finish;
  SimTime first_launch = m.finish;
  if (m.rts >= 0) first_activity = std::min(first_activity, m.rts);
  for (const auto& c : chunks) {
    const SimTime launch = c.offloaded ? c.signal_time : c.start;
    first_activity = std::min(first_activity, launch);
    first_launch = std::min(first_launch, launch);
  }

  // Critical chunk: latest predicted wire departure (ties -> latest start,
  // i.e. the chunk launched last).
  std::size_t crit = 0;
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    if (chunks[i].nic_end > chunks[crit].nic_end ||
        (chunks[i].nic_end == chunks[crit].nic_end &&
         chunks[i].start > chunks[crit].start)) {
      crit = i;
    }
  }
  const ChunkSpan& cc = chunks[crit];

  SimTime cursor = m.submit;
  auto advance = [&](SimTime point) -> SimDuration {
    const SimTime p = std::clamp(point, cursor, m.finish);
    const SimDuration d = p - cursor;
    cursor = p;
    return d;
  };

  CriticalPath& p = m.path;
  p.total = m.finish - m.submit;
  p.critical_rail = cc.rail;
  p.queueing = advance(first_activity);
  if (m.rendezvous) p.handshake = advance(first_launch);
  const SimTime crit_launch = cc.offloaded ? cc.signal_time : cc.start;
  p.stagger = advance(crit_launch);
  if (cc.offloaded) p.offload_sync = advance(cc.start);
  p.wire = advance(cc.nic_end);
  p.completion_sync = m.finish - cursor;

  if (chunks.size() >= 2) {
    SimTime lo = chunks[0].nic_end, hi = chunks[0].nic_end;
    for (const auto& c : chunks) {
      lo = std::min(lo, c.nic_end);
      hi = std::max(hi, c.nic_end);
    }
    m.finish_skew = hi - lo;
  }
}

}  // namespace

SpanAnalysis analyze_spans(std::span<const TraceEvent> events) {
  SpanAnalysis out;
  std::map<std::pair<NodeId, std::uint64_t>, std::size_t> index;
  std::vector<Builder> builders;

  for (const TraceEvent& e : events) {
    if (!send_side(e.kind)) continue;
    const std::pair<NodeId, std::uint64_t> key{e.node, e.msg_id};
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, builders.size()).first;
      builders.emplace_back();
      Builder& nb = builders.back();
      nb.m.node = e.node;
      nb.m.msg_id = e.msg_id;
      nb.m.tag = e.tag;
    }
    Builder& b = builders[it->second];
    MessageSpans& m = b.m;
    switch (e.kind) {
      case EventKind::kSubmit:
        m.submit = e.time;
        m.bytes = e.bytes;
        m.tag = e.tag;
        m.cls = e.cls;
        break;
      case EventKind::kRtsSent:
        m.rts = e.time;
        m.rendezvous = true;
        break;
      case EventKind::kOffloadSignal:
        ++m.offload_signals;
        b.pending_signal[e.rail] = e.time;
        break;
      case EventKind::kEagerEmit:
      case EventKind::kChunkPosted: {
        // The engine logs one event per pack-list piece; pieces of a single
        // emission share (rail, start, nic_end) and collapse into one span.
        if (!m.chunks.empty()) {
          ChunkSpan& last = m.chunks.back();
          if (last.rail == e.rail && last.start == e.time &&
              last.nic_end == e.nic_end) {
            last.bytes += e.bytes;
            break;
          }
        }
        if (m.cls == 0) m.cls = e.cls;  // head-evicted: recover from chunks
        ChunkSpan c;
        c.rail = e.rail;
        c.core = e.core;
        c.start = e.time;
        c.nic_end = e.nic_end;
        c.bytes = e.bytes;
        c.eager = e.kind == EventKind::kEagerEmit;
        const auto sig = b.pending_signal.find(e.rail);
        if (sig != b.pending_signal.end() && sig->second <= e.time) {
          c.offloaded = true;
          c.signal_time = sig->second;
          b.pending_signal.erase(sig);
        }
        m.chunks.push_back(c);
        break;
      }
      case EventKind::kSendComplete:
        m.finish = e.time;
        break;
      case EventKind::kFailover:
        ++m.failovers;
        break;
      default:
        break;
    }
  }

  for (Builder& b : builders) {
    MessageSpans& m = b.m;
    m.complete = m.submit >= 0 && m.finish >= 0;
    m.head_evicted = m.submit < 0;
    for (const auto& c : m.chunks) {
      if (c.offloaded) {
        m.measured_to.push_back(c.start - c.signal_time);
        out.to_samples.push_back(c.start - c.signal_time);
      }
    }
    if (m.complete && !m.chunks.empty()) {
      attribute(m);
      const auto accumulate = [](CriticalPath& t, const CriticalPath& p) {
        t.total += p.total;
        t.queueing += p.queueing;
        t.handshake += p.handshake;
        t.stagger += p.stagger;
        t.offload_sync += p.offload_sync;
        t.wire += p.wire;
        t.completion_sync += p.completion_sync;
      };
      accumulate(out.totals, m.path);
      auto ct = std::find_if(out.class_totals.begin(), out.class_totals.end(),
                             [&](const auto& c) { return c.cls == m.cls; });
      if (ct == out.class_totals.end()) {
        out.class_totals.push_back({m.cls, 0, {}});
        ct = std::prev(out.class_totals.end());
      }
      ++ct->count;
      accumulate(ct->totals, m.path);
      if (m.finish_skew) out.skew_samples.push_back(*m.finish_skew);
    }
    if (m.complete) {
      ++out.complete_count;
    } else {
      ++out.incomplete_count;
    }
    out.messages.push_back(std::move(m));
  }
  // Every message in class 0 means QoS was off: no per-class breakdown.
  if (out.class_totals.size() == 1 && out.class_totals.front().cls == 0) {
    out.class_totals.clear();
  }
  std::sort(out.class_totals.begin(), out.class_totals.end(),
            [](const auto& a, const auto& b) { return a.cls < b.cls; });
  return out;
}

SpanAnalysis analyze_spans(const Tracer& tracer) {
  const std::vector<TraceEvent> events = tracer.snapshot();
  return analyze_spans(std::span<const TraceEvent>(events.data(), events.size()));
}

void print_duration_histogram(std::ostream& os, const char* title,
                              std::span<const SimDuration> samples_ns) {
  os << title << ":\n";
  if (samples_ns.empty()) {
    os << "  (no samples)\n";
    return;
  }
  std::vector<SimDuration> sorted(samples_ns.begin(), samples_ns.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (const SimDuration s : sorted) sum += static_cast<double>(s);
  const double mean = sum / static_cast<double>(sorted.size());
  const SimDuration p95 = sorted[(sorted.size() * 95) / 100 == sorted.size()
                                     ? sorted.size() - 1
                                     : (sorted.size() * 95) / 100];
  char line[160];
  std::snprintf(line, sizeof(line),
                "  %zu sample(s): min %.3f  mean %.3f  p95 %.3f  max %.3f us\n",
                sorted.size(), to_usec(sorted.front()), mean / 1e3,
                to_usec(p95), to_usec(sorted.back()));
  os << line;

  // log2 buckets over nanosecond magnitudes, labelled in microseconds.
  constexpr int kBuckets = 64;
  std::vector<std::size_t> counts(kBuckets, 0);
  for (const SimDuration s : sorted) {
    const auto v = static_cast<std::uint64_t>(std::max<SimDuration>(0, s));
    int b = 0;
    while ((1ull << b) <= v && b < kBuckets - 1) ++b;  // v < 2^b
    ++counts[b];
  }
  std::size_t peak = 0;
  for (const std::size_t c : counts) peak = std::max(peak, c);
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1)) / 1e3;
    const double hi = static_cast<double>(1ull << b) / 1e3;
    const auto bar = static_cast<std::size_t>(
        std::ceil(40.0 * static_cast<double>(counts[b]) / static_cast<double>(peak)));
    std::snprintf(line, sizeof(line), "  [%9.3f, %9.3f) us  %6zu  ", lo, hi,
                  counts[b]);
    os << line << std::string(bar, '#') << '\n';
  }
}

void SpanAnalysis::dump(std::ostream& os) const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "causal spans — %zu message(s): %u complete, %u incomplete\n",
                messages.size(), complete_count, incomplete_count);
  os << line;
  if (messages.empty()) return;

  os << "\nper-message critical-path attribution (us):\n";
  std::snprintf(line, sizeof(line),
                "  %-5s %4s %9s %5s %3s %9s %8s %8s %8s %8s %9s %8s %8s\n", "msg",
                "node", "bytes", "proto", "ch", "total", "queue", "hshake",
                "stagger", "offload", "wire", "sync", "skew");
  os << line;
  for (const MessageSpans& m : messages) {
    if (!m.complete) {
      std::snprintf(line, sizeof(line), "  %-5llu %4u %9zu %5s  [incomplete: %s]\n",
                    static_cast<unsigned long long>(m.msg_id), m.node, m.bytes,
                    m.rendezvous ? "rdv" : "eager",
                    m.head_evicted ? "head events evicted from bounded tracer"
                                   : "still in flight");
      os << line;
      continue;
    }
    if (m.chunks.empty()) {
      std::snprintf(line, sizeof(line),
                    "  %-5llu %4u %9zu %5s  [no NIC activity recorded]\n",
                    static_cast<unsigned long long>(m.msg_id), m.node, m.bytes,
                    m.rendezvous ? "rdv" : "eager");
      os << line;
      continue;
    }
    const CriticalPath& p = m.path;
    std::snprintf(line, sizeof(line),
                  "  %-5llu %4u %9zu %5s %3zu %9.2f %8.2f %8.2f %8.2f %8.2f "
                  "%9.2f %8.2f %8.2f\n",
                  static_cast<unsigned long long>(m.msg_id), m.node, m.bytes,
                  m.rendezvous ? "rdv" : "eager", m.chunks.size(),
                  to_usec(p.total), to_usec(p.queueing), to_usec(p.handshake),
                  to_usec(p.stagger), to_usec(p.offload_sync), to_usec(p.wire),
                  to_usec(p.completion_sync),
                  m.finish_skew ? to_usec(*m.finish_skew) : 0.0);
    os << line;
  }

  if (complete_count > 0 && totals.total > 0) {
    os << "\ncritical-path layer totals over " << complete_count
       << " complete message(s):\n";
    const auto share = [&](SimDuration d) {
      return 100.0 * static_cast<double>(d) / static_cast<double>(totals.total);
    };
    const struct {
      const char* name;
      SimDuration value;
    } layers[] = {
        {"queueing (submit -> first activity)", totals.queueing},
        {"handshake (RTS -> first chunk)", totals.handshake},
        {"stagger (serial emission launches)", totals.stagger},
        {"offload sync (signal -> PIO start)", totals.offload_sync},
        {"wire (critical chunk on the NIC)", totals.wire},
        {"completion sync (FIN / stragglers)", totals.completion_sync},
    };
    for (const auto& l : layers) {
      std::snprintf(line, sizeof(line), "  %-38s %10.2f us  (%5.1f%%)\n", l.name,
                    to_usec(l.value), share(l.value));
      os << line;
    }
    std::snprintf(line, sizeof(line), "  %-38s %10.2f us  (100.0%%)\n",
                  "total end-to-end latency", to_usec(totals.total));
    os << line;
  }

  if (!class_totals.empty()) {
    os << "\nper-traffic-class attribution (complete messages):\n";
    std::snprintf(line, sizeof(line), "  %-5s %6s %10s %10s %10s %10s\n", "class",
                  "msgs", "total_us", "queue_us", "wire_us", "mean_us");
    os << line;
    for (const ClassTotals& ct : class_totals) {
      const double mean =
          ct.count > 0 ? to_usec(ct.totals.total) / static_cast<double>(ct.count) : 0.0;
      std::snprintf(line, sizeof(line), "  %-5u %6u %10.2f %10.2f %10.2f %10.2f\n",
                    ct.cls, ct.count, to_usec(ct.totals.total),
                    to_usec(ct.totals.queueing), to_usec(ct.totals.wire), mean);
      os << line;
    }
  }

  os << '\n';
  print_duration_histogram(os, "chunk finish-skew (equal-finish property)",
                           std::span<const SimDuration>(skew_samples));
  os << '\n';
  print_duration_histogram(os, "measured TO, offload signal -> PIO start "
                               "(paper: ~3 us)",
                           std::span<const SimDuration>(to_samples));
}

void emit_chrome_spans(ChromeTraceSink& sink, const SpanAnalysis& analysis) {
  char buf[320];
  for (const MessageSpans& m : analysis.messages) {
    if (!m.complete || m.chunks.empty()) continue;
    const double submit_us = static_cast<double>(m.submit) / 1e3;
    const double finish_us = static_cast<double>(m.finish) / 1e3;
    const auto id = static_cast<unsigned long long>(m.msg_id);

    // Nested async span tree: one root per message, one child per nonzero
    // layer. Perfetto stacks "b"/"e" pairs sharing (cat, id).
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"msg %llu\",\"cat\":\"cp\",\"ph\":\"b\","
                  "\"id\":%llu,\"ts\":%.3f,\"pid\":%u,\"tid\":0,"
                  "\"args\":{\"bytes\":%zu,\"chunks\":%zu,\"proto\":\"%s\"}}",
                  id, id, submit_us, m.node, m.bytes, m.chunks.size(),
                  m.rendezvous ? "rdv" : "eager");
    sink.emit(buf);
    const CriticalPath& p = m.path;
    SimTime cursor = m.submit;
    const struct {
      const char* name;
      SimDuration value;
    } layers[] = {
        {"queueing", p.queueing},         {"handshake", p.handshake},
        {"stagger", p.stagger},           {"offload-sync", p.offload_sync},
        {"wire", p.wire},                 {"completion-sync", p.completion_sync},
    };
    for (const auto& l : layers) {
      if (l.value <= 0) continue;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"cp\",\"ph\":\"b\",\"id\":%llu,"
                    "\"ts\":%.3f,\"pid\":%u,\"tid\":0}",
                    l.name, id, static_cast<double>(cursor) / 1e3, m.node);
      sink.emit(buf);
      cursor += l.value;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"cp\",\"ph\":\"e\",\"id\":%llu,"
                    "\"ts\":%.3f,\"pid\":%u,\"tid\":0}",
                    l.name, id, static_cast<double>(cursor) / 1e3, m.node);
      sink.emit(buf);
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"msg %llu\",\"cat\":\"cp\",\"ph\":\"e\","
                  "\"id\":%llu,\"ts\":%.3f,\"pid\":%u,\"tid\":0}",
                  id, id, finish_us, m.node);
    sink.emit(buf);

    // Flow arrows from the submit to each chunk span on its rail track, then
    // into the completion — the causal skeleton overlaid on the NIC lanes.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"msg %llu\",\"cat\":\"cpflow\",\"ph\":\"s\","
                  "\"id\":%llu,\"ts\":%.3f,\"pid\":%u,\"tid\":0}",
                  id, id, submit_us, m.node);
    sink.emit(buf);
    for (const ChunkSpan& c : m.chunks) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"msg %llu\",\"cat\":\"cpflow\",\"ph\":\"t\","
                    "\"id\":%llu,\"ts\":%.3f,\"pid\":%u,\"tid\":%u}",
                    id, id, static_cast<double>(c.start) / 1e3, m.node, c.rail);
      sink.emit(buf);
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"msg %llu\",\"cat\":\"cpflow\",\"ph\":\"f\","
                  "\"bp\":\"e\",\"id\":%llu,\"ts\":%.3f,\"pid\":%u,\"tid\":0}",
                  id, id, finish_us, m.node);
    sink.emit(buf);
  }
}

}  // namespace rails::trace
