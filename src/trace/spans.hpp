// Causal span layer over the flat TraceEvent stream.
//
// The Tracer records *events*; this module lifts them into per-message span
// trees and attributes end-to-end latency to layers, because the paper's
// core claims are temporal: hetero-split chunks should finish simultaneously
// (Fig. 1c), and offload costs a measurable TO ≈ 3 µs per eq. (1). For every
// sender-side message the analyzer reconstructs
//
//   submit ──queueing──► first activity (RTS / offload signal / emission)
//          ──handshake─► first DMA chunk           (rendezvous only)
//          ──stagger───► critical chunk launched
//          ──offload───► critical chunk's PIO starts (measured TO)
//          ──wire──────► critical chunk leaves the NIC
//          ──sync──────► send-complete (FIN return / straggler wait)
//
// where the *critical chunk* is the emission or DMA chunk predicted to leave
// its NIC last. The six layers are successive deltas of a monotone cursor
// clamped to [submit, complete], so they are each non-negative and sum
// EXACTLY to the total latency — an attribution that does not tile the
// message's lifetime is a bug, not a rounding error.
//
// Two derived observables close the loop on the paper:
//  * finish-skew — max minus min predicted NIC-end over the message's
//    chunks: the direct test of the equal-finish property (§II-B);
//  * measured TO — offload-signal to PIO-start per offloaded emission,
//    compared against the configured 3 µs signalling cost of eq. (1).
//
// A message whose submit or completion record was evicted from a bounded
// tracer is reported as *incomplete* and excluded from attribution — a
// partial event window must never fabricate a span.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "trace/tracer.hpp"

namespace rails::trace {

/// One reconstructed NIC activity span (eager emission or DMA chunk).
/// Aggregated eager pieces sharing a segment collapse into one span.
struct ChunkSpan {
  RailId rail = 0;
  CoreId core = 0;
  SimTime start = 0;        ///< host/PIO start
  SimTime nic_end = 0;      ///< predicted wire departure
  std::size_t bytes = 0;
  bool eager = false;       ///< eager emission (vs rendezvous DMA chunk)
  bool offloaded = false;   ///< submitted from a remote core (TO charged)
  SimTime signal_time = -1; ///< offload signal instant; -1 when not offloaded
};

/// Per-message latency attribution. All fields are non-negative and
/// queueing + handshake + stagger + offload_sync + wire + completion_sync
/// == total, by construction.
struct CriticalPath {
  SimDuration total = 0;
  SimDuration queueing = 0;        ///< submit -> first scheduling activity
  SimDuration handshake = 0;       ///< RTS -> first DMA chunk (CTS wait + split planning)
  SimDuration stagger = 0;         ///< first emission -> critical chunk launched
  SimDuration offload_sync = 0;    ///< critical chunk's measured TO (offloaded only)
  SimDuration wire = 0;            ///< critical chunk's NIC time
  SimDuration completion_sync = 0; ///< last wire departure -> send-complete (FIN/straggler)
  RailId critical_rail = 0;        ///< rail that carried the critical chunk

  SimDuration sum() const {
    return queueing + handshake + stagger + offload_sync + wire + completion_sync;
  }
};

/// Span tree of one sender-side message.
struct MessageSpans {
  NodeId node = 0;
  std::uint64_t msg_id = 0;
  Tag tag = 0;
  std::size_t bytes = 0;
  bool rendezvous = false;
  /// QoS traffic class (docs/QOS.md); 0 when the subsystem is off.
  std::uint32_t cls = 0;

  /// Both the submit and the send-complete records were retained. Only
  /// complete messages carry a critical-path attribution.
  bool complete = false;
  /// Activity was seen but the submit record is missing — the head of the
  /// message was evicted from a bounded tracer.
  bool head_evicted = false;

  SimTime submit = -1;
  SimTime finish = -1;
  SimTime rts = -1;

  unsigned offload_signals = 0;
  unsigned failovers = 0;
  std::vector<ChunkSpan> chunks;

  CriticalPath path;  ///< valid iff complete && !chunks.empty()

  /// max - min predicted NIC-end over the chunks (>= 2 chunks, complete
  /// messages only): the equal-finish property, measured.
  std::optional<SimDuration> finish_skew;
  /// Measured TO per offloaded emission: signal -> PIO start.
  std::vector<SimDuration> measured_to;
};

/// Whole-trace analysis: one MessageSpans per sender-side message plus
/// cross-message aggregates.
struct SpanAnalysis {
  std::vector<MessageSpans> messages;  ///< ordered by first retained event
  unsigned complete_count = 0;
  unsigned incomplete_count = 0;
  CriticalPath totals;  ///< per-layer sums over complete messages

  /// Per-traffic-class latency attribution (complete messages). Populated
  /// only when some message carried a nonzero class id, i.e. QoS was on.
  struct ClassTotals {
    std::uint32_t cls = 0;
    unsigned count = 0;
    CriticalPath totals;
  };
  std::vector<ClassTotals> class_totals;  ///< ordered by class id
  std::vector<SimDuration> skew_samples;  ///< ns, complete multi-chunk messages
  std::vector<SimDuration> to_samples;    ///< ns, every offloaded emission

  /// The `railsctl spans` report: per-message critical-path table, layer
  /// shares, finish-skew and measured-TO histograms.
  void dump(std::ostream& os) const;
};

/// Reconstructs spans from a chronological (oldest-first) event window.
SpanAnalysis analyze_spans(std::span<const TraceEvent> events);
/// Convenience: snapshots the tracer first.
SpanAnalysis analyze_spans(const Tracer& tracer);

/// Appends the analysis to a Chrome-trace stream as nested async spans
/// (cat "cp": message root + per-layer children) plus flow arrows from each
/// submit to its chunk spans on the rail tracks. Compose with
/// Tracer::dump_chrome_trace_events on one ChromeTraceSink to get a single
/// file with both the raw event lanes and the causal overlay.
void emit_chrome_spans(ChromeTraceSink& sink, const SpanAnalysis& analysis);

/// log2-bucketed histogram of durations (printed in microseconds).
void print_duration_histogram(std::ostream& os, const char* title,
                              std::span<const SimDuration> samples_ns);

}  // namespace rails::trace
