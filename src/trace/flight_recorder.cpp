#include "trace/flight_recorder.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <istream>
#include <ostream>
#include <string_view>
#include <utility>

#include "common/check.hpp"
#include "common/minijson.hpp"
#include "telemetry/metrics.hpp"

namespace rails::trace {

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kSubmit: return "submit";
    case FlightKind::kEagerEmit: return "eager-emit";
    case FlightKind::kChunkPosted: return "chunk";
    case FlightKind::kSendComplete: return "send-complete";
    case FlightKind::kRecvComplete: return "recv-complete";
    case FlightKind::kOffloadSignal: return "offload-signal";
    case FlightKind::kOffloadPush: return "offload-push";
    case FlightKind::kTxError: return "tx-error";
    case FlightKind::kChunkTimeout: return "chunk-timeout";
    case FlightKind::kFailover: return "failover";
    case FlightKind::kQuarantine: return "quarantine";
    case FlightKind::kReprobe: return "reprobe";
    case FlightKind::kTrustDemotion: return "trust-demotion";
    case FlightKind::kTrustPromotion: return "trust-promotion";
    case FlightKind::kScaleCorrection: return "scale-correction";
    case FlightKind::kResample: return "resample";
    case FlightKind::kTrigger: return "trigger";
    case FlightKind::kCorruptDetected: return "corrupt-detected";
    case FlightKind::kRetransmit: return "retransmit";
    case FlightKind::kRetryExhausted: return "retry-exhausted";
    case FlightKind::kDupSuppressed: return "dup-suppressed";
    case FlightKind::kSloAlert: return "slo-alert";
  }
  return "?";
}

// Per-slot seqlock over all-atomic fields. seq holds ticket*2+1 while a
// writer is mid-record and ticket*2+2 once published; a snapshot reader
// validates seq before and after its field loads and discards the slot on
// mismatch. Every access is an atomic, so concurrent overwrite is a
// discarded read, never a data race (TSan-clean by construction).
struct FlightRecorder::Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<SimTime> time{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::uint32_t> node{0};
  std::atomic<std::uint32_t> rail{0};
  std::atomic<std::uint64_t> msg_id{0};
  std::atomic<std::int64_t> a{0};
  std::atomic<std::int64_t> b{0};
};

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// The recorder armed for CHECK-failure dumps. A single global (not a
// per-recorder hook) because check_failed takes a plain function pointer.
std::atomic<FlightRecorder*> g_check_recorder{nullptr};

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(std::max<std::size_t>(capacity, 2));
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

FlightRecorder::~FlightRecorder() {
  FlightRecorder* self = this;
  if (g_check_recorder.compare_exchange_strong(self, nullptr,
                                               std::memory_order_acq_rel)) {
    set_check_failure_hook(nullptr);
  }
}

void FlightRecorder::record(const FlightRecord& r) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[ticket & mask_];
  s.seq.store(ticket * 2 + 1, std::memory_order_release);
  s.time.store(r.time, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(r.kind), std::memory_order_relaxed);
  s.node.store(static_cast<std::uint32_t>(r.node), std::memory_order_relaxed);
  s.rail.store(static_cast<std::uint32_t>(r.rail), std::memory_order_relaxed);
  s.msg_id.store(r.msg_id, std::memory_order_relaxed);
  s.a.store(r.a, std::memory_order_relaxed);
  s.b.store(r.b, std::memory_order_relaxed);
  s.seq.store(ticket * 2 + 2, std::memory_order_release);

  SimTime prev = last_time_.load(std::memory_order_relaxed);
  while (r.time > prev &&
         !last_time_.compare_exchange_weak(prev, r.time,
                                           std::memory_order_relaxed)) {
  }
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = capacity();
  const std::uint64_t begin = head > cap ? head - cap : 0;
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t ticket = begin; ticket < head; ++ticket) {
    const Slot& s = slots_[ticket & mask_];
    const std::uint64_t want = ticket * 2 + 2;
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    FlightRecord r;
    r.time = s.time.load(std::memory_order_relaxed);
    r.kind = static_cast<FlightKind>(s.kind.load(std::memory_order_relaxed));
    r.node = static_cast<NodeId>(s.node.load(std::memory_order_relaxed));
    r.rail = static_cast<RailId>(s.rail.load(std::memory_order_relaxed));
    r.msg_id = s.msg_id.load(std::memory_order_relaxed);
    r.a = s.a.load(std::memory_order_relaxed);
    r.b = s.b.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != want) continue;
    out.push_back(r);
  }
  return out;
}

void FlightRecorder::set_output(std::string dir, std::string prefix) {
  std::lock_guard<std::mutex> lock(bundle_mu_);
  dir_ = std::move(dir);
  prefix_ = std::move(prefix);
}

void FlightRecorder::set_metrics(const telemetry::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(bundle_mu_);
  metrics_ = registry;
}

void FlightRecorder::set_state_writer(StateWriter writer) {
  std::lock_guard<std::mutex> lock(bundle_mu_);
  state_writer_ = std::move(writer);
}

void FlightRecorder::set_series_writer(StateWriter writer) {
  std::lock_guard<std::mutex> lock(bundle_mu_);
  series_writer_ = std::move(writer);
}

void FlightRecorder::set_rate_limit(unsigned max_bundles, SimDuration min_interval) {
  std::lock_guard<std::mutex> lock(bundle_mu_);
  max_bundles_ = max_bundles;
  min_interval_ = min_interval;
}

std::string FlightRecorder::trigger(const char* reason, const std::string& detail,
                                    SimTime now) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(bundle_mu_);
    const bool limited =
        dir_.empty() || bundles_written_ >= max_bundles_ ||
        (bundles_written_ > 0 && min_interval_ > 0 &&
         now - last_bundle_time_ < min_interval_);
    if (!limited) {
      // Sanitise the reason for use in a file name.
      std::string tag(reason);
      for (char& c : tag) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '-';
      }
      char name[512];
      std::snprintf(name, sizeof(name), "%s/%s-%u-%s.json", dir_.c_str(),
                    prefix_.c_str(), bundles_written_, tag.c_str());
      std::ofstream file(name);
      if (file) {
        write_bundle(file, reason, detail, now);
        if (file.good()) {
          ++bundles_written_;
          last_bundle_time_ = now;
          last_bundle_path_ = name;
          path = name;
        }
      }
    }
  }
  FlightRecord r;
  r.time = now;
  r.kind = FlightKind::kTrigger;
  r.a = path.empty() ? 0 : 1;  // 1 = a bundle file was written
  record(r);
  return path;
}

void FlightRecorder::write_bundle(std::ostream& os, const char* reason,
                                  const std::string& detail, SimTime now) const {
  os << "{\"postmortem\":{\"format\":1,\"reason\":\""
     << minijson::escape(reason) << "\",\"detail\":\""
     << minijson::escape(detail) << "\",\"time_ns\":" << now;

  const std::vector<FlightRecord> events = snapshot();
  os << ",\"ring\":{\"capacity\":" << capacity()
     << ",\"recorded\":" << total_recorded() << ",\"evicted\":" << evictions()
     << ",\"events\":[";
  bool first = true;
  for (const FlightRecord& r : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"time_ns\":" << r.time << ",\"kind\":\"" << to_string(r.kind)
       << "\",\"node\":" << r.node << ",\"rail\":" << r.rail
       << ",\"msg\":" << r.msg_id << ",\"a\":" << r.a << ",\"b\":" << r.b << '}';
  }
  os << "]}";

  os << ",\"metrics\":";
  if (metrics_ != nullptr) {
    metrics_->dump_json(os);
  } else {
    os << "null";
  }

  os << ",\"state\":";
  if (state_writer_) {
    state_writer_(os);
  } else {
    os << "null";
  }

  if (series_writer_) {
    os << ",\"timeseries\":";
    series_writer_(os);
  }
  os << "}}\n";
}

namespace {

void check_hook_trampoline(const char* cond, const char* file, int line,
                           const char* msg) {
  FlightRecorder* rec = g_check_recorder.load(std::memory_order_acquire);
  if (rec == nullptr) return;
  char detail[512];
  std::snprintf(detail, sizeof(detail), "%s at %s:%d%s%s", cond, file, line,
                msg[0] ? " — " : "", msg);
  // Lift the bundle cap for the crash dump: the death bundle is the one the
  // recorder exists for, even after a fault storm exhausted the budget.
  rec->set_rate_limit(~0u, 0);
  rec->trigger("check-failure", detail, rec->last_time());
}

}  // namespace

void FlightRecorder::install_check_hook() {
  g_check_recorder.store(this, std::memory_order_release);
  set_check_failure_hook(&check_hook_trampoline);
}

void FlightRecorder::uninstall_check_hook() {
  g_check_recorder.store(nullptr, std::memory_order_release);
  set_check_failure_hook(nullptr);
}

// ---------------------------------------------------------------------------
// Postmortem rendering: reads the bundle back through the shared minijson
// reader (common/minijson.hpp) and formats it for humans.

namespace {

using minijson::JsonValue;

void pretty_print(const JsonValue& v, std::ostream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  switch (v.type) {
    case JsonValue::Type::kNull: os << "null"; break;
    case JsonValue::Type::kBool: os << (v.boolean ? "true" : "false"); break;
    case JsonValue::Type::kNumber: {
      char buf[48];
      if (v.number == static_cast<double>(static_cast<long long>(v.number))) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v.number));
      } else {
        std::snprintf(buf, sizeof(buf), "%g", v.number);
      }
      os << buf;
      break;
    }
    case JsonValue::Type::kString: os << v.str; break;
    case JsonValue::Type::kArray: {
      os << '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i != 0) os << ", ";
        pretty_print(v.array[i], os, indent);
      }
      os << ']';
      break;
    }
    case JsonValue::Type::kObject:
      for (const auto& [key, child] : v.object) {
        os << '\n' << pad << key << ": ";
        pretty_print(child, os, indent + 2);
      }
      break;
  }
}

}  // namespace

bool FlightRecorder::render_postmortem(std::istream& is, std::ostream& os) {
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  JsonValue root;
  if (!minijson::parse(text, root)) {
    os << "postmortem: input is not valid JSON\n";
    return false;
  }
  const JsonValue* pm = root.find("postmortem");
  if (pm == nullptr || pm->type != JsonValue::Type::kObject) {
    os << "postmortem: missing top-level \"postmortem\" object\n";
    return false;
  }

  const JsonValue* reason = pm->find("reason");
  const JsonValue* detail = pm->find("detail");
  const JsonValue* time_ns = pm->find("time_ns");
  char line[256];
  os << "postmortem bundle\n";
  os << "  reason: " << (reason != nullptr ? reason->str : "?") << '\n';
  if (detail != nullptr && !detail->str.empty()) {
    os << "  detail: " << detail->str << '\n';
  }
  if (time_ns != nullptr) {
    std::snprintf(line, sizeof(line), "  virtual time: %.3f us\n",
                  time_ns->num_or(0) / 1e3);
    os << line;
  }

  if (const JsonValue* ring = pm->find("ring"); ring != nullptr) {
    const double cap = ring->find("capacity") != nullptr
                           ? ring->find("capacity")->num_or(0) : 0;
    const double rec = ring->find("recorded") != nullptr
                           ? ring->find("recorded")->num_or(0) : 0;
    const double evicted = ring->find("evicted") != nullptr
                               ? ring->find("evicted")->num_or(0) : 0;
    std::snprintf(line, sizeof(line),
                  "  ring: %.0f record(s) ever, %.0f evicted (capacity %.0f)\n",
                  rec, evicted, cap);
    os << line;
    const JsonValue* events = ring->find("events");
    if (events != nullptr && events->type == JsonValue::Type::kArray) {
      os << "\nrecent events (oldest first, " << events->array.size()
         << " retained):\n";
      std::snprintf(line, sizeof(line), "  %12s  %-16s %4s %4s %8s %12s %12s\n",
                    "time (us)", "kind", "node", "rail", "msg", "a", "b");
      os << line;
      for (const JsonValue& e : events->array) {
        const auto field = [&](const char* name) {
          const JsonValue* f = e.find(name);
          return f != nullptr ? f->num_or(0) : 0.0;
        };
        const JsonValue* kind = e.find("kind");
        std::snprintf(line, sizeof(line),
                      "  %12.3f  %-16s %4.0f %4.0f %8.0f %12.0f %12.0f\n",
                      field("time_ns") / 1e3,
                      kind != nullptr ? kind->str.c_str() : "?", field("node"),
                      field("rail"), field("msg"), field("a"), field("b"));
        os << line;
      }
    }
  }

  if (const JsonValue* state = pm->find("state");
      state != nullptr && state->type == JsonValue::Type::kObject) {
    os << "\nengine state at dump:";
    pretty_print(*state, os, 2);
    os << '\n';
  }

  if (const JsonValue* ts = pm->find("timeseries");
      ts != nullptr && ts->type == JsonValue::Type::kObject) {
    const JsonValue* series = ts->find("series");
    const std::size_t nseries =
        series != nullptr && series->type == JsonValue::Type::kArray
            ? series->array.size() : 0;
    std::snprintf(line, sizeof(line),
                  "\nhealth time series: %zu series, %.0f tick(s) at %.1f us\n",
                  nseries,
                  ts->find("ticks") != nullptr ? ts->find("ticks")->num_or(0) : 0,
                  ts->find("interval_us") != nullptr
                      ? ts->find("interval_us")->num_or(0) : 0);
    os << line;
    if (nseries != 0) {
      for (const JsonValue& s : series->array) {
        const JsonValue* name = s.find("name");
        const JsonValue* points = s.find("points");
        std::snprintf(line, sizeof(line),
                      "  %-28s %4zu point(s), stride %-4.0f last %.3f\n",
                      name != nullptr ? name->str.c_str() : "?",
                      points != nullptr ? points->array.size() : 0,
                      s.find("stride") != nullptr ? s.find("stride")->num_or(1) : 1,
                      s.find("last") != nullptr ? s.find("last")->num_or(0) : 0);
        os << line;
      }
    }
  }

  if (const JsonValue* metrics = pm->find("metrics");
      metrics != nullptr && metrics->type == JsonValue::Type::kObject) {
    const JsonValue* counters = metrics->find("counters");
    const JsonValue* gauges = metrics->find("gauges");
    const JsonValue* histos = metrics->find("histograms");
    std::snprintf(line, sizeof(line),
                  "\nmetrics snapshot: %zu counter(s), %zu gauge(s), "
                  "%zu histogram(s)\n",
                  counters != nullptr ? counters->object.size() : 0,
                  gauges != nullptr ? gauges->object.size() : 0,
                  histos != nullptr ? histos->object.size() : 0);
    os << line;
    if (counters != nullptr) {
      for (const auto& [name, v] : counters->object) {
        if (v.num_or(0) == 0) continue;  // nonzero counters only
        std::snprintf(line, sizeof(line), "  %-40s %12.0f\n", name.c_str(),
                      v.num_or(0));
        os << line;
      }
    }
    if (gauges != nullptr) {
      for (const auto& [name, v] : gauges->object) {
        std::snprintf(line, sizeof(line), "  %-40s %12.0f\n", name.c_str(),
                      v.num_or(0));
        os << line;
      }
    }
    if (histos != nullptr) {
      for (const auto& [name, v] : histos->object) {
        const JsonValue* count = v.find("count");
        const JsonValue* mean = v.find("mean");
        std::snprintf(line, sizeof(line), "  %-40s count %-8.0f mean %.1f\n",
                      name.c_str(), count != nullptr ? count->num_or(0) : 0,
                      mean != nullptr ? mean->num_or(0) : 0);
        os << line;
      }
    }
  }
  return true;
}

}  // namespace rails::trace
