#include "sampling/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace rails::sampling {

namespace {

PerfProfile scaled_table(const PerfProfile& base, double scale) {
  std::vector<SamplePoint> pts = base.points();
  for (auto& p : pts)
    p.duration = static_cast<SimDuration>(
        std::llround(static_cast<double>(p.duration) * scale));
  return PerfProfile(std::move(pts));
}

}  // namespace

const RailProfile& Estimator::profile(RailId rail) const {
  RAILS_CHECK(rail < profiles_.size());
  return profiles_[rail];
}

const RailProfile& Estimator::base_profile(RailId rail) const {
  RAILS_CHECK(rail < base_.size());
  return base_[rail];
}

void Estimator::set_profile_scale(RailId rail, double scale) {
  RAILS_CHECK(rail < profiles_.size());
  RAILS_CHECK_MSG(scale > 0.0, "profile scale must be positive");
  const RailProfile& base = base_[rail];
  RailProfile& rp = profiles_[rail];
  rp.eager = scaled_table(base.eager, scale);
  rp.eager_host = scaled_table(base.eager_host, scale);
  rp.rendezvous = scaled_table(base.rendezvous, scale);
  rp.rdv_chunk = scaled_table(base.rdv_chunk, scale);
  scales_[rail] = scale;
}

double Estimator::profile_scale(RailId rail) const {
  RAILS_CHECK(rail < scales_.size());
  return scales_[rail];
}

void Estimator::replace_profile(RailId rail, RailProfile fresh) {
  RAILS_CHECK(rail < profiles_.size());
  base_[rail] = std::move(fresh);
  profiles_[rail] = base_[rail];
  scales_[rail] = 1.0;
}

fabric::Protocol Estimator::protocol_for(RailId rail, std::size_t size) const {
  // Strictly greater: a message exactly at the threshold stays eager, the
  // same comparison the engine applies against engine_rdv_threshold(). The
  // two used to disagree (`>=` here, `>` in the engine), so a message of
  // exactly rdv_threshold bytes was predicted as rendezvous but sent eager.
  const RailProfile& rp = profile(rail);
  if (size > rp.max_eager || size > rp.rdv_threshold) return fabric::Protocol::kRendezvous;
  return fabric::Protocol::kEager;
}

std::size_t Estimator::engine_rdv_threshold() const {
  RAILS_CHECK(!profiles_.empty());
  std::size_t threshold = 0;
  for (const auto& rp : profiles_) threshold = std::max(threshold, rp.rdv_threshold);
  return threshold;
}

const PerfProfile& Estimator::table(RailId rail, fabric::Protocol proto) const {
  const RailProfile& rp = profile(rail);
  return proto == fabric::Protocol::kEager ? rp.eager : rp.rendezvous;
}

SimDuration Estimator::duration(RailId rail, std::size_t size,
                                fabric::Protocol proto) const {
  return table(rail, proto).estimate(size);
}

SimDuration Estimator::chunk_duration(RailId rail, std::size_t size) const {
  return profile(rail).rdv_chunk.estimate(size);
}

SimDuration Estimator::eager_host_time(RailId rail, std::size_t size) const {
  return profile(rail).eager_host.estimate(size);
}

SimTime Estimator::completion(const RailState& state, SimTime now, std::size_t size,
                              fabric::Protocol proto) const {
  const SimTime start = std::max(now, state.busy_until);
  return start + duration(state.rail, size, proto);
}

SimTime Estimator::chunk_completion(const RailState& state, SimTime now,
                                    std::size_t size) const {
  const SimTime start = std::max(now, state.busy_until);
  return start + chunk_duration(state.rail, size);
}

std::size_t Estimator::max_chunk_by(const RailState& state, SimTime now, SimTime deadline,
                                    fabric::Protocol proto) const {
  const SimTime start = std::max(now, state.busy_until);
  if (deadline <= start) return 0;
  const PerfProfile& tbl = proto == fabric::Protocol::kEager
                               ? profile(state.rail).eager
                               : profile(state.rail).rdv_chunk;
  return tbl.max_bytes_within(deadline - start);
}

}  // namespace rails::sampling
