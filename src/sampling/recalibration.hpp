// Online profile drift detection and adaptive recalibration.
//
// The paper warns that "the misknowledge of networks' workload may lead to a
// potential underutilization of the links" (§II-A): profiles are sampled once
// at init, so a rail that degrades at runtime keeps receiving oversized
// hetero-split chunks. The Recalibrator closes that loop. Every (predicted,
// actual) completion the engine observes feeds a per-rail drift detector —
// an EWMA of the signed relative bias plus a recent window of absolute
// residuals — behind a trust state machine:
//
//   TRUSTED --sustained drift--> SUSPECT --still out of band--> UNTRUSTED
//      ^                          |    ^                            |
//      |  in band for             |    |  sweep installs            |
//      |  recover_patience        |    |  fresh profile             v
//      +--------------------------+    +--------------------- RESAMPLING
//
// Demotion to SUSPECT applies a cheap multiplicative *scale correction* to
// the rail's profile tables (fast path, no traffic pause). If corrected
// predictions stay out of band the rail is UNTRUSTED and a background
// re-sampling sweep is requested — rate-limited and budgeted so it cannot
// starve application traffic. Strategies consult the trust state: SUSPECT
// rails are down-weighted, UNTRUSTED/RESAMPLING rails push hetero-split back
// to knowledge-free iso weighting. Hysteresis (a dead band between the drift
// and recover thresholds, plus patience counters) keeps a flapping rail from
// oscillating the strategy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sampling/estimator.hpp"
#include "sampling/sampler.hpp"

namespace rails::fabric {
class SimNic;
}

namespace rails::sampling {

enum class TrustState : std::uint8_t {
  kTrusted = 0,    ///< predictions in band; full weight
  kSuspect = 1,    ///< drift detected, scale-corrected; mildly down-weighted
  kUntrusted = 2,  ///< correction did not hold; strategies ignore its numbers
  kResampling = 3  ///< background sweep in flight
};

const char* to_string(TrustState state);

struct RecalibrationConfig {
  bool enabled = false;
  /// EWMA smoothing factor for the signed relative bias, in (0, 1].
  double ewma_alpha = 0.25;
  /// Recent-window length (absolute residuals) for the p95 escalation check.
  unsigned window = 32;
  /// Residuals required after a (re)start before any verdict is reached.
  unsigned min_samples = 6;
  /// |EWMA bias| above this counts toward demotion...
  double drift_threshold = 0.25;
  /// ...once it has persisted for this many consecutive residuals.
  unsigned drift_patience = 3;
  /// |EWMA bias| below this counts toward promotion (dead band between the
  /// two thresholds feeds neither streak — the hysteresis that stops flap).
  double recover_threshold = 0.10;
  /// In-band residuals required to promote one level.
  unsigned recover_patience = 6;
  /// A full recent window whose p95 residual exceeds this escalates SUSPECT
  /// to UNTRUSTED even if the EWMA has not settled out of band.
  double untrusted_p95 = 0.75;
  /// Cost multiplier strategies apply to a SUSPECT rail's predictions.
  double suspect_penalty = 1.25;
  /// Scale corrections applied while SUSPECT before the detector concludes
  /// the *shape* changed (not just the scale) and requests a re-sample.
  unsigned max_corrections = 2;
  /// Clamp on the per-rail profile scale.
  double min_scale = 1.0 / 16.0;
  double max_scale = 16.0;
  /// Minimum gap between two scale corrections on one rail.
  SimDuration correction_holdoff = 200'000;  // 200 us
  /// Minimum gap between two re-sampling sweeps on one rail.
  SimDuration resample_interval = 2'000'000;  // 2 ms
  /// Total re-sampling sweeps allowed per run (budget, all rails).
  unsigned resample_budget = 8;
  /// Scheduler-core time charged per sweep (the probe burst is not free).
  SimDuration resample_host_cost = 5'000;  // 5 us
  /// Reduced ladder used by background sweeps (full init ladder is 8 MiB).
  SamplerConfig resample_sampler{1024, 2u * 1024u * 1024u, 1, 1};
};

class Recalibrator {
 public:
  /// What one observation did; the engine turns these into stats/telemetry
  /// and arms a sweep event when `resample_requested` is set.
  struct Outcome {
    bool scale_corrected = false;
    bool resample_requested = false;
    bool state_changed = false;
    bool demoted = false;
    bool promoted = false;
    TrustState state = TrustState::kTrusted;
  };

  struct Stats {
    std::uint64_t observations = 0;
    std::uint64_t corrections = 0;
    std::uint64_t resamples = 0;
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
  };

  /// `estimator` must outlive the recalibrator; corrections are written
  /// straight into its tables so every consumer sees them immediately.
  Recalibrator(Estimator* estimator, RecalibrationConfig config);

  const RecalibrationConfig& config() const { return config_; }
  std::size_t rail_count() const { return rails_.size(); }

  /// Feeds one completed transfer (any protocol) into the drift detector.
  Outcome observe(RailId rail, SimDuration predicted, SimDuration actual, SimTime now);

  // -- trust queries (what strategies consume) -----------------------------
  TrustState trust(RailId rail) const;
  /// Cost multiplier for the rail (1.0 when trusted, `suspect_penalty` when
  /// SUSPECT; UNTRUSTED rails are handled by the iso fallback instead).
  double cost_penalty(RailId rail) const;
  /// True when the rail's numbers should not feed the split solver at all.
  bool compromised(RailId rail) const;

  // -- diagnostics ---------------------------------------------------------
  double drift_score(RailId rail) const;   ///< |EWMA bias|, 0 until seeded
  double signed_drift(RailId rail) const;  ///< raw EWMA bias
  double recent_p95(RailId rail) const;    ///< p95 of the recent |bias| window
  double scale(RailId rail) const;         ///< current profile scale
  const Stats& stats() const { return stats_; }
  unsigned resample_budget_left() const { return budget_left_; }
  /// One status line per rail for railsctl.
  std::string status(RailId rail) const;

  // -- background re-sampling protocol -------------------------------------
  /// True when a sweep of `rail` should run now (requested, budgeted, and
  /// past the rate limit). Engines gate their sweep events on this, which
  /// makes concurrently armed events idempotent.
  bool resample_due(RailId rail, SimTime now) const;
  /// Earliest time a sweep of `rail` could be due (for event scheduling).
  SimTime earliest_resample(RailId rail) const;
  void begin_resample(RailId rail, SimTime now);
  /// Installs the sweep's fresh profile: the estimator's base is replaced,
  /// the scale resets to 1, and the rail re-enters at SUSPECT — trust is
  /// re-earned through the recover streak, never granted back outright.
  void complete_resample(RailId rail, RailProfile fresh, SimTime now);
  /// Marks `rail` as wanting a sweep regardless of its drift state
  /// (railsctl --force-recal).
  void force_resample(RailId rail);

 private:
  struct PerRail {
    TrustState state = TrustState::kTrusted;
    double ewma = 0;
    bool ewma_seeded = false;
    std::vector<double> window;  ///< ring of recent |bias|
    std::size_t window_pos = 0;
    std::size_t window_count = 0;
    unsigned samples = 0;  ///< residuals since the last reset
    unsigned drift_streak = 0;
    unsigned recover_streak = 0;
    unsigned corrections_since_suspect = 0;
    bool resample_wanted = false;
    // "Long ago" sentinel: the first correction/sweep is never rate-limited.
    SimTime last_correction = INT64_MIN / 2;
    SimTime last_resample = INT64_MIN / 2;
    std::uint64_t corrections = 0;
    std::uint64_t resamples = 0;
  };

  void reset_residuals(PerRail& pr);
  void change_state(PerRail& pr, TrustState next, Outcome& out);
  bool try_correct(RailId rail, PerRail& pr, SimTime now, Outcome& out);
  void request_resample(PerRail& pr, Outcome& out);
  static double window_p95(const PerRail& pr);

  Estimator* estimator_;
  RecalibrationConfig config_;
  std::vector<PerRail> rails_;
  Stats stats_;
  unsigned budget_left_ = 0;
};

/// Re-measures one rail *in place* through `SimNic::preview`, which prices a
/// segment with the NIC's live perf scale and any active degrade/latency
/// fault — so the sweep sees the degraded network — without posting traffic
/// or consuming port time. Eager and chunk tables are previewed directly;
/// the rendezvous table is the chunk plus both zero-byte control legs, the
/// same RTS/CTS/DATA decomposition the init-time sampler measures. The
/// eager/rendezvous threshold is re-derived from the measured crossover.
RailProfile resample_rail_via_preview(const fabric::SimNic& nic, SimTime now,
                                      const SamplerConfig& config);

}  // namespace rails::sampling
