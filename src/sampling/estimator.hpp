// Busy-aware transfer-time prediction (§II-B, Fig. 2).
//
// The estimator combines the sampled profiles with a snapshot of each NIC's
// busy-until time: "For each interface, the time remaining before it becomes
// idle is added to its predicted transfer time." Strategies consult it for
// every decision — which protocol, which rails, which split.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "fabric/network_model.hpp"
#include "sampling/sampler.hpp"

namespace rails::sampling {

/// Snapshot of one rail at decision time.
struct RailState {
  RailId rail = 0;
  SimTime busy_until = 0;  ///< NIC injection port frees at this time
};

class Estimator {
 public:
  Estimator() = default;
  explicit Estimator(std::vector<RailProfile> profiles)
      : profiles_(profiles), base_(std::move(profiles)), scales_(profiles_.size(), 1.0) {}

  std::size_t rail_count() const { return profiles_.size(); }
  const RailProfile& profile(RailId rail) const;

  /// Pristine profile as sampled/loaded, before any runtime scale correction.
  const RailProfile& base_profile(RailId rail) const;

  /// Multiplicative correction applied to every duration of `rail`'s tables.
  /// The scale always multiplies the *pristine* base, so repeated corrections
  /// replace each other instead of compounding. Sizes, `rdv_threshold` and
  /// `max_eager` are left untouched: a uniform slowdown does not move the
  /// eager/rendezvous crossover, and the engine's cached threshold stays valid.
  void set_profile_scale(RailId rail, double scale);
  double profile_scale(RailId rail) const;

  /// Installs a freshly re-sampled profile as the new pristine base
  /// (scale resets to 1).
  void replace_profile(RailId rail, RailProfile fresh);

  /// Protocol the engine should use on `rail` for a message of `size`.
  /// A message exactly at the rail's threshold stays eager (the switch is
  /// strictly-greater, matching the engine's own comparison).
  fabric::Protocol protocol_for(RailId rail, std::size_t size) const;

  /// Eager/rendezvous threshold for the whole engine: a message uses the
  /// rendezvous path once it exceeds every rail's own threshold (a message
  /// below some rail's threshold can still go eager on that rail).
  std::size_t engine_rdv_threshold() const;

  /// Pure transfer duration on an idle rail.
  SimDuration duration(RailId rail, std::size_t size, fabric::Protocol proto) const;

  /// Duration of one rendezvous DMA chunk (no handshake) — what the split
  /// solver balances across rails.
  SimDuration chunk_duration(RailId rail, std::size_t size) const;

  /// Core-occupying time of an eager post (the PIO copy the multicore
  /// strategy offloads).
  SimDuration eager_host_time(RailId rail, std::size_t size) const;

  /// Predicted completion of a transfer submitted now: waits for the NIC to
  /// go idle, then streams. This is Fig. 2's selection metric.
  SimTime completion(const RailState& state, SimTime now, std::size_t size,
                     fabric::Protocol proto) const;

  /// Busy-aware completion of one rendezvous DMA chunk: same waiting rule
  /// as completion() but over the rdv_chunk table (no handshake cost). The
  /// telemetry PredictionTracker compares this against actual chunk
  /// completions when a strategy bypasses the equal-finish solver.
  SimTime chunk_completion(const RailState& state, SimTime now, std::size_t size) const;

  /// Largest chunk `rail` can finish by `deadline` if submission starts at
  /// max(now, busy_until). 0 when even the latency does not fit.
  std::size_t max_chunk_by(const RailState& state, SimTime now, SimTime deadline,
                           fabric::Protocol proto) const;

 private:
  const PerfProfile& table(RailId rail, fabric::Protocol proto) const;
  std::vector<RailProfile> profiles_;  ///< what every query reads: base × scale
  std::vector<RailProfile> base_;      ///< pristine tables, never scaled
  std::vector<double> scales_;
};

}  // namespace rails::sampling
