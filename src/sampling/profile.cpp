#include "sampling/profile.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace rails::sampling {

PerfProfile::PerfProfile(std::vector<SamplePoint> points) : points_(std::move(points)) {
  normalize();
}

void PerfProfile::add(std::size_t size, SimDuration duration) {
  points_.push_back({size, duration});
  normalize();
}

void PerfProfile::normalize() {
  std::sort(points_.begin(), points_.end(),
            [](const SamplePoint& a, const SamplePoint& b) { return a.size < b.size; });
  // Collapse duplicate sizes (keep the later measurement) and enforce
  // monotone durations: a larger message can never be estimated faster than
  // a smaller one, or the inverse query would be ill-defined. Measurement
  // noise can produce small inversions; clamping is the standard fix.
  std::vector<SamplePoint> out;
  out.reserve(points_.size());
  for (const auto& p : points_) {
    if (!out.empty() && out.back().size == p.size) out.pop_back();
    out.push_back(p);
  }
  for (std::size_t i = 1; i < out.size(); ++i) {
    out[i].duration = std::max(out[i].duration, out[i - 1].duration);
  }
  points_ = std::move(out);
}

std::size_t PerfProfile::min_size() const {
  RAILS_CHECK(!points_.empty());
  return points_.front().size;
}

std::size_t PerfProfile::max_size() const {
  RAILS_CHECK(!points_.empty());
  return points_.back().size;
}

SimDuration PerfProfile::estimate(std::size_t size) const {
  RAILS_CHECK_MSG(!points_.empty(), "estimate on an empty profile");
  if (points_.size() == 1) return points_[0].duration;

  // Locate the segment: the pair of consecutive samples bracketing `size`,
  // clamped to the first/last segment for extrapolation.
  auto hi = std::lower_bound(points_.begin(), points_.end(), size,
                             [](const SamplePoint& p, std::size_t s) { return p.size < s; });
  if (hi == points_.begin()) ++hi;
  if (hi == points_.end()) --hi;
  auto lo = hi - 1;

  const double dx = static_cast<double>(hi->size) - static_cast<double>(lo->size);
  const double dy = static_cast<double>(hi->duration) - static_cast<double>(lo->duration);
  const double slope = dx > 0 ? dy / dx : 0.0;
  const double est = static_cast<double>(lo->duration) +
                     slope * (static_cast<double>(size) - static_cast<double>(lo->size));
  // Extrapolating below the first sample must not go under 0.
  return std::max<SimDuration>(0, static_cast<SimDuration>(est));
}

std::size_t PerfProfile::max_bytes_within(SimDuration budget) const {
  RAILS_CHECK(!points_.empty());
  if (budget < estimate(0)) return 0;
  // Durations are monotone in size, so bisect on bytes. The upper bound
  // extrapolates past the last sample using its marginal bandwidth.
  std::size_t lo = 0;
  std::size_t hi = max_size();
  if (estimate(hi) < budget) {
    // Grow hi until the estimate exceeds the budget (or we hit 1 TiB).
    while (estimate(hi) < budget && hi < (std::size_t{1} << 40)) hi <<= 1;
  }
  if (estimate(hi) <= budget) return hi;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (estimate(mid) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

double PerfProfile::asymptotic_bandwidth() const {
  RAILS_CHECK(points_.size() >= 2);
  const auto& a = points_[points_.size() - 2];
  const auto& b = points_.back();
  const double dx = static_cast<double>(b.size - a.size);
  const double dy = static_cast<double>(b.duration - a.duration);
  if (dy <= 0.0) return 0.0;
  return dx / dy * 1e3;  // bytes per ns -> MB/s
}

SimDuration PerfProfile::latency() const { return estimate(0); }

void PerfProfile::save(std::ostream& os) const {
  os << "# rails perf profile v1: size_bytes duration_ns\n";
  for (const auto& p : points_) os << p.size << ' ' << p.duration << '\n';
}

PerfProfile PerfProfile::load(std::istream& is) {
  std::vector<SamplePoint> points;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    SamplePoint p;
    if (ls >> p.size >> p.duration) points.push_back(p);
  }
  return PerfProfile(std::move(points));
}

void PerfProfile::save_file(const std::string& path) const {
  std::ofstream os(path);
  RAILS_CHECK_MSG(os.good(), "cannot open profile file for writing");
  save(os);
}

PerfProfile PerfProfile::load_file(const std::string& path) {
  std::ifstream is(path);
  RAILS_CHECK_MSG(is.good(), "cannot open profile file for reading");
  return load(is);
}

}  // namespace rails::sampling
