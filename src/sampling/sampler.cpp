#include "sampling/sampler.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "fabric/fabric.hpp"

namespace rails::sampling {

namespace {

/// One-way duration of a single eager segment of `size` bytes, measured by
/// posting it through an otherwise idle fabric.
SimDuration measure_eager(fabric::Fabric& fab, std::size_t size) {
  bool arrived = false;
  SimTime arrival = 0;
  fab.set_rx_handler(1, [&](fabric::Segment&&) {
    arrived = true;
    arrival = fab.now();
  });
  const SimTime start = fab.now();
  fabric::Segment seg;
  seg.kind = fabric::SegKind::kEager;
  seg.src = 0;
  seg.dst = 1;
  seg.rail = 0;
  seg.payload.assign(size, 0xAB);
  fab.nic(0, 0).post(std::move(seg), start);
  fab.events().run_until([&] { return arrived; });
  RAILS_CHECK_MSG(arrived, "sampling segment was never delivered");
  return arrival - start;
}

/// Full rendezvous duration: RTS out, CTS back, then one DMA chunk — each
/// leg posted when the previous one lands, exactly like the engine protocol.
SimDuration measure_rendezvous(fabric::Fabric& fab, std::size_t size) {
  bool done = false;
  SimTime arrival = 0;

  fab.set_rx_handler(1, [&](fabric::Segment&& seg) {
    if (seg.kind == fabric::SegKind::kRts) {
      fabric::Segment cts;
      cts.kind = fabric::SegKind::kCts;
      cts.src = 1;
      cts.dst = 0;
      cts.rail = 0;
      fab.nic(1, 0).post(std::move(cts), fab.now());
    } else if (seg.kind == fabric::SegKind::kData) {
      done = true;
      arrival = fab.now();
    }
  });
  fab.set_rx_handler(0, [&](fabric::Segment&& seg) {
    if (seg.kind == fabric::SegKind::kCts) {
      fabric::Segment data;
      data.kind = fabric::SegKind::kData;
      data.src = 0;
      data.dst = 1;
      data.rail = 0;
      data.payload.assign(size, 0xCD);
      fab.nic(0, 0).post(std::move(data), fab.now());
    }
  });

  const SimTime start = fab.now();
  fabric::Segment rts;
  rts.kind = fabric::SegKind::kRts;
  rts.src = 0;
  rts.dst = 1;
  rts.rail = 0;
  rts.total_len = size;
  fab.nic(0, 0).post(std::move(rts), start);
  fab.events().run_until([&] { return done; });
  RAILS_CHECK_MSG(done, "sampling rendezvous never completed");
  return arrival - start;
}

}  // namespace

std::vector<std::size_t> sample_sizes(const SamplerConfig& config) {
  RAILS_CHECK(config.min_size >= 1 && config.max_size >= config.min_size);
  RAILS_CHECK(config.steps_per_octave >= 1);
  std::vector<std::size_t> sizes;
  const double factor = std::pow(2.0, 1.0 / config.steps_per_octave);
  double s = static_cast<double>(config.min_size);
  std::size_t last = 0;
  while (s <= static_cast<double>(config.max_size) * 1.0000001) {
    const auto size = static_cast<std::size_t>(std::llround(s));
    if (size != last) sizes.push_back(size);
    last = size;
    s *= factor;
  }
  if (sizes.empty() || sizes.back() != config.max_size) sizes.push_back(config.max_size);
  return sizes;
}

RailProfile sample_rail(const fabric::NetworkModelParams& params,
                        const SamplerConfig& config) {
  RailProfile rp;
  rp.name = params.name;
  rp.max_eager = params.max_eager;

  const fabric::NetworkModel model(params);
  const auto sizes = sample_sizes(config);

  for (std::size_t size : sizes) {
    // A scratch fabric per (protocol, size) point keeps every measurement
    // cold-start clean: no residual NIC busy time from the previous sample.
    if (size <= params.max_eager) {
      SampleSet reps;
      for (unsigned r = 0; r < config.repetitions; ++r) {
        fabric::Fabric fab({2, {params}});
        reps.add(static_cast<double>(measure_eager(fab, size)));
      }
      rp.eager.add(size, static_cast<SimDuration>(reps.median()));
      // The host share is not observable from arrival times alone; it comes
      // from the same place a real driver gets it (the post's completion),
      // modeled here via the NIC preview.
      rp.eager_host.add(size, model.eager(size).host);
    }
    {
      SampleSet reps;
      for (unsigned r = 0; r < config.repetitions; ++r) {
        fabric::Fabric fab({2, {params}});
        reps.add(static_cast<double>(measure_rendezvous(fab, size)));
      }
      rp.rendezvous.add(size, static_cast<SimDuration>(reps.median()));
      rp.rdv_chunk.add(size, model.rendezvous(size, /*include_handshake=*/false).total);
    }
  }

  // Derive the protocol switch point from the measured curves (§III-C:
  // "Such sampling measurements can also be used to determine other
  // parameters such as rendezvous threshold").
  rp.rdv_threshold = rp.max_eager;
  for (std::size_t size : sizes) {
    if (size > rp.max_eager) break;
    if (rp.rendezvous.estimate(size) < rp.eager.estimate(size)) {
      rp.rdv_threshold = size;
      break;
    }
  }

  RAILS_INFO("sampler", "%s: %zu sizes, rdv threshold %zu B, asymptotic %.0f MB/s",
             rp.name.c_str(), sizes.size(), rp.rdv_threshold,
             rp.rendezvous.asymptotic_bandwidth());
  return rp;
}

std::vector<RailProfile> sample_rails(const std::vector<fabric::NetworkModelParams>& rails,
                                      const SamplerConfig& config) {
  std::vector<RailProfile> out;
  out.reserve(rails.size());
  for (const auto& params : rails) out.push_back(sample_rail(params, config));
  return out;
}

void RailProfile::save_file(const std::string& path) const {
  std::ofstream os(path);
  RAILS_CHECK_MSG(os.good(), "cannot open rail profile file for writing");
  os << "name " << name << "\n";
  os << "rdv_threshold " << rdv_threshold << "\n";
  os << "max_eager " << max_eager << "\n";
  const std::pair<const char*, const PerfProfile*> sections[] = {
      {"eager", &eager},
      {"eager_host", &eager_host},
      {"rendezvous", &rendezvous},
      {"rdv_chunk", &rdv_chunk},
  };
  for (const auto& [label, profile] : sections) {
    os << "section " << label << " " << profile->point_count() << "\n";
    profile->save(os);
  }
}

RailProfile RailProfile::load_file(const std::string& path) {
  std::ifstream is(path);
  RAILS_CHECK_MSG(is.good(), "cannot open rail profile file for reading");
  RailProfile rp;
  std::string line;
  PerfProfile* current = nullptr;
  std::vector<SamplePoint> pending;
  auto flush = [&] {
    if (current != nullptr) *current = PerfProfile(std::move(pending));
    pending.clear();
  };
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "name") {
      ls >> rp.name;
    } else if (key == "rdv_threshold") {
      ls >> rp.rdv_threshold;
    } else if (key == "max_eager") {
      ls >> rp.max_eager;
    } else if (key == "section") {
      flush();
      std::string label;
      ls >> label;
      if (label == "eager") current = &rp.eager;
      else if (label == "eager_host") current = &rp.eager_host;
      else if (label == "rendezvous") current = &rp.rendezvous;
      else if (label == "rdv_chunk") current = &rp.rdv_chunk;
      else current = nullptr;
    } else {
      SamplePoint p;
      std::istringstream ps(line);
      if (ps >> p.size >> p.duration) pending.push_back(p);
    }
  }
  flush();
  return rp;
}

}  // namespace rails::sampling
