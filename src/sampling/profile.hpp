// Sampled performance profile of one rail under one protocol.
//
// This is the data structure behind §III-C: "the sampled sizes that are the
// closest to the message size are retrieved ... the estimated transfer time
// is computed by the mean of a linear interpolation". A profile is a sorted
// table of (size, duration) points, typically at powers of two, measured by
// the Sampler at engine initialisation (or loaded from a previous run's
// file, like NewMadeleine's on-disk sampling cache).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rails::sampling {

struct SamplePoint {
  std::size_t size = 0;
  SimDuration duration = 0;
};

class PerfProfile {
 public:
  PerfProfile() = default;
  explicit PerfProfile(std::vector<SamplePoint> points);

  /// Adds one measurement; keeps the table sorted and duration-monotone.
  void add(std::size_t size, SimDuration duration);

  bool empty() const { return points_.empty(); }
  std::size_t point_count() const { return points_.size(); }
  const std::vector<SamplePoint>& points() const { return points_; }

  std::size_t min_size() const;
  std::size_t max_size() const;

  /// Estimated duration for an arbitrary size: linear interpolation between
  /// the two bracketing samples; linear extrapolation beyond either end
  /// using the nearest segment's marginal cost.
  SimDuration estimate(std::size_t size) const;

  /// Inverse query: the largest byte count whose estimated duration fits in
  /// `budget`. Returns 0 when even the smallest message does not fit. This
  /// is what the equal-finish split solver bisects on.
  std::size_t max_bytes_within(SimDuration budget) const;

  /// Asymptotic bandwidth (MB/s) from the last profile segment — the number
  /// an OpenMPI-style fixed-ratio splitter would use (§II-A).
  double asymptotic_bandwidth() const;

  /// Zero-size intercept of the first segment: the effective latency.
  SimDuration latency() const;

  // -- persistence (text format, one "size duration_ns" pair per line) ----
  void save(std::ostream& os) const;
  static PerfProfile load(std::istream& is);
  void save_file(const std::string& path) const;
  static PerfProfile load_file(const std::string& path);

 private:
  void normalize();
  std::vector<SamplePoint> points_;  // sorted by size; durations non-decreasing
};

}  // namespace rails::sampling
