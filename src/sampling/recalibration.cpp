#include "sampling/recalibration.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"
#include "fabric/nic.hpp"

namespace rails::sampling {

const char* to_string(TrustState state) {
  switch (state) {
    case TrustState::kTrusted:
      return "TRUSTED";
    case TrustState::kSuspect:
      return "SUSPECT";
    case TrustState::kUntrusted:
      return "UNTRUSTED";
    case TrustState::kResampling:
      return "RESAMPLING";
  }
  return "?";
}

Recalibrator::Recalibrator(Estimator* estimator, RecalibrationConfig config)
    : estimator_(estimator), config_(std::move(config)) {
  RAILS_CHECK(estimator_ != nullptr);
  RAILS_CHECK_MSG(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                  "recal_alpha must be in (0, 1]");
  RAILS_CHECK_MSG(config_.window > 0, "recal_window must be positive");
  RAILS_CHECK_MSG(config_.drift_threshold > config_.recover_threshold,
                  "drift threshold must exceed the recover threshold");
  rails_.resize(estimator_->rail_count());
  for (auto& pr : rails_) pr.window.assign(config_.window, 0.0);
  budget_left_ = config_.resample_budget;
}

void Recalibrator::reset_residuals(PerRail& pr) {
  // Predictions just changed (correction or fresh profile): every buffered
  // residual was measured against the old tables and is meaningless now.
  pr.ewma = 0;
  pr.ewma_seeded = false;
  pr.window_pos = 0;
  pr.window_count = 0;
  pr.samples = 0;
  pr.drift_streak = 0;
  pr.recover_streak = 0;
}

void Recalibrator::change_state(PerRail& pr, TrustState next, Outcome& out) {
  if (pr.state == next) return;
  const bool demotion = static_cast<int>(next) > static_cast<int>(pr.state);
  pr.state = next;
  pr.drift_streak = 0;
  pr.recover_streak = 0;
  out.state_changed = true;
  if (next == TrustState::kResampling) return;  // transitional, not a verdict
  if (demotion) {
    out.demoted = true;
    ++stats_.demotions;
  } else {
    out.promoted = true;
    ++stats_.promotions;
  }
}

bool Recalibrator::try_correct(RailId rail, PerRail& pr, SimTime now, Outcome& out) {
  if (now - pr.last_correction < config_.correction_holdoff) return false;
  if (pr.corrections_since_suspect >= config_.max_corrections) return false;
  // actual = predicted / (1 - bias), so dividing the profile durations by
  // (1 - bias) — i.e. multiplying the scale — re-centres the residuals.
  const double bias = std::clamp(pr.ewma, -0.9, 0.9);
  const double current = estimator_->profile_scale(rail);
  const double corrected =
      std::clamp(current / (1.0 - bias), config_.min_scale, config_.max_scale);
  if (std::abs(corrected - current) < 1e-9) return false;  // clamped to a no-op
  estimator_->set_profile_scale(rail, corrected);
  pr.last_correction = now;
  ++pr.corrections;
  ++pr.corrections_since_suspect;
  ++stats_.corrections;
  reset_residuals(pr);
  out.scale_corrected = true;
  return true;
}

void Recalibrator::request_resample(PerRail& pr, Outcome& out) {
  if (budget_left_ == 0) return;
  pr.resample_wanted = true;
  out.resample_requested = true;
}

double Recalibrator::window_p95(const PerRail& pr) {
  if (pr.window_count == 0) return 0;
  std::vector<double> sorted(pr.window.begin(),
                             pr.window.begin() + static_cast<std::ptrdiff_t>(pr.window_count));
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      0.95 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

Recalibrator::Outcome Recalibrator::observe(RailId rail, SimDuration predicted,
                                            SimDuration actual, SimTime now) {
  RAILS_CHECK(rail < rails_.size());
  PerRail& pr = rails_[rail];
  Outcome out;
  out.state = pr.state;
  if (!config_.enabled) return out;

  const double denom = actual > 0 ? static_cast<double>(actual) : 1.0;
  const double bias = static_cast<double>(actual - predicted) / denom;
  pr.ewma = pr.ewma_seeded ? config_.ewma_alpha * bias + (1.0 - config_.ewma_alpha) * pr.ewma
                           : bias;
  pr.ewma_seeded = true;
  pr.window[pr.window_pos] = std::abs(bias);
  pr.window_pos = (pr.window_pos + 1) % pr.window.size();
  pr.window_count = std::min(pr.window_count + 1, pr.window.size());
  ++pr.samples;
  ++stats_.observations;
  if (pr.samples < config_.min_samples) return out;

  const double drift = std::abs(pr.ewma);
  if (drift > config_.drift_threshold) {
    ++pr.drift_streak;
    pr.recover_streak = 0;
  } else if (drift < config_.recover_threshold) {
    ++pr.recover_streak;
    pr.drift_streak = 0;
  } else {
    // Dead band: hysteresis. Neither streak advances, so a residual stream
    // hovering between the thresholds can never flip the state.
    pr.drift_streak = 0;
    pr.recover_streak = 0;
  }

  switch (pr.state) {
    case TrustState::kTrusted:
      if (pr.drift_streak >= config_.drift_patience) {
        change_state(pr, TrustState::kSuspect, out);
        pr.corrections_since_suspect = 0;
        try_correct(rail, pr, now, out);
      }
      break;
    case TrustState::kSuspect: {
      const bool window_full = pr.window_count >= pr.window.size();
      const bool still_bad = pr.drift_streak >= config_.drift_patience ||
                             (window_full && window_p95(pr) > config_.untrusted_p95);
      if (still_bad) {
        if (!try_correct(rail, pr, now, out)) {
          // Corrections are exhausted (or clamped) and residuals are still
          // out of band: the profile's *shape* changed, not just its scale.
          change_state(pr, TrustState::kUntrusted, out);
          request_resample(pr, out);
        }
      } else if (pr.recover_streak >= config_.recover_patience) {
        change_state(pr, TrustState::kTrusted, out);
        pr.corrections_since_suspect = 0;
      }
      break;
    }
    case TrustState::kUntrusted:
      // Keep asking until the sweep runs (the engine's event dedups).
      request_resample(pr, out);
      if (pr.recover_streak >= config_.recover_patience)
        change_state(pr, TrustState::kSuspect, out);
      break;
    case TrustState::kResampling:
      break;  // sweep in flight; complete_resample() decides
  }
  out.state = pr.state;
  return out;
}

TrustState Recalibrator::trust(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return rails_[rail].state;
}

double Recalibrator::cost_penalty(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return rails_[rail].state == TrustState::kSuspect ? config_.suspect_penalty : 1.0;
}

bool Recalibrator::compromised(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return rails_[rail].state == TrustState::kUntrusted ||
         rails_[rail].state == TrustState::kResampling;
}

double Recalibrator::drift_score(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return rails_[rail].ewma_seeded ? std::abs(rails_[rail].ewma) : 0.0;
}

double Recalibrator::signed_drift(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return rails_[rail].ewma_seeded ? rails_[rail].ewma : 0.0;
}

double Recalibrator::recent_p95(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return window_p95(rails_[rail]);
}

double Recalibrator::scale(RailId rail) const { return estimator_->profile_scale(rail); }

std::string Recalibrator::status(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  const PerRail& pr = rails_[rail];
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "rail %u: %-10s scale %.3f drift %.3f p95 %.3f corrections %llu "
                "resamples %llu",
                rail, to_string(pr.state), scale(rail), drift_score(rail),
                window_p95(pr), static_cast<unsigned long long>(pr.corrections),
                static_cast<unsigned long long>(pr.resamples));
  return buf;
}

bool Recalibrator::resample_due(RailId rail, SimTime now) const {
  RAILS_CHECK(rail < rails_.size());
  const PerRail& pr = rails_[rail];
  return config_.enabled && pr.resample_wanted && pr.state != TrustState::kResampling &&
         budget_left_ > 0 && now - pr.last_resample >= config_.resample_interval;
}

SimTime Recalibrator::earliest_resample(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  const PerRail& pr = rails_[rail];
  if (pr.last_resample < 0) return 0;  // never swept: due immediately
  return pr.last_resample + config_.resample_interval;
}

void Recalibrator::begin_resample(RailId rail, SimTime now) {
  RAILS_CHECK_MSG(resample_due(rail, now), "begin_resample without a due sweep");
  PerRail& pr = rails_[rail];
  pr.resample_wanted = false;
  pr.state = TrustState::kResampling;
  --budget_left_;
}

void Recalibrator::complete_resample(RailId rail, RailProfile fresh, SimTime now) {
  RAILS_CHECK(rail < rails_.size());
  PerRail& pr = rails_[rail];
  estimator_->replace_profile(rail, std::move(fresh));
  // Fresh numbers, but trust is re-earned, never granted back outright.
  pr.state = TrustState::kSuspect;
  pr.corrections_since_suspect = 0;
  pr.last_resample = now;
  ++pr.resamples;
  ++stats_.resamples;
  reset_residuals(pr);
}

void Recalibrator::force_resample(RailId rail) {
  RAILS_CHECK(rail < rails_.size());
  rails_[rail].resample_wanted = true;
}

RailProfile resample_rail_via_preview(const fabric::SimNic& nic, SimTime now,
                                      const SamplerConfig& config) {
  const fabric::NetworkModelParams& params = nic.model().params();
  RailProfile rp;
  rp.name = params.name;
  rp.max_eager = params.max_eager;
  const SimTime start = std::max(now, nic.busy_until());

  // Both control legs of a rendezvous ride the eager path with a header-only
  // payload; preview one to price the live handshake cost.
  fabric::Segment ctrl;
  ctrl.kind = fabric::SegKind::kRts;
  ctrl.rail = nic.rail();
  const auto ctrl_times = nic.preview(ctrl, start);
  const SimDuration ctrl_one_way = ctrl_times.deliver_at - ctrl_times.host_start;

  for (const std::size_t size : sample_sizes(config)) {
    if (size <= params.max_eager) {
      fabric::Segment seg;
      seg.kind = fabric::SegKind::kEager;
      seg.rail = nic.rail();
      seg.payload.assign(size, 0);
      const auto t = nic.preview(seg, start);
      rp.eager.add(size, t.deliver_at - t.host_start);
      rp.eager_host.add(size, t.host_end - t.host_start);
    }
    fabric::Segment data;
    data.kind = fabric::SegKind::kData;
    data.rail = nic.rail();
    data.payload.assign(size, 0);
    const auto t = nic.preview(data, start);
    const SimDuration chunk = t.deliver_at - t.host_start;
    rp.rdv_chunk.add(size, chunk);
    rp.rendezvous.add(size, chunk + 2 * ctrl_one_way);
  }

  // Re-derive the eager/rendezvous switch from the measured crossover, the
  // same rule the init-time sampler applies.
  rp.rdv_threshold = rp.max_eager;
  for (const std::size_t size : sample_sizes(config)) {
    if (size > rp.max_eager) break;
    if (rp.rendezvous.estimate(size) < rp.eager.estimate(size)) {
      rp.rdv_threshold = size;
      break;
    }
  }
  return rp;
}

}  // namespace rails::sampling
