// Initialisation-time network sampling (§III-C).
//
// "Instead of simply relying on the usual bandwidth and latency parameters
// provided by the vendors, an accurate profile of each NIC is performed at
// the initialization of NewMadeleine." The sampler drives real transfers
// through a private two-node fabric — one per rail — at power-of-two sizes
// and records observed one-way durations for both protocols. It also derives
// the eager/rendezvous switch point per rail from the measured crossover.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fabric/network_model.hpp"
#include "sampling/profile.hpp"

namespace rails::sampling {

/// Everything the engine knows about one rail after sampling.
struct RailProfile {
  std::string name;
  PerfProfile eager;          ///< one-way duration of an eager segment
  PerfProfile eager_host;     ///< core-occupying part of an eager post
  PerfProfile rendezvous;     ///< full rendezvous duration incl. handshake
  PerfProfile rdv_chunk;      ///< duration of one DMA chunk (no handshake)
  std::size_t rdv_threshold = 0;  ///< smallest size where rendezvous wins
  std::size_t max_eager = 0;      ///< hardware cap on an eager segment

  // -- persistence -------------------------------------------------------
  void save_file(const std::string& path) const;
  static RailProfile load_file(const std::string& path);
};

struct SamplerConfig {
  std::size_t min_size = 1;
  std::size_t max_size = 8u * 1024u * 1024u;
  /// Number of sampled sizes per power-of-two decade; 1 keeps exactly the
  /// powers of two the paper uses, larger values refine the grid.
  unsigned steps_per_octave = 1;
  /// Repetitions per size; the median is recorded (the DES is deterministic,
  /// so 1 suffices there, but the knob matters for the threaded backend and
  /// for the sampling-granularity ablation).
  unsigned repetitions = 1;
};

/// Samples one network technology by running segments through a scratch
/// two-node fabric built from `params`.
RailProfile sample_rail(const fabric::NetworkModelParams& params,
                        const SamplerConfig& config = {});

/// Samples every rail of a cluster description.
std::vector<RailProfile> sample_rails(const std::vector<fabric::NetworkModelParams>& rails,
                                      const SamplerConfig& config = {});

/// The ladder of sizes a config produces (exposed for tests and benches).
std::vector<std::size_t> sample_sizes(const SamplerConfig& config);

}  // namespace rails::sampling
