#include "fabric/network_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rails::fabric {

SimDuration NetworkModel::pio_time(std::size_t size) const {
  const std::size_t fast = std::min(size, p_.pio_cache_limit);
  const std::size_t slow = size - fast;
  return wire_time(fast, p_.pio_bw_mbps) + wire_time(slow, p_.pio_bw_large_mbps);
}

std::size_t NetworkModel::packet_count(std::size_t size) const {
  if (size == 0) return 1;  // a zero-byte message still sends a header packet
  return (size + p_.mtu - 1) / p_.mtu;
}

TransferTiming NetworkModel::eager(std::size_t size) const {
  TransferTiming t;
  const SimDuration copy = pio_time(size);
  const SimDuration pkts =
      static_cast<SimDuration>(static_cast<double>(packet_count(size)) * p_.per_packet_us * 1e3);
  t.host = usec(p_.post_us) + copy + pkts;
  t.nic = t.host;  // PIO injection holds the NIC port for the duration of the copy
  t.total = t.host + usec(p_.wire_latency_us);
  return t;
}

TransferTiming NetworkModel::rendezvous(std::size_t size, bool include_handshake) const {
  TransferTiming t;
  t.host = usec(p_.post_us + p_.dma_setup_us);
  const SimDuration stream = wire_time(size, p_.dma_bw_mbps);
  t.nic = t.host + stream;
  t.total = t.nic + usec(p_.wire_latency_us);
  if (include_handshake) t.total += usec(p_.rdv_handshake_us);
  return t;
}

SimDuration NetworkModel::duration(std::size_t size, Protocol proto) const {
  return proto == Protocol::kEager ? eager(size).total : rendezvous(size).total;
}

SimDuration NetworkModel::best_duration(std::size_t size) const {
  if (size > p_.max_eager) return rendezvous(size).total;
  return std::min(eager(size).total, rendezvous(size).total);
}

std::size_t NetworkModel::natural_rdv_threshold() const {
  // Cap the scan: some synthetic models (affine) declare an unbounded eager
  // path, in which case 1 GiB stands in for "never switches".
  const std::size_t cap = std::min(p_.max_eager, std::size_t{1} << 30);
  std::size_t size = 1;
  for (; size <= cap && size != 0; size <<= 1) {
    if (rendezvous(size).total < eager(size).total) return size;
  }
  return cap;
}

double NetworkModel::bandwidth_at(std::size_t size) const {
  return mbps(size, best_duration(size));
}

}  // namespace rails::fabric
