// Simulated CPU cores.
//
// Cores are resources with busy-until times on the virtual clock, exactly
// like NICs. This is how the DES reproduces the paper's central small-message
// observation: PIO copies submitted from one core serialise (Fig. 4a), while
// copies offloaded to an idle core run in parallel at a synchronisation cost
// TO (Fig. 4c / eq. 1).
#pragma once

#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/topology.hpp"
#include "common/types.hpp"

namespace rails::fabric {

class SimCores {
 public:
  explicit SimCores(const MachineTopology& topo = MachineTopology::opteron_2x2())
      : topo_(topo), busy_until_(topo.core_count(), 0) {}

  const MachineTopology& topology() const { return topo_; }
  std::uint32_t count() const { return static_cast<std::uint32_t>(busy_until_.size()); }

  SimTime busy_until(CoreId core) const {
    RAILS_CHECK(core < count());
    return busy_until_[core];
  }

  bool idle(CoreId core, SimTime now) const { return busy_until(core) <= now; }

  /// Number of cores idle at `now`, excluding `except` if given.
  std::uint32_t idle_count(SimTime now, std::optional<CoreId> except = std::nullopt) const;

  /// Occupies `core` for `duration` starting no earlier than `start`.
  /// Returns the time the core becomes free again.
  SimTime occupy(CoreId core, SimTime start, SimDuration duration) {
    RAILS_CHECK(core < count());
    const SimTime begin = std::max(start, busy_until_[core]);
    busy_until_[core] = begin + duration;
    return busy_until_[core];
  }

  /// Earliest-idle core other than `except`, preferring cores on the same
  /// socket as `near` (cheaper signalling), breaking ties by lowest id.
  CoreId pick_offload_core(SimTime now, CoreId near, std::optional<CoreId> except) const;

  void reset() { std::fill(busy_until_.begin(), busy_until_.end(), 0); }

 private:
  MachineTopology topo_;
  std::vector<SimTime> busy_until_;
};

}  // namespace rails::fabric
