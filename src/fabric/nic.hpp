// Simulated network interface card.
//
// A SimNic owns one injection port on one rail. It tracks its busy-until
// time on the virtual clock — the quantity the paper's strategy reasons
// about (Fig. 2) — and turns posted segments into delivery events using its
// NetworkModel.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fabric/event_queue.hpp"
#include "fabric/fault.hpp"
#include "fabric/network_model.hpp"
#include "fabric/segment.hpp"

namespace rails::fabric {

class SimNic {
 public:
  using DeliverFn = std::function<void(Segment&&)>;
  /// Completion-queue error analogue: invoked (at the time delivery would
  /// have happened) with a segment that was dropped by a down link.
  using TxErrorFn = std::function<void(Segment&&)>;
  /// Local completion analogue: invoked when a segment reached the far end.
  using TxCompleteFn = std::function<void(const Segment&)>;

  SimNic(EventQueue* events, NetworkModel model, NodeId node, RailId rail)
      : events_(events), model_(std::move(model)), node_(node), rail_(rail) {
    set_fault_seed(0);
  }

  const NetworkModel& model() const { return model_; }
  NodeId node() const { return node_; }
  RailId rail() const { return rail_; }

  SimTime busy_until() const { return busy_until_; }
  bool idle(SimTime now) const { return busy_until_ <= now; }

  /// Receive-port admission (cut-through): a segment arriving at `arrival`
  /// is delivered at max(arrival, rx_busy_until); the port then stays busy
  /// for the segment's wire occupancy. A single steady stream is never
  /// delayed (its arrivals are already spaced by at least the occupancy),
  /// but converging flows — incast, gather — serialise here, which is what
  /// makes multirail receivers worth having.
  SimTime admit_rx(SimTime arrival, std::size_t payload_bytes);
  SimTime rx_busy_until() const { return rx_busy_until_; }

  /// Routing hook, installed by the Fabric.
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Error/completion hooks, installed by the owning engine (both optional).
  void set_tx_error(TxErrorFn fn) { tx_error_ = std::move(fn); }
  void set_tx_complete(TxCompleteFn fn) { tx_complete_ = std::move(fn); }

  // -- fault injection ---------------------------------------------------

  /// Arms a fault on this NIC (see fabric/fault.hpp for the semantics).
  /// Faults accumulate; windows may overlap.
  void inject_fault(const FaultSpec& fault);
  void clear_faults() { faults_.clear(); }
  const std::vector<FaultSpec>& faults() const { return faults_; }

  /// Link state at `t` — what a local driver can observe (netdev carrier).
  /// Degrade/latency faults keep the link nominally up.
  bool link_up(SimTime t) const { return !down_overlaps(t, t); }

  /// True when any down window intersects [begin, end] — the predicate the
  /// delivery path uses to drop in-flight segments.
  bool down_overlaps(SimTime begin, SimTime end) const;

  /// Segments dropped by down windows since the last reset_stats().
  std::uint64_t segments_dropped() const { return segments_dropped_; }

  /// Reseeds the data-plane fault RNG. Fates stay deterministic for a given
  /// seed; the node/rail identity is mixed in so sibling NICs sharing one
  /// seed still draw independent streams.
  void set_fault_seed(std::uint64_t seed) {
    fault_rng_ = Xoshiro256(seed ^ (0x9e3779b97f4a7c15ULL + (std::uint64_t{node_} << 20) +
                                    (std::uint64_t{rail_} << 4)));
  }

  // Data-plane fault effects applied since the last reset_stats(). Silent
  // drops are *not* in segments_dropped(): the sender saw a successful
  // completion, which is the whole point.
  std::uint64_t segments_silently_dropped() const { return segments_silently_dropped_; }
  std::uint64_t segments_corrupted() const { return segments_corrupted_; }
  std::uint64_t segments_duplicated() const { return segments_duplicated_; }
  std::uint64_t segments_reordered() const { return segments_reordered_; }

  /// Runtime performance degradation: every transfer on this NIC takes
  /// `scale` times longer than the model predicts (contention, cable
  /// renegotiation, ...). Models §II-A's "misknowledge of networks'
  /// workload": sampled profiles taken before the degradation go stale.
  void set_perf_scale(double scale) {
    RAILS_CHECK_MSG(scale >= 1.0, "perf scale < 1 would beat the hardware model");
    perf_scale_ = scale;
  }
  double perf_scale() const { return perf_scale_; }

  struct PostTimes {
    SimTime host_start = 0;  ///< when the post actually began (NIC port free)
    SimTime host_end = 0;    ///< submitting core released
    SimTime nic_end = 0;     ///< injection port released
    SimTime deliver_at = 0;  ///< segment arrives at the destination
  };

  /// Posts a segment. `earliest` is when the submitting core is ready to
  /// start (the caller charges that core until `host_end`). Posts to a busy
  /// port queue behind the port (FIFO per NIC), exactly like a real doorbell.
  PostTimes post(Segment seg, SimTime earliest);

  /// Timing a post *would* get if issued at `earliest` — used by strategies
  /// to predict without committing.
  PostTimes preview(const Segment& seg, SimTime earliest) const;

  // -- statistics -------------------------------------------------------
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t payload_bytes_sent() const { return payload_bytes_sent_; }

  void reset_stats() {
    segments_sent_ = 0;
    bytes_sent_ = 0;
    payload_bytes_sent_ = 0;
    segments_dropped_ = 0;
    segments_silently_dropped_ = 0;
    segments_corrupted_ = 0;
    segments_duplicated_ = 0;
    segments_reordered_ = 0;
  }

 private:
  PostTimes compute_times(const Segment& seg, SimTime earliest) const;

  /// Per-segment data-plane fate, drawn from fault_rng_ inside post() only
  /// (preview() must stay RNG-pure or predictions would perturb outcomes).
  struct WireFate {
    bool silent_drop = false;
    bool duplicate = false;
    SimDuration reorder_slip = 0;
  };
  WireFate draw_fate(Segment& seg, SimTime begin, SimTime end);

  /// Combined slowdown of active kDegrade faults for a transfer starting at `t`.
  double fault_scale_at(SimTime t) const;
  /// Summed delivery penalty of active kLatency faults at `t`.
  SimDuration fault_latency_at(SimTime t) const;

  EventQueue* events_;
  NetworkModel model_;
  NodeId node_;
  RailId rail_;
  SimTime busy_until_ = 0;
  SimTime rx_busy_until_ = 0;
  double perf_scale_ = 1.0;
  DeliverFn deliver_;
  TxErrorFn tx_error_;
  TxCompleteFn tx_complete_;
  std::vector<FaultSpec> faults_;

  std::uint64_t segments_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t payload_bytes_sent_ = 0;
  std::uint64_t segments_dropped_ = 0;
  std::uint64_t segments_silently_dropped_ = 0;
  std::uint64_t segments_corrupted_ = 0;
  std::uint64_t segments_duplicated_ = 0;
  std::uint64_t segments_reordered_ = 0;

  Xoshiro256 fault_rng_{0x9e3779b97f4a7c15ULL};
};

}  // namespace rails::fabric
