// Discrete-event simulation core.
//
// Every hardware element of the virtual cluster (NIC injection, wire
// delivery, DMA completion, core release) is an event on this queue. The
// queue is strictly deterministic: ties on the timestamp are broken by
// insertion sequence, so a given workload always replays identically.
//
// Scheduling an event is allocation-free in steady state: handlers live in
// a recycled slot arena with 120 bytes of inline storage (sized for the
// largest hot-path closure, SimNic's delivery lambda), and the heap itself
// holds only trivially-copyable {time, seq, slot} entries. Oversized
// handlers spill to a heap allocation, counted by handler_spills() so a
// regression test can pin the hot path at zero.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rails::fabric {

/// Move-only callable with small-buffer storage. Unlike std::function it
/// accepts move-only closures and inlines anything up to kInlineBytes
/// (std::function on libstdc++ spills non-trivial captures beyond 16 B).
class InlineHandler {
 public:
  static constexpr std::size_t kInlineBytes = 120;

  InlineHandler() = default;
  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;

  InlineHandler(InlineHandler&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }
  InlineHandler& operator=(InlineHandler&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }
  ~InlineHandler() { reset(); }

  /// Installs `fn`. Returns true if it fit inline, false if it spilled to
  /// the heap (the caller counts spills).
  template <typename F>
  bool emplace(F&& fn) {
    using D = std::decay_t<F>;
    reset();
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
      return true;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kBoxedOps<D>;
      return false;
    }
  }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kBoxedOps = {
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  template <typename F>
  void at(SimTime t, F&& fn) {
    RAILS_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
    const std::uint32_t slot = acquire_slot();
    if (!slots_[slot].emplace(std::forward<F>(fn))) ++handler_spills_;
    heap_.push(Entry{t, next_seq_++, slot});
  }

  /// Schedules `fn` after `d` nanoseconds of virtual time.
  template <typename F>
  void after(SimDuration d, F&& fn) {
    at(now_ + d, std::forward<F>(fn));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed since construction. Deterministic for a given
  /// workload (same property as the clock), so benchmark harnesses can report
  /// simulated-events counts that are stable across hosts.
  std::uint64_t processed() const { return processed_; }

  /// Handlers that exceeded InlineHandler::kInlineBytes and heap-allocated.
  /// Zero in steady state on the hot path; pinned by test.
  std::uint64_t handler_spills() const { return handler_spills_; }

  /// Runs the earliest event. Returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    const Entry ev = heap_.top();
    heap_.pop();
    RAILS_CHECK(ev.time >= now_);
    now_ = ev.time;
    ++processed_;
    // Move the handler out and retire the slot BEFORE invoking: the handler
    // may re-enter at(), growing the slot arena and invalidating references.
    InlineHandler fn = std::move(slots_[ev.slot]);
    free_slots_.push_back(ev.slot);
    fn();
    return true;
  }

  /// Drains the queue. `max_events` guards against runaway self-scheduling.
  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    RAILS_CHECK_MSG(heap_.empty() || n < max_events, "event budget exhausted");
    return n;
  }

  /// Runs events until `pred()` becomes true or the queue drains. Returns
  /// whether the predicate was satisfied.
  bool run_until(const std::function<bool()>& pred) {
    while (!pred()) {
      if (!step()) return pred();
    }
    return true;
  }

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_to(SimTime t) {
    while (!heap_.empty() && heap_.top().time <= t) step();
    RAILS_CHECK(t >= now_);
    now_ = t;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    free_slots_.reserve(slots_.capacity());
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<InlineHandler> slots_;
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t handler_spills_ = 0;
};

}  // namespace rails::fabric
