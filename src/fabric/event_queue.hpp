// Discrete-event simulation core.
//
// Every hardware element of the virtual cluster (NIC injection, wire
// delivery, hop forwarding, DMA completion, core release) is an event on
// this queue. The queue is strictly deterministic: ties on the timestamp
// are broken by insertion sequence, so a given workload always replays
// identically.
//
// Scheduling an event is allocation-free in steady state: handlers live in
// a recycled slot arena with 120 bytes of inline storage (sized for the
// largest hot-path closure, SimNic's delivery lambda), and the heaps
// themselves hold only trivially-copyable {time, seq, slot} entries.
// Oversized handlers spill to a heap allocation, counted by
// handler_spills() so a regression test can pin the hot path at zero.
//
// Sharding (PR 10): a 256-node world keeps 10^5..10^6 events in flight,
// and one monolithic binary heap turns every push/pop into a cache-miss
// walk over the whole set. configure_shards(n, horizon) splits the queue
// into per-node partitions, each a 4-ary min-heap (shallower and
// cache-line friendly), merged through a small indexed heap of shard heads
// with O(log n_shards) decrease-key. Execution always pops the global
// (time, seq) minimum — the merge is exact, so the sharded run is
// bit-identical to the single-queue run (pinned by test_topo) — but while
// one shard holds the minimum the scheduler stays inside it and never
// touches the index. The conservative-PDES lookahead argument makes those
// runs long: a cross-shard event can only land >= `horizon` (the minimum
// link latency) in the future, so each shard owns the clock for at least a
// horizon of virtual time before control must leave it. shard_switches()
// exposes how often it actually does.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rails::fabric {

/// Move-only callable with small-buffer storage. Unlike std::function it
/// accepts move-only closures and inlines anything up to kInlineBytes
/// (std::function on libstdc++ spills non-trivial captures beyond 16 B).
class InlineHandler {
 public:
  static constexpr std::size_t kInlineBytes = 120;

  InlineHandler() = default;
  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;

  InlineHandler(InlineHandler&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }
  InlineHandler& operator=(InlineHandler&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }
  ~InlineHandler() { reset(); }

  /// Installs `fn`. Returns true if it fit inline, false if it spilled to
  /// the heap (the caller counts spills).
  template <typename F>
  bool emplace(F&& fn) {
    using D = std::decay_t<F>;
    reset();
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
      return true;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kBoxedOps<D>;
      return false;
    }
  }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kBoxedOps = {
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  EventQueue() { shards_.emplace_back(); }

  SimTime now() const { return now_; }

  /// Partitions the queue into `shards` per-node heaps merged exactly (see
  /// the header comment). `horizon` is the conservative lookahead — the
  /// minimum cross-shard event distance, i.e. the fabric's minimum link
  /// latency — recorded for observability; correctness never depends on it
  /// because the merge is exact. Only legal while the queue is empty (the
  /// fabric calls this once at construction). shards = 1 restores the
  /// classic single-queue layout.
  void configure_shards(std::uint32_t shards, SimDuration horizon) {
    RAILS_CHECK(shards >= 1);
    RAILS_CHECK_MSG(pending_ == 0, "cannot reshard a queue with events in flight");
    shards_.clear();
    shards_.resize(shards);
    index_.clear();
    cur_ = 0;
    horizon_ = horizon;
  }

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  SimDuration horizon() const { return horizon_; }
  /// Times execution had to leave the current shard for another one. The
  /// sharding wins when this is small relative to processed().
  std::uint64_t shard_switches() const { return shard_switches_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now) on the shard
  /// currently executing — self-scheduled work (NIC completions, engine
  /// timers) stays home without the caller naming a node.
  template <typename F>
  void at(SimTime t, F&& fn) {
    schedule(t, cur_, std::forward<F>(fn));
  }

  /// Schedules `fn` at `t` with affinity to `node` (shard = node mod
  /// shard_count). Purely a locality hint: any placement pops in the same
  /// global order. The fabric uses it to land deliveries and hop
  /// forwarding on the destination's shard.
  template <typename F>
  void at_node(SimTime t, NodeId node, F&& fn) {
    schedule(t, node % shard_count(), std::forward<F>(fn));
  }

  /// Schedules `fn` after `d` nanoseconds of virtual time.
  template <typename F>
  void after(SimDuration d, F&& fn) {
    at(now_ + d, std::forward<F>(fn));
  }

  bool empty() const { return pending_ == 0; }
  std::size_t pending() const { return pending_; }

  /// Total events executed since construction. Deterministic for a given
  /// workload (same property as the clock), so benchmark harnesses can report
  /// simulated-events counts that are stable across hosts.
  std::uint64_t processed() const { return processed_; }

  /// Handlers that exceeded InlineHandler::kInlineBytes and heap-allocated.
  /// Zero in steady state on the hot path; pinned by test.
  std::uint64_t handler_spills() const { return handler_spills_; }

  /// Runs the earliest event (global minimum across all shards). Returns
  /// false when the queue is empty.
  bool step() {
    if (pending_ == 0) return false;
    Shard* c = &shards_[cur_];
    // Leave the current shard only when another one holds the global
    // minimum — the single branch the fast path pays for sharding.
    if (c->heap.empty() ||
        (!index_.empty() && entry_less(head_of(index_[0]), c->heap[0]))) {
      const std::uint32_t next = index_[0];
      index_remove_top();
      if (!c->heap.empty()) index_insert(cur_);
      cur_ = next;
      c = &shards_[cur_];
      ++shard_switches_;
    }
    const Entry ev = heap_pop(c->heap);
    --pending_;
    RAILS_CHECK(ev.time >= now_);
    now_ = ev.time;
    ++processed_;
    // Move the handler out and retire the slot BEFORE invoking: the handler
    // may re-enter at(), growing the slot arena and invalidating references.
    InlineHandler fn = std::move(slots_[ev.slot]);
    free_slots_.push_back(ev.slot);
    fn();
    return true;
  }

  /// Drains the queue. `max_events` guards against runaway self-scheduling.
  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    RAILS_CHECK_MSG(pending_ == 0 || n < max_events, "event budget exhausted");
    return n;
  }

  /// Runs events until `pred()` becomes true or the queue drains. Returns
  /// whether the predicate was satisfied.
  bool run_until(const std::function<bool()>& pred) {
    while (!pred()) {
      if (!step()) return pred();
    }
    return true;
  }

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_to(SimTime t) {
    while (pending_ != 0 && next_time() <= t) step();
    RAILS_CHECK(t >= now_);
    now_ = t;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNoPos = 0xffffffffu;

  /// One partition: a 4-ary min-heap of entries. Shallower than a binary
  /// heap (log4 vs log2 levels) and four children share a cache line, so a
  /// sift touches fewer lines even at 10^6 pending entries. index_pos is
  /// this shard's slot in the cross-shard index heap (kNoPos when the
  /// shard is empty or currently executing).
  struct Shard {
    std::vector<Entry> heap;
    std::uint32_t index_pos = kNoPos;
  };

  static bool entry_less(const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  template <typename F>
  void schedule(SimTime t, std::uint32_t sid, F&& fn) {
    RAILS_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
    const std::uint32_t slot = acquire_slot();
    if (!slots_[slot].emplace(std::forward<F>(fn))) ++handler_spills_;
    Shard& s = shards_[sid];
    const bool was_empty = s.heap.empty();
    heap_push(s.heap, Entry{t, next_seq_++, slot});
    ++pending_;
    if (sid == cur_) return;
    // Keep the index keyed on the target shard's head entry.
    if (was_empty) {
      index_insert(sid);
    } else if (s.heap[0].slot == slot) {
      index_sift_up(s.index_pos);  // decrease-key: the new entry is the head
    }
  }

  // ---- per-shard 4-ary heap ----

  static void heap_push(std::vector<Entry>& h, Entry e) {
    h.push_back(e);
    std::size_t i = h.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!entry_less(h[i], h[parent])) break;
      std::swap(h[i], h[parent]);
      i = parent;
    }
  }

  static Entry heap_pop(std::vector<Entry>& h) {
    const Entry top = h[0];
    h[0] = h.back();
    h.pop_back();
    std::size_t i = 0;
    const std::size_t n = h.size();
    for (;;) {
      const std::size_t first = i * 4 + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (entry_less(h[c], h[best])) best = c;
      }
      if (!entry_less(h[best], h[i])) break;
      std::swap(h[i], h[best]);
      i = best;
    }
    return top;
  }

  // ---- cross-shard index: binary min-heap of shard ids keyed by their
  // head entry, with stored positions so decrease-key is O(log shards) ----

  const Entry& head_of(std::uint32_t sid) const { return shards_[sid].heap[0]; }

  bool index_less(std::size_t a, std::size_t b) const {
    return entry_less(head_of(index_[a]), head_of(index_[b]));
  }

  void index_swap(std::size_t a, std::size_t b) {
    std::swap(index_[a], index_[b]);
    shards_[index_[a]].index_pos = static_cast<std::uint32_t>(a);
    shards_[index_[b]].index_pos = static_cast<std::uint32_t>(b);
  }

  void index_sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!index_less(i, parent)) break;
      index_swap(i, parent);
      i = parent;
    }
  }

  void index_sift_down(std::size_t i) {
    const std::size_t n = index_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = i * 2 + 1;
      const std::size_t r = i * 2 + 2;
      if (l < n && index_less(l, best)) best = l;
      if (r < n && index_less(r, best)) best = r;
      if (best == i) break;
      index_swap(i, best);
      i = best;
    }
  }

  void index_insert(std::uint32_t sid) {
    index_.push_back(sid);
    shards_[sid].index_pos = static_cast<std::uint32_t>(index_.size() - 1);
    index_sift_up(index_.size() - 1);
  }

  void index_remove_top() {
    shards_[index_[0]].index_pos = kNoPos;
    index_[0] = index_.back();
    index_.pop_back();
    if (!index_.empty()) {
      shards_[index_[0]].index_pos = 0;
      index_sift_down(0);
    }
  }

  /// Earliest pending timestamp across every shard (pending_ > 0).
  SimTime next_time() const {
    SimTime best = std::numeric_limits<SimTime>::max();
    if (!shards_[cur_].heap.empty()) best = shards_[cur_].heap[0].time;
    if (!index_.empty()) best = std::min(best, head_of(index_[0]).time);
    return best;
  }

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    free_slots_.reserve(slots_.capacity());
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  std::vector<Shard> shards_;
  std::vector<std::uint32_t> index_;  ///< shard ids, min-heap by head entry
  std::uint32_t cur_ = 0;             ///< shard currently executing
  std::vector<InlineHandler> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t pending_ = 0;
  SimTime now_ = 0;
  SimDuration horizon_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t handler_spills_ = 0;
  std::uint64_t shard_switches_ = 0;
};

}  // namespace rails::fabric
