// Discrete-event simulation core.
//
// Every hardware element of the virtual cluster (NIC injection, wire
// delivery, DMA completion, core release) is an event on this queue. The
// queue is strictly deterministic: ties on the timestamp are broken by
// insertion sequence, so a given workload always replays identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rails::fabric {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void at(SimTime t, Handler fn) {
    RAILS_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
    heap_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after `d` nanoseconds of virtual time.
  void after(SimDuration d, Handler fn) { at(now_ + d, std::move(fn)); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed since construction. Deterministic for a given
  /// workload (same property as the clock), so benchmark harnesses can report
  /// simulated-events counts that are stable across hosts.
  std::uint64_t processed() const { return processed_; }

  /// Runs the earliest event. Returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Moving out of a priority_queue requires const_cast; the element is
    // popped immediately after, so the heap invariant is never observed
    // broken.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    RAILS_CHECK(ev.time >= now_);
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
  }

  /// Drains the queue. `max_events` guards against runaway self-scheduling.
  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    RAILS_CHECK_MSG(heap_.empty() || n < max_events, "event budget exhausted");
    return n;
  }

  /// Runs events until `pred()` becomes true or the queue drains. Returns
  /// whether the predicate was satisfied.
  bool run_until(const std::function<bool()>& pred) {
    while (!pred()) {
      if (!step()) return pred();
    }
    return true;
  }

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_to(SimTime t) {
    while (!heap_.empty() && heap_.top().time <= t) step();
    RAILS_CHECK(t >= now_);
    now_ = t;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace rails::fabric
