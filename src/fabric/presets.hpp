// Calibrated network models.
//
// The Myri-10G and QsNetII parameters are calibrated against the numbers the
// paper reports in §IV: single-rail ping-pong bandwidths of 1170 MB/s
// (MX/Myri-10G) and 837 MB/s (Elan/QsNetII); a 2 MiB chunk streaming in
// ~1730 µs over Myri-10G and ~2400 µs over Quadrics; iso-split saturating at
// ~1670 MB/s and hetero-split at ~1987 MB/s; and the small-message latency
// regime of Fig. 3/Fig. 9 where Quadrics wins tiny messages, Myri-10G wins
// past a few KiB, and per-message PIO copies dominate the eager path.
//
// InfiniBand DDR and GigE are extrapolated from period-typical figures; they
// feed the T2K-style rail-count extension (the paper's motivating example is
// the 4-rail IB T2K machine) and the heterogeneity stress tests.
#pragma once

#include "fabric/network_model.hpp"

namespace rails::fabric {

/// MX over Myri-10G (Myricom). ~2.9 µs small-message latency, 1170 MB/s
/// large-message bandwidth through the engine.
NetworkModelParams myri10g();

/// Elan over Quadrics QsNetII. ~1.6 µs small-message latency, 837 MB/s
/// large-message bandwidth; slower eager PIO past the cache limit.
NetworkModelParams qsnet2();

/// Verbs over InfiniBand DDR 4x (T2K-style rail).
NetworkModelParams ib_ddr();

/// TCP over gigabit Ethernet — the slow heterogeneous outlier.
NetworkModelParams gige_tcp();

/// GM over Myrinet-2000 — the previous hardware generation (the authors'
/// HCW'07 multirail work ran on it). Useful for generation-gap
/// heterogeneity studies.
NetworkModelParams myri2000();

/// SeaStar-style torus link (Cray XT4 era). The canonical NIC for mesh and
/// torus worlds: every node is its own router, so the per-hop wire latency
/// here is what the topo layer multiplies along a route.
NetworkModelParams seastar_torus();

/// A deliberately simple affine network (latency + size/bandwidth, single
/// regime) for closed-form verification in tests.
NetworkModelParams affine(double latency_us, double bandwidth_mbps);

}  // namespace rails::fabric
