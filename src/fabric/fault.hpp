// Fault models for the simulated fabric.
//
// Real multirail deployments lose rails: links flap during cable
// renegotiation, a NIC firmware wedge fail-stops a port, congested switches
// degrade bandwidth, and rerouted paths add latency. The engine's busy-until
// prediction machinery (Fig. 2) is exactly what detects such anomalies —
// a chunk that blows through its predicted completion plus slack is treated
// as lost — so the fabric must be able to produce them on demand.
//
// A FaultSpec is injected per SimNic (SimNic::inject_fault). Semantics:
//  * kFailStop  — the link goes down at `at` and never recovers.
//  * kFlap      — the link is down during [at, at + duration); a duration of
//                 zero means "forever" (equivalent to kFailStop at `at`).
//  * kDegrade   — transfers starting within the window take `factor` times
//                 longer (multiplies into SimNic::set_perf_scale).
//  * kLatency   — deliveries of transfers starting within the window are
//                 postponed by `extra_latency`.
//
// Down windows drop segments: a segment whose flight interval overlaps a
// down window never reaches the receiver; the sending NIC reports it
// through its tx-error callback at the time delivery would have occurred —
// the simulation analogue of a completion-queue error. Degrade/latency
// faults never drop; they produce stragglers, which exercise the engine's
// timeout path instead of its error path.
//
// Data-plane faults model a hostile wire rather than a dead one. They are
// probabilistic (per-segment `rate`, drawn from the NIC's deterministic
// fault RNG) and, crucially, *silent*: the sender's completion queue still
// reports success, so only an end-to-end mechanism (CRC + ACK/retransmit,
// see docs/FAULTS.md) can detect them.
//  * kDrop    — with probability `rate` the wire eats the segment after the
//               local completion fires. No tx-error; the loss is invisible
//               to the sender until an ACK timeout infers it.
//  * kCorrupt — with probability `rate` a random payload bit is flipped in
//               flight (header-only segments have their stored CRC damaged
//               instead). Undetectable unless the wire checksum is on.
//  * kDup     — with probability `rate` the receiver sees the segment twice
//               (the second copy slightly later), as after a link-layer
//               retransmit whose original was not actually lost.
//  * kReorder — each segment's delivery is postponed by a uniform-random
//               0..`reorder_window` multiples of the rail's wire latency
//               (gated on `rate`), letting later posts overtake it.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace rails::fabric {

enum class FaultKind : std::uint8_t {
  kFailStop = 0,  ///< link down from `at`, permanently
  kFlap,          ///< link down during [at, at + duration)
  kDegrade,       ///< transfers scaled by `factor` within the window
  kLatency,       ///< deliveries postponed by `extra_latency` within the window
  kDrop,          ///< silent per-segment loss with probability `rate`
  kCorrupt,       ///< per-segment bit flip with probability `rate`
  kDup,           ///< per-segment duplicate delivery with probability `rate`
  kReorder,       ///< per-segment bounded delivery shuffle (`reorder_window`)
};

const char* to_string(FaultKind kind);

/// True for the probabilistic wire faults (kDrop/kCorrupt/kDup/kReorder).
bool is_data_plane(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kFailStop;
  SimTime at = 0;            ///< window start on the virtual clock
  SimDuration duration = 0;  ///< window length; 0 = forever (ignored by kFailStop)
  double factor = 1.0;       ///< kDegrade slowdown multiplier (>= 1)
  SimDuration extra_latency = 0;  ///< kLatency delivery penalty
  double rate = 0.0;         ///< data-plane fault probability per segment, [0, 1]
  unsigned reorder_window = 0;  ///< kReorder: max delivery slip, in wire-latency units
};

}  // namespace rails::fabric
