// Analytic performance model of one network technology.
//
// Every figure in the paper is a function of per-NIC duration(size) curves;
// this class is where those curves live. The model separates the costs the
// way the paper's analysis does:
//
//  * eager path (small messages): a per-message software post cost and a
//    PIO copy that OCCUPY THE SUBMITTING CORE, a per-MTU packetisation cost,
//    and a wire latency tail that does not occupy the core. PIO bandwidth is
//    piecewise (fast while the payload fits the cache, degraded above) —
//    this is why "a split ratio for a 8 MB message may not fit a 256 KB
//    message" (§II-A) and why sampling beats vendor lat/bw figures.
//  * rendezvous path (large messages): an RTS/CTS handshake, a DMA setup
//    cost, then a DMA stream at the technology's large-message bandwidth.
//    The DMA does NOT occupy a core, which is why large-message splitting
//    needs no multicore help while eager splitting does (§II-C).
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace rails::fabric {

/// Which protocol a transfer uses. The engine picks per message; the model
/// can also report its natural crossover (`natural_rdv_threshold`).
enum class Protocol { kEager, kRendezvous };

struct NetworkModelParams {
  std::string name = "net";

  // -- eager path --
  double post_us = 1.0;           ///< per-message software send cost (core-occupying)
  double wire_latency_us = 1.0;   ///< one-way latency tail after injection
  double pio_bw_mbps = 1000.0;    ///< PIO copy bandwidth while payload fits cache
  double pio_bw_large_mbps = 600.0;  ///< PIO bandwidth past the cache limit
  std::size_t pio_cache_limit = 16u * 1024u;  ///< bytes copied at the fast rate
  std::size_t mtu = 4u * 1024u;   ///< eager segmentation unit
  double per_packet_us = 0.2;     ///< per-MTU packetisation cost (core-occupying)
  std::size_t max_eager = 64u * 1024u;  ///< hardware cap on one eager segment

  // -- rendezvous path --
  double rdv_handshake_us = 8.0;  ///< RTS/CTS round trip + matching
  double dma_setup_us = 1.0;      ///< DMA programming per chunk (core-occupying)
  double dma_bw_mbps = 1000.0;    ///< large-message zero-copy bandwidth

  // -- capabilities (§II-B: "actual properties such as ... the availability
  //    of gather/scatter operations") --
  bool gather_scatter = true;     ///< can aggregate iovecs without extra copy
  bool rdma = true;               ///< supports remote put (rendezvous data path)
};

/// Timing breakdown of one posted transfer, on the virtual clock.
struct TransferTiming {
  SimDuration host = 0;   ///< time the submitting core is busy
  SimDuration nic = 0;    ///< time the NIC's injection port is busy
  SimDuration total = 0;  ///< post-to-delivery duration (host + wire tail)
};

class NetworkModel {
 public:
  NetworkModel() = default;
  explicit NetworkModel(NetworkModelParams params) : p_(std::move(params)) {}

  const NetworkModelParams& params() const { return p_; }
  const std::string& name() const { return p_.name; }

  /// Core-occupying PIO copy time for `size` bytes (piecewise marginal rate).
  SimDuration pio_time(std::size_t size) const;

  /// Number of MTU packets an eager payload of `size` bytes occupies.
  std::size_t packet_count(std::size_t size) const;

  /// Full eager-path timing for a segment of `size` payload bytes.
  TransferTiming eager(std::size_t size) const;

  /// Full rendezvous-path timing for one DMA chunk of `size` bytes,
  /// `include_handshake` selects whether the RTS/CTS round is counted (it is
  /// paid once per message, not once per chunk).
  TransferTiming rendezvous(std::size_t size, bool include_handshake = true) const;

  /// End-to-end duration under the given protocol.
  SimDuration duration(std::size_t size, Protocol proto) const;

  /// Duration with the cheaper of the two protocols.
  SimDuration best_duration(std::size_t size) const;

  /// Smallest power-of-two size where rendezvous beats eager (the threshold
  /// the sampler derives empirically, §III-C).
  std::size_t natural_rdv_threshold() const;

  /// Steady-state bandwidth in MB/s at `size` under the cheaper protocol.
  double bandwidth_at(std::size_t size) const;

 private:
  NetworkModelParams p_;
};

}  // namespace rails::fabric
