// Recycling pool for segment payload buffers.
//
// Every eager segment and DMA chunk carries its payload in a
// std::vector<uint8_t>; without pooling that is one heap allocation per
// segment on the hot path. The pool is process-wide (segments migrate
// between sender and receiver engines inside one process) and bounded, and
// it is an immortal leaked singleton for the same reason as RequestPool:
// segments may outlive any engine. See docs/PERF.md.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace rails::fabric {

class BufferPool {
 public:
  static BufferPool& instance() {
    static BufferPool* pool = new BufferPool();
    return *pool;
  }

  /// An empty buffer, with whatever capacity its previous life grew.
  std::vector<std::uint8_t> acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_.empty()) return {};
    std::vector<std::uint8_t> buf = std::move(pool_.back());
    pool_.pop_back();
    return buf;
  }

  /// Returns a buffer to the pool (cleared, capacity kept). Buffers past
  /// the bound are simply freed — the pool caps retained memory, it does
  /// not guarantee recycling.
  void release(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0) return;
    buf.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_.size() < kMaxPooled) pool_.push_back(std::move(buf));
  }

  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pool_.size();
  }

 private:
  static constexpr std::size_t kMaxPooled = 1024;

  BufferPool() = default;

  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> pool_;
};

inline std::vector<std::uint8_t> acquire_payload() {
  return BufferPool::instance().acquire();
}
inline void recycle_payload(std::vector<std::uint8_t>&& buf) {
  BufferPool::instance().release(std::move(buf));
}

}  // namespace rails::fabric
