// Virtual multirail cluster assembly.
//
// A Fabric instantiates `node_count` nodes, each with one SimNic per rail
// and a set of simulated cores. The inter-node shape is a topo::Topology:
// flat (rail i of every node wired to rail i of every other node — a full
// crossbar per rail, like one big switch), or a routed network (2D mesh,
// torus, 2-level fat-tree) where each rail is a parallel *plane* of the
// same shape and a segment crosses several links to reach its destination.
// Engines attach per-node receive handlers; segments posted on any NIC are
// routed — hop by hop on routed shapes, with per-(rail, link) occupancy —
// to the destination node's handler at their modeled arrival time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fabric/event_queue.hpp"
#include "fabric/nic.hpp"
#include "fabric/sim_cores.hpp"
#include "topo/machine.hpp"
#include "topo/topology.hpp"

namespace rails::fabric {

struct FabricConfig {
  std::uint32_t node_count = 2;
  std::vector<NetworkModelParams> rails;
  MachineTopology topology = MachineTopology::opteron_2x2();

  /// Inter-node network shape; every rail is one plane of it. The default
  /// (flat) reproduces the PR 1–9 crossbar fabric exactly.
  topo::TopologySpec net;

  /// Partition the event queue per node (EventQueue::configure_shards) with
  /// the fabric's minimum link latency as the conservative horizon. Replays
  /// bit-identical to the single queue; a scale knob, not a semantic one.
  bool event_sharding = false;

  /// A fault armed on every NIC of `rail` (or only `node`'s, when >= 0) at
  /// fabric construction — the config-file path into SimNic::inject_fault.
  struct RailFault {
    RailId rail = 0;
    int node = -1;  ///< -1 = every node's NIC on the rail
    FaultSpec spec;
  };
  std::vector<RailFault> faults;

  /// Seed for the per-NIC data-plane fault RNGs (each NIC mixes in its own
  /// node/rail identity, so one knob reseeds the whole fabric).
  std::uint64_t fault_seed = 0;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  EventQueue& events() { return events_; }
  SimTime now() const { return events_.now(); }

  std::uint32_t node_count() const { return config_.node_count; }
  std::uint32_t rail_count() const { return static_cast<std::uint32_t>(config_.rails.size()); }
  const FabricConfig& config() const { return config_; }

  const topo::Topology& topo() const { return topo_; }

  /// Links on the route src -> dst (1 on flat fabrics): the path length the
  /// engine's timeout arming must budget for.
  std::uint32_t path_hops(NodeId src, NodeId dst) const {
    return topo_.hops(src, dst);
  }

  /// Wire latency the route adds beyond the NIC model's single hop:
  /// (hops - 1) x the rail's link latency. Zero on flat fabrics. Engines
  /// fold this into failover/ACK timeout deadlines so multi-hop flight time
  /// is never mistaken for loss.
  SimDuration extra_path_latency(NodeId src, NodeId dst, RailId rail) const;

  /// Smallest per-hop wire latency across rails — the sharding horizon.
  SimDuration min_link_latency() const;

  /// Segments passed through intermediate hops (0 on flat fabrics).
  std::uint64_t forwarded_segments() const { return forwarded_segments_; }

  SimNic& nic(NodeId node, RailId rail);
  const SimNic& nic(NodeId node, RailId rail) const;
  SimCores& cores(NodeId node);

  using RxHandler = std::function<void(Segment&&)>;

  /// Installs the handler invoked (at virtual arrival time) for every segment
  /// addressed to `node`.
  void set_rx_handler(NodeId node, RxHandler handler);

  /// Total payload bytes delivered so far, per rail (conservation checks).
  std::uint64_t delivered_payload(RailId rail) const;

 private:
  void route(Segment&& seg);
  void forward(Segment&& seg, std::uint32_t hop);
  void admit(Segment&& seg);
  void deliver(Segment&& seg);

  FabricConfig config_;
  EventQueue events_;
  topo::Topology topo_;
  // unique_ptr keeps SimNic addresses stable; drivers hold raw pointers.
  std::vector<std::vector<std::unique_ptr<SimNic>>> nics_;  // [node][rail]
  std::vector<SimCores> cores_;
  std::vector<RxHandler> rx_handlers_;
  std::vector<std::uint64_t> delivered_payload_;
  // Per-(rail, link) busy-until horizon for routed shapes: cut-through
  // forwarding pays serialization once per link occupancy window while the
  // leading edge advances one latency per hop.
  std::vector<std::vector<SimTime>> link_busy_;  // [rail][link]
  std::uint64_t forwarded_segments_ = 0;
};

}  // namespace rails::fabric
