// Virtual multirail cluster assembly.
//
// A Fabric instantiates `node_count` nodes, each with one SimNic per rail
// and a set of simulated cores, and wires rail i of every node to rail i of
// every other node (full crossbar per rail, like a switch). Engines attach
// per-node receive handlers; segments posted on any NIC are routed to the
// destination node's handler at their modeled arrival time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/topology.hpp"
#include "fabric/event_queue.hpp"
#include "fabric/nic.hpp"
#include "fabric/sim_cores.hpp"

namespace rails::fabric {

struct FabricConfig {
  std::uint32_t node_count = 2;
  std::vector<NetworkModelParams> rails;
  MachineTopology topology = MachineTopology::opteron_2x2();

  /// A fault armed on every NIC of `rail` (or only `node`'s, when >= 0) at
  /// fabric construction — the config-file path into SimNic::inject_fault.
  struct RailFault {
    RailId rail = 0;
    int node = -1;  ///< -1 = every node's NIC on the rail
    FaultSpec spec;
  };
  std::vector<RailFault> faults;

  /// Seed for the per-NIC data-plane fault RNGs (each NIC mixes in its own
  /// node/rail identity, so one knob reseeds the whole fabric).
  std::uint64_t fault_seed = 0;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  EventQueue& events() { return events_; }
  SimTime now() const { return events_.now(); }

  std::uint32_t node_count() const { return config_.node_count; }
  std::uint32_t rail_count() const { return static_cast<std::uint32_t>(config_.rails.size()); }
  const FabricConfig& config() const { return config_; }

  SimNic& nic(NodeId node, RailId rail);
  const SimNic& nic(NodeId node, RailId rail) const;
  SimCores& cores(NodeId node);

  using RxHandler = std::function<void(Segment&&)>;

  /// Installs the handler invoked (at virtual arrival time) for every segment
  /// addressed to `node`.
  void set_rx_handler(NodeId node, RxHandler handler);

  /// Total payload bytes delivered so far, per rail (conservation checks).
  std::uint64_t delivered_payload(RailId rail) const;

 private:
  void route(Segment&& seg);
  void deliver(Segment&& seg);

  FabricConfig config_;
  EventQueue events_;
  // unique_ptr keeps SimNic addresses stable; drivers hold raw pointers.
  std::vector<std::vector<std::unique_ptr<SimNic>>> nics_;  // [node][rail]
  std::vector<SimCores> cores_;
  std::vector<RxHandler> rx_handlers_;
  std::vector<std::uint64_t> delivered_payload_;
};

}  // namespace rails::fabric
