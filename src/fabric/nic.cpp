#include "fabric/nic.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rails::fabric {

const char* to_string(SegKind kind) {
  switch (kind) {
    case SegKind::kEager: return "EAGER";
    case SegKind::kRts: return "RTS";
    case SegKind::kCts: return "CTS";
    case SegKind::kData: return "DATA";
    case SegKind::kFin: return "FIN";
    case SegKind::kAck: return "ACK";
    case SegKind::kNack: return "NACK";
  }
  return "?";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop: return "fail-stop";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDup: return "dup";
    case FaultKind::kReorder: return "reorder";
  }
  return "?";
}

bool is_data_plane(FaultKind kind) {
  return kind == FaultKind::kDrop || kind == FaultKind::kCorrupt ||
         kind == FaultKind::kDup || kind == FaultKind::kReorder;
}

namespace {

/// True when the (possibly open-ended) fault window [at, at + duration)
/// intersects the closed interval [begin, end].
bool window_overlaps(const FaultSpec& f, SimTime begin, SimTime end) {
  if (f.at > end) return false;
  if (f.duration <= 0) return true;  // open-ended window
  return f.at + f.duration > begin;
}

}  // namespace

void SimNic::inject_fault(const FaultSpec& fault) {
  if (fault.kind == FaultKind::kDegrade) {
    RAILS_CHECK_MSG(fault.factor >= 1.0, "degrade factor < 1 would beat the hardware model");
  }
  faults_.push_back(fault);
}

bool SimNic::down_overlaps(SimTime begin, SimTime end) const {
  for (const FaultSpec& f : faults_) {
    const bool down_kind = f.kind == FaultKind::kFailStop || f.kind == FaultKind::kFlap;
    if (!down_kind) continue;
    // A fail-stop never recovers regardless of the declared duration.
    FaultSpec window = f;
    if (f.kind == FaultKind::kFailStop) window.duration = 0;
    if (window_overlaps(window, begin, end)) return true;
  }
  return false;
}

double SimNic::fault_scale_at(SimTime t) const {
  double scale = 1.0;
  for (const FaultSpec& f : faults_) {
    if (f.kind == FaultKind::kDegrade && window_overlaps(f, t, t)) scale *= f.factor;
  }
  return scale;
}

SimDuration SimNic::fault_latency_at(SimTime t) const {
  SimDuration extra = 0;
  for (const FaultSpec& f : faults_) {
    if (f.kind == FaultKind::kLatency && window_overlaps(f, t, t)) extra += f.extra_latency;
  }
  return extra;
}

namespace {

TransferTiming scale_timing(TransferTiming t, double scale) {
  if (scale != 1.0) {
    t.host = static_cast<SimDuration>(static_cast<double>(t.host) * scale);
    t.nic = static_cast<SimDuration>(static_cast<double>(t.nic) * scale);
    t.total = static_cast<SimDuration>(static_cast<double>(t.total) * scale);
  }
  return t;
}

}  // namespace

SimNic::PostTimes SimNic::compute_times(const Segment& seg, SimTime earliest) const {
  PostTimes t;
  if (seg.kind == SegKind::kData) {
    // DMA chunk: the host only writes a descriptor — it does not wait for
    // the injection port. The stream begins when the port frees up, so a
    // busy NIC delays the data but never stalls the submitting core (this
    // is what lets the strategy feed the other rails immediately, Fig. 2).
    // Active degrade faults stretch the transfer; latency faults postpone
    // only the delivery (the injection port frees on schedule).
    const TransferTiming timing =
        scale_timing(model_.rendezvous(seg.payload.size(), /*include_handshake=*/false),
                     perf_scale_ * fault_scale_at(earliest));
    t.host_start = earliest;
    t.host_end = t.host_start + timing.host;
    const SimDuration stream = timing.nic - timing.host;
    const SimDuration tail = timing.total - timing.nic;
    const SimTime stream_begin = std::max(t.host_end, busy_until_);
    t.nic_end = stream_begin + stream;
    t.deliver_at = t.nic_end + tail + fault_latency_at(earliest);
    return t;
  }

  // Eager and control segments are PIO: the submitting core performs the
  // injection itself, so it queues behind a busy port.
  TransferTiming timing;
  bool control_lane = false;
  switch (seg.kind) {
    case SegKind::kEager:
      timing = model_.eager(seg.payload.size());
      break;
    case SegKind::kAck:
    case SegKind::kNack:
      // Reliability acknowledgements ride a dedicated control lane (the
      // analogue of a separate virtual channel): header-only, negligible
      // bandwidth, and — crucially — never queued behind bulk injection.
      // Without the bypass, a reverse-path ACK stuck behind megabytes of
      // queued data looks exactly like a silent drop to the peer's
      // retransmit timer, and a congested-but-healthy wire would spuriously
      // retransmit. These kinds exist only when reliability is enabled, so
      // the bypass cannot perturb baseline timing.
      timing = model_.eager(0);
      control_lane = true;
      break;
    case SegKind::kRts:
    case SegKind::kCts:
    case SegKind::kFin:
      // Rendezvous control rides the eager path with a header-only payload.
      timing = model_.eager(0);
      break;
    case SegKind::kData:
      break;  // handled above
  }
  t.host_start = control_lane ? earliest : std::max(earliest, busy_until_);
  timing = scale_timing(timing, perf_scale_ * fault_scale_at(t.host_start));
  t.host_end = t.host_start + timing.host;
  t.nic_end = t.host_start + timing.nic;
  t.deliver_at = t.host_start + timing.total + fault_latency_at(t.host_start);
  return t;
}

SimNic::PostTimes SimNic::preview(const Segment& seg, SimTime earliest) const {
  return compute_times(seg, earliest);
}

SimTime SimNic::admit_rx(SimTime arrival, std::size_t payload_bytes) {
  // The segment's bytes occupied the port for `occupancy` (drained at the
  // technology's link rate) *ending* at the delivery instant: a segment
  // arriving at `arrival` was on the wire during [arrival - occupancy,
  // arrival], so an uncontended port finishes exactly at arrival — a single
  // steady stream is never delayed. If the port is still draining earlier
  // traffic, reception restarts after it: deliver = rx_busy + occupancy.
  const SimDuration occupancy = static_cast<SimDuration>(
      static_cast<double>(wire_time(payload_bytes, model_.params().dma_bw_mbps)) *
      perf_scale_);
  const SimTime deliver = std::max(arrival, rx_busy_until_ + occupancy);
  rx_busy_until_ = deliver;
  return deliver;
}

SimNic::WireFate SimNic::draw_fate(Segment& seg, SimTime begin, SimTime end) {
  WireFate fate;
  for (const FaultSpec& f : faults_) {
    if (!is_data_plane(f.kind) || f.rate <= 0.0) continue;
    if (!window_overlaps(f, begin, end)) continue;
    switch (f.kind) {
      case FaultKind::kDrop:
        if (!fate.silent_drop && fault_rng_.uniform() < f.rate) {
          fate.silent_drop = true;
          ++segments_silently_dropped_;
        }
        break;
      case FaultKind::kCorrupt:
        if (fault_rng_.uniform() < f.rate) {
          // Flip one random payload bit; header-only segments have their
          // stored checksum damaged instead (the simulation stand-in for a
          // header bit flip — struct fields must stay parseable).
          if (!seg.payload.empty()) {
            const std::uint64_t bit = fault_rng_.below(seg.payload.size() * 8);
            seg.payload[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
          } else {
            seg.crc ^= 1u << fault_rng_.below(32);
          }
          ++segments_corrupted_;
        }
        break;
      case FaultKind::kDup:
        if (!fate.duplicate && fault_rng_.uniform() < f.rate) {
          fate.duplicate = true;
          ++segments_duplicated_;
        }
        break;
      case FaultKind::kReorder: {
        const double rate = f.rate > 1.0 ? 1.0 : f.rate;
        if (f.reorder_window > 0 && fault_rng_.uniform() < rate) {
          const std::uint64_t slip = fault_rng_.below(f.reorder_window + 1);
          if (slip > 0) {
            fate.reorder_slip += static_cast<SimDuration>(slip) *
                                 usec(model_.params().wire_latency_us);
            ++segments_reordered_;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return fate;
}

SimNic::PostTimes SimNic::post(Segment seg, SimTime earliest) {
  RAILS_CHECK_MSG(deliver_ != nullptr, "SimNic has no delivery route installed");
  RAILS_CHECK_MSG(seg.rail == rail_, "segment posted on the wrong rail");
  const PostTimes t = compute_times(seg, earliest);
  // max, not assignment: a control-lane ACK finishes "in the past" relative
  // to a queued bulk backlog and must not hand its slot to later bulk posts.
  busy_until_ = std::max(busy_until_, t.nic_end);

  ++segments_sent_;
  bytes_sent_ += seg.wire_size();
  payload_bytes_sent_ += seg.payload.size();

  // Data-plane fate is drawn here, after timing: preview() must stay
  // RNG-pure so strategy predictions never perturb fault outcomes.
  const WireFate fate = draw_fate(seg, t.host_start, t.deliver_at);
  const SimTime deliver_at = t.deliver_at + fate.reorder_slip;
  // Arrival work belongs to the destination: with a sharded queue this
  // keeps each node's event stream on its own partition.
  const NodeId arrival_node = seg.dst;

  if (fate.duplicate) {
    // The duplicate trails the original by one wire latency, like a
    // link-layer retransmit whose first copy was not actually lost. It is
    // delivery-only: no second completion, no extra port occupancy.
    Segment copy = seg;
    events_->at_node(deliver_at + usec(model_.params().wire_latency_us), arrival_node,
                     [this, begin = t.host_start, end = t.deliver_at, s = std::move(copy)]() mutable {
                       if (down_overlaps(begin, end)) return;
                       deliver_(std::move(s));
                     });
  }

  // Delivery-time fate: a segment whose flight interval crosses a down
  // window is lost. The sender learns about it through the tx-error hook at
  // the instant delivery would have happened — the same place a reliable
  // transport surfaces a completion-queue error. A silent (data-plane) drop
  // is the opposite: the completion fires and the wire eats the bytes.
  events_->at_node(deliver_at, arrival_node,
                   [this, begin = t.host_start, end = t.deliver_at, drop = fate.silent_drop,
                    s = std::move(seg)]() mutable {
                if (down_overlaps(begin, end)) {
                  ++segments_dropped_;
                  if (tx_error_ != nullptr) tx_error_(std::move(s));
                  return;
                }
                if (tx_complete_ != nullptr) tx_complete_(s);
                if (drop) return;
                deliver_(std::move(s));
              });
  return t;
}

}  // namespace rails::fabric
