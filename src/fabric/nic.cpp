#include "fabric/nic.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rails::fabric {

const char* to_string(SegKind kind) {
  switch (kind) {
    case SegKind::kEager: return "EAGER";
    case SegKind::kRts: return "RTS";
    case SegKind::kCts: return "CTS";
    case SegKind::kData: return "DATA";
    case SegKind::kFin: return "FIN";
  }
  return "?";
}

namespace {

TransferTiming scale_timing(TransferTiming t, double scale) {
  if (scale != 1.0) {
    t.host = static_cast<SimDuration>(static_cast<double>(t.host) * scale);
    t.nic = static_cast<SimDuration>(static_cast<double>(t.nic) * scale);
    t.total = static_cast<SimDuration>(static_cast<double>(t.total) * scale);
  }
  return t;
}

}  // namespace

SimNic::PostTimes SimNic::compute_times(const Segment& seg, SimTime earliest) const {
  PostTimes t;
  if (seg.kind == SegKind::kData) {
    // DMA chunk: the host only writes a descriptor — it does not wait for
    // the injection port. The stream begins when the port frees up, so a
    // busy NIC delays the data but never stalls the submitting core (this
    // is what lets the strategy feed the other rails immediately, Fig. 2).
    const TransferTiming timing = scale_timing(
        model_.rendezvous(seg.payload.size(), /*include_handshake=*/false), perf_scale_);
    t.host_start = earliest;
    t.host_end = t.host_start + timing.host;
    const SimDuration stream = timing.nic - timing.host;
    const SimDuration tail = timing.total - timing.nic;
    const SimTime stream_begin = std::max(t.host_end, busy_until_);
    t.nic_end = stream_begin + stream;
    t.deliver_at = t.nic_end + tail;
    return t;
  }

  // Eager and control segments are PIO: the submitting core performs the
  // injection itself, so it queues behind a busy port.
  TransferTiming timing;
  switch (seg.kind) {
    case SegKind::kEager:
      timing = model_.eager(seg.payload.size());
      break;
    case SegKind::kRts:
    case SegKind::kCts:
    case SegKind::kFin:
      // Control segments ride the eager path with a header-only payload.
      timing = model_.eager(0);
      break;
    case SegKind::kData:
      break;  // handled above
  }
  timing = scale_timing(timing, perf_scale_);
  t.host_start = std::max(earliest, busy_until_);
  t.host_end = t.host_start + timing.host;
  t.nic_end = t.host_start + timing.nic;
  t.deliver_at = t.host_start + timing.total;
  return t;
}

SimNic::PostTimes SimNic::preview(const Segment& seg, SimTime earliest) const {
  return compute_times(seg, earliest);
}

SimTime SimNic::admit_rx(SimTime arrival, std::size_t payload_bytes) {
  // The segment's bytes occupied the port for `occupancy` (drained at the
  // technology's link rate) *ending* at the delivery instant: a segment
  // arriving at `arrival` was on the wire during [arrival - occupancy,
  // arrival], so an uncontended port finishes exactly at arrival — a single
  // steady stream is never delayed. If the port is still draining earlier
  // traffic, reception restarts after it: deliver = rx_busy + occupancy.
  const SimDuration occupancy = static_cast<SimDuration>(
      static_cast<double>(wire_time(payload_bytes, model_.params().dma_bw_mbps)) *
      perf_scale_);
  const SimTime deliver = std::max(arrival, rx_busy_until_ + occupancy);
  rx_busy_until_ = deliver;
  return deliver;
}

SimNic::PostTimes SimNic::post(Segment seg, SimTime earliest) {
  RAILS_CHECK_MSG(deliver_ != nullptr, "SimNic has no delivery route installed");
  RAILS_CHECK_MSG(seg.rail == rail_, "segment posted on the wrong rail");
  const PostTimes t = compute_times(seg, earliest);
  busy_until_ = t.nic_end;

  ++segments_sent_;
  bytes_sent_ += seg.wire_size();
  payload_bytes_sent_ += seg.payload.size();

  events_->at(t.deliver_at,
              [fn = &deliver_, s = std::move(seg)]() mutable { (*fn)(std::move(s)); });
  return t;
}

}  // namespace rails::fabric
