#include "fabric/sim_cores.hpp"

#include <algorithm>

namespace rails::fabric {

std::uint32_t SimCores::idle_count(SimTime now, std::optional<CoreId> except) const {
  std::uint32_t n = 0;
  for (CoreId c = 0; c < count(); ++c) {
    if (except && *except == c) continue;
    if (idle(c, now)) ++n;
  }
  return n;
}

CoreId SimCores::pick_offload_core(SimTime now, CoreId near,
                                   std::optional<CoreId> except) const {
  // Same-socket cores are preferred when equally idle; neighbours_by_distance
  // already yields that order, so a stable scan keeping the earliest-free
  // core naturally breaks ties in favour of proximity.
  CoreId best = near;
  SimTime best_free = kSimTimeNever;
  for (CoreId c : topo_.neighbours_by_distance(near)) {
    if (except && *except == c) continue;
    const SimTime free_at = std::max(busy_until_[c], now);
    if (free_at < best_free) {
      best_free = free_at;
      best = c;
    }
  }
  return best;
}

}  // namespace rails::fabric
