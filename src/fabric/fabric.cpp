#include "fabric/fabric.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace rails::fabric {

Fabric::Fabric(FabricConfig config)
    : config_(std::move(config)), topo_(config_.net, config_.node_count) {
  RAILS_CHECK_MSG(config_.node_count >= 1, "fabric needs at least one node");
  RAILS_CHECK_MSG(!config_.rails.empty(), "fabric needs at least one rail");

  if (config_.event_sharding) {
    events_.configure_shards(config_.node_count, min_link_latency());
  }
  if (!topo_.direct()) {
    link_busy_.assign(config_.rails.size(),
                      std::vector<SimTime>(topo_.link_count(), 0));
  }

  nics_.resize(config_.node_count);
  rx_handlers_.resize(config_.node_count);
  delivered_payload_.assign(config_.rails.size(), 0);
  cores_.reserve(config_.node_count);

  for (NodeId n = 0; n < config_.node_count; ++n) {
    cores_.emplace_back(config_.topology);
    nics_[n].reserve(config_.rails.size());
    for (RailId r = 0; r < config_.rails.size(); ++r) {
      auto nic = std::make_unique<SimNic>(&events_, NetworkModel(config_.rails[r]), n, r);
      nic->set_deliver([this](Segment&& seg) { route(std::move(seg)); });
      nic->set_fault_seed(config_.fault_seed);
      for (const FabricConfig::RailFault& f : config_.faults) {
        if (f.rail != r) continue;
        if (f.node >= 0 && static_cast<NodeId>(f.node) != n) continue;
        nic->inject_fault(f.spec);
      }
      nics_[n].push_back(std::move(nic));
    }
  }
}

SimDuration Fabric::extra_path_latency(NodeId src, NodeId dst, RailId rail) const {
  const std::uint32_t hops = topo_.hops(src, dst);
  if (hops <= 1) return 0;
  return static_cast<SimDuration>(hops - 1) *
         usec(config_.rails[rail].wire_latency_us);
}

SimDuration Fabric::min_link_latency() const {
  SimDuration m = usec(config_.rails[0].wire_latency_us);
  for (const NetworkModelParams& p : config_.rails) {
    m = std::min(m, usec(p.wire_latency_us));
  }
  return m;
}

SimNic& Fabric::nic(NodeId node, RailId rail) {
  RAILS_CHECK(node < nics_.size() && rail < nics_[node].size());
  return *nics_[node][rail];
}

const SimNic& Fabric::nic(NodeId node, RailId rail) const {
  RAILS_CHECK(node < nics_.size() && rail < nics_[node].size());
  return *nics_[node][rail];
}

SimCores& Fabric::cores(NodeId node) {
  RAILS_CHECK(node < cores_.size());
  return cores_[node];
}

void Fabric::set_rx_handler(NodeId node, RxHandler handler) {
  RAILS_CHECK(node < rx_handlers_.size());
  rx_handlers_[node] = std::move(handler);
}

std::uint64_t Fabric::delivered_payload(RailId rail) const {
  RAILS_CHECK(rail < delivered_payload_.size());
  return delivered_payload_[rail];
}

void Fabric::route(Segment&& seg) {
  RAILS_CHECK_MSG(seg.dst < rx_handlers_.size(), "segment addressed to unknown node");
  RAILS_CHECK_MSG(seg.src != seg.dst, "loopback traffic should not reach the fabric");

  // Reliability ACK/NACKs ride the control lane end-to-end (see
  // SimNic::compute_times): header-only firmware traffic on a dedicated
  // virtual channel, so they skip rx admission and hop occupancy instead of
  // stalling behind bulk arrivals — an acknowledgement stuck behind
  // megabytes of received data would defeat its purpose as a timely loss
  // signal.
  if (seg.kind == SegKind::kAck || seg.kind == SegKind::kNack) {
    deliver(std::move(seg));
    return;
  }
  // The source NIC's wire model already paid the first link's latency, so a
  // segment arrives here positioned at route[0].to. On routed shapes with
  // further links to cross, walk them as forwarding events.
  if (!topo_.direct()) {
    const topo::Path& path = topo_.route(seg.src, seg.dst);
    if (path.size() > 1) {
      forward(std::move(seg), 1);
      return;
    }
  }
  admit(std::move(seg));
}

void Fabric::forward(Segment&& seg, std::uint32_t hop) {
  const topo::Path& path = topo_.route(seg.src, seg.dst);
  const topo::Hop& h = path[hop];
  const NetworkModelParams& p = config_.rails[seg.rail];
  // Cut-through switching: the link is occupied for the segment's full
  // serialization window, but the leading edge moves on after one hop
  // latency — an uncontended route costs (hops - 1) extra latencies, not
  // (hops - 1) extra serializations.
  SimTime& busy = link_busy_[seg.rail][h.link];
  const SimTime start = std::max(events_.now(), busy);
  busy = start + wire_time(seg.wire_size(), p.dma_bw_mbps);
  const SimTime arrive = start + usec(p.wire_latency_us);
  ++forwarded_segments_;
  RAILS_TRACE("fabric", "forward %s msg=%llu rail=%u %u->%u hop=%u via=%u t=%.3fus",
              to_string(seg.kind), static_cast<unsigned long long>(seg.msg_id),
              seg.rail, seg.src, seg.dst, hop, h.to, to_usec(events_.now()));
  if (hop + 1 == path.size()) {
    events_.at_node(arrive, seg.dst,
                    [this, s = std::move(seg)]() mutable { admit(std::move(s)); });
  } else {
    // Switch vertices have no shard of their own; their work rides the
    // destination's shard (any placement pops in the same global order).
    const NodeId affinity = h.to < config_.node_count ? h.to : seg.dst;
    events_.at_node(arrive, affinity, [this, hop, s = std::move(seg)]() mutable {
      forward(std::move(s), hop + 1);
    });
  }
}

void Fabric::admit(Segment&& seg) {
  // Receive-port admission: converging flows serialise at the destination
  // NIC. A segment admitted immediately is handed over inline; a delayed
  // one is re-scheduled for its admission time.
  const SimTime deliver_at = nic(seg.dst, seg.rail).admit_rx(events_.now(),
                                                             seg.payload.size());
  if (deliver_at > events_.now()) {
    events_.at_node(deliver_at, seg.dst,
                    [this, s = std::move(seg)]() mutable { deliver(std::move(s)); });
    return;
  }
  deliver(std::move(seg));
}

void Fabric::deliver(Segment&& seg) {
  delivered_payload_[seg.rail] += seg.payload.size();
  RAILS_TRACE("fabric", "deliver %s msg=%llu rail=%u %u->%u len=%zu t=%.3fus",
              to_string(seg.kind), static_cast<unsigned long long>(seg.msg_id), seg.rail,
              seg.src, seg.dst, seg.payload.size(), to_usec(events_.now()));
  auto& handler = rx_handlers_[seg.dst];
  RAILS_CHECK_MSG(handler != nullptr, "destination node has no rx handler");
  handler(std::move(seg));
}

}  // namespace rails::fabric
