#include "fabric/fabric.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace rails::fabric {

Fabric::Fabric(FabricConfig config) : config_(std::move(config)) {
  RAILS_CHECK_MSG(config_.node_count >= 1, "fabric needs at least one node");
  RAILS_CHECK_MSG(!config_.rails.empty(), "fabric needs at least one rail");

  nics_.resize(config_.node_count);
  rx_handlers_.resize(config_.node_count);
  delivered_payload_.assign(config_.rails.size(), 0);
  cores_.reserve(config_.node_count);

  for (NodeId n = 0; n < config_.node_count; ++n) {
    cores_.emplace_back(config_.topology);
    nics_[n].reserve(config_.rails.size());
    for (RailId r = 0; r < config_.rails.size(); ++r) {
      auto nic = std::make_unique<SimNic>(&events_, NetworkModel(config_.rails[r]), n, r);
      nic->set_deliver([this](Segment&& seg) { route(std::move(seg)); });
      nic->set_fault_seed(config_.fault_seed);
      for (const FabricConfig::RailFault& f : config_.faults) {
        if (f.rail != r) continue;
        if (f.node >= 0 && static_cast<NodeId>(f.node) != n) continue;
        nic->inject_fault(f.spec);
      }
      nics_[n].push_back(std::move(nic));
    }
  }
}

SimNic& Fabric::nic(NodeId node, RailId rail) {
  RAILS_CHECK(node < nics_.size() && rail < nics_[node].size());
  return *nics_[node][rail];
}

const SimNic& Fabric::nic(NodeId node, RailId rail) const {
  RAILS_CHECK(node < nics_.size() && rail < nics_[node].size());
  return *nics_[node][rail];
}

SimCores& Fabric::cores(NodeId node) {
  RAILS_CHECK(node < cores_.size());
  return cores_[node];
}

void Fabric::set_rx_handler(NodeId node, RxHandler handler) {
  RAILS_CHECK(node < rx_handlers_.size());
  rx_handlers_[node] = std::move(handler);
}

std::uint64_t Fabric::delivered_payload(RailId rail) const {
  RAILS_CHECK(rail < delivered_payload_.size());
  return delivered_payload_[rail];
}

void Fabric::route(Segment&& seg) {
  RAILS_CHECK_MSG(seg.dst < rx_handlers_.size(), "segment addressed to unknown node");
  RAILS_CHECK_MSG(seg.src != seg.dst, "loopback traffic should not reach the fabric");

  // Receive-port admission: converging flows serialise at the destination
  // NIC. A segment admitted immediately is handed over inline; a delayed
  // one is re-scheduled for its admission time. Reliability ACK/NACKs ride
  // the control lane end-to-end (see SimNic::compute_times): header-only,
  // so they skip the drain queue instead of stalling behind bulk arrivals —
  // an acknowledgement stuck behind megabytes of received data would defeat
  // its purpose as a timely loss signal.
  if (seg.kind == SegKind::kAck || seg.kind == SegKind::kNack) {
    deliver(std::move(seg));
    return;
  }
  const SimTime deliver_at = nic(seg.dst, seg.rail).admit_rx(events_.now(),
                                                             seg.payload.size());
  if (deliver_at > events_.now()) {
    events_.at(deliver_at, [this, s = std::move(seg)]() mutable { deliver(std::move(s)); });
    return;
  }
  deliver(std::move(seg));
}

void Fabric::deliver(Segment&& seg) {
  delivered_payload_[seg.rail] += seg.payload.size();
  RAILS_TRACE("fabric", "deliver %s msg=%llu rail=%u %u->%u len=%zu t=%.3fus",
              to_string(seg.kind), static_cast<unsigned long long>(seg.msg_id), seg.rail,
              seg.src, seg.dst, seg.payload.size(), to_usec(events_.now()));
  auto& handler = rx_handlers_[seg.dst];
  RAILS_CHECK_MSG(handler != nullptr, "destination node has no rx handler");
  handler(std::move(seg));
}

}  // namespace rails::fabric
