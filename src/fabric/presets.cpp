#include "fabric/presets.hpp"

namespace rails::fabric {

NetworkModelParams myri10g() {
  NetworkModelParams p;
  p.name = "myri10g";
  // Eager path: MX posts cost ~1.9 µs of software (PIO doorbells are
  // uncached writes), wire tail 1.0 µs; the 4 B ping latency therefore
  // lands at ~2.9 µs as in Fig. 9.
  p.post_us = 1.9;
  p.wire_latency_us = 1.0;
  p.pio_bw_mbps = 1150.0;
  p.pio_bw_large_mbps = 650.0;
  p.pio_cache_limit = 16u * 1024u;
  p.mtu = 4u * 1024u;
  p.per_packet_us = 0.15;
  p.max_eager = 64u * 1024u;
  // Rendezvous path: 8 µs handshake + 1170 MB/s DMA reproduces both the
  // 1170 MB/s single-rail plateau and the ~1730 µs / 2 MiB chunk time.
  p.rdv_handshake_us = 8.0;
  p.dma_setup_us = 1.0;
  p.dma_bw_mbps = 1170.0;
  p.gather_scatter = true;
  p.rdma = true;
  return p;
}

NetworkModelParams qsnet2() {
  NetworkModelParams p;
  p.name = "qsnet2";
  // QsNetII has the lowest small-message latency of the pair (~1.6 µs) but
  // a markedly slower eager PIO regime for larger payloads — this asymmetry
  // is what limits the paper's estimated split gain to ~30 % at 64 KiB.
  p.post_us = 1.5;
  p.wire_latency_us = 0.1;
  p.pio_bw_mbps = 900.0;
  p.pio_bw_large_mbps = 450.0;
  p.pio_cache_limit = 8u * 1024u;
  p.mtu = 2u * 1024u;
  p.per_packet_us = 0.1;
  p.max_eager = 64u * 1024u;
  // 6 µs handshake + 837 MB/s DMA reproduces the 837 MB/s plateau and the
  // ~2400 µs / 2 MiB chunk time quoted in §IV-A.
  p.rdv_handshake_us = 6.0;
  p.dma_setup_us = 0.8;
  p.dma_bw_mbps = 837.0;
  p.gather_scatter = true;
  p.rdma = true;
  return p;
}

NetworkModelParams ib_ddr() {
  NetworkModelParams p;
  p.name = "ib-ddr";
  p.post_us = 1.2;
  p.wire_latency_us = 1.0;
  p.pio_bw_mbps = 1250.0;
  p.pio_bw_large_mbps = 700.0;
  p.pio_cache_limit = 16u * 1024u;
  p.mtu = 2u * 1024u;
  p.per_packet_us = 0.1;
  p.max_eager = 32u * 1024u;
  p.rdv_handshake_us = 7.0;
  p.dma_setup_us = 1.2;
  p.dma_bw_mbps = 1400.0;
  p.gather_scatter = false;  // verbs iovec support is limited; forces copies
  p.rdma = true;
  return p;
}

NetworkModelParams gige_tcp() {
  NetworkModelParams p;
  p.name = "gige-tcp";
  p.post_us = 4.0;
  p.wire_latency_us = 22.0;
  p.pio_bw_mbps = 800.0;
  p.pio_bw_large_mbps = 500.0;
  p.pio_cache_limit = 32u * 1024u;
  p.mtu = 1460u;
  p.per_packet_us = 0.5;
  p.max_eager = 64u * 1024u;
  p.rdv_handshake_us = 55.0;
  p.dma_setup_us = 2.0;
  p.dma_bw_mbps = 112.0;
  p.gather_scatter = true;
  p.rdma = false;  // rendezvous is emulated over the stream
  return p;
}

NetworkModelParams myri2000() {
  NetworkModelParams p;
  p.name = "myri2000";
  p.post_us = 2.8;
  p.wire_latency_us = 2.9;
  p.pio_bw_mbps = 500.0;
  p.pio_bw_large_mbps = 320.0;
  p.pio_cache_limit = 8u * 1024u;
  p.mtu = 4u * 1024u;
  p.per_packet_us = 0.3;
  p.max_eager = 32u * 1024u;
  p.rdv_handshake_us = 14.0;
  p.dma_setup_us = 1.5;
  p.dma_bw_mbps = 245.0;
  p.gather_scatter = true;
  p.rdma = true;
  return p;
}

NetworkModelParams seastar_torus() {
  NetworkModelParams p;
  p.name = "seastar-torus";
  // Cray XT4-class figures: ~4.5 us MPI latency split between software post
  // and a sub-microsecond per-hop wire, ~2.1 GB/s sustained injection. The
  // small per-hop latency is the interesting part for routed worlds — a
  // 16x16 mesh diameter (30 hops) adds ~15 us, which is what mesh_sweep's
  // diameter shape checks measure.
  p.post_us = 4.0;
  p.wire_latency_us = 0.5;
  p.pio_bw_mbps = 1800.0;
  p.pio_bw_large_mbps = 1100.0;
  p.pio_cache_limit = 16u * 1024u;
  p.mtu = 4u * 1024u;
  p.per_packet_us = 0.12;
  p.max_eager = 64u * 1024u;
  p.rdv_handshake_us = 9.0;
  p.dma_setup_us = 1.0;
  p.dma_bw_mbps = 2100.0;
  p.gather_scatter = true;
  p.rdma = true;
  return p;
}

NetworkModelParams affine(double latency_us, double bandwidth_mbps) {
  NetworkModelParams p;
  p.name = "affine";
  p.post_us = 0.0;
  p.wire_latency_us = latency_us;
  p.pio_bw_mbps = bandwidth_mbps;
  p.pio_bw_large_mbps = bandwidth_mbps;
  p.pio_cache_limit = ~std::size_t{0};
  p.mtu = ~std::size_t{0} / 2;
  p.per_packet_us = 0.0;
  p.max_eager = ~std::size_t{0} / 2;
  p.rdv_handshake_us = latency_us;
  p.dma_setup_us = 0.0;
  p.dma_bw_mbps = bandwidth_mbps;
  return p;
}

}  // namespace rails::fabric
