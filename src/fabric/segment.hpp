// Wire format: the unit of data a NIC injects onto a rail.
//
// A segment is what one driver post produces. The header fields cover the
// whole engine protocol (eager data — possibly carrying several aggregated
// application packets — rendezvous control, and rendezvous DMA chunks), so
// the fabric can stay ignorant of engine policy while still letting tests
// inspect traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace rails::fabric {

enum class SegKind : std::uint8_t {
  kEager = 0,  ///< eager data; payload framed as one or more sub-packets
  kRts,        ///< rendezvous request-to-send (control)
  kCts,        ///< rendezvous clear-to-send (control)
  kData,       ///< rendezvous DMA chunk
  kFin,        ///< rendezvous completion notification (control)
  kAck,        ///< reliability: cumulative + selective acknowledgement (control)
  kNack,       ///< reliability: checksum-failure report, names the bad `seq`
};

const char* to_string(SegKind kind);

struct Segment {
  SegKind kind = SegKind::kEager;
  NodeId src = 0;
  NodeId dst = 0;
  RailId rail = 0;

  /// Engine-assigned message id (per source node); control segments of one
  /// rendezvous share the id of their message.
  std::uint64_t msg_id = 0;
  Tag tag = 0;

  /// For kData: byte offset of this chunk inside the message. For kRts: the
  /// full message length travels in `total_len`.
  std::uint64_t offset = 0;
  std::uint64_t total_len = 0;

  /// Retransmission generation: 0 for the original post, incremented each
  /// time the engine re-posts the same byte range after a NIC error or a
  /// chunk timeout. Lets stale timeout events recognise superseded chunks.
  std::uint8_t attempt = 0;

  /// End-to-end wire checksum (CRC32C over the protocol-stable header
  /// fields + payload; see Engine's reliability layer). 0 when reliability
  /// is off. Excluded from its own coverage, as on any real wire.
  std::uint32_t crc = 0;

  /// Reliability sequence number, per (src, dst) link, assigned when the
  /// sending engine has `reliability` enabled. 0 = unsequenced (reliability
  /// off, or a kAck/kNack control segment — for kAck this field instead
  /// carries the cumulative acknowledgement).
  std::uint64_t seq = 0;

  /// Real payload bytes (kEager, kData). Control segments carry none.
  std::vector<std::uint8_t> payload;

  std::size_t wire_size() const { return payload.size() + kHeaderBytes; }

  /// Modeled size of the segment header on the wire. The reliability fields
  /// (seq, crc) occupy reserved bytes of the original 40-byte header, so
  /// enabling reliability does not change modeled wire occupancy.
  static constexpr std::size_t kHeaderBytes = 40;
};

}  // namespace rails::fabric
