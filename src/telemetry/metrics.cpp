#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <vector>

namespace rails::telemetry {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

unsigned Histogram::bucket_index(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<unsigned>(std::bit_width(v));
}

std::uint64_t Histogram::bucket_lower(unsigned i) {
  if (i <= 1) return 0;
  return std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::bucket_upper(unsigned i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << i) - 1;
}

void Histogram::observe(std::uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket(unsigned i) const {
  return i < kBucketCount ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = static_cast<double>(n) * p / 100.0 + 0.5;
  std::uint64_t cumulative = 0;
  for (unsigned i = 0; i < kBucketCount; ++i) {
    const std::uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate linearly within the bucket instead of reporting its
      // upper bound: a log2 bucket spans up to a factor of two, and the
      // upper bound alone overstates the percentile by up to 2x. The
      // bucket's range is clipped to the observed [min, max] so exact
      // power-of-two populations (a bucket-boundary value repeated) report
      // the exact value rather than the bucket's width.
      const std::uint64_t lo = std::max(bucket_lower(i), min());
      const std::uint64_t hi = std::min(bucket_upper(i), max());
      if (hi <= lo) return lo;
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      const double value = static_cast<double>(lo) +
                           std::clamp(frac, 0.0, 1.0) * static_cast<double>(hi - lo);
      return static_cast<std::uint64_t>(value + 0.5);
    }
    cumulative += in_bucket;
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  for (unsigned i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (other.count() != 0) {
    const std::uint64_t omin = other.min_.load(std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (omin < cur &&
           !min_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
    }
  }
  const std::uint64_t omax = other.max();
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (omax > cur &&
         !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

template <typename Map, typename T>
T* find_or_create(std::mutex& mutex, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

template <typename Map>
auto* find_only(std::mutex& mutex, const Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
  return find_or_create<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  return find_or_create<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  return find_or_create<decltype(histograms_), Histogram>(mutex_, histograms_, name);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_only(mutex_, counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_only(mutex_, gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_only(mutex_, histograms_, name);
}

std::size_t MetricsRegistry::counter_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size();
}

std::size_t MetricsRegistry::gauge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_.size();
}

std::size_t MetricsRegistry::histogram_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.size();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot the other registry's names under its lock, then fold in without
  // holding both locks at once (merge is a quiescent-point operation; the
  // values themselves are atomics).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [name, c] : other.counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : other.gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : other.histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  for (const auto& [name, c] : counters) counter(name)->inc(c->value());
  for (const auto& [name, g] : gauges) gauge(name)->update_max(g->value());
  for (const auto& [name, h] : histograms) histogram(name)->merge(*h);
}

void MetricsRegistry::dump_text(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, c] : counters_) {
      os << "  " << name << " = " << c->value() << '\n';
    }
  }
  if (!gauges_.empty()) {
    os << "gauges:\n";
    for (const auto& [name, g] : gauges_) {
      os << "  " << name << " = " << g->value() << '\n';
    }
  }
  if (!histograms_.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : histograms_) {
      os << "  " << name << ": count " << h->count() << ", mean " << h->mean()
         << ", p50 " << h->percentile(50.0) << ", p95 " << h->percentile(95.0)
         << ", max " << h->max() << '\n';
    }
  }
}

void MetricsRegistry::dump_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"mean\":" << h->mean() << ",\"p50\":" << h->percentile(50.0)
       << ",\"p95\":" << h->percentile(95.0) << ",\"min\":" << h->min()
       << ",\"max\":" << h->max() << ",\"buckets\":[";
    bool first_bucket = true;
    for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      if (!first_bucket) os << ',';
      first_bucket = false;
      os << '[' << Histogram::bucket_lower(i) << ',' << n << ']';
    }
    os << "]}";
  }
  os << "}}";
}

}  // namespace rails::telemetry
