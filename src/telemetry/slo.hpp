// Declarative SLOs with multi-rate burn-rate alerting
// (docs/OBSERVABILITY.md, "The health plane").
//
// An SLO names a target over a window — "class gold keeps a 99% deadline
// hit rate over 10 ms", "class gold's p99 stays under 200 us" — and the
// monitor turns per-tick health samples (telemetry/timeseries.hpp) into
// alert state. Hit-rate objectives use the multi-window, multi-burn-rate
// recipe: the *burn rate* is how fast the error budget (1 - target) is
// being consumed, and an alert fires only when BOTH a short window and a
// long window burn faster than their thresholds — the short window makes
// detection fast, the long window keeps a transient blip from paging.
// Latency objectives fire when the windowed p99 (recomputed from summed
// per-tick histogram-bucket deltas, not averaged percentiles) exceeds the
// target over both windows. Alerts clear with hysteresis: `clear_patience`
// consecutive healthy evaluations, so a metric oscillating on the
// threshold cannot flap.
//
// A firing transition escalates into the flight recorder (the engine wires
// this): the postmortem bundle carries the offending time series, so the
// autopsy shows the collapse unfolding, not just the moment of the page.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "telemetry/timeseries.hpp"

namespace rails::telemetry {

/// One `slo <class> ...` config directive (core/config.cpp).
struct SloSpec {
  std::string cls;      ///< traffic-class name the objective applies to
  double p99_us = 0;    ///< latency objective (0 = none)
  double hit_rate = 0;  ///< deadline hit-rate objective in (0, 1) (0 = none)
  /// Slow evaluation window. The error budget must burn fast over BOTH
  /// windows to fire.
  SimDuration window = usec(10'000);
  /// Fast window (0 = window / 12, the SRE-handbook ratio).
  SimDuration fast_window = 0;
  /// Burn-rate thresholds: observed error rate / budget over the window.
  double fast_burn = 14.4;
  double slow_burn = 6.0;
  /// Consecutive healthy evaluations before a firing alert clears.
  unsigned clear_patience = 3;
  /// Minimum deadline-tagged completions in the fast window before the
  /// hit-rate objective may fire (an idle class is healthy, not in outage).
  std::uint64_t min_events = 8;

  SimDuration effective_fast_window() const {
    return fast_window > 0 ? fast_window : window / 12;
  }
};

/// Live state of one objective (one spec yields up to two: hit_rate, p99).
struct AlertState {
  std::string name;   ///< "<class>.hit_rate" / "<class>.p99"
  std::string cls;
  bool firing = false;
  std::uint64_t fired_count = 0;   ///< ok->firing transitions
  SimTime since = 0;               ///< time of the last transition
  double fast_value = 0;           ///< current fast-window burn rate / p99_us
  double slow_value = 0;
  double threshold = 0;            ///< what fast_value is compared against
};

/// One ok<->firing transition, returned by evaluate() for escalation.
struct AlertEvent {
  std::string name;
  std::string cls;
  bool firing = false;
  double fast_value = 0;
  double slow_value = 0;
  std::string detail;  ///< human summary for the postmortem trigger
};

class SloMonitor {
 public:
  explicit SloMonitor(std::vector<SloSpec> specs);

  const std::vector<SloSpec>& specs() const { return specs_; }

  /// Maps spec class names onto ClassId order (the sampler's class list).
  /// Specs naming an unknown class are kept but never evaluated.
  void bind(const std::vector<std::string>& class_names);

  /// Feeds one sampling tick (every bound class, in ClassId order) and
  /// re-evaluates every objective. Returns the transitions (empty almost
  /// always; the caller escalates firing ones into the flight recorder).
  std::vector<AlertEvent> observe(SimTime now, const std::vector<ClassTick>& ticks);

  bool any_firing() const;
  std::uint64_t alerts_fired() const { return alerts_fired_; }
  const std::vector<AlertState>& alerts() const { return alerts_; }

  /// {"alerts":[{"name":..,"firing":..,..},..]}
  void write_json(std::ostream& os) const;
  /// Human-readable alert table (railsctl slo).
  void dump(std::ostream& os) const;

  /// One retained sampling tick (public so window-summing helpers see it).
  struct TickRec {
    SimTime time = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
  };

 private:
  /// One objective under evaluation: which spec, which kind, its window
  /// history and its alert slot.
  struct Objective {
    std::size_t spec = 0;
    bool latency = false;  ///< false = hit-rate burn, true = p99
    int cls = -1;          ///< bound ClassId (-1 = unbound, never evaluated)
    std::deque<TickRec> history;
    unsigned healthy_streak = 0;
    std::size_t alert = 0;  ///< index into alerts_
  };

  void evaluate(Objective& obj, SimTime now, std::vector<AlertEvent>& out);

  std::vector<SloSpec> specs_;
  std::vector<Objective> objectives_;
  std::vector<AlertState> alerts_;
  std::uint64_t alerts_fired_ = 0;
};

/// Per-class SLO scorecard over *cumulative* registry counters: deadline
/// hit rate, whole-run p50/p99, goodput share, shed/downgrade counts. By
/// construction every cell reconciles exactly with the qos.<class>.*
/// metrics it is read from (bench/tenant_storm shape-checks this).
struct ScorecardRow {
  std::string cls;
  std::uint64_t granted = 0;
  std::uint64_t granted_bytes = 0;
  double goodput_share = 0;  ///< granted_bytes / sum over classes
  std::uint64_t deadline_hits = 0;
  std::uint64_t deadline_misses = 0;
  double hit_rate = 1.0;  ///< 1.0 when no deadline-tagged completions
  double p50_us = 0;      ///< cumulative latency percentiles
  double p99_us = 0;
  std::uint64_t shed = 0;        ///< try_isend refusals (rejected_full)
  std::uint64_t rejects = 0;     ///< deadline admission rejects
  std::uint64_t downgrades = 0;  ///< deadline admission downgrades
  std::int64_t queue_depth = 0;
};

class Scorecard {
 public:
  /// Reads one row per class from `registry` (qos.<class>.* metrics).
  static std::vector<ScorecardRow> collect(const MetricsRegistry& registry,
                                           const std::vector<std::string>& class_names);
  static void render(std::ostream& os, const std::vector<ScorecardRow>& rows);
  static void write_json(std::ostream& os, const std::vector<ScorecardRow>& rows);
};

}  // namespace rails::telemetry
