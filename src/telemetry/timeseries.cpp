#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

namespace rails::telemetry {

namespace {

const char* agg_name(SeriesAgg agg) {
  switch (agg) {
    case SeriesAgg::kMean: return "mean";
    case SeriesAgg::kMax: return "max";
    case SeriesAgg::kLast: return "last";
  }
  return "?";
}

double merge_values(SeriesAgg agg, double a, double b) {
  switch (agg) {
    case SeriesAgg::kMean: return (a + b) / 2.0;
    case SeriesAgg::kMax: return a > b ? a : b;
    case SeriesAgg::kLast: return b;
  }
  return b;
}

void write_double(std::ostream& os, double v) {
  // JSON has no NaN/Inf; clamp to null-free 0 (a tick with no samples).
  if (!(v == v) || v > 1e300 || v < -1e300) v = 0;
  os << v;
}

}  // namespace

// -- Series ------------------------------------------------------------------

Series::Series(std::string name, SeriesAgg agg, std::size_t capacity)
    : name_(std::move(name)), agg_(agg), capacity_(std::max<std::size_t>(capacity, 4)) {
  if (capacity_ % 2 != 0) ++capacity_;
  points_.reserve(capacity_);
}

void Series::push(SimTime t, double v) {
  last_raw_ = v;
  if (stride_ == 1) {
    append(t, v);
    return;
  }
  // Fold raw samples into the pending point until a full stride is covered.
  if (pending_n_ == 0) {
    pending_t_ = t;
    pending_v_ = v;
  } else {
    pending_v_ = agg_ == SeriesAgg::kMean
                     ? (pending_v_ * static_cast<double>(pending_n_) + v) /
                           static_cast<double>(pending_n_ + 1)
                     : merge_values(agg_, pending_v_, v);
  }
  if (++pending_n_ >= stride_) {
    append(pending_t_, pending_v_);
    pending_n_ = 0;
  }
}

void Series::append(SimTime t, double v) {
  if (points_.size() >= capacity_) compact();
  points_.push_back({t, v});
}

void Series::compact() {
  // Merge adjacent pairs in place: N points -> N/2, stride doubles. The
  // buffer keeps spanning the whole run at half the resolution.
  std::size_t out = 0;
  for (std::size_t i = 0; i + 1 < points_.size(); i += 2) {
    points_[out].time = points_[i].time;
    points_[out].value = merge_values(agg_, points_[i].value, points_[i + 1].value);
    ++out;
  }
  if (points_.size() % 2 != 0) points_[out++] = points_.back();
  points_.resize(out);
  stride_ *= 2;
}

void Series::write_json(std::ostream& os) const {
  os << "{\"name\":\"" << name_ << "\",\"agg\":\"" << agg_name(agg_)
     << "\",\"stride\":" << stride_ << ",\"last\":";
  write_double(os, last_raw_);
  os << ",\"points\":[";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i != 0) os << ",";
    os << "[" << points_[i].time << ",";
    write_double(os, points_[i].value);
    os << "]";
  }
  os << "]}";
}

// -- percentile over raw bucket deltas ---------------------------------------

double percentile_from_buckets(
    const std::array<std::uint64_t, Histogram::kBucketCount>& buckets, double p) {
  std::uint64_t total = 0;
  for (const auto n : buckets) total += n;
  if (total == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t n = buckets[i];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= target) {
      // Linear interpolation inside the bucket's [lower, upper] span. For a
      // delta array the observed min/max are unknown, so the bucket bounds
      // are the best available range (documented in timeseries.hpp).
      const double lo = static_cast<double>(Histogram::bucket_lower(i));
      const double hi = static_cast<double>(Histogram::bucket_upper(i));
      const double within = (target - static_cast<double>(cum)) / static_cast<double>(n);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cum += n;
  }
  return static_cast<double>(Histogram::bucket_upper(Histogram::kBucketCount - 1));
}

// -- HealthSampler -----------------------------------------------------------

HealthSampler::HealthSampler(const TimeseriesConfig& cfg) : cfg_(cfg) {
  if (cfg_.interval <= 0) cfg_.interval = usec(100);
}

void HealthSampler::add_source(Source::Kind kind, std::string series_name,
                               std::string metric, SeriesAgg agg, double scale,
                               int cls, std::string metric2) {
  Source s;
  s.kind = kind;
  s.metric = std::move(metric);
  s.metric2 = std::move(metric2);
  s.scale = scale;
  s.cls = cls;
  sources_.push_back(std::move(s));
  series_.emplace_back(std::move(series_name), agg, cfg_.capacity);
}

void HealthSampler::attach(MetricsRegistry* registry,
                           std::vector<std::string> class_names,
                           std::uint32_t rail_count) {
  registry_ = registry;
  class_names_ = std::move(class_names);
  rail_count_ = rail_count;
  sources_.clear();
  series_.clear();
  class_ticks_.assign(class_names_.size(), {});
  class_prev_buckets_.assign(class_names_.size(), {});
  class_hists_.assign(class_names_.size(), nullptr);
  class_hits_.assign(class_names_.size(), nullptr);
  class_misses_.assign(class_names_.size(), nullptr);
  class_prev_hits_.assign(class_names_.size(), 0);
  class_prev_misses_.assign(class_names_.size(), 0);
  ticks_ = 0;
  last_tick_time_ = 0;
  if (registry_ == nullptr) return;

  // The curated set. Rates are per-millisecond of virtual time so numbers
  // stay readable at the default 100 us interval.
  add_source(Source::Kind::kCounterRate, "engine.msg_rate", "engine.sends",
             SeriesAgg::kMean);
  add_source(Source::Kind::kCounterRate, "engine.recv_rate", "engine.recvs",
             SeriesAgg::kMean);
  add_source(Source::Kind::kCounterRate, "engine.retransmit_rate",
             "engine.reliability.retransmits", SeriesAgg::kMean);
  add_source(Source::Kind::kCounterRate, "engine.tx_error_rate", "engine.tx_errors",
             SeriesAgg::kMean);
  for (std::uint32_t r = 0; r < rail_count_; ++r) {
    const std::string rail = "engine.rail" + std::to_string(r);
    add_source(Source::Kind::kGauge, rail + ".trust", rail + ".trust",
               SeriesAgg::kLast);
    add_source(Source::Kind::kGauge, rail + ".scale", rail + ".profile_scale_x1000",
               SeriesAgg::kLast, 1e-3);
  }
  for (std::size_t c = 0; c < class_names_.size(); ++c) {
    const std::string base = "qos." + class_names_[c];
    add_source(Source::Kind::kGauge, base + ".queue_depth", base + ".queue_depth",
               SeriesAgg::kMax);
    add_source(Source::Kind::kHistP50, base + ".p50_us", base + ".latency_ns",
               SeriesAgg::kMean, 1.0, static_cast<int>(c));
    add_source(Source::Kind::kHistP99, base + ".p99_us", base + ".latency_ns",
               SeriesAgg::kMean, 1.0, static_cast<int>(c));
    add_source(Source::Kind::kHitRate, base + ".hit_rate", base + ".deadline_hits",
               SeriesAgg::kMean, 1.0, static_cast<int>(c),
               base + ".deadline_misses");
    add_source(Source::Kind::kCounterRate, base + ".shed_rate", base + ".rejected_full",
               SeriesAgg::kMean, 1.0, static_cast<int>(c));
  }
  // Perf self-time gauges exist only when the cycle profiler runs; the lazy
  // re-resolve in sample() picks them up when they appear.
  add_source(Source::Kind::kGauge, "perf.submit_self", "perf.submit.self_cycles",
             SeriesAgg::kLast);
  add_source(Source::Kind::kGauge, "perf.progress_self", "perf.progress.self_cycles",
             SeriesAgg::kLast);
}

void HealthSampler::resolve(Source& s) {
  switch (s.kind) {
    case Source::Kind::kCounterRate:
      if (s.counter == nullptr) s.counter = registry_->find_counter(s.metric);
      break;
    case Source::Kind::kGauge:
      if (s.gauge == nullptr) s.gauge = registry_->find_gauge(s.metric);
      break;
    case Source::Kind::kHistP50:
    case Source::Kind::kHistP99:
      if (s.hist == nullptr) s.hist = registry_->find_histogram(s.metric);
      break;
    case Source::Kind::kHitRate:
      if (s.counter == nullptr) s.counter = registry_->find_counter(s.metric);
      if (s.counter2 == nullptr) s.counter2 = registry_->find_counter(s.metric2);
      break;
  }
}

const std::vector<ClassTick>& HealthSampler::sample(SimTime now) {
  if (registry_ == nullptr) return class_ticks_;
  const double interval_ms =
      static_cast<double>(now > last_tick_time_ ? now - last_tick_time_
                                                : cfg_.interval) /
      1e6;

  // Refresh the per-class latency-histogram deltas first; the percentile
  // sources below read from class_ticks_.
  for (std::size_t c = 0; c < class_names_.size(); ++c) {
    ClassTick& tick = class_ticks_[c];
    tick = {};
    if (class_hists_[c] == nullptr) {
      class_hists_[c] = registry_->find_histogram("qos." + class_names_[c] +
                                                  ".latency_ns");
    }
    if (class_hits_[c] == nullptr) {
      class_hits_[c] =
          registry_->find_counter("qos." + class_names_[c] + ".deadline_hits");
    }
    if (class_misses_[c] == nullptr) {
      class_misses_[c] =
          registry_->find_counter("qos." + class_names_[c] + ".deadline_misses");
    }
    if (const Histogram* h = class_hists_[c]) {
      for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
        const std::uint64_t cur = h->bucket(i);
        tick.buckets[i] = cur - class_prev_buckets_[c][i];
        class_prev_buckets_[c][i] = cur;
        tick.completions += tick.buckets[i];
      }
      if (tick.completions > 0) {
        tick.p50_us = to_usec(
            static_cast<SimDuration>(percentile_from_buckets(tick.buckets, 50)));
        tick.p99_us = to_usec(
            static_cast<SimDuration>(percentile_from_buckets(tick.buckets, 99)));
      }
    }
    if (class_hits_[c] != nullptr) {
      const std::uint64_t cur = class_hits_[c]->value();
      tick.hits = cur - class_prev_hits_[c];
      class_prev_hits_[c] = cur;
    }
    if (class_misses_[c] != nullptr) {
      const std::uint64_t cur = class_misses_[c]->value();
      tick.misses = cur - class_prev_misses_[c];
      class_prev_misses_[c] = cur;
    }
  }

  for (std::size_t i = 0; i < sources_.size(); ++i) {
    Source& s = sources_[i];
    resolve(s);
    double v = 0;
    bool have = false;
    switch (s.kind) {
      case Source::Kind::kCounterRate:
        if (s.counter != nullptr) {
          const std::uint64_t cur = s.counter->value();
          v = static_cast<double>(cur - s.prev) / interval_ms * s.scale;
          s.prev = cur;
          have = true;
        }
        break;
      case Source::Kind::kGauge:
        if (s.gauge != nullptr) {
          v = static_cast<double>(s.gauge->value()) * s.scale;
          have = true;
        }
        break;
      case Source::Kind::kHistP50:
        if (s.cls >= 0 && static_cast<std::size_t>(s.cls) < class_ticks_.size()) {
          v = class_ticks_[static_cast<std::size_t>(s.cls)].p50_us;
          have = true;
        }
        break;
      case Source::Kind::kHistP99:
        if (s.cls >= 0 && static_cast<std::size_t>(s.cls) < class_ticks_.size()) {
          v = class_ticks_[static_cast<std::size_t>(s.cls)].p99_us;
          have = true;
        }
        break;
      case Source::Kind::kHitRate:
        if (s.cls >= 0 && static_cast<std::size_t>(s.cls) < class_ticks_.size()) {
          const ClassTick& tick = class_ticks_[static_cast<std::size_t>(s.cls)];
          const std::uint64_t total = tick.hits + tick.misses;
          // No deadline-tagged completions this tick: report a healthy 1.0
          // so an idle class never reads as an outage.
          v = total == 0 ? 1.0
                         : static_cast<double>(tick.hits) / static_cast<double>(total);
          have = true;
        }
        break;
    }
    if (have) series_[i].push(now, v);
  }
  ++ticks_;
  last_tick_time_ = now;
  return class_ticks_;
}

const Series* HealthSampler::find(std::string_view name) const {
  for (const Series& s : series_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

void HealthSampler::write_json(std::ostream& os) const {
  os << "{\"interval_us\":" << to_usec(cfg_.interval) << ",\"ticks\":" << ticks_
     << ",\"series\":[";
  bool first = true;
  for (const Series& s : series_) {
    if (s.empty()) continue;  // unresolved sources (e.g. perf off) stay out
    if (!first) os << ",";
    first = false;
    s.write_json(os);
  }
  os << "]}";
}

}  // namespace rails::telemetry
