// Prediction-accuracy tracking (the paper's Table-style accuracy view).
//
// Every scheduling decision rests on predicted transfer durations — linear
// interpolation over sampled profiles plus per-NIC busy offsets (Fig. 2,
// eq. (1)). This tracker records (predicted, actual) completion pairs per
// rail as transfers really finish and maintains online residual statistics:
// mean/p95 relative error and the signed bias, so a run can report how
// trustworthy its own predictions were.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rails::telemetry {

class PredictionTracker {
 public:
  explicit PredictionTracker(std::size_t rail_count);

  std::size_t rail_count() const { return rails_.size(); }

  /// Records one completed transfer on `rail`: the duration the estimator
  /// promised vs the duration the fabric delivered (both measured from the
  /// same decision instant). Ignores rails beyond rail_count().
  void record(RailId rail, SimDuration predicted, SimDuration actual);

  std::size_t samples(RailId rail) const;
  std::size_t total_samples() const;

  struct RailAccuracy {
    std::size_t samples = 0;
    double mean_rel_error = 0.0;   ///< mean |actual-predicted| / actual
    double p95_rel_error = 0.0;    ///< 95th percentile of the same
    double max_rel_error = 0.0;
    double mean_bias = 0.0;        ///< mean (actual-predicted)/actual; >0 = optimistic
    double mean_abs_error_us = 0.0;
  };

  RailAccuracy accuracy(RailId rail) const;

  /// Folds per-worker trackers together (RunningStats::merge idiom). Rail
  /// counts must match.
  void merge(const PredictionTracker& other);

  /// Table view, one row per rail.
  void dump(std::ostream& os) const;

 private:
  struct PerRail {
    RunningStats rel_error;      ///< |actual-predicted| / actual
    RunningStats bias;           ///< (actual-predicted) / actual
    RunningStats abs_error_ns;   ///< |actual-predicted|
    /// Exact percentiles; mutable because SampleSet::percentile sorts
    /// lazily and accuracy() is logically const.
    mutable SampleSet rel_samples;
  };

  std::vector<PerRail> rails_;
};

}  // namespace rails::telemetry
