// Prediction-accuracy tracking (the paper's Table-style accuracy view).
//
// Every scheduling decision rests on predicted transfer durations — linear
// interpolation over sampled profiles plus per-NIC busy offsets (Fig. 2,
// eq. (1)). This tracker records (predicted, actual) completion pairs per
// rail as transfers really finish and maintains online residual statistics:
// mean/p95 relative error and the signed bias, so a run can report how
// trustworthy its own predictions were.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace rails::telemetry {

/// Fixed-capacity sample store: exact (every sample kept) below `cap`, a
/// uniform Algorithm-R reservoir beyond it — so percentiles are exact for
/// short runs and unbiased estimates on long soaks, while memory stays
/// bounded. The replacement stream is a fixed-seed xoshiro, keeping the DES
/// deterministic.
class BoundedReservoir {
 public:
  explicit BoundedReservoir(std::size_t cap, std::uint64_t seed)
      : cap_(cap), rng_(seed) {}

  void add(double x);
  std::size_t size() const { return samples_.size(); }       ///< stored (≤ cap)
  std::uint64_t seen() const { return seen_; }               ///< ever offered
  bool exact() const { return seen_ <= cap_; }
  double percentile(double p) const;  ///< over the stored samples, lazy sort
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::size_t cap_ = 0;
  std::uint64_t seen_ = 0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  Xoshiro256 rng_;
};

class PredictionTracker {
 public:
  explicit PredictionTracker(std::size_t rail_count, std::size_t reservoir_cap = 4096,
                             std::size_t recent_window = 256);

  std::size_t rail_count() const { return rails_.size(); }
  std::size_t reservoir_capacity() const { return reservoir_cap_; }
  std::size_t recent_window() const { return recent_window_; }
  /// Residual samples currently *stored* for `rail` (bounded by the cap,
  /// unlike samples() which counts everything ever recorded).
  std::size_t reservoir_size(RailId rail) const;

  /// Records one completed transfer on `rail`: the duration the estimator
  /// promised vs the duration the fabric delivered (both measured from the
  /// same decision instant). Ignores rails beyond rail_count().
  void record(RailId rail, SimDuration predicted, SimDuration actual);

  std::size_t samples(RailId rail) const;
  std::size_t total_samples() const;

  struct RailAccuracy {
    std::size_t samples = 0;
    double mean_rel_error = 0.0;   ///< mean |actual-predicted| / actual
    double p95_rel_error = 0.0;    ///< 95th percentile of the same
    double max_rel_error = 0.0;
    double mean_bias = 0.0;        ///< mean (actual-predicted)/actual; >0 = optimistic
    double mean_abs_error_us = 0.0;
  };

  RailAccuracy accuracy(RailId rail) const;

  /// Accuracy over only the last `recent_window()` samples — what the drift
  /// detector cares about: a regime change shows here long before it moves
  /// the lifetime means.
  struct RecentAccuracy {
    std::size_t samples = 0;
    double mean_rel_error = 0.0;
    double p95_rel_error = 0.0;
    double mean_bias = 0.0;
  };

  RecentAccuracy recent_accuracy(RailId rail) const;

  /// Folds per-worker trackers together (RunningStats::merge idiom). Rail
  /// counts must match. Lifetime stats merge exactly; reservoir percentiles
  /// and the recent window are approximate once either side passed its cap.
  void merge(const PredictionTracker& other);

  /// Table view, one row per rail.
  void dump(std::ostream& os) const;

  /// Machine-readable snapshot, one object per rail:
  ///   {"rail0":{"samples":N,"mean_rel_error":...,"p95_rel_error":...,
  ///             "max_rel_error":...,"mean_bias":...,"mean_abs_error_us":...},...}
  void dump_json(std::ostream& os) const;

 private:
  struct PerRail {
    explicit PerRail(std::size_t cap, std::uint64_t seed, std::size_t window)
        : rel_samples(cap, seed) {
      recent_rel.reserve(window);
      recent_bias.reserve(window);
    }
    RunningStats rel_error;      ///< |actual-predicted| / actual
    RunningStats bias;           ///< (actual-predicted) / actual
    RunningStats abs_error_ns;   ///< |actual-predicted|
    /// Bounded percentile store (exact below the cap, reservoir beyond);
    /// mutable because percentile() sorts lazily and accuracy() is const.
    mutable BoundedReservoir rel_samples;
    // Ring buffers of the most recent residuals (recent_accuracy view).
    std::vector<double> recent_rel;
    std::vector<double> recent_bias;
    std::size_t recent_pos = 0;
  };

  void push_recent(PerRail& pr, double rel, double bias);

  std::size_t reservoir_cap_;
  std::size_t recent_window_;
  std::vector<PerRail> rails_;
};

}  // namespace rails::telemetry
