// Metrics & telemetry registry (observability layer).
//
// The engine's EngineStats answers "how many"; this registry answers "how
// long, how distributed, and how well-predicted" — the per-layer breakdown
// that "Breaking Band" (Zambre & Chandramowlishwaran) shows is required to
// understand multirail critical paths. Three primitives:
//
//  * Counter   — monotonically increasing, relaxed-atomic.
//  * Gauge     — last-value or high-water-mark (update_max), atomic.
//  * Histogram — log2-bucketed distribution (bucket i >= 1 spans
//                [2^(i-1), 2^i)), atomic per-bucket so worker threads can
//                observe concurrently; mergeable like RunningStats::merge.
//
// A MetricsRegistry names metrics and owns their storage at stable
// addresses: instrumented modules resolve Counter*/Gauge*/Histogram*
// handles once at attach time and then touch only relaxed atomics on the
// hot path. When no registry is attached, every instrumentation site is a
// single null-pointer check — the same zero-cost idiom as
// Engine::set_tracer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace rails::telemetry {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// High-water-mark update: keeps the maximum ever seen.
  void update_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  /// Bucket 0 holds exact zeros; bucket i >= 1 spans [2^(i-1), 2^i). With
  /// 64-bit samples the highest index is 64, hence 65 buckets.
  static constexpr unsigned kBucketCount = 65;

  static unsigned bucket_index(std::uint64_t v);
  /// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
  static std::uint64_t bucket_lower(unsigned i);
  /// Inclusive upper bound of bucket `i`.
  static std::uint64_t bucket_upper(unsigned i);

  void observe(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(unsigned i) const;
  double mean() const;
  std::uint64_t min() const;
  std::uint64_t max() const;

  /// Approximate percentile: linear interpolation within the bucket where
  /// the cumulative count first reaches p%, the bucket's range clipped to
  /// the observed [min, max]. A population concentrated on one value (e.g.
  /// an exact power of two sitting on a bucket boundary) therefore reports
  /// that value exactly instead of the bucket's upper bound.
  std::uint64_t percentile(double p) const;

  /// Parallel-reduction merge, mirroring RunningStats::merge.
  void merge(const Histogram& other);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. The returned
  /// pointer is stable for the registry's lifetime — instrumented modules
  /// cache it at attach time and never look it up again.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Lookup without creation (nullptr when absent). For tests/exporters.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  std::size_t counter_count() const;
  std::size_t gauge_count() const;
  std::size_t histogram_count() const;

  /// Folds another registry in by metric name (per-worker registries are
  /// merged into one at the end of a run, the RunningStats::merge idiom).
  void merge(const MetricsRegistry& other);

  /// Human-readable snapshot: sorted names, histogram summary lines.
  void dump_text(std::ostream& os) const;

  /// Machine-readable snapshot:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{name:{count,sum,mean,p50,p95,max,buckets:[[lo,n],..]}}}
  void dump_json(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace rails::telemetry
