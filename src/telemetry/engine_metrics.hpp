// Cached metric handles for the communication engine's hot path.
//
// attach() resolves every named metric once (allocating registry entries);
// afterwards each hook is a single branch on `registry_` plus relaxed
// atomics — no map lookups, no allocation, no locks. Detached, every hook
// is exactly one null-pointer check, mirroring Engine::set_tracer's
// zero-cost contract (verified by an allocation-counting test).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "telemetry/metrics.hpp"

namespace rails::telemetry {

class EngineMetrics {
 public:
  /// Resolves handles against `registry` for `rail_count` rails. Passing
  /// nullptr detaches (all hooks become no-ops).
  void attach(MetricsRegistry* registry, std::size_t rail_count) {
    registry_ = registry;
    per_rail_bytes_.clear();
    per_rail_chunks_.clear();
    per_rail_healthy_.clear();
    per_rail_trust_.clear();
    per_rail_scale_.clear();
    per_rail_drift_.clear();
    if (registry_ == nullptr) return;
    submits_ = registry_->counter("engine.sends");
    recv_posts_ = registry_->counter("engine.recvs");
    eager_msgs_ = registry_->counter("engine.eager_msgs");
    rdv_msgs_ = registry_->counter("engine.rdv_msgs");
    eager_emits_ = registry_->counter("engine.eager_segments");
    chunks_posted_ = registry_->counter("engine.rdv_chunks");
    offload_signals_ = registry_->counter("engine.offload_signals");
    rdv_roundtrips_ = registry_->counter("engine.rdv_roundtrips");
    progress_calls_ = registry_->counter("engine.progress_calls");
    send_latency_ = registry_->histogram("engine.send_latency_ns");
    recv_latency_ = registry_->histogram("engine.recv_latency_ns");
    queueing_delay_ = registry_->histogram("engine.queueing_delay_ns");
    emission_bytes_ = registry_->histogram("engine.emission_bytes");
    chunk_bytes_ = registry_->histogram("engine.chunk_bytes");
    tx_errors_ = registry_->counter("engine.tx_errors");
    chunk_timeouts_ = registry_->counter("engine.chunk_timeouts");
    failovers_ = registry_->counter("engine.failovers");
    retries_ = registry_->counter("engine.failover_retries");
    exhausted_ = registry_->counter("engine.failover_exhausted");
    quarantines_ = registry_->counter("engine.quarantines");
    reprobes_ = registry_->counter("engine.reprobes");
    reprobe_successes_ = registry_->counter("engine.reprobe_successes");
    duplicate_chunks_ = registry_->counter("engine.duplicate_chunks");
    rel_corruptions_ = registry_->counter("engine.reliability.corruptions");
    rel_drops_inferred_ = registry_->counter("engine.reliability.drops_inferred");
    rel_retransmits_ = registry_->counter("engine.reliability.retransmits");
    rel_dup_suppressed_ = registry_->counter("engine.reliability.dup_suppressed");
    rel_exhausted_ = registry_->counter("engine.reliability.retry_exhausted");
    rel_acks_ = registry_->counter("engine.reliability.acks");
    rel_nacks_ = registry_->counter("engine.reliability.nacks");
    recal_corrections_ = registry_->counter("engine.recal.corrections");
    recal_resamples_ = registry_->counter("engine.recal.resamples");
    trust_demotions_ = registry_->counter("engine.recal.demotions");
    trust_promotions_ = registry_->counter("engine.recal.promotions");
    trace_dropped_ = registry_->gauge("engine.trace_dropped");
    flight_evictions_ = registry_->gauge("engine.flight_evictions");
    per_rail_bytes_.reserve(rail_count);
    per_rail_chunks_.reserve(rail_count);
    per_rail_healthy_.reserve(rail_count);
    per_rail_trust_.reserve(rail_count);
    per_rail_scale_.reserve(rail_count);
    per_rail_drift_.reserve(rail_count);
    for (std::size_t r = 0; r < rail_count; ++r) {
      const std::string prefix = "engine.rail" + std::to_string(r);
      per_rail_bytes_.push_back(registry_->counter(prefix + ".payload_bytes"));
      per_rail_chunks_.push_back(registry_->counter(prefix + ".segments"));
      per_rail_healthy_.push_back(registry_->gauge(prefix + ".healthy"));
      per_rail_healthy_.back()->set(1);
      per_rail_trust_.push_back(registry_->gauge(prefix + ".trust"));
      per_rail_trust_.back()->set(0);  // TRUSTED
      per_rail_scale_.push_back(registry_->gauge(prefix + ".profile_scale_x1000"));
      per_rail_scale_.back()->set(1000);
      per_rail_drift_.push_back(registry_->gauge(prefix + ".drift_x1000"));
      per_rail_drift_.back()->set(0);
    }
  }

  /// Re-resolves the per-strategy decision counters; called whenever the
  /// installed strategy (or the registry) changes.
  void set_strategy_name(const std::string& name) {
    strategy_name_ = name;
    if (registry_ == nullptr || name.empty()) {
      plan_eager_ = nullptr;
      plan_rendezvous_ = nullptr;
      return;
    }
    plan_eager_ = registry_->counter("strategy." + name + ".plan_eager");
    plan_rendezvous_ = registry_->counter("strategy." + name + ".plan_rendezvous");
  }

  bool attached() const { return registry_ != nullptr; }
  const std::string& strategy_name() const { return strategy_name_; }

  // -- hot-path hooks (one branch when detached) -----------------------------

  void on_submit(bool rendezvous) {
    if (registry_ == nullptr) return;
    submits_->inc();
    (rendezvous ? rdv_msgs_ : eager_msgs_)->inc();
  }
  void on_recv_posted() {
    if (registry_ == nullptr) return;
    recv_posts_->inc();
  }
  void on_progress() {
    if (registry_ == nullptr) return;
    progress_calls_->inc();
  }
  void on_plan_eager() {
    if (registry_ == nullptr || plan_eager_ == nullptr) return;
    plan_eager_->inc();
  }
  void on_plan_rendezvous() {
    if (registry_ == nullptr || plan_rendezvous_ == nullptr) return;
    plan_rendezvous_->inc();
  }
  void on_eager_emit(RailId rail, std::size_t bytes, bool offloaded) {
    if (registry_ == nullptr) return;
    eager_emits_->inc();
    if (offloaded) offload_signals_->inc();
    emission_bytes_->observe(bytes);
    if (rail < per_rail_bytes_.size()) {
      per_rail_bytes_[rail]->inc(bytes);
      per_rail_chunks_[rail]->inc();
    }
  }
  void on_chunk_posted(RailId rail, std::size_t bytes) {
    if (registry_ == nullptr) return;
    chunks_posted_->inc();
    chunk_bytes_->observe(bytes);
    if (rail < per_rail_bytes_.size()) {
      per_rail_bytes_[rail]->inc(bytes);
      per_rail_chunks_[rail]->inc();
    }
  }
  void on_rdv_complete() {
    if (registry_ == nullptr) return;
    rdv_roundtrips_->inc();
  }
  void on_send_complete(SimDuration latency) {
    if (registry_ == nullptr) return;
    send_latency_->observe(latency > 0 ? static_cast<std::uint64_t>(latency) : 0);
  }
  /// Submission-to-first-emission delay of one message.
  void on_queueing(SimDuration queueing) {
    if (registry_ == nullptr) return;
    queueing_delay_->observe(queueing > 0 ? static_cast<std::uint64_t>(queueing) : 0);
  }
  void on_recv_complete(SimDuration latency) {
    if (registry_ == nullptr) return;
    recv_latency_->observe(latency > 0 ? static_cast<std::uint64_t>(latency) : 0);
  }

  // -- fault-tolerance hooks -------------------------------------------------

  /// A posted segment came back as a completion-queue error (dropped by a
  /// down link).
  void on_tx_error() {
    if (registry_ == nullptr) return;
    tx_errors_->inc();
  }
  /// A DMA chunk exceeded its predicted completion plus slack.
  void on_chunk_timeout() {
    if (registry_ == nullptr) return;
    chunk_timeouts_->inc();
  }
  /// An in-flight byte range was re-split across surviving rails.
  void on_failover() {
    if (registry_ == nullptr) return;
    failovers_->inc();
  }
  /// One segment re-posted (counts every retransmitted segment).
  void on_retry() {
    if (registry_ == nullptr) return;
    retries_->inc();
  }
  /// A byte range ran out of attempts; its send is now failed.
  void on_exhausted() {
    if (registry_ == nullptr) return;
    exhausted_->inc();
  }
  void on_quarantine(RailId rail) {
    if (registry_ == nullptr) return;
    quarantines_->inc();
    if (rail < per_rail_healthy_.size()) per_rail_healthy_[rail]->set(0);
  }
  void on_reprobe(RailId rail, bool success) {
    if (registry_ == nullptr) return;
    reprobes_->inc();
    if (!success) return;
    reprobe_successes_->inc();
    if (rail < per_rail_healthy_.size()) per_rail_healthy_[rail]->set(1);
  }
  /// Receiver saw a DATA chunk for bytes it already has (late duplicate
  /// after a spurious-timeout retransmit).
  void on_duplicate_chunk() {
    if (registry_ == nullptr) return;
    duplicate_chunks_->inc();
  }

  // -- end-to-end reliability hooks (docs/FAULTS.md) -------------------------

  /// Wire-checksum mismatch detected on receive (the segment was NACKed).
  void on_rel_corruption() {
    if (registry_ == nullptr) return;
    rel_corruptions_->inc();
  }
  /// ACK timeout expired — a silent drop was inferred.
  void on_rel_drop_inferred() {
    if (registry_ == nullptr) return;
    rel_drops_inferred_->inc();
  }
  /// A sequenced segment was retransmitted from its parked copy.
  void on_rel_retransmit() {
    if (registry_ == nullptr) return;
    rel_retransmits_->inc();
  }
  /// The receive sequence window swallowed a duplicate.
  void on_rel_dup_suppressed() {
    if (registry_ == nullptr) return;
    rel_dup_suppressed_->inc();
  }
  /// A sequence ran out of retransmit budget (rail quarantined, postmortem
  /// triggered).
  void on_rel_exhausted() {
    if (registry_ == nullptr) return;
    rel_exhausted_->inc();
  }
  void on_rel_ack() {
    if (registry_ == nullptr) return;
    rel_acks_->inc();
  }
  void on_rel_nack() {
    if (registry_ == nullptr) return;
    rel_nacks_->inc();
  }

  // -- recalibration hooks (docs/CALIBRATION.md) -----------------------------

  /// A multiplicative scale correction was written into the rail's profile.
  void on_recal_correction(RailId rail, double scale) {
    if (registry_ == nullptr) return;
    recal_corrections_->inc();
    if (rail < per_rail_scale_.size())
      per_rail_scale_[rail]->set(static_cast<std::int64_t>(scale * 1000.0));
  }
  /// The rail's trust state changed (gauge encodes TrustState 0..3).
  void on_trust_change(RailId rail, int state, bool demoted) {
    if (registry_ == nullptr) return;
    (demoted ? trust_demotions_ : trust_promotions_)->inc();
    if (rail < per_rail_trust_.size()) per_rail_trust_[rail]->set(state);
  }
  /// Gauge-only refresh (transitional states that are neither verdict).
  void on_trust_gauge(RailId rail, int state) {
    if (registry_ == nullptr) return;
    if (rail < per_rail_trust_.size()) per_rail_trust_[rail]->set(state);
  }
  /// One drift-detector update (|EWMA bias|, scaled by 1000 for the gauge).
  void on_drift_sample(RailId rail, double drift) {
    if (registry_ == nullptr) return;
    if (rail < per_rail_drift_.size())
      per_rail_drift_[rail]->set(static_cast<std::int64_t>(drift * 1000.0));
  }
  // -- bounded-buffer loss gauges (docs/OBSERVABILITY.md) --------------------

  /// Events evicted from a bounded Tracer ring so far (0 = lossless). A
  /// nonzero value means span reconstruction may report messages incomplete.
  void on_trace_dropped(std::uint64_t dropped) {
    if (registry_ == nullptr) return;
    trace_dropped_->set(static_cast<std::int64_t>(dropped));
  }
  /// Records evicted from the flight recorder's ring (expected to grow on
  /// long runs; the postmortem window is the last N, by design).
  void on_flight_evictions(std::uint64_t evictions) {
    if (registry_ == nullptr) return;
    flight_evictions_->set(static_cast<std::int64_t>(evictions));
  }

  /// A background re-sampling sweep installed a fresh profile.
  void on_resample(RailId rail, double scale) {
    if (registry_ == nullptr) return;
    recal_resamples_->inc();
    if (rail < per_rail_scale_.size())
      per_rail_scale_[rail]->set(static_cast<std::int64_t>(scale * 1000.0));
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string strategy_name_;
  Counter* submits_ = nullptr;
  Counter* recv_posts_ = nullptr;
  Counter* eager_msgs_ = nullptr;
  Counter* rdv_msgs_ = nullptr;
  Counter* eager_emits_ = nullptr;
  Counter* chunks_posted_ = nullptr;
  Counter* offload_signals_ = nullptr;
  Counter* rdv_roundtrips_ = nullptr;
  Counter* progress_calls_ = nullptr;
  Counter* plan_eager_ = nullptr;
  Counter* plan_rendezvous_ = nullptr;
  Histogram* send_latency_ = nullptr;
  Histogram* recv_latency_ = nullptr;
  Histogram* queueing_delay_ = nullptr;
  Histogram* emission_bytes_ = nullptr;
  Histogram* chunk_bytes_ = nullptr;
  Counter* tx_errors_ = nullptr;
  Counter* chunk_timeouts_ = nullptr;
  Counter* failovers_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* exhausted_ = nullptr;
  Counter* quarantines_ = nullptr;
  Counter* reprobes_ = nullptr;
  Counter* reprobe_successes_ = nullptr;
  Counter* duplicate_chunks_ = nullptr;
  Counter* rel_corruptions_ = nullptr;
  Counter* rel_drops_inferred_ = nullptr;
  Counter* rel_retransmits_ = nullptr;
  Counter* rel_dup_suppressed_ = nullptr;
  Counter* rel_exhausted_ = nullptr;
  Counter* rel_acks_ = nullptr;
  Counter* rel_nacks_ = nullptr;
  Counter* recal_corrections_ = nullptr;
  Counter* recal_resamples_ = nullptr;
  Counter* trust_demotions_ = nullptr;
  Counter* trust_promotions_ = nullptr;
  Gauge* trace_dropped_ = nullptr;
  Gauge* flight_evictions_ = nullptr;
  std::vector<Counter*> per_rail_bytes_;
  std::vector<Counter*> per_rail_chunks_;
  std::vector<Gauge*> per_rail_healthy_;
  std::vector<Gauge*> per_rail_trust_;
  std::vector<Gauge*> per_rail_scale_;
  std::vector<Gauge*> per_rail_drift_;
};

}  // namespace rails::telemetry
