// Health-plane time series (docs/OBSERVABILITY.md, "The health plane").
//
// Every observability layer so far answers "what is the state *now*": the
// MetricsRegistry holds cumulative counters, the flight recorder a recent
// event window, the perf profiler a live cycle breakdown. Nothing records
// how the engine's health *evolves* over a run — and per-class SLO verdicts
// or per-rail trust collapses only look pathological in a time series,
// never in a single snapshot.
//
// This module adds the missing axis:
//
//  * Series          — a fixed-capacity ring of (sim-time, value) points.
//                      When full it compacts adjacent pairs (mean/max/last
//                      per its aggregation kind) and doubles its stride, so
//                      a bounded buffer always spans the whole run at
//                      progressively coarser resolution instead of dropping
//                      the oldest half of history.
//  * HealthSampler   — a sim-time-driven periodic sampler snapshotting a
//                      curated set of registry metrics (message rates,
//                      per-class windowed p50/p99 + deadline hit rate,
//                      per-rail trust/scale, retransmit rate, arbiter queue
//                      depths, perf self-times) into Series. Counter
//                      sources are differenced per tick (rates), histogram
//                      sources are differenced bucket-wise so percentiles
//                      describe the tick's window, not the whole run.
//
// The sampler is driven by the engine's health tick (core/engine.cpp); it
// never owns an event and never consumes virtual time, so enabling it
// leaves every headline (virtual-clock) metric bit-identical. Host-side
// cost is a handful of relaxed atomic loads per tick, bounded by the
// bench-gated <=2% msgrate_multiplex budget.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "telemetry/metrics.hpp"

namespace rails::telemetry {

/// Health-plane knobs, carried inside EngineConfig. Default-off: a disabled
/// engine arms no tick and takes no sampling branch at all.
struct TimeseriesConfig {
  bool enabled = false;
  /// Sampling period on the virtual clock.
  SimDuration interval = usec(100);
  /// Points retained per series; on overflow adjacent pairs are compacted
  /// and the effective stride doubles. Rounded up to an even count >= 4.
  std::size_t capacity = 512;
};

/// How two adjacent points merge when a full Series compacts.
enum class SeriesAgg : std::uint8_t {
  kMean,  ///< rates, percentiles
  kMax,   ///< queue depths, high-water marks
  kLast,  ///< gauges where the newer value wins (trust, scale)
};

struct SeriesPoint {
  SimTime time = 0;  ///< start of the span this point covers
  double value = 0;
};

/// Fixed-capacity downsampling ring. Appends are O(1) amortised; the
/// occasional compaction halves the point count in place.
class Series {
 public:
  Series(std::string name, SeriesAgg agg, std::size_t capacity);

  const std::string& name() const { return name_; }
  SeriesAgg agg() const { return agg_; }

  void push(SimTime t, double v);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const SeriesPoint& at(std::size_t i) const { return points_[i]; }
  const std::vector<SeriesPoint>& points() const { return points_; }
  /// Raw samples folded into each stored point (doubles per compaction).
  std::uint64_t stride() const { return stride_; }
  /// Most recent raw sample (not the possibly-aggregated stored point).
  double last() const { return last_raw_; }

  /// {"name":..,"agg":..,"stride":..,"points":[[t_ns,v],..]}
  void write_json(std::ostream& os) const;

 private:
  void append(SimTime t, double v);
  void compact();

  std::string name_;
  SeriesAgg agg_;
  std::size_t capacity_;
  std::vector<SeriesPoint> points_;
  std::uint64_t stride_ = 1;
  /// Samples folded into the pending (not yet appended) point.
  std::uint64_t pending_n_ = 0;
  SimTime pending_t_ = 0;
  double pending_v_ = 0;
  double last_raw_ = 0;
};

/// Interpolated percentile over a raw log2-bucket count array (the
/// Histogram bucket layout). Used on per-tick bucket *deltas*, where the
/// cumulative histogram's min/max clipping is unavailable — the bucket
/// bounds are the best available range.
double percentile_from_buckets(
    const std::array<std::uint64_t, Histogram::kBucketCount>& buckets, double p);

/// One sampling tick's view of one traffic class — consumed by the SLO
/// monitor (telemetry/slo.hpp) and mirrored into the per-class Series.
struct ClassTick {
  std::uint64_t completions = 0;  ///< latency samples recorded this tick
  std::uint64_t hits = 0;         ///< deadline hits this tick
  std::uint64_t misses = 0;       ///< deadline misses this tick
  double p50_us = 0;              ///< windowed (this tick's) latency p50
  double p99_us = 0;              ///< windowed latency p99
  /// Bucket-wise histogram delta for this tick (window percentiles over
  /// longer horizons are computed by summing these).
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
};

class HealthSampler {
 public:
  explicit HealthSampler(const TimeseriesConfig& cfg);

  const TimeseriesConfig& config() const { return cfg_; }
  SimDuration interval() const { return cfg_.interval; }

  /// Resolves the curated handle set against `registry` and lays out one
  /// Series per source. `class_names` are the QoS classes in ClassId order
  /// (empty when QoS is off); `rail_count` bounds the per-rail gauges.
  /// nullptr detaches. Metrics that do not exist yet (e.g. perf gauges
  /// before the profiler starts) are re-resolved lazily each tick.
  void attach(MetricsRegistry* registry, std::vector<std::string> class_names,
              std::uint32_t rail_count);

  /// Takes one sample at virtual time `now`: differences the counter and
  /// histogram sources against the previous tick, pushes every series, and
  /// refreshes the per-class tick view returned.
  const std::vector<ClassTick>& sample(SimTime now);

  std::uint64_t ticks() const { return ticks_; }
  std::size_t series_count() const { return series_.size(); }
  const std::vector<Series>& series() const { return series_; }
  /// First series whose name matches exactly, or nullptr.
  const Series* find(std::string_view name) const;
  const std::vector<ClassTick>& last_ticks() const { return class_ticks_; }
  const std::vector<std::string>& class_names() const { return class_names_; }

  /// {"interval_us":..,"ticks":..,"series":[{..},..]} — embedded in flight
  /// recorder postmortem bundles and served by `railsctl watch --json`.
  void write_json(std::ostream& os) const;

 private:
  /// One curated source: where the value comes from each tick.
  struct Source {
    enum class Kind : std::uint8_t {
      kCounterRate,  ///< delta(counter) / interval, scaled to per-ms
      kGauge,        ///< gauge value as-is (scaled by `scale`)
      kHistP50,      ///< tick-delta percentile of a histogram, in us
      kHistP99,
      kHitRate,      ///< hits / (hits + misses) per tick, from two counters
    };
    Kind kind = Kind::kGauge;
    std::string metric;   ///< registry name of the primary source
    std::string metric2;  ///< kHitRate: the misses counter
    double scale = 1.0;
    int cls = -1;  ///< ClassId for per-class sources, -1 otherwise
    // Resolved handles (lazily re-resolved while null).
    const Counter* counter = nullptr;
    const Counter* counter2 = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* hist = nullptr;
    // Previous-tick snapshots for differencing.
    std::uint64_t prev = 0;
    std::uint64_t prev2 = 0;
    std::array<std::uint64_t, Histogram::kBucketCount> prev_buckets{};
  };

  void add_source(Source::Kind kind, std::string series_name, std::string metric,
                  SeriesAgg agg, double scale = 1.0, int cls = -1,
                  std::string metric2 = {});
  void resolve(Source& s);

  TimeseriesConfig cfg_;
  MetricsRegistry* registry_ = nullptr;
  std::vector<std::string> class_names_;
  std::uint32_t rail_count_ = 0;
  std::vector<Source> sources_;
  std::vector<Series> series_;  ///< parallel to sources_
  /// Per-class latency-histogram tick state, parallel to class_names_.
  std::vector<ClassTick> class_ticks_;
  std::vector<std::array<std::uint64_t, Histogram::kBucketCount>> class_prev_buckets_;
  std::vector<const Histogram*> class_hists_;
  std::vector<const Counter*> class_hits_;
  std::vector<const Counter*> class_misses_;
  std::vector<std::uint64_t> class_prev_hits_;
  std::vector<std::uint64_t> class_prev_misses_;
  std::uint64_t ticks_ = 0;
  SimTime last_tick_time_ = 0;
};

}  // namespace rails::telemetry
