#include "telemetry/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

namespace rails::telemetry {

namespace {

/// Sums per-tick records no older than `horizon` before `now`.
struct WindowSum {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
};

WindowSum sum_window(const std::deque<SloMonitor::TickRec>&, SimTime, SimDuration);

}  // namespace

SloMonitor::SloMonitor(std::vector<SloSpec> specs) : specs_(std::move(specs)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    const auto add = [&](bool latency, const char* kind, double threshold) {
      Objective obj;
      obj.spec = i;
      obj.latency = latency;
      obj.alert = alerts_.size();
      objectives_.push_back(std::move(obj));
      AlertState st;
      st.name = spec.cls + "." + kind;
      st.cls = spec.cls;
      st.threshold = threshold;
      alerts_.push_back(std::move(st));
    };
    if (spec.hit_rate > 0) add(false, "hit_rate", spec.fast_burn);
    if (spec.p99_us > 0) add(true, "p99", spec.p99_us);
  }
}

void SloMonitor::bind(const std::vector<std::string>& class_names) {
  for (Objective& obj : objectives_) {
    obj.cls = -1;
    for (std::size_t c = 0; c < class_names.size(); ++c) {
      if (class_names[c] == specs_[obj.spec].cls) {
        obj.cls = static_cast<int>(c);
        break;
      }
    }
  }
}

std::vector<AlertEvent> SloMonitor::observe(SimTime now,
                                            const std::vector<ClassTick>& ticks) {
  std::vector<AlertEvent> events;
  for (Objective& obj : objectives_) {
    if (obj.cls < 0 || static_cast<std::size_t>(obj.cls) >= ticks.size()) continue;
    const ClassTick& tick = ticks[static_cast<std::size_t>(obj.cls)];
    TickRec rec;
    rec.time = now;
    rec.hits = tick.hits;
    rec.misses = tick.misses;
    rec.buckets = tick.buckets;
    obj.history.push_back(rec);
    const SimDuration horizon = specs_[obj.spec].window;
    while (!obj.history.empty() && now - obj.history.front().time > horizon) {
      obj.history.pop_front();
    }
    evaluate(obj, now, events);
  }
  return events;
}

namespace {

WindowSum sum_window(const std::deque<SloMonitor::TickRec>& history, SimTime now,
                     SimDuration horizon) {
  WindowSum w;
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (now - it->time > horizon) break;
    w.hits += it->hits;
    w.misses += it->misses;
    for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
      w.buckets[i] += it->buckets[i];
    }
  }
  return w;
}

double burn_rate(const WindowSum& w, double target_hit_rate) {
  const std::uint64_t total = w.hits + w.misses;
  if (total == 0) return 0;
  const double error_rate =
      static_cast<double>(w.misses) / static_cast<double>(total);
  const double budget = 1.0 - target_hit_rate;
  return budget <= 0 ? (error_rate > 0 ? 1e9 : 0) : error_rate / budget;
}

std::uint64_t bucket_total(const WindowSum& w) {
  std::uint64_t n = 0;
  for (const auto b : w.buckets) n += b;
  return n;
}

}  // namespace

void SloMonitor::evaluate(Objective& obj, SimTime now, std::vector<AlertEvent>& out) {
  const SloSpec& spec = specs_[obj.spec];
  AlertState& st = alerts_[obj.alert];
  const WindowSum fast = sum_window(obj.history, now, spec.effective_fast_window());
  const WindowSum slow = sum_window(obj.history, now, spec.window);

  bool breach = false;
  if (obj.latency) {
    // p99 objective: windowed p99 recomputed from summed bucket deltas must
    // exceed the target over BOTH windows (the same two-window principle —
    // a single hot tick inside an otherwise healthy slow window is noise).
    const double fast_p99 = bucket_total(fast) == 0
                                ? 0
                                : to_usec(static_cast<SimDuration>(
                                      percentile_from_buckets(fast.buckets, 99)));
    const double slow_p99 = bucket_total(slow) == 0
                                ? 0
                                : to_usec(static_cast<SimDuration>(
                                      percentile_from_buckets(slow.buckets, 99)));
    st.fast_value = fast_p99;
    st.slow_value = slow_p99;
    breach = fast_p99 > spec.p99_us && slow_p99 > spec.p99_us;
  } else {
    const double fast_burn = burn_rate(fast, spec.hit_rate);
    const double slow_burn = burn_rate(slow, spec.hit_rate);
    st.fast_value = fast_burn;
    st.slow_value = slow_burn;
    breach = fast.hits + fast.misses >= spec.min_events &&
             fast_burn >= spec.fast_burn && slow_burn >= spec.slow_burn;
  }

  if (breach) {
    obj.healthy_streak = 0;
    if (!st.firing) {
      st.firing = true;
      st.since = now;
      st.fired_count++;
      alerts_fired_++;
      AlertEvent ev;
      ev.name = st.name;
      ev.cls = st.cls;
      ev.firing = true;
      ev.fast_value = st.fast_value;
      ev.slow_value = st.slow_value;
      char detail[160];
      if (obj.latency) {
        std::snprintf(detail, sizeof(detail),
                      "%s p99 %.1fus over target %.1fus (slow-window p99 %.1fus)",
                      st.cls.c_str(), st.fast_value, spec.p99_us, st.slow_value);
      } else {
        std::snprintf(detail, sizeof(detail),
                      "%s burning error budget %.1fx fast / %.1fx slow "
                      "(target hit rate %.4f)",
                      st.cls.c_str(), st.fast_value, st.slow_value, spec.hit_rate);
      }
      ev.detail = detail;
      out.push_back(std::move(ev));
    }
  } else if (st.firing) {
    // Hysteresis: require clear_patience consecutive healthy evaluations.
    if (++obj.healthy_streak >= spec.clear_patience) {
      st.firing = false;
      st.since = now;
      obj.healthy_streak = 0;
      AlertEvent ev;
      ev.name = st.name;
      ev.cls = st.cls;
      ev.firing = false;
      ev.fast_value = st.fast_value;
      ev.slow_value = st.slow_value;
      ev.detail = st.name + " recovered";
      out.push_back(std::move(ev));
    }
  }
}

bool SloMonitor::any_firing() const {
  for (const AlertState& st : alerts_) {
    if (st.firing) return true;
  }
  return false;
}

void SloMonitor::write_json(std::ostream& os) const {
  os << "{\"alerts\":[";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const AlertState& st = alerts_[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << st.name << "\",\"class\":\"" << st.cls
       << "\",\"firing\":" << (st.firing ? "true" : "false")
       << ",\"fired_count\":" << st.fired_count << ",\"since\":" << st.since
       << ",\"fast\":" << st.fast_value << ",\"slow\":" << st.slow_value
       << ",\"threshold\":" << st.threshold << "}";
  }
  os << "]}";
}

void SloMonitor::dump(std::ostream& os) const {
  if (alerts_.empty()) {
    os << "no SLO objectives configured\n";
    return;
  }
  char line[160];
  std::snprintf(line, sizeof(line), "%-24s %-8s %8s %10s %10s %10s\n", "alert",
                "state", "fired", "fast", "slow", "threshold");
  os << line;
  for (const AlertState& st : alerts_) {
    std::snprintf(line, sizeof(line), "%-24s %-8s %8llu %10.2f %10.2f %10.2f\n",
                  st.name.c_str(), st.firing ? "FIRING" : "ok",
                  static_cast<unsigned long long>(st.fired_count), st.fast_value,
                  st.slow_value, st.threshold);
    os << line;
  }
}

// -- Scorecard ---------------------------------------------------------------

std::vector<ScorecardRow> Scorecard::collect(
    const MetricsRegistry& registry, const std::vector<std::string>& class_names) {
  std::vector<ScorecardRow> rows;
  rows.reserve(class_names.size());
  std::uint64_t total_bytes = 0;
  for (const std::string& cls : class_names) {
    const std::string base = "qos." + cls;
    ScorecardRow row;
    row.cls = cls;
    const auto counter = [&](const char* leaf) -> std::uint64_t {
      const Counter* c = registry.find_counter(base + "." + leaf);
      return c != nullptr ? c->value() : 0;
    };
    row.granted = counter("granted");
    row.granted_bytes = counter("granted_bytes");
    row.deadline_hits = counter("deadline_hits");
    row.deadline_misses = counter("deadline_misses");
    row.shed = counter("rejected_full");
    row.rejects = counter("admission_rejects");
    row.downgrades = counter("admission_downgrades");
    const std::uint64_t total = row.deadline_hits + row.deadline_misses;
    row.hit_rate = total == 0 ? 1.0
                              : static_cast<double>(row.deadline_hits) /
                                    static_cast<double>(total);
    if (const Histogram* h = registry.find_histogram(base + ".latency_ns")) {
      if (h->count() > 0) {
        row.p50_us = to_usec(static_cast<SimDuration>(h->percentile(50)));
        row.p99_us = to_usec(static_cast<SimDuration>(h->percentile(99)));
      }
    }
    if (const Gauge* g = registry.find_gauge(base + ".queue_depth")) {
      row.queue_depth = g->value();
    }
    total_bytes += row.granted_bytes;
    rows.push_back(std::move(row));
  }
  for (ScorecardRow& row : rows) {
    row.goodput_share = total_bytes == 0
                            ? 0
                            : static_cast<double>(row.granted_bytes) /
                                  static_cast<double>(total_bytes);
  }
  return rows;
}

void Scorecard::render(std::ostream& os, const std::vector<ScorecardRow>& rows) {
  char line[224];
  std::snprintf(line, sizeof(line),
                "%-12s %9s %12s %7s %9s %8s %9s %9s %6s %7s %6s\n", "class",
                "granted", "bytes", "share", "hit_rate", "p50_us", "p99_us",
                "shed", "rej", "downgr", "depth");
  os << line;
  for (const ScorecardRow& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-12s %9llu %12llu %6.1f%% %9.4f %8.1f %9.1f %9llu %6llu "
                  "%7llu %6lld\n",
                  r.cls.c_str(), static_cast<unsigned long long>(r.granted),
                  static_cast<unsigned long long>(r.granted_bytes),
                  r.goodput_share * 100.0, r.hit_rate, r.p50_us, r.p99_us,
                  static_cast<unsigned long long>(r.shed),
                  static_cast<unsigned long long>(r.rejects),
                  static_cast<unsigned long long>(r.downgrades),
                  static_cast<long long>(r.queue_depth));
    os << line;
  }
}

void Scorecard::write_json(std::ostream& os, const std::vector<ScorecardRow>& rows) {
  os << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScorecardRow& r = rows[i];
    if (i != 0) os << ",";
    os << "{\"class\":\"" << r.cls << "\",\"granted\":" << r.granted
       << ",\"granted_bytes\":" << r.granted_bytes
       << ",\"goodput_share\":" << r.goodput_share
       << ",\"deadline_hits\":" << r.deadline_hits
       << ",\"deadline_misses\":" << r.deadline_misses
       << ",\"hit_rate\":" << r.hit_rate << ",\"p50_us\":" << r.p50_us
       << ",\"p99_us\":" << r.p99_us << ",\"shed\":" << r.shed
       << ",\"admission_rejects\":" << r.rejects
       << ",\"admission_downgrades\":" << r.downgrades
       << ",\"queue_depth\":" << r.queue_depth << "}";
  }
  os << "]";
}

}  // namespace rails::telemetry
