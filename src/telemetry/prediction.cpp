#include "telemetry/prediction.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace rails::telemetry {

PredictionTracker::PredictionTracker(std::size_t rail_count) : rails_(rail_count) {
  RAILS_CHECK(rail_count >= 1);
}

void PredictionTracker::record(RailId rail, SimDuration predicted, SimDuration actual) {
  if (rail >= rails_.size()) return;
  PerRail& pr = rails_[rail];
  const double denom = actual > 0 ? static_cast<double>(actual) : 1.0;
  const double signed_err =
      static_cast<double>(actual - predicted) / denom;
  const double rel = std::abs(signed_err);
  pr.rel_error.add(rel);
  pr.bias.add(signed_err);
  pr.abs_error_ns.add(std::abs(static_cast<double>(actual - predicted)));
  pr.rel_samples.add(rel);
}

std::size_t PredictionTracker::samples(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return rails_[rail].rel_error.count();
}

std::size_t PredictionTracker::total_samples() const {
  std::size_t n = 0;
  for (const auto& pr : rails_) n += pr.rel_error.count();
  return n;
}

PredictionTracker::RailAccuracy PredictionTracker::accuracy(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  const PerRail& pr = rails_[rail];
  RailAccuracy out;
  out.samples = pr.rel_error.count();
  if (out.samples == 0) return out;
  out.mean_rel_error = pr.rel_error.mean();
  out.p95_rel_error = pr.rel_samples.percentile(95.0);
  out.max_rel_error = pr.rel_error.max();
  out.mean_bias = pr.bias.mean();
  out.mean_abs_error_us = pr.abs_error_ns.mean() / 1e3;
  return out;
}

void PredictionTracker::merge(const PredictionTracker& other) {
  RAILS_CHECK_MSG(rails_.size() == other.rails_.size(),
                  "prediction trackers disagree on the rail count");
  for (std::size_t r = 0; r < rails_.size(); ++r) {
    rails_[r].rel_error.merge(other.rails_[r].rel_error);
    rails_[r].bias.merge(other.rails_[r].bias);
    rails_[r].abs_error_ns.merge(other.rails_[r].abs_error_ns);
    for (const double s : other.rails_[r].rel_samples.samples()) {
      rails_[r].rel_samples.add(s);
    }
  }
}

void PredictionTracker::dump(std::ostream& os) const {
  os << "prediction accuracy (relative error of predicted vs actual completion):\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-6s %9s %10s %10s %10s %10s %14s\n", "rail",
                "samples", "mean", "p95", "max", "bias", "mean abs (us)");
  os << line;
  for (std::size_t r = 0; r < rails_.size(); ++r) {
    const RailAccuracy a = accuracy(static_cast<RailId>(r));
    if (a.samples == 0) {
      std::snprintf(line, sizeof(line), "  %-6zu %9s\n", r, "-");
      os << line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  %-6zu %9zu %9.2f%% %9.2f%% %9.2f%% %+9.2f%% %14.2f\n", r,
                  a.samples, a.mean_rel_error * 100.0, a.p95_rel_error * 100.0,
                  a.max_rel_error * 100.0, a.mean_bias * 100.0, a.mean_abs_error_us);
    os << line;
  }
}

}  // namespace rails::telemetry
