#include "telemetry/prediction.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace rails::telemetry {

namespace {
// Mixed into per-rail reservoir seeds so rails draw distinct (but fixed,
// deterministic) replacement streams.
constexpr std::uint64_t kReservoirSeed = 0x5eedca11b8a7e5ULL;
}  // namespace

void BoundedReservoir::add(double x) {
  ++seen_;
  if (samples_.size() < cap_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Algorithm R: the new sample replaces a uniformly chosen slot with
  // probability cap/seen, so every sample ever offered is stored with equal
  // probability.
  const std::uint64_t j = rng_.below(seen_);
  if (j < samples_.size()) {
    samples_[j] = x;
    sorted_ = false;
  }
}

double BoundedReservoir::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(rank + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

PredictionTracker::PredictionTracker(std::size_t rail_count, std::size_t reservoir_cap,
                                     std::size_t recent_window)
    : reservoir_cap_(reservoir_cap), recent_window_(recent_window) {
  RAILS_CHECK(rail_count >= 1);
  RAILS_CHECK(reservoir_cap >= 1 && recent_window >= 1);
  rails_.reserve(rail_count);
  for (std::size_t r = 0; r < rail_count; ++r) {
    rails_.emplace_back(reservoir_cap, kReservoirSeed ^ (r * 0x9e3779b97f4a7c15ULL),
                        recent_window);
  }
}

void PredictionTracker::push_recent(PerRail& pr, double rel, double bias) {
  if (pr.recent_rel.size() < recent_window_) {
    pr.recent_rel.push_back(rel);
    pr.recent_bias.push_back(bias);
    return;
  }
  pr.recent_rel[pr.recent_pos] = rel;
  pr.recent_bias[pr.recent_pos] = bias;
  pr.recent_pos = (pr.recent_pos + 1) % recent_window_;
}

void PredictionTracker::record(RailId rail, SimDuration predicted, SimDuration actual) {
  if (rail >= rails_.size()) return;
  PerRail& pr = rails_[rail];
  const double denom = actual > 0 ? static_cast<double>(actual) : 1.0;
  const double signed_err =
      static_cast<double>(actual - predicted) / denom;
  const double rel = std::abs(signed_err);
  pr.rel_error.add(rel);
  pr.bias.add(signed_err);
  pr.abs_error_ns.add(std::abs(static_cast<double>(actual - predicted)));
  pr.rel_samples.add(rel);
  push_recent(pr, rel, signed_err);
}

std::size_t PredictionTracker::samples(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return rails_[rail].rel_error.count();
}

std::size_t PredictionTracker::reservoir_size(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  return rails_[rail].rel_samples.size();
}

std::size_t PredictionTracker::total_samples() const {
  std::size_t n = 0;
  for (const auto& pr : rails_) n += pr.rel_error.count();
  return n;
}

PredictionTracker::RailAccuracy PredictionTracker::accuracy(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  const PerRail& pr = rails_[rail];
  RailAccuracy out;
  out.samples = pr.rel_error.count();
  if (out.samples == 0) return out;
  out.mean_rel_error = pr.rel_error.mean();
  out.p95_rel_error = pr.rel_samples.percentile(95.0);
  out.max_rel_error = pr.rel_error.max();
  out.mean_bias = pr.bias.mean();
  out.mean_abs_error_us = pr.abs_error_ns.mean() / 1e3;
  return out;
}

PredictionTracker::RecentAccuracy PredictionTracker::recent_accuracy(RailId rail) const {
  RAILS_CHECK(rail < rails_.size());
  const PerRail& pr = rails_[rail];
  RecentAccuracy out;
  out.samples = pr.recent_rel.size();
  if (out.samples == 0) return out;
  double rel_sum = 0, bias_sum = 0;
  for (const double v : pr.recent_rel) rel_sum += v;
  for (const double v : pr.recent_bias) bias_sum += v;
  out.mean_rel_error = rel_sum / static_cast<double>(out.samples);
  out.mean_bias = bias_sum / static_cast<double>(out.samples);
  std::vector<double> sorted(pr.recent_rel);
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      0.95 * static_cast<double>(sorted.size() - 1) + 0.5);
  out.p95_rel_error = sorted[std::min(idx, sorted.size() - 1)];
  return out;
}

void PredictionTracker::merge(const PredictionTracker& other) {
  RAILS_CHECK_MSG(rails_.size() == other.rails_.size(),
                  "prediction trackers disagree on the rail count");
  for (std::size_t r = 0; r < rails_.size(); ++r) {
    rails_[r].rel_error.merge(other.rails_[r].rel_error);
    rails_[r].bias.merge(other.rails_[r].bias);
    rails_[r].abs_error_ns.merge(other.rails_[r].abs_error_ns);
    for (const double s : other.rails_[r].rel_samples.samples()) {
      rails_[r].rel_samples.add(s);
    }
    // Replay the other side's recent window in chronological order so the
    // merged window ends with its newest residuals.
    const PerRail& opr = other.rails_[r];
    const std::size_t n = opr.recent_rel.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = n < other.recent_window_ ? i : (opr.recent_pos + i) % n;
      push_recent(rails_[r], opr.recent_rel[idx], opr.recent_bias[idx]);
    }
  }
}

void PredictionTracker::dump(std::ostream& os) const {
  os << "prediction accuracy (relative error of predicted vs actual completion):\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-6s %9s %10s %10s %10s %10s %14s\n", "rail",
                "samples", "mean", "p95", "max", "bias", "mean abs (us)");
  os << line;
  for (std::size_t r = 0; r < rails_.size(); ++r) {
    const RailAccuracy a = accuracy(static_cast<RailId>(r));
    if (a.samples == 0) {
      std::snprintf(line, sizeof(line), "  %-6zu %9s\n", r, "-");
      os << line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  %-6zu %9zu %9.2f%% %9.2f%% %9.2f%% %+9.2f%% %14.2f\n", r,
                  a.samples, a.mean_rel_error * 100.0, a.p95_rel_error * 100.0,
                  a.max_rel_error * 100.0, a.mean_bias * 100.0, a.mean_abs_error_us);
    os << line;
  }
}

void PredictionTracker::dump_json(std::ostream& os) const {
  os << '{';
  char buf[256];
  for (std::size_t r = 0; r < rails_.size(); ++r) {
    const RailAccuracy a = accuracy(static_cast<RailId>(r));
    std::snprintf(buf, sizeof(buf),
                  "%s\"rail%zu\":{\"samples\":%zu,\"mean_rel_error\":%.6f,"
                  "\"p95_rel_error\":%.6f,\"max_rel_error\":%.6f,"
                  "\"mean_bias\":%.6f,\"mean_abs_error_us\":%.3f}",
                  r == 0 ? "" : ",", r, a.samples, a.mean_rel_error,
                  a.p95_rel_error, a.max_rel_error, a.mean_bias,
                  a.mean_abs_error_us);
    os << buf;
  }
  os << '}';
}

}  // namespace rails::telemetry
