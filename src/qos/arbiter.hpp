// Weighted deficit-round-robin arbiter over per-class submit queues
// (docs/QOS.md).
//
// Sits between the application submit path and the engine's strategy layer:
// isend() enqueues into the class queue instead of the pack list, and each
// scheduler activation asks the arbiter for one grant round. A round is
//
//   1. strict pass   — strict-priority classes (LATENCY) drain fully, and
//                      any message older than the aging threshold is
//                      granted regardless of its class's deficit
//                      (starvation protection);
//   2. DRR pass      — every backlogged non-strict class is credited
//                      weight * quantum bytes of deficit (capped at four
//                      rounds' worth so an idle period cannot bank an
//                      unbounded burst), then grants from its queue head
//                      while the head's cost fits the deficit.
//
// Under saturation the rounds are paced by NIC-idle events, so granted
// bytes converge to the weight ratio; on an idle fabric repeated rounds
// drain everything immediately — the arbiter is work-conserving.
//
// Bounded queues give backpressure: has_capacity()/enqueue() implement
// try_send, and watermark callbacks fire on the high/low crossings so
// producers shed load instead of growing memory without bound.
//
// Thread safety: every method is serialised on an internal mutex and the
// watermark/grant callbacks are invoked with the lock released, so real
// threads (the offload channel, tests under TSan) may produce concurrently
// with a draining consumer. The DES engine is single-threaded; the lock is
// uncontended there.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "core/message.hpp"
#include "qos/traffic_class.hpp"
#include "telemetry/metrics.hpp"

namespace rails::qos {

/// Per-class accounting, snapshot via QosArbiter::counters().
struct ClassCounters {
  std::uint64_t enqueued = 0;        ///< sends admitted into the queue
  std::uint64_t rejected_full = 0;   ///< try_isend refusals (queue at capacity)
  std::uint64_t granted = 0;         ///< sends handed to the strategy layer
  std::uint64_t granted_bytes = 0;
  std::uint64_t aged_grants = 0;     ///< grants escalated by starvation aging
  std::uint64_t deadline_hits = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t admission_downgrades = 0;
  std::uint64_t depth_hwm = 0;       ///< queue-depth high-water mark
};

class QosArbiter {
 public:
  /// `paused` = true on the high-watermark crossing, false on the low.
  using BackpressureFn = std::function<void(ClassId, bool paused)>;
  using GrantSink = std::function<void(core::SendHandle)>;

  /// `auto_cutoff` backs the default-by-size classification when
  /// cfg.latency_cutoff is 0 (the engine passes its rendezvous threshold).
  QosArbiter(const QosConfig& cfg, std::size_t auto_cutoff);

  std::size_t class_count() const { return specs_.size(); }
  const ClassSpec& spec(ClassId cls) const;
  std::size_t cutoff() const { return cutoff_; }

  /// Default class by size: len >= cutoff() -> kBulk, else kLatency.
  ClassId classify(std::size_t len) const { return default_class(len, cutoff_); }
  /// kAutoClass -> classify(len); explicit ids are range-checked.
  ClassId resolve(ClassId requested, std::size_t len) const;

  /// try_send capacity probe. note_rejected_full() records the refusal.
  bool has_capacity(ClassId cls) const;
  void note_rejected_full(ClassId cls);

  /// Admits one send (never refuses — callers wanting the bound use
  /// has_capacity first). Fires the high-watermark callback on crossing.
  void enqueue(ClassId cls, core::SendHandle send, SimTime now);

  /// One arbitration round; invokes `sink` once per granted send, in grant
  /// order. Fires low-watermark callbacks for queues that drained below.
  void grant(SimTime now, const GrantSink& sink);

  bool backlog() const;
  std::size_t depth(ClassId cls) const;
  /// Current DRR deficit in bytes (diagnostics / railsctl qos).
  std::size_t deficit(ClassId cls) const;
  /// True between a high-watermark crossing and the next low crossing.
  bool paused(ClassId cls) const;

  void set_backpressure(BackpressureFn fn);

  /// Completion/admission bookkeeping fed back by the engine.
  void note_completion(ClassId cls, bool had_deadline, bool deadline_hit,
                       SimDuration latency);
  void note_admission_reject(ClassId cls);
  void note_admission_downgrade(ClassId cls);

  ClassCounters counters(ClassId cls) const;

  /// Resolves per-class metric handles ("qos.<class>.*"); nullptr detaches.
  void attach_metrics(telemetry::MetricsRegistry* registry);

  /// Per-class JSON array for `railsctl metrics --json` / `railsctl qos`.
  void write_json(std::ostream& os) const;

 private:
  struct Waiting {
    core::SendHandle send;
    SimTime enqueued = 0;
  };
  struct ClassState {
    std::deque<Waiting> queue;
    std::size_t deficit = 0;
    bool paused = false;
    ClassCounters counters;
    telemetry::Gauge* m_depth = nullptr;
    telemetry::Counter* m_granted = nullptr;
    telemetry::Counter* m_granted_bytes = nullptr;
    telemetry::Counter* m_rejected_full = nullptr;
    telemetry::Counter* m_aged = nullptr;
    telemetry::Counter* m_deadline_hits = nullptr;
    telemetry::Counter* m_deadline_misses = nullptr;
    telemetry::Counter* m_admission_rejects = nullptr;
    telemetry::Counter* m_admission_downgrades = nullptr;
    telemetry::Histogram* m_latency = nullptr;
  };

  /// Byte cost of one grant (zero-length sends still cost one unit).
  static std::size_t cost(const core::SendHandle& send);
  std::size_t high_mark(ClassId cls) const;
  std::size_t low_mark(ClassId cls) const;
  /// Pops the queue head into `granted`. Caller holds mu_.
  void pop_grant(ClassId cls, bool aged, std::vector<core::SendHandle>& granted);

  QosConfig cfg_;
  std::vector<ClassSpec> specs_;
  std::size_t cutoff_;
  mutable std::mutex mu_;
  std::vector<ClassState> states_;
  BackpressureFn backpressure_;
  /// grant()-round staging, recycled between rounds (capacity kept).
  std::vector<core::SendHandle> granted_scratch_;
  std::vector<ClassId> resumed_scratch_;
};

}  // namespace rails::qos
