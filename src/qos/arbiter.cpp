#include "qos/arbiter.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"
#include "perf/profiler.hpp"

namespace rails::qos {

namespace {

/// Deficit cap: at most this many rounds' worth of credit can be banked
/// while a class waits for rail slots, bounding the burst it can release.
constexpr double kDeficitCapRounds = 4.0;

}  // namespace

QosArbiter::QosArbiter(const QosConfig& cfg, std::size_t auto_cutoff)
    : cfg_(cfg),
      specs_(cfg.classes.empty() ? builtin_classes() : cfg.classes),
      cutoff_(cfg.latency_cutoff != 0 ? cfg.latency_cutoff : auto_cutoff) {
  RAILS_CHECK_MSG(!specs_.empty(), "QoS needs at least one traffic class");
  RAILS_CHECK_MSG(cfg_.quantum > 0, "QoS quantum must be positive");
  for (const ClassSpec& spec : specs_) {
    RAILS_CHECK_MSG(spec.weight > 0.0, "QoS class weight must be positive");
    RAILS_CHECK_MSG(spec.queue_capacity >= 1, "QoS class queue capacity must be >= 1");
  }
  states_.resize(specs_.size());
}

const ClassSpec& QosArbiter::spec(ClassId cls) const {
  RAILS_CHECK(cls < specs_.size());
  return specs_[cls];
}

ClassId QosArbiter::resolve(ClassId requested, std::size_t len) const {
  if (requested == kAutoClass) {
    const ClassId cls = classify(len);
    // A trimmed-down class table (fewer than the built-in three) folds the
    // by-size default onto the last class rather than indexing past the end.
    return std::min<ClassId>(cls, static_cast<ClassId>(specs_.size() - 1));
  }
  RAILS_CHECK_MSG(requested < specs_.size(), "send names an unknown traffic class");
  return requested;
}

std::size_t QosArbiter::cost(const core::SendHandle& send) {
  return std::max<std::size_t>(send->len, 1);
}

std::size_t QosArbiter::high_mark(ClassId cls) const {
  const ClassSpec& s = specs_[cls];
  if (s.high_watermark != 0) return s.high_watermark;
  return std::max<std::size_t>(1, s.queue_capacity * 3 / 4);
}

std::size_t QosArbiter::low_mark(ClassId cls) const {
  const ClassSpec& s = specs_[cls];
  if (s.low_watermark != 0) return s.low_watermark;
  return s.queue_capacity / 4;
}

bool QosArbiter::has_capacity(ClassId cls) const {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  return states_[cls].queue.size() < specs_[cls].queue_capacity;
}

void QosArbiter::note_rejected_full(ClassId cls) {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  ClassState& cs = states_[cls];
  ++cs.counters.rejected_full;
  if (cs.m_rejected_full != nullptr) cs.m_rejected_full->inc();
}

void QosArbiter::enqueue(ClassId cls, core::SendHandle send, SimTime now) {
  bool pause = false;
  {
    RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
    RAILS_CHECK(cls < states_.size());
    ClassState& cs = states_[cls];
    cs.queue.push_back(Waiting{std::move(send), now});
    ++cs.counters.enqueued;
    cs.counters.depth_hwm = std::max(cs.counters.depth_hwm,
                                     static_cast<std::uint64_t>(cs.queue.size()));
    if (cs.m_depth != nullptr) {
      cs.m_depth->set(static_cast<std::int64_t>(cs.queue.size()));
    }
    if (!cs.paused && cs.queue.size() >= high_mark(cls)) {
      cs.paused = true;
      pause = true;
    }
  }
  // The callback runs unlocked so it may query the arbiter (or submit).
  if (pause && backpressure_ != nullptr) backpressure_(cls, true);
}

void QosArbiter::pop_grant(ClassId cls, bool aged,
                           std::vector<core::SendHandle>& granted) {
  ClassState& cs = states_[cls];
  Waiting w = std::move(cs.queue.front());
  cs.queue.pop_front();
  ++cs.counters.granted;
  cs.counters.granted_bytes += w.send->len;
  if (aged) ++cs.counters.aged_grants;
  if (cs.m_granted != nullptr) {
    cs.m_granted->inc();
    cs.m_granted_bytes->inc(w.send->len);
    if (aged) cs.m_aged->inc();
    cs.m_depth->set(static_cast<std::int64_t>(cs.queue.size()));
  }
  granted.push_back(std::move(w.send));
}

void QosArbiter::grant(SimTime now, const GrantSink& sink) {
  // Round-local staging, recycled across rounds so a steady grant cadence
  // never allocates. Moved out (not referenced) so a re-entrant grant from
  // a callback sees empty scratch and degrades to allocating, not aliasing.
  std::vector<core::SendHandle> granted = std::move(granted_scratch_);
  granted.clear();
  std::vector<ClassId> resumed = std::move(resumed_scratch_);
  resumed.clear();
  {
    RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
    // Strict pass: strict-priority classes drain fully; elsewhere only
    // messages past the aging threshold jump their class's deficit. Queues
    // are FIFO, so checking the head suffices.
    for (ClassId cls = 0; cls < states_.size(); ++cls) {
      ClassState& cs = states_[cls];
      if (specs_[cls].strict_priority) {
        while (!cs.queue.empty()) pop_grant(cls, false, granted);
        continue;
      }
      while (!cs.queue.empty() &&
             now - cs.queue.front().enqueued >= cfg_.aging) {
        pop_grant(cls, true, granted);
      }
    }
    // DRR pass: credit only classes that were backlogged entering the pass
    // (classic DRR — an empty class banks nothing).
    for (ClassId cls = 0; cls < states_.size(); ++cls) {
      ClassState& cs = states_[cls];
      if (specs_[cls].strict_priority) continue;
      if (cs.queue.empty()) {
        cs.deficit = 0;
        continue;
      }
      const auto credit = static_cast<std::size_t>(
          specs_[cls].weight * static_cast<double>(cfg_.quantum));
      const auto cap = static_cast<std::size_t>(
          kDeficitCapRounds * specs_[cls].weight * static_cast<double>(cfg_.quantum));
      cs.deficit = std::min(cs.deficit + std::max<std::size_t>(credit, 1), cap);
      while (!cs.queue.empty() && cost(cs.queue.front().send) <= cs.deficit) {
        cs.deficit -= cost(cs.queue.front().send);
        pop_grant(cls, false, granted);
      }
      if (cs.queue.empty()) cs.deficit = 0;
    }
    for (ClassId cls = 0; cls < states_.size(); ++cls) {
      ClassState& cs = states_[cls];
      if (cs.paused && cs.queue.size() <= low_mark(cls)) {
        cs.paused = false;
        resumed.push_back(cls);
      }
    }
  }
  if (backpressure_ != nullptr) {
    for (const ClassId cls : resumed) backpressure_(cls, false);
  }
  for (core::SendHandle& send : granted) sink(std::move(send));
  granted.clear();
  granted_scratch_ = std::move(granted);
  resumed_scratch_ = std::move(resumed);
}

bool QosArbiter::backlog() const {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  for (const ClassState& cs : states_) {
    if (!cs.queue.empty()) return true;
  }
  return false;
}

std::size_t QosArbiter::depth(ClassId cls) const {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  return states_[cls].queue.size();
}

std::size_t QosArbiter::deficit(ClassId cls) const {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  return states_[cls].deficit;
}

bool QosArbiter::paused(ClassId cls) const {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  return states_[cls].paused;
}

void QosArbiter::set_backpressure(BackpressureFn fn) {
  backpressure_ = std::move(fn);
}

void QosArbiter::note_completion(ClassId cls, bool had_deadline, bool deadline_hit,
                                 SimDuration latency) {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  ClassState& cs = states_[cls];
  if (had_deadline) {
    if (deadline_hit) {
      ++cs.counters.deadline_hits;
      if (cs.m_deadline_hits != nullptr) cs.m_deadline_hits->inc();
    } else {
      ++cs.counters.deadline_misses;
      if (cs.m_deadline_misses != nullptr) cs.m_deadline_misses->inc();
    }
  }
  if (cs.m_latency != nullptr && latency >= 0) {
    cs.m_latency->observe(static_cast<std::uint64_t>(latency));
  }
}

void QosArbiter::note_admission_reject(ClassId cls) {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  ++states_[cls].counters.admission_rejects;
  if (states_[cls].m_admission_rejects != nullptr) {
    states_[cls].m_admission_rejects->inc();
  }
}

void QosArbiter::note_admission_downgrade(ClassId cls) {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  ++states_[cls].counters.admission_downgrades;
  if (states_[cls].m_admission_downgrades != nullptr) {
    states_[cls].m_admission_downgrades->inc();
  }
}

ClassCounters QosArbiter::counters(ClassId cls) const {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  RAILS_CHECK(cls < states_.size());
  return states_[cls].counters;
}

void QosArbiter::attach_metrics(telemetry::MetricsRegistry* registry) {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  for (ClassId cls = 0; cls < states_.size(); ++cls) {
    ClassState& cs = states_[cls];
    if (registry == nullptr) {
      cs.m_depth = nullptr;
      cs.m_granted = nullptr;
      cs.m_granted_bytes = nullptr;
      cs.m_rejected_full = nullptr;
      cs.m_aged = nullptr;
      cs.m_deadline_hits = nullptr;
      cs.m_deadline_misses = nullptr;
      cs.m_admission_rejects = nullptr;
      cs.m_admission_downgrades = nullptr;
      cs.m_latency = nullptr;
      continue;
    }
    const std::string prefix = "qos." + specs_[cls].name + ".";
    cs.m_depth = registry->gauge(prefix + "queue_depth");
    cs.m_granted = registry->counter(prefix + "granted");
    cs.m_granted_bytes = registry->counter(prefix + "granted_bytes");
    cs.m_rejected_full = registry->counter(prefix + "rejected_full");
    cs.m_aged = registry->counter(prefix + "aged_grants");
    cs.m_deadline_hits = registry->counter(prefix + "deadline_hits");
    cs.m_deadline_misses = registry->counter(prefix + "deadline_misses");
    cs.m_admission_rejects = registry->counter(prefix + "admission_rejects");
    cs.m_admission_downgrades = registry->counter(prefix + "admission_downgrades");
    cs.m_latency = registry->histogram(prefix + "latency_ns");
  }
}

void QosArbiter::write_json(std::ostream& os) const {
  RAILS_PERF_LOCK(mu_, perf::Layer::kArbiter);
  os << '[';
  for (ClassId cls = 0; cls < states_.size(); ++cls) {
    const ClassState& cs = states_[cls];
    const ClassCounters& c = cs.counters;
    if (cls != 0) os << ',';
    os << "{\"class\":\"" << specs_[cls].name << "\",\"weight\":" << specs_[cls].weight
       << ",\"strict\":" << (specs_[cls].strict_priority ? "true" : "false")
       << ",\"depth\":" << cs.queue.size() << ",\"depth_hwm\":" << c.depth_hwm
       << ",\"deficit\":" << cs.deficit << ",\"paused\":" << (cs.paused ? "true" : "false")
       << ",\"enqueued\":" << c.enqueued << ",\"granted\":" << c.granted
       << ",\"granted_bytes\":" << c.granted_bytes
       << ",\"rejected_full\":" << c.rejected_full
       << ",\"aged_grants\":" << c.aged_grants
       << ",\"deadline_hits\":" << c.deadline_hits
       << ",\"deadline_misses\":" << c.deadline_misses
       << ",\"admission_rejects\":" << c.admission_rejects
       << ",\"admission_downgrades\":" << c.admission_downgrades << '}';
  }
  os << ']';
}

}  // namespace rails::qos
