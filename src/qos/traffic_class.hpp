// Traffic classes for the QoS arbiter (docs/QOS.md).
//
// The optimizer layer orders a pack list purely by predicted duration; it
// has no notion of competing flows, so one bulk rendezvous transfer can
// occupy every rail to completion and starve latency-sensitive eager
// traffic. This header defines the vocabulary the arbiter speaks: a small
// set of built-in classes (LATENCY / BULK / BACKGROUND), user-defined
// classes loaded from configs/, and the default-by-size rule that keeps
// existing callers unchanged.
//
// The subsystem is default-off (QosConfig::enabled = false): an engine
// built without it behaves byte-for-byte like before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rails::qos {

/// Index into QosConfig::classes. The built-in classes occupy the first
/// three slots; user-defined classes follow.
using ClassId = std::uint32_t;

inline constexpr ClassId kLatency = 0;     ///< small, latency-sensitive eager traffic
inline constexpr ClassId kBulk = 1;        ///< large rendezvous transfers
inline constexpr ClassId kBackground = 2;  ///< best-effort; lowest share

/// Sentinel for "classify by size" (the default on every submit, so callers
/// that never heard of traffic classes keep their behaviour).
inline constexpr ClassId kAutoClass = ~ClassId{0};

/// One traffic class: scheduling weight, queue bound, watermarks.
struct ClassSpec {
  std::string name;
  /// DRR share among the non-strict classes (> 0). Per arbitration round a
  /// backlogged class is credited weight * quantum bytes of deficit.
  double weight = 1.0;
  /// Drained before any DRR grant (LATENCY). A strict class can still not
  /// jump a chunk already on the wire — preemption happens at chunk
  /// boundaries.
  bool strict_priority = false;
  /// Bound of the per-class submit queue (messages). try_isend refuses
  /// beyond it; plain isend still enqueues (and trips the high watermark).
  std::size_t queue_capacity = 1024;
  /// Backpressure watermarks (messages). 0 = derive from the capacity
  /// (high = 3/4, low = 1/4). The pause callback fires when the depth
  /// reaches `high`, the resume callback when it falls back to `low`.
  std::size_t high_watermark = 0;
  std::size_t low_watermark = 0;
  /// Applied to sends submitted without an explicit deadline (0 = none):
  /// deadline = submit time + default_deadline, admission-checked like any
  /// deadline-tagged send.
  SimDuration default_deadline = 0;
};

/// All QoS knobs, carried inside EngineConfig. Defaults are inert.
struct QosConfig {
  bool enabled = false;
  /// DRR quantum: bytes of deficit credited per weight unit per round.
  std::size_t quantum = 64_KiB;
  /// Rendezvous streaming window: with QoS on, a bulk transfer is fed to
  /// the rails at most this many bytes per chunk, yielding rail slots to
  /// the strict classes between chunks.
  std::size_t bulk_chunk = 256_KiB;
  /// Starvation protection: a message waiting longer than this is granted
  /// in the strict pass regardless of its class's deficit.
  SimDuration aging = usec(1000);
  /// Size boundary of the default classification: len >= cutoff lands in
  /// BULK, below in LATENCY. 0 = use the engine's eager/rendezvous
  /// threshold (so the boundary matches protocol_for's `>` exactly: a
  /// message exactly at the threshold is the largest still-eager size and
  /// deterministically classifies as BULK).
  std::size_t latency_cutoff = 0;
  /// Infeasible deadline at submit: downgrade to BACKGROUND (true) instead
  /// of rejecting the send (false).
  bool deadline_downgrade = false;
  /// Classes in ClassId order. Empty = the three built-ins.
  std::vector<ClassSpec> classes;
};

/// The three built-in classes (used when QosConfig::classes is empty).
inline std::vector<ClassSpec> builtin_classes() {
  ClassSpec latency;
  latency.name = "latency";
  latency.weight = 8.0;
  latency.strict_priority = true;
  ClassSpec bulk;
  bulk.name = "bulk";
  bulk.weight = 4.0;
  ClassSpec background;
  background.name = "background";
  background.weight = 1.0;
  return {latency, bulk, background};
}

/// Default class assignment by size. The boundary is `>=` on the cutoff so
/// a message exactly at the eager/rendezvous threshold lands in exactly one
/// class (BULK), mirroring protocol_for's strictly-greater rendezvous test.
inline ClassId default_class(std::size_t len, std::size_t cutoff) {
  return len >= cutoff ? kBulk : kLatency;
}

}  // namespace rails::qos
