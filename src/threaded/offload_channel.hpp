// Real-thread realisation of Fig. 7: "Sending eager packets over parallel
// networks".
//
// The DES engine *models* the multicore eager submission; this module runs
// it for real on std::threads, reusing the Marcel-like worker pool and the
// PIOMan-like progression engine:
//
//   strategy thread                 worker cores              receiver
//   ───────────────                 ────────────              ────────
//   split ratio computation
//   requests registration  ──────►  tasklet signalled
//   (returns to computing)          copy chunk (the "PIO")
//                                   push onto its rail ────►  progress engine
//                                                             polls rails,
//                                                             reassembles,
//                                                             completes recv
//
// Rails are bounded SPSC rings (one producer worker, one consumer: the
// progression engine); chunk descriptors flow through a to-be-sent list
// exactly as §III-D describes. Used by the threaded integration tests and
// by the offload-cost measurements — the DES remains the vehicle for the
// paper's figures.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/spsc_queue.hpp"
#include "common/types.hpp"
#include "progress/progress_engine.hpp"
#include "rt/worker_pool.hpp"
#include "telemetry/metrics.hpp"
#include "trace/flight_recorder.hpp"

namespace rails::threaded {

/// One framed chunk on a rail ring.
struct WireChunk {
  std::uint64_t msg_id = 0;
  Tag tag = 0;
  std::uint64_t total = 0;
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> bytes;
};

/// Completion handle for one message (sender side: all chunks copied and
/// enqueued; receiver side: all bytes landed).
class SendTicket {
 public:
  bool done() const { return remaining_.load(std::memory_order_acquire) == 0; }
  void wait() const {
    while (!done()) std::this_thread::yield();
  }

 private:
  friend class OffloadChannel;
  explicit SendTicket(unsigned chunks) : remaining_(static_cast<int>(chunks)) {}
  std::atomic<int> remaining_;
};

struct OffloadChannelConfig {
  unsigned rails = 2;
  unsigned workers = 2;           ///< remote submission cores
  std::size_t min_split = 4096;   ///< below this a message stays whole
  std::size_t ring_depth = 256;   ///< per-rail SPSC capacity
  /// Chunk cap for classed bulk sends (docs/QOS.md): a send tagged with a
  /// nonzero traffic class is cut into chunks of at most this many bytes,
  /// round-robined over the usable rails, so concurrent latency-class sends
  /// interleave at chunk granularity instead of waiting out the whole
  /// message. 0 disables the classed path (classes then only tag counters).
  std::size_t class_chunk = 0;
};

/// Per-class accounting slots in the channel (classes >= kClassSlots-1
/// share the last slot).
inline constexpr unsigned kClassSlots = 4;

/// One unidirectional multirail channel with real-thread offloaded sends.
class OffloadChannel {
 public:
  using RecvHandler = std::function<void(Tag, std::vector<std::uint8_t>&&)>;

  explicit OffloadChannel(OffloadChannelConfig config);
  ~OffloadChannel();

  OffloadChannel(const OffloadChannel&) = delete;
  OffloadChannel& operator=(const OffloadChannel&) = delete;

  /// Installs the delivery callback (invoked from the progression engine's
  /// worker) and starts progression. Must be called before traffic.
  void start(RecvHandler handler);
  void stop();

  /// Registers one message: the caller (the "strategy") splits it into
  /// min(rails, workers) chunks; worker tasklets perform the copies and the
  /// ring submission in parallel (Fig. 7). The data must stay alive until
  /// the ticket completes.
  std::shared_ptr<SendTicket> send(Tag tag, const void* data, std::size_t len);

  /// Classed send (docs/QOS.md). cls 0 behaves exactly like send(); a
  /// nonzero class additionally splits the message into class_chunk-bounded
  /// chunks round-robined over the usable rails (when class_chunk is set)
  /// and lands in that class's counters.
  std::shared_ptr<SendTicket> send(Tag tag, const void* data, std::size_t len,
                                   unsigned cls);

  unsigned rails() const { return config_.rails; }

  /// Marks a rail (un)usable for future sends — the real-thread analogue of
  /// the engine's quarantine. Disabled rails are skipped by the split; when
  /// every rail is disabled, sends fall back to using all of them (refusing
  /// to send is never better than trying). Safe to call concurrently with
  /// send().
  void set_rail_enabled(unsigned rail, bool enabled);
  bool rail_enabled(unsigned rail) const;

  /// Down-weights a rail for future sends — the real-thread analogue of the
  /// recalibration layer's trust penalty, propagated exactly like
  /// set_rail_enabled. The Fig. 7 split hands each rail bytes proportional
  /// to its weight in [0, 1] (1 = full share, the default; 0 = no payload
  /// while still enabled). Safe to call concurrently with send().
  void set_rail_weight(unsigned rail, double weight);
  double rail_weight(unsigned rail) const;

  /// Chunks submitted by each worker (tests verify the spread).
  std::vector<std::uint64_t> chunks_per_worker() const;

  /// Payload bytes assigned to each rail by the split (tests verify the
  /// weighted spread).
  std::vector<std::uint64_t> bytes_per_rail() const;

  /// Payload bytes per traffic-class slot (kClassSlots entries).
  std::vector<std::uint64_t> bytes_per_class() const;
  /// Sends per traffic-class slot (kClassSlots entries).
  std::vector<std::uint64_t> sends_per_class() const;

  /// Attaches a metrics registry (nullptr detaches). Must be called before
  /// start(): "offload.sends" / "offload.chunks" counters, an
  /// "offload.ring_hwm" ring-occupancy high-water gauge, and an
  /// "offload.signal_delay_ns" histogram of the wall-clock submit-to-tasklet
  /// latency — the empirical TO of eq. (1). Also forwards to the sender pool
  /// ("rt.*") and the progression engine ("progress.*").
  void set_metrics(telemetry::MetricsRegistry* registry);

  /// Attaches the always-on flight recorder (nullptr detaches). Must be
  /// called before start(). Worker tasklets append one kOffloadPush record
  /// per chunk from their own threads — real concurrent producers, which is
  /// exactly what the recorder's lock-free ring exists for. Timestamps are
  /// wall-clock nanoseconds since the first record (this channel has no
  /// virtual clock).
  void set_flight_recorder(trace::FlightRecorder* recorder);

 private:
  struct Reassembly {
    std::vector<std::uint8_t> buffer;
    std::size_t received = 0;
    Tag tag = 0;
  };

  void pump_rail(unsigned rail, WireChunk&& chunk);
  /// Wall-clock ns relative to the first flight record (thread-safe).
  SimTime flight_now();

  OffloadChannelConfig config_;
  rt::WorkerPool sender_pool_;
  rt::WorkerPool receiver_pool_;
  progress::ProgressEngine progress_;
  std::vector<std::unique_ptr<SpscQueue<WireChunk>>> rings_;
  std::vector<std::unique_ptr<progress::EventSource>> sources_;
  std::vector<std::atomic<std::uint64_t>> worker_chunks_;
  std::vector<std::atomic<std::uint64_t>> rail_bytes_;
  std::vector<std::atomic<std::uint64_t>> class_sends_;
  std::vector<std::atomic<std::uint64_t>> class_bytes_;
  std::vector<std::atomic<std::uint8_t>> rail_enabled_;
  std::vector<std::atomic<std::uint32_t>> rail_weight_milli_;  ///< weight × 1000

  RecvHandler handler_;
  std::mutex reassembly_mutex_;
  std::map<std::uint64_t, Reassembly> reassembly_;
  std::atomic<std::uint64_t> next_msg_id_{1};
  std::atomic<bool> running_{false};

  telemetry::Counter* m_sends_ = nullptr;
  telemetry::Counter* m_chunks_ = nullptr;
  std::vector<telemetry::Counter*> m_class_sends_;
  std::vector<telemetry::Counter*> m_class_bytes_;
  telemetry::Gauge* m_ring_hwm_ = nullptr;
  telemetry::Histogram* m_signal_delay_ = nullptr;
  trace::FlightRecorder* flight_ = nullptr;
  std::atomic<std::int64_t> flight_epoch_{-1};  ///< wall-clock ns of first record
};

}  // namespace rails::threaded
