#include "threaded/offload_channel.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.hpp"
#include "perf/profiler.hpp"

namespace rails::threaded {

namespace {

/// EventSource draining one rail ring into the channel's reassembly.
class ChunkSource final : public progress::EventSource {
 public:
  ChunkSource(std::string name, SpscQueue<WireChunk>* ring,
              std::function<void(WireChunk&&)> sink)
      : name_(std::move(name)), ring_(ring), sink_(std::move(sink)) {}

  std::string name() const override { return name_; }

  unsigned poll() override {
    unsigned n = 0;
    while (n < 64) {
      auto chunk = ring_->try_pop();
      if (!chunk) break;
      sink_(std::move(*chunk));
      ++n;
    }
    return n;
  }

 private:
  std::string name_;
  SpscQueue<WireChunk>* ring_;
  std::function<void(WireChunk&&)> sink_;
};

}  // namespace

OffloadChannel::OffloadChannel(OffloadChannelConfig config)
    : config_(config),
      sender_pool_(config.workers),
      receiver_pool_(1),
      worker_chunks_(config.workers),
      rail_bytes_(config.rails),
      class_sends_(kClassSlots),
      class_bytes_(kClassSlots),
      rail_enabled_(config.rails),
      rail_weight_milli_(config.rails) {
  RAILS_CHECK(config_.rails >= 1 && config_.workers >= 1);
  rings_.reserve(config_.rails);
  for (unsigned r = 0; r < config_.rails; ++r) {
    rings_.push_back(std::make_unique<SpscQueue<WireChunk>>(config_.ring_depth));
    rail_enabled_[r].store(1, std::memory_order_relaxed);
    rail_weight_milli_[r].store(1000, std::memory_order_relaxed);
    rail_bytes_[r].store(0, std::memory_order_relaxed);
  }
  for (unsigned c = 0; c < kClassSlots; ++c) {
    class_sends_[c].store(0, std::memory_order_relaxed);
    class_bytes_[c].store(0, std::memory_order_relaxed);
  }
}

OffloadChannel::~OffloadChannel() { stop(); }

void OffloadChannel::start(RecvHandler handler) {
  RAILS_CHECK_MSG(!running_.load(), "channel already started");
  handler_ = std::move(handler);
  RAILS_CHECK(handler_ != nullptr);
  sources_.clear();
  for (unsigned r = 0; r < config_.rails; ++r) {
    sources_.push_back(std::make_unique<ChunkSource>(
        "rail" + std::to_string(r), rings_[r].get(),
        [this, r](WireChunk&& chunk) { pump_rail(r, std::move(chunk)); }));
    progress_.add_source(sources_.back().get());
  }
  running_.store(true, std::memory_order_release);
  progress_.start(&receiver_pool_, 0, progress::Context{});
}

void OffloadChannel::stop() {
  if (!running_.exchange(false)) return;
  progress_.stop();
  for (auto& source : sources_) progress_.remove_source(source.get());
}

std::shared_ptr<SendTicket> OffloadChannel::send(Tag tag, const void* data,
                                                 std::size_t len) {
  return send(tag, data, len, 0);
}

std::shared_ptr<SendTicket> OffloadChannel::send(Tag tag, const void* data,
                                                 std::size_t len, unsigned cls) {
  RAILS_CHECK_MSG(running_.load(std::memory_order_acquire), "channel not started");
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  const std::uint64_t msg_id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  if (m_sends_ != nullptr) m_sends_->inc();
  const unsigned slot = std::min(cls, kClassSlots - 1);
  class_sends_[slot].fetch_add(1, std::memory_order_relaxed);
  class_bytes_[slot].fetch_add(len, std::memory_order_relaxed);
  if (slot < m_class_sends_.size() && m_class_sends_[slot] != nullptr) {
    m_class_sends_[slot]->inc();
    m_class_bytes_[slot]->inc(len);
  }

  // Rails currently marked usable; an all-disabled channel still sends on
  // every rail rather than refusing.
  std::vector<unsigned> usable;
  usable.reserve(config_.rails);
  for (unsigned r = 0; r < config_.rails; ++r) {
    if (rail_enabled_[r].load(std::memory_order_relaxed) != 0) usable.push_back(r);
  }
  if (usable.empty()) {
    for (unsigned r = 0; r < config_.rails; ++r) usable.push_back(r);
  }

  std::vector<unsigned> chunk_rail;
  std::vector<std::size_t> chunk_bytes;
  if (cls != 0 && config_.class_chunk != 0 && len > config_.class_chunk) {
    // Classed bulk path: class_chunk-bounded chunks round-robined over the
    // usable rails, so a concurrent latency-class send only ever waits for
    // one chunk (not the whole message) on any ring.
    const std::size_t cap = config_.class_chunk;
    for (std::size_t offset = 0; offset < len; offset += cap) {
      chunk_rail.push_back(usable[chunk_rail.size() % usable.size()]);
      chunk_bytes.push_back(std::min(cap, len - offset));
    }
  } else {
    // The "split ratio computation" of Fig. 7 — homogeneous rails, so equal
    // chunks by default; a down-weighted (SUSPECT) rail receives a
    // proportionally smaller share of each send.
    unsigned chunks = 1;
    if (len >= config_.min_split) {
      chunks = std::min(static_cast<unsigned>(usable.size()), config_.workers);
    }
    chunk_rail.resize(chunks);
    chunk_bytes.resize(chunks);
    std::vector<double> weight(chunks);
    double weight_sum = 0;
    for (unsigned c = 0; c < chunks; ++c) {
      chunk_rail[c] = usable[c % usable.size()];
      weight[c] =
          static_cast<double>(
              rail_weight_milli_[chunk_rail[c]].load(std::memory_order_relaxed)) /
          1000.0;
      weight_sum += weight[c];
    }
    if (weight_sum <= 0) {
      // Every targeted rail weighted to zero: equal split beats refusing.
      weight.assign(chunks, 1.0);
      weight_sum = chunks;
    }
    std::size_t assigned = 0;
    for (unsigned c = 0; c + 1 < chunks; ++c) {
      chunk_bytes[c] = static_cast<std::size_t>(static_cast<double>(len) * weight[c] /
                                                weight_sum);
      assigned += chunk_bytes[c];
    }
    chunk_bytes[chunks - 1] = len - assigned;
  }
  const auto chunks = static_cast<unsigned>(chunk_rail.size());

  auto ticket = std::shared_ptr<SendTicket>(new SendTicket(chunks));
  // "Requests registration": one tasklet per chunk, each signalled to its
  // own worker core, which performs the copy (the PIO) and the rail
  // submission. The caller returns to computing immediately.
  std::size_t next_offset = 0;
  for (unsigned c = 0; c < chunks; ++c) {
    const std::size_t offset = next_offset;
    const std::size_t n = chunk_bytes[c];
    next_offset += n;
    const unsigned worker = c % config_.workers;
    const unsigned rail = chunk_rail[c];
    rail_bytes_[rail].fetch_add(n, std::memory_order_relaxed);
    // Timestamp the signal only when a histogram is attached — the detached
    // hot path must not pay for a clock read.
    const auto signalled = m_signal_delay_ != nullptr
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
    sender_pool_.submit_to(
        worker, rt::Tasklet(
                    [this, ticket, bytes, msg_id, tag, len, offset, n, rail, worker,
                     signalled] {
                      RAILS_PERF_SCOPE(perf::Layer::kOffload);
                      if (m_signal_delay_ != nullptr) {
                        const auto delay =
                            std::chrono::steady_clock::now() - signalled;
                        m_signal_delay_->observe(static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(
                                delay)
                                .count()));
                      }
                      WireChunk chunk;
                      chunk.msg_id = msg_id;
                      chunk.tag = tag;
                      chunk.total = len;
                      chunk.offset = offset;
                      chunk.bytes.resize(n);
                      if (n > 0) std::memcpy(chunk.bytes.data(), bytes + offset, n);
                      while (!rings_[rail]->try_push(std::move(chunk))) {
                        std::this_thread::yield();
                      }
                      if (m_chunks_ != nullptr) {
                        m_chunks_->inc();
                        m_ring_hwm_->update_max(rings_[rail]->size());
                      }
                      if (flight_ != nullptr) {
                        trace::FlightRecord rec;
                        rec.time = flight_now();
                        rec.kind = trace::FlightKind::kOffloadPush;
                        rec.rail = static_cast<RailId>(rail);
                        rec.msg_id = msg_id;
                        rec.a = static_cast<std::int64_t>(n);
                        rec.b = worker;
                        flight_->record(rec);
                      }
                      worker_chunks_[worker].fetch_add(1, std::memory_order_relaxed);
                      ticket->remaining_.fetch_sub(1, std::memory_order_acq_rel);
                    },
                    rt::TaskPriority::kTasklet));
  }
  return ticket;
}

void OffloadChannel::pump_rail(unsigned rail, WireChunk&& chunk) {
  (void)rail;
  std::vector<std::uint8_t> completed;
  Tag tag = 0;
  {
    std::lock_guard<std::mutex> lock(reassembly_mutex_);
    Reassembly& re = reassembly_[chunk.msg_id];
    re.tag = chunk.tag;  // every chunk carries it; unconditional covers len==0
    if (re.buffer.size() != chunk.total) re.buffer.assign(chunk.total, 0);
    RAILS_CHECK(chunk.offset + chunk.bytes.size() <= re.buffer.size() ||
                chunk.total == 0);
    if (!chunk.bytes.empty()) {
      std::memcpy(re.buffer.data() + chunk.offset, chunk.bytes.data(),
                  chunk.bytes.size());
    }
    re.received += chunk.bytes.size();
    if (re.received == chunk.total) {
      completed = std::move(re.buffer);
      tag = re.tag;
      reassembly_.erase(chunk.msg_id);
    } else {
      return;
    }
  }
  handler_(tag, std::move(completed));
}

void OffloadChannel::set_metrics(telemetry::MetricsRegistry* registry) {
  RAILS_CHECK_MSG(!running_.load(std::memory_order_acquire),
                  "attach/detach metrics before start()");
  sender_pool_.set_metrics(registry);
  progress_.set_metrics(registry);
  if (registry == nullptr) {
    m_sends_ = nullptr;
    m_chunks_ = nullptr;
    m_ring_hwm_ = nullptr;
    m_signal_delay_ = nullptr;
    m_class_sends_.clear();
    m_class_bytes_.clear();
    return;
  }
  m_sends_ = registry->counter("offload.sends");
  m_chunks_ = registry->counter("offload.chunks");
  m_ring_hwm_ = registry->gauge("offload.ring_hwm");
  m_signal_delay_ = registry->histogram("offload.signal_delay_ns");
  m_class_sends_.assign(kClassSlots, nullptr);
  m_class_bytes_.assign(kClassSlots, nullptr);
  for (unsigned c = 0; c < kClassSlots; ++c) {
    const std::string prefix = "offload.class" + std::to_string(c);
    m_class_sends_[c] = registry->counter(prefix + ".sends");
    m_class_bytes_[c] = registry->counter(prefix + ".bytes");
  }
}

void OffloadChannel::set_flight_recorder(trace::FlightRecorder* recorder) {
  RAILS_CHECK_MSG(!running_.load(std::memory_order_acquire),
                  "attach/detach the flight recorder before start()");
  flight_ = recorder;
  flight_epoch_.store(-1, std::memory_order_relaxed);
}

SimTime OffloadChannel::flight_now() {
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count();
  std::int64_t epoch = flight_epoch_.load(std::memory_order_relaxed);
  if (epoch < 0) {
    // First record wins the race to define t=0; losers reuse its epoch.
    std::int64_t expected = -1;
    if (!flight_epoch_.compare_exchange_strong(expected, wall,
                                               std::memory_order_acq_rel)) {
      epoch = expected;
    } else {
      epoch = wall;
    }
  }
  return static_cast<SimTime>(wall - epoch);
}

void OffloadChannel::set_rail_enabled(unsigned rail, bool enabled) {
  RAILS_CHECK(rail < config_.rails);
  rail_enabled_[rail].store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool OffloadChannel::rail_enabled(unsigned rail) const {
  RAILS_CHECK(rail < config_.rails);
  return rail_enabled_[rail].load(std::memory_order_relaxed) != 0;
}

void OffloadChannel::set_rail_weight(unsigned rail, double weight) {
  RAILS_CHECK(rail < config_.rails);
  const double clamped = std::min(1.0, std::max(0.0, weight));
  rail_weight_milli_[rail].store(static_cast<std::uint32_t>(clamped * 1000.0),
                                 std::memory_order_relaxed);
}

double OffloadChannel::rail_weight(unsigned rail) const {
  RAILS_CHECK(rail < config_.rails);
  return static_cast<double>(rail_weight_milli_[rail].load(std::memory_order_relaxed)) /
         1000.0;
}

std::vector<std::uint64_t> OffloadChannel::chunks_per_worker() const {
  std::vector<std::uint64_t> out;
  out.reserve(worker_chunks_.size());
  for (const auto& counter : worker_chunks_) {
    out.push_back(counter.load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::uint64_t> OffloadChannel::bytes_per_rail() const {
  std::vector<std::uint64_t> out;
  out.reserve(rail_bytes_.size());
  for (const auto& counter : rail_bytes_) {
    out.push_back(counter.load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::uint64_t> OffloadChannel::bytes_per_class() const {
  std::vector<std::uint64_t> out;
  out.reserve(class_bytes_.size());
  for (const auto& counter : class_bytes_) {
    out.push_back(counter.load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::uint64_t> OffloadChannel::sends_per_class() const {
  std::vector<std::uint64_t> out;
  out.reserve(class_sends_.size());
  for (const auto& counter : class_sends_) {
    out.push_back(counter.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace rails::threaded
