// Cost-curve abstraction consumed by the split solvers.
//
// Solvers only need two monotone queries per rail — duration(bytes) and its
// inverse — so they are written against this interface. Production code
// adapts sampled PerfProfiles; tests adapt closed-form NetworkModels to
// verify the solvers against analytic optima.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "fabric/network_model.hpp"
#include "sampling/profile.hpp"

namespace rails::strategy {

class RailCost {
 public:
  virtual ~RailCost() = default;

  /// Duration of a transfer of `bytes` on an idle rail.
  virtual SimDuration duration(std::size_t bytes) const = 0;

  /// Largest byte count whose duration fits within `budget` (0 if none).
  virtual std::size_t max_bytes_within(SimDuration budget) const = 0;
};

/// Adapts a sampled profile (the production path). `cost_scale` inflates the
/// curve without touching the profile — how the recalibration layer makes a
/// SUSPECT rail look slightly slower to the solver than its (possibly still
/// drifting) tables claim, so it receives proportionally smaller chunks.
class ProfileCost final : public RailCost {
 public:
  explicit ProfileCost(const sampling::PerfProfile* profile, double cost_scale = 1.0)
      : profile_(profile), cost_scale_(cost_scale) {}
  SimDuration duration(std::size_t bytes) const override {
    return static_cast<SimDuration>(static_cast<double>(profile_->estimate(bytes)) *
                                    cost_scale_);
  }
  std::size_t max_bytes_within(SimDuration budget) const override {
    return profile_->max_bytes_within(
        static_cast<SimDuration>(static_cast<double>(budget) / cost_scale_));
  }

 private:
  const sampling::PerfProfile* profile_;
  double cost_scale_ = 1.0;
};

/// Adapts an analytic model (tests, what-if analyses).
class ModelCost final : public RailCost {
 public:
  ModelCost(const fabric::NetworkModel* model, fabric::Protocol proto,
            bool include_handshake = false)
      : model_(model), proto_(proto), include_handshake_(include_handshake) {}

  SimDuration duration(std::size_t bytes) const override {
    return proto_ == fabric::Protocol::kEager
               ? model_->eager(bytes).total
               : model_->rendezvous(bytes, include_handshake_).total;
  }

  std::size_t max_bytes_within(SimDuration budget) const override;

 private:
  const fabric::NetworkModel* model_;
  fabric::Protocol proto_;
  bool include_handshake_;
};

/// One rail as the solver sees it: a cost curve plus how long the rail stays
/// busy before it can start ("the time remaining before it becomes idle is
/// added to its predicted transfer time", §II-B).
struct SolverRail {
  RailId rail = 0;
  const RailCost* cost = nullptr;
  SimDuration ready_offset = 0;
};

}  // namespace rails::strategy
