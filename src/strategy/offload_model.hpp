// Multicore eager-send model (§II-C, §III-D, eq. 1).
//
// Eager packets involve CPU-consuming PIO copies: split chunks submitted
// from ONE core serialise (Fig. 4a), so splitting small messages only pays
// off when each chunk's copy runs on its own core (Fig. 4c). Offloading a
// chunk to an idle core costs TO ≈ 3 µs of signalling (6 µs when a running
// thread must be preempted first). The decision model evaluates
//
//     T(size) = TO + max_i( TD(chunk_i, rail_i) )          (eq. 1)
//
// against the best single-rail aggregated send and picks the cheaper one;
// the chunk count is capped by min(idle NICs, idle cores) (§III-B).
#pragma once

#include <cstddef>
#include <span>

#include "strategy/split_solver.hpp"

namespace rails::strategy {

struct OffloadConfig {
  /// TO: strategy-to-remote-core signalling + synchronisation cost.
  SimDuration signal_cost = usec(3.0);
  /// TO when the target core runs a computing thread that must be preempted.
  SimDuration preempt_cost = usec(6.0);
  /// Never split messages below this size (tasklet setup dwarfs the copy).
  std::size_t min_split_size = 1024;
};

struct EagerPlan {
  /// True when the message is split across rails with per-core submission;
  /// false when it is sent whole (aggregated) over `chunks[0].rail`.
  bool split = false;
  std::vector<Chunk> chunks;
  /// Predicted completion, offsets and TO included.
  SimDuration predicted = 0;
  /// Prediction for the best single-rail alternative (reporting/ablation).
  SimDuration single_rail_predicted = 0;
};

/// Evaluates eq. (1) for a precomputed split.
SimDuration parallel_eager_time(std::span<const SolverRail> rails,
                                std::span<const Chunk> chunks, SimDuration signal_cost);

/// Plans one eager message of `size` bytes.
///
/// `rails` carries every candidate rail (with eager-path cost curves and
/// busy offsets); `idle_cores` is the number of cores available for remote
/// submission *in addition to* the strategy's own core; `preempt` selects
/// the higher TO of §III-D.
EagerPlan plan_eager(std::span<const SolverRail> rails, std::size_t size,
                     unsigned idle_cores, const OffloadConfig& config = {},
                     bool preempt = false);

}  // namespace rails::strategy
