#include "strategy/offload_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rails::strategy {

SimDuration parallel_eager_time(std::span<const SolverRail> rails,
                                std::span<const Chunk> chunks, SimDuration signal_cost) {
  SimDuration worst = 0;
  for (const Chunk& c : chunks) {
    const SolverRail* rail = nullptr;
    for (const auto& r : rails) {
      if (r.rail == c.rail) rail = &r;
    }
    RAILS_CHECK_MSG(rail != nullptr, "chunk references an unknown rail");
    worst = std::max(worst, rail->ready_offset + rail->cost->duration(c.bytes));
  }
  return signal_cost + worst;
}

EagerPlan plan_eager(std::span<const SolverRail> rails, std::size_t size,
                     unsigned idle_cores, const OffloadConfig& config, bool preempt) {
  RAILS_CHECK(!rails.empty());
  RAILS_CHECK(size > 0);

  EagerPlan plan;
  const std::size_t best = best_single_rail(rails, size);
  plan.single_rail_predicted = single_rail_time(rails[best], size);

  // Fallback plan: whole message on the best rail, submitted locally.
  plan.split = false;
  plan.chunks = {{rails[best].rail, 0, size}};
  plan.predicted = plan.single_rail_predicted;

  // "the strategy splits the data in min{number of idle NICs, number of
  // idle cores} chunks at most" — each remote chunk needs its own core.
  const unsigned max_chunks = std::min<unsigned>(static_cast<unsigned>(rails.size()),
                                                 idle_cores);
  if (max_chunks < 2 || size < config.min_split_size) return plan;

  SplitResult split = solve_equal_finish(rails, size);
  if (split.chunks.size() < 2) return plan;
  if (split.chunks.size() > max_chunks) {
    // Keep the `max_chunks` fastest rails and re-solve over that subset.
    std::vector<Chunk> sorted = split.chunks;
    std::sort(sorted.begin(), sorted.end(),
              [](const Chunk& a, const Chunk& b) { return a.bytes > b.bytes; });
    std::vector<SolverRail> subset;
    for (unsigned i = 0; i < max_chunks; ++i) {
      for (const auto& r : rails) {
        if (r.rail == sorted[i].rail) subset.push_back(r);
      }
    }
    split = solve_equal_finish(subset, size);
    if (split.chunks.size() < 2) return plan;
  }

  const SimDuration to = preempt ? config.preempt_cost : config.signal_cost;
  const SimDuration parallel = parallel_eager_time(rails, split.chunks, to);
  if (parallel < plan.single_rail_predicted) {
    plan.split = true;
    plan.chunks = std::move(split.chunks);
    plan.predicted = parallel;
  }
  return plan;
}

}  // namespace rails::strategy
