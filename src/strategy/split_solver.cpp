#include "strategy/split_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "perf/profiler.hpp"

namespace rails::strategy {

/// Search ceiling for max_bytes_within: 1 TiB. A degenerate model whose
/// duration curve stays within the budget up to this size gets clamped here
/// instead of the doubling loop running away; no simulated transfer
/// approaches this.
constexpr std::size_t kMaxSearchBytes = std::size_t{1} << 40;

std::size_t ModelCost::max_bytes_within(SimDuration budget) const {
  // Non-positive budgets fit nothing, even under a zero-latency model whose
  // duration(0) == 0 (without this, the doubling loop below would climb all
  // the way to the clamp and report ~1 TiB for an empty budget).
  if (budget <= 0) return 0;
  if (budget < duration(0)) return 0;
  std::size_t lo = 0;
  std::size_t hi = 1;
  while (duration(hi) <= budget && hi < kMaxSearchBytes) hi <<= 1;
  if (duration(hi) <= budget) return hi;  // clamped at kMaxSearchBytes
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (duration(mid) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

namespace {

SimTime finish(const SolverRail& r, std::size_t bytes) {
  return r.ready_offset + r.cost->duration(bytes);
}

SplitResult finalize(std::vector<Chunk> chunks, std::span<const SolverRail> rails,
                     unsigned iterations) {
  SplitResult result;
  result.iterations = iterations;
  // Keep non-empty chunks, assign consecutive offsets, compute makespan and
  // imbalance from the rails actually used.
  SimDuration earliest = std::numeric_limits<SimDuration>::max();
  std::size_t offset = 0;
  std::vector<RailId> distinct;
  for (const Chunk& c : chunks) {
    if (c.bytes == 0) continue;
    Chunk out = c;
    out.offset = offset;
    offset += out.bytes;
    const SolverRail* rail = nullptr;
    for (const auto& r : rails) {
      if (r.rail == c.rail) rail = &r;
    }
    RAILS_CHECK(rail != nullptr);
    const SimDuration f = finish(*rail, out.bytes);
    result.makespan = std::max(result.makespan, f);
    earliest = std::min(earliest, f);
    if (std::find(distinct.begin(), distinct.end(), c.rail) == distinct.end()) {
      distinct.push_back(c.rail);
    }
    result.chunks.push_back(out);
    result.finish_times.push_back(f);
  }
  // Imbalance is a cross-rail quantity: when pruning zero-byte chunks leaves
  // everything on one rail, there is nothing to be imbalanced against.
  result.imbalance = distinct.size() > 1 ? result.makespan - earliest : 0;
  return result;
}

}  // namespace

SimDuration single_rail_time(const SolverRail& rail, std::size_t total) {
  return finish(rail, total);
}

std::size_t best_single_rail(std::span<const SolverRail> rails, std::size_t total) {
  RAILS_CHECK(!rails.empty());
  std::size_t best = 0;
  SimDuration best_time = finish(rails[0], total);
  for (std::size_t i = 1; i < rails.size(); ++i) {
    const SimDuration t = finish(rails[i], total);
    if (t < best_time) {
      best_time = t;
      best = i;
    }
  }
  return best;
}

SplitResult dichotomy_split(const SolverRail& a, const SolverRail& b, std::size_t total,
                            const DichotomyConfig& config) {
  RAILS_PERF_SCOPE(perf::Layer::kStrategy);
  RAILS_CHECK(total > 0);
  const SolverRail rails_arr[2] = {a, b};
  const std::span<const SolverRail> rails(rails_arr, 2);

  // "The algorithm begins by splitting the packets in two chunks of equal
  // size" — then bisects the ratio until both finish times are equivalent.
  double lo = 0.0;
  double hi = 1.0;
  double ratio = 0.5;
  std::size_t bytes_a = total / 2;
  unsigned used = 0;
  for (unsigned it = 0; it < config.max_iterations; ++it) {
    ++used;
    bytes_a = static_cast<std::size_t>(std::llround(ratio * static_cast<double>(total)));
    bytes_a = std::min(bytes_a, total);
    const SimTime ta = finish(a, bytes_a);
    const SimTime tb = finish(b, total - bytes_a);
    const SimDuration diff = ta > tb ? ta - tb : tb - ta;
    if (diff <= config.tolerance) break;
    if (ta > tb) {
      hi = ratio;  // rail a is the straggler: shrink its share
    } else {
      lo = ratio;
    }
    ratio = (lo + hi) / 2.0;
  }

  std::vector<Chunk> chunks = {{a.rail, 0, bytes_a}, {b.rail, 0, total - bytes_a}};
  return finalize(std::move(chunks), rails, used);
}

SplitResult solve_equal_finish(std::span<const SolverRail> rails, std::size_t total) {
  RAILS_PERF_SCOPE(perf::Layer::kStrategy);
  RAILS_CHECK(!rails.empty());
  RAILS_CHECK(total > 0);

  auto capacity = [&](SimTime deadline) {
    std::size_t cap = 0;
    for (const auto& r : rails) {
      if (deadline <= r.ready_offset) continue;
      cap += r.cost->max_bytes_within(deadline - r.ready_offset);
    }
    return cap;
  };

  // Upper bound: the best single rail can always carry everything.
  SimTime hi = finish(rails[best_single_rail(rails, total)], total);
  SimTime lo = 0;
  RAILS_CHECK(capacity(hi) >= total);

  unsigned iterations = 0;
  while (hi - lo > 1) {
    ++iterations;
    const SimTime mid = lo + (hi - lo) / 2;
    if (capacity(mid) >= total) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const SimTime deadline = hi;

  // Allocate each rail's capacity at the optimal deadline, then trim the
  // surplus (capacity(deadline) may exceed `total` by quantisation) from the
  // largest chunks first: removing bytes only lowers a rail's finish time.
  std::vector<Chunk> chunks;
  chunks.reserve(rails.size());
  std::size_t allocated = 0;
  for (const auto& r : rails) {
    std::size_t bytes = 0;
    if (deadline > r.ready_offset) bytes = r.cost->max_bytes_within(deadline - r.ready_offset);
    bytes = std::min(bytes, total - allocated);
    allocated += bytes;
    chunks.push_back({r.rail, 0, bytes});
  }
  RAILS_CHECK_MSG(allocated == total, "equal-finish solver under-allocated");
  return finalize(std::move(chunks), rails, iterations);
}

}  // namespace rails::strategy
