// Message split solvers (§II-B, Fig. 1c).
//
// Goal: split a message so that "the time required to send each chunk of a
// message is equal. This way, each chunk transfer will end at the same time,
// minimizing the transfer time of the whole message."
//
// Two solvers are provided:
//  * dichotomy_split — the paper's own two-rail algorithm: bisect the split
//    ratio until the predicted finish times of both chunks match.
//  * solve_equal_finish — a k-rail generalisation that bisects on the common
//    deadline instead of the ratio. Busy rails whose availability offset
//    exceeds the deadline naturally receive zero bytes, which implements the
//    NIC-selection rule of Fig. 2 for free.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "strategy/rail_cost.hpp"

namespace rails::strategy {

struct Chunk {
  RailId rail = 0;
  std::size_t offset = 0;
  std::size_t bytes = 0;
};

struct SplitResult {
  std::vector<Chunk> chunks;   ///< non-empty chunks only, offsets consecutive
  SimDuration makespan = 0;    ///< predicted completion (including ready offsets)
  unsigned iterations = 0;     ///< solver iterations actually used
  SimDuration imbalance = 0;   ///< max |finish_i - finish_j| over used rails
  /// Predicted finish time of each chunk (aligned with `chunks`, measured
  /// from the decision instant, ready offsets included). This is what the
  /// telemetry PredictionTracker compares against the fabric's actual chunk
  /// completions. Empty when a strategy hand-builds the result without
  /// going through a solver.
  std::vector<SimDuration> finish_times;
};

struct DichotomyConfig {
  unsigned max_iterations = 24;
  /// Stop when the two predicted finish times differ by at most this much.
  SimDuration tolerance = 500;  // 0.5 µs
};

/// The paper's algorithm, restricted to two rails. `total` bytes are split
/// into a chunk on `a` and a chunk on `b`; the ratio starts at 1/2 and is
/// bisected until both predicted finish times are equivalent.
SplitResult dichotomy_split(const SolverRail& a, const SolverRail& b, std::size_t total,
                            const DichotomyConfig& config = {});

/// K-rail equal-finish solver. Bisects the deadline T: each rail contributes
/// max_bytes_within(T - ready_offset) bytes; the smallest T whose aggregate
/// capacity covers `total` is the optimum. Surplus capacity at the final T is
/// trimmed proportionally so chunk offsets exactly tile the message.
SplitResult solve_equal_finish(std::span<const SolverRail> rails, std::size_t total);

/// Convenience: predicted completion of sending everything on one rail.
SimDuration single_rail_time(const SolverRail& rail, std::size_t total);

/// Best single rail (index into `rails`) by predicted completion.
std::size_t best_single_rail(std::span<const SolverRail> rails, std::size_t total);

}  // namespace rails::strategy
