// Aligned series tables for the experiment harness.
//
// Every figure-reproduction binary prints one of these: an x column (message
// size) and one column per curve, matching the series the paper plots.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rails::bench {

class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label, std::vector<std::string> series);

  /// Adds one row; `values` must match the series count. NaN renders as "-".
  void add_row(std::string x, const std::vector<double>& values);

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }
  double value(std::size_t row, std::size_t series) const;

  /// Pretty-prints with aligned columns and `digits` decimal places.
  void print(std::ostream& os, int digits = 1) const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_;
  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::vector<Row> rows_;
};

/// Human-readable byte size ("4", "16K", "2M").
std::string format_size(std::size_t bytes);

/// Power-of-two ladder [lo, hi].
std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi);

/// Prints a PASS/FAIL shape-check line and returns whether it passed.
/// Collects a process-wide failure flag readable via shape_failures().
bool shape_check(std::ostream& os, const std::string& what, bool ok);
int shape_failures();

}  // namespace rails::bench
