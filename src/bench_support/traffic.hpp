// Open-loop traffic generation for sustained-load experiments.
//
// The paper's evaluation is ping-pong (closed loop); production traffic is
// open loop — messages arrive on their own schedule whether or not the
// engine has caught up. This generator schedules isends at pseudo-random
// (deterministic, seeded) exponential-ish inter-arrival times on the
// virtual clock and reports the latency distribution and achieved
// throughput, which is how the load sweep locates each strategy's
// saturation point.
#pragma once

#include <cstdint>

#include "core/world.hpp"

namespace rails::bench {

struct TrafficConfig {
  /// Offered payload rate in MB/s (drives the mean inter-arrival gap).
  double offered_mbps = 1000.0;
  /// Message sizes: log-uniform in [min_size, max_size].
  std::size_t min_size = 8u * 1024u;
  std::size_t max_size = 512u * 1024u;
  unsigned message_count = 200;
  std::uint64_t seed = 42;
};

struct TrafficResult {
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double achieved_mbps = 0.0;  ///< payload delivered / time of last delivery
  double duration_us = 0.0;
  std::size_t total_bytes = 0;
};

/// Runs one open-loop experiment on nodes 0 -> 1 of the world. The world is
/// quiesced first; the call is deterministic for a given (world, config).
TrafficResult run_open_loop(core::World& world, const TrafficConfig& config);

}  // namespace rails::bench
