// Reference values quoted in the paper's evaluation (§IV), used by the
// benchmark harness to print side-by-side paper-vs-measured tables. These
// are the authors' numbers on their Opteron + Myri-10G + QsNetII testbed;
// we reproduce *shapes*, not absolutes, but the calibrated fabric lands
// close to most of them.
#pragma once

#include <cstddef>

namespace rails::bench::paper {

// Fig. 8 — bandwidth plateaus (MB/s).
inline constexpr double kMyriBandwidth = 1170.0;
inline constexpr double kQsnetBandwidth = 837.0;
inline constexpr double kIsoSplitBandwidth = 1670.0;
inline constexpr double kHeteroSplitBandwidth = 1987.0;

// §IV-A — the 4 MB example.
inline constexpr std::size_t kExampleMessage = 4u * 1024u * 1024u;
// Iso-split: 2 MB over Myri-10G in ~1730 µs, 2 MB over Quadrics in ~2400 µs.
inline constexpr double kIsoMyriChunkUs = 1730.0;
inline constexpr double kIsoQsnetChunkUs = 2400.0;
// Hetero-split: 2437 KB over Myri-10G in 1999 µs, 1757 KB over Quadrics in
// 2001 µs.
inline constexpr std::size_t kHeteroMyriChunk = 2437u * 1024u;
inline constexpr std::size_t kHeteroQsnetChunk = 1757u * 1024u;
inline constexpr double kHeteroMyriChunkUs = 1999.0;
inline constexpr double kHeteroQsnetChunkUs = 2001.0;

// §III-D — offload costs.
inline constexpr double kSignalCostUs = 3.0;
inline constexpr double kPreemptCostUs = 6.0;

// Fig. 9 — split gain for eager messages: costly below ~4 KB, up to ~30 %
// reduction by 64 KB.
inline constexpr std::size_t kSplitBreakEven = 4u * 1024u;
inline constexpr double kMaxLatencyGain = 0.30;

}  // namespace rails::bench::paper
