#include "bench_support/table.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/check.hpp"

namespace rails::bench {

namespace {
int g_shape_failures = 0;
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> series)
    : title_(std::move(title)), x_label_(std::move(x_label)), series_(std::move(series)) {}

void SeriesTable::add_row(std::string x, const std::vector<double>& values) {
  RAILS_CHECK(values.size() == series_.size());
  rows_.push_back({std::move(x), values});
}

double SeriesTable::value(std::size_t row, std::size_t series) const {
  RAILS_CHECK(row < rows_.size() && series < series_.size());
  return rows_[row].values[series];
}

void SeriesTable::print(std::ostream& os, int digits) const {
  os << "\n== " << title_ << " ==\n";
  // Column widths: max of header and the widest formatted value.
  std::size_t xw = x_label_.size();
  for (const auto& r : rows_) xw = std::max(xw, r.x.size());
  std::vector<std::size_t> widths(series_.size());
  for (std::size_t i = 0; i < series_.size(); ++i) {
    widths[i] = std::max<std::size_t>(series_[i].size(), 8);
  }

  os << std::left << std::setw(static_cast<int>(xw + 2)) << x_label_;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    os << std::right << std::setw(static_cast<int>(widths[i] + 2)) << series_[i];
  }
  os << '\n';

  os << std::fixed << std::setprecision(digits);
  for (const auto& r : rows_) {
    os << std::left << std::setw(static_cast<int>(xw + 2)) << r.x;
    for (std::size_t i = 0; i < series_.size(); ++i) {
      os << std::right << std::setw(static_cast<int>(widths[i] + 2));
      if (std::isnan(r.values[i])) {
        os << "-";
      } else {
        os << r.values[i];
      }
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
}

std::string format_size(std::size_t bytes) {
  if (bytes >= 1024u * 1024u && bytes % (1024u * 1024u) == 0) {
    return std::to_string(bytes / (1024u * 1024u)) + "M";
  }
  if (bytes >= 1024u && bytes % 1024u == 0) {
    return std::to_string(bytes / 1024u) + "K";
  }
  return std::to_string(bytes);
}

std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = lo; s <= hi; s <<= 1) sizes.push_back(s);
  return sizes;
}

bool shape_check(std::ostream& os, const std::string& what, bool ok) {
  os << (ok ? "  [shape PASS] " : "  [shape FAIL] ") << what << '\n';
  if (!ok) ++g_shape_failures;
  return ok;
}

int shape_failures() { return g_shape_failures; }

}  // namespace rails::bench
