#include "bench_support/bench_json.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/minijson.hpp"

namespace rails::bench {

namespace {

void write_number(std::ostream& os, double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  os << buf;
}

}  // namespace

void write_bundle(std::ostream& os, const BenchBundle& bundle) {
  os << "{\n";
  os << "  \"schema\": \"rails-bench\",\n";
  os << "  \"schema_version\": " << kBenchSchemaVersion << ",\n";
  os << "  \"generator\": \"" << minijson::escape(bundle.generator) << "\",\n";
  os << "  \"commit\": \"" << minijson::escape(bundle.commit) << "\",\n";
  os << "  \"quick\": " << (bundle.quick ? "true" : "false") << ",\n";
  os << "  \"generated_unix\": " << bundle.generated_unix << ",\n";
  if (!bundle.config_hash.empty()) {
    os << "  \"config_hash\": \"" << minijson::escape(bundle.config_hash) << "\",\n";
  }
  if (!bundle.flags.empty()) {
    os << "  \"flags\": {";
    for (std::size_t f = 0; f < bundle.flags.size(); ++f) {
      if (f != 0) os << ", ";
      os << '"' << minijson::escape(bundle.flags[f].first) << "\": \""
         << minijson::escape(bundle.flags[f].second) << '"';
    }
    os << "},\n";
  }
  os << "  \"benches\": [";
  for (std::size_t b = 0; b < bundle.benches.size(); ++b) {
    const BenchResult& bench = bundle.benches[b];
    os << (b == 0 ? "\n" : ",\n");
    os << "    {\n      \"name\": \"" << minijson::escape(bench.name)
       << "\",\n      \"config\": {";
    for (std::size_t c = 0; c < bench.config.size(); ++c) {
      if (c != 0) os << ", ";
      os << '"' << minijson::escape(bench.config[c].first) << "\": \""
         << minijson::escape(bench.config[c].second) << '"';
    }
    os << "},\n      \"metrics\": [";
    for (std::size_t m = 0; m < bench.metrics.size(); ++m) {
      const BenchMetric& metric = bench.metrics[m];
      os << (m == 0 ? "\n" : ",\n");
      os << "        {\"name\": \"" << minijson::escape(metric.name)
         << "\", \"value\": ";
      write_number(os, metric.value);
      os << ", \"unit\": \"" << minijson::escape(metric.unit)
         << "\", \"higher_is_better\": "
         << (metric.higher_is_better ? "true" : "false")
         << ", \"headline\": " << (metric.headline ? "true" : "false");
      if (metric.max_abs > 0.0) {
        os << ", \"max_abs\": ";
        write_number(os, metric.max_abs);
      }
      if (metric.min_abs > 0.0) {
        os << ", \"min_abs\": ";
        write_number(os, metric.min_abs);
      }
      os << '}';
    }
    os << (bench.metrics.empty() ? "]" : "\n      ]") << "\n    }";
  }
  os << (bundle.benches.empty() ? "]" : "\n  ]");
  if (!bundle.perf_json.empty()) {
    os << ",\n  \"perf\": " << bundle.perf_json;
  }
  os << "\n}\n";
}

bool write_bundle_file(const std::string& path, const BenchBundle& bundle) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_bundle(out, bundle);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench_json: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

std::string commit_from_env() {
  if (const char* c = std::getenv("RAILS_COMMIT"); c != nullptr && *c != '\0') {
    return c;
  }
  if (const char* c = std::getenv("GITHUB_SHA"); c != nullptr && *c != '\0') {
    return c;
  }
  return "unknown";
}

std::string hash_config(const std::string& text) {
  // FNV-1a, folded to 32 bits: short, stable, and a fingerprint (not a
  // cryptographic commitment) is all the mismatch warning needs.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "fnv1a:%08x",
                static_cast<std::uint32_t>(h ^ (h >> 32)));
  return buf;
}

}  // namespace rails::bench
