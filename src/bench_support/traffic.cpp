#include "bench_support/traffic.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace rails::bench {

TrafficResult run_open_loop(core::World& world, const TrafficConfig& config) {
  RAILS_CHECK(config.message_count > 0);
  RAILS_CHECK(config.offered_mbps > 0.0);
  RAILS_CHECK(config.min_size >= 1 && config.max_size >= config.min_size);

  world.fabric().events().run_all();
  Xoshiro256 rng(config.seed);

  // Pre-generate the arrival schedule: sizes log-uniform, gaps exponential
  // with mean chosen so the average byte rate equals the offered load.
  struct Message {
    SimTime arrival;
    std::size_t size;
  };
  std::vector<Message> schedule;
  schedule.reserve(config.message_count);
  const double log_lo = std::log(static_cast<double>(config.min_size));
  const double log_hi = std::log(static_cast<double>(config.max_size));
  const double mean_size = (static_cast<double>(config.max_size) -
                            static_cast<double>(config.min_size)) /
                           std::max(1e-9, log_hi - log_lo);  // log-uniform mean
  const double mean_gap_ns = mean_size / config.offered_mbps * 1e3;

  SimTime t = world.now();
  std::size_t total_bytes = 0;
  for (unsigned i = 0; i < config.message_count; ++i) {
    const double u = std::max(1e-12, rng.uniform());
    t += static_cast<SimDuration>(-std::log(u) * mean_gap_ns);
    const double ls = log_lo + rng.uniform() * (log_hi - log_lo);
    const auto size = static_cast<std::size_t>(std::exp(ls));
    schedule.push_back({t, std::max(config.min_size, std::min(config.max_size, size))});
    total_bytes += schedule.back().size;
  }

  static std::vector<std::uint8_t> tx;
  if (tx.size() < config.max_size) tx.assign(config.max_size, 0x6E);
  std::vector<std::vector<std::uint8_t>> rx(config.message_count);
  std::vector<core::RecvHandle> recvs(config.message_count);
  std::vector<core::SendHandle> sends(config.message_count);

  // Receives are pre-posted (expected messages); sends fire at their
  // scheduled arrival via fabric events.
  for (unsigned i = 0; i < config.message_count; ++i) {
    rx[i].resize(schedule[i].size);
    recvs[i] = world.engine(1).irecv(0, 5000 + i, rx[i].data(), rx[i].size());
  }
  const SimTime start = world.now();
  for (unsigned i = 0; i < config.message_count; ++i) {
    world.fabric().events().at(schedule[i].arrival, [&world, &sends, &schedule, i] {
      sends[i] = world.engine(0).isend(1, 5000 + i, tx.data(), schedule[i].size);
    });
  }

  SimTime last = start;
  SampleSet latencies;
  for (unsigned i = 0; i < config.message_count; ++i) {
    world.wait(recvs[i]);
    last = std::max(last, recvs[i]->complete_time);
    latencies.add(to_usec(recvs[i]->complete_time - schedule[i].arrival));
  }

  TrafficResult result;
  result.mean_latency_us = latencies.mean();
  result.p50_latency_us = latencies.percentile(50.0);
  result.p99_latency_us = latencies.percentile(99.0);
  result.duration_us = to_usec(last - schedule.front().arrival);
  result.total_bytes = total_bytes;
  result.achieved_mbps = static_cast<double>(total_bytes) /
                         std::max(1.0, result.duration_us);
  return result;
}

}  // namespace rails::bench
