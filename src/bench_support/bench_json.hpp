// Canonical machine-readable bench output: the BENCH_*.json schema.
//
// Every bench that speaks --json and the tools/benchjson harness emit the
// same schema-versioned bundle through this one emitter, and
// tools/benchdiff gates CI on it. Schema (rails-bench, version 1):
//
//   {
//     "schema": "rails-bench", "schema_version": 1,
//     "generator": "benchjson", "commit": "<sha|unknown>",
//     "quick": true, "generated_unix": 1754600000,
//     "config_hash": "fnv1a:9f37c121", "flags": {"reliability": "0"},
//     "benches": [
//       { "name": "msgrate_multiplex",
//         "config": { "flows": "64" },
//         "metrics": [
//           { "name": "msgs_per_ms/batch-spread/2K", "value": 12.5,
//             "unit": "msgs/ms", "higher_is_better": true,
//             "headline": true } ] } ],
//     "perf": { ...profiler breakdown, optional... }
//   }
//
// Run metadata: `commit` identifies the code, `config_hash` the resolved
// world configuration (FNV-1a over the save_world_config round-trip text),
// and `flags` the harness switches that change what was measured
// (reliability, fault injection). benchdiff refuses to compare silently
// across differing config hashes — an apples-to-oranges diff warns.
// A metric may carry "max_abs": an absolute ceiling gated by benchdiff
// independent of the baseline (used for the health-sampler overhead
// budget, where the bound itself is the contract).
//
// The `headline` flag is the CI gating contract: only metrics derived from
// the *virtual* clock (message rates, simulated latencies, event counts —
// bit-identical across hosts because the DES is deterministic) may be
// headline. Host wall-clock and cycle measurements ride along as
// informational metrics so the trajectory records them without making CI
// depend on runner speed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace rails::bench {

constexpr int kBenchSchemaVersion = 1;

struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  bool higher_is_better = true;
  /// Only deterministic virtual-time metrics may set this (see above).
  bool headline = false;
  /// Absolute gate: benchdiff fails the run when the candidate value
  /// exceeds this ceiling, baseline regardless. <= 0 = no ceiling.
  double max_abs = 0.0;
  /// Absolute floor, the ceiling's mirror: benchdiff fails when the
  /// candidate value falls below it. Used for host-rate throughput bounds
  /// (e.g. DES events/sec) where a relative gate would flake on runner
  /// speed but a generous floor still catches order-of-magnitude
  /// slowdowns. <= 0 = no floor.
  double min_abs = 0.0;
};

struct BenchResult {
  std::string name;
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<BenchMetric> metrics;
};

struct BenchBundle {
  std::string generator;
  std::string commit;
  bool quick = false;
  std::uint64_t generated_unix = 0;
  /// Hash of the resolved world config (hash_config); "" = omitted.
  std::string config_hash;
  /// Harness switches that change what was measured, in emit order.
  std::vector<std::pair<std::string, std::string>> flags;
  std::vector<BenchResult> benches;
  /// Raw JSON object with the profiler breakdown (Profiler::write_json),
  /// embedded verbatim as "perf". Empty = omitted.
  std::string perf_json;
};

/// Serializes the bundle (pretty enough to diff, stable key order).
void write_bundle(std::ostream& os, const BenchBundle& bundle);

/// write_bundle to `path`; false (with a message on stderr) on I/O failure.
bool write_bundle_file(const std::string& path, const BenchBundle& bundle);

/// Commit hash for the bundle header: $RAILS_COMMIT, else $GITHUB_SHA,
/// else "unknown" — the emitter never shells out to git.
std::string commit_from_env();

/// "fnv1a:<8 hex>" over `text` — stable run-config fingerprint for the
/// bundle header. Callers feed it save_world_config output so two bundles
/// with different resolved configs never diff silently.
std::string hash_config(const std::string& text);

}  // namespace rails::bench
