// Deterministic PRNG (xoshiro256**) used by workload generators and
// property-based tests. std::mt19937_64 would also do, but xoshiro is smaller,
// faster, and its output is stable across standard-library implementations,
// which keeps recorded experiment tables reproducible everywhere.
#pragma once

#include <cstdint>

namespace rails {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Unbiased enough for workload generation.
  std::uint64_t below(std::uint64_t bound) { return bound == 0 ? 0 : (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4];
};

}  // namespace rails
