// Lightweight always-on invariant checks.
//
// The engine is a scheduler: silent state corruption (a NIC marked idle while
// a transfer is pending, a chunk plan that does not cover the message) is far
// more expensive to debug than an immediate abort, so checks stay enabled in
// release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rails::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "RAILS_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace rails::detail

#define RAILS_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) ::rails::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define RAILS_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) ::rails::detail::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)
