// Lightweight always-on invariant checks.
//
// The engine is a scheduler: silent state corruption (a NIC marked idle while
// a transfer is pending, a chunk plan that does not cover the message) is far
// more expensive to debug than an immediate abort, so checks stay enabled in
// release builds.
//
// A process-wide failure hook can be installed to run once, after the
// diagnostic is printed and before abort(): the flight recorder uses it to
// dump a postmortem bundle so a CHECK death leaves evidence, not just a core.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rails::detail {

/// Invoked on CHECK failure with (condition, file, line, message).
using CheckFailureHook = void (*)(const char* cond, const char* file, int line,
                                  const char* msg);

inline std::atomic<CheckFailureHook>& check_failure_hook() {
  static std::atomic<CheckFailureHook> hook{nullptr};
  return hook;
}

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "RAILS_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  // Claim the hook exactly once so a CHECK failing inside the hook itself
  // cannot recurse.
  if (CheckFailureHook hook = check_failure_hook().exchange(
          nullptr, std::memory_order_acq_rel)) {
    hook(cond, file, line, msg);
  }
  std::abort();
}

}  // namespace rails::detail

namespace rails {

/// Installs `hook` to run once on the next CHECK failure (before abort).
/// Passing nullptr uninstalls. Returns the previously installed hook.
inline detail::CheckFailureHook set_check_failure_hook(detail::CheckFailureHook hook) {
  return detail::check_failure_hook().exchange(hook, std::memory_order_acq_rel);
}

}  // namespace rails

#define RAILS_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) ::rails::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define RAILS_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) ::rails::detail::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)
