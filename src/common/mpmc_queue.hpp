// Unbounded multi-producer/multi-consumer queue with blocking pop.
//
// This is the general-purpose mailbox of the threaded runtime (tasklet
// submission, progress-engine wakeups). A mutex+condvar queue is the right
// tool here: contention is low (a handful of workers), and CP.42 ("don't wait
// without a condition") rules out spin-waiting consumers.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rails {

template <typename T>
class MpmcQueue {
 public:
  void push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Blocks until an item arrives or the queue is closed. Returns nullopt only
  /// on close with an empty queue.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Wakes all blocked consumers; subsequent pops drain then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rails
