// Streaming statistics and percentile summaries used by the sampler and the
// benchmark harness.
#pragma once

#include <cstddef>
#include <vector>

namespace rails {

/// Welford-style running mean/variance plus min/max. O(1) memory, suitable for
/// accumulating per-transfer timings inside the engine.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction of per-worker stats).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; provides exact quantiles. Used where the sample count
/// is small (NIC sampling runs, bench repetitions).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double median() { return percentile(50.0); }
  /// Exact percentile by linear interpolation between closest ranks.
  double percentile(double p);
  double min() { return percentile(0.0); }
  double max() { return percentile(100.0); }
  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace rails
