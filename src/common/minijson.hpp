// Minimal JSON reader shared by the flight recorder's postmortem renderer,
// the benchdiff comparator, and tests. The repo deliberately carries no JSON
// dependency; this is a small recursive-descent parser over the subset the
// repo itself emits (objects, arrays, strings with control-character
// escapes, doubles, bools, null).
//
// Values are held as a tagged tree. Object members preserve insertion order
// (the emitters write deterministically sorted output, and the postmortem
// renderer replays fields in the order they were written).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rails::minijson {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// The number, or `fallback` when this is not a number.
  double num_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
  /// The string, or `fallback` when this is not a string.
  std::string_view str_or(std::string_view fallback) const {
    return type == Type::kString ? std::string_view(str) : fallback;
  }
  bool bool_or(bool fallback) const {
    return type == Type::kBool ? boolean : fallback;
  }
};

/// Parses `text` as one JSON document (trailing garbage is an error).
/// Returns false on malformed input; `out` is unspecified on failure.
bool parse(std::string_view text, JsonValue& out);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Control characters become \uXXXX.
std::string escape(std::string_view s);

}  // namespace rails::minijson
