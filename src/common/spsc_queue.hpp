// Bounded lock-free single-producer/single-consumer ring buffer.
//
// Used on the fast path between the strategy core and a remote submission
// core (one producer, one consumer by construction). The implementation is a
// classic Lamport ring with acquire/release indices and a power-of-two
// capacity so the modulo is a mask.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace rails {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two; the ring holds capacity-1
  /// elements (one slot is sacrificed to distinguish full from empty).
  explicit SpscQueue(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the ring is full — in which case the
  /// argument is NOT consumed, so `while (!q.try_push(std::move(x)))` retry
  /// loops are safe.
  bool try_push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) {
    T copy = value;
    return try_push(std::move(copy));
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;  // empty
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_; }

  /// Approximate size; exact when called from the consumer thread.
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer-owned
};

}  // namespace rails
