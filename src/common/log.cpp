#include "common/log.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace rails::log {

namespace {
std::mutex g_io_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void init_from_env() {
  const char* env = std::getenv("RAILS_LOG");
  if (env == nullptr) return;
  struct Entry { const char* name; Level lvl; };
  static constexpr Entry kEntries[] = {
      {"trace", Level::kTrace}, {"debug", Level::kDebug}, {"info", Level::kInfo},
      {"warn", Level::kWarn},   {"error", Level::kError}, {"off", Level::kOff},
  };
  for (const auto& e : kEntries) {
    if (std::strcmp(env, e.name) == 0) {
      set_level(e.lvl);
      return;
    }
  }
}

void vlog(Level lvl, const char* module, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %-8s ", level_name(lvl), module);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace rails::log
