// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// This is the checksum real transports put on the wire (iSCSI, SCTP, RoCE
// ICRC, ext4 metadata) because its polynomial has better error-detection
// properties for short messages than the zlib CRC32. The implementation is
// the classic software slice-by-8: eight 256-entry tables, eight bytes
// consumed per iteration, no hardware intrinsics — portable across every
// toolchain the CI matrix builds.
//
// The API is incremental so callers can checksum a header and a payload
// without concatenating them: crc32c_extend(crc32c_extend(0, hdr), body)
// equals crc32c over the concatenation. The conventional final/init
// reflection (~crc) is handled internally; a running value returned by one
// call is a valid seed for the next.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rails {

/// One-shot CRC32C of `len` bytes. crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(const void* data, std::size_t len);

/// Extends a running CRC32C with `len` more bytes. Seed with 0 (the CRC of
/// the empty string); chaining extends over concatenated inputs.
std::uint32_t crc32c_extend(std::uint32_t crc, const void* data, std::size_t len);

}  // namespace rails
