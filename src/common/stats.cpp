#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace rails {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) {
  RAILS_CHECK_MSG(!samples_.empty(), "percentile of empty sample set");
  RAILS_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

}  // namespace rails
