// Minimal leveled logger.
//
// Logging in the hot path of a communication engine must cost nothing when
// disabled: the level test is a single relaxed atomic load and the argument
// formatting is lazily evaluated behind it.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>

namespace rails::log {

enum class Level : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

namespace detail {
inline std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
}

/// Sets the global level. Also honours the RAILS_LOG environment variable
/// ("trace".."off") through init_from_env().
inline void set_level(Level lvl) {
  detail::g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

inline Level level() {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}

inline bool enabled(Level lvl) { return static_cast<int>(lvl) >= static_cast<int>(level()); }

void init_from_env();

void vlog(Level lvl, const char* module, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace rails::log

#define RAILS_LOG(lvl, module, ...)                        \
  do {                                                     \
    if (::rails::log::enabled(lvl)) {                      \
      ::rails::log::vlog(lvl, module, __VA_ARGS__);        \
    }                                                      \
  } while (0)

#define RAILS_TRACE(module, ...) RAILS_LOG(::rails::log::Level::kTrace, module, __VA_ARGS__)
#define RAILS_DEBUG(module, ...) RAILS_LOG(::rails::log::Level::kDebug, module, __VA_ARGS__)
#define RAILS_INFO(module, ...) RAILS_LOG(::rails::log::Level::kInfo, module, __VA_ARGS__)
#define RAILS_WARN(module, ...) RAILS_LOG(::rails::log::Level::kWarn, module, __VA_ARGS__)
#define RAILS_ERROR(module, ...) RAILS_LOG(::rails::log::Level::kError, module, __VA_ARGS__)
