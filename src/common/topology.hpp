// Compatibility alias: MachineTopology moved to the unified topology
// subsystem (src/topo/). Include "topo/machine.hpp" in new code; this
// header stays so existing includes keep compiling without churn.
#pragma once

#include "topo/machine.hpp"
