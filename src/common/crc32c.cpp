#include "common/crc32c.hpp"

#include <array>

namespace rails {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t slice = 1; slice < 8; ++slice) {
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFFu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, const void* data, std::size_t len) {
  const auto& t = tables().t;
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc = ~crc;

  // Byte-at-a-time until the cursor is 8-aligned, then slice-by-8.
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
    --len;
  }
  while (len >= 8) {
    // Little-endian load expressed byte-wise so the routine is
    // endian-agnostic; the compiler folds it into one load on LE targets.
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             static_cast<std::uint32_t>(p[5]) << 8 |
                             static_cast<std::uint32_t>(p[6]) << 16 |
                             static_cast<std::uint32_t>(p[7]) << 24;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
    --len;
  }
  return ~crc;
}

std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c_extend(0, data, len);
}

}  // namespace rails
