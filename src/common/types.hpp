// Core scalar types and unit helpers shared by every rails module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rails {

/// Virtual time in nanoseconds. All fabric simulation, sampling profiles and
/// strategy predictions are expressed on this clock so that experiment
/// results are deterministic and independent of the host machine.
using SimTime = std::int64_t;

/// Durations share the representation of time points.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeNever = INT64_MAX;

/// Identifies one logical core of a (simulated or real) machine.
using CoreId = std::uint32_t;

/// Identifies one rail (NIC index) of a node. Rail i of node A is wired to
/// rail i of every peer, mirroring a multirail cluster where each node has
/// one NIC per physical network.
using RailId = std::uint32_t;

/// Identifies a node (process/host) of the virtual cluster.
using NodeId = std::uint32_t;

/// Message tag, as exposed by the application-level API.
using Tag = std::uint64_t;

// -- byte-size literals ------------------------------------------------------

inline constexpr std::size_t operator""_KiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024u;
}
inline constexpr std::size_t operator""_MiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024u * 1024u;
}

// -- time literals (virtual nanoseconds) -------------------------------------

inline constexpr SimDuration operator""_ns(unsigned long long v) {
  return static_cast<SimDuration>(v);
}
inline constexpr SimDuration operator""_us(unsigned long long v) {
  return static_cast<SimDuration>(v) * 1000;
}
inline constexpr SimDuration operator""_ms(unsigned long long v) {
  return static_cast<SimDuration>(v) * 1000 * 1000;
}

/// Converts a floating-point microsecond count to the virtual clock.
constexpr SimDuration usec(double us) {
  return static_cast<SimDuration>(us * 1e3);
}

/// Converts virtual nanoseconds to floating-point microseconds.
constexpr double to_usec(SimDuration ns) { return static_cast<double>(ns) / 1e3; }

/// Bandwidth helper: duration of `bytes` at `mbps` (1 MB/s == 1e6 byte/s, the
/// convention used by the paper's MB/s figures).
constexpr SimDuration wire_time(std::size_t bytes, double mbps) {
  return static_cast<SimDuration>(static_cast<double>(bytes) / mbps * 1e3);
}

/// Achieved bandwidth in MB/s for `bytes` transferred in `ns` virtual time.
constexpr double mbps(std::size_t bytes, SimDuration ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(bytes) * 1e3 / static_cast<double>(ns);
}

}  // namespace rails
