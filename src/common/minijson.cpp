#include "common/minijson.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rails::minijson {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_)) != 0) ++p_;
  }
  bool literal(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) < n || std::memcmp(p_, s, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.str);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default: return number(out);
    }
  }
  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (p_ != end_) {
      skip_ws();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !string(key)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
    return false;
  }
  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (p_ != end_) {
      JsonValue v;
      skip_ws();
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
    return false;
  }
  bool string(std::string& out) {
    ++p_;  // '"'
    while (p_ != end_) {
      const char c = *p_++;
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) return false;
      const char esc = *p_++;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The repo's emitters only escape control characters this way;
          // decode the code point when it fits one byte, else render '?'
          // rather than expanding surrogate pairs.
          if (end_ - p_ < 4) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return false;
      }
    }
    return false;
  }
  bool number(JsonValue& out) {
    char* parse_end = nullptr;
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(p_, &parse_end);
    if (parse_end == p_ || parse_end > end_) return false;
    p_ = parse_end;
    return true;
  }

  const char* p_;
  const char* end_;
};

}  // namespace

bool parse(std::string_view text, JsonValue& out) {
  return Parser(text).parse(out);
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace rails::minijson
