#include "perf/profiler.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <vector>

#include "telemetry/metrics.hpp"

namespace rails::perf {

std::atomic<bool> Profiler::enabled_{false};
std::atomic<unsigned> Profiler::sample_every_{16};
thread_local std::uint64_t t_alloc_count = 0;

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kSubmit: return "submit";
    case Layer::kClassify: return "classify";
    case Layer::kArbiter: return "arbiter";
    case Layer::kStrategy: return "strategy";
    case Layer::kEmit: return "emit";
    case Layer::kProgress: return "progress";
    case Layer::kCompletion: return "completion";
    case Layer::kOffload: return "offload";
    case Layer::kCount: break;
  }
  return "?";
}

// Per-thread accumulation buffer. Single writer (the owning thread), read
// cross-thread by snapshot(); every counter field is a relaxed atomic so
// the read is race-free. The owning thread uses load+store instead of
// fetch_add — with one writer that is equivalent and costs a plain add.
// The plain fields at the bottom are scope-stack state touched only by the
// owning thread.
struct ThreadState {
  struct LayerCells {
    std::atomic<std::uint64_t> self_cycles{0};
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> lock_wait_cycles{0};
  };
  std::array<LayerCells, kLayerCount> layers{};
  std::atomic<std::uint64_t> root_cycles{0};
  ScopedTimer* top = nullptr;  ///< innermost open *recording* scope
  unsigned depth = 0;          ///< open scopes, recording or not
  unsigned countdown = 0;      ///< roots left until the next sampled one
  bool suppress = false;       ///< current root tree is unsampled

  ThreadState();
  ~ThreadState();

  static void bump(std::atomic<std::uint64_t>& cell, std::uint64_t add) {
    cell.store(cell.load(std::memory_order_relaxed) + add,
               std::memory_order_relaxed);
  }
  void zero() {
    for (auto& l : layers) {
      l.self_cycles.store(0, std::memory_order_relaxed);
      l.calls.store(0, std::memory_order_relaxed);
      l.allocs.store(0, std::memory_order_relaxed);
      l.lock_wait_cycles.store(0, std::memory_order_relaxed);
    }
    root_cycles.store(0, std::memory_order_relaxed);
  }
};

// Registry of live thread buffers plus totals retired by exited threads.
struct Registry {
  std::mutex mu;
  std::vector<ThreadState*> live;
  Snapshot retired;  // enabled/threads fields unused here except threads
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may outlive main
  return *r;
}

void fold(Snapshot& into, const ThreadState& ts) {
  for (unsigned i = 0; i < kLayerCount; ++i) {
    into.layers[i].self_cycles +=
        ts.layers[i].self_cycles.load(std::memory_order_relaxed);
    into.layers[i].calls += ts.layers[i].calls.load(std::memory_order_relaxed);
    into.layers[i].allocs += ts.layers[i].allocs.load(std::memory_order_relaxed);
    into.layers[i].lock_wait_cycles +=
        ts.layers[i].lock_wait_cycles.load(std::memory_order_relaxed);
  }
  into.root_cycles += ts.root_cycles.load(std::memory_order_relaxed);
}

ThreadState::ThreadState() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.live.push_back(this);
}

ThreadState::~ThreadState() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  fold(r.retired, *this);
  r.retired.threads += 1;
  for (auto it = r.live.begin(); it != r.live.end(); ++it) {
    if (*it == this) {
      r.live.erase(it);
      break;
    }
  }
}

// Plain thread_local pointer so the hot path pays one null check instead of
// a guarded-initialization branch; the cold path constructs the buffer and
// registers it.
thread_local ThreadState* t_state = nullptr;

[[gnu::noinline]] ThreadState& make_state() {
  static thread_local ThreadState owner;
  t_state = &owner;
  return owner;
}

inline ThreadState& state() {
  ThreadState* ts = t_state;
  return ts != nullptr ? *ts : make_state();
}

// RAILS_PERF=1 turns the profiler on at process start for any binary;
// RAILS_PERF_SAMPLE=N overrides the sampling period.
const bool env_init = [] {
  if (const char* e = std::getenv("RAILS_PERF"); e != nullptr && *e == '1') {
    Profiler::set_enabled(true);
  }
  if (const char* e = std::getenv("RAILS_PERF_SAMPLE"); e != nullptr) {
    const long n = std::atol(e);
    if (n > 0) Profiler::set_sample_every(static_cast<unsigned>(n));
  }
  return true;
}();

void Profiler::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (ThreadState* ts : r.live) ts->zero();
  r.retired = Snapshot{};
}

Snapshot Profiler::snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot snap = r.retired;
  snap.threads = r.retired.threads + r.live.size();
  for (const ThreadState* ts : r.live) fold(snap, *ts);
  snap.enabled = enabled();
  snap.sample_every = sample_every();
  return snap;
}

ScopedTimer::ScopedTimer(Layer layer) : layer_(layer) {
  if (!Profiler::enabled()) return;
  ThreadState& ts = state();
  ts_ = &ts;
  if (++ts.depth == 1) {
    // Root scope: draw the sampling decision for the whole subtree. A
    // countdown instead of a modulo keeps the unsampled path free of
    // division; the first root on a thread is always sampled so short
    // runs record.
    if (ts.countdown == 0) {
      ts.suppress = false;
      ts.countdown = Profiler::sample_every() - 1;
    } else {
      --ts.countdown;
      ts.suppress = true;
    }
  }
  if (ts.suppress) return;
  active_ = true;
  parent_ = ts.top;
  child_cycles_ = 0;
  child_allocs_ = 0;
  ts.top = this;
  start_allocs_ = t_alloc_count;
  start_cycles_ = now_cycles();
}

ScopedTimer::~ScopedTimer() {
  if (ts_ == nullptr) return;
  ThreadState& ts = *ts_;
  if (--ts.depth == 0) ts.suppress = false;
  if (!active_) return;
  const std::uint64_t elapsed = now_cycles() - start_cycles_;
  const std::uint64_t allocs = t_alloc_count - start_allocs_;
  ts.top = parent_;
  auto& cell = ts.layers[static_cast<unsigned>(layer_)];
  ThreadState::bump(cell.self_cycles, elapsed - child_cycles_);
  ThreadState::bump(cell.calls, 1);
  ThreadState::bump(cell.allocs, allocs - child_allocs_);
  if (parent_ != nullptr) {
    parent_->child_cycles_ += elapsed;
    parent_->child_allocs_ += allocs;
  } else {
    ThreadState::bump(ts.root_cycles, elapsed);
  }
}

void add_lock_wait(Layer layer, std::uint64_t cycles) {
  auto& cell = state().layers[static_cast<unsigned>(layer)];
  ThreadState::bump(cell.lock_wait_cycles, cycles);
}

void Profiler::write_table(std::ostream& os, const Snapshot& snap,
                           double messages) {
  const std::uint64_t total = snap.total_self_cycles();
  // Recorded cycles cover ~1/sample_every of the root scopes; per-message
  // estimates scale back up. Shares and the sum invariant are ratios over
  // the sampled population and need no scaling.
  const double scale = static_cast<double>(snap.sample_every);
  char line[160];
  std::snprintf(line, sizeof(line), "%-12s %14s %7s %10s %12s %10s\n", "layer",
                "self cycles", "share", "calls", "cycles/msg", "allocs/msg");
  os << line;
  for (unsigned i = 0; i < kLayerCount; ++i) {
    const LayerSnapshot& l = snap.layers[i];
    const double share =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(l.self_cycles) /
                         static_cast<double>(total);
    const double per_msg =
        messages > 0 ? static_cast<double>(l.self_cycles) * scale / messages : 0.0;
    const double allocs_per_msg =
        messages > 0 ? static_cast<double>(l.allocs) * scale / messages : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-12s %14llu %6.1f%% %10llu %12.0f %10.2f\n",
                  layer_name(static_cast<Layer>(i)),
                  static_cast<unsigned long long>(l.self_cycles), share,
                  static_cast<unsigned long long>(l.calls), per_msg,
                  allocs_per_msg);
    os << line;
  }
  const double total_per_msg =
      messages > 0 ? static_cast<double>(total) * scale / messages : 0.0;
  std::snprintf(line, sizeof(line), "%-12s %14llu %6.1f%% %10s %12.0f %10.2f\n",
                "TOTAL", static_cast<unsigned long long>(total),
                total == 0 ? 0.0 : 100.0, "-", total_per_msg,
                messages > 0
                    ? static_cast<double>(snap.total_allocs()) * scale / messages
                    : 0.0);
  os << line;
  std::uint64_t lock_wait = 0;
  for (const auto& l : snap.layers) lock_wait += l.lock_wait_cycles;
  std::snprintf(line, sizeof(line),
                "root scopes: %llu cycles (layers sum to %s), lock wait: %llu "
                "cycles, threads: %llu, sampling 1/%llu of root scopes\n",
                static_cast<unsigned long long>(snap.root_cycles),
                snap.root_cycles == total ? "exactly this" : "MISMATCH",
                static_cast<unsigned long long>(lock_wait),
                static_cast<unsigned long long>(snap.threads),
                static_cast<unsigned long long>(snap.sample_every));
  os << line;
}

void Profiler::write_json(std::ostream& os, const Snapshot& snap,
                          double messages) {
  os << "{\"enabled\":" << (snap.enabled ? "true" : "false")
     << ",\"threads\":" << snap.threads
     << ",\"sample_every\":" << snap.sample_every
     << ",\"root_cycles\":" << snap.root_cycles
     << ",\"total_self_cycles\":" << snap.total_self_cycles()
     << ",\"messages\":" << (messages > 0 ? messages : 0) << ",\"layers\":[";
  for (unsigned i = 0; i < kLayerCount; ++i) {
    const LayerSnapshot& l = snap.layers[i];
    if (i != 0) os << ',';
    os << "{\"layer\":\"" << layer_name(static_cast<Layer>(i))
       << "\",\"self_cycles\":" << l.self_cycles << ",\"calls\":" << l.calls
       << ",\"allocs\":" << l.allocs
       << ",\"lock_wait_cycles\":" << l.lock_wait_cycles << '}';
  }
  os << "]}";
}

void Profiler::publish(telemetry::MetricsRegistry& registry,
                       const Snapshot& snap) {
  char name[64];
  for (unsigned i = 0; i < kLayerCount; ++i) {
    const LayerSnapshot& l = snap.layers[i];
    const char* layer = layer_name(static_cast<Layer>(i));
    std::snprintf(name, sizeof(name), "perf.%s.self_cycles", layer);
    registry.gauge(name)->set(static_cast<std::int64_t>(l.self_cycles));
    std::snprintf(name, sizeof(name), "perf.%s.calls", layer);
    registry.gauge(name)->set(static_cast<std::int64_t>(l.calls));
    std::snprintf(name, sizeof(name), "perf.%s.allocs", layer);
    registry.gauge(name)->set(static_cast<std::int64_t>(l.allocs));
    std::snprintf(name, sizeof(name), "perf.%s.lock_wait_cycles", layer);
    registry.gauge(name)->set(static_cast<std::int64_t>(l.lock_wait_cycles));
  }
  registry.gauge("perf.total.root_cycles")
      ->set(static_cast<std::int64_t>(snap.root_cycles));
}

}  // namespace rails::perf
