// Hot-path cycle profiler (perf self-observability layer).
//
// "Breaking Band" (Zambre & Chandramowlishwaran) showed that multirail
// message rates are won or lost in the *software* overhead per message, and
// that the only way to shave it is to attribute it layer by layer. This
// profiler does that attribution for the engine's own hot path:
//
//   submit -> classify/admit -> arbiter -> strategy/split -> emit/pack
//          -> progress-poll -> completion           (+ threaded offload)
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled: one relaxed atomic load and a branch
//     per instrumentation site (the Engine::set_tracer idiom).
//  2. Exactly attributable when enabled: scopes nest, and a scope records
//     its *self* time (elapsed minus time spent in enclosed scopes), so
//     the per-layer numbers sum to the total instrumented cycles — no
//     double counting, Breaking Band-style.
//  3. Cheap enough to leave on: reading the cycle counter twice per scope
//     (~30 ns on this class of hardware) is an outsized tax on a hot path
//     that handles a small message in well under a microsecond, so the
//     profiler *samples whole root scopes*: every Nth root scope — and
//     everything nested inside it — is timed in full; the rest pay only a
//     depth check. Sampling whole trees keeps the layer partition exact
//     (the sum invariant of (2) holds over the sampled population) and
//     per-message figures are scaled back up by N when reported.
//     N = sample_every(), default 16, 1 = record everything.
//  4. Thread-safe without hot-path locks: per-thread buffers, registered
//     once per thread under a mutex, written single-writer with relaxed
//     atomics, folded into retired totals when a thread exits.
//  5. Compiled out entirely with -DRAILS_PERF_PROFILER=0 (CMake option
//     RAILS_PERF_PROFILER): the macros expand to nothing / a plain
//     lock_guard, so a disabled build carries no trace of the profiler.
//
// Environment: RAILS_PERF=1 enables the profiler at process start (any
// binary, no code changes); RAILS_PERF_SAMPLE=N overrides the sampling
// period.
//
// Cycle source: TSC via __rdtsc on x86-64 (constant_tsc on every machine
// this repo targets), std::chrono::steady_clock ticks elsewhere. Values
// are reported in "cycles" of whichever source is active; ratios and
// per-layer shares are meaningful either way.
//
// Allocation counts come from an *opt-in* operator-new hook
// (src/perf/alloc_hook.cpp) that a binary links explicitly; binaries that
// do not link it simply report zero allocations. The hook is a separate
// translation unit so test binaries that replace operator new themselves
// (tests/test_telemetry.cpp) do not collide, and it compiles to nothing
// under sanitizers so ASan/TSan keep their own allocator interposition.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace rails::telemetry {
class MetricsRegistry;
}

namespace rails::perf {

enum class Layer : unsigned {
  kSubmit = 0,   ///< Engine::submit_send bookkeeping (minus children below)
  kClassify,     ///< QoS classification + admission in submit_send
  kArbiter,      ///< QosArbiter grant pass + queue drain
  kStrategy,     ///< strategy interrogation + split solving
  kEmit,         ///< emission/packing: segments, chunks, wire framing
  kProgress,     ///< ProgressEngine::tick polling
  kCompletion,   ///< FIN handling and receive completion
  kOffload,      ///< threaded offload worker: copy + ring push
  kCount
};

constexpr unsigned kLayerCount = static_cast<unsigned>(Layer::kCount);
const char* layer_name(Layer layer);

/// One layer's totals in a Snapshot.
struct LayerSnapshot {
  std::uint64_t self_cycles = 0;  ///< exclusive time (children deducted)
  std::uint64_t calls = 0;
  std::uint64_t allocs = 0;       ///< operator-new calls attributed here
  std::uint64_t lock_wait_cycles = 0;
};

/// Aggregated view over every thread that ever recorded (live + retired).
struct Snapshot {
  std::array<LayerSnapshot, kLayerCount> layers{};
  /// Sum of *elapsed* cycles of sampled root scopes (scopes with no
  /// enclosing scope). Invariant: equals total_self_cycles() exactly once
  /// all scopes have closed — the Breaking Band attribution property.
  std::uint64_t root_cycles = 0;
  std::uint64_t threads = 0;  ///< thread buffers contributing (live + retired)
  /// Sampling period in effect when the snapshot was taken: cycle and call
  /// figures cover ~1/sample_every of the root scopes that ran, so
  /// per-message estimates multiply by this.
  std::uint64_t sample_every = 1;
  bool enabled = false;

  std::uint64_t total_self_cycles() const {
    std::uint64_t t = 0;
    for (const auto& l : layers) t += l.self_cycles;
    return t;
  }
  std::uint64_t total_allocs() const {
    std::uint64_t t = 0;
    for (const auto& l : layers) t += l.allocs;
    return t;
  }
};

/// The current cycle counter (TSC or steady_clock ticks).
inline std::uint64_t now_cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

class Profiler {
 public:
  /// Hot-path gate: relaxed load + branch. Scopes opened while disabled
  /// record nothing.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Sampling period: every Nth root scope (and its whole subtree) is
  /// timed. 1 records everything; 0 is clamped to 1. Takes effect at the
  /// next root scope on each thread.
  static unsigned sample_every() {
    return sample_every_.load(std::memory_order_relaxed);
  }
  static void set_sample_every(unsigned n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  /// Zeroes every live thread buffer and the retired totals. Call at a
  /// quiescent point (no scopes open); concurrent writers would smear.
  static void reset();

  /// Folds live thread buffers and retired totals into one view.
  static Snapshot snapshot();

  /// Human-readable per-layer table. `messages` > 0 adds a cycles/message
  /// column (the Breaking Band per-message decomposition).
  static void write_table(std::ostream& os, const Snapshot& snap,
                          double messages);

  /// Machine-readable: {"enabled":...,"layers":[{...}],"root_cycles":...}.
  static void write_json(std::ostream& os, const Snapshot& snap,
                         double messages);

  /// Publishes the snapshot as gauges (perf.<layer>.self_cycles, .calls,
  /// .allocs, .lock_wait_cycles, plus perf.total.root_cycles) so the
  /// profiler shows up in metrics dumps and postmortem bundles.
  static void publish(telemetry::MetricsRegistry& registry,
                      const Snapshot& snap);

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<unsigned> sample_every_;
};

/// Per-thread allocation tick, incremented by the opt-in operator-new hook.
/// Plain trivially-constructed thread_local so it is safe to touch from
/// operator new at any point in a thread's lifetime.
extern thread_local std::uint64_t t_alloc_count;

struct ThreadState;  // internal per-thread buffer (profiler.cpp)

/// RAII scope: records self cycles, calls, and allocations against `layer`.
/// Nesting is tracked through a per-thread scope stack; an inner scope's
/// elapsed time and allocations are deducted from its parent so totals
/// partition exactly. Root scopes draw the sampling decision for their
/// whole subtree (design point 3 above); unsampled scopes only maintain
/// the depth counter.
class ScopedTimer {
 public:
  explicit ScopedTimer(Layer layer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ThreadState* ts_ = nullptr;  ///< set iff the depth counter was bumped
  // Deliberately uninitialized: the ctor fills them only on the sampled
  // path, keeping the unsampled construction to two stores.
  ScopedTimer* parent_;
  std::uint64_t start_cycles_;
  std::uint64_t start_allocs_;
  std::uint64_t child_cycles_;
  std::uint64_t child_allocs_;
  Layer layer_;
  bool active_ = false;  ///< recording (enabled and sampled)
};

/// Records `cycles` of lock-wait against `layer` on the current thread.
void add_lock_wait(Layer layer, std::uint64_t cycles);

/// Mutex guard that attributes contended acquisition time to a layer.
/// Uncontended locks cost one extra try_lock; contended ones time the wait.
class TimedMutexGuard {
 public:
  TimedMutexGuard(std::mutex& m, Layer layer) : m_(m) {
    if (!Profiler::enabled()) {
      m_.lock();
      return;
    }
    if (m_.try_lock()) return;
    const std::uint64_t t0 = now_cycles();
    m_.lock();
    add_lock_wait(layer, now_cycles() - t0);
  }
  ~TimedMutexGuard() { m_.unlock(); }
  TimedMutexGuard(const TimedMutexGuard&) = delete;
  TimedMutexGuard& operator=(const TimedMutexGuard&) = delete;

 private:
  std::mutex& m_;
};

}  // namespace rails::perf

// -- instrumentation macros --------------------------------------------------
//
// RAILS_PERF_SCOPE(layer)      — opens a ScopedTimer for the rest of the
//                                enclosing block.
// RAILS_PERF_LOCK(mu, layer)   — locks `mu` for the rest of the block,
//                                attributing contended wait to `layer`.
//
// With RAILS_PERF_PROFILER off (CMake -DRAILS_PERF_PROFILER=OFF) both
// expand to profiler-free code, making the disabled build identical to an
// uninstrumented one.

#define RAILS_PERF_CONCAT_(a, b) a##b
#define RAILS_PERF_CONCAT(a, b) RAILS_PERF_CONCAT_(a, b)

#if defined(RAILS_PERF_PROFILER) && RAILS_PERF_PROFILER
#define RAILS_PERF_SCOPE(layer) \
  ::rails::perf::ScopedTimer RAILS_PERF_CONCAT(rails_perf_scope_, __LINE__)(layer)
#define RAILS_PERF_LOCK(mu, layer) \
  ::rails::perf::TimedMutexGuard RAILS_PERF_CONCAT(rails_perf_lock_, __LINE__)(mu, layer)
#else
#define RAILS_PERF_SCOPE(layer) \
  do {                          \
  } while (false)
#define RAILS_PERF_LOCK(mu, layer) \
  std::lock_guard<std::mutex> RAILS_PERF_CONCAT(rails_perf_lock_, __LINE__)(mu)
#endif
