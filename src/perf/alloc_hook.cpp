// Opt-in global operator-new hook feeding the perf profiler's per-layer
// allocation counts. Linked explicitly (not through rails_perf) by the
// binaries that want allocation attribution — railsctl, benchjson, and
// tests/test_perf — so that:
//
//  * test binaries replacing operator new themselves do not double-define
//    the symbol, and
//  * sanitizer builds keep their own allocator interposition: under
//    ASan/TSan/MSan this file compiles to an empty translation unit.
//
// The hook only bumps a trivially-constructed thread_local counter; the
// profiler's ScopedTimer attributes deltas to the active layer.
#include "perf/profiler.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RAILS_PERF_NO_ALLOC_HOOK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define RAILS_PERF_NO_ALLOC_HOOK 1
#endif
#endif

#if !defined(RAILS_PERF_NO_ALLOC_HOOK)

#include <cstdlib>
#include <new>

void* operator new(std::size_t size) {
  ++rails::perf::t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++rails::perf::t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#else

// Keep the archive member non-empty so ranlib has a symbol to index.
namespace rails::perf {
int alloc_hook_disabled_under_sanitizers = 1;
}

#endif
