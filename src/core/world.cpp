#include "core/world.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "fabric/presets.hpp"

namespace rails::core {

World::World(WorldConfig config)
    : config_(std::move(config)),
      estimator_(config_.profile_override.empty()
                     ? sampling::Estimator(
                           sampling::sample_rails(config_.fabric.rails, config_.sampler))
                     : sampling::Estimator(config_.profile_override)) {
  RAILS_CHECK_MSG(config_.profile_override.empty() ||
                      config_.profile_override.size() == config_.fabric.rails.size(),
                  "profile override must cover every rail");
  fabric_ = std::make_unique<fabric::Fabric>(config_.fabric);
  if (config_.engine.recalibration.enabled) {
    recalibrator_ = std::make_unique<sampling::Recalibrator>(&estimator_,
                                                             config_.engine.recalibration);
  }
  engines_.reserve(fabric_->node_count());
  for (NodeId n = 0; n < fabric_->node_count(); ++n) {
    engines_.push_back(std::make_unique<Engine>(fabric_.get(), n, &estimator_,
                                                config_.engine));
    if (recalibrator_ != nullptr) engines_.back()->set_recalibrator(recalibrator_.get());
  }
  set_strategy(config_.strategy);
}

Engine& World::engine(NodeId node) {
  RAILS_CHECK(node < engines_.size());
  return *engines_[node];
}

void World::set_strategy(const std::string& name) {
  for (auto& engine : engines_) engine->set_strategy(make_strategy(name));
}

SimTime World::wait(const SendHandle& send) {
  fabric_->events().run_until([&] { return send->done() || send->failed(); });
  RAILS_CHECK_MSG(!send->failed(),
                  "send failed: rejected at admission or failover exhausted");
  RAILS_CHECK_MSG(send->done(), "send cannot complete: event queue drained");
  return send->complete_time;
}

SimTime World::wait(const RecvHandle& recv) {
  fabric_->events().run_until([&] { return recv->done(); });
  RAILS_CHECK_MSG(recv->done(), "recv cannot complete: event queue drained");
  return recv->complete_time;
}

SimDuration World::measure_one_way(std::size_t size) {
  return measure_one_way_batch(size, 1);
}

SimDuration World::measure_one_way_batch(std::size_t size, unsigned count) {
  RAILS_CHECK(count >= 1);
  if (tx_buf_.size() < size) tx_buf_.assign(size, 0x5A);
  if (rx_buf_.size() < size * count) rx_buf_.assign(size * count, 0);

  // Quiesce: let any prior traffic drain so the NICs start idle.
  fabric_->events().run_all();

  std::vector<RecvHandle> recvs;
  recvs.reserve(count);
  const Tag tag = next_tag_++;
  for (unsigned i = 0; i < count; ++i) {
    recvs.push_back(engine(1).irecv(0, tag, rx_buf_.data() + i * size, size));
  }
  const SimTime start = fabric_->now();
  std::vector<SendHandle> sends;
  sends.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    sends.push_back(engine(0).isend(1, tag, tx_buf_.data(), size));
  }
  SimTime done = start;
  for (auto& recv : recvs) done = std::max(done, wait(recv));
  return done - start;
}

SimDuration World::measure_pingpong(std::size_t size, unsigned iterations) {
  RAILS_CHECK(iterations >= 1);
  if (tx_buf_.size() < size) tx_buf_.assign(size, 0x5A);
  if (rx_buf_.size() < size) rx_buf_.assign(size, 0);

  fabric_->events().run_all();
  const SimTime start = fabric_->now();
  const Tag tag = next_tag_++;
  for (unsigned i = 0; i < iterations; ++i) {
    auto recv1 = engine(1).irecv(0, tag, rx_buf_.data(), size);
    auto send0 = engine(0).isend(1, tag, tx_buf_.data(), size);
    wait(recv1);
    auto recv0 = engine(0).irecv(1, tag, rx_buf_.data(), size);
    auto send1 = engine(1).isend(0, tag, rx_buf_.data(), size);
    wait(recv0);
    wait(send0);
    wait(send1);
  }
  const SimTime end = fabric_->now();
  return (end - start) / (2 * static_cast<SimDuration>(iterations));
}

double World::measure_bandwidth(std::size_t size, unsigned iterations) {
  return mbps(size, measure_pingpong(size, iterations));
}

WorldConfig paper_testbed(const std::string& strategy) {
  WorldConfig cfg;
  cfg.fabric.node_count = 2;
  cfg.fabric.rails = {fabric::myri10g(), fabric::qsnet2()};
  cfg.fabric.topology = MachineTopology::opteron_2x2();
  cfg.strategy = strategy;
  return cfg;
}

}  // namespace rails::core
