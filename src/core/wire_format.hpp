// Framing of eager segments.
//
// One eager segment may carry several application packets (aggregation,
// Fig. 4b) and/or a fragment of a larger packet (multicore split, Fig. 7),
// so the payload is a sequence of self-describing sub-packets:
//
//   [msg_id u64][tag u64][msg_total u64][offset u64][frag_len u32][bytes...]*
//
// Rendezvous control and DATA segments use the Segment header fields
// directly and need no framing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace rails::core {

struct SubPacket {
  std::uint64_t msg_id = 0;
  Tag tag = 0;
  std::uint64_t msg_total = 0;  ///< full length of the application message
  std::uint64_t offset = 0;     ///< where this fragment starts in the message
  const std::uint8_t* bytes = nullptr;
  std::uint32_t len = 0;

  static constexpr std::size_t kHeaderBytes = 8 * 4 + 4;
};

/// Appends one framed sub-packet to `out`.
void append_subpacket(std::vector<std::uint8_t>& out, const SubPacket& sp);

/// Parses every sub-packet of an eager payload. The returned views alias
/// `payload`; consume them before the segment is destroyed.
std::vector<SubPacket> parse_subpackets(const std::vector<std::uint8_t>& payload);

/// Scratch-reusing overload: clears `out` and fills it in place, so a
/// caller on the hot receive path pays no allocation once warmed.
void parse_subpackets(const std::vector<std::uint8_t>& payload,
                      std::vector<SubPacket>& out);

/// Corruption-tolerant parse: returns false (leaving `out` cleared) instead
/// of aborting when the framing is inconsistent — a truncated header, a
/// fragment length pointing past the payload, or a fragment whose
/// offset+len overruns its declared msg_total. Receivers facing a hostile
/// data plane (see fabric/fault.hpp kCorrupt) must use this variant: with
/// the wire checksum off, a flipped bit inside a sub-packet header is
/// otherwise indistinguishable from a malformed frame.
bool try_parse_subpackets(const std::vector<std::uint8_t>& payload,
                          std::vector<SubPacket>& out);

/// Wire size one fragment of `len` bytes will occupy inside a segment.
constexpr std::size_t framed_size(std::size_t len) {
  return SubPacket::kHeaderBytes + len;
}

}  // namespace rails::core
