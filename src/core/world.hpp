// Virtual-cluster assembly: fabric + sampling + one engine per node.
//
// This is the public entry point a user of the library touches first: build
// a WorldConfig (which rails, how many nodes, which strategy), then exchange
// messages and measure. Sampling runs once at construction — the same
// "profile each NIC at initialization" step NewMadeleine performs — and the
// resulting estimator is shared by every engine (all nodes have identical
// hardware, as in the paper's testbed).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "fabric/fabric.hpp"
#include "sampling/estimator.hpp"

namespace rails::core {

struct WorldConfig {
  fabric::FabricConfig fabric;
  EngineConfig engine;
  sampling::SamplerConfig sampler;
  /// Strategy installed on every engine at construction (factory name).
  std::string strategy = "hetero-split";
  /// Skips startup sampling and uses these profiles instead (one per rail).
  /// This is how a deployment reuses an on-disk sampling cache — and how
  /// the stale-profile ablation injects outdated knowledge.
  std::vector<sampling::RailProfile> profile_override;
};

class World {
 public:
  explicit World(WorldConfig config);

  fabric::Fabric& fabric() { return *fabric_; }
  Engine& engine(NodeId node);
  const sampling::Estimator& estimator() const { return estimator_; }
  /// The shared drift detector; nullptr unless `engine.recalibration.enabled`
  /// was set at construction. Shared across engines like the estimator: the
  /// profiles describe the same hardware on both ends.
  sampling::Recalibrator* recalibrator() { return recalibrator_.get(); }
  SimTime now() const { return fabric_->now(); }

  /// Installs a fresh strategy instance (by factory name) on every engine.
  void set_strategy(const std::string& name);

  /// Runs fabric events until the request completes. Returns the completion
  /// time on the virtual clock.
  SimTime wait(const SendHandle& send);
  SimTime wait(const RecvHandle& recv);

  /// One-way transfer 0 -> 1: returns receiver-side completion minus start.
  /// The receive is pre-posted (expected message).
  SimDuration measure_one_way(std::size_t size);

  /// One-way transfer of `count` back-to-back messages of `size` bytes each
  /// (Fig. 3 workload with count=2): completion of the last receive.
  SimDuration measure_one_way_batch(std::size_t size, unsigned count);

  /// Classic ping-pong between nodes 0 and 1; returns the average half
  /// round-trip over `iterations` (§IV-A's benchmark).
  SimDuration measure_pingpong(std::size_t size, unsigned iterations = 4);

  /// Bandwidth (MB/s) derived from measure_pingpong.
  double measure_bandwidth(std::size_t size, unsigned iterations = 4);

 private:
  WorldConfig config_;
  sampling::Estimator estimator_;
  std::unique_ptr<sampling::Recalibrator> recalibrator_;
  std::unique_ptr<fabric::Fabric> fabric_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::uint8_t> tx_buf_;
  std::vector<std::uint8_t> rx_buf_;
  Tag next_tag_ = 1;
};

/// The paper's testbed: two dual-socket dual-core Opteron nodes linked by
/// Myri-10G (rail 0) and QsNetII (rail 1).
WorldConfig paper_testbed(const std::string& strategy = "hetero-split");

}  // namespace rails::core
