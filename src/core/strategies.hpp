// The strategy plug-in catalogue.
//
// Baselines (§II-A / Fig. 1 / Fig. 3):
//  * SingleRail        — everything on one fixed rail (Fig. 1a degenerate);
//  * GreedyBalance     — "when a NIC becomes idle, it looks after the next
//                        communication": per-message dynamic balancing, no
//                        aggregation, no splitting (Fig. 3's losing curve);
//  * AggregateFastest  — aggregate pending eager packets onto the fastest
//                        available rail (Fig. 4b); best single rail for
//                        rendezvous;
//  * IsoSplit          — rendezvous split into equal-size chunks over all
//                        rails (Fig. 1b / Fig. 8 "Iso-split");
//  * FixedRatioSplit   — OpenMPI-style split by asymptotic bandwidth ratio,
//                        independent of message size and NIC state (§II-A).
//
// The paper's contribution:
//  * HeteroSplit          — sampling-based equal-finish split with busy-NIC
//                           awareness (Fig. 1c / Fig. 2 / Fig. 8);
//  * MulticoreHeteroSplit — HeteroSplit plus multicore eager sends: medium
//                           eager messages are split and submitted from idle
//                           cores at a TO signalling cost (Fig. 7 / eq. 1).
#pragma once

#include <memory>

#include "core/strategy_iface.hpp"

namespace rails::core {

class SingleRail final : public Strategy {
 public:
  explicit SingleRail(RailId rail) : rail_(rail) {}
  std::string name() const override;
  EagerSchedule plan_eager(const StrategyContext& ctx,
                           std::span<const SendRequest* const> pending) override;
  strategy::SplitResult plan_rendezvous(const StrategyContext& ctx,
                                        std::size_t len) override;
  RailId control_rail(const StrategyContext&) const override { return rail_; }
  // Emits iff rail_ is idle, then packs by size alone.
  bool eager_plan_cacheable(const StrategyContext&,
                            std::span<const SendRequest* const>) const override {
    return true;
  }

 private:
  RailId rail_;
};

class GreedyBalance final : public Strategy {
 public:
  std::string name() const override { return "greedy-balance"; }
  EagerSchedule plan_eager(const StrategyContext& ctx,
                           std::span<const SendRequest* const> pending) override;
  strategy::SplitResult plan_rendezvous(const StrategyContext& ctx,
                                        std::size_t len) override;
  // Round-robin over the idle set; the cursor is local to each call.
  bool eager_plan_cacheable(const StrategyContext&,
                            std::span<const SendRequest* const>) const override {
    return true;
  }
};

class AggregateFastest : public Strategy {
 public:
  std::string name() const override { return "aggregate-fastest"; }
  EagerSchedule plan_eager(const StrategyContext& ctx,
                           std::span<const SendRequest* const> pending) override;
  strategy::SplitResult plan_rendezvous(const StrategyContext& ctx,
                                        std::size_t len) override;
  // Compares completions across idle rails only: `now` cancels, so the
  // winner is a function of the idle set, the sizes, and the profiles.
  bool eager_plan_cacheable(const StrategyContext&,
                            std::span<const SendRequest* const>) const override {
    return true;
  }
};

class IsoSplit final : public AggregateFastest {
 public:
  std::string name() const override { return "iso-split"; }
  strategy::SplitResult plan_rendezvous(const StrategyContext& ctx,
                                        std::size_t len) override;
};

class FixedRatioSplit final : public AggregateFastest {
 public:
  std::string name() const override { return "fixed-ratio-split"; }
  strategy::SplitResult plan_rendezvous(const StrategyContext& ctx,
                                        std::size_t len) override;
};

/// §II-B: "It could also be worth delaying a transfer while some NICs that
/// especially fit the considered transfer are busy." PatientAggregate picks
/// the rail with the best *busy-aware* predicted completion over ALL rails;
/// when that rail is still busy it defers (the engine re-interrogates when
/// a NIC frees up) instead of settling for an idle-but-slower rail.
class PatientAggregate : public AggregateFastest {
 public:
  std::string name() const override { return "patient-aggregate"; }
  EagerSchedule plan_eager(const StrategyContext& ctx,
                           std::span<const SendRequest* const> pending) override;
  // Busy-time magnitudes pick the winner, so only the all-idle case is a
  // pure function of the masks.
  bool eager_plan_cacheable(const StrategyContext& ctx,
                            std::span<const SendRequest* const>) const override {
    return ctx.all_usable_idle();
  }
};

class HeteroSplit : public AggregateFastest {
 public:
  std::string name() const override { return "hetero-split"; }
  strategy::SplitResult plan_rendezvous(const StrategyContext& ctx,
                                        std::size_t len) override;
};

class MulticoreHeteroSplit : public HeteroSplit {
 public:
  std::string name() const override { return "multicore-hetero-split"; }
  EagerSchedule plan_eager(const StrategyContext& ctx,
                           std::span<const SendRequest* const> pending) override;
  bool eager_plan_cacheable(const StrategyContext& ctx,
                            std::span<const SendRequest* const> pending) const override;
};

/// Batch spreading (§II: "data packets can be spread across the available
/// networks, increasing the message rate", realised via §II-C's multicore
/// submission): a burst of small messages is partitioned into one
/// aggregated segment per idle rail, each submitted from its own idle core
/// at the TO cost. Falls back to single-rail aggregation whenever the
/// prediction says the parallel copies would not pay for the signalling.
class BatchSpread final : public MulticoreHeteroSplit {
 public:
  std::string name() const override { return "batch-spread"; }
  EagerSchedule plan_eager(const StrategyContext& ctx,
                           std::span<const SendRequest* const> pending) override;
  bool eager_plan_cacheable(const StrategyContext& ctx,
                            std::span<const SendRequest* const> pending) const override;
};

/// Factory by name ("single-rail:0", "greedy-balance", "iso-split", ...).
std::unique_ptr<Strategy> make_strategy(const std::string& name);

}  // namespace rails::core
