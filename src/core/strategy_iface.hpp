// Strategy plug-in interface (§III-B).
//
// "the features proposed in this article are mainly organized around the
// implementation of a new NewMadeleine optimization strategy which actually
// is a plug-in called to gather the data requests and interrogated by the
// lower layer in order to know what to do at the appropriate time."
//
// The engine interrogates the strategy at the paper's three decision points:
//  * plan_eager     — just before managing the emission of eager packets
//                     (also re-invoked whenever a NIC becomes idle);
//  * plan_rendezvous — when a rendezvous acknowledgement (CTS) arrives and
//                     the bulk data must be scheduled across rails;
//  * control_rail   — which rail carries a control segment.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fabric/nic.hpp"
#include "fabric/sim_cores.hpp"
#include "qos/traffic_class.hpp"
#include "sampling/estimator.hpp"
#include "sampling/recalibration.hpp"
#include "strategy/offload_model.hpp"
#include "strategy/split_solver.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/timeseries.hpp"

namespace rails::core {

struct SendRequest;

/// Fault-tolerance knobs (docs/FAULTS.md). The defaults are inert on a
/// healthy fabric: timeouts are armed with generous slack and simply expire
/// unnoticed after their chunk completed, so enabling failover does not
/// perturb fault-free timing.
struct FailoverConfig {
  bool enabled = true;
  /// A DMA chunk is declared lost when it exceeds `timeout_slack` times its
  /// estimator-predicted completion (floored at `min_timeout`).
  double timeout_slack = 4.0;
  SimDuration min_timeout = 50'000;  // 50 µs
  /// Post attempts per byte range (original + retries) before giving up and
  /// marking the send failed.
  unsigned max_attempts = 4;
  /// Initial quarantine window after an error/timeout; each unsuccessful
  /// re-probe multiplies the window by `quarantine_backoff`, capped at
  /// `max_quarantine`.
  SimDuration quarantine = 2'000'000;  // 2 ms
  double quarantine_backoff = 2.0;
  SimDuration max_quarantine = 50'000'000;  // 50 ms
};

/// End-to-end reliable-delivery knobs (docs/FAULTS.md, "Data-plane faults &
/// reliable delivery"). Default-off: a disabled engine takes no reliability
/// branch at all, keeping headline metrics bit-identical to pre-reliability
/// builds. Enabled at zero fault rate, the layer costs one coalesced ACK
/// per link per `ack_delay` plus a per-segment CRC — inside the bench gate.
struct ReliabilityConfig {
  bool enabled = false;
  /// Compute/verify the CRC32C wire checksum (header + payload). Off, a
  /// corrupted payload is delivered undetected — useful only for measuring
  /// the checksum's own cost.
  bool checksum = true;
  /// Retransmissions per sequence number before giving up, quarantining the
  /// last rail used, and triggering a postmortem.
  unsigned max_retransmits = 6;
  /// A segment is presumed lost when no ACK covers it within
  /// `ack_timeout_slack` x (predicted delivery + ack_delay), floored at
  /// `min_ack_timeout`; each retransmit multiplies the wait by `backoff`
  /// (the PR 2 prediction-scaled-timeout idiom, applied end-to-end).
  double ack_timeout_slack = 4.0;
  SimDuration min_ack_timeout = 100'000;  // 100 µs
  double backoff = 2.0;
  /// Receiver-side ACK coalescing window: acknowledgements piggyback state
  /// for every segment accepted within it, so a flood costs one control
  /// segment per link per window rather than one per message.
  SimDuration ack_delay = 25'000;  // 25 µs
  /// Consecutive inferred losses on one rail before the reliability layer
  /// escalates to the PR 2 quarantine path (0 disables the streak trigger;
  /// retry-budget exhaustion still quarantines).
  unsigned loss_streak_quarantine = 3;
};

struct EngineConfig {
  /// Core the packet scheduler (strategy) runs on.
  CoreId scheduler_core = 0;
  /// Multicore eager-offload parameters (TO etc.).
  strategy::OffloadConfig offload;
  /// Overrides the sampled eager/rendezvous threshold when non-zero.
  std::size_t rdv_threshold_override = 0;
  /// Host memcpy bandwidth charged when an iovec send must be coalesced
  /// because some rail lacks gather/scatter support (MB/s).
  double host_copy_mbps = 2500.0;
  /// Timeout/retry/quarantine behaviour on rail faults.
  FailoverConfig failover;
  /// End-to-end ACK/retransmit + wire-checksum layer (docs/FAULTS.md).
  ReliabilityConfig reliability;
  /// Online drift detection / adaptive recalibration (docs/CALIBRATION.md).
  sampling::RecalibrationConfig recalibration;
  /// Traffic-class scheduling, deadline admission, backpressure
  /// (docs/QOS.md). Default-off: a disabled engine is byte-for-byte the
  /// pre-QoS engine.
  qos::QosConfig qos;
  /// Memoize eager strategy decisions keyed on (sizes, qos classes,
  /// usable/idle rail sets, idle cores, decision epoch); invalidated on
  /// failover/quarantine/trust/profile transitions (docs/PERF.md). Only
  /// consulted when the strategy declares the decision cacheable.
  bool strategy_cache = true;
  /// Health-plane time-series sampler (docs/OBSERVABILITY.md). Default-off:
  /// a disabled engine arms no health tick and samples nothing.
  telemetry::TimeseriesConfig timeseries;
  /// Declarative SLO objectives evaluated on the health tick; a firing
  /// burn-rate alert escalates into the flight recorder. Requires
  /// `timeseries.enabled` (the tick drives evaluation) and QoS (the
  /// per-class sources).
  std::vector<telemetry::SloSpec> slos;
};

/// Everything a strategy may inspect when interrogated.
struct StrategyContext {
  SimTime now = 0;
  const sampling::Estimator* estimator = nullptr;
  std::span<fabric::SimNic* const> nics;  ///< this node's NICs, indexed by rail
  fabric::SimCores* cores = nullptr;
  const EngineConfig* config = nullptr;

  /// Per-rail health mask maintained by the engine's fault-tolerance layer
  /// (empty = every rail usable, which keeps hand-built contexts valid).
  /// Quarantined rails keep their sampled profiles but must be skipped by
  /// strategies until a re-probe succeeds. The engine guarantees at least
  /// one usable rail (an all-quarantined node falls back to all-usable).
  std::span<const std::uint8_t> usable;

  /// Per-rail cost multipliers (≥ 1) from the recalibration trust layer
  /// (empty = every rail fully trusted). A SUSPECT rail's predictions are
  /// inflated by its penalty so the solver hands it smaller chunks.
  std::span<const double> trust_penalty;
  /// Set when some *usable* rail is UNTRUSTED or mid-resample: its numbers
  /// cannot feed the solver, so knowledge-based strategies fall back to
  /// knowledge-free iso weighting until trust is re-earned.
  bool trust_compromised = false;

  std::uint32_t rail_count() const { return static_cast<std::uint32_t>(nics.size()); }
  SimTime rail_busy_until(RailId rail) const { return nics[rail]->busy_until(); }
  SimDuration rail_ready_offset(RailId rail) const {
    const SimTime b = rail_busy_until(rail);
    return b > now ? b - now : 0;
  }
  bool rail_usable(RailId rail) const { return usable.empty() || usable[rail] != 0; }
  double rail_trust_penalty(RailId rail) const {
    return trust_penalty.empty() ? 1.0 : trust_penalty[rail];
  }
  /// True when no usable rail has work in flight — busy offsets are all
  /// zero, so busy-aware plans collapse to functions of the idle sets.
  bool all_usable_idle() const {
    for (RailId r = 0; r < rail_count(); ++r) {
      if (rail_usable(r) && rail_busy_until(r) > now) return false;
    }
    return true;
  }
};

/// One piece of one application message inside an eager emission.
struct EagerPiece {
  const SendRequest* send = nullptr;
  std::size_t offset = 0;
  std::size_t len = 0;
};

/// One eager segment to post: possibly several aggregated pieces, possibly
/// submitted from a remote core (offload_core set) at a TO signalling cost.
struct EagerEmission {
  RailId rail = 0;
  std::optional<CoreId> offload_core;
  std::vector<EagerPiece> pieces;

  std::size_t payload_bytes() const {
    std::size_t n = 0;
    for (const auto& p : pieces) n += p.len;
    return n;
  }
};

/// Result of plan_eager: emissions to post now. Sends not referenced by any
/// emission stay queued; the engine re-interrogates when a NIC frees up.
struct EagerSchedule {
  std::vector<EagerEmission> emissions;
  bool empty() const { return emissions.empty(); }
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;

  /// Plans emission of the queued eager sends (all to the same engine; the
  /// engine groups by destination before interrogating).
  virtual EagerSchedule plan_eager(const StrategyContext& ctx,
                                   std::span<const SendRequest* const> pending) = 0;

  /// Plans the DMA chunk layout for a rendezvous message of `len` bytes
  /// (called when the CTS arrives).
  virtual strategy::SplitResult plan_rendezvous(const StrategyContext& ctx,
                                                std::size_t len) = 0;

  /// Rail used for control segments (RTS/CTS/FIN). Default: the rail with
  /// the lowest predicted completion for a zero-byte eager message.
  virtual RailId control_rail(const StrategyContext& ctx) const;

  /// Declares that plan_eager's decision for this context is a pure
  /// function of (pending sizes, usable mask, idle-rail mask, idle-core
  /// mask, sampled profiles) — i.e. it consults no busy-time magnitudes and
  /// no internal mutable state — so the engine may replay a memoized
  /// emission plan instead of re-interrogating. Conservative default: no.
  virtual bool eager_plan_cacheable(const StrategyContext&,
                                    std::span<const SendRequest* const>) const {
    return false;
  }
};

}  // namespace rails::core
