// Send/receive request state, shared between the engine and the application.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"
#include "core/request_pool.hpp"

namespace rails::core {

/// Wildcards for irecv matching (MPI_ANY_SOURCE / MPI_ANY_TAG analogues).
inline constexpr NodeId kAnySource = ~NodeId{0};
inline constexpr Tag kAnyTag = ~Tag{0};

enum class SendState : std::uint8_t {
  kQueued,    ///< in the pack list, waiting for the strategy
  kRtsSent,   ///< rendezvous: waiting for the receiver's CTS
  kStreaming, ///< rendezvous: DMA chunks in flight
  kDone,
  kFailed,    ///< failover exhausted every retry attempt; will never complete
  kRejected,  ///< QoS deadline admission refused the send at submit time
};

enum class RecvState : std::uint8_t {
  kPosted,   ///< waiting for the first matching fragment / RTS
  kMatched,  ///< bound to a message id; data flowing in
  kDone,
};

struct SendRequest {
  std::uint64_t id = 0;  ///< engine-unique message id (scoped to the source node)
  NodeId dst = 0;
  Tag tag = 0;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;

  /// For gathered (iovec) sends on rails without gather/scatter support:
  /// the engine coalesces into this request-owned staging buffer and `data`
  /// points at it.
  std::vector<std::uint8_t> staging;

  SendState state = SendState::kQueued;
  bool rendezvous = false;
  std::size_t bytes_posted = 0;

  SimTime submit_time = 0;
  SimTime complete_time = 0;

  /// Number of chunks the message was split into (1 = not split).
  unsigned chunk_count = 0;
  /// Number of chunks submitted from a remote (offloaded) core.
  unsigned offloaded_chunks = 0;

  /// Traffic class the QoS arbiter resolved at submit (docs/QOS.md);
  /// 0 when the QoS subsystem is disabled.
  std::uint32_t qos_class = 0;
  /// Absolute completion deadline; 0 = none. Admission-checked at submit.
  SimTime deadline = 0;

  bool done() const { return state == SendState::kDone; }
  /// Terminal non-completion: failover exhausted or refused at admission.
  bool failed() const {
    return state == SendState::kFailed || state == SendState::kRejected;
  }
  bool rejected() const { return state == SendState::kRejected; }
};

struct RecvRequest {
  std::uint64_t id = 0;
  NodeId src = 0;
  Tag tag = 0;
  std::uint8_t* data = nullptr;
  std::size_t capacity = 0;

  RecvState state = RecvState::kPosted;
  /// Message id this request got bound to on first fragment/RTS.
  std::uint64_t matched_msg = 0;
  std::size_t expected = std::numeric_limits<std::size_t>::max();
  std::size_t bytes_received = 0;

  SimTime post_time = 0;
  SimTime complete_time = 0;

  bool done() const { return state == RecvState::kDone; }
};

/// Resets a recycled send request for reuse. `staging` keeps its capacity
/// so a flow that staged once never re-allocates on later messages.
inline void pool_recycle(SendRequest& r) {
  r.id = 0;
  r.dst = 0;
  r.tag = 0;
  r.data = nullptr;
  r.len = 0;
  r.staging.clear();
  r.state = SendState::kQueued;
  r.rendezvous = false;
  r.bytes_posted = 0;
  r.submit_time = 0;
  r.complete_time = 0;
  r.chunk_count = 0;
  r.offloaded_chunks = 0;
  r.qos_class = 0;
  r.deadline = 0;
}

inline void pool_recycle(RecvRequest& r) {
  r.id = 0;
  r.src = 0;
  r.tag = 0;
  r.data = nullptr;
  r.capacity = 0;
  r.state = RecvState::kPosted;
  r.matched_msg = 0;
  r.expected = std::numeric_limits<std::size_t>::max();
  r.bytes_received = 0;
  r.post_time = 0;
  r.complete_time = 0;
}

/// Requests are handed out as generation-tagged pooled handles: the engine
/// recycles them through process-wide slab pools instead of allocating per
/// message (docs/PERF.md).
using SendHandle = PoolHandle<SendRequest>;
using RecvHandle = PoolHandle<RecvRequest>;

inline SendHandle make_send_request() {
  return RequestPool<SendRequest>::instance().acquire();
}
inline RecvHandle make_recv_request() {
  return RequestPool<RecvRequest>::instance().acquire();
}

}  // namespace rails::core
