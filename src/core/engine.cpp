#include "core/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "common/check.hpp"
#include "common/crc32c.hpp"
#include "common/log.hpp"
#include "fabric/buffer_pool.hpp"
#include "perf/profiler.hpp"

namespace rails::core {

namespace {

/// CRC32C over the protocol-stable segment fields plus the payload. `rail`
/// and `attempt` are deliberately excluded: both legitimately change when a
/// segment is retransmitted on another rail, and a retransmission must
/// checksum identically to the original so the receiver's verify works on
/// whichever copy arrives first.
std::uint32_t reliable_crc(const fabric::Segment& seg) {
  std::uint8_t hdr[49];
  std::size_t n = 0;
  hdr[n++] = static_cast<std::uint8_t>(seg.kind);
  const auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) hdr[n++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  const auto put64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) hdr[n++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put32(seg.src);
  put32(seg.dst);
  put64(seg.msg_id);
  put64(seg.tag);
  put64(seg.offset);
  put64(seg.total_len);
  put64(seg.seq);
  const std::uint32_t head = crc32c(hdr, n);
  if (seg.payload.empty()) return head;
  return crc32c_extend(head, seg.payload.data(), seg.payload.size());
}

}  // namespace

RailId Strategy::control_rail(const StrategyContext& ctx) const {
  // Default policy: the usable rail whose zero-byte eager message completes
  // first, busy offsets included — typically the lowest-latency idle rail.
  RailId best = 0;
  SimTime best_done = kSimTimeNever;
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    if (!ctx.rail_usable(r)) continue;
    const sampling::RailState state{r, ctx.rail_busy_until(r)};
    const SimTime done =
        ctx.estimator->completion(state, ctx.now, 0, fabric::Protocol::kEager);
    if (done < best_done) {
      best_done = done;
      best = r;
    }
  }
  return best;
}

Engine::Engine(fabric::Fabric* fabric, NodeId self, const sampling::Estimator* estimator,
               EngineConfig config)
    : fabric_(fabric), self_(self), estimator_(estimator), config_(config) {
  RAILS_CHECK(fabric_ != nullptr && estimator_ != nullptr);
  RAILS_CHECK_MSG(estimator_->rail_count() == fabric_->rail_count(),
                  "estimator and fabric disagree on the rail count");
  nics_.reserve(fabric_->rail_count());
  for (RailId r = 0; r < fabric_->rail_count(); ++r) nics_.push_back(&fabric_->nic(self_, r));
  rdv_threshold_ = config_.rdv_threshold_override != 0 ? config_.rdv_threshold_override
                                                       : estimator_->engine_rdv_threshold();
  if (config_.qos.enabled) {
    qos_ = std::make_unique<qos::QosArbiter>(config_.qos, rdv_threshold_);
  }
  stats_.payload_bytes_per_rail.assign(fabric_->rail_count(), 0);
  if (config_.reliability.enabled) {
    rel_links_.resize(fabric_->node_count());
    rel_loss_streak_.assign(fabric_->rail_count(), 0);
  }
  rail_health_.assign(fabric_->rail_count(), RailHealth{});
  rail_usable_.assign(fabric_->rail_count(), 1);
  trust_penalty_.assign(fabric_->rail_count(), 1.0);
  resample_armed_.assign(fabric_->rail_count(), 0);
  if (config_.timeseries.enabled) {
    health_ = std::make_unique<telemetry::HealthSampler>(config_.timeseries);
    if (!config_.slos.empty()) {
      slo_ = std::make_unique<telemetry::SloMonitor>(config_.slos);
      slo_->bind(qos_class_names());
    }
  }
  fabric_->set_rx_handler(self_, [this](fabric::Segment&& seg) { on_segment(std::move(seg)); });
  // Completion-queue hooks on this node's own NICs: successful deliveries
  // retire live chunks, drops enter the failover path.
  for (fabric::SimNic* nic : nics_) {
    nic->set_tx_error([this](fabric::Segment&& seg) { on_tx_error(std::move(seg)); });
    nic->set_tx_complete([this](const fabric::Segment& seg) { on_tx_complete(seg); });
  }
}

void Engine::set_strategy(std::unique_ptr<Strategy> strategy) {
  RAILS_CHECK(strategy != nullptr);
  strategy_ = std::move(strategy);
  metrics_.set_strategy_name(strategy_->name());
  invalidate_decisions();  // cached plans belong to the old strategy
}

void Engine::set_metrics(telemetry::MetricsRegistry* registry) {
  metrics_.attach(registry, fabric_->rail_count());
  if (strategy_ != nullptr) metrics_.set_strategy_name(strategy_->name());
  if (qos_ != nullptr) qos_->attach_metrics(registry);
  if (health_ != nullptr) {
    health_->attach(registry, qos_class_names(), fabric_->rail_count());
  }
}

std::vector<std::string> Engine::qos_class_names() const {
  std::vector<std::string> names;
  if (qos_ != nullptr) {
    names.reserve(qos_->class_count());
    for (qos::ClassId c = 0; c < qos_->class_count(); ++c) {
      names.push_back(qos_->spec(c).name);
    }
  }
  return names;
}

void Engine::set_recalibrator(sampling::Recalibrator* recal) {
  if (recal != nullptr) {
    RAILS_CHECK_MSG(recal->rail_count() == nics_.size(),
                    "recalibrator and fabric disagree on the rail count");
  }
  recal_ = recal;
}

void Engine::set_flight_recorder(trace::FlightRecorder* recorder) {
  flight_ = recorder;
  if (flight_ != nullptr) {
    flight_->set_state_writer([this](std::ostream& os) { write_state_json(os); });
    if (health_ != nullptr) {
      // SLO postmortems carry the offending time series, not just the
      // moment of the page (docs/OBSERVABILITY.md).
      flight_->set_series_writer(
          [this](std::ostream& os) { health_->write_json(os); });
    }
  }
}

void Engine::write_state_json(std::ostream& os) const {
  os << "{\"node\":" << self_ << ",\"strategy\":\""
     << (strategy_ != nullptr ? strategy_->name() : "(none)") << '"'
     << ",\"rdv_threshold\":" << rdv_threshold_ << ",\"rails\":[";
  for (RailId r = 0; r < nics_.size(); ++r) {
    if (r != 0) os << ',';
    os << "{\"rail\":" << r << ",\"quarantined\":"
       << (rail_health_[r].quarantined ? "true" : "false");
    if (rail_health_[r].quarantined) {
      os << ",\"until_us\":" << to_usec(rail_health_[r].until);
    }
    if (recal_ != nullptr) {
      os << ",\"trust\":\"" << sampling::to_string(recal_->trust(r)) << '"'
         << ",\"scale\":" << recal_->scale(r)
         << ",\"drift\":" << recal_->drift_score(r);
    }
    os << '}';
  }
  os << "],\"config\":{\"failover_enabled\":"
     << (config_.failover.enabled ? "true" : "false")
     << ",\"timeout_slack\":" << config_.failover.timeout_slack
     << ",\"max_attempts\":" << config_.failover.max_attempts
     << ",\"quarantine_us\":" << to_usec(config_.failover.quarantine)
     << ",\"reliability_enabled\":" << (config_.reliability.enabled ? "true" : "false")
     << ",\"reliability_checksum\":" << (config_.reliability.checksum ? "true" : "false")
     << ",\"max_retransmits\":" << config_.reliability.max_retransmits
     << ",\"reliable_in_flight\":" << rel_live_entries_
     << ",\"recal_attached\":" << (recal_ != nullptr ? "true" : "false") << "}}";
}

// -- health plane (docs/OBSERVABILITY.md) ------------------------------------

bool Engine::health_work_pending() const {
  return !pending_eager_.empty() || !rdv_sends_.empty() || !qos_streams_.empty() ||
         !inbound_rdv_.empty() || !unexpected_.empty() || rel_live_entries_ > 0 ||
         (qos_ != nullptr && qos_->backlog());
}

void Engine::arm_health() {
  if (health_ == nullptr || health_armed_) return;
  health_armed_ = true;
  fabric_->events().after(health_->interval(), [this] { health_tick(); });
}

void Engine::health_tick() {
  health_armed_ = false;
  if (health_ == nullptr) return;
  const SimTime now = fabric_->now();
  const auto& ticks = health_->sample(now);
  if (slo_ != nullptr) {
    for (const telemetry::AlertEvent& ev : slo_->observe(now, ticks)) {
      flight(trace::FlightKind::kSloAlert, 0, 0, ev.firing ? 1 : 0,
             static_cast<std::int64_t>(ev.fast_value * 1000));
      if (ev.firing) flight_trigger("slo-burn", ev.detail);
    }
  }
  // Re-arm only while work is in flight: one trailing tick captures the
  // final deltas after the engine drains, then the event chain ends so
  // run_all()/run_until() can terminate.
  if (health_work_pending()) arm_health();
}

void Engine::flight(trace::FlightKind kind, RailId rail, std::uint64_t msg_id,
                    std::int64_t a, std::int64_t b) {
  if (flight_ == nullptr) return;
  trace::FlightRecord r;
  r.time = fabric_->now();
  r.kind = kind;
  r.node = self_;
  r.rail = rail;
  r.msg_id = msg_id;
  r.a = a;
  r.b = b;
  flight_->record(r);
  metrics_.on_flight_evictions(flight_->evictions());
}

void Engine::flight_trigger(const char* reason, const std::string& detail) {
  if (flight_ == nullptr) return;
  flight_->trigger(reason, detail, fabric_->now());
}

void Engine::force_recalibrate(RailId rail) {
  if (recal_ == nullptr) return;
  RAILS_CHECK(rail < nics_.size());
  recal_->force_resample(rail);
  schedule_resample(rail);
}

void Engine::observe_completion(RailId rail, SimDuration plan, SimDuration model,
                                SimDuration actual) {
  if (predictions_ != nullptr) predictions_->record(rail, plan, actual);
  if (recal_ == nullptr) return;
  const auto out = recal_->observe(rail, model, actual, fabric_->now());
  // A scale correction or trust transition changes estimator outputs (and
  // thus what the planner would decide) without touching the cache key —
  // orphan every memoized decision.
  if (out.scale_corrected || out.state_changed) invalidate_decisions();
  if (out.scale_corrected) {
    ++stats_.recal_corrections;
    metrics_.on_recal_correction(rail, recal_->scale(rail));
    flight(trace::FlightKind::kScaleCorrection, rail, 0,
           static_cast<std::int64_t>(recal_->scale(rail) * 1000.0));
  }
  if (out.demoted) {
    ++stats_.trust_demotions;
    flight(trace::FlightKind::kTrustDemotion, rail, 0,
           static_cast<std::int64_t>(out.state));
    char detail[128];
    std::snprintf(detail, sizeof(detail), "rail %u trust demoted to %s", rail,
                  sampling::to_string(out.state));
    flight_trigger("trust-demotion", detail);
  }
  if (out.promoted) {
    ++stats_.trust_promotions;
    flight(trace::FlightKind::kTrustPromotion, rail, 0,
           static_cast<std::int64_t>(out.state));
  }
  if (out.state_changed)
    metrics_.on_trust_change(rail, static_cast<int>(out.state), out.demoted);
  metrics_.on_drift_sample(rail, recal_->drift_score(rail));
  if (out.resample_requested) schedule_resample(rail);
}

void Engine::schedule_resample(RailId rail) {
  if (resample_armed_[rail] != 0) return;
  resample_armed_[rail] = 1;
  // The detector rate-limits sweeps; arm the event no earlier than the next
  // slot so a hot rail does not spin the queue.
  const SimTime when = std::max(fabric_->now(), recal_->earliest_resample(rail));
  fabric_->events().at(when, [this, rail] {
    resample_armed_[rail] = 0;
    run_resample(rail);
  });
}

void Engine::run_resample(RailId rail) {
  if (recal_ == nullptr) return;
  const SimTime now = fabric_->now();
  // Several engines share the detector; whoever gets here first (and passes
  // the budget/interval gate) runs the sweep, the rest find it not due.
  if (!recal_->resample_due(rail, now)) return;
  recal_->begin_resample(rail, now);
  // The probe burst is not free: charge the scheduler core.
  fabric_->cores(self_).occupy(config_.scheduler_core, now,
                               config_.recalibration.resample_host_cost);
  sampling::RailProfile fresh = sampling::resample_rail_via_preview(
      *nics_[rail], now, config_.recalibration.resample_sampler);
  recal_->complete_resample(rail, std::move(fresh), now);
  invalidate_decisions();  // the rail's cost profile just changed
  ++stats_.recal_resamples;
  metrics_.on_resample(rail, recal_->scale(rail));
  metrics_.on_trust_gauge(rail, static_cast<int>(recal_->trust(rail)));
  flight(trace::FlightKind::kResample, rail, 0,
         static_cast<std::int64_t>(recal_->scale(rail) * 1000.0));
}

Strategy& Engine::strategy() {
  RAILS_CHECK_MSG(strategy_ != nullptr, "no strategy installed");
  return *strategy_;
}

void Engine::trace_event(trace::EventKind kind, std::uint64_t msg_id, Tag tag,
                         RailId rail, CoreId core, std::size_t bytes, SimTime time,
                         SimTime nic_end, std::uint32_t cls) {
  // Data-plane events are mirrored into the always-on flight recorder so a
  // postmortem window exists even when no Tracer is attached.
  if (flight_ != nullptr) {
    bool mirror = true;
    trace::FlightKind fk = trace::FlightKind::kSubmit;
    switch (kind) {
      case trace::EventKind::kSubmit: fk = trace::FlightKind::kSubmit; break;
      case trace::EventKind::kEagerEmit: fk = trace::FlightKind::kEagerEmit; break;
      case trace::EventKind::kChunkPosted: fk = trace::FlightKind::kChunkPosted; break;
      case trace::EventKind::kSendComplete: fk = trace::FlightKind::kSendComplete; break;
      case trace::EventKind::kRecvComplete: fk = trace::FlightKind::kRecvComplete; break;
      case trace::EventKind::kOffloadSignal: fk = trace::FlightKind::kOffloadSignal; break;
      case trace::EventKind::kFailover: fk = trace::FlightKind::kFailover; break;
      default: mirror = false; break;
    }
    if (mirror) {
      trace::FlightRecord r;
      r.time = time;
      r.kind = fk;
      r.node = self_;
      r.rail = rail;
      r.msg_id = msg_id;
      r.a = static_cast<std::int64_t>(bytes);
      r.b = nic_end;
      flight_->record(r);
      metrics_.on_flight_evictions(flight_->evictions());
    }
  }
  if (tracer_ == nullptr) return;
  trace::TraceEvent event;
  event.time = time;
  event.node = self_;
  event.kind = kind;
  event.msg_id = msg_id;
  event.tag = tag;
  event.rail = rail;
  event.core = core;
  event.bytes = bytes;
  event.nic_end = nic_end;
  event.cls = cls;
  tracer_->record(event);
  metrics_.on_trace_dropped(tracer_->dropped());
}

void Engine::reset_stats() {
  stats_ = EngineStats{};
  stats_.payload_bytes_per_rail.assign(fabric_->rail_count(), 0);
}

StrategyContext Engine::make_context() {
  StrategyContext ctx;
  ctx.now = fabric_->now();
  ctx.estimator = estimator_;
  ctx.nics = std::span<fabric::SimNic* const>(nics_.data(), nics_.size());
  ctx.cores = &fabric_->cores(self_);
  ctx.config = &config_;
  // Health mask: quarantined rails are hidden from the strategy. When every
  // rail is quarantined there is nothing left to prefer — expose all of
  // them so traffic keeps flowing (and keeps probing).
  bool any_usable = false;
  for (RailId r = 0; r < nics_.size(); ++r) {
    rail_usable_[r] = rail_usable(r) ? 1 : 0;
    any_usable = any_usable || rail_usable_[r] != 0;
  }
  if (!any_usable) rail_usable_.assign(nics_.size(), 1);
  ctx.usable = std::span<const std::uint8_t>(rail_usable_.data(), rail_usable_.size());
  // Trust layer: SUSPECT rails carry a cost penalty; an UNTRUSTED (or
  // mid-resample) rail that is still usable compromises the solver's inputs
  // and pushes knowledge-based strategies to their iso fallback.
  if (recal_ != nullptr) {
    bool compromised = false;
    for (RailId r = 0; r < nics_.size(); ++r) {
      trust_penalty_[r] = recal_->cost_penalty(r);
      compromised = compromised || (rail_usable_[r] != 0 && recal_->compromised(r));
    }
    ctx.trust_penalty = std::span<const double>(trust_penalty_.data(), trust_penalty_.size());
    ctx.trust_compromised = compromised;
  }
  return ctx;
}

SendHandle Engine::isend(NodeId dst, Tag tag, const void* data, std::size_t len) {
  return submit_send(dst, tag, data, len, SendOptions{}, /*bounded=*/false);
}

SendHandle Engine::isend(NodeId dst, Tag tag, const void* data, std::size_t len,
                         const SendOptions& opts) {
  return submit_send(dst, tag, data, len, opts, /*bounded=*/false);
}

SendHandle Engine::try_isend(NodeId dst, Tag tag, const void* data, std::size_t len) {
  return submit_send(dst, tag, data, len, SendOptions{}, /*bounded=*/true);
}

SendHandle Engine::try_isend(NodeId dst, Tag tag, const void* data, std::size_t len,
                             const SendOptions& opts) {
  return submit_send(dst, tag, data, len, opts, /*bounded=*/true);
}

SendHandle Engine::submit_send(NodeId dst, Tag tag, const void* data, std::size_t len,
                               const SendOptions& opts, bool bounded) {
  RAILS_PERF_SCOPE(perf::Layer::kSubmit);
  RAILS_CHECK_MSG(dst != self_, "self-sends are not routed through the fabric");
  SendHandle send = make_send_request();
  send->id = next_msg_id_++;
  send->dst = dst;
  send->tag = tag;
  send->data = static_cast<const std::uint8_t*>(data);
  send->len = len;
  send->submit_time = fabric_->now();

  if (qos_ != nullptr) {
    RAILS_PERF_SCOPE(perf::Layer::kClassify);
    send->qos_class = qos_->resolve(opts.traffic_class, len);
    // Deadline admission (docs/QOS.md): compare the estimator's earliest
    // feasible completion against the requested (or class-default) deadline
    // at submit time — an infeasible send is refused or downgraded here
    // instead of timing out on the wire.
    SimTime deadline = opts.deadline;
    if (deadline == 0) {
      const SimDuration d = qos_->spec(send->qos_class).default_deadline;
      if (d > 0) deadline = send->submit_time + d;
    }
    if (deadline != 0 && earliest_feasible_completion(len) > deadline) {
      if (config_.qos.deadline_downgrade) {
        const auto downgraded = std::min<std::uint32_t>(
            qos::kBackground, static_cast<std::uint32_t>(qos_->class_count() - 1));
        // A bounded send that the capacity check below would shed must leave
        // no admission accounting behind: check the class it would actually
        // occupy BEFORE mutating the downgrade counters.
        if (bounded && len <= rdv_threshold_ && !qos_->has_capacity(downgraded)) {
          qos_->note_rejected_full(downgraded);
          return nullptr;
        }
        qos_->note_admission_downgrade(send->qos_class);
        ++stats_.qos_admission_downgrades;
        send->qos_class = downgraded;
        deadline = 0;  // downgraded sends run best-effort
      } else {
        qos_->note_admission_reject(send->qos_class);
        ++stats_.qos_admission_rejects;
        send->state = SendState::kRejected;
        return send;
      }
    }
    send->deadline = deadline;
    // try_send bound: shed load while the class queue is at capacity (only
    // eager sends occupy the queue; rendezvous is paced by its handshake
    // and the windowed streamer).
    if (bounded && len <= rdv_threshold_ && !qos_->has_capacity(send->qos_class)) {
      qos_->note_rejected_full(send->qos_class);
      return nullptr;
    }
  }

  ++stats_.sends;
  trace_event(trace::EventKind::kSubmit, send->id, tag, 0, 0, len, send->submit_time,
              0, send->qos_class);
  metrics_.on_submit(len > rdv_threshold_);
  arm_health();  // (re)start the health tick while traffic is in flight

  if (len > rdv_threshold_) {
    send->rendezvous = true;
    ++stats_.rdv_msgs;
    start_rendezvous(send);
  } else {
    ++stats_.eager_msgs;
    if (qos_ != nullptr) {
      qos_->enqueue(send->qos_class, send, send->submit_time);
    } else {
      pending_eager_.push_back(send);
    }
    // The application returns immediately; the scheduler runs as a separate
    // activation at the same virtual instant. Deferring to an event lets a
    // burst of submissions issued back-to-back land in the pack list before
    // the strategy is interrogated — this is what makes aggregation see the
    // whole burst, exactly like NewMadeleine's pack list.
    arm_progress(fabric_->now());
  }
  return send;
}

SendHandle Engine::isendv(NodeId dst, Tag tag, std::span<const IoSlice> slices) {
  std::size_t total = 0;
  for (const IoSlice& s : slices) total += s.len;

  // With gather/scatter on every rail the NICs can walk the iovec during
  // injection; without it the message must be contiguous first, and that
  // memcpy costs real core time (charged before the send is even queued).
  bool all_gather = true;
  for (const auto* nic : nics_) {
    all_gather = all_gather && nic->model().params().gather_scatter;
  }

  std::vector<std::uint8_t> staging;
  staging.reserve(total);
  for (const IoSlice& s : slices) {
    const auto* bytes = static_cast<const std::uint8_t*>(s.data);
    staging.insert(staging.end(), bytes, bytes + s.len);
  }
  if (!all_gather && total > 0) {
    fabric::SimCores& cores = fabric_->cores(self_);
    cores.occupy(config_.scheduler_core, fabric_->now(),
                 wire_time(total, config_.host_copy_mbps));
  }

  SendHandle send = isend(dst, tag, staging.data(), total);
  send->staging = std::move(staging);
  send->data = send->staging.data();
  return send;
}

RecvHandle Engine::irecv(NodeId src, Tag tag, void* data, std::size_t capacity) {
  RecvHandle recv = make_recv_request();
  recv->id = next_msg_id_++;
  recv->src = src;
  recv->tag = tag;
  recv->data = static_cast<std::uint8_t*>(data);
  recv->capacity = capacity;
  recv->post_time = fabric_->now();
  ++stats_.recvs;
  trace_event(trace::EventKind::kRecvPosted, recv->id, tag, 0, 0, capacity,
              recv->post_time);
  metrics_.on_recv_posted();

  // Unexpected eager data first (FIFO by message id within the source).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (src != kAnySource && it->first.first != src) continue;
    if (tag != kAnyTag && it->second.tag != tag) continue;
    UnexpectedEager& u = it->second;
    RAILS_CHECK_MSG(u.total <= capacity, "posted receive buffer too small");
    recv->state = RecvState::kMatched;
    recv->src = it->first.first;
    recv->tag = u.tag;
    recv->matched_msg = it->first.second;
    recv->expected = u.total;
    recv->bytes_received = u.received;
    if (u.received > 0) std::memcpy(recv->data, u.buffer.data(), u.buffer.size());
    const bool complete = u.received == u.total;
    if (complete) {
      unexpected_.erase(it);
      complete_recv(recv);
    } else {
      // Key by the *actual* source (recv->src is bound above) — `src` may
      // be the kAnySource wildcard.
      bound_recvs_.emplace_back(MsgKey{recv->src, recv->matched_msg}, recv);
      unexpected_.erase(it);
    }
    return recv;
  }

  // Then unexpected rendezvous requests (FIFO by arrival).
  for (auto it = unexpected_rts_.begin(); it != unexpected_rts_.end(); ++it) {
    if (src != kAnySource && it->src != src) continue;
    if (tag != kAnyTag && it->tag != tag) continue;
    RAILS_CHECK_MSG(it->total <= capacity, "posted receive buffer too small");
    recv->state = RecvState::kMatched;
    recv->src = it->src;
    recv->tag = it->tag;
    recv->matched_msg = it->msg_id;
    recv->expected = it->total;
    const NodeId actual_src = it->src;  // `src` may be the wildcard
    inbound_rdv_[{actual_src, it->msg_id}] = InboundRdv{recv, actual_src};
    const std::uint64_t msg_id = it->msg_id;
    unexpected_rts_.erase(it);
    accept_rendezvous(actual_src, msg_id);
    return recv;
  }

  posted_recvs_.push_back(recv);
  return recv;
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void Engine::progress() {
  // Strategy layer: everything here except the arbiter drain and the
  // emission posts (which open their own scopes) is pack-list management
  // and strategy interrogation.
  RAILS_PERF_SCOPE(perf::Layer::kStrategy);
  // With QoS on, the pack list is fed by the arbiter: strict classes and
  // aged messages first, then one weighted-DRR round. Rounds are paced by
  // the NIC-idle re-arms below, which is what enforces the weight shares
  // under saturation.
  if (qos_ != nullptr) drain_qos();
  if (pending_eager_.empty()) {
    if (qos_ != nullptr && qos_->backlog()) schedule_retry();
    return;
  }
  RAILS_CHECK_MSG(strategy_ != nullptr, "traffic submitted before a strategy was installed");
  metrics_.on_progress();

  // Interrogate the strategy once per destination group, preserving the
  // first-appearance order of destinations and the submission order within
  // each group. Single pass over the pack list: each destination's group
  // index is memoized in dst_group_, stamped with group_epoch_ so resetting
  // the table between activations is O(1) (no per-node clearing), and the
  // group vectors themselves are recycled (clear keeps capacity).
  if (dst_epoch_.size() < fabric_->node_count()) {
    dst_epoch_.resize(fabric_->node_count(), 0);
    dst_group_.resize(fabric_->node_count(), 0);
  }
  if (++group_epoch_ == 0) {
    // Wrap: stamps from 2^32 activations ago could alias the fresh epoch.
    std::fill(dst_epoch_.begin(), dst_epoch_.end(), 0);
    group_epoch_ = 1;
  }
  groups_used_ = 0;
  for (const auto& s : pending_eager_) {
    std::uint32_t g;
    if (dst_epoch_[s->dst] == group_epoch_) {
      g = dst_group_[s->dst];
    } else {
      g = static_cast<std::uint32_t>(groups_used_++);
      if (groups_used_ > group_sends_.size()) group_sends_.emplace_back();
      group_sends_[g].clear();
      dst_epoch_[s->dst] = group_epoch_;
      dst_group_[s->dst] = g;
    }
    group_sends_[g].push_back(s.get());
  }
  for (std::size_t g = 0; g < groups_used_; ++g) {
    plan_group(std::span<const SendRequest* const>(group_sends_[g]));
  }

  // Drop fully posted sends from the pack list.
  std::erase_if(pending_eager_, [](const SendHandle& s) {
    RAILS_CHECK_MSG(s->bytes_posted == 0 || s->bytes_posted == s->len,
                    "strategy left a send partially posted");
    return s->bytes_posted == s->len;
  });

  if (!pending_eager_.empty() || (qos_ != nullptr && qos_->backlog())) schedule_retry();
}

void Engine::plan_group(std::span<const SendRequest* const> group) {
  const StrategyContext ctx = make_context();
  metrics_.on_plan_eager();

  // Decision cache (docs/PERF.md): when the strategy declares this
  // interrogation pure — a function of the usable/idle rail sets, the idle
  // core set, and the exact (size, class) run — replay the stored emission
  // plan instead of re-running the planner. Keys hold the exact inputs, so
  // a hit reproduces the uncached decision bit-for-bit; every event that
  // could change a decision bumps decision_epoch_ and orphans all entries.
  bool cacheable = config_.strategy_cache && nics_.size() <= 64 &&
                   fabric_->cores(self_).count() <= 64 && !ctx.trust_compromised;
  if (cacheable && recal_ != nullptr) {
    // Trust penalties scale solver costs continuously; cache only the
    // clean-trust steady state (penalty transitions bump the epoch anyway —
    // this guards the window where a penalty is active).
    for (RailId r = 0; r < nics_.size(); ++r) {
      cacheable = cacheable && trust_penalty_[r] == 1.0;
    }
  }
  cacheable = cacheable && strategy_->eager_plan_cacheable(ctx, group);
  if (!cacheable) {
    EagerSchedule schedule = strategy_->plan_eager(ctx, group);
    for (const EagerEmission& emission : schedule.emissions) post_emission(emission);
    return;
  }

  std::uint64_t usable_mask = 0;
  std::uint64_t idle_rail_mask = 0;
  for (RailId r = 0; r < nics_.size(); ++r) {
    if (ctx.rail_usable(r)) usable_mask |= 1ull << r;
    if (ctx.nics[r]->idle(ctx.now)) idle_rail_mask |= 1ull << r;
  }
  const fabric::SimCores& cores = fabric_->cores(self_);
  std::uint64_t idle_core_mask = 0;
  for (CoreId c = 0; c < cores.count(); ++c) {
    if (cores.idle(c, ctx.now)) idle_core_mask |= 1ull << c;
  }

  // FNV-1a over the masks and the (len, class) run.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(usable_mask);
  mix(idle_rail_mask);
  mix(idle_core_mask);
  for (const SendRequest* s : group) {
    mix(s->len);
    mix(s->qos_class);
  }
  if (decision_cache_.empty()) decision_cache_.resize(kDecisionSlots);
  DecisionEntry& entry = decision_cache_[h & (kDecisionSlots - 1)];

  const bool hit = entry.epoch == decision_epoch_ && entry.usable_mask == usable_mask &&
                   entry.idle_rail_mask == idle_rail_mask &&
                   entry.idle_core_mask == idle_core_mask &&
                   entry.key.size() == group.size() &&
                   [&] {
                     for (std::size_t i = 0; i < group.size(); ++i) {
                       if (entry.key[i].first != group[i]->len ||
                           entry.key[i].second != group[i]->qos_class) {
                         return false;
                       }
                     }
                     return true;
                   }();
  if (hit) {
    ++stats_.strategy_cache_hits;
    for (const CachedEmission& ce : entry.emissions) {
      emission_scratch_.rail = ce.rail;
      if (ce.offloaded) {
        emission_scratch_.offload_core = ce.offload_core;
      } else {
        emission_scratch_.offload_core.reset();
      }
      emission_scratch_.pieces.clear();
      for (const CachedPiece& p : ce.pieces) {
        emission_scratch_.pieces.push_back(
            {group[p.send_idx], static_cast<std::size_t>(p.offset),
             static_cast<std::size_t>(p.len)});
      }
      post_emission(emission_scratch_);
    }
    return;
  }

  ++stats_.strategy_cache_misses;
  EagerSchedule schedule = strategy_->plan_eager(ctx, group);

  // Store the plan as group-relative indices before posting (posting
  // mutates bytes_posted, not the keyed fields; request pointers recycle,
  // so indices are the only stable reference).
  entry.epoch = decision_epoch_;
  entry.usable_mask = usable_mask;
  entry.idle_rail_mask = idle_rail_mask;
  entry.idle_core_mask = idle_core_mask;
  entry.key.clear();
  for (const SendRequest* s : group) entry.key.emplace_back(s->len, s->qos_class);
  entry.emissions.clear();
  bool storable = true;
  for (const EagerEmission& emission : schedule.emissions) {
    CachedEmission ce;
    ce.rail = emission.rail;
    ce.offloaded = emission.offload_core.has_value();
    ce.offload_core = emission.offload_core.value_or(0);
    for (const EagerPiece& piece : emission.pieces) {
      std::size_t idx = group.size();
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (group[i] == piece.send) {
          idx = i;
          break;
        }
      }
      if (idx == group.size()) {
        storable = false;
        break;
      }
      ce.pieces.push_back({static_cast<std::uint32_t>(idx), piece.offset, piece.len});
    }
    if (!storable) break;
    entry.emissions.push_back(std::move(ce));
  }
  if (!storable) entry.epoch = 0;  // plan referenced a request outside the group

  for (const EagerEmission& emission : schedule.emissions) post_emission(emission);
}

void Engine::drain_qos() {
  RAILS_PERF_SCOPE(perf::Layer::kArbiter);
  qos_->grant(fabric_->now(), [this](SendHandle send) {
    ++stats_.qos_grants;
    pending_eager_.push_back(std::move(send));
  });
}

SimTime Engine::earliest_feasible_completion(std::size_t len) const {
  const SimTime now = fabric_->now();
  if (len <= rdv_threshold_) {
    // Eager: best busy-aware completion over the usable rails (eq. 1).
    SimTime best = kSimTimeNever;
    for (RailId r = 0; r < nics_.size(); ++r) {
      if (!rail_usable(r)) continue;
      const sampling::RailState state{r, nics_[r]->busy_until()};
      best = std::min(best, estimator_->completion(state, now, len,
                                                   fabric::Protocol::kEager));
    }
    if (best != kSimTimeNever) return best;
    const sampling::RailState state{0, nics_[0]->busy_until()};
    return estimator_->completion(state, now, len, fabric::Protocol::kEager);
  }

  // Rendezvous: RTS/CTS round trip on the best rail plus the equal-finish
  // makespan of the payload across the usable rails, busy offsets included
  // (the same solver the failover path uses).
  std::vector<RailId>& usable = rail_scratch_;  // persistent submit-path scratch
  usable.clear();
  for (RailId r = 0; r < nics_.size(); ++r) {
    if (rail_usable(r)) usable.push_back(r);
  }
  if (usable.empty()) {
    for (RailId r = 0; r < nics_.size(); ++r) usable.push_back(r);
  }
  std::vector<strategy::ProfileCost>& costs = cost_scratch_;
  costs.clear();
  costs.reserve(usable.size());
  for (RailId r : usable) costs.emplace_back(&estimator_->profile(r).rdv_chunk);
  std::vector<strategy::SolverRail>& rails = solver_scratch_;
  rails.clear();
  rails.reserve(usable.size());
  for (std::size_t i = 0; i < usable.size(); ++i) {
    const SimTime busy = nics_[usable[i]]->busy_until();
    rails.push_back({usable[i], &costs[i], busy > now ? busy - now : 0});
  }
  const strategy::SplitResult split =
      strategy::solve_equal_finish(std::span<const strategy::SolverRail>(rails), len);
  SimDuration makespan = 0;
  for (const SimDuration f : split.finish_times) makespan = std::max(makespan, f);
  if (makespan == 0) {
    for (const strategy::Chunk& c : split.chunks) {
      const sampling::RailState state{c.rail, nics_[c.rail]->busy_until()};
      makespan =
          std::max(makespan, estimator_->chunk_completion(state, now, c.bytes) - now);
    }
  }
  SimDuration handshake = kSimTimeNever;
  for (RailId r : usable) {
    const sampling::RailState state{r, nics_[r]->busy_until()};
    handshake = std::min(
        handshake,
        estimator_->completion(state, now, 0, fabric::Protocol::kEager) - now);
  }
  return now + 2 * handshake + makespan;
}

void Engine::note_qos_completion(const SendRequest& send) {
  if (qos_ == nullptr) return;
  const bool had_deadline = send.deadline != 0;
  const bool hit = had_deadline && send.complete_time <= send.deadline;
  if (had_deadline) {
    if (hit) ++stats_.qos_deadline_hits; else ++stats_.qos_deadline_misses;
  }
  qos_->note_completion(send.qos_class, had_deadline, hit,
                        send.complete_time - send.submit_time);
}

void Engine::schedule_retry() {
  // Re-interrogate when the earliest NIC frees up ("the packet scheduler is
  // only activated when a NIC becomes idle in order to feed it").
  SimTime when = kSimTimeNever;
  for (const auto* nic : nics_) when = std::min(when, nic->busy_until());
  arm_progress(std::max(when, fabric_->now() + 1));
}

void Engine::arm_progress(SimTime when) {
  if (retry_armed_) return;
  retry_armed_ = true;
  fabric_->events().at(when, [this] {
    retry_armed_ = false;
    progress();
  });
}

fabric::SimNic::PostTimes Engine::post_segment(RailId rail, fabric::Segment seg, CoreId core,
                                               SimDuration extra_delay) {
  fabric::SimCores& cores = fabric_->cores(self_);
  // ACK/NACK generation is a reliability offload: the NIC emits them from
  // firmware, so they neither wait for nor occupy a host core. Everything
  // else contends for the submitting core as usual.
  const bool control_lane = seg.kind == fabric::SegKind::kAck ||
                            seg.kind == fabric::SegKind::kNack;
  const SimTime earliest =
      control_lane ? fabric_->now() + extra_delay
                   : std::max(fabric_->now() + extra_delay, cores.busy_until(core));
  seg.src = self_;
  seg.rail = rail;
  const std::size_t payload = seg.payload.size();
  // Reliability choke point: every first-transmission segment (seq still 0)
  // except the ACK/NACK control plane gets sequenced, checksummed, and a
  // retransmit copy parked before it touches the NIC. Retransmissions carry
  // their original seq and skip straight through.
  const bool sequenced = config_.reliability.enabled && seg.seq == 0 &&
                         seg.kind != fabric::SegKind::kAck &&
                         seg.kind != fabric::SegKind::kNack;
  NodeId rel_dst = 0;
  std::uint64_t rel_seq = 0;
  if (sequenced) {
    rel_stash(seg, rail);
    rel_dst = seg.dst;
    rel_seq = seg.seq;
  }
  const auto times = nics_[rail]->post(std::move(seg), earliest);
  if (!control_lane) {
    cores.occupy(core, times.host_start, times.host_end - times.host_start);
  }
  stats_.payload_bytes_per_rail[rail] += payload;
  if (sequenced) {
    // deliver_at is the NIC model's single-hop arrival; on routed fabrics
    // the segment still has (hops - 1) links to cross before the receiver
    // can even generate the ACK, so budget that into the predicted flight.
    rel_arm(rel_dst, rel_seq,
            times.deliver_at - fabric_->now() +
                fabric_->extra_path_latency(self_, rel_dst, rail));
  }
  return times;
}

void Engine::post_emission(const EagerEmission& emission) {
  RAILS_PERF_SCOPE(perf::Layer::kEmit);
  RAILS_CHECK(!emission.pieces.empty());
  RAILS_CHECK(emission.rail < nics_.size());

  fabric::Segment seg;
  seg.payload = fabric::acquire_payload();  // recycled on the receive side
  seg.kind = fabric::SegKind::kEager;
  seg.dst = emission.pieces.front().send->dst;
  seg.msg_id = emission.pieces.front().send->id;
  seg.tag = emission.pieces.front().send->tag;
  const Tag seg_tag = seg.tag;

  for (const EagerPiece& piece : emission.pieces) {
    RAILS_CHECK(piece.send != nullptr && piece.send->dst == seg.dst);
    RAILS_CHECK(piece.offset + piece.len <= piece.send->len);
    SubPacket sp;
    sp.msg_id = piece.send->id;
    sp.tag = piece.send->tag;
    sp.msg_total = piece.send->len;
    sp.offset = piece.offset;
    sp.bytes = piece.send->data != nullptr ? piece.send->data + piece.offset : nullptr;
    sp.len = static_cast<std::uint32_t>(piece.len);
    append_subpacket(seg.payload, sp);
  }
  RAILS_CHECK_MSG(seg.payload.size() <= nics_[emission.rail]->model().params().max_eager,
                  "eager emission exceeds the rail's segment cap");

  // Offloaded emissions start after the TO signalling delay on the remote
  // core; local emissions submit from the scheduler core immediately.
  CoreId core = config_.scheduler_core;
  SimDuration delay = 0;
  if (emission.offload_core) {
    core = *emission.offload_core;
    const bool idle = fabric_->cores(self_).idle(core, fabric_->now());
    delay = idle ? config_.offload.signal_cost : config_.offload.preempt_cost;
    ++stats_.offloaded_chunks;
  }

  // Predict before posting: the post itself advances the NIC's busy-until.
  const SimTime decision_now = fabric_->now();
  const std::size_t framed_bytes = seg.payload.size();
  SimTime predicted_end = 0;
  if (observing()) {
    const sampling::RailState state{emission.rail, nics_[emission.rail]->busy_until()};
    predicted_end = estimator_->completion(state, decision_now + delay, framed_bytes,
                                           fabric::Protocol::kEager);
  }

  const auto times = post_segment(emission.rail, std::move(seg), core, delay);
  metrics_.on_eager_emit(emission.rail, framed_bytes, emission.offload_core.has_value());
  if (observing()) {
    observe_completion(emission.rail, predicted_end - decision_now,
                       times.nic_end - decision_now);
  }
  if (emission.offload_core) {
    trace_event(trace::EventKind::kOffloadSignal, emission.pieces.front().send->id,
                seg_tag, emission.rail, core, 0, fabric_->now(), 0,
                emission.pieces.front().send->qos_class);
  }
  for (const EagerPiece& piece : emission.pieces) {
    trace_event(trace::EventKind::kEagerEmit, piece.send->id, piece.send->tag,
                emission.rail, core, piece.len, times.host_start, times.nic_end,
                piece.send->qos_class);
  }

  ++stats_.eager_segments;
  if (emission.pieces.size() > 1) stats_.aggregated_packets += emission.pieces.size();

  // Account posted bytes and complete sends whose last piece this was.
  for (const EagerPiece& piece : emission.pieces) {
    auto* send = const_cast<SendRequest*>(piece.send);
    if (send->bytes_posted == 0) {
      metrics_.on_queueing(times.host_start - send->submit_time);
    }
    send->bytes_posted += piece.len;
    ++send->chunk_count;
    if (emission.offload_core) ++send->offloaded_chunks;
    if (send->bytes_posted == send->len) {
      send->state = SendState::kDone;
      send->complete_time = times.host_end;
      if (send->chunk_count > 1) ++stats_.split_eager_msgs;
      trace_event(trace::EventKind::kSendComplete, send->id, send->tag, emission.rail,
                  0, send->len, send->complete_time, 0, send->qos_class);
      metrics_.on_send_complete(send->complete_time - send->submit_time);
      note_qos_completion(*send);
    }
  }
}

void Engine::start_rendezvous(const SendHandle& send) {
  RAILS_PERF_SCOPE(perf::Layer::kEmit);
  const StrategyContext ctx = make_context();
  const RailId rail = strategy_ != nullptr ? strategy_->control_rail(ctx) : 0;
  fabric::Segment rts;
  rts.kind = fabric::SegKind::kRts;
  rts.dst = send->dst;
  rts.msg_id = send->id;
  rts.tag = send->tag;
  rts.total_len = send->len;
  post_segment(rail, std::move(rts), config_.scheduler_core);
  trace_event(trace::EventKind::kRtsSent, send->id, send->tag, rail, 0, send->len,
              fabric_->now(), 0, send->qos_class);
  send->state = SendState::kRtsSent;
  rdv_sends_[send->id] = send;
}

void Engine::handle_cts(const fabric::Segment& seg) {
  auto it = rdv_sends_.find(seg.msg_id);
  if (it == rdv_sends_.end()) {
    // A duplicated or straggling CTS for a send that already completed or
    // failed (wire dup with reliability off, failover re-accept). Receives
    // are idempotent; the control plane must be too.
    ++stats_.stale_control;
    return;
  }
  SendRequest& send = *it->second;
  if (send.state != SendState::kRtsSent) {
    ++stats_.stale_control;  // second CTS after streaming already began
    return;
  }
  send.state = SendState::kStreaming;
  if (qos_ != nullptr && send.len > config_.qos.bulk_chunk) {
    // Windowed streaming (docs/QOS.md): instead of laying out the whole
    // message at once, hand the NICs one bulk_chunk per idle rail and come
    // back when one frees up. Between chunks the scheduler runs first, so
    // LATENCY-class sends preempt bulk transfers at chunk granularity.
    qos_streams_[send.id] = QosStream{it->second, 0};
    pump_qos_streams();
  } else {
    stream_chunks(send);
  }
}

void Engine::pump_qos_streams() {
  // Latency preemption point: give the arbiter/strategy first claim on the
  // rails that just went idle before feeding them more bulk bytes.
  progress();
  const SimTime now = fabric_->now();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = qos_streams_.begin(); it != qos_streams_.end();) {
      SendRequest& send = *it->second.send;
      if (send.failed() || it->second.next_offset >= send.len) {
        it = qos_streams_.erase(it);
        continue;
      }
      // Best idle usable rail for the next chunk; busy rails wait for the
      // pump re-arm rather than queueing more bulk behind themselves.
      RailId best = 0;
      SimTime best_done = kSimTimeNever;
      bool found = false;
      for (RailId r = 0; r < nics_.size(); ++r) {
        if (!rail_usable(r)) continue;
        if (nics_[r]->busy_until() > now) continue;
        const sampling::RailState state{r, nics_[r]->busy_until()};
        const SimTime done =
            estimator_->chunk_completion(state, now, config_.qos.bulk_chunk);
        if (!found || done < best_done) {
          best = r;
          best_done = done;
          found = true;
        }
      }
      if (!found) {
        ++it;
        continue;
      }
      const std::size_t bytes = std::min<std::size_t>(
          config_.qos.bulk_chunk, send.len - it->second.next_offset);
      post_stream_chunk(send, best, it->second.next_offset, bytes);
      it->second.next_offset += bytes;
      progressed = true;
      if (it->second.next_offset >= send.len) {
        it = qos_streams_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!qos_streams_.empty()) arm_qos_pump();
}

void Engine::arm_qos_pump() {
  if (qos_pump_armed_) return;
  qos_pump_armed_ = true;
  SimTime when = kSimTimeNever;
  for (RailId r = 0; r < nics_.size(); ++r) {
    if (!rail_usable(r)) continue;
    when = std::min(when, nics_[r]->busy_until());
  }
  if (when == kSimTimeNever) {
    for (const auto* nic : nics_) when = std::min(when, nic->busy_until());
  }
  fabric_->events().at(std::max(when, fabric_->now() + 1), [this] {
    qos_pump_armed_ = false;
    pump_qos_streams();
  });
}

void Engine::post_stream_chunk(SendRequest& send, RailId rail, std::uint64_t offset,
                               std::size_t bytes) {
  RAILS_PERF_SCOPE(perf::Layer::kEmit);
  const SimTime now = fabric_->now();
  const sampling::RailState state{rail, nics_[rail]->busy_until()};
  const SimDuration predicted = estimator_->chunk_completion(state, now, bytes) - now;

  fabric::Segment data;
  data.kind = fabric::SegKind::kData;
  data.dst = send.dst;
  data.msg_id = send.id;
  data.tag = send.tag;
  data.offset = offset;
  data.total_len = send.len;
  data.payload = fabric::acquire_payload();
  data.payload.assign(send.data + offset, send.data + offset + bytes);
  const auto times = post_segment(rail, std::move(data), config_.scheduler_core);
  trace_event(trace::EventKind::kChunkPosted, send.id, send.tag, rail,
              config_.scheduler_core, bytes, times.host_start, times.nic_end,
              send.qos_class);
  ++stats_.rdv_chunks;
  ++stats_.qos_stream_chunks;
  metrics_.on_chunk_posted(rail, bytes);
  if (send.bytes_posted == 0) {
    metrics_.on_queueing(times.host_start - send.submit_time);
  }
  ++send.chunk_count;
  send.bytes_posted += bytes;
  observe_completion(rail, predicted, times.nic_end - now);
  track_chunk(send.id, send.dst, offset, bytes, rail, /*attempt=*/0, now, predicted);
}

void Engine::stream_chunks(SendRequest& send) {
  RAILS_PERF_SCOPE(perf::Layer::kEmit);
  // "when a rendezvous request has just been received" — the strategy is
  // interrogated with the live NIC states to lay out the DMA chunks.
  const StrategyContext ctx = make_context();
  metrics_.on_plan_rendezvous();
  strategy::SplitResult split;
  {
    RAILS_PERF_SCOPE(perf::Layer::kStrategy);
    split = strategy_->plan_rendezvous(ctx, send.len);
  }
  RAILS_CHECK(!split.chunks.empty());

  std::size_t covered = 0;
  for (const strategy::Chunk& chunk : split.chunks) covered += chunk.bytes;
  RAILS_CHECK_MSG(covered == send.len, "rendezvous plan does not tile the message");

  const SimTime decision_now = fabric_->now();
  bool first_chunk = true;
  send.chunk_count = static_cast<unsigned>(split.chunks.size());
  for (std::size_t i = 0; i < split.chunks.size(); ++i) {
    const strategy::Chunk& chunk = split.chunks[i];
    // The solver's own per-chunk finish prediction when available (it saw
    // the ready offsets); otherwise the estimator's busy-aware fallback.
    // Besides feeding the PredictionTracker, this is what the chunk timeout
    // is derived from (predicted completion times the slack factor).
    SimDuration predicted = 0;
    {
      const sampling::RailState state{chunk.rail, nics_[chunk.rail]->busy_until()};
      predicted =
          estimator_->chunk_completion(state, decision_now, chunk.bytes) - decision_now;
    }
    // The raw estimator view of the same chunk (what the drift detector
    // compares against the fabric) — identical unless the solver's plan
    // carried a trust penalty or saw later ready offsets.
    const SimDuration model_predicted = predicted;
    if (i < split.finish_times.size()) predicted = split.finish_times[i];
    fabric::Segment data;
    data.kind = fabric::SegKind::kData;
    data.dst = send.dst;
    data.msg_id = send.id;
    data.tag = send.tag;
    data.offset = chunk.offset;
    data.total_len = send.len;
    data.payload = fabric::acquire_payload();
    data.payload.assign(send.data + chunk.offset, send.data + chunk.offset + chunk.bytes);
    const auto times = post_segment(chunk.rail, std::move(data), config_.scheduler_core);
    trace_event(trace::EventKind::kChunkPosted, send.id, send.tag, chunk.rail,
                config_.scheduler_core, chunk.bytes, times.host_start, times.nic_end,
                send.qos_class);
    ++stats_.rdv_chunks;
    metrics_.on_chunk_posted(chunk.rail, chunk.bytes);
    if (first_chunk) {
      metrics_.on_queueing(times.host_start - send.submit_time);
      first_chunk = false;
    }
    observe_completion(chunk.rail, predicted, model_predicted,
                       times.nic_end - decision_now);
    send.bytes_posted += chunk.bytes;
    track_chunk(send.id, send.dst, chunk.offset, chunk.bytes, chunk.rail,
                /*attempt=*/0, decision_now, predicted);
  }
}

void Engine::handle_fin(const fabric::Segment& seg) {
  RAILS_PERF_SCOPE(perf::Layer::kCompletion);
  auto it = rdv_sends_.find(seg.msg_id);
  if (it == rdv_sends_.end()) {
    // A duplicated FIN: the first copy completed the send and erased it.
    // Before the reliability PR this crashed the node (PR 2's dedup audit
    // only covered DATA); now it is counted and ignored.
    ++stats_.stale_control;
    return;
  }
  SendRequest& send = *it->second;
  if (send.state != SendState::kStreaming) {
    ++stats_.stale_control;
    return;
  }
  live_chunks_.erase(seg.msg_id);  // any armed timeouts are stale now
  qos_streams_.erase(seg.msg_id);  // a failover retransmit may finish early
  send.state = SendState::kDone;
  send.complete_time = fabric_->now();
  trace_event(trace::EventKind::kSendComplete, send.id, send.tag, 0, 0, send.len,
              send.complete_time, 0, send.qos_class);
  metrics_.on_rdv_complete();
  metrics_.on_send_complete(send.complete_time - send.submit_time);
  note_qos_completion(send);
  rdv_sends_.erase(it);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Engine::on_segment(fabric::Segment&& seg) {
  arm_health();  // a pure receiver samples too while traffic flows
  // Reliability gate: verify the checksum, suppress duplicates, record the
  // sequence, and schedule the coalesced ACK — before any handler sees the
  // segment. A rejected segment (corrupt or duplicate) dies here.
  if (config_.reliability.enabled && seg.seq != 0 &&
      seg.kind != fabric::SegKind::kAck && seg.kind != fabric::SegKind::kNack &&
      !rel_rx_accept(seg)) {
    fabric::recycle_payload(std::move(seg.payload));
    return;
  }
  switch (seg.kind) {
    case fabric::SegKind::kEager: handle_eager(seg); break;
    case fabric::SegKind::kRts: handle_rts(seg); break;
    case fabric::SegKind::kCts: handle_cts(seg); break;
    case fabric::SegKind::kData: handle_data(seg); break;
    case fabric::SegKind::kFin: handle_fin(seg); break;
    case fabric::SegKind::kAck: rel_handle_ack(seg); break;
    case fabric::SegKind::kNack: rel_handle_nack(seg); break;
  }
  // The segment dies here; its payload buffer goes back to the pool the
  // sender-side post paths draw from (handlers only read the payload).
  fabric::recycle_payload(std::move(seg.payload));
}

namespace {

bool recv_matches(const RecvRequest& recv, NodeId src, Tag tag) {
  const bool src_ok = recv.src == kAnySource || recv.src == src;
  const bool tag_ok = recv.tag == kAnyTag || recv.tag == tag;
  return src_ok && tag_ok;
}

}  // namespace

RecvHandle Engine::match_posted(NodeId src, Tag tag) {
  // FIFO across all posted receives; wildcards match like MPI's.
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
    if (recv_matches(**it, src, tag)) {
      RecvHandle recv = *it;
      posted_recvs_.erase(it);
      // Bind the wildcard fields to the actual message.
      recv->src = src;
      recv->tag = tag;
      return recv;
    }
  }
  return nullptr;
}

void Engine::handle_eager(const fabric::Segment& seg) {
  RAILS_PERF_SCOPE(perf::Layer::kEmit);  // unpack mirrors pack
  // Scratch parse: segments are delivered one at a time off the event queue
  // and deliver_fragment never re-enters the unpack path, so one buffer is
  // enough and the steady receive path stays allocation-free. The parse is
  // the non-aborting variant: with the wire checksum off, a corrupted
  // payload bit can land inside a sub-packet header, and a single wire
  // fault must not take down the node.
  if (!try_parse_subpackets(seg.payload, subpacket_scratch_)) {
    ++stats_.rel_parse_rejects;
    flight(trace::FlightKind::kCorruptDetected, seg.rail, seg.msg_id, -1);
    return;
  }
  for (const SubPacket& sp : subpacket_scratch_) deliver_fragment(sp, seg.src);
}

void Engine::deliver_fragment(const SubPacket& sp, NodeId src) {
  const MsgKey key{src, sp.msg_id};

  // Fragment of an already-bound receive?
  const auto it = std::find_if(bound_recvs_.begin(), bound_recvs_.end(),
                               [&key](const auto& e) { return e.first == key; });
  if (it != bound_recvs_.end()) {
    RecvHandle recv = it->second;
    if (sp.offset + sp.len > recv->expected) {
      // Only reachable via payload corruption with the checksum off: a
      // flipped bit inside the sub-packet header moved the fragment out of
      // bounds. Dropping beats scribbling past the receive buffer.
      ++stats_.rel_parse_rejects;
      return;
    }
    if (sp.len > 0) std::memcpy(recv->data + sp.offset, sp.bytes, sp.len);
    recv->bytes_received += sp.len;
    if (recv->bytes_received == recv->expected) {
      if (&*it != &bound_recvs_.back()) *it = std::move(bound_recvs_.back());
      bound_recvs_.pop_back();
      complete_recv(recv);
    }
    return;
  }

  // First fragment of a new message: try to bind a posted receive.
  if (RecvHandle recv = match_posted(src, sp.tag)) {
    RAILS_CHECK_MSG(sp.msg_total <= recv->capacity, "posted receive buffer too small");
    recv->state = RecvState::kMatched;
    recv->matched_msg = sp.msg_id;
    recv->expected = sp.msg_total;
    if (sp.len > 0) std::memcpy(recv->data + sp.offset, sp.bytes, sp.len);
    recv->bytes_received = sp.len;
    if (recv->bytes_received == recv->expected) {
      complete_recv(recv);
    } else {
      bound_recvs_.emplace_back(key, recv);
    }
    return;
  }

  // Unexpected: buffer until a matching receive is posted.
  UnexpectedEager& u = unexpected_[key];
  if (u.buffer.empty() && u.total == 0) {
    u.tag = sp.tag;
    u.total = sp.msg_total;
    u.buffer.assign(sp.msg_total, 0);
  }
  if (sp.offset + sp.len > u.total) {
    ++stats_.rel_parse_rejects;  // corrupted header, checksum off (see above)
    return;
  }
  if (sp.len > 0) std::memcpy(u.buffer.data() + sp.offset, sp.bytes, sp.len);
  u.received += sp.len;
}

void Engine::handle_rts(const fabric::Segment& seg) {
  // Duplicate RTS (wire dup, or sender retry racing the original): the
  // handshake is already in flight or already queued — matching it again
  // would bind a second receive to the same message.
  if (inbound_rdv_.count({seg.src, seg.msg_id}) != 0) {
    ++stats_.stale_control;
    return;
  }
  for (const UnexpectedRts& u : unexpected_rts_) {
    if (u.src == seg.src && u.msg_id == seg.msg_id) {
      ++stats_.stale_control;
      return;
    }
  }
  if (RecvHandle recv = match_posted(seg.src, seg.tag)) {
    RAILS_CHECK_MSG(seg.total_len <= recv->capacity, "posted receive buffer too small");
    recv->state = RecvState::kMatched;
    recv->matched_msg = seg.msg_id;
    recv->expected = seg.total_len;
    inbound_rdv_[{seg.src, seg.msg_id}] = InboundRdv{recv, seg.src};
    accept_rendezvous(seg.src, seg.msg_id);
    return;
  }
  unexpected_rts_.push_back(UnexpectedRts{seg.src, seg.msg_id, seg.tag, seg.total_len});
}

void Engine::accept_rendezvous(NodeId src, std::uint64_t msg_id) {
  const StrategyContext ctx = make_context();
  const RailId rail = strategy_ != nullptr ? strategy_->control_rail(ctx) : 0;
  fabric::Segment cts;
  cts.kind = fabric::SegKind::kCts;
  cts.dst = src;
  cts.msg_id = msg_id;
  post_segment(rail, std::move(cts), config_.scheduler_core);
  trace_event(trace::EventKind::kCtsSent, msg_id, 0, rail, 0, 0, fabric_->now());
}

namespace {

/// Merges [lo, hi) into a disjoint interval set (start -> end, keyed by
/// start) and returns the number of bytes not previously covered.
std::size_t add_interval(std::map<std::uint64_t, std::uint64_t>& set, std::uint64_t lo,
                         std::uint64_t hi) {
  if (hi <= lo) return 0;
  auto it = set.lower_bound(lo);
  if (it != set.begin() && std::prev(it)->second >= lo) it = std::prev(it);
  std::size_t fresh = 0;
  std::uint64_t cursor = lo;
  std::uint64_t merged_lo = lo;
  std::uint64_t merged_hi = hi;
  while (it != set.end() && it->first <= hi) {
    if (it->first > cursor) fresh += it->first - cursor;
    cursor = std::max(cursor, it->second);
    merged_lo = std::min(merged_lo, it->first);
    merged_hi = std::max(merged_hi, it->second);
    it = set.erase(it);
  }
  if (cursor < hi) fresh += hi - cursor;
  set[merged_lo] = merged_hi;
  return fresh;
}

}  // namespace

void Engine::handle_data(const fabric::Segment& seg) {
  RAILS_PERF_SCOPE(perf::Layer::kEmit);  // chunk reassembly mirrors packing
  auto it = inbound_rdv_.find({seg.src, seg.msg_id});
  if (it == inbound_rdv_.end()) {
    // Duplicate after completion: a spurious-timeout retransmit finished the
    // message and the straggling original arrived late. Reception is
    // idempotent — drop it.
    ++stats_.duplicate_chunks;
    metrics_.on_duplicate_chunk();
    return;
  }
  RecvHandle recv = it->second.recv;
  RAILS_CHECK(seg.offset + seg.payload.size() <= recv->expected);
  if (!seg.payload.empty()) {
    std::memcpy(recv->data + seg.offset, seg.payload.data(), seg.payload.size());
  }
  const std::size_t fresh =
      add_interval(it->second.covered, seg.offset, seg.offset + seg.payload.size());
  if (fresh < seg.payload.size()) {
    ++stats_.duplicate_chunks;
    metrics_.on_duplicate_chunk();
  }
  recv->bytes_received += fresh;
  if (recv->bytes_received == recv->expected) {
    const NodeId src = it->second.src;
    const std::uint64_t msg_id = seg.msg_id;
    inbound_rdv_.erase(it);
    // Completion notification back to the sender.
    const StrategyContext ctx = make_context();
    const RailId rail = strategy_ != nullptr ? strategy_->control_rail(ctx) : 0;
    fabric::Segment fin;
    fin.kind = fabric::SegKind::kFin;
    fin.dst = src;
    fin.msg_id = msg_id;
    post_segment(rail, std::move(fin), config_.scheduler_core);
    complete_recv(recv);
  }
}

void Engine::complete_recv(const RecvHandle& recv) {
  RAILS_PERF_SCOPE(perf::Layer::kCompletion);
  recv->state = RecvState::kDone;
  recv->complete_time = fabric_->now();
  trace_event(trace::EventKind::kRecvComplete, recv->id, recv->tag, 0, 0,
              recv->bytes_received, recv->complete_time);
  metrics_.on_recv_complete(recv->complete_time - recv->post_time);
}

// ---------------------------------------------------------------------------
// Fault tolerance: timeouts, retry/failover, quarantine (docs/FAULTS.md)
// ---------------------------------------------------------------------------

void Engine::on_tx_complete(const fabric::Segment& seg) {
  if (seg.kind != fabric::SegKind::kData) return;
  auto it = live_chunks_.find(seg.msg_id);
  if (it == live_chunks_.end()) return;
  // The bytes landed (whatever the attempt — a straggling older attempt
  // covers at least this range); any armed timeout for this offset is moot.
  it->second.erase(seg.offset);
}

void Engine::on_tx_error(fabric::Segment&& seg) {
  ++stats_.tx_errors;
  metrics_.on_tx_error();
  flight(trace::FlightKind::kTxError, seg.rail, seg.msg_id,
         static_cast<std::int64_t>(seg.payload.size()), seg.attempt);
  if (config_.reliability.enabled && seg.seq != 0) {
    // The reliability layer owns recovery for sequenced segments: the parked
    // copy is retransmitted immediately (budget-checked) instead of routing
    // through PR 2's failover re-split, which would race the retransmit to
    // the same bytes. A hard CQ error is still a sick rail — quarantine it.
    quarantine_rail(seg.rail);
    if (RelTxEntry* entry = rel_find(seg.dst, seg.seq)) {
      rel_presume_lost(*entry, /*count_streak=*/false);
    }
    return;
  }
  if (!config_.failover.enabled) return;
  quarantine_rail(seg.rail);

  if (seg.kind == fabric::SegKind::kData) {
    auto it = rdv_sends_.find(seg.msg_id);
    if (it == rdv_sends_.end()) return;  // send already completed; stale error
    failover_chunk(*it->second, seg.offset, seg.payload.size(), seg.rail, seg.attempt);
    return;
  }

  // Eager and control segments are self-contained: re-post the whole
  // segment on the best usable rail.
  if (seg.attempt + 1u >= config_.failover.max_attempts) {
    ++stats_.failover_exhausted;
    metrics_.on_exhausted();
    if (seg.kind == fabric::SegKind::kRts) {
      // The handshake can never finish; fail the send instead of hanging.
      if (auto it = rdv_sends_.find(seg.msg_id); it != rdv_sends_.end()) {
        it->second->state = SendState::kFailed;
        rdv_sends_.erase(it);
      }
    }
    return;
  }
  const RailId rail = repost_rail(seg);
  ++seg.attempt;
  ++stats_.retries;
  metrics_.on_retry();
  post_segment(rail, std::move(seg), config_.scheduler_core);
}

RailId Engine::repost_rail(const fabric::Segment& seg) const {
  // Best usable rail that can carry the payload, by predicted completion;
  // fall back to any other rail, then to the original.
  RailId best = seg.rail;
  SimTime best_done = kSimTimeNever;
  bool found = false;
  for (RailId r = 0; r < nics_.size(); ++r) {
    if (!rail_usable(r)) continue;
    if (seg.kind == fabric::SegKind::kEager &&
        seg.payload.size() > nics_[r]->model().params().max_eager) {
      continue;
    }
    const sampling::RailState state{r, nics_[r]->busy_until()};
    const SimTime done = estimator_->completion(state, fabric_->now(), seg.payload.size(),
                                                fabric::Protocol::kEager);
    if (!found || done < best_done) {
      best_done = done;
      best = r;
      found = true;
    }
  }
  if (found) return best;
  for (RailId r = 0; r < nics_.size(); ++r) {
    if (r != seg.rail) return r;
  }
  return seg.rail;
}

void Engine::track_chunk(std::uint64_t msg_id, NodeId dst, std::uint64_t offset,
                         std::size_t bytes, RailId rail, unsigned attempt,
                         SimTime decision_now, SimDuration predicted) {
  live_chunks_[msg_id][offset] = attempt;
  if (!config_.failover.enabled) return;
  // With end-to-end reliability on, the ACK timeout owns loss detection for
  // every sequenced segment — arming the chunk timer too would race two
  // recovery paths to the same byte range.
  if (config_.reliability.enabled) return;
  // Timeout = predicted completion times the slack factor, floored so tiny
  // chunks are not declared lost by rounding. On a healthy fabric the chunk
  // retires (tx-complete) long before this event fires, making it a no-op.
  // Routed fabrics add the (hops - 1) link latencies the estimator's
  // single-hop view cannot see — without the allowance every long route
  // would read as a loss and trigger spurious failovers.
  const SimDuration flight =
      predicted + fabric_->extra_path_latency(self_, dst, rail);
  const auto slack = static_cast<SimDuration>(config_.failover.timeout_slack *
                                              static_cast<double>(flight));
  const SimTime deadline = decision_now + std::max(config_.failover.min_timeout, slack);
  fabric_->events().at(deadline, [this, msg_id, offset, bytes, rail, attempt] {
    on_chunk_timeout(msg_id, offset, bytes, rail, attempt);
  });
}

void Engine::on_chunk_timeout(std::uint64_t msg_id, std::uint64_t offset, std::size_t bytes,
                              RailId rail, unsigned attempt) {
  auto it = rdv_sends_.find(msg_id);
  if (it == rdv_sends_.end()) return;  // send completed or already failed
  auto lc = live_chunks_.find(msg_id);
  if (lc == live_chunks_.end()) return;
  auto entry = lc->second.find(offset);
  if (entry == lc->second.end() || entry->second != attempt) return;  // retired/superseded
  ++stats_.chunk_timeouts;
  metrics_.on_chunk_timeout();
  flight(trace::FlightKind::kChunkTimeout, rail, msg_id,
         static_cast<std::int64_t>(bytes), attempt);
  quarantine_rail(rail);
  failover_chunk(*it->second, offset, bytes, rail, attempt);
}

void Engine::failover_chunk(SendRequest& send, std::uint64_t offset, std::size_t bytes,
                            RailId failed_rail, unsigned attempt) {
  auto lc = live_chunks_.find(send.id);
  if (lc == live_chunks_.end()) return;
  auto entry = lc->second.find(offset);
  if (entry == lc->second.end() || entry->second != attempt) return;  // superseded
  lc->second.erase(entry);
  if (bytes == 0) return;

  ++stats_.failovers;
  metrics_.on_failover();
  invalidate_decisions();  // failover re-splits perturb the steady state
  trace_event(trace::EventKind::kFailover, send.id, send.tag, failed_rail,
              config_.scheduler_core, bytes, fabric_->now());
  {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "msg %llu: %zu B at offset %llu re-split off rail %u "
                  "(attempt %u)",
                  static_cast<unsigned long long>(send.id), bytes,
                  static_cast<unsigned long long>(offset), failed_rail, attempt);
    flight_trigger("failover", detail);
  }

  if (attempt + 1u >= config_.failover.max_attempts) {
    ++stats_.failover_exhausted;
    metrics_.on_exhausted();
    send.state = SendState::kFailed;
    live_chunks_.erase(send.id);
    rdv_sends_.erase(send.id);
    return;
  }

  // Surviving rails. All-quarantined is not a reason to give up — retrying
  // somewhere is strictly better than dropping the message, and the retry
  // doubles as a probe.
  std::vector<RailId>& survivors = rail_scratch_;  // shared with the submit path
  survivors.clear();
  for (RailId r = 0; r < nics_.size(); ++r) {
    if (r != failed_rail && rail_usable(r)) survivors.push_back(r);
  }
  if (survivors.empty()) {
    for (RailId r = 0; r < nics_.size(); ++r) {
      if (r != failed_rail) survivors.push_back(r);
    }
  }
  if (survivors.empty()) survivors.push_back(failed_rail);  // single-rail fabric

  // Re-split the lost byte range across the survivors with the equal-finish
  // solver, live busy offsets included (one survivor -> one chunk).
  const SimTime now = fabric_->now();
  std::vector<strategy::ProfileCost>& costs = cost_scratch_;
  costs.clear();
  costs.reserve(survivors.size());
  for (RailId r : survivors) costs.emplace_back(&estimator_->profile(r).rdv_chunk);
  std::vector<strategy::SolverRail>& rails = solver_scratch_;
  rails.clear();
  rails.reserve(survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const SimTime busy = nics_[survivors[i]]->busy_until();
    rails.push_back({survivors[i], &costs[i], busy > now ? busy - now : 0});
  }
  const strategy::SplitResult split =
      strategy::solve_equal_finish(std::span<const strategy::SolverRail>(rails), bytes);
  for (const strategy::Chunk& c : split.chunks) {
    post_data_chunk(send, c.rail, offset + c.offset, c.bytes, attempt + 1);
  }
}

void Engine::post_data_chunk(SendRequest& send, RailId rail, std::uint64_t offset,
                             std::size_t bytes, unsigned attempt) {
  const SimTime now = fabric_->now();
  const sampling::RailState state{rail, nics_[rail]->busy_until()};
  const SimDuration predicted = estimator_->chunk_completion(state, now, bytes) - now;

  fabric::Segment data;
  data.kind = fabric::SegKind::kData;
  data.dst = send.dst;
  data.msg_id = send.id;
  data.tag = send.tag;
  data.offset = offset;
  data.total_len = send.len;
  data.attempt = static_cast<std::uint8_t>(attempt);
  data.payload = fabric::acquire_payload();
  data.payload.assign(send.data + offset, send.data + offset + bytes);
  const auto times = post_segment(rail, std::move(data), config_.scheduler_core);
  trace_event(trace::EventKind::kChunkPosted, send.id, send.tag, rail,
              config_.scheduler_core, bytes, times.host_start, times.nic_end);
  ++stats_.rdv_chunks;
  ++stats_.retries;
  metrics_.on_retry();
  metrics_.on_chunk_posted(rail, bytes);
  ++send.chunk_count;
  // Retransmissions do not advance bytes_posted: it tracks distinct message
  // bytes handed to the NICs, and these bytes were already counted.
  observe_completion(rail, predicted, times.nic_end - now);
  track_chunk(send.id, send.dst, offset, bytes, rail, attempt, now, predicted);
}

void Engine::quarantine_rail(RailId rail) {
  RailHealth& h = rail_health_[rail];
  const SimTime now = fabric_->now();
  if (h.window == 0) h.window = config_.failover.quarantine;
  if (h.quarantined) {
    // Repeated trouble while quarantined pushes the lift time out.
    h.until = std::max(h.until, now + h.window);
    return;
  }
  h.quarantined = true;
  h.until = now + h.window;
  invalidate_decisions();  // the usable-rail set just shrank
  ++stats_.quarantines;
  metrics_.on_quarantine(rail);
  flight(trace::FlightKind::kQuarantine, rail, 0,
         static_cast<std::int64_t>(to_usec(h.window)));
  {
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "rail %u quarantined for %.1f us (backoff window)", rail,
                  to_usec(h.window));
    flight_trigger("quarantine", detail);
  }
  schedule_reprobe(rail);
}

void Engine::schedule_reprobe(RailId rail) {
  fabric_->events().at(rail_health_[rail].until, [this, rail] { reprobe_rail(rail); });
}

void Engine::reprobe_rail(RailId rail) {
  RailHealth& h = rail_health_[rail];
  if (!h.quarantined) return;  // already lifted by an earlier probe
  const SimTime now = fabric_->now();
  if (now < h.until) {
    // The window was extended after this event was armed; try again then.
    schedule_reprobe(rail);
    return;
  }
  ++stats_.reprobes;
  const bool up = nics_[rail]->link_up(now);
  metrics_.on_reprobe(rail, up);
  flight(trace::FlightKind::kReprobe, rail, 0, up ? 1 : 0);
  if (up) {
    ++stats_.reprobe_successes;
    h.quarantined = false;
    h.window = 0;  // healthy again: reset the backoff
    invalidate_decisions();  // the usable-rail set just grew
    if (!pending_eager_.empty() || (qos_ != nullptr && qos_->backlog())) {
      arm_progress(now);
    }
    if (!qos_streams_.empty()) arm_qos_pump();
    return;
  }
  if (h.window >= config_.failover.max_quarantine) {
    // Backoff saturated and the link is still down: treat the rail as
    // fail-stopped and stop probing, so the event queue can drain (an
    // endless probe chain would make run_all() spin forever). The rail
    // stays quarantined; failover's all-quarantined fallback may still try
    // it as a last resort.
    return;
  }
  h.window = std::min(static_cast<SimDuration>(static_cast<double>(h.window) *
                                               config_.failover.quarantine_backoff),
                      config_.failover.max_quarantine);
  if (h.window <= 0) h.window = config_.failover.quarantine;
  h.until = now + h.window;
  schedule_reprobe(rail);
}

// ---------------------------------------------------------------------------
// End-to-end reliability: CRC32C, seq windows, ACK/NACK, retransmit
// (docs/FAULTS.md, "Data-plane faults & reliable delivery")
// ---------------------------------------------------------------------------

Engine::RelTxEntry& Engine::rel_slot(RelLink& link, std::uint64_t seq) {
  if (link.ring.empty()) link.ring.resize(64);
  // Sequence numbers are consecutive, so a collision means ring.size()
  // segments are simultaneously unacked — double until the window fits.
  // This only happens during warmup or a loss storm; the ring never shrinks.
  while (link.ring[seq & (link.ring.size() - 1)].in_use) rel_grow_ring(link);
  return link.ring[seq & (link.ring.size() - 1)];
}

void Engine::rel_grow_ring(RelLink& link) {
  std::vector<RelTxEntry> bigger(link.ring.size() * 2);
  for (RelTxEntry& e : link.ring) {
    if (!e.in_use) continue;
    bigger[e.seq & (bigger.size() - 1)] = std::move(e);
  }
  link.ring = std::move(bigger);
}

Engine::RelTxEntry* Engine::rel_find(NodeId dst, std::uint64_t seq) {
  RelLink& link = rel_links_[dst];
  if (link.ring.empty()) return nullptr;
  RelTxEntry& e = link.ring[seq & (link.ring.size() - 1)];
  return (e.in_use && e.seq == seq) ? &e : nullptr;
}

void Engine::rel_release(RelTxEntry& entry) {
  entry.in_use = false;
  entry.payload.clear();  // capacity stays with the slot for reuse
  --rel_live_entries_;
}

void Engine::rel_stash(fabric::Segment& seg, RailId rail) {
  RelLink& link = rel_links_[seg.dst];
  seg.seq = link.next_seq++;
  if (config_.reliability.checksum) seg.crc = reliable_crc(seg);
  RelTxEntry& e = rel_slot(link, seg.seq);
  e.in_use = true;
  e.kind = seg.kind;
  e.attempt = seg.attempt;
  e.retransmits = 0;
  e.rail = rail;
  e.dst = seg.dst;
  e.seq = seg.seq;
  e.msg_id = seg.msg_id;
  e.tag = seg.tag;
  e.offset = seg.offset;
  e.total_len = seg.total_len;
  e.crc = seg.crc;
  e.base_timeout = 0;
  e.payload.assign(seg.payload.begin(), seg.payload.end());
  ++rel_live_entries_;
  ++stats_.rel_segments;
}

void Engine::rel_arm(NodeId dst, std::uint64_t seq, SimDuration predicted_flight) {
  RelTxEntry* e = rel_find(dst, seq);
  if (e == nullptr) return;
  if (e->base_timeout == 0) {
    // The PR 2 idiom applied end-to-end: the wait scales with the predicted
    // delivery (plus the receiver's ACK coalescing window), floored so a
    // zero-byte control segment is not declared lost by rounding.
    const auto scaled = static_cast<SimDuration>(
        config_.reliability.ack_timeout_slack *
        static_cast<double>(predicted_flight + config_.reliability.ack_delay));
    e->base_timeout = std::max(config_.reliability.min_ack_timeout, scaled);
  }
  SimDuration wait = e->base_timeout;
  for (unsigned i = 0; i < e->retransmits; ++i) {
    wait = static_cast<SimDuration>(static_cast<double>(wait) *
                                    config_.reliability.backoff);
  }
  // The event is stale if the entry was retired OR re-armed since (a
  // retransmit bumps `retransmits`, so the captured count identifies this
  // particular arming — no generation counter needed).
  const unsigned expected = e->retransmits;
  fabric_->events().at(fabric_->now() + wait, [this, dst, seq, expected] {
    rel_on_timeout(dst, seq, expected);
  });
}

void Engine::rel_on_timeout(NodeId dst, std::uint64_t seq, unsigned expected_retransmits) {
  RelTxEntry* e = rel_find(dst, seq);
  if (e == nullptr || e->retransmits != expected_retransmits) return;  // stale
  rel_presume_lost(*e, /*count_streak=*/true);
}

void Engine::rel_presume_lost(RelTxEntry& entry, bool count_streak) {
  if (count_streak) {
    ++stats_.rel_drops_inferred;
    metrics_.on_rel_drop_inferred();
    // Repeated inferred losses concentrated on one rail are a sick link, not
    // independent wire noise: hand it to the PR 2 quarantine/re-probe path.
    if (config_.reliability.loss_streak_quarantine > 0 &&
        ++rel_loss_streak_[entry.rail] >= config_.reliability.loss_streak_quarantine) {
      rel_loss_streak_[entry.rail] = 0;
      quarantine_rail(entry.rail);
    }
  }
  if (entry.retransmits >= config_.reliability.max_retransmits) {
    rel_exhaust(entry);
    return;
  }
  ++entry.retransmits;
  rel_retransmit(entry);
}

void Engine::rel_retransmit(RelTxEntry& entry) {
  ++stats_.rel_retransmits;
  metrics_.on_rel_retransmit();
  flight(trace::FlightKind::kRetransmit, entry.rail, entry.msg_id,
         static_cast<std::int64_t>(entry.seq), entry.retransmits);
  // Rebuild the segment from the parked copy — byte-identical to the
  // original (same seq, same CRC), so whichever copy lands first passes
  // verification and the other dies in the receiver's dedup window.
  fabric::Segment seg;
  seg.kind = entry.kind;
  seg.dst = entry.dst;
  seg.msg_id = entry.msg_id;
  seg.tag = entry.tag;
  seg.offset = entry.offset;
  seg.total_len = entry.total_len;
  seg.attempt = entry.attempt;
  seg.crc = entry.crc;
  seg.seq = entry.seq;
  if (!entry.payload.empty()) {
    seg.payload = fabric::acquire_payload();
    seg.payload.assign(entry.payload.begin(), entry.payload.end());
  }
  const RailId rail = repost_rail(seg);
  entry.rail = rail;
  const NodeId dst = entry.dst;
  const std::uint64_t seq = entry.seq;
  post_segment(rail, std::move(seg), config_.scheduler_core);
  rel_arm(dst, seq, /*predicted_flight=*/0);  // base_timeout is already set
}

void Engine::rel_exhaust(RelTxEntry& entry) {
  ++stats_.rel_retry_exhausted;
  metrics_.on_rel_exhausted();
  flight(trace::FlightKind::kRetryExhausted, entry.rail, entry.msg_id,
         static_cast<std::int64_t>(entry.seq), entry.retransmits);
  {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "msg %llu seq %llu (%s) lost %u times: retry budget exhausted "
                  "on rail %u",
                  static_cast<unsigned long long>(entry.msg_id),
                  static_cast<unsigned long long>(entry.seq),
                  fabric::to_string(entry.kind), entry.retransmits + 1, entry.rail);
    flight_trigger("retry-exhausted", detail);
  }
  quarantine_rail(entry.rail);
  // A rendezvous send that can no longer deliver its handshake or data fails
  // outright rather than hanging its waiter forever.
  if (entry.kind == fabric::SegKind::kData || entry.kind == fabric::SegKind::kRts) {
    if (auto it = rdv_sends_.find(entry.msg_id); it != rdv_sends_.end()) {
      it->second->state = SendState::kFailed;
      live_chunks_.erase(entry.msg_id);
      qos_streams_.erase(entry.msg_id);
      rdv_sends_.erase(it);
    }
  }
  rel_release(entry);
}

void Engine::rel_retire(NodeId dst, std::uint64_t seq) {
  RelTxEntry* e = rel_find(dst, seq);
  if (e == nullptr) return;  // already retired (stale/duplicate ACK)
  rel_loss_streak_[e->rail] = 0;  // the rail is demonstrably delivering
  if (e->kind == fabric::SegKind::kData) {
    // End-to-end acknowledged: any chunk-tracking entry is moot.
    if (auto it = live_chunks_.find(e->msg_id); it != live_chunks_.end()) {
      it->second.erase(e->offset);
    }
  }
  rel_release(*e);
}

bool Engine::rel_rx_accept(const fabric::Segment& seg) {
  // (1) Integrity: recompute the CRC over what actually arrived.
  if (config_.reliability.checksum && reliable_crc(seg) != seg.crc) {
    ++stats_.rel_corruptions;
    metrics_.on_rel_corruption();
    flight(trace::FlightKind::kCorruptDetected, seg.rail, seg.msg_id,
           static_cast<std::int64_t>(seg.seq));
    // Corruption is detectable loss: tell the sender now instead of letting
    // it burn the full ACK timeout.
    rel_send_nack(seg.src, seg.seq);
    return false;
  }
  RelLink& link = rel_links_[seg.src];
  const std::uint64_t seq = seg.seq;
  // (2) Window overflow: a seq too far ahead cannot be recorded, so it
  // cannot be safely accepted (its retransmit would be an undetectable
  // duplicate). Dropping is safe — the sender retries after the window
  // advances. Unreachable in practice: the rx window (1024) is far wider
  // than any TX ring the ACK clock lets build up.
  if (seq > link.rx_cumulative + kRelRxWindow) return false;
  // (3) Exactly-once: cumulative counter + bitmap ring suppress wire
  // duplicates and retransmits whose original landed. Re-arm the ACK — a
  // duplicate means the sender has not retired this seq yet.
  const auto seen = [&link](std::uint64_t s) {
    const std::uint64_t b = s - 1;
    return ((link.rx_bits[(b >> 6) & (link.rx_bits.size() - 1)] >> (b & 63)) & 1) != 0;
  };
  if (seq <= link.rx_cumulative || seen(seq)) {
    ++stats_.rel_dup_suppressed;
    metrics_.on_rel_dup_suppressed();
    flight(trace::FlightKind::kDupSuppressed, seg.rail, seg.msg_id,
           static_cast<std::int64_t>(seq));
    rel_arm_ack(seg.src);
    return false;
  }
  // (4) Accept: record the seq, advance the cumulative edge over any run of
  // now-contiguous bits, and schedule the coalesced ACK.
  {
    const std::uint64_t b = seq - 1;
    link.rx_bits[(b >> 6) & (link.rx_bits.size() - 1)] |= 1ull << (b & 63);
  }
  while (true) {
    const std::uint64_t nb = link.rx_cumulative;  // bit index of cumulative+1
    auto& word = link.rx_bits[(nb >> 6) & (link.rx_bits.size() - 1)];
    if (((word >> (nb & 63)) & 1) == 0) break;
    word &= ~(1ull << (nb & 63));
    ++link.rx_cumulative;
  }
  rel_arm_ack(seg.src);
  return true;
}

void Engine::rel_arm_ack(NodeId src) {
  RelLink& link = rel_links_[src];
  if (link.ack_armed) return;
  link.ack_armed = true;
  fabric_->events().at(fabric_->now() + config_.reliability.ack_delay,
                       [this, src] { rel_flush_ack(src); });
}

void Engine::rel_flush_ack(NodeId src) {
  RelLink& link = rel_links_[src];
  link.ack_armed = false;
  // The whole acknowledgement travels in header fields — no payload, no
  // allocation: `seq` carries the cumulative edge, `offset` a selective
  // bitmap for the 64 seqs above it (out-of-order arrivals under reorder).
  fabric::Segment ack;
  ack.kind = fabric::SegKind::kAck;
  ack.dst = src;
  ack.seq = link.rx_cumulative;
  std::uint64_t bits = 0;
  for (unsigned i = 0; i < 64; ++i) {
    const std::uint64_t b = link.rx_cumulative + i;  // bit of cumulative+1+i
    if ((link.rx_bits[(b >> 6) & (link.rx_bits.size() - 1)] >> (b & 63)) & 1) {
      bits |= 1ull << i;
    }
  }
  ack.offset = bits;
  const StrategyContext ctx = make_context();
  const RailId rail = strategy_ != nullptr ? strategy_->control_rail(ctx) : 0;
  post_segment(rail, std::move(ack), config_.scheduler_core);
  ++stats_.rel_acks;
  metrics_.on_rel_ack();
}

void Engine::rel_send_nack(NodeId src, std::uint64_t seq) {
  fabric::Segment nack;
  nack.kind = fabric::SegKind::kNack;
  nack.dst = src;
  nack.seq = seq;
  const StrategyContext ctx = make_context();
  const RailId rail = strategy_ != nullptr ? strategy_->control_rail(ctx) : 0;
  post_segment(rail, std::move(nack), config_.scheduler_core);
  ++stats_.rel_nacks;
  metrics_.on_rel_nack();
}

void Engine::rel_handle_ack(const fabric::Segment& seg) {
  if (!config_.reliability.enabled) return;
  RelLink& link = rel_links_[seg.src];
  // ACKs state monotone facts ("everything <= cumulative arrived; these 64
  // above it arrived too"), so a reordered stale ACK is harmless: its
  // cumulative edge is behind ours (loop runs zero times) and its selective
  // bits name seqs that genuinely landed.
  const std::uint64_t cumulative = seg.seq;
  while (link.oldest_unacked <= cumulative) {
    rel_retire(seg.src, link.oldest_unacked);
    ++link.oldest_unacked;
  }
  const std::uint64_t bits = seg.offset;
  for (unsigned i = 0; i < 64; ++i) {
    if ((bits >> i) & 1) rel_retire(seg.src, cumulative + 1 + i);
  }
}

void Engine::rel_handle_nack(const fabric::Segment& seg) {
  if (!config_.reliability.enabled) return;
  // The receiver saw this seq arrive corrupted — skip the timeout and
  // retransmit now (still budget-checked; a rail that keeps corrupting
  // exhausts the budget and gets quarantined like one that keeps dropping).
  if (RelTxEntry* entry = rel_find(seg.src, seg.seq)) {
    rel_presume_lost(*entry, /*count_streak=*/false);
  }
}

}  // namespace rails::core
