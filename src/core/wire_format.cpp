#include "core/wire_format.hpp"

#include <cstring>

#include "common/check.hpp"

namespace rails::core {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void append_subpacket(std::vector<std::uint8_t>& out, const SubPacket& sp) {
  out.reserve(out.size() + framed_size(sp.len));
  put_u64(out, sp.msg_id);
  put_u64(out, sp.tag);
  put_u64(out, sp.msg_total);
  put_u64(out, sp.offset);
  put_u32(out, sp.len);
  if (sp.len > 0) {
    RAILS_CHECK(sp.bytes != nullptr);
    out.insert(out.end(), sp.bytes, sp.bytes + sp.len);
  }
}

std::vector<SubPacket> parse_subpackets(const std::vector<std::uint8_t>& payload) {
  std::vector<SubPacket> out;
  parse_subpackets(payload, out);
  return out;
}

void parse_subpackets(const std::vector<std::uint8_t>& payload,
                      std::vector<SubPacket>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < payload.size()) {
    RAILS_CHECK_MSG(pos + SubPacket::kHeaderBytes <= payload.size(),
                    "truncated sub-packet header");
    SubPacket sp;
    sp.msg_id = get_u64(&payload[pos]);
    sp.tag = get_u64(&payload[pos + 8]);
    sp.msg_total = get_u64(&payload[pos + 16]);
    sp.offset = get_u64(&payload[pos + 24]);
    sp.len = get_u32(&payload[pos + 32]);
    pos += SubPacket::kHeaderBytes;
    RAILS_CHECK_MSG(pos + sp.len <= payload.size(), "truncated sub-packet body");
    sp.bytes = sp.len > 0 ? &payload[pos] : nullptr;
    pos += sp.len;
    out.push_back(sp);
  }
}

bool try_parse_subpackets(const std::vector<std::uint8_t>& payload,
                          std::vector<SubPacket>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < payload.size()) {
    if (pos + SubPacket::kHeaderBytes > payload.size()) {
      out.clear();
      return false;  // truncated header
    }
    SubPacket sp;
    sp.msg_id = get_u64(&payload[pos]);
    sp.tag = get_u64(&payload[pos + 8]);
    sp.msg_total = get_u64(&payload[pos + 16]);
    sp.offset = get_u64(&payload[pos + 24]);
    sp.len = get_u32(&payload[pos + 32]);
    pos += SubPacket::kHeaderBytes;
    if (pos + sp.len > payload.size() ||           // truncated body
        sp.offset + sp.len < sp.offset ||          // offset wraparound
        sp.offset + sp.len > sp.msg_total) {       // fragment overruns message
      out.clear();
      return false;
    }
    sp.bytes = sp.len > 0 ? &payload[pos] : nullptr;
    pos += sp.len;
    out.push_back(sp);
  }
  return true;
}

}  // namespace rails::core
