// Recycling slab pool for hot-path request objects.
//
// PoolHandle<T> is a shared_ptr-like owner backed by a freelist of
// slab-allocated slots, so steady-state acquire/release never touches the
// allocator (docs/PERF.md "hot path & memory discipline"). Each slot
// carries a generation counter bumped on every release: tests and debug
// assertions can detect a handle outliving its object's recycling.
// pool_recycle(T&) is an ADL customization point invoked on release; it
// must reset the object for reuse while keeping owned buffers' capacity.
//
// Pools are immortal process singletons — deliberately leaked but
// reachable through a static pointer (LSan-clean) — because handles may
// outlive any Engine or World that produced them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace rails::core {

template <typename T>
class RequestPool;

template <typename T>
struct PoolSlot {
  T obj{};
  std::atomic<std::uint32_t> refs{0};
  std::atomic<std::uint32_t> generation{0};
  RequestPool<T>* pool = nullptr;
  PoolSlot* next_free = nullptr;
};

/// Intrusively refcounted owner of a pooled slot. Copy = one relaxed
/// atomic increment; final release recycles the slot back to its pool.
template <typename T>
class PoolHandle {
 public:
  PoolHandle() = default;
  PoolHandle(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Adopts the initial reference minted by RequestPool::acquire().
  explicit PoolHandle(PoolSlot<T>* slot) : slot_(slot) {}

  PoolHandle(const PoolHandle& o) : slot_(o.slot_) {
    if (slot_ != nullptr) slot_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  PoolHandle(PoolHandle&& o) noexcept : slot_(std::exchange(o.slot_, nullptr)) {}
  PoolHandle& operator=(const PoolHandle& o) {
    PoolHandle tmp(o);
    std::swap(slot_, tmp.slot_);
    return *this;
  }
  PoolHandle& operator=(PoolHandle&& o) noexcept {
    PoolHandle tmp(std::move(o));
    std::swap(slot_, tmp.slot_);
    return *this;
  }
  ~PoolHandle() { reset(); }

  void reset();

  T* get() const { return slot_ != nullptr ? &slot_->obj : nullptr; }
  T& operator*() const { return slot_->obj; }
  T* operator->() const { return &slot_->obj; }
  explicit operator bool() const { return slot_ != nullptr; }

  /// Generation of the underlying slot at the time of the call. A recycled
  /// slot reports a larger generation than any handle that owned it before.
  std::uint32_t generation() const {
    return slot_ != nullptr ? slot_->generation.load(std::memory_order_relaxed)
                            : 0;
  }

  friend bool operator==(const PoolHandle& a, const PoolHandle& b) {
    return a.slot_ == b.slot_;
  }
  friend bool operator!=(const PoolHandle& a, const PoolHandle& b) {
    return a.slot_ != b.slot_;
  }
  friend bool operator==(const PoolHandle& h, std::nullptr_t) {
    return h.slot_ == nullptr;
  }
  friend bool operator!=(const PoolHandle& h, std::nullptr_t) {
    return h.slot_ != nullptr;
  }

 private:
  PoolSlot<T>* slot_ = nullptr;
};

template <typename T>
class RequestPool {
 public:
  /// The process-wide pool for T. Immortal: never destroyed, so handles
  /// released during static teardown still have a live freelist.
  static RequestPool& instance() {
    static RequestPool* pool = new RequestPool();
    return *pool;
  }

  PoolHandle<T> acquire() {
    PoolSlot<T>* slot = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (free_ == nullptr) grow_locked();
      slot = free_;
      free_ = slot->next_free;
      ++live_;
    }
    slot->next_free = nullptr;
    slot->refs.store(1, std::memory_order_relaxed);
    return PoolHandle<T>(slot);
  }

  void release(PoolSlot<T>* slot) {
    pool_recycle(slot->obj);  // ADL hook: reset fields, keep capacity
    slot->generation.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    slot->next_free = free_;
    free_ = slot;
    --live_;
    ++recycled_;
  }

  /// Handles currently outstanding.
  std::size_t live() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_;
  }
  /// Total releases back to the freelist since process start.
  std::uint64_t recycled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recycled_;
  }
  /// Total slots ever slab-allocated (high-water mark of concurrent use).
  std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slabs_.size() * kSlabSlots;
  }

 private:
  static constexpr std::size_t kSlabSlots = 64;

  RequestPool() = default;

  void grow_locked() {
    auto* slab = new PoolSlot<T>[kSlabSlots];
    slabs_.push_back(slab);
    for (std::size_t i = 0; i < kSlabSlots; ++i) {
      slab[i].pool = this;
      slab[i].next_free = free_;
      free_ = &slab[i];
    }
  }

  mutable std::mutex mu_;
  PoolSlot<T>* free_ = nullptr;
  std::vector<PoolSlot<T>*> slabs_;
  std::size_t live_ = 0;
  std::uint64_t recycled_ = 0;
};

template <typename T>
inline void PoolHandle<T>::reset() {
  if (slot_ != nullptr &&
      slot_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    slot_->pool->release(slot_);
  }
  slot_ = nullptr;
}

}  // namespace rails::core
