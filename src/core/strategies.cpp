#include "core/strategies.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/message.hpp"
#include "core/wire_format.hpp"
#include "strategy/rail_cost.hpp"

namespace rails::core {

namespace {

/// Builds the solver inputs for one protocol table, busy offsets included.
/// Quarantined rails are excluded — the engine guarantees at least one rail
/// stays usable (docs/FAULTS.md). A SUSPECT rail's trust penalty inflates
/// its cost curve so the solver hands it proportionally smaller chunks
/// (docs/CALIBRATION.md).
std::vector<strategy::SolverRail> solver_rails(
    const StrategyContext& ctx, std::vector<strategy::ProfileCost>& costs,
    const sampling::PerfProfile& (*table)(const sampling::RailProfile&)) {
  costs.clear();
  costs.reserve(ctx.rail_count());
  std::vector<strategy::SolverRail> rails;
  rails.reserve(ctx.rail_count());
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    costs.emplace_back(&table(ctx.estimator->profile(r)), ctx.rail_trust_penalty(r));
  }
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    if (!ctx.rail_usable(r)) continue;
    rails.push_back({r, &costs[r], ctx.rail_ready_offset(r)});
  }
  return rails;
}

/// Rails the strategy may plan onto (usable mask applied).
std::vector<RailId> usable_rails(const StrategyContext& ctx) {
  std::vector<RailId> out;
  out.reserve(ctx.rail_count());
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    if (ctx.rail_usable(r)) out.push_back(r);
  }
  return out;
}

const sampling::PerfProfile& rdv_chunk_table(const sampling::RailProfile& rp) {
  return rp.rdv_chunk;
}
const sampling::PerfProfile& eager_table(const sampling::RailProfile& rp) {
  return rp.eager;
}

/// Packs `pending` (in order) into as few segments as fit on `rail`,
/// splitting an oversized send across several segments if needed.
std::vector<EagerEmission> pack_onto_rail(const StrategyContext& ctx, RailId rail,
                                          std::span<const SendRequest* const> pending) {
  const std::size_t cap = ctx.nics[rail]->model().params().max_eager;
  std::vector<EagerEmission> emissions;
  EagerEmission current;
  current.rail = rail;
  std::size_t used = 0;

  auto flush = [&] {
    if (!current.pieces.empty()) {
      emissions.push_back(std::move(current));
      current = EagerEmission{};
      current.rail = rail;
      used = 0;
    }
  };

  for (const SendRequest* send : pending) {
    std::size_t offset = 0;
    // A zero-byte message still occupies one framed header.
    do {
      const std::size_t remaining = send->len - offset;
      std::size_t room = cap > used + SubPacket::kHeaderBytes
                             ? cap - used - SubPacket::kHeaderBytes
                             : 0;
      if (room == 0 && !current.pieces.empty()) {
        flush();
        continue;
      }
      const std::size_t take = std::min(remaining, room);
      RAILS_CHECK_MSG(take > 0 || remaining == 0, "rail segment cap too small");
      current.pieces.push_back({send, offset, take});
      used += framed_size(take);
      offset += take;
    } while (offset < send->len);
  }
  flush();
  return emissions;
}

/// Completion-time estimate for aggregating `bytes` on `rail` right now.
SimTime eager_completion(const StrategyContext& ctx, RailId rail, std::size_t bytes) {
  const sampling::RailState state{rail, ctx.rail_busy_until(rail)};
  return ctx.estimator->completion(state, ctx.now, bytes, fabric::Protocol::kEager);
}

}  // namespace

// ---------------------------------------------------------------------------
// SingleRail
// ---------------------------------------------------------------------------

std::string SingleRail::name() const {
  return "single-rail:" + std::to_string(rail_);
}

EagerSchedule SingleRail::plan_eager(const StrategyContext& ctx,
                                     std::span<const SendRequest* const> pending) {
  EagerSchedule schedule;
  // Defer while the rail is busy: queued packets keep aggregating, exactly
  // like NewMadeleine's pack list.
  if (!ctx.nics[rail_]->idle(ctx.now)) return schedule;
  schedule.emissions = pack_onto_rail(ctx, rail_, pending);
  return schedule;
}

strategy::SplitResult SingleRail::plan_rendezvous(const StrategyContext&, std::size_t len) {
  strategy::SplitResult result;
  result.chunks = {{rail_, 0, len}};
  return result;
}

// ---------------------------------------------------------------------------
// GreedyBalance
// ---------------------------------------------------------------------------

EagerSchedule GreedyBalance::plan_eager(const StrategyContext& ctx,
                                        std::span<const SendRequest* const> pending) {
  EagerSchedule schedule;
  // Collect the rails currently idle; hand the queued messages to them
  // round-robin, one message per emission (no aggregation, no split).
  std::vector<RailId> idle;
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    if (ctx.rail_usable(r) && ctx.nics[r]->idle(ctx.now)) idle.push_back(r);
  }
  if (idle.empty()) return schedule;

  std::size_t next = 0;
  for (const SendRequest* send : pending) {
    const RailId rail = idle[next % idle.size()];
    ++next;
    if (send->len + SubPacket::kHeaderBytes >
        ctx.nics[rail]->model().params().max_eager) {
      continue;  // cannot fit whole on this rail; wait for another round
    }
    EagerEmission e;
    e.rail = rail;
    e.pieces.push_back({send, 0, send->len});
    schedule.emissions.push_back(std::move(e));
  }
  return schedule;
}

strategy::SplitResult GreedyBalance::plan_rendezvous(const StrategyContext& ctx,
                                                     std::size_t len) {
  // First idle rail, else the one freeing up soonest.
  RailId best = 0;
  SimTime best_busy = kSimTimeNever;
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    if (!ctx.rail_usable(r)) continue;
    const SimTime b = ctx.rail_busy_until(r);
    if (b < best_busy) {
      best_busy = b;
      best = r;
    }
  }
  strategy::SplitResult result;
  result.chunks = {{best, 0, len}};
  return result;
}

// ---------------------------------------------------------------------------
// AggregateFastest
// ---------------------------------------------------------------------------

EagerSchedule AggregateFastest::plan_eager(const StrategyContext& ctx,
                                           std::span<const SendRequest* const> pending) {
  EagerSchedule schedule;
  std::size_t total = 0;
  for (const SendRequest* send : pending) total += send->len;

  // Fastest available rail for the aggregate, by sampled prediction.
  RailId best = 0;
  SimTime best_done = kSimTimeNever;
  bool any_idle = false;
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    if (!ctx.rail_usable(r) || !ctx.nics[r]->idle(ctx.now)) continue;
    any_idle = true;
    const SimTime done = eager_completion(ctx, r, total);
    if (done < best_done) {
      best_done = done;
      best = r;
    }
  }
  if (!any_idle) return schedule;  // keep aggregating until a NIC frees up
  schedule.emissions = pack_onto_rail(ctx, best, pending);
  return schedule;
}

strategy::SplitResult AggregateFastest::plan_rendezvous(const StrategyContext& ctx,
                                                        std::size_t len) {
  std::vector<strategy::ProfileCost> costs;
  const auto rails = solver_rails(ctx, costs, rdv_chunk_table);
  const std::size_t best = strategy::best_single_rail(rails, len);
  strategy::SplitResult result;
  result.chunks = {{rails[best].rail, 0, len}};
  result.makespan = strategy::single_rail_time(rails[best], len);
  return result;
}

// ---------------------------------------------------------------------------
// PatientAggregate
// ---------------------------------------------------------------------------

EagerSchedule PatientAggregate::plan_eager(const StrategyContext& ctx,
                                           std::span<const SendRequest* const> pending) {
  EagerSchedule schedule;
  std::size_t total = 0;
  for (const SendRequest* send : pending) total += send->len;

  // Best predicted completion over every rail, busy offsets included.
  RailId best = 0;
  SimTime best_done = kSimTimeNever;
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    if (!ctx.rail_usable(r)) continue;
    const SimTime done = eager_completion(ctx, r, total);
    if (done < best_done) {
      best_done = done;
      best = r;
    }
  }
  // "delaying a transfer while some NICs that especially fit the considered
  // transfer are busy": if the winner is busy, wait for it.
  if (!ctx.nics[best]->idle(ctx.now)) return schedule;
  schedule.emissions = pack_onto_rail(ctx, best, pending);
  return schedule;
}

// ---------------------------------------------------------------------------
// IsoSplit
// ---------------------------------------------------------------------------

strategy::SplitResult IsoSplit::plan_rendezvous(const StrategyContext& ctx,
                                                std::size_t len) {
  strategy::SplitResult result;
  const std::vector<RailId> rails = usable_rails(ctx);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < rails.size(); ++i) {
    const std::size_t bytes =
        i + 1 < rails.size() ? len / rails.size() : len - offset;
    if (bytes == 0) continue;
    result.chunks.push_back({rails[i], offset, bytes});
    offset += bytes;
  }
  return result;
}

// ---------------------------------------------------------------------------
// FixedRatioSplit
// ---------------------------------------------------------------------------

strategy::SplitResult FixedRatioSplit::plan_rendezvous(const StrategyContext& ctx,
                                                       std::size_t len) {
  // "OpenMPI computes a ratio by comparing the maximum available bandwidth
  // of each network" — size- and state-independent.
  const std::vector<RailId> rails = usable_rails(ctx);
  std::vector<double> bw(rails.size());
  double sum = 0;
  for (std::size_t i = 0; i < rails.size(); ++i) {
    bw[i] = ctx.estimator->profile(rails[i]).rdv_chunk.asymptotic_bandwidth();
    sum += bw[i];
  }
  RAILS_CHECK(sum > 0);
  strategy::SplitResult result;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < rails.size(); ++i) {
    const std::size_t bytes =
        i + 1 < rails.size()
            ? static_cast<std::size_t>(static_cast<double>(len) * bw[i] / sum)
            : len - offset;
    if (bytes == 0) continue;
    result.chunks.push_back({rails[i], offset, bytes});
    offset += bytes;
  }
  return result;
}

// ---------------------------------------------------------------------------
// HeteroSplit
// ---------------------------------------------------------------------------

strategy::SplitResult HeteroSplit::plan_rendezvous(const StrategyContext& ctx,
                                                   std::size_t len) {
  if (ctx.trust_compromised) {
    // Some usable rail's profile is UNTRUSTED (or mid-resample): feeding the
    // equal-finish solver numbers known to be wrong is worse than splitting
    // blind, so fall back to knowledge-free iso weighting until the
    // recalibration layer restores trust.
    IsoSplit iso;
    return iso.plan_rendezvous(ctx, len);
  }
  std::vector<strategy::ProfileCost> costs;
  const auto rails = solver_rails(ctx, costs, rdv_chunk_table);
  return strategy::solve_equal_finish(rails, len);
}

// ---------------------------------------------------------------------------
// MulticoreHeteroSplit
// ---------------------------------------------------------------------------

EagerSchedule MulticoreHeteroSplit::plan_eager(const StrategyContext& ctx,
                                               std::span<const SendRequest* const> pending) {
  // Aggregation remains the right call for batches of tiny packets; the
  // multicore parallel submission targets a single medium eager message
  // (§III-D: "this mechanism appears to be useful to send medium-sized
  // eager messages").
  if (pending.size() != 1 || ctx.rail_count() < 2) {
    return AggregateFastest::plan_eager(ctx, pending);
  }
  const SendRequest* send = pending.front();
  if (send->len < ctx.config->offload.min_split_size) {
    return AggregateFastest::plan_eager(ctx, pending);
  }

  // Cores available for remote submission (the scheduler core is excluded:
  // every chunk is handed to a remote core, Fig. 7).
  const unsigned idle_cores =
      ctx.cores->idle_count(ctx.now, ctx.config->scheduler_core);
  std::vector<strategy::ProfileCost> costs;
  const auto rails = solver_rails(ctx, costs, eager_table);
  const strategy::EagerPlan plan =
      strategy::plan_eager(rails, send->len, idle_cores, ctx.config->offload);

  if (!plan.split) return AggregateFastest::plan_eager(ctx, pending);

  // Assign one distinct idle core per chunk, nearest-first.
  std::vector<CoreId> assigned;
  EagerSchedule schedule;
  for (const strategy::Chunk& chunk : plan.chunks) {
    EagerEmission e;
    e.rail = chunk.rail;
    std::optional<CoreId> exclude;  // pick_offload_core skips `near` itself
    CoreId core = ctx.config->scheduler_core;
    for (CoreId candidate :
         ctx.cores->topology().neighbours_by_distance(ctx.config->scheduler_core)) {
      if (!ctx.cores->idle(candidate, ctx.now)) continue;
      if (std::find(assigned.begin(), assigned.end(), candidate) != assigned.end()) {
        continue;
      }
      core = candidate;
      break;
    }
    (void)exclude;
    RAILS_CHECK_MSG(core != ctx.config->scheduler_core,
                    "offload planned without an idle remote core");
    assigned.push_back(core);
    e.offload_core = core;
    e.pieces.push_back({send, chunk.offset, chunk.bytes});
    schedule.emissions.push_back(std::move(e));
  }
  return schedule;
}

bool MulticoreHeteroSplit::eager_plan_cacheable(
    const StrategyContext& ctx, std::span<const SendRequest* const> pending) const {
  // The delegation cases reduce to AggregateFastest (cacheable); the split
  // case feeds busy offsets into the solver, so it is pure only when every
  // usable rail is idle (offsets all zero). Core choice depends only on the
  // idle-core set, which is part of the engine's cache key.
  if (pending.size() != 1 || ctx.rail_count() < 2) return true;
  if (pending.front()->len < ctx.config->offload.min_split_size) return true;
  return ctx.all_usable_idle();
}

// ---------------------------------------------------------------------------
// BatchSpread
// ---------------------------------------------------------------------------

EagerSchedule BatchSpread::plan_eager(const StrategyContext& ctx,
                                      std::span<const SendRequest* const> pending) {
  // A single message is the multicore-split case; a batch is ours.
  if (pending.size() < 2) return MulticoreHeteroSplit::plan_eager(ctx, pending);

  // Candidate rails: idle ones. Candidate cores: idle remote cores.
  std::vector<RailId> idle_rails;
  for (RailId r = 0; r < ctx.rail_count(); ++r) {
    if (ctx.rail_usable(r) && ctx.nics[r]->idle(ctx.now)) idle_rails.push_back(r);
  }
  std::vector<CoreId> idle_cores;
  for (CoreId c :
       ctx.cores->topology().neighbours_by_distance(ctx.config->scheduler_core)) {
    if (ctx.cores->idle(c, ctx.now)) idle_cores.push_back(c);
  }
  const std::size_t bins =
      std::min({idle_rails.size(), idle_cores.size(), pending.size()});
  if (bins < 2) return AggregateFastest::plan_eager(ctx, pending);

  // Rank the idle rails by eager speed for an average-sized aggregate and
  // keep the `bins` fastest.
  std::size_t total = 0;
  for (const SendRequest* send : pending) total += send->len;
  std::sort(idle_rails.begin(), idle_rails.end(), [&](RailId a, RailId b) {
    return ctx.estimator->duration(a, total / bins, fabric::Protocol::kEager) <
           ctx.estimator->duration(b, total / bins, fabric::Protocol::kEager);
  });
  idle_rails.resize(bins);

  // LPT partition: longest message first onto the bin with the earliest
  // predicted finish (per-rail curves make the bins speed-aware).
  std::vector<const SendRequest*> order(pending.begin(), pending.end());
  std::sort(order.begin(), order.end(),
            [](const SendRequest* a, const SendRequest* b) { return a->len > b->len; });
  std::vector<std::size_t> bin_bytes(bins, 0);
  std::vector<std::vector<const SendRequest*>> bin_sends(bins);
  for (const SendRequest* send : order) {
    std::size_t best = 0;
    SimDuration best_time = kSimTimeNever;
    for (std::size_t b = 0; b < bins; ++b) {
      const SimDuration t = ctx.estimator->duration(
          idle_rails[b], bin_bytes[b] + send->len, fabric::Protocol::kEager);
      if (t < best_time) {
        best_time = t;
        best = b;
      }
    }
    bin_bytes[best] += send->len;
    bin_sends[best].push_back(send);
  }

  // Predict: parallel spread (TO + slowest bin) vs one aggregated segment on
  // the fastest rail from the scheduler core.
  SimDuration spread_time = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_sends[b].empty()) continue;
    spread_time = std::max(spread_time, ctx.estimator->duration(
                                            idle_rails[b], bin_bytes[b],
                                            fabric::Protocol::kEager));
  }
  spread_time += ctx.config->offload.signal_cost;
  SimDuration aggregate_time = kSimTimeNever;
  for (RailId r : idle_rails) {
    aggregate_time = std::min(
        aggregate_time, ctx.estimator->duration(r, total, fabric::Protocol::kEager));
  }
  if (aggregate_time <= spread_time) {
    return AggregateFastest::plan_eager(ctx, pending);
  }

  // Emit one aggregated segment per bin, each from its own idle core. The
  // original submission order is preserved inside every bin (LPT only
  // decides placement; ordering within a rail follows the pack list).
  EagerSchedule schedule;
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_sends[b].empty()) continue;
    std::vector<const SendRequest*> in_order;
    for (const SendRequest* send : pending) {
      if (std::find(bin_sends[b].begin(), bin_sends[b].end(), send) !=
          bin_sends[b].end()) {
        in_order.push_back(send);
      }
    }
    auto emissions = pack_onto_rail(ctx, idle_rails[b],
                                    std::span<const SendRequest* const>(in_order));
    for (auto& e : emissions) {
      e.offload_core = idle_cores[b];
      schedule.emissions.push_back(std::move(e));
    }
  }
  return schedule;
}

bool BatchSpread::eager_plan_cacheable(
    const StrategyContext& ctx, std::span<const SendRequest* const> pending) const {
  // A batch decides via idle rails, idle cores, and estimator durations —
  // all in the cache key. A single message takes the multicore-split path.
  if (pending.size() >= 2) return true;
  return MulticoreHeteroSplit::eager_plan_cacheable(ctx, pending);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<Strategy> make_strategy(const std::string& name) {
  if (name.rfind("single-rail:", 0) == 0) {
    const RailId rail = static_cast<RailId>(std::stoul(name.substr(12)));
    return std::make_unique<SingleRail>(rail);
  }
  if (name == "greedy-balance") return std::make_unique<GreedyBalance>();
  if (name == "aggregate-fastest") return std::make_unique<AggregateFastest>();
  if (name == "patient-aggregate") return std::make_unique<PatientAggregate>();
  if (name == "iso-split") return std::make_unique<IsoSplit>();
  if (name == "fixed-ratio-split") return std::make_unique<FixedRatioSplit>();
  if (name == "hetero-split") return std::make_unique<HeteroSplit>();
  if (name == "multicore-hetero-split") return std::make_unique<MulticoreHeteroSplit>();
  if (name == "batch-spread") return std::make_unique<BatchSpread>();
  RAILS_CHECK_MSG(false, "unknown strategy name");
  return nullptr;
}

}  // namespace rails::core
