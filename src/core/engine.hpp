// The communication engine (NewMadeleine analogue).
//
// Three-layer architecture per Fig. 5:
//  * application layer — isend()/irecv() enqueue requests into the pack list
//    and return immediately ("the application enqueues packets into a list
//    and immediately returns to computing");
//  * optimizer layer — a pluggable Strategy interrogated when eager packets
//    await emission, when a NIC becomes idle, and when a rendezvous
//    acknowledgement arrives;
//  * transfer layer — posts segments on the node's SimNics, charging the
//    submitting core for the PIO/setup host time.
//
// One Engine instance runs per node of the virtual cluster; all instances
// share the fabric's event queue, so "waiting" for a request means running
// fabric events until the request completes (see World).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "core/message.hpp"
#include "core/strategy_iface.hpp"
#include "core/wire_format.hpp"
#include "fabric/fabric.hpp"
#include "qos/arbiter.hpp"
#include "telemetry/engine_metrics.hpp"
#include "telemetry/prediction.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/tracer.hpp"

namespace rails::core {

struct EngineStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t eager_msgs = 0;
  std::uint64_t rdv_msgs = 0;
  std::uint64_t eager_segments = 0;      ///< eager segments posted
  std::uint64_t aggregated_packets = 0;  ///< sub-packets that shared a segment
  std::uint64_t split_eager_msgs = 0;    ///< eager messages split across rails
  std::uint64_t offloaded_chunks = 0;    ///< eager chunks submitted remotely
  std::uint64_t rdv_chunks = 0;          ///< DMA chunks posted
  std::vector<std::uint64_t> payload_bytes_per_rail;

  // -- fault tolerance (docs/FAULTS.md) --------------------------------
  std::uint64_t tx_errors = 0;          ///< segments reported dropped by a NIC
  std::uint64_t chunk_timeouts = 0;     ///< chunks past predicted completion + slack
  std::uint64_t failovers = 0;          ///< byte ranges re-split onto survivors
  std::uint64_t retries = 0;            ///< segments re-posted (any kind)
  std::uint64_t failover_exhausted = 0; ///< ranges that ran out of attempts
  std::uint64_t quarantines = 0;        ///< rails entering quarantine
  std::uint64_t reprobes = 0;           ///< quarantine re-probe attempts
  std::uint64_t reprobe_successes = 0;  ///< re-probes that lifted a quarantine
  std::uint64_t duplicate_chunks = 0;   ///< receiver-side duplicate DATA chunks
  std::uint64_t stale_control = 0;      ///< duplicate/unknown control segs ignored

  // -- end-to-end reliability (docs/FAULTS.md) -------------------------
  std::uint64_t rel_segments = 0;        ///< sequenced segments posted
  std::uint64_t rel_corruptions = 0;     ///< wire-checksum mismatches detected
  std::uint64_t rel_drops_inferred = 0;  ///< ACK timeouts presuming silent loss
  std::uint64_t rel_retransmits = 0;     ///< segments retransmitted end-to-end
  std::uint64_t rel_dup_suppressed = 0;  ///< sequence-window duplicate drops
  std::uint64_t rel_retry_exhausted = 0; ///< seqs that ran out of retry budget
  std::uint64_t rel_acks = 0;            ///< ACK control segments sent
  std::uint64_t rel_nacks = 0;           ///< NACK control segments sent
  std::uint64_t rel_parse_rejects = 0;   ///< malformed eager frames dropped

  // -- recalibration (docs/CALIBRATION.md) -----------------------------
  std::uint64_t recal_corrections = 0;  ///< profile scale corrections applied
  std::uint64_t recal_resamples = 0;    ///< background re-sampling sweeps run
  std::uint64_t trust_demotions = 0;    ///< trust-state demotions observed
  std::uint64_t trust_promotions = 0;   ///< trust-state promotions observed

  // -- traffic-class QoS (docs/QOS.md) ---------------------------------
  std::uint64_t qos_grants = 0;               ///< sends released by the arbiter
  std::uint64_t qos_stream_chunks = 0;        ///< windowed bulk chunks posted
  std::uint64_t qos_admission_rejects = 0;    ///< deadline-infeasible sends refused
  std::uint64_t qos_admission_downgrades = 0; ///< ... downgraded to BACKGROUND
  std::uint64_t qos_deadline_hits = 0;        ///< deadline-tagged sends in time
  std::uint64_t qos_deadline_misses = 0;      ///< ... that completed late

  // -- hot-path memoization (docs/PERF.md) -----------------------------
  std::uint64_t strategy_cache_hits = 0;    ///< eager plans replayed from cache
  std::uint64_t strategy_cache_misses = 0;  ///< cacheable plans computed fresh
};

class Engine {
 public:
  Engine(fabric::Fabric* fabric, NodeId self, const sampling::Estimator* estimator,
         EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Installs the optimization strategy plug-in. Must be called before any
  /// traffic; may be swapped while the engine is quiescent.
  void set_strategy(std::unique_ptr<Strategy> strategy);
  Strategy& strategy();

  NodeId self() const { return self_; }
  const EngineConfig& config() const { return config_; }
  const sampling::Estimator& estimator() const { return *estimator_; }

  /// Message size at which sends switch to the rendezvous protocol.
  std::size_t rdv_threshold() const { return rdv_threshold_; }

  /// Non-blocking send. The data buffer must stay alive until completion.
  SendHandle isend(NodeId dst, Tag tag, const void* data, std::size_t len);

  /// Per-send QoS attributes (docs/QOS.md). Inert without the subsystem.
  struct SendOptions {
    /// Traffic class; kAutoClass = classify by size.
    std::uint32_t traffic_class = qos::kAutoClass;
    /// Absolute completion deadline (virtual time); 0 = none. With QoS on,
    /// a deadline the estimator deems infeasible is rejected (handle state
    /// kRejected) or downgraded, per QosConfig::deadline_downgrade.
    SimTime deadline = 0;
  };

  /// isend with explicit QoS attributes.
  SendHandle isend(NodeId dst, Tag tag, const void* data, std::size_t len,
                   const SendOptions& opts);

  /// Backpressured submit: returns nullptr (sheds load) when the resolved
  /// class's bounded queue is full. Identical to isend otherwise.
  SendHandle try_isend(NodeId dst, Tag tag, const void* data, std::size_t len);
  SendHandle try_isend(NodeId dst, Tag tag, const void* data, std::size_t len,
                       const SendOptions& opts);

  /// The QoS arbiter; nullptr unless config().qos.enabled.
  qos::QosArbiter* qos() { return qos_.get(); }
  const qos::QosArbiter* qos() const { return qos_.get(); }

  /// One piece of a gathered (iovec) send.
  struct IoSlice {
    const void* data = nullptr;
    std::size_t len = 0;
  };

  /// Non-blocking gathered send: the message is the concatenation of the
  /// slices. When every rail advertises gather/scatter (§II-B: "the
  /// availability of gather/scatter operations"), the NICs assemble the
  /// iovec for free; otherwise the engine coalesces into a staging buffer
  /// first, charging the scheduler core the memcpy time.
  SendHandle isendv(NodeId dst, Tag tag, std::span<const IoSlice> slices);

  /// Non-blocking receive from `src` with matching `tag`.
  RecvHandle irecv(NodeId src, Tag tag, void* data, std::size_t capacity);

  const EngineStats& stats() const { return stats_; }
  void reset_stats();

  /// Attaches an execution tracer (nullptr detaches). The tracer must
  /// outlive the engine or be detached first.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches the always-on flight recorder (nullptr detaches; same
  /// lifetime contract as set_tracer). Data-plane events and control-plane
  /// transitions are mirrored into its lock-free ring, and failover /
  /// quarantine / trust-demotion events trigger postmortem bundles. Also
  /// installs this engine as the recorder's state writer, so bundles carry
  /// the per-rail health/trust/scale view and the failover config.
  void set_flight_recorder(trace::FlightRecorder* recorder);

  /// Writes one JSON object describing the engine's live control-plane
  /// state (per-rail quarantine/trust/scale, key config knobs) — embedded
  /// in postmortem bundles, also handy for diagnostics.
  void write_state_json(std::ostream& os) const;

  /// Attaches a metrics registry (nullptr detaches). Handles are resolved
  /// once here; afterwards the hot path touches only relaxed atomics, and a
  /// detached engine pays one null-check per site (same contract as
  /// set_tracer). The registry must outlive the engine or be detached.
  void set_metrics(telemetry::MetricsRegistry* registry);

  /// Attaches a predicted-vs-actual completion tracker (nullptr detaches).
  /// Records one sample per emission/chunk: the duration the estimator (or
  /// the split solver) promised against the fabric's actual NIC completion.
  void set_prediction_tracker(telemetry::PredictionTracker* tracker) {
    predictions_ = tracker;
  }

  /// Attaches the shared drift detector (nullptr detaches; same contract as
  /// set_tracer). Every emission/chunk completion is fed to it, and the
  /// engine arms background re-sampling sweeps when the detector asks.
  void set_recalibrator(sampling::Recalibrator* recal);

  /// Requests an immediate background re-sampling sweep of `rail`
  /// (railsctl --force-recal). No-op without an attached recalibrator.
  void force_recalibrate(RailId rail);

  /// Number of sends still sitting in the pack list (tests/diagnostics).
  std::size_t pending_sends() const { return pending_eager_.size(); }

  /// True when `rail` is currently quarantined (excluded from strategy
  /// decisions until a re-probe finds the link up again).
  bool rail_quarantined(RailId rail) const { return rail_health_[rail].quarantined; }

  /// Sequenced segments posted but not yet acknowledged end-to-end (0 when
  /// the reliability layer is off or fully drained). Tests use this to
  /// assert that a soak leaves no retransmit state behind.
  std::uint64_t reliable_in_flight() const { return rel_live_entries_; }

  /// Health-plane sampler / SLO monitor (docs/OBSERVABILITY.md); nullptr
  /// unless config().timeseries.enabled (monitor also needs config().slos).
  telemetry::HealthSampler* health() { return health_.get(); }
  const telemetry::HealthSampler* health() const { return health_.get(); }
  telemetry::SloMonitor* slo_monitor() { return slo_.get(); }
  const telemetry::SloMonitor* slo_monitor() const { return slo_.get(); }
  /// QoS class names in ClassId order (empty when QoS is off) — the axis of
  /// the per-class series and the scorecard.
  std::vector<std::string> qos_class_names() const;

 private:
  using MsgKey = std::pair<NodeId, std::uint64_t>;  // (source node, msg id)

  struct UnexpectedEager {
    Tag tag = 0;
    std::size_t total = 0;
    std::size_t received = 0;
    std::vector<std::uint8_t> buffer;
  };

  struct UnexpectedRts {
    NodeId src = 0;
    std::uint64_t msg_id = 0;
    Tag tag = 0;
    std::size_t total = 0;
  };

  struct InboundRdv {
    RecvHandle recv;
    NodeId src = 0;
    /// Disjoint byte ranges already landed ([start, end) keyed by start).
    /// Makes reception idempotent: a duplicate DATA chunk — the original
    /// arriving after a spurious-timeout retransmit — adds nothing.
    std::map<std::uint64_t, std::uint64_t> covered;
  };

  /// Per-rail quarantine state (docs/FAULTS.md).
  struct RailHealth {
    bool quarantined = false;
    SimTime until = 0;       ///< quarantine lifts no earlier than this
    SimDuration window = 0;  ///< current backoff window (0 = config default)
  };

  StrategyContext make_context();
  /// Shared isend/try_isend implementation. `bounded` = refuse (nullptr)
  /// instead of enqueueing past the class queue capacity.
  SendHandle submit_send(NodeId dst, Tag tag, const void* data, std::size_t len,
                         const SendOptions& opts, bool bounded);
  void on_segment(fabric::Segment&& seg);
  void handle_eager(const fabric::Segment& seg);
  void handle_rts(const fabric::Segment& seg);
  void handle_cts(const fabric::Segment& seg);
  void handle_data(const fabric::Segment& seg);
  void handle_fin(const fabric::Segment& seg);

  /// Interrogates the strategy for the queued eager sends and posts the
  /// returned emissions. Re-armed at the next NIC-idle time when the
  /// strategy defers.
  void progress();
  /// Interrogates the strategy for one destination group, consulting the
  /// decision cache first (docs/PERF.md). Posts the resulting emissions.
  void plan_group(std::span<const SendRequest* const> group);
  void schedule_retry();
  void arm_progress(SimTime when);
  void post_emission(const EagerEmission& emission);
  void start_rendezvous(const SendHandle& send);
  void accept_rendezvous(NodeId src, std::uint64_t msg_id);
  void stream_chunks(SendRequest& send);

  // -- traffic-class QoS (docs/QOS.md) -----------------------------------
  /// Asks the arbiter for one grant round and moves the grants into the
  /// pack list (called at the head of every scheduler activation).
  void drain_qos();
  /// Earliest predicted completion of a `len`-byte send submitted now
  /// (eager: best usable rail; rendezvous: handshake + equal-finish
  /// makespan across usable rails, busy offsets included). Feeds deadline
  /// admission.
  SimTime earliest_feasible_completion(std::size_t len) const;
  /// Deadline hit/miss bookkeeping on send completion.
  void note_qos_completion(const SendRequest& send);
  /// Windowed rendezvous streaming: posts at most one bulk_chunk-sized
  /// chunk per idle usable rail per sweep, so strict classes grab rail
  /// slots between chunks, then re-arms at the next NIC-idle time.
  void pump_qos_streams();
  void arm_qos_pump();
  /// Posts one first-transmission DMA chunk of a windowed stream.
  void post_stream_chunk(SendRequest& send, RailId rail, std::uint64_t offset,
                         std::size_t bytes);

  /// Posts one segment on `rail`; the submitting core is busy for the host
  /// share of the post. `extra_delay` models offload signalling (TO).
  fabric::SimNic::PostTimes post_segment(RailId rail, fabric::Segment seg,
                                         CoreId core, SimDuration extra_delay = 0);

  void deliver_fragment(const SubPacket& sp, NodeId src);
  void complete_recv(const RecvHandle& recv);
  RecvHandle match_posted(NodeId src, Tag tag);

  // -- fault tolerance ---------------------------------------------------
  bool rail_usable(RailId rail) const { return !rail_health_[rail].quarantined; }
  void on_tx_error(fabric::Segment&& seg);
  void on_tx_complete(const fabric::Segment& seg);
  void on_chunk_timeout(std::uint64_t msg_id, std::uint64_t offset, std::size_t bytes,
                        RailId rail, unsigned attempt);
  /// Re-splits a lost byte range of `send` across the surviving rails.
  void failover_chunk(SendRequest& send, std::uint64_t offset, std::size_t bytes,
                      RailId failed_rail, unsigned attempt);
  /// Posts one DATA chunk (failover path) and tracks it for timeout.
  void post_data_chunk(SendRequest& send, RailId rail, std::uint64_t offset,
                       std::size_t bytes, unsigned attempt);
  /// Registers a live chunk and arms its timeout event. `dst` feeds the
  /// multi-hop flight allowance (Fabric::extra_path_latency).
  void track_chunk(std::uint64_t msg_id, NodeId dst, std::uint64_t offset,
                   std::size_t bytes, RailId rail, unsigned attempt,
                   SimTime decision_now, SimDuration predicted);
  void quarantine_rail(RailId rail);
  void schedule_reprobe(RailId rail);
  void reprobe_rail(RailId rail);

  // -- end-to-end reliability (docs/FAULTS.md) ---------------------------
  // Sender side: every non-ACK segment gets a per-(src,dst)-link sequence
  // number and a CRC32C, and a copy of its payload parks in a power-of-two
  // ring slab until a cumulative/selective ACK retires it. Loss is inferred
  // by prediction-scaled ACK timeout (silent drops), NACK (checksum
  // failures), or NIC tx-error; recovery retransmits from the parked copy —
  // never touching PR 2's failover re-split, which would race it.

  /// One unacknowledged sequenced segment (slot in a RelLink ring).
  struct RelTxEntry {
    bool in_use = false;
    fabric::SegKind kind = fabric::SegKind::kEager;
    unsigned attempt = 0;
    unsigned retransmits = 0;       ///< end-to-end retransmissions so far
    RailId rail = 0;                ///< rail of the latest transmission
    NodeId dst = 0;
    std::uint64_t seq = 0;
    std::uint64_t msg_id = 0;
    Tag tag = 0;
    std::uint64_t offset = 0;
    std::uint64_t total_len = 0;
    std::uint32_t crc = 0;
    SimDuration base_timeout = 0;   ///< first-transmission ACK wait (pre-backoff)
    std::vector<std::uint8_t> payload;  ///< parked copy for retransmission
  };

  /// Per-peer link state, indexed by node id. TX: seq allocation + the
  /// unacked ring. RX: cumulative counter + a kRelRxWindow-seq bitmap ring
  /// making receives exactly-once, plus the coalesced-ACK arm flag.
  struct RelLink {
    std::uint64_t next_seq = 1;        ///< 0 is "unsequenced" on the wire
    std::uint64_t oldest_unacked = 1;
    std::vector<RelTxEntry> ring;      ///< power-of-two, slot = seq & (size-1)
    std::uint64_t rx_cumulative = 0;   ///< every seq <= this was accepted
    std::array<std::uint64_t, 16> rx_bits{};  ///< seqs (cumulative, +window]
    bool ack_armed = false;
  };
  static constexpr std::uint64_t kRelRxWindow = 16 * 64;  ///< rx_bits span

  /// Assigns seq + CRC to an outbound segment and parks a retransmit copy.
  void rel_stash(fabric::Segment& seg, RailId rail);
  /// Arms (or re-arms, with backoff) the ACK timeout for (dst, seq).
  void rel_arm(NodeId dst, std::uint64_t seq, SimDuration predicted_flight);
  void rel_on_timeout(NodeId dst, std::uint64_t seq, unsigned expected_retransmits);
  /// Shared loss reaction: budget check, then retransmit or give up.
  /// `count_streak` = an inferred silent loss (timeout), which feeds the
  /// per-rail loss streak; NACK/tx-error losses already name their cause.
  void rel_presume_lost(RelTxEntry& entry, bool count_streak);
  void rel_retransmit(RelTxEntry& entry);
  void rel_exhaust(RelTxEntry& entry);
  void rel_retire(NodeId dst, std::uint64_t seq);
  void rel_release(RelTxEntry& entry);
  RelTxEntry* rel_find(NodeId dst, std::uint64_t seq);
  RelTxEntry& rel_slot(RelLink& link, std::uint64_t seq);
  void rel_grow_ring(RelLink& link);

  /// Receiver gate: verify CRC, suppress duplicates, record the seq, arm
  /// the coalesced ACK. False = segment consumed (drop/dup/corrupt).
  bool rel_rx_accept(const fabric::Segment& seg);
  void rel_arm_ack(NodeId src);
  void rel_flush_ack(NodeId src);
  void rel_send_nack(NodeId src, std::uint64_t seq);
  void rel_handle_ack(const fabric::Segment& seg);
  void rel_handle_nack(const fabric::Segment& seg);

  // -- recalibration -----------------------------------------------------
  /// Feeds one completed transfer into the tracker and the drift detector,
  /// turning the detector's verdict into stats/metrics/sweeps. `plan` is
  /// what the scheduler promised (tracker, timeouts); `model` is the raw
  /// estimator prediction — the drift detector must see the latter, because
  /// the plan bakes in the trust penalty of a SUSPECT rail and feeding that
  /// back would make the correction chase the penalty instead of the
  /// network.
  void observe_completion(RailId rail, SimDuration plan, SimDuration model,
                          SimDuration actual);
  void observe_completion(RailId rail, SimDuration predicted, SimDuration actual) {
    observe_completion(rail, predicted, predicted, actual);
  }
  /// True when some attached observer wants (predicted, actual) pairs.
  bool observing() const { return predictions_ != nullptr || recal_ != nullptr; }
  void schedule_resample(RailId rail);
  void run_resample(RailId rail);
  /// Best usable rail for re-posting a self-contained segment.
  RailId repost_rail(const fabric::Segment& seg) const;

  // -- health plane (docs/OBSERVABILITY.md) ------------------------------
  /// One sampling tick: snapshot the curated metrics, evaluate the SLOs,
  /// escalate new-firing alerts into the flight recorder, and re-arm while
  /// the engine still has work in flight. The tick deliberately does NOT
  /// re-arm on an idle engine — a perpetual periodic event would keep
  /// run_all()/run_until() from ever terminating; submit/receive activity
  /// re-arms it instead.
  void health_tick();
  void arm_health();
  bool health_work_pending() const;

  void trace_event(trace::EventKind kind, std::uint64_t msg_id, Tag tag, RailId rail,
                   CoreId core, std::size_t bytes, SimTime time, SimTime nic_end = 0,
                   std::uint32_t cls = 0);

  /// Appends one control-plane record to the flight recorder (no-op when
  /// detached) and refreshes the eviction gauge.
  void flight(trace::FlightKind kind, RailId rail, std::uint64_t msg_id,
              std::int64_t a = 0, std::int64_t b = 0);
  /// Requests a postmortem bundle dump (no-op when detached/rate-limited).
  void flight_trigger(const char* reason, const std::string& detail);

  fabric::Fabric* fabric_;
  NodeId self_;
  const sampling::Estimator* estimator_;
  EngineConfig config_;
  std::unique_ptr<Strategy> strategy_;
  std::vector<fabric::SimNic*> nics_;
  std::size_t rdv_threshold_ = 0;
  std::uint64_t next_msg_id_ = 1;
  bool retry_armed_ = false;

  std::vector<RailHealth> rail_health_;            ///< per-rail quarantine state
  std::vector<std::uint8_t> rail_usable_;          ///< mask refreshed per context
  /// In-flight DMA chunks: msg id -> (offset -> retransmission attempt).
  /// Entries vanish on local tx-completion, error hand-off, or FIN — a
  /// timeout event that finds no entry (or a newer attempt) is stale.
  std::map<std::uint64_t, std::map<std::uint64_t, unsigned>> live_chunks_;

  std::vector<SendHandle> pending_eager_;          ///< the pack list
  std::map<std::uint64_t, SendHandle> rdv_sends_;  ///< RTS sent, keyed by msg id

  // -- end-to-end reliability (docs/FAULTS.md) ---------------------------
  std::vector<RelLink> rel_links_;        ///< per-peer, indexed by node id
  std::vector<unsigned> rel_loss_streak_; ///< consecutive inferred losses/rail
  std::uint64_t rel_live_entries_ = 0;    ///< unacked sequenced segments

  // -- traffic-class QoS (docs/QOS.md) -----------------------------------
  std::unique_ptr<qos::QosArbiter> qos_;  ///< null when disabled
  /// One windowed bulk stream: CTS arrived, chunks fed bulk_chunk at a time.
  struct QosStream {
    SendHandle send;
    std::uint64_t next_offset = 0;
  };
  std::map<std::uint64_t, QosStream> qos_streams_;  ///< keyed by msg id
  bool qos_pump_armed_ = false;
  std::vector<RecvHandle> posted_recvs_;           ///< unmatched, FIFO
  /// Matched multi-fragment eager receives. Flat + swap-erase: lookups are
  /// linear but the live set is small, and binding never allocates once the
  /// vector is warm (a std::map node did, every message).
  std::vector<std::pair<MsgKey, RecvHandle>> bound_recvs_;
  std::map<MsgKey, InboundRdv> inbound_rdv_;       ///< CTS sent, data flowing
  std::map<MsgKey, UnexpectedEager> unexpected_;   ///< early eager fragments
  std::vector<UnexpectedRts> unexpected_rts_;      ///< early RTS, FIFO

  EngineStats stats_;
  trace::Tracer* tracer_ = nullptr;
  trace::FlightRecorder* flight_ = nullptr;

  // -- health plane (docs/OBSERVABILITY.md) ------------------------------
  std::unique_ptr<telemetry::HealthSampler> health_;  ///< null when disabled
  std::unique_ptr<telemetry::SloMonitor> slo_;        ///< null without slos
  bool health_armed_ = false;
  telemetry::EngineMetrics metrics_;
  telemetry::PredictionTracker* predictions_ = nullptr;
  sampling::Recalibrator* recal_ = nullptr;
  std::vector<double> trust_penalty_;      ///< per-rail penalties for contexts
  std::vector<std::uint8_t> resample_armed_;  ///< dedups sweep events per rail

  // -- hot-path scratch & memoization (docs/PERF.md) ---------------------
  // Persistent buffers recycled across activations so the steady-state
  // submit -> schedule -> emit path touches no allocator.

  /// Single-pass destination grouping: dst -> group index, stamped with
  /// group_epoch_ so clearing between activations is O(1).
  std::vector<std::vector<const SendRequest*>> group_sends_;
  std::size_t groups_used_ = 0;
  std::vector<std::uint32_t> dst_group_;
  std::vector<std::uint32_t> dst_epoch_;
  std::uint32_t group_epoch_ = 0;

  /// earliest_feasible_completion / failover re-split scratch (the former
  /// is const, hence mutable).
  mutable std::vector<RailId> rail_scratch_;
  mutable std::vector<strategy::ProfileCost> cost_scratch_;
  mutable std::vector<strategy::SolverRail> solver_scratch_;

  std::vector<SubPacket> subpacket_scratch_;  ///< eager unpack scratch
  EagerEmission emission_scratch_;            ///< cached-plan materialization

  /// Memoized eager strategy decisions. An entry replays its emission plan
  /// (as group-relative indices) when the exact (sizes, qos classes) run
  /// recurs under the same usable/idle rail and idle core sets within the
  /// same decision epoch. The epoch advances on every event that could
  /// change what a strategy would decide — quarantine, re-probe, failover,
  /// trust transition, profile correction/resample, strategy swap — so a
  /// stale plan can never be replayed. Keys store the exact size run (no
  /// bucketing), so a hit reproduces the uncached decision bit-for-bit.
  struct CachedPiece {
    std::uint32_t send_idx = 0;  ///< index into the destination group
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
  };
  struct CachedEmission {
    RailId rail = 0;
    bool offloaded = false;
    CoreId offload_core = 0;
    std::vector<CachedPiece> pieces;
  };
  struct DecisionEntry {
    std::uint64_t epoch = 0;  ///< 0 = empty slot
    std::uint64_t usable_mask = 0;
    std::uint64_t idle_rail_mask = 0;
    std::uint64_t idle_core_mask = 0;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> key;  ///< (len, class)
    std::vector<CachedEmission> emissions;
  };
  static constexpr std::size_t kDecisionSlots = 64;
  std::vector<DecisionEntry> decision_cache_;
  std::uint64_t decision_epoch_ = 1;
  /// Drops every cached decision (O(1): entries with a stale epoch are dead).
  void invalidate_decisions() { ++decision_epoch_; }
};

}  // namespace rails::core
